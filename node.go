package cobcast

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"cobcast/internal/core"
	"cobcast/internal/flight"
	"cobcast/internal/groups"
	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
)

// Transport moves encoded datagrams between nodes. Each datagram is one
// batch frame (see internal/pdu: a versioned header followed by a
// length-prefixed sequence of PDU encodings); the node's link layer
// encodes and decodes frames, so a Transport only moves opaque byte
// slices. Broadcast must deliver (best-effort) to every other cluster
// member; the protocol tolerates loss, duplication and cross-sender
// reordering, but each pairwise channel must preserve per-sender
// datagram order (UDP on a LAN and in-memory channels both qualify) —
// combined with the frame's in-order PDU layout this yields the MC
// service's per-sender PDU order within and across batches. Broadcast
// must not retain the datagram after returning: the node reuses the
// frame buffer for the next send. Recv's channel is closed when the
// transport closes; slices it delivers become owned by the node, which
// recycles pool-backed ones via pdu.PutDatagram after decoding.
type Transport interface {
	Broadcast(datagram []byte) error
	Recv() <-chan []byte
	Close() error
}

// BatchTransport is an optional Transport extension for substrates that
// can move several datagrams in one operation. When a flush has staged
// more than one frame, the node's link layer hands the whole set to
// BroadcastBatch instead of looping over Broadcast — the UDP transport's
// sendmmsg path turns that into a single syscall. BroadcastBatch must
// transmit the datagrams in slice order toward every peer (preserving
// the per-sender datagram order the MC service contract requires) and,
// like Broadcast, must not retain any slice after returning.
type BatchTransport interface {
	Transport
	BroadcastBatch(datagrams [][]byte) error
}

// ErrClosed is returned by operations on a closed node or cluster.
var ErrClosed = errors.New("cobcast: closed")

// ErrOverBudget is returned by Broadcast in BackpressureShed mode when
// the memory budget (WithMemoryBudget) is exhausted. The submission was
// not sequenced; the caller may retry once the logs drain.
var ErrOverBudget = errors.New("cobcast: memory budget exhausted")

// Node is one cluster member. Create nodes with NewCluster (in-process)
// or NewNode (custom transport); a node runs its protocol loop on a
// dedicated goroutine until Close.
type Node struct {
	id  int
	n   int
	ent *core.Entity

	// ledger is the default engine's memory ledger (nil without
	// WithMemoryBudget); producers consult it before submitting, the
	// entity (on the loop goroutine) is its only writer. shed selects
	// the producer behaviour at an exhausted budget.
	ledger *core.Ledger
	shed   bool

	// lk is the node's sole attachment to the outside: a memLink for
	// in-process clusters (PDUs move as pointers, no serialization) or a
	// wireLink for external transports (PDUs move as batch frames). The
	// loop goroutine stages outgoing PDUs on it and flushes once per
	// input burst, so every PDU produced while draining the queue
	// coalesces into one datagram.
	lk link

	// Multi-group state (see group.go): the sharded runtime starts
	// lazily on the first non-default Group() call or the first
	// group-addressed inbound frame, so single-group nodes pay nothing.
	groupsMu         sync.Mutex
	groupRT          *groups.Registry
	groupPorts       map[GroupID]*GroupPort
	groupLedgers     map[GroupID]*core.Ledger
	groupMetricsUsed int
	gseed            groupSeed

	// flight is the node's flight recorder (nil when disabled): the
	// core entity records lifecycle events into it, the loop adds
	// wire-in/out, producers add backpressure block/shed, and /tracez
	// scrapes it concurrently.
	flight *flight.Ring

	submits  chan []byte
	evicts   chan evictReq
	statsReq chan chan core.Stats
	idleReq  chan chan bool
	snapReq  chan snapRequest
	deliver  chan Message
	queue    deliveryQueue
	start    time.Time
	tick     time.Duration

	stop      chan struct{}
	loopDone  chan struct{}
	pumpDone  chan struct{}
	closeOnce sync.Once
}

// NewNode creates a standalone node that exchanges PDUs through the given
// transport. id must be unique within the cluster and n is the total
// cluster size; all nodes must agree on n and the options.
func NewNode(id, n int, trans Transport, opts ...Option) (*Node, error) {
	if trans == nil {
		return nil, errors.New("cobcast: nil transport")
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt.apply(&o)
	}
	version := uint8(pdu.WireVersion2)
	switch o.wireVersion {
	case 0, 2: // default: the delta-stamp codec
	case 1:
		version = pdu.WireVersion
	default:
		return nil, fmt.Errorf("cobcast: unsupported wire codec version %d", o.wireVersion)
	}
	nd, err := newNode(id, n, o, newWireLink(trans, version, o.stampInterval),
		func(shard int, lm *obsv.LinkMetrics) groups.Frames {
			return newWireGroupFrames(trans, version, o.stampInterval, lm)
		})
	if err != nil {
		return nil, err
	}
	if o.registry != nil {
		// Stamp the send-side wire codec on cobcast_build_info so scrapes
		// from mixed-codec clusters stay attributable.
		o.registry.SetBuildLabel("codec", fmt.Sprintf("v%d", version))
		// A transport that exposes live counters (UDPTransport does)
		// publishes them alongside the node's metrics; one that also
		// reports its wire-path configuration (batched syscalls, socket
		// buffer sizes) gets that attached for /statez.
		if tm, ok := trans.(interface{ Metrics() *obsv.TransportMetrics }); ok {
			lbl := o.registry.RegisterTransport(strconv.Itoa(id), tm.Metrics())
			if ts, ok := trans.(interface{ TransportState() obsv.TransportState }); ok {
				o.registry.SetTransportState(lbl, ts.TransportState())
			}
		}
	}
	return nd, nil
}

// newNode assembles a node over its link. newFrames is the substrate's
// multi-group wire factory, invoked once per shard if (and only if) the
// node's group runtime starts; it receives the node's link metrics so
// group traffic shares the node's flush counters.
func newNode(id, n int, o options, lk link, newFrames func(shard int, lm *obsv.LinkMetrics) groups.Frames) (*Node, error) {
	cfg := o.coreConfig(id, n)
	cfg.Ledger = o.newLedger()
	var em *obsv.EntityMetrics
	var lm *obsv.LinkMetrics
	if o.registry != nil {
		em = obsv.NewEntityMetrics()
		lm = obsv.NewLinkMetrics()
		cfg.Metrics = em
		lk.instrument(lm)
	}
	fr := o.newFlightRing()
	cfg.Flight = fr
	ent, err := core.New(cfg)
	if err != nil {
		_ = lk.close()
		return nil, fmt.Errorf("cobcast: node %d: %w", id, err)
	}
	nd := &Node{
		id:       id,
		n:        n,
		ent:      ent,
		flight:   fr,
		ledger:   cfg.Ledger,
		shed:     o.backpressure == BackpressureShed,
		lk:       lk,
		submits:  make(chan []byte, 64),
		evicts:   make(chan evictReq),
		statsReq: make(chan chan core.Stats),
		idleReq:  make(chan chan bool),
		snapReq:  make(chan snapRequest),
		deliver:  make(chan Message),
		start:    time.Now(),
		tick:     o.tick(),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
		pumpDone: make(chan struct{}),
	}
	nd.gseed = groupSeed{
		o:  o,
		lm: lm,
		newFrames: func(shard int) groups.Frames {
			return newFrames(shard, lm)
		},
	}
	go nd.loop()
	go nd.pump()
	if o.registry != nil {
		label := o.registry.RegisterNode(strconv.Itoa(id), em, lm, nd.StateSnapshot)
		o.registry.RegisterFlight(label, fr, nd.start.UnixNano())
		o.registry.RegisterStalls(label, nd.Stalls)
	}
	return nd, nil
}

// ID returns the node's cluster-unique identifier.
func (nd *Node) ID() int { return nd.id }

// Broadcast submits data for causally ordered broadcast to the whole
// cluster (including this node: the message comes back on Deliveries once
// it is fully acknowledged). The data is copied. With WithMemoryBudget in
// BackpressureBlock mode it blocks while the budget is exhausted; use
// BroadcastContext for a cancellable wait.
func (nd *Node) Broadcast(data []byte) error {
	return nd.BroadcastContext(context.Background(), data)
}

// BroadcastContext is Broadcast bounded by a context: cancellation
// unblocks a producer waiting on the memory budget or on the submit
// queue and returns ctx.Err(). In BackpressureShed mode an exhausted
// budget instead fails immediately with ErrOverBudget. The admission
// check happens before anything is sequenced, so a cancelled or shed
// broadcast leaves no trace in protocol state.
func (nd *Node) BroadcastContext(ctx context.Context, data []byte) error {
	if err := nd.admit(ctx, nd.ledger); err != nil {
		return err
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	// Check for shutdown first: with a buffered submit channel the
	// select below could otherwise pick the send case even after Close.
	select {
	case <-nd.stop:
		return ErrClosed
	default:
	}
	select {
	case nd.submits <- buf:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-nd.stop:
		return ErrClosed
	case <-nd.loopDone:
		return ErrClosed
	}
}

// admit applies producer-side backpressure against a memory ledger: nil
// or under-budget admits immediately; otherwise shed mode fails fast and
// block mode waits on the ledger gate until the engine drains below
// budget, the context cancels, or the node closes.
func (nd *Node) admit(ctx context.Context, l *core.Ledger) error {
	if l == nil || !l.OverBudget() {
		return nil
	}
	if nd.shed {
		l.NoteShed()
		nd.flight.Record(flight.EvShed, 0, int32(nd.id), 0, int32(pdu.NoEntity), int64(nd.now()))
		return ErrOverBudget
	}
	l.NoteBlock()
	nd.flight.Record(flight.EvBlock, 0, int32(nd.id), 0, int32(pdu.NoEntity), int64(nd.now()))
	for {
		g := l.Gate()
		// Re-check after grabbing the gate: the engine may have drained
		// (and swapped gates) between the check and the grab.
		if !l.OverBudget() {
			return nil
		}
		select {
		case <-g:
		case <-ctx.Done():
			return ctx.Err()
		case <-nd.stop:
			return ErrClosed
		case <-nd.loopDone:
			return ErrClosed
		}
	}
}

// Deliveries returns the stream of causally ordered messages. The channel
// is closed by Close. Consumers should drain it promptly; undelivered
// messages are buffered without bound.
func (nd *Node) Deliveries() <-chan Message { return nd.deliver }

type evictReq struct {
	id    int
	reply chan error
}

// Evict removes a crashed or unreachable node from this node's
// confirmation quorum so acknowledgment progress no longer waits for it.
// Every surviving node must evict the same member. See DESIGN.md for the
// extension's guarantees and limitations (no virtual synchrony, no
// rejoin); WithSuspectTimeout automates the decision.
func (nd *Node) Evict(id int) error {
	req := evictReq{id: id, reply: make(chan error, 1)}
	select {
	case nd.evicts <- req:
		return <-req.reply
	case <-nd.stop:
		return ErrClosed
	case <-nd.loopDone:
		return ErrClosed
	}
}

// WaitIdle blocks until this node owes the cluster nothing — every
// message it submitted or accepted has been fully acknowledged and
// delivered — or the timeout passes. It is a local view: other nodes may
// still be catching up. Useful to flush before shutdown.
func (nd *Node) WaitIdle(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		reply := make(chan bool, 1)
		select {
		case nd.idleReq <- reply:
			if <-reply && nd.groupsIdle() {
				return nil
			}
		case <-nd.stop:
			return ErrClosed
		case <-nd.loopDone:
			return ErrClosed
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("cobcast: node %d not idle after %v", nd.id, timeout)
		}
		time.Sleep(nd.tick / 2)
	}
}

// Stats returns a snapshot of the node's protocol counters.
func (nd *Node) Stats() Stats {
	reply := make(chan core.Stats, 1)
	select {
	case nd.statsReq <- reply:
		return fromCoreStats(<-reply)
	case <-nd.loopDone:
		// Loop exited: the entity is no longer mutated, read directly.
		return fromCoreStats(nd.ent.Stats())
	}
}

// snapshotTimeout bounds how long a scraper waits for the loop to
// service a state-snapshot request; a loop busy past it simply drops
// off that scrape rather than stalling the endpoint.
const snapshotTimeout = 100 * time.Millisecond

// snapRequest asks the protocol loop to fill dst with the entity's
// state (and/or stalls with its stall-analyzer report) between inputs;
// done (buffered) is signaled once the requested fields are valid.
type snapRequest struct {
	dst    *obsv.StateSnapshot
	stalls *[]obsv.Stall
	done   chan struct{}
}

// handleSnap services one snapshot/stall request on the loop goroutine.
func (nd *Node) handleSnap(req snapRequest) {
	if req.dst != nil {
		nd.ent.SnapshotInto(req.dst)
	}
	if req.stalls != nil {
		*req.stalls = nd.ent.Stalls(nd.now(), 0)
	}
	req.done <- struct{}{}
}

// Stalls returns the stall-analyzer verdicts for every undelivered
// message this node is holding: the pipeline stage, the unmet flow-
// condition term, and the peers whose confirmations are missing. Empty
// when nothing is stuck. ok is false if the loop stayed busy past the
// snapshot timeout. It is the node's obsv.StallsFunc; /statez includes
// the report on every scrape.
func (nd *Node) Stalls() ([]obsv.Stall, bool) {
	var sts []obsv.Stall
	req := snapRequest{stalls: &sts, done: make(chan struct{}, 1)}
	timer := time.NewTimer(snapshotTimeout)
	defer timer.Stop()
	select {
	case nd.snapReq <- req:
		<-req.done
		return sts, true
	case <-nd.loopDone:
		return nd.ent.Stalls(nd.now(), 0), true
	case <-timer.C:
		return nil, false
	}
}

// StateSnapshot returns a consistent copy of the node's live protocol
// state (sequence numbers, confirmation minima, log depths, buffer
// occupancy), taken between inputs on the protocol loop. ok is false
// if the loop stayed busy past an internal timeout. It is the node's
// obsv.SnapshotFunc; the registry and /statez call it on scrapes.
func (nd *Node) StateSnapshot() (obsv.StateSnapshot, bool) {
	var s obsv.StateSnapshot
	ok := nd.StateSnapshotInto(&s)
	return s, ok
}

// StateSnapshotInto is StateSnapshot writing into a caller-owned value
// whose slice capacity is reused (see core.Entity.SnapshotInto), so a
// poller that keeps one scratch snapshot avoids the five O(n) slice
// allocations a fresh snapshot costs. On false (loop busy past the
// timeout) dst is untouched. dst must not be scraped into again while
// a previous fill is still being read elsewhere.
func (nd *Node) StateSnapshotInto(dst *obsv.StateSnapshot) bool {
	req := snapRequest{dst: dst, done: make(chan struct{}, 1)}
	timer := time.NewTimer(snapshotTimeout)
	defer timer.Stop()
	select {
	case nd.snapReq <- req:
		// Accepted: the loop owns dst until done fires, so wait without
		// a timeout (abandoning dst here would race the loop's write).
		<-req.done
		return true
	case <-nd.loopDone:
		// Loop exited: the entity is no longer mutated, read directly.
		nd.ent.SnapshotInto(dst)
		return true
	case <-timer.C:
		return false
	}
}

// Close stops the node's goroutines, closes its transport (when created
// via NewNode) and closes the delivery channel.
func (nd *Node) Close() error {
	var err error
	nd.closeOnce.Do(func() {
		close(nd.stop)
		<-nd.loopDone
		// Group runtime first: stopping the shards ends group-port queue
		// pushes before those queues close.
		nd.closeGroups()
		nd.queue.close()
		<-nd.pumpDone
		close(nd.deliver)
		err = nd.lk.close()
	})
	return err
}

// now is the node's protocol clock: time since the node started.
func (nd *Node) now() time.Duration { return time.Since(nd.start) }

// loop serializes every entity input on one goroutine. Outgoing PDUs are
// staged on the link as they are produced; the loop flushes them as one
// batched datagram only when its input queue goes idle, so a burst of
// arrivals (or one input producing several PDUs) coalesces into a single
// frame — flush-on-loop-idle batching.
func (nd *Node) loop() {
	defer close(nd.loopDone)
	ticker := time.NewTicker(nd.tick)
	defer ticker.Stop()
	in := nd.lk.recv()

	for {
		// Block for the next input…
		select {
		case <-nd.stop:
			return
		case data := <-nd.submits:
			nd.dispatch(nd.ent.Submit(data, nd.now()))
		case req := <-nd.evicts:
			nd.handleEvict(req)
		case b, ok := <-in:
			if !ok {
				return
			}
			nd.routeInbound(b)
		case <-ticker.C:
			nd.dispatch(nd.ent.Tick(nd.now()))
		case reply := <-nd.statsReq:
			reply <- nd.ent.Stats()
		case reply := <-nd.idleReq:
			reply <- nd.ent.Quiescent()
		case req := <-nd.snapReq:
			nd.handleSnap(req)
		}
		// …then drain everything already pending without blocking, so
		// the PDUs all of it produces share one flush.
		drained := false
		for !drained {
			select {
			case <-nd.stop:
				return
			case data := <-nd.submits:
				nd.dispatch(nd.ent.Submit(data, nd.now()))
			case req := <-nd.evicts:
				nd.handleEvict(req)
			case b, ok := <-in:
				if !ok {
					return
				}
				nd.routeInbound(b)
			case <-ticker.C:
				nd.dispatch(nd.ent.Tick(nd.now()))
			case reply := <-nd.statsReq:
				reply <- nd.ent.Stats()
			case reply := <-nd.idleReq:
				reply <- nd.ent.Quiescent()
			case req := <-nd.snapReq:
				nd.handleSnap(req)
			default:
				drained = true
			}
		}
		nd.lk.flush()
	}
}

func (nd *Node) handleEvict(req evictReq) {
	out, err := nd.ent.Evict(pdu.EntityID(req.id), nd.now())
	req.reply <- err
	nd.dispatch(out)
}

func (nd *Node) receive(p *pdu.PDU) {
	now := nd.now()
	nd.recordWire(flight.EvWireIn, p, now)
	out, err := nd.ent.Receive(p, now)
	// Receive errors mark malformed or foreign PDUs; the entity counts
	// them in InvalidPDUs and the protocol carries on.
	_ = err
	nd.dispatch(out)
}

// recordWire notes one PDU crossing the node/network boundary. A RET
// identifies itself by the PDU it chases (LSrc#LSeq), so that is what
// the span assembler needs in the Src/Seq slots; Peer then carries the
// requester-visible source for cross-referencing.
func (nd *Node) recordWire(t flight.EventType, p *pdu.PDU, now time.Duration) {
	if nd.flight == nil {
		return
	}
	src, seq, peer := p.Src, p.SEQ, pdu.NoEntity
	if p.Kind == pdu.KindRet {
		src, seq, peer = p.LSrc, p.LSeq, p.Src
	}
	nd.flight.Record(t, uint8(p.Kind), int32(src), uint64(seq), int32(peer), int64(now))
}

// dispatch stages an entity's output PDUs on the link (sent at the next
// flush) and queues its deliveries.
func (nd *Node) dispatch(out core.Output) {
	if nd.flight != nil && len(out.PDUs) > 0 {
		now := nd.now()
		for _, p := range out.PDUs {
			nd.recordWire(flight.EvWireOut, p, now)
		}
	}
	for _, p := range out.PDUs {
		nd.lk.append(p)
	}
	for _, d := range out.Deliveries {
		nd.queue.push(Message{Src: int(d.Src), Seq: uint64(d.SEQ), Data: d.Data, LTime: d.LTime})
	}
}

// pump moves messages from the unbounded queue to the delivery channel so
// a slow consumer never stalls the protocol loop.
func (nd *Node) pump() {
	defer close(nd.pumpDone)
	for {
		m, ok := nd.queue.pop()
		if !ok {
			return
		}
		select {
		case nd.deliver <- m:
		case <-nd.stop:
			// Drain the rest so close is prompt; consumers that closed
			// early asked for this.
			return
		}
	}
}

// deliveryQueue is an unbounded FIFO with blocking pop.
type deliveryQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []Message
	closed bool
}

func (q *deliveryQueue) push(m Message) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.cond == nil {
		q.cond = sync.NewCond(&q.mu)
	}
	if q.closed {
		return
	}
	q.items = append(q.items, m)
	q.cond.Signal()
}

// pop blocks until an item is available or the queue closes; ok is false
// only when the queue is closed and drained.
func (q *deliveryQueue) pop() (Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.cond == nil {
		q.cond = sync.NewCond(&q.mu)
	}
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return Message{}, false
	}
	m := q.items[0]
	q.items[0] = Message{}
	q.items = q.items[1:]
	return m, true
}

func (q *deliveryQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.cond == nil {
		q.cond = sync.NewCond(&q.mu)
	}
	q.closed = true
	q.cond.Broadcast()
}
