package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: cobcast
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkHotPathCodec-8         	 4000000	       300.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkHotPathPipeline/n=64-8 	    2000	    100000 ns/op	      10 B/op	       0 allocs/op
BenchmarkBrandNew-8             	 1000000	      50.0 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	cobcast	10.0s
`

func TestParseBench(t *testing.T) {
	got, order, err := parseBench(bufio.NewScanner(strings.NewReader(sampleOutput)))
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(order), order)
	}
	r, ok := got["BenchmarkHotPathPipeline/n=64"]
	if !ok {
		t.Fatalf("missing sub-benchmark (procs suffix not stripped?): %v", order)
	}
	if r.NsPerOp != 100000 || r.BytesPerOp != 10 || r.AllocsPerOp != 0 {
		t.Errorf("wrong metrics: %+v", r)
	}
}

// writeBaseline drops a BENCH_PR<n>.json into dir.
func writeBaseline(t *testing.T, dir, name, body string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
}

func writeInput(t *testing.T, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(path, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPicksLatestBaselineAndPasses(t *testing.T) {
	dir := t.TempDir()
	// PR4 has no benchmarks map (the historical format); PR5 does. The
	// tool must skip PR4 and gate against PR5.
	writeBaseline(t, dir, "BENCH_PR4.json", `{"pr": 4}`)
	writeBaseline(t, dir, "BENCH_PR5.json", `{"pr": 5, "benchmarks": {
		"BenchmarkHotPathCodec":           {"ns_per_op": 290, "allocs_per_op": 0},
		"BenchmarkHotPathPipeline/n=64":   {"ns_per_op": 99000, "allocs_per_op": 0}
	}}`)
	in := writeInput(t, dir)
	if err := run(dir, "", in, 10, false); err != nil {
		t.Errorf("within tolerance (+3.4%%, +1.0%%) but failed: %v", err)
	}
}

func TestRunFailsOnNsRegression(t *testing.T) {
	dir := t.TempDir()
	writeBaseline(t, dir, "BENCH_PR5.json", `{"pr": 5, "benchmarks": {
		"BenchmarkHotPathCodec": {"ns_per_op": 200, "allocs_per_op": 0}
	}}`)
	in := writeInput(t, dir)
	if err := run(dir, "", in, 10, false); err == nil {
		t.Error("+50% ns/op accepted")
	}
	// The same regression passes the allocation-only CI gate.
	if err := run(dir, "", in, 10, true); err != nil {
		t.Errorf("-allocs-only rejected a pure timing regression: %v", err)
	}
}

func TestRunFailsOnAllocRegression(t *testing.T) {
	dir := t.TempDir()
	writeBaseline(t, dir, "BENCH_PR5.json", `{"pr": 5, "benchmarks": {
		"BenchmarkHotPathPipeline/n=64": {"ns_per_op": 100000, "allocs_per_op": -1}
	}}`)
	in := writeInput(t, dir)
	// Baseline pinned -1 (no benchmem data) vs measured 0: growth.
	if err := run(dir, "", in, 10, true); err == nil {
		t.Error("allocs/op growth accepted under -allocs-only")
	}
}

func TestRunFailsWithNoOverlap(t *testing.T) {
	dir := t.TempDir()
	writeBaseline(t, dir, "BENCH_PR5.json", `{"pr": 5, "benchmarks": {
		"BenchmarkElsewhere": {"ns_per_op": 1, "allocs_per_op": 0}
	}}`)
	in := writeInput(t, dir)
	if err := run(dir, "", in, 10, false); err == nil {
		t.Error("disjoint benchmark sets must fail loudly, not pass vacuously")
	}
}
