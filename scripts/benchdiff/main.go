// Command benchdiff compares `go test -bench` output against the most
// recent BENCH_*.json baseline recorded in the repository root, and
// fails (exit 1) on a >10% ns/op regression or any allocs/op growth on
// a benchmark the baseline pins.
//
// The baseline is the highest-numbered BENCH_PR<n>.json containing a
// top-level "benchmarks" map:
//
//	"benchmarks": {
//	  "BenchmarkHotPathPipeline/n=64": {
//	    "ns_per_op": 123.4, "bytes_per_op": 0, "allocs_per_op": 0
//	  }
//	}
//
// Benchmark names are matched after stripping the -GOMAXPROCS suffix;
// output benchmarks absent from the baseline are listed as new and do
// not fail the run. Timing on shared CI runners is noisy, so the CI
// bench-smoke job passes -allocs-only and gates only on allocation
// regressions; the full ns/op gate is the opt-in `make benchdiff`
// target (or BENCHDIFF=1 make check) on a quiet machine.
//
// Usage:
//
//	go test . -run '^$' -bench . -benchmem | go run ./scripts/benchdiff
//	go run ./scripts/benchdiff -input bench.out -allocs-only
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's measured metrics, from either side of the
// comparison. Allocs is -1 when the line carried no -benchmem columns.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// baselineFile is the subset of a BENCH_PR<n>.json that benchdiff
// consumes.
type baselineFile struct {
	PR         int               `json:"pr"`
	Benchmarks map[string]result `json:"benchmarks"`
}

var benchFile = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// latestBaseline picks the highest-PR BENCH_PR<n>.json in dir that has
// a non-empty "benchmarks" map.
func latestBaseline(dir string) (string, *baselineFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", nil, err
	}
	type cand struct {
		pr   int
		path string
	}
	var cands []cand
	for _, e := range entries {
		if m := benchFile.FindStringSubmatch(e.Name()); m != nil {
			pr, _ := strconv.Atoi(m[1])
			cands = append(cands, cand{pr, filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].pr > cands[j].pr })
	for _, c := range cands {
		b, err := loadBaseline(c.path)
		if err != nil {
			return "", nil, fmt.Errorf("%s: %w", c.path, err)
		}
		if len(b.Benchmarks) > 0 {
			return c.path, b, nil
		}
	}
	return "", nil, fmt.Errorf("no BENCH_PR*.json with a \"benchmarks\" map under %s", dir)
}

func loadBaseline(path string) (*baselineFile, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b baselineFile
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, err
	}
	return &b, nil
}

// stripProcs removes go test's -GOMAXPROCS benchmark-name suffix.
func stripProcs(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// parseBench extracts benchmark results from `go test -bench` text.
// A result line is "BenchmarkName-P  iters  v1 unit1  v2 unit2 ...";
// only the ns/op, B/op and allocs/op units are kept.
func parseBench(r *bufio.Scanner) (map[string]result, []string, error) {
	out := make(map[string]result)
	var order []string
	for r.Scan() {
		fields := strings.Fields(r.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		if _, err := strconv.Atoi(fields[1]); err != nil {
			continue // not an iteration count: some other Benchmark... line
		}
		res := result{AllocsPerOp: -1}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			}
		}
		name := stripProcs(fields[0])
		if _, dup := out[name]; !dup {
			order = append(order, name)
		}
		out[name] = res
	}
	return out, order, r.Err()
}

func main() {
	dir := flag.String("dir", ".", "directory holding the BENCH_PR*.json baselines")
	baselinePath := flag.String("baseline", "", "explicit baseline file (default: latest BENCH_PR*.json with a benchmarks map)")
	input := flag.String("input", "-", "go test -bench output to check ('-' = stdin)")
	maxNsPct := flag.Float64("max-ns-pct", 10, "ns/op regression tolerance in percent")
	allocsOnly := flag.Bool("allocs-only", false, "gate only on allocs/op (for noisy CI timing)")
	flag.Parse()

	if err := run(*dir, *baselinePath, *input, *maxNsPct, *allocsOnly); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(dir, baselinePath, input string, maxNsPct float64, allocsOnly bool) error {
	var (
		base *baselineFile
		path string
		err  error
	)
	if baselinePath != "" {
		path = baselinePath
		if base, err = loadBaseline(path); err != nil {
			return err
		}
		if len(base.Benchmarks) == 0 {
			return fmt.Errorf("%s has no \"benchmarks\" map", path)
		}
	} else if path, base, err = latestBaseline(dir); err != nil {
		return err
	}

	in := os.Stdin
	if input != "-" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	got, order, err := parseBench(bufio.NewScanner(in))
	if err != nil {
		return err
	}

	fmt.Printf("benchdiff: baseline %s (%d pinned benchmarks)\n", path, len(base.Benchmarks))
	matched, regressions := 0, 0
	for _, name := range order {
		now := got[name]
		ref, ok := base.Benchmarks[name]
		if !ok {
			fmt.Printf("  new      %-52s %12.1f ns/op (no baseline)\n", name, now.NsPerOp)
			continue
		}
		matched++
		bad := ""
		if !allocsOnly && ref.NsPerOp > 0 && now.NsPerOp > ref.NsPerOp*(1+maxNsPct/100) {
			bad = fmt.Sprintf("ns/op +%.1f%% (limit +%.0f%%)",
				100*(now.NsPerOp/ref.NsPerOp-1), maxNsPct)
		}
		if now.AllocsPerOp > ref.AllocsPerOp {
			if bad != "" {
				bad += "; "
			}
			bad += fmt.Sprintf("allocs/op %.0f -> %.0f", ref.AllocsPerOp, now.AllocsPerOp)
		}
		if bad != "" {
			regressions++
			fmt.Printf("  REGRESS  %-52s %12.1f ns/op vs %.1f — %s\n", name, now.NsPerOp, ref.NsPerOp, bad)
		} else {
			fmt.Printf("  ok       %-52s %12.1f ns/op vs %.1f (%+.1f%%), %.0f allocs/op\n",
				name, now.NsPerOp, ref.NsPerOp, 100*(now.NsPerOp/ref.NsPerOp-1), now.AllocsPerOp)
		}
	}
	if matched == 0 {
		return fmt.Errorf("no benchmark in the input matches the baseline — wrong -bench pattern?")
	}
	if regressions > 0 {
		return fmt.Errorf("%d of %d pinned benchmarks regressed", regressions, matched)
	}
	fmt.Printf("benchdiff: %d benchmarks within tolerance\n", matched)
	return nil
}
