#!/bin/sh
# Full pre-merge gate: static checks, build, tests with the race
# detector, and a smoke run of the headline benchmark (experiment E1a)
# so hot-path regressions that only manifest under the benchmark replay
# harness are caught too. Run from the repository root, or via
# `make check`.
set -eu

cd "$(dirname "$0")/.."

echo '>> go vet ./...'
go vet ./...

echo '>> go build ./...'
go build ./...

echo '>> go test -race ./...'
go test -race ./...

echo '>> benchmark smoke (BenchmarkFig8Tco, 100 iterations)'
go test . -run '^$' -bench 'BenchmarkFig8Tco' -benchtime=100x -benchmem

# go test accepts only one -fuzz pattern per invocation, hence the loop.
echo '>> fuzz smoke (1s per target)'
for target in FuzzUnmarshal FuzzFrameDecode FuzzCompare FuzzDTUnmarshal FuzzRETUnmarshal; do
	go test ./internal/pdu -run '^$' -fuzz "^${target}\$" -fuzztime 1s
done

echo '>> chaos sweep smoke (60 seeds)'
go run ./cmd/cochaos -sweep 60 -par 4

echo '>> all checks passed'
