#!/bin/sh
# Full pre-merge gate: static checks, build, tests with the race
# detector, and a smoke run of the headline benchmark (experiment E1a)
# so hot-path regressions that only manifest under the benchmark replay
# harness are caught too. Run from the repository root, or via
# `make check`.
set -eu

cd "$(dirname "$0")/.."

echo '>> go vet ./...'
go vet ./...

echo '>> go build ./...'
go build ./...

echo '>> go test -race ./...'
go test -race ./...

echo '>> benchmark smoke (BenchmarkFig8Tco, 100 iterations)'
go test . -run '^$' -bench 'BenchmarkFig8Tco' -benchtime=100x -benchmem

# go test accepts only one -fuzz pattern per invocation, hence the loop.
echo '>> fuzz smoke (1s per target)'
for target in FuzzUnmarshal FuzzFrameDecode FuzzCompare FuzzDTUnmarshal FuzzRETUnmarshal FuzzV2Unmarshal FuzzV2StreamRoundTrip; do
	go test ./internal/pdu -run '^$' -fuzz "^${target}\$" -fuzztime 1s
done
go test ./internal/vclock -run '^$' -fuzz '^FuzzSparseStamp$' -fuzztime 1s

echo '>> chaos sweep smoke (60 seeds)'
go run ./cmd/cochaos -sweep 60 -par 4

echo '>> chaos sweep smoke under wire codec v2 (60 seeds)'
go run ./cmd/cochaos -sweep 60 -par 4 -codec 2

# Opt-in perf gate: rerun the benchmarks pinned by the latest
# BENCH_PR*.json and fail on >10% ns/op or any allocs/op growth.
# Off by default because ns/op needs a quiet machine to mean anything.
if [ "${BENCHDIFF:-0}" = 1 ]; then
	echo '>> benchdiff against latest BENCH_PR*.json'
	make benchdiff
fi

echo '>> all checks passed'
