#!/bin/sh
# Full pre-merge gate: static checks, build, tests with the race
# detector, and a smoke run of the headline benchmark (experiment E1a)
# so hot-path regressions that only manifest under the benchmark replay
# harness are caught too. Run from the repository root, or via
# `make check`.
set -eu

cd "$(dirname "$0")/.."

echo '>> go vet ./...'
go vet ./...

echo '>> go build ./...'
go build ./...

echo '>> go test -race ./...'
go test -race ./...

echo '>> benchmark smoke (BenchmarkFig8Tco, 100 iterations)'
go test . -run '^$' -bench 'BenchmarkFig8Tco' -benchtime=100x -benchmem

echo '>> all checks passed'
