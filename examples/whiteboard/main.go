// Whiteboard: the CSCW scenario that motivates the paper. Several users
// share a drawing surface; every edit is broadcast with the CO protocol.
// Causal delivery is exactly what a groupware surface needs: if user B
// erases a shape after seeing it, no replica ever processes the erase
// before the draw — even over a lossy network — while fully concurrent
// edits may interleave differently (which is fine: they touch state
// independently).
//
// Each node applies delivered operations to its own replica of the board;
// at the end all replicas are compared cell by cell.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"sync"
	"time"

	"cobcast"
)

// op is one whiteboard edit.
type op struct {
	User  int    `json:"user"`
	Kind  string `json:"kind"` // "draw" or "erase"
	X     int    `json:"x"`
	Y     int    `json:"y"`
	Glyph string `json:"glyph,omitempty"`
}

// board is a tiny replicated canvas.
type board struct {
	cells map[[2]int]string
}

func newBoard() *board { return &board{cells: make(map[[2]int]string)} }

func (b *board) apply(o op) {
	switch o.Kind {
	case "draw":
		b.cells[[2]int{o.X, o.Y}] = o.Glyph
	case "erase":
		delete(b.cells, [2]int{o.X, o.Y})
	}
}

func (b *board) render(w, h int) string {
	out := ""
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if g, ok := b.cells[[2]int{x, y}]; ok {
				out += g
			} else {
				out += "."
			}
		}
		out += "\n"
	}
	return out
}

func main() {
	const users = 3
	cluster, err := cobcast.NewCluster(users,
		cobcast.WithLossRate(0.15), // a flaky network; the protocol repairs it
		cobcast.WithSeed(42),
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithRetransmitTimeout(5*time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	boards := make([]*board, users)
	applied := make([]int, users)
	var mu sync.Mutex
	var wg sync.WaitGroup

	const totalOps = 7
	for i := 0; i < users; i++ {
		i := i
		boards[i] = newBoard()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := range cluster.Node(i).Deliveries() {
				var o op
				if err := json.Unmarshal(m.Data, &o); err != nil {
					log.Printf("user %d: bad op: %v", i, err)
					continue
				}
				mu.Lock()
				boards[i].apply(o)
				applied[i]++
				done := applied[i] == totalOps
				mu.Unlock()
				if done {
					return
				}
			}
		}()
	}

	send := func(user int, o op) {
		o.User = user
		data, err := json.Marshal(o)
		if err != nil {
			log.Fatal(err)
		}
		if err := cluster.Broadcast(user, data); err != nil {
			log.Fatal(err)
		}
	}

	// User 0 sketches a face; users 1 and 2 add to it concurrently.
	send(0, op{Kind: "draw", X: 1, Y: 1, Glyph: "o"})
	send(0, op{Kind: "draw", X: 3, Y: 1, Glyph: "o"})
	send(1, op{Kind: "draw", X: 2, Y: 2, Glyph: "v"})
	send(2, op{Kind: "draw", X: 0, Y: 3, Glyph: "\\"})
	send(2, op{Kind: "draw", X: 4, Y: 3, Glyph: "/"})

	// User 1 looks at the face and corrects user 0's right eye: the erase
	// is causally after the draw, so no replica can erase first.
	time.Sleep(50 * time.Millisecond)
	send(1, op{Kind: "erase", X: 3, Y: 1})
	send(1, op{Kind: "draw", X: 3, Y: 1, Glyph: "O"})

	wg.Wait()

	fmt.Println("final board at every replica:")
	fmt.Print(boards[0].render(5, 4))
	for i := 1; i < users; i++ {
		for y := 0; y < 4; y++ {
			for x := 0; x < 5; x++ {
				k := [2]int{x, y}
				if boards[i].cells[k] != boards[0].cells[k] {
					log.Fatalf("replica %d diverged at (%d,%d): %q vs %q",
						i, x, y, boards[i].cells[k], boards[0].cells[k])
				}
			}
		}
	}
	fmt.Println("all replicas identical — causal order preserved under 15% loss")
}
