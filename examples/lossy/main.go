// Lossy: a close-up of the protocol's failure detection and selective
// retransmission (Section 4.3 of the paper). A four-node cluster pushes a
// file-transfer-like stream through a network that drops a quarter of all
// PDUs; the example reports how many PDUs were lost, how many RET
// requests were issued, and how many PDUs were selectively rebroadcast —
// and verifies every node still delivered the full stream in per-source
// order.
//
// The cluster runs with live observability attached (WithObservability):
// while it runs, /metrics, /statez and /debug/pprof/ are served on an
// ephemeral local port, and the closing report quotes the registry's own
// loss-detection counters.
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"log"
	"strings"
	"sync"
	"time"

	"cobcast"
	"cobcast/obsv"
)

func main() {
	const (
		nodes    = 4
		perNode  = 25
		lossRate = 0.25
	)
	reg := obsv.NewRegistry()
	cluster, err := cobcast.NewCluster(nodes,
		cobcast.WithLossRate(lossRate),
		cobcast.WithSeed(99),
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithRetransmitTimeout(4*time.Millisecond),
		cobcast.WithWindow(8),
		cobcast.WithObservability(reg),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	srv, err := obsv.Serve(reg, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("observability: http://%s/metrics (also /statez, /debug/pprof/)\n", srv.Addr())

	total := nodes * perNode
	var wg sync.WaitGroup
	orders := make([][]cobcast.Message, nodes)
	for i := 0; i < nodes; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := range cluster.Node(i).Deliveries() {
				orders[i] = append(orders[i], m)
				if len(orders[i]) == total {
					return
				}
			}
		}()
	}

	start := time.Now()
	for seq := 0; seq < perNode; seq++ {
		for n := 0; n < nodes; n++ {
			payload := fmt.Sprintf("chunk %d from node %d", seq, n)
			if err := cluster.Broadcast(n, []byte(payload)); err != nil {
				log.Fatal(err)
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Verify exactly-once, per-source-ordered delivery at every node.
	for i := 0; i < nodes; i++ {
		last := make(map[int]uint64)
		for _, m := range orders[i] {
			if prev, ok := last[m.Src]; ok && m.Seq <= prev {
				log.Fatalf("node %d delivered source %d out of order", i, m.Src)
			}
			last[m.Src] = m.Seq
		}
		if len(orders[i]) != total {
			log.Fatalf("node %d delivered %d/%d", i, len(orders[i]), total)
		}
	}

	net := cluster.NetworkStats()
	var retReq, retx, parked uint64
	for i := 0; i < nodes; i++ {
		s := cluster.Node(i).Stats()
		retReq += s.RetSent
		retx += s.Retransmitted
		parked += s.Parked
	}
	fmt.Printf("delivered %d messages to every node in %v despite %.0f%% loss\n",
		total, elapsed.Round(time.Millisecond), lossRate*100)
	fmt.Printf("network:   %d PDUs sent, %d dropped by the lossy network\n",
		net.Sent, net.DroppedLoss)
	fmt.Printf("recovery:  %d gaps detected (RET requests), %d PDUs selectively rebroadcast,\n",
		retReq, retx)
	fmt.Printf("           %d out-of-order PDUs parked and replayed in order\n", parked)
	fmt.Println("every node delivered the complete stream in per-source order")

	// The same story as told by the /metrics endpoint: quote the
	// loss-detection counter family from the registry's exposition.
	var buf bytes.Buffer
	if err := reg.WriteMetrics(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Println("as seen on /metrics:")
	for sc := bufio.NewScanner(&buf); sc.Scan(); {
		if strings.HasPrefix(sc.Text(), "cobcast_loss_detections_total") {
			fmt.Println("  " + sc.Text())
		}
	}
}
