// Bank: the fault-tolerant replicated-state scenario the paper cites
// ("the same events have to occur in the same order in each entity").
// Every replica applies the same stream of account operations delivered
// by the CO protocol.
//
// Causal order gives the integrity that matters here: an account is
// always opened before any deposit that was issued after its opening was
// observed. Concurrent operations may interleave differently across
// replicas, so operations are designed to commute when concurrent
// (credits and debits add; they never read-modify-write) — causal
// delivery plus commutative concurrent updates yields identical final
// balances at every replica, the classic CRDT-style recipe.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"cobcast"
)

type txn struct {
	Kind    string `json:"kind"` // "open", "credit", "debit"
	Account string `json:"account"`
	Amount  int64  `json:"amount,omitempty"`
}

// ledger is one replica's account state.
type ledger struct {
	balances map[string]int64
	rejected int // operations on unopened accounts (must stay 0)
}

func newLedger() *ledger { return &ledger{balances: make(map[string]int64)} }

func (l *ledger) apply(t txn) {
	switch t.Kind {
	case "open":
		if _, ok := l.balances[t.Account]; !ok {
			l.balances[t.Account] = 0
		}
	case "credit":
		if _, ok := l.balances[t.Account]; !ok {
			l.rejected++
			return
		}
		l.balances[t.Account] += t.Amount
	case "debit":
		if _, ok := l.balances[t.Account]; !ok {
			l.rejected++
			return
		}
		l.balances[t.Account] -= t.Amount
	}
}

func main() {
	const replicas = 4
	cluster, err := cobcast.NewCluster(replicas,
		cobcast.WithLossRate(0.1),
		cobcast.WithSeed(7),
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithRetransmitTimeout(5*time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	ledgers := make([]*ledger, replicas)
	var wg sync.WaitGroup
	const totalTxns = 9
	for i := 0; i < replicas; i++ {
		i := i
		ledgers[i] = newLedger()
		wg.Add(1)
		go func() {
			defer wg.Done()
			applied := 0
			for m := range cluster.Node(i).Deliveries() {
				var t txn
				if err := json.Unmarshal(m.Data, &t); err != nil {
					log.Printf("replica %d: bad txn: %v", i, err)
					continue
				}
				ledgers[i].apply(t)
				if applied++; applied == totalTxns {
					return
				}
			}
		}()
	}

	send := func(node int, t txn) {
		data, err := json.Marshal(t)
		if err != nil {
			log.Fatal(err)
		}
		if err := cluster.Broadcast(node, data); err != nil {
			log.Fatal(err)
		}
	}

	// Node 0 opens the accounts; everyone observes the openings (causal
	// predecessors) before the deposits issued afterwards.
	send(0, txn{Kind: "open", Account: "alice"})
	send(0, txn{Kind: "open", Account: "bob"})
	time.Sleep(50 * time.Millisecond) // ensure openings are delivered first

	// Concurrent traffic from different tellers: commutes per account.
	send(1, txn{Kind: "credit", Account: "alice", Amount: 700})
	send(2, txn{Kind: "credit", Account: "bob", Amount: 300})
	send(3, txn{Kind: "debit", Account: "alice", Amount: 150})
	send(1, txn{Kind: "credit", Account: "bob", Amount: 50})
	send(2, txn{Kind: "debit", Account: "bob", Amount: 100})
	send(3, txn{Kind: "credit", Account: "alice", Amount: 25})
	send(0, txn{Kind: "debit", Account: "alice", Amount: 75})

	wg.Wait()

	fmt.Println("final balances at every replica:")
	var accounts []string
	for a := range ledgers[0].balances {
		accounts = append(accounts, a)
	}
	sort.Strings(accounts)
	for _, a := range accounts {
		fmt.Printf("  %-6s %6d\n", a, ledgers[0].balances[a])
	}
	for i := 0; i < replicas; i++ {
		if ledgers[i].rejected != 0 {
			log.Fatalf("replica %d rejected %d ops — causal order violated", i, ledgers[i].rejected)
		}
		for _, a := range accounts {
			if ledgers[i].balances[a] != ledgers[0].balances[a] {
				log.Fatalf("replica %d diverged on %s: %d vs %d",
					i, a, ledgers[i].balances[a], ledgers[0].balances[a])
			}
		}
	}
	fmt.Println("all replicas agree; no operation ever hit an unopened account (10% loss repaired)")
}
