// Quickstart: a three-node in-process cluster exchanging causally ordered
// broadcasts. Every node — including each sender — delivers every message
// exactly once, and any message sent after another was delivered is
// delivered after it everywhere.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"cobcast"
)

func main() {
	cluster, err := cobcast.NewCluster(3,
		cobcast.WithDeferredAckInterval(2*time.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	const total = 4 // messages each node will deliver

	var wg sync.WaitGroup
	var mu sync.Mutex
	for i := 0; i < cluster.Size(); i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			seen := 0
			for m := range cluster.Node(i).Deliveries() {
				mu.Lock()
				fmt.Printf("node %d delivered: [from %d #%d] %s\n", i, m.Src, m.Seq, m.Data)
				mu.Unlock()
				if seen++; seen == total {
					return
				}
			}
		}()
	}

	// Node 0 asks a question; node 1 answers only after delivering it, so
	// the answer is causally after the question — every node will deliver
	// them in that order. Nodes 0 and 2 also chime in concurrently.
	if err := cluster.Broadcast(0, []byte("anyone up for lunch?")); err != nil {
		log.Fatal(err)
	}
	// Give node 1 time to deliver the question before answering, so the
	// answer is causally downstream. (A real application would broadcast
	// from inside its delivery loop.)
	time.Sleep(20 * time.Millisecond)
	if err := cluster.Broadcast(1, []byte("yes — noodles")); err != nil {
		log.Fatal(err)
	}
	if err := cluster.Broadcast(2, []byte("I brought sandwiches")); err != nil {
		log.Fatal(err)
	}
	if err := cluster.Broadcast(0, []byte("noodles it is")); err != nil {
		log.Fatal(err)
	}

	wg.Wait()
	fmt.Println("all nodes delivered all messages in a causality-preserving order")
}
