// UDPChat: a cluster of nodes communicating over real UDP sockets — the
// deployment shape of the paper's testbed (one entity per workstation on
// an Ethernet), here as separate nodes on the loopback interface. Each
// node runs a chat participant; replies are broadcast only after the
// message they answer was delivered, so every participant sees every
// conversation thread in a causally consistent order even though UDP
// reorders and may drop datagrams.
//
// Run with -total to upgrade to total order: then every participant sees
// the identical transcript.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"cobcast"
)

func main() {
	total := flag.Bool("total", false, "use total-order delivery")
	flag.Parse()
	if err := run(*total); err != nil {
		log.Fatal(err)
	}
}

func run(totalOrder bool) error {
	const n = 3

	// Discover n loopback ports, then wire every node to its peers.
	addrs := make([]string, n)
	for i := range addrs {
		probe, err := cobcast.NewUDPTransport("127.0.0.1:0", []string{"127.0.0.1:1"}, 0)
		if err != nil {
			return err
		}
		addrs[i] = probe.LocalAddr()
		if err := probe.Close(); err != nil {
			return err
		}
	}
	opts := []cobcast.Option{cobcast.WithDeferredAckInterval(2 * time.Millisecond)}
	if totalOrder {
		opts = append(opts, cobcast.WithTotalOrder())
	}
	nodes := make([]*cobcast.Node, n)
	for i := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		trans, err := cobcast.NewUDPTransport(addrs[i], peers, 0)
		if err != nil {
			return err
		}
		node, err := cobcast.NewNode(i, n, trans, opts...)
		if err != nil {
			return err
		}
		nodes[i] = node
		defer node.Close()
	}

	// Each participant logs its transcript; participant 1 replies to the
	// greeting after delivering it (a causal reply), participant 2 chats
	// concurrently.
	const expect = 4
	var (
		mu          sync.Mutex
		transcripts = make([][]string, n)
		wg          sync.WaitGroup
	)
	for i := range nodes {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := range nodes[i].Deliveries() {
				mu.Lock()
				transcripts[i] = append(transcripts[i], fmt.Sprintf("%d: %s", m.Src, m.Data))
				count := len(transcripts[i])
				mu.Unlock()
				if i == 1 && string(m.Data) == "hello everyone" {
					if err := nodes[1].Broadcast([]byte("hi! (reply)")); err != nil {
						log.Printf("reply: %v", err)
					}
				}
				if count == expect {
					return
				}
			}
		}()
	}

	if err := nodes[0].Broadcast([]byte("hello everyone")); err != nil {
		return err
	}
	if err := nodes[2].Broadcast([]byte("anyone seen my keys?")); err != nil {
		return err
	}
	time.Sleep(30 * time.Millisecond)
	if err := nodes[0].Broadcast([]byte("they're on the desk")); err != nil {
		return err
	}
	wg.Wait()

	for i, tr := range transcripts {
		fmt.Printf("participant %d transcript:\n", i)
		var greetAt, replyAt int
		for line, s := range tr {
			fmt.Printf("  %s\n", s)
			if s == "0: hello everyone" {
				greetAt = line
			}
			if s == "1: hi! (reply)" {
				replyAt = line
			}
		}
		if replyAt < greetAt {
			return fmt.Errorf("participant %d saw the reply before the greeting", i)
		}
	}
	fmt.Println("every participant saw the reply after the greeting (causal order over UDP)")
	if totalOrder {
		for i := 1; i < n; i++ {
			for line := range transcripts[0] {
				if transcripts[i][line] != transcripts[0][line] {
					return fmt.Errorf("total order violated at participant %d line %d", i, line)
				}
			}
		}
		fmt.Println("and all transcripts are identical (total order)")
	}
	return nil
}
