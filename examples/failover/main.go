// Failover: the fault-tolerance story end to end. The CO protocol's
// acknowledgment quorum normally includes every cluster member, so one
// crashed node would freeze delivery forever. With a suspect timeout, the
// survivors notice the silence, evict the dead member, and the causal
// broadcast keeps flowing — the failure-handling extension described in
// DESIGN.md.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"cobcast"
)

func main() {
	const n = 4
	cluster, err := cobcast.NewCluster(n,
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithRetransmitTimeout(4*time.Millisecond),
		cobcast.WithSuspectTimeout(200*time.Millisecond),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	var (
		mu        sync.Mutex
		delivered = make([]int, n)
	)
	var wg sync.WaitGroup
	const survivors = 3
	const total = 6
	for i := 0; i < survivors; i++ { // node 3 will crash; don't wait on it
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := range cluster.Node(i).Deliveries() {
				mu.Lock()
				delivered[i]++
				fmt.Printf("node %d delivered: %q\n", i, m.Data)
				count := delivered[i]
				mu.Unlock()
				if count == total {
					return
				}
			}
		}()
	}

	if err := cluster.Broadcast(0, []byte("message 1 (everyone up)")); err != nil {
		log.Fatal(err)
	}
	if err := cluster.Broadcast(1, []byte("message 2 (everyone up)")); err != nil {
		log.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)

	fmt.Println("--- node 3 crashes ---")
	cluster.Isolate(3)

	for i := 3; i <= total; i++ {
		sender := (i - 3) % survivors
		msg := fmt.Sprintf("message %d (after the crash)", i)
		if err := cluster.Broadcast(sender, []byte(msg)); err != nil {
			log.Fatal(err)
		}
	}
	wg.Wait()

	for i := 0; i < survivors; i++ {
		s := cluster.Node(i).Stats()
		fmt.Printf("node %d: delivered=%d evicted=%d (auto-suspected=%d)\n",
			i, s.Delivered, s.Evicted, s.AutoSuspected)
	}
	fmt.Println("survivors detected the crash, evicted node 3, and kept delivering in causal order")
}
