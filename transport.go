package cobcast

import (
	"cobcast/internal/obsv"
	"cobcast/internal/udpnet"
)

// MaxDatagram is the largest datagram the UDP transport accepts. A
// datagram carries one batch frame whose size grows with the number of
// batched PDUs and O(n) per PDU via the ACK vector, so payloads must
// stay comfortably below this bound. The node's link layer flushes a
// frame before it would cross MaxDatagram.
const MaxDatagram = udpnet.MaxDatagram

// ErrDatagramTooLarge is returned by UDPTransport.Broadcast for
// datagrams over MaxDatagram; rejections are counted in
// TransportStats.Oversize.
var ErrDatagramTooLarge = udpnet.ErrDatagramTooLarge

// TransportStats counts transport-level events on a UDPTransport.
type TransportStats struct {
	// Sent and Received count datagrams (batch frames, not PDUs).
	Sent     uint64
	Received uint64
	// Overrun counts datagrams dropped at a full inbox — the paper's
	// receive-buffer-overrun loss, repaired by selective retransmission.
	Overrun uint64
	// ReadErrors counts failed socket reads.
	ReadErrors uint64
	// Oversize counts datagrams rejected for exceeding MaxDatagram.
	Oversize uint64
	// SendErrors counts per-peer send failures (previously silent);
	// each is a dropped datagram the protocol repairs like loss.
	SendErrors uint64
	// SendmmsgCalls and RecvmmsgCalls count batched syscalls on the
	// sendmmsg/recvmmsg wire path; both stay zero on the portable
	// per-datagram path.
	SendmmsgCalls uint64
	RecvmmsgCalls uint64
}

// TransportOption configures a UDPTransport at creation.
type TransportOption = udpnet.Option

// WithBatchSyscalls forces the batched-syscall wire path on or off,
// overriding the COBCAST_BATCH_SYSCALLS environment variable and the
// platform default (on where sendmmsg/recvmmsg exist, currently Linux).
// Forcing it on where unsupported fails NewUDPTransport; if the running
// kernel later rejects the syscalls, the transport falls back to the
// per-datagram path at runtime without losing data.
func WithBatchSyscalls(on bool) TransportOption { return udpnet.WithBatchSyscalls(on) }

// WithSocketBuffers requests SO_RCVBUF/SO_SNDBUF of the given size
// (default 4 MiB; <= 0 keeps the OS defaults). The kernel may clamp the
// request; the effective sizes appear in /statez and SocketBuffers.
// Larger receive buffers absorb bursts the inbox would otherwise see as
// Overrun — but kernel-level drops from an undersized SO_RCVBUF are
// invisible to any counter, so size this above the expected burst.
func WithSocketBuffers(bytes int) TransportOption { return udpnet.WithSocketBuffers(bytes) }

// UDPTransport is a Transport over UDP, substituting for the paper's
// Ethernet testbed: datagrams may be lost, duplicated or reordered across
// senders, while each sender→receiver path stays ordered on LAN and
// loopback in practice (the MC service contract).
type UDPTransport struct {
	t *udpnet.Transport
}

var _ BatchTransport = (*UDPTransport)(nil)

// NewUDPTransport binds a UDP socket on local (for example
// "127.0.0.1:9001", or ":0" for an ephemeral port) that broadcasts to the
// given peer addresses; pass it to NewNode. inboxCap bounds the receive
// queue (0 means 1024). Options select the wire path and socket buffer
// sizes; by default the batched sendmmsg/recvmmsg path is used where the
// platform supports it.
func NewUDPTransport(local string, peers []string, inboxCap int, opts ...TransportOption) (*UDPTransport, error) {
	t, err := udpnet.New(local, peers, inboxCap, opts...)
	if err != nil {
		return nil, err
	}
	return &UDPTransport{t: t}, nil
}

// LocalAddr returns the bound socket address (useful with port ":0").
func (u *UDPTransport) LocalAddr() string { return u.t.LocalAddr() }

// BatchSyscalls reports whether the transport is using the batched
// sendmmsg/recvmmsg wire path.
func (u *UDPTransport) BatchSyscalls() bool { return u.t.BatchSyscalls() }

// SocketBuffers returns the effective SO_RCVBUF/SO_SNDBUF sizes as the
// kernel reports them (0 when left at OS defaults off Linux).
func (u *UDPTransport) SocketBuffers() (read, write int) { return u.t.SocketBuffers() }

// Stats returns a snapshot of the transport counters.
func (u *UDPTransport) Stats() TransportStats {
	s := u.t.Stats()
	return TransportStats{
		Sent:          s.Sent,
		Received:      s.Received,
		Overrun:       s.Overrun,
		ReadErrors:    s.ReadErrors,
		Oversize:      s.Oversize,
		SendErrors:    s.SendErrors,
		SendmmsgCalls: s.SendmmsgCalls,
		RecvmmsgCalls: s.RecvmmsgCalls,
	}
}

// TransportState describes the transport's wire-path configuration;
// NewNode attaches it to a WithObservability registry for /statez.
func (u *UDPTransport) TransportState() obsv.TransportState { return u.t.State() }

// Metrics exposes the transport's live counters; NewNode uses it to
// register the transport with a WithObservability registry.
func (u *UDPTransport) Metrics() *obsv.TransportMetrics { return u.t.Metrics() }

// Broadcast implements Transport. The datagram (one batch frame) is
// handed to the kernel before returning, so the caller may reuse the
// buffer immediately; oversize datagrams fail with ErrDatagramTooLarge.
func (u *UDPTransport) Broadcast(datagram []byte) error { return u.t.Broadcast(datagram) }

// BroadcastBatch implements BatchTransport: it sends every datagram to
// every peer, in slice order, using one sendmmsg per peer-sweep on the
// batched wire path (a single syscall for the whole batch) and a
// Broadcast loop otherwise. Buffers may be reused once it returns.
func (u *UDPTransport) BroadcastBatch(datagrams [][]byte) error { return u.t.BroadcastBatch(datagrams) }

// Recv implements Transport. Delivered slices are whole datagrams (batch
// frames) backed by the pdu datagram pool; the node's link layer decodes
// each frame and recycles the buffer via pdu.PutDatagram.
func (u *UDPTransport) Recv() <-chan []byte { return u.t.Recv() }

// Close implements Transport.
func (u *UDPTransport) Close() error { return u.t.Close() }
