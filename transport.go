package cobcast

import (
	"cobcast/internal/obsv"
	"cobcast/internal/udpnet"
)

// MaxDatagram is the largest datagram the UDP transport accepts. A
// datagram carries one batch frame whose size grows with the number of
// batched PDUs and O(n) per PDU via the ACK vector, so payloads must
// stay comfortably below this bound. The node's link layer flushes a
// frame before it would cross MaxDatagram.
const MaxDatagram = udpnet.MaxDatagram

// ErrDatagramTooLarge is returned by UDPTransport.Broadcast for
// datagrams over MaxDatagram; rejections are counted in
// TransportStats.Oversize.
var ErrDatagramTooLarge = udpnet.ErrDatagramTooLarge

// TransportStats counts transport-level events on a UDPTransport.
type TransportStats struct {
	// Sent and Received count datagrams (batch frames, not PDUs).
	Sent     uint64
	Received uint64
	// Overrun counts datagrams dropped at a full inbox — the paper's
	// receive-buffer-overrun loss, repaired by selective retransmission.
	Overrun uint64
	// ReadErrors counts failed socket reads.
	ReadErrors uint64
	// Oversize counts datagrams rejected for exceeding MaxDatagram.
	Oversize uint64
}

// UDPTransport is a Transport over UDP, substituting for the paper's
// Ethernet testbed: datagrams may be lost, duplicated or reordered across
// senders, while each sender→receiver path stays ordered on LAN and
// loopback in practice (the MC service contract).
type UDPTransport struct {
	t *udpnet.Transport
}

var _ Transport = (*UDPTransport)(nil)

// NewUDPTransport binds a UDP socket on local (for example
// "127.0.0.1:9001", or ":0" for an ephemeral port) that broadcasts to the
// given peer addresses; pass it to NewNode. inboxCap bounds the receive
// queue (0 means 1024).
func NewUDPTransport(local string, peers []string, inboxCap int) (*UDPTransport, error) {
	t, err := udpnet.New(local, peers, inboxCap)
	if err != nil {
		return nil, err
	}
	return &UDPTransport{t: t}, nil
}

// LocalAddr returns the bound socket address (useful with port ":0").
func (u *UDPTransport) LocalAddr() string { return u.t.LocalAddr() }

// Stats returns a snapshot of the transport counters.
func (u *UDPTransport) Stats() TransportStats {
	s := u.t.Stats()
	return TransportStats{
		Sent:       s.Sent,
		Received:   s.Received,
		Overrun:    s.Overrun,
		ReadErrors: s.ReadErrors,
		Oversize:   s.Oversize,
	}
}

// Metrics exposes the transport's live counters; NewNode uses it to
// register the transport with a WithObservability registry.
func (u *UDPTransport) Metrics() *obsv.TransportMetrics { return u.t.Metrics() }

// Broadcast implements Transport. The datagram (one batch frame) is
// handed to the kernel before returning, so the caller may reuse the
// buffer immediately; oversize datagrams fail with ErrDatagramTooLarge.
func (u *UDPTransport) Broadcast(datagram []byte) error { return u.t.Broadcast(datagram) }

// Recv implements Transport. Delivered slices are whole datagrams (batch
// frames) backed by the pdu datagram pool; the node's link layer decodes
// each frame and recycles the buffer via pdu.PutDatagram.
func (u *UDPTransport) Recv() <-chan []byte { return u.t.Recv() }

// Close implements Transport.
func (u *UDPTransport) Close() error { return u.t.Close() }
