package cobcast_test

import (
	"testing"
	"time"

	"cobcast"
)

// TestOptionsApply exercises every functional option through a working
// cluster, ensuring each value reaches the protocol (observable through
// behaviour or stats).
func TestOptionsApply(t *testing.T) {
	t.Run("window one blocks", func(t *testing.T) {
		c, err := cobcast.NewCluster(2,
			cobcast.WithWindow(1),
			cobcast.WithDeferredAckInterval(time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for i := 0; i < 4; i++ {
			if err := c.Broadcast(0, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 4; i++ {
			select {
			case <-c.Node(1).Deliveries():
			case <-time.After(30 * time.Second):
				t.Fatal("window-1 cluster stalled")
			}
		}
		if c.Node(0).Stats().FlowBlocked == 0 {
			t.Error("window 1 never engaged flow control")
		}
	})

	t.Run("cluster id isolates clusters", func(t *testing.T) {
		// Two nodes configured with different CIDs on one network must
		// reject each other's PDUs.
		c, err := cobcast.NewCluster(2,
			cobcast.WithClusterID(7),
			cobcast.WithDeferredAckInterval(time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Broadcast(0, []byte("x")); err != nil {
			t.Fatal(err)
		}
		select {
		case <-c.Node(1).Deliveries():
		case <-time.After(30 * time.Second):
			t.Fatal("same-CID delivery failed")
		}
		if got := c.Node(1).Stats().InvalidPDUs; got != 0 {
			t.Errorf("InvalidPDUs = %d within one cluster", got)
		}
	})

	t.Run("buffer and units options validated", func(t *testing.T) {
		if _, err := cobcast.NewCluster(4,
			cobcast.WithBufferUnits(16),
			cobcast.WithUnitsPerPDU(4)); err == nil {
			t.Error("config with zero flow credit accepted")
		}
		c, err := cobcast.NewCluster(2,
			cobcast.WithBufferUnits(64),
			cobcast.WithUnitsPerPDU(2),
			cobcast.WithDeferredAckInterval(time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Broadcast(0, []byte("x")); err != nil {
			t.Fatal(err)
		}
		select {
		case <-c.Node(1).Deliveries():
		case <-time.After(30 * time.Second):
			t.Fatal("stalled")
		}
	})

	t.Run("tick interval", func(t *testing.T) {
		c, err := cobcast.NewCluster(2,
			cobcast.WithTickInterval(500*time.Microsecond),
			cobcast.WithDeferredAckInterval(2*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Broadcast(0, []byte("x")); err != nil {
			t.Fatal(err)
		}
		select {
		case <-c.Node(1).Deliveries():
		case <-time.After(30 * time.Second):
			t.Fatal("stalled")
		}
	})

	t.Run("network delay", func(t *testing.T) {
		c, err := cobcast.NewCluster(2,
			cobcast.WithNetworkDelay(2*time.Millisecond),
			cobcast.WithDeferredAckInterval(time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		start := time.Now()
		if err := c.Broadcast(0, []byte("x")); err != nil {
			t.Fatal(err)
		}
		select {
		case <-c.Node(1).Deliveries():
		case <-time.After(30 * time.Second):
			t.Fatal("stalled")
		}
		// Full acknowledgment needs at least two propagation delays.
		if e := time.Since(start); e < 4*time.Millisecond {
			t.Errorf("delivered in %v, faster than 2 propagation delays", e)
		}
	})

	t.Run("inbox capacity induces overrun", func(t *testing.T) {
		c, err := cobcast.NewCluster(3,
			cobcast.WithInboxCapacity(2),
			cobcast.WithDeferredAckInterval(time.Millisecond),
			cobcast.WithRetransmitTimeout(4*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		const msgs = 30
		for i := 0; i < msgs; i++ {
			if err := c.Broadcast(i%3, []byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < msgs; i++ {
			select {
			case <-c.Node(0).Deliveries():
			case <-time.After(60 * time.Second):
				t.Fatalf("stalled at %d/%d (net %+v)", i, msgs, c.NetworkStats())
			}
		}
	})
}
