package cobcast_test

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"cobcast"
)

// newUDPCluster starts n nodes over UDP loopback with ephemeral ports.
func newUDPCluster(t *testing.T, n int, opts ...cobcast.Option) []*cobcast.Node {
	t.Helper()
	return newUDPClusterPerNode(t, n, func(int) []cobcast.Option { return opts })
}

// newUDPClusterPerNode is newUDPCluster with per-node options, for
// clusters whose members are configured differently (mixed wire codecs).
// Trailing transport options apply to every member's UDP transport.
func newUDPClusterPerNode(t *testing.T, n int, optsFor func(i int) []cobcast.Option, topts ...cobcast.TransportOption) []*cobcast.Node {
	t.Helper()
	// Discover n free ports first (bind :0, note the address, release),
	// then re-bind each with the full peer list. Mildly racy, but fine on
	// loopback in a test environment.
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		tr, err := cobcast.NewUDPTransport("127.0.0.1:0", []string{"127.0.0.1:1"}, 0)
		if err != nil {
			t.Fatalf("transport %d: %v", i, err)
		}
		addrs[i] = tr.LocalAddr()
		if err := tr.Close(); err != nil {
			t.Fatal(err)
		}
	}
	nodes := make([]*cobcast.Node, n)
	for i := 0; i < n; i++ {
		var peers []string
		for j := 0; j < n; j++ {
			if j != i {
				peers = append(peers, addrs[j])
			}
		}
		tr, err := cobcast.NewUDPTransport(addrs[i], peers, 0, topts...)
		if err != nil {
			t.Fatalf("rebind %d: %v", i, err)
		}
		nd, err := cobcast.NewNode(i, n, tr, optsFor(i)...)
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nodes[i] = nd
		t.Cleanup(func() { nd.Close() })
	}
	return nodes
}

func TestUDPClusterEndToEnd(t *testing.T) {
	nodes := newUDPCluster(t, 3, cobcast.WithDeferredAckInterval(2*time.Millisecond))
	const msgs = 9
	for i := 0; i < msgs; i++ {
		if err := nodes[i%3].Broadcast([]byte(fmt.Sprintf("udp-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i, nd := range nodes {
		var got []cobcast.Message
		deadline := time.After(30 * time.Second)
		for len(got) < msgs {
			select {
			case m := <-nd.Deliveries():
				got = append(got, m)
			case <-deadline:
				t.Fatalf("node %d delivered %d/%d (stats %+v)", i, len(got), msgs, nd.Stats())
			}
		}
		last := map[int]uint64{}
		for _, m := range got {
			if prev, ok := last[m.Src]; ok && m.Seq <= prev {
				t.Errorf("node %d: source %d out of order", i, m.Src)
			}
			last[m.Src] = m.Seq
		}
	}
}

// TestUDPMixedCodecClusterConverges runs a rolling-upgrade shape: one
// node still speaking wire codec v1, the rest v2 with different
// full-stamp intervals (including K=1, which full-stamps every PDU).
// Reception is version-agnostic, so the cluster must converge to the
// same causally ordered deliveries regardless of the codec mix.
func TestUDPMixedCodecClusterConverges(t *testing.T) {
	common := []cobcast.Option{cobcast.WithDeferredAckInterval(2 * time.Millisecond)}
	perNode := [][]cobcast.Option{
		{cobcast.WithWireCodec(1)},
		{cobcast.WithWireCodec(2)},
		{cobcast.WithWireCodec(2), cobcast.WithStampInterval(1)},
		{cobcast.WithWireCodec(2), cobcast.WithStampInterval(2)},
	}
	n := len(perNode)
	nodes := newUDPClusterPerNode(t, n, func(i int) []cobcast.Option {
		return append(append([]cobcast.Option{}, common...), perNode[i]...)
	})
	const msgs = 20
	for i := 0; i < msgs; i++ {
		if err := nodes[i%n].Broadcast([]byte(fmt.Sprintf("mixed-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i, nd := range nodes {
		var got []cobcast.Message
		deadline := time.After(30 * time.Second)
		for len(got) < msgs {
			select {
			case m := <-nd.Deliveries():
				got = append(got, m)
			case <-deadline:
				t.Fatalf("node %d delivered %d/%d (stats %+v)", i, len(got), msgs, nd.Stats())
			}
		}
		last := map[int]uint64{}
		for _, m := range got {
			if prev, ok := last[m.Src]; ok && m.Seq <= prev {
				t.Errorf("node %d: source %d out of order", i, m.Src)
			}
			last[m.Src] = m.Seq
		}
	}
}

// TestUDPWirePathEquivalence runs the same workload over two clusters —
// one forced onto the batched sendmmsg/recvmmsg wire path, one forced
// onto the portable per-datagram path — and requires the protocol
// outcome to be identical: every node delivers the same message set, in
// per-source order, with equal digests across the two wire paths. The
// wire paths must be indistinguishable above the transport.
func TestUDPWirePathEquivalence(t *testing.T) {
	const n, msgs = 3, 24
	digest := func(batch bool) string {
		nodes := newUDPClusterPerNode(t, n,
			func(int) []cobcast.Option {
				return []cobcast.Option{cobcast.WithDeferredAckInterval(2 * time.Millisecond)}
			},
			cobcast.WithBatchSyscalls(batch))
		for i := 0; i < msgs; i++ {
			if err := nodes[i%n].Broadcast([]byte(fmt.Sprintf("wirepath-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		var sum string
		for i, nd := range nodes {
			var got []cobcast.Message
			deadline := time.After(30 * time.Second)
			for len(got) < msgs {
				select {
				case m := <-nd.Deliveries():
					got = append(got, m)
				case <-deadline:
					t.Fatalf("batch=%v node %d delivered %d/%d", batch, i, len(got), msgs)
				}
			}
			last := map[int]uint64{}
			for _, m := range got {
				if prev, ok := last[m.Src]; ok && m.Seq <= prev {
					t.Errorf("batch=%v node %d: source %d out of order", batch, i, m.Src)
				}
				last[m.Src] = m.Seq
			}
			// Canonical per-node digest: deliveries sorted by (Src, Seq)
			// so legal cross-source interleaving differences don't leak in.
			sort.Slice(got, func(a, b int) bool {
				if got[a].Src != got[b].Src {
					return got[a].Src < got[b].Src
				}
				return got[a].Seq < got[b].Seq
			})
			for _, m := range got {
				sum += fmt.Sprintf("%d/%d/%s;", m.Src, m.Seq, m.Data)
			}
			sum += "|"
		}
		return sum
	}
	if a, b := digest(true), digest(false); a != b {
		t.Errorf("clusters diverged across wire paths:\nmmsg: %s\nper-datagram: %s", a, b)
	}
}

func TestNewNodeRejectsUnknownWireCodec(t *testing.T) {
	tr, err := cobcast.NewUDPTransport("127.0.0.1:0", []string{"127.0.0.1:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if _, err := cobcast.NewNode(0, 2, tr, cobcast.WithWireCodec(3)); err == nil {
		t.Fatal("wire codec version 3 accepted")
	}
}

func TestUDPTransportValidation(t *testing.T) {
	if _, err := cobcast.NewUDPTransport("127.0.0.1:0", nil, 0); err == nil {
		t.Error("no peers accepted")
	}
	if _, err := cobcast.NewUDPTransport("not-an-addr", []string{"127.0.0.1:1"}, 0); err == nil {
		t.Error("bad local address accepted")
	}
	if _, err := cobcast.NewUDPTransport("127.0.0.1:0", []string{"bad peer"}, 0); err == nil {
		t.Error("bad peer address accepted")
	}
}

func TestUDPTransportOversizeDatagram(t *testing.T) {
	tr, err := cobcast.NewUDPTransport("127.0.0.1:0", []string{"127.0.0.1:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	err = tr.Broadcast(make([]byte, cobcast.MaxDatagram+1))
	if !errors.Is(err, cobcast.ErrDatagramTooLarge) {
		t.Errorf("oversize error = %v, want ErrDatagramTooLarge", err)
	}
	if s := tr.Stats(); s.Oversize != 1 {
		t.Errorf("Oversize = %d, want 1 (stats %+v)", s.Oversize, s)
	}
}

func TestUDPTransportCloseIdempotent(t *testing.T) {
	tr, err := cobcast.NewUDPTransport("127.0.0.1:0", []string{"127.0.0.1:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal("second close errored")
	}
	if _, ok := <-tr.Recv(); ok {
		t.Error("recv channel not closed")
	}
	if err := tr.Broadcast([]byte("x")); err == nil {
		t.Error("broadcast after close succeeded")
	}
}
