package cobcast

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"

	"cobcast/internal/core"
	"cobcast/internal/groups"
	"cobcast/internal/network"
	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
)

// GroupID names one independently ordered group (topic). Group 0 is the
// default group every Node speaks on; non-zero IDs are usually derived
// from names with Group. Each group is its own protocol instance — own
// sequence numbers, acknowledgment vectors, retransmission and delivery
// order — multiplexed over the node's one transport.
type GroupID uint32

// DefaultGroup is the group Node.Broadcast and Node.Deliveries use; its
// wire traffic is byte-identical to a single-group node's.
const DefaultGroup GroupID = 0

// MaxGroups is the default bound on lazily instantiated groups per node;
// see WithMaxGroups.
const MaxGroups = groups.DefaultMaxGroups

// ErrTooManyGroups is returned by GroupPort.Broadcast when the node's
// group bound (WithMaxGroups) is exhausted.
var ErrTooManyGroups = errors.New("cobcast: too many groups")

// Group derives a GroupID from a name: FNV-1a, folded into the wire
// codec's valid range, with 0 reserved for the default group. All nodes
// derive identical IDs from identical names. Distinct names may collide
// (it is a 28-bit hash); colliding groups merge into one ordered group,
// which is safe but surprising — applications needing guaranteed
// disjointness should assign numeric GroupIDs themselves.
func Group(name string) GroupID {
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	g := h.Sum32() & pdu.MaxGroupID
	if g == 0 {
		// Remap the (1-in-2^28) hash landing on the reserved default
		// group; any fixed non-zero value keeps all nodes in agreement.
		g = 0x9E3779B1 & pdu.MaxGroupID
	}
	return GroupID(g)
}

// GroupPort is a node's handle on one group: Broadcast submits to the
// group's ordered stream, Deliveries yields the group's causally (or
// totally) ordered messages. Obtain ports with Node.Group or
// Cluster.Group; the same port is returned for the same ID. The
// DefaultGroup port is the node itself in disguise — its Broadcast and
// Deliveries are exactly Node.Broadcast and Node.Deliveries.
type GroupPort struct {
	nd *Node
	id GroupID

	// ledger is this group's memory ledger (nil without
	// WithMemoryBudget): every group engine gets its own budget, and the
	// port gates its producers on it exactly as Node.Broadcast gates on
	// the default engine's.
	ledger *core.Ledger

	// Non-default ports run their own unbounded queue + pump so a slow
	// consumer of one group never stalls the shard that feeds it (or
	// any other group). def ports delegate to the node's.
	def      bool
	queue    deliveryQueue
	deliver  chan Message
	pumpDone chan struct{}
}

// ID returns the port's group.
func (p *GroupPort) ID() GroupID { return p.id }

// Broadcast submits data for ordered broadcast on this group. The data
// is copied. The first send on a group lazily instantiates its engine
// on every receiving node, up to the WithMaxGroups bound. With
// WithMemoryBudget it blocks or sheds (per WithBackpressure) against
// this group's own budget.
func (p *GroupPort) Broadcast(data []byte) error {
	return p.BroadcastContext(context.Background(), data)
}

// BroadcastContext is Broadcast bounded by a context; see
// Node.BroadcastContext for the backpressure semantics.
func (p *GroupPort) BroadcastContext(ctx context.Context, data []byte) error {
	if p.def {
		return p.nd.BroadcastContext(ctx, data)
	}
	if err := p.nd.admit(ctx, p.ledger); err != nil {
		return err
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	select {
	case <-p.nd.stop:
		return ErrClosed
	default:
	}
	err := p.nd.groupRuntime().Submit(uint32(p.id), buf)
	switch {
	case errors.Is(err, groups.ErrClosed):
		return ErrClosed
	case errors.Is(err, groups.ErrTooManyGroups):
		return fmt.Errorf("%w: group %d", ErrTooManyGroups, p.id)
	}
	return err
}

// Deliveries returns the group's ordered message stream. The channel is
// closed by Node.Close. Consumers should drain promptly; undelivered
// messages buffer without bound.
func (p *GroupPort) Deliveries() <-chan Message {
	if p.def {
		return p.nd.deliver
	}
	return p.deliver
}

// Stats returns the group's protocol counters; ok is false if the group
// has no engine on this node yet.
func (p *GroupPort) Stats() (Stats, bool) {
	if p.def {
		return p.nd.Stats(), true
	}
	s, ok := p.nd.groupRuntime().Stats(uint32(p.id))
	if !ok {
		return Stats{}, false
	}
	return fromCoreStats(s), true
}

// pump mirrors Node.pump for one group's queue.
func (p *GroupPort) pump() {
	defer close(p.pumpDone)
	for {
		m, ok := p.queue.pop()
		if !ok {
			return
		}
		select {
		case p.deliver <- m:
		case <-p.nd.stop:
			return
		}
	}
}

// Group returns the node's port on group g, creating it on first use.
// For g != DefaultGroup this starts the node's multi-group runtime (a
// set of shard goroutines, see WithGroupShards) if it is not running
// yet.
func (nd *Node) Group(g GroupID) *GroupPort {
	nd.groupsMu.Lock()
	defer nd.groupsMu.Unlock()
	return nd.portLocked(g)
}

// Group returns node i's port on group g; shorthand for
// c.Node(i).Group(g).
func (c *Cluster) Group(i int, g GroupID) *GroupPort { return c.nodes[i].Group(g) }

func (nd *Node) portLocked(g GroupID) *GroupPort {
	if p, ok := nd.groupPorts[g]; ok {
		return p
	}
	if nd.groupPorts == nil {
		nd.groupPorts = make(map[GroupID]*GroupPort)
	}
	p := &GroupPort{nd: nd, id: g, ledger: nd.groupLedgerLocked(g)}
	if g == DefaultGroup {
		p.def = true
	} else {
		p.deliver = make(chan Message)
		p.pumpDone = make(chan struct{})
		// Reserve the group so its engine can be built on first input;
		// past the MaxGroups bound the reservation fails and the error
		// surfaces on Broadcast instead.
		_ = nd.groupRuntimeLocked().Open(uint32(g))
		go p.pump()
	}
	nd.groupPorts[g] = p
	return p
}

// groupRuntime returns the node's multi-group runtime, starting it on
// first use.
func (nd *Node) groupRuntime() *groups.Registry {
	nd.groupsMu.Lock()
	defer nd.groupsMu.Unlock()
	return nd.groupRuntimeLocked()
}

func (nd *Node) groupRuntimeLocked() *groups.Registry {
	if nd.groupRT != nil {
		return nd.groupRT
	}
	rt, err := groups.New(groups.Config{
		Shards:         nd.gseed.o.groupShards,
		MaxGroups:      nd.gseed.o.maxGroups,
		NewEntity:      nd.newGroupEntity,
		NewFrames:      nd.gseed.newFrames,
		Deliver:        nd.deliverGroup,
		DroppedUnknown: nd.gseed.lm.UnknownGroup,
		Tick:           nd.tick,
		Now:            nd.now,
	})
	if err != nil {
		// The config is complete by construction; an error here is a
		// programming error, not a runtime condition.
		panic(fmt.Sprintf("cobcast: group runtime: %v", err))
	}
	nd.groupRT = rt
	return rt
}

// statezGroupLimit bounds per-group metric/snapshot registrations per
// node: the first statezGroupLimit groups get full per-group counter
// families and /statez sections; later groups run engines without
// per-group instrumentation, keeping scrape cardinality bounded however
// many groups a workload mints.
const statezGroupLimit = 16

// groupLedger returns group g's memory ledger, creating it on first use
// (nil without WithMemoryBudget). The default group shares the node's
// ledger — its engine runs on the node loop, not a shard.
func (nd *Node) groupLedger(g GroupID) *core.Ledger {
	nd.groupsMu.Lock()
	defer nd.groupsMu.Unlock()
	return nd.groupLedgerLocked(g)
}

func (nd *Node) groupLedgerLocked(g GroupID) *core.Ledger {
	if g == DefaultGroup {
		return nd.ledger
	}
	if l, ok := nd.groupLedgers[g]; ok {
		return l
	}
	l := nd.gseed.o.newLedger()
	if l != nil {
		if nd.groupLedgers == nil {
			nd.groupLedgers = make(map[GroupID]*core.Ledger)
		}
		nd.groupLedgers[g] = l
	}
	return l
}

// newGroupEntity builds group g's engine — groups.Registry calls it on
// the owning shard goroutine at the group's first input. The engine gets
// the same protocol configuration as the node's default engine: group
// isolation comes from frame routing, not from the cluster ID. Each
// group's engine writes its own ledger (shared with the group's port,
// which gates producers on it).
func (nd *Node) newGroupEntity(g uint32) (*core.Entity, error) {
	cfg := nd.gseed.o.coreConfig(nd.id, nd.n)
	cfg.Ledger = nd.groupLedger(GroupID(g))
	reg := nd.gseed.o.registry
	if reg != nil && nd.groupMetricsSlot() {
		em := obsv.NewEntityMetrics()
		cfg.Metrics = em
		cfg.Flight = nd.gseed.o.newFlightRing()
		label := fmt.Sprintf("%d/g%d", nd.id, g)
		got := reg.RegisterNode(label, em, nil, func() (obsv.StateSnapshot, bool) {
			var s obsv.StateSnapshot
			if !nd.groupRuntime().SnapshotInto(g, &s) {
				return obsv.StateSnapshot{}, false
			}
			s.Group = g
			return s, true
		})
		// Group engines share the node's monotonic clock (gseed wires
		// nd.now into the runtime), so the node's start is their epoch.
		reg.RegisterFlight(got, cfg.Flight, nd.start.UnixNano())
		reg.RegisterStalls(got, func() ([]obsv.Stall, bool) {
			var sts []obsv.Stall
			if !nd.groupRuntime().Stalls(g, &sts) {
				return nil, false
			}
			return sts, true
		})
	}
	ent, err := core.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("cobcast: node %d group %d: %w", nd.id, g, err)
	}
	return ent, nil
}

// groupMetricsSlot claims one of the node's statezGroupLimit per-group
// instrumentation slots.
func (nd *Node) groupMetricsSlot() bool {
	nd.groupsMu.Lock()
	defer nd.groupsMu.Unlock()
	if nd.groupMetricsUsed >= statezGroupLimit {
		return false
	}
	nd.groupMetricsUsed++
	return true
}

// deliverGroup routes one group delivery (on its shard goroutine) to the
// group's port, creating the port on first delivery so messages for
// groups the application has not opened yet are queued, not lost.
func (nd *Node) deliverGroup(g uint32, d core.Delivery) {
	nd.groupsMu.Lock()
	p := nd.portLocked(GroupID(g))
	nd.groupsMu.Unlock()
	p.queue.push(Message{
		Group: GroupID(g),
		Src:   int(d.Src),
		Seq:   uint64(d.SEQ),
		Data:  d.Data,
		LTime: d.LTime,
	})
}

// routeInbound sends one received datagram down the right path: default-
// group traffic (v1/v2 frames, or v3 addressed to group 0) stays on the
// node's own loop-owned decode path, group-addressed traffic crosses to
// the multi-group runtime's owner shard. Runs on the loop goroutine.
func (nd *Node) routeInbound(b inbound) {
	g, dropped := nd.lk.route(b)
	if dropped {
		return
	}
	if g == 0 {
		nd.lk.deliver(b, nd.receive)
		return
	}
	nd.groupRuntime().Inbound(g, groups.Inbound{Raw: b.raw, PDUs: b.pdus})
}

// groupsIdle reports whether the multi-group runtime (if running) owes
// the cluster nothing.
func (nd *Node) groupsIdle() bool {
	nd.groupsMu.Lock()
	rt := nd.groupRT
	nd.groupsMu.Unlock()
	return rt == nil || rt.Quiescent()
}

// closeGroups tears down the group runtime and ports after the protocol
// loop has exited: shards stop (no more deliveries), then each port's
// queue drains its pump and the delivery channels close.
func (nd *Node) closeGroups() {
	nd.groupsMu.Lock()
	rt := nd.groupRT
	ports := make([]*GroupPort, 0, len(nd.groupPorts))
	for _, p := range nd.groupPorts {
		ports = append(ports, p)
	}
	nd.groupsMu.Unlock()
	if rt != nil {
		rt.Close()
	}
	for _, p := range ports {
		if p.def {
			continue
		}
		p.queue.close()
		<-p.pumpDone
		close(p.deliver)
	}
}

// groupSeed carries what a node needs to start its multi-group runtime
// lazily: the construction options and the substrate-specific frames
// factory (wire or in-memory).
type groupSeed struct {
	o         options
	lm        *obsv.LinkMetrics
	newFrames func(shard int) groups.Frames
}

// wireGroupFrames is one shard's groups.Frames over a Transport: the
// multi-group analogue of wireLink. Outbound PDUs marshal straight into
// per-group in-progress v3 frames; Flush seals one frame per active
// group and hands the whole set to the transport in one BroadcastBatch
// (one sendmmsg on the batched wire path) — frames from many groups
// share the staged-batch syscall win. Inbound v3 frames decode through
// per-group decoder+stamp state, because each group is an independent
// sequence space and v2 delta stamps reference per-source, per-group
// streams.
//
// Only the owning shard goroutine touches a wireGroupFrames; the
// transport underneath accepts concurrent sends from all shards (and
// the node loop).
type wireGroupFrames struct {
	trans   Transport
	bt      BatchTransport
	version uint8
	stampK  int
	lm      *obsv.LinkMetrics

	send   map[uint32]*groupSendState
	order  []uint32 // groups with an open frame, in first-append order
	staged [][]byte // scratch for Flush's one-frame-per-group sweep

	recv    map[uint32]*groupRecvState
	scratch pdu.PDU
}

type groupSendState struct {
	enc    pdu.FrameEncoder
	stamps *pdu.StampEncoder
	buf    []byte // grow-once build buffer
	open   bool
}

type groupRecvState struct {
	dec  pdu.FrameDecoder
	sdec pdu.StampDecoder
}

func newWireGroupFrames(trans Transport, version uint8, stampK int, lm *obsv.LinkMetrics) *wireGroupFrames {
	f := &wireGroupFrames{
		trans:   trans,
		version: version,
		stampK:  stampK,
		lm:      lm,
		send:    make(map[uint32]*groupSendState),
		recv:    make(map[uint32]*groupRecvState),
	}
	if bt, ok := trans.(BatchTransport); ok {
		f.bt = bt
	}
	return f
}

func (f *wireGroupFrames) sendState(g uint32) *groupSendState {
	st, ok := f.send[g]
	if !ok {
		st = &groupSendState{buf: make([]byte, 0, 2048)}
		if f.version == pdu.WireVersion2 {
			st.stamps = pdu.NewStampEncoder(f.stampK)
		}
		f.send[g] = st
	}
	return st
}

func (f *wireGroupFrames) entryBound(p *pdu.PDU) int {
	if f.version == pdu.WireVersion2 {
		return p.EncodedSizeV2Bound()
	}
	return p.EncodedSize()
}

// Append stages p on group g's in-progress frame. A frame that would
// overflow MaxDatagram is sealed and sent immediately (the early-flush
// path); the common case keeps exactly one open frame per group until
// the shard's flush.
func (f *wireGroupFrames) Append(g uint32, p *pdu.PDU) {
	st := f.sendState(g)
	if !st.open {
		st.enc.BeginGroup(st.buf[:0], g, f.version, st.stamps)
		st.open = true
		f.order = append(f.order, g)
	}
	if st.enc.Count() > 0 && st.enc.Size()+pdu.FrameEntrySize+f.entryBound(p) > MaxDatagram {
		f.lm.Flush(st.enc.Count(), true)
		b := st.enc.Bytes()
		f.lm.FlushBytes(len(b), f.version)
		_ = f.trans.Broadcast(b)
		st.buf = b
		st.enc.BeginGroup(st.buf[:0], g, f.version, st.stamps)
	}
	// An Append error means the PDU itself cannot be encoded (field
	// overflow); dropping it is indistinguishable from transport loss.
	_ = st.enc.Append(p)
}

// Flush seals every open frame and hands the set — one frame per group
// that spoke since the last flush — to the transport in one batched
// send.
func (f *wireGroupFrames) Flush() {
	if len(f.order) == 0 {
		return
	}
	f.staged = f.staged[:0]
	for _, g := range f.order {
		st := f.send[g]
		if !st.open {
			continue
		}
		st.open = false
		if st.enc.Count() == 0 {
			continue
		}
		f.lm.Flush(st.enc.Count(), false)
		b := st.enc.Bytes()
		f.lm.FlushBytes(len(b), f.version)
		st.buf = b // retain the grown buffer for the next frame
		f.staged = append(f.staged, b)
	}
	f.order = f.order[:0]
	switch {
	case len(f.staged) == 0:
	case len(f.staged) == 1:
		_ = f.trans.Broadcast(f.staged[0])
	case f.bt != nil:
		_ = f.bt.BroadcastBatch(f.staged)
	default:
		for _, b := range f.staged {
			_ = f.trans.Broadcast(b)
		}
	}
	for i := range f.staged {
		f.staged[i] = nil
	}
}

// Deliver decodes one inbound v3 frame for group g with the group's own
// decoder and stamp cache, under the same loss semantics as
// wireLink.deliver.
func (f *wireGroupFrames) Deliver(g uint32, in groups.Inbound, fn func(p *pdu.PDU)) {
	rs, ok := f.recv[g]
	if !ok {
		rs = &groupRecvState{}
		rs.dec.SetStampDecoder(&rs.sdec)
		f.recv[g] = rs
	}
	err := rs.dec.Reset(in.Raw)
	if err == nil {
		f.lm.RecvBytes(len(in.Raw), rs.dec.Version())
	}
	for err == nil {
		var more bool
		more, err = rs.dec.Next(&f.scratch)
		if !more {
			break
		}
		// Clone shares Delta, which aliases this channel's stamp
		// decoder scratch; the retained copy takes ownership.
		if f.scratch.Kind.Sequenced() {
			fn(f.scratch.Clone().OwnDelta())
		} else {
			fn(&f.scratch)
		}
	}
	if errors.Is(err, pdu.ErrDeltaDesync) {
		f.lm.StampDesync()
	}
	pdu.PutDatagram(in.Raw)
}

func (f *wireGroupFrames) Close() {}

// memGroupFrames is one shard's groups.Frames over the in-memory
// network: PDUs move as pointers, group-tagged at the network boundary
// (which clones them), mirroring memLink.
type memGroupFrames struct {
	port   *network.Port
	lm     *obsv.LinkMetrics
	order  []uint32
	staged map[uint32][]*pdu.PDU
}

func newMemGroupFrames(port *network.Port, lm *obsv.LinkMetrics) *memGroupFrames {
	return &memGroupFrames{port: port, lm: lm, staged: make(map[uint32][]*pdu.PDU)}
}

func (f *memGroupFrames) Append(g uint32, p *pdu.PDU) {
	batch := f.staged[g]
	if batch == nil {
		f.order = append(f.order, g)
	}
	batch = append(batch, p)
	if len(batch) >= memBatchMax {
		f.lm.Flush(len(batch), true)
		_ = f.port.BroadcastGroup(g, batch...)
		batch = batch[:0]
	}
	f.staged[g] = batch
}

func (f *memGroupFrames) Flush() {
	for _, g := range f.order {
		batch := f.staged[g]
		if len(batch) > 0 {
			f.lm.Flush(len(batch), false)
			_ = f.port.BroadcastGroup(g, batch...)
		}
		delete(f.staged, g)
	}
	f.order = f.order[:0]
}

func (f *memGroupFrames) Deliver(g uint32, in groups.Inbound, fn func(p *pdu.PDU)) {
	for _, p := range in.PDUs {
		fn(p)
	}
}

func (f *memGroupFrames) Close() {}
