package cobcast

import (
	"sync"
	"testing"

	"cobcast/internal/network"
	"cobcast/internal/pdu"
)

// --- deliveryQueue close/pop interleavings ---

func TestDeliveryQueuePopAfterCloseDrained(t *testing.T) {
	var q deliveryQueue
	q.close()
	if m, ok := q.pop(); ok {
		t.Fatalf("pop on closed empty queue returned %v", m)
	}
	// pop stays terminal.
	if _, ok := q.pop(); ok {
		t.Fatal("second pop on closed empty queue succeeded")
	}
}

func TestDeliveryQueuePopAfterCloseNonEmpty(t *testing.T) {
	// Close must not discard queued messages: consumers drain the
	// remainder, then see ok=false.
	var q deliveryQueue
	q.push(Message{Seq: 1})
	q.push(Message{Seq: 2})
	q.close()
	for want := uint64(1); want <= 2; want++ {
		m, ok := q.pop()
		if !ok || m.Seq != want {
			t.Fatalf("pop = %v,%v, want seq %d", m, ok, want)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop after draining closed queue succeeded")
	}
}

func TestDeliveryQueuePushAfterCloseDropped(t *testing.T) {
	var q deliveryQueue
	q.close()
	q.push(Message{Seq: 1})
	if _, ok := q.pop(); ok {
		t.Fatal("push after close was accepted")
	}
}

func TestDeliveryQueueCloseUnblocksPop(t *testing.T) {
	var q deliveryQueue
	done := make(chan bool)
	go func() {
		_, ok := q.pop() // blocks: queue empty
		done <- ok
	}()
	q.close()
	if ok := <-done; ok {
		t.Fatal("blocked pop returned ok=true on close")
	}
}

func TestDeliveryQueueConcurrentPushPopClose(t *testing.T) {
	// Hammer push/pop/close from separate goroutines; under -race this
	// checks the queue's locking, and the counts check no message is
	// both delivered and lost.
	var q deliveryQueue
	const pushers, perPusher = 4, 1000
	var pushed sync.WaitGroup
	for g := 0; g < pushers; g++ {
		pushed.Add(1)
		go func(g int) {
			defer pushed.Done()
			for i := 0; i < perPusher; i++ {
				q.push(Message{Src: g, Seq: uint64(i)})
			}
		}(g)
	}
	got := make(chan int)
	go func() {
		count := 0
		for {
			if _, ok := q.pop(); !ok {
				got <- count
				return
			}
			count++
		}
	}()
	pushed.Wait()
	q.close()
	if count := <-got; count != pushers*perPusher {
		t.Fatalf("popped %d of %d pushed before close", count, pushers*perPusher)
	}
}

// --- link layer ---

// chanTransport is an in-process Transport capturing broadcast frames.
type chanTransport struct {
	frames chan []byte
	recv   chan []byte
	closed chan struct{}
	once   sync.Once
}

func newChanTransport() *chanTransport {
	return &chanTransport{
		frames: make(chan []byte, 64),
		recv:   make(chan []byte),
		closed: make(chan struct{}),
	}
}

func (c *chanTransport) Broadcast(datagram []byte) error {
	b := make([]byte, len(datagram))
	copy(b, datagram)
	c.frames <- b
	return nil
}

func (c *chanTransport) Recv() <-chan []byte { return c.recv }

func (c *chanTransport) Close() error {
	c.once.Do(func() { close(c.closed); close(c.recv) })
	return nil
}

func seqPDU(n int, seq pdu.Seq) *pdu.PDU {
	return &pdu.PDU{Kind: pdu.KindSync, Src: 0, SEQ: seq, ACK: make([]pdu.Seq, n)}
}

// decodeAll decodes every PDU of a frame.
func decodeAll(t *testing.T, frame []byte) []*pdu.PDU {
	t.Helper()
	var d pdu.FrameDecoder
	if err := d.Reset(frame); err != nil {
		t.Fatalf("frame decode: %v", err)
	}
	var out []*pdu.PDU
	for {
		var p pdu.PDU
		ok, err := d.Next(&p)
		if err != nil {
			t.Fatalf("frame decode: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, &p)
	}
}

func TestWireLinkCoalescesAppendsIntoOneFrame(t *testing.T) {
	tr := newChanTransport()
	l := newWireLink(tr)
	defer l.close()
	for i := 1; i <= 5; i++ {
		l.append(seqPDU(3, pdu.Seq(i)))
	}
	l.flush()
	l.flush() // empty flush must not emit a frame
	got := decodeAll(t, <-tr.frames)
	if len(got) != 5 {
		t.Fatalf("frame carries %d PDUs, want 5", len(got))
	}
	for i, p := range got {
		if p.SEQ != pdu.Seq(i+1) {
			t.Errorf("position %d: seq %d, want %d", i, p.SEQ, i+1)
		}
	}
	select {
	case f := <-tr.frames:
		t.Fatalf("empty flush emitted a %d-byte frame", len(f))
	default:
	}
}

func TestWireLinkFlushesBeforeExceedingMaxDatagram(t *testing.T) {
	tr := newChanTransport()
	l := newWireLink(tr)
	defer l.close()
	// Each PDU is ~15 KiB, so a 60 KiB datagram fits three but not four.
	big := func(seq pdu.Seq) *pdu.PDU {
		p := seqPDU(3, seq)
		p.Kind = pdu.KindData
		p.Data = make([]byte, 15*1024)
		return p
	}
	for i := 1; i <= 4; i++ {
		l.append(big(pdu.Seq(i)))
	}
	l.flush()
	rawFirst, rawSecond := <-tr.frames, <-tr.frames
	for _, raw := range [][]byte{rawFirst, rawSecond} {
		if len(raw) > MaxDatagram {
			t.Errorf("frame of %d bytes exceeds MaxDatagram", len(raw))
		}
	}
	first, second := decodeAll(t, rawFirst), decodeAll(t, rawSecond)
	if len(first) != 3 || len(second) != 1 {
		t.Fatalf("split %d+%d PDUs, want 3+1 (early flush at size bound)", len(first), len(second))
	}
	for i, p := range append(first, second...) {
		if p.SEQ != pdu.Seq(i+1) {
			t.Errorf("position %d: seq %d, want %d (order across frames)", i, p.SEQ, i+1)
		}
	}
}

func TestMemLinkAutoFlushCapsBatch(t *testing.T) {
	// memLink must not stage unboundedly during a long drain: it flushes
	// on its own once the batch hits memBatchMax, and the early flush
	// preserves append order across the resulting datagrams.
	net := network.New(2)
	defer net.Close()
	l := newMemLink(net.Endpoint(0))
	defer l.close()
	for i := 1; i <= memBatchMax+1; i++ {
		l.append(seqPDU(2, pdu.Seq(i)))
	}
	if len(l.batch) != 1 {
		t.Fatalf("staged %d PDUs after auto-flush, want 1", len(l.batch))
	}
	l.flush()
	var got []pdu.Seq
	for len(got) < memBatchMax+1 {
		in := <-net.Endpoint(1).Recv()
		for _, p := range in.PDUs {
			got = append(got, p.SEQ)
		}
	}
	for i, s := range got {
		if s != pdu.Seq(i+1) {
			t.Fatalf("position %d: seq %d, want %d (order across datagrams)", i, s, i+1)
		}
	}
}
