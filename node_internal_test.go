package cobcast

import (
	"sync"
	"testing"

	"cobcast/internal/network"
	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
)

// --- deliveryQueue close/pop interleavings ---

func TestDeliveryQueuePopAfterCloseDrained(t *testing.T) {
	var q deliveryQueue
	q.close()
	if m, ok := q.pop(); ok {
		t.Fatalf("pop on closed empty queue returned %v", m)
	}
	// pop stays terminal.
	if _, ok := q.pop(); ok {
		t.Fatal("second pop on closed empty queue succeeded")
	}
}

func TestDeliveryQueuePopAfterCloseNonEmpty(t *testing.T) {
	// Close must not discard queued messages: consumers drain the
	// remainder, then see ok=false.
	var q deliveryQueue
	q.push(Message{Seq: 1})
	q.push(Message{Seq: 2})
	q.close()
	for want := uint64(1); want <= 2; want++ {
		m, ok := q.pop()
		if !ok || m.Seq != want {
			t.Fatalf("pop = %v,%v, want seq %d", m, ok, want)
		}
	}
	if _, ok := q.pop(); ok {
		t.Fatal("pop after draining closed queue succeeded")
	}
}

func TestDeliveryQueuePushAfterCloseDropped(t *testing.T) {
	var q deliveryQueue
	q.close()
	q.push(Message{Seq: 1})
	if _, ok := q.pop(); ok {
		t.Fatal("push after close was accepted")
	}
}

func TestDeliveryQueueCloseUnblocksPop(t *testing.T) {
	var q deliveryQueue
	done := make(chan bool)
	go func() {
		_, ok := q.pop() // blocks: queue empty
		done <- ok
	}()
	q.close()
	if ok := <-done; ok {
		t.Fatal("blocked pop returned ok=true on close")
	}
}

func TestDeliveryQueueConcurrentPushPopClose(t *testing.T) {
	// Hammer push/pop/close from separate goroutines; under -race this
	// checks the queue's locking, and the counts check no message is
	// both delivered and lost.
	var q deliveryQueue
	const pushers, perPusher = 4, 1000
	var pushed sync.WaitGroup
	for g := 0; g < pushers; g++ {
		pushed.Add(1)
		go func(g int) {
			defer pushed.Done()
			for i := 0; i < perPusher; i++ {
				q.push(Message{Src: g, Seq: uint64(i)})
			}
		}(g)
	}
	got := make(chan int)
	go func() {
		count := 0
		for {
			if _, ok := q.pop(); !ok {
				got <- count
				return
			}
			count++
		}
	}()
	pushed.Wait()
	q.close()
	if count := <-got; count != pushers*perPusher {
		t.Fatalf("popped %d of %d pushed before close", count, pushers*perPusher)
	}
}

// --- link layer ---

// chanTransport is an in-process Transport capturing broadcast frames.
type chanTransport struct {
	frames chan []byte
	recv   chan []byte
	closed chan struct{}
	once   sync.Once
}

func newChanTransport() *chanTransport {
	return &chanTransport{
		frames: make(chan []byte, 64),
		recv:   make(chan []byte),
		closed: make(chan struct{}),
	}
}

func (c *chanTransport) Broadcast(datagram []byte) error {
	b := make([]byte, len(datagram))
	copy(b, datagram)
	c.frames <- b
	return nil
}

func (c *chanTransport) Recv() <-chan []byte { return c.recv }

func (c *chanTransport) Close() error {
	c.once.Do(func() { close(c.closed); close(c.recv) })
	return nil
}

func seqPDU(n int, seq pdu.Seq) *pdu.PDU {
	return &pdu.PDU{Kind: pdu.KindSync, Src: 0, SEQ: seq, ACK: make([]pdu.Seq, n)}
}

// streamDecoder returns a frame decoder with a stamp cache, able to
// resolve v2 delta entries when fed one sender's frames in send order.
func streamDecoder() *pdu.FrameDecoder {
	d := new(pdu.FrameDecoder)
	d.SetStampDecoder(new(pdu.StampDecoder))
	return d
}

// decodeAll decodes every PDU of a frame through d.
func decodeAll(t *testing.T, d *pdu.FrameDecoder, frame []byte) []*pdu.PDU {
	t.Helper()
	if err := d.Reset(frame); err != nil {
		t.Fatalf("frame decode: %v", err)
	}
	var out []*pdu.PDU
	for {
		var p pdu.PDU
		ok, err := d.Next(&p)
		if err != nil {
			t.Fatalf("frame decode: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, p.Clone())
	}
}

func TestWireLinkCoalescesAppendsIntoOneFrame(t *testing.T) {
	tr := newChanTransport()
	l := newWireLink(tr, pdu.WireVersion2, 0)
	defer l.close()
	for i := 1; i <= 5; i++ {
		l.append(seqPDU(3, pdu.Seq(i)))
	}
	l.flush()
	l.flush() // empty flush must not emit a frame
	got := decodeAll(t, streamDecoder(), <-tr.frames)
	if len(got) != 5 {
		t.Fatalf("frame carries %d PDUs, want 5", len(got))
	}
	for i, p := range got {
		if p.SEQ != pdu.Seq(i+1) {
			t.Errorf("position %d: seq %d, want %d", i, p.SEQ, i+1)
		}
	}
	select {
	case f := <-tr.frames:
		t.Fatalf("empty flush emitted a %d-byte frame", len(f))
	default:
	}
}

func TestWireLinkFlushesBeforeExceedingMaxDatagram(t *testing.T) {
	tr := newChanTransport()
	l := newWireLink(tr, pdu.WireVersion2, 0)
	defer l.close()
	// Each PDU is ~15 KiB, so a 60 KiB datagram fits three but not four.
	big := func(seq pdu.Seq) *pdu.PDU {
		p := seqPDU(3, seq)
		p.Kind = pdu.KindData
		p.Data = make([]byte, 15*1024)
		return p
	}
	for i := 1; i <= 4; i++ {
		l.append(big(pdu.Seq(i)))
	}
	l.flush()
	rawFirst, rawSecond := <-tr.frames, <-tr.frames
	for _, raw := range [][]byte{rawFirst, rawSecond} {
		if len(raw) > MaxDatagram {
			t.Errorf("frame of %d bytes exceeds MaxDatagram", len(raw))
		}
	}
	d := streamDecoder()
	first, second := decodeAll(t, d, rawFirst), decodeAll(t, d, rawSecond)
	if len(first) != 3 || len(second) != 1 {
		t.Fatalf("split %d+%d PDUs, want 3+1 (early flush at size bound)", len(first), len(second))
	}
	for i, p := range append(first, second...) {
		if p.SEQ != pdu.Seq(i+1) {
			t.Errorf("position %d: seq %d, want %d (order across frames)", i, p.SEQ, i+1)
		}
	}
}

func TestMemLinkAutoFlushCapsBatch(t *testing.T) {
	// memLink must not stage unboundedly during a long drain: it flushes
	// on its own once the batch hits memBatchMax, and the early flush
	// preserves append order across the resulting datagrams.
	net := network.New(2)
	defer net.Close()
	l := newMemLink(net.Endpoint(0))
	defer l.close()
	for i := 1; i <= memBatchMax+1; i++ {
		l.append(seqPDU(2, pdu.Seq(i)))
	}
	if len(l.batch) != 1 {
		t.Fatalf("staged %d PDUs after auto-flush, want 1", len(l.batch))
	}
	l.flush()
	var got []pdu.Seq
	for len(got) < memBatchMax+1 {
		in := <-net.Endpoint(1).Recv()
		for _, p := range in.PDUs {
			got = append(got, p.SEQ)
		}
	}
	for i, s := range got {
		if s != pdu.Seq(i+1) {
			t.Fatalf("position %d: seq %d, want %d (order across datagrams)", i, s, i+1)
		}
	}
}

func TestWireLinkV1EmitsVersion1Frames(t *testing.T) {
	tr := newChanTransport()
	l := newWireLink(tr, pdu.WireVersion, 0)
	defer l.close()
	for i := 1; i <= 3; i++ {
		l.append(seqPDU(3, pdu.Seq(i)))
	}
	l.flush()
	raw := <-tr.frames
	if raw[2] != pdu.FrameVersion {
		t.Fatalf("frame version %d, want %d", raw[2], pdu.FrameVersion)
	}
	if got := decodeAll(t, streamDecoder(), raw); len(got) != 3 {
		t.Fatalf("decoded %d PDUs, want 3", len(got))
	}
}

func TestWireLinkV2FramesSmallerThanV1(t *testing.T) {
	// The same contiguous stream, sent through a v1 and a v2 link; the
	// v2 per-version byte counter must come out well below v1's.
	send := func(version uint8) uint64 {
		tr := newChanTransport()
		l := newWireLink(tr, version, 0)
		defer l.close()
		lm := obsv.NewLinkMetrics()
		l.instrument(lm)
		for i := 1; i <= 20; i++ {
			p := seqPDU(64, pdu.Seq(i))
			p.ACK[0] = pdu.Seq(i)
			l.append(p)
			l.flush()
			raw := <-tr.frames
			if raw[2] != version {
				t.Fatalf("frame version %d, want %d", raw[2], version)
			}
		}
		if version == pdu.WireVersion2 {
			if v1 := lm.BytesOutV1.Load(); v1 != 0 {
				t.Fatalf("v2 link counted %d bytes as v1", v1)
			}
			return lm.BytesOutV2.Load()
		}
		if v2 := lm.BytesOutV2.Load(); v2 != 0 {
			t.Fatalf("v1 link counted %d bytes as v2", v2)
		}
		return lm.BytesOutV1.Load()
	}
	v1, v2 := send(pdu.WireVersion), send(pdu.WireVersion2)
	if v1 == 0 || v2 == 0 {
		t.Fatalf("byte counters not populated: v1=%d v2=%d", v1, v2)
	}
	if v2*2 > v1 {
		t.Fatalf("v2 sent %d bytes, not under half of v1's %d (n=64 stream)", v2, v1)
	}
}

func TestWireLinkDeliverDesyncCountedAndRecovered(t *testing.T) {
	// A receiver that missed the frame carrying a delta's reference must
	// drop the delta as counted loss, then recover from the full stamp
	// once the missing frame is (re)delivered.
	l := newWireLink(newChanTransport(), pdu.WireVersion2, 0)
	defer l.close()
	lm := obsv.NewLinkMetrics()
	l.instrument(lm)

	mk := func(seq pdu.Seq) *pdu.PDU {
		p := seqPDU(3, seq)
		p.ACK[0] = seq
		return p
	}
	enc := pdu.NewStampEncoder(1 << 20) // no interval escapes in this test
	f1, err := pdu.EncodeFrameV2([]*pdu.PDU{mk(1)}, enc)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := pdu.EncodeFrameV2([]*pdu.PDU{mk(2), mk(3)}, enc)
	if err != nil {
		t.Fatal(err)
	}
	recv := func(frame []byte) (seqs []pdu.Seq) {
		b := make([]byte, len(frame))
		copy(b, frame)
		l.deliver(inbound{raw: b}, func(p *pdu.PDU) { seqs = append(seqs, p.SEQ) })
		return
	}

	if got := recv(f2); len(got) != 0 { // f1 lost: delta has no reference
		t.Fatalf("desynchronized link delivered %v", got)
	}
	if n := lm.StampDesyncs.Load(); n != 1 {
		t.Fatalf("StampDesyncs = %d, want 1", n)
	}
	if got := recv(f1); len(got) != 1 || got[0] != 1 { // full stamp re-anchors
		t.Fatalf("full-stamp frame delivered %v, want [1]", got)
	}
	if got := recv(f2); len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("replayed delta frame delivered %v, want [2 3]", got)
	}
	if n := lm.StampDesyncs.Load(); n != 1 {
		t.Fatalf("StampDesyncs = %d after recovery, want 1", n)
	}
	if lm.BytesInV2.Load() == 0 || lm.BytesInV1.Load() != 0 {
		t.Fatalf("inbound byte counters v1=%d v2=%d, want all under v2",
			lm.BytesInV1.Load(), lm.BytesInV2.Load())
	}
}
