package cobcast_test

import (
	"testing"
	"time"

	"cobcast"
)

// TestCrashedNodeFreezesDeliveryUntilEvicted demonstrates the failure
// mode and the cure: with node 2 isolated, nothing can be acknowledged;
// after the survivors evict it, delivery resumes.
func TestCrashedNodeFreezesDeliveryUntilEvicted(t *testing.T) {
	c, err := cobcast.NewCluster(3,
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithRetransmitTimeout(4*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.Isolate(2) // node 2 "crashes" before anything is sent

	if err := c.Broadcast(0, []byte("stranded?")); err != nil {
		t.Fatal(err)
	}
	// Without eviction nothing may be delivered.
	select {
	case m := <-c.Node(0).Deliveries():
		t.Fatalf("delivered %q with a dead quorum member", m.Data)
	case <-time.After(300 * time.Millisecond):
	}

	for _, survivor := range []int{0, 1} {
		if err := c.Node(survivor).Evict(2); err != nil {
			t.Fatal(err)
		}
	}
	for _, survivor := range []int{0, 1} {
		select {
		case m := <-c.Node(survivor).Deliveries():
			if string(m.Data) != "stranded?" {
				t.Fatalf("node %d delivered %q", survivor, m.Data)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("node %d still frozen after eviction (stats %+v)",
				survivor, c.Node(survivor).Stats())
		}
	}
}

// TestSuspectTimeoutAutoEvicts lets the suspicion timer handle the crash.
func TestSuspectTimeoutAutoEvicts(t *testing.T) {
	c, err := cobcast.NewCluster(3,
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithRetransmitTimeout(4*time.Millisecond),
		cobcast.WithSuspectTimeout(150*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	c.Isolate(2)
	if err := c.Broadcast(0, []byte("self-healing")); err != nil {
		t.Fatal(err)
	}
	for _, survivor := range []int{0, 1} {
		select {
		case m := <-c.Node(survivor).Deliveries():
			if string(m.Data) != "self-healing" {
				t.Fatalf("node %d delivered %q", survivor, m.Data)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("node %d never delivered (stats %+v)",
				survivor, c.Node(survivor).Stats())
		}
	}
}

func TestEvictValidationPublic(t *testing.T) {
	c, err := cobcast.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Node(0).Evict(0); err == nil {
		t.Error("self-evict accepted")
	}
	if err := c.Node(0).Evict(9); err == nil {
		t.Error("out-of-range evict accepted")
	}
	c.Close()
	if err := c.Node(0).Evict(1); err == nil {
		t.Error("evict after close accepted")
	}
}
