package cobcast_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cobcast"
)

func TestClusterTotalOrderIdenticalSequences(t *testing.T) {
	c, err := cobcast.NewCluster(3,
		cobcast.WithTotalOrder(),
		cobcast.WithLossRate(0.1),
		cobcast.WithSeed(5),
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithRetransmitTimeout(4*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const msgs = 15
	var wg sync.WaitGroup
	orders := make([][]cobcast.Message, 3)
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			deadline := time.After(30 * time.Second)
			for len(orders[i]) < msgs {
				select {
				case m, ok := <-c.Node(i).Deliveries():
					if !ok {
						return
					}
					orders[i] = append(orders[i], m)
				case <-deadline:
					return
				}
			}
		}()
	}
	for i := 0; i < msgs; i++ {
		if err := c.Broadcast(i%3, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	for i := 0; i < 3; i++ {
		if len(orders[i]) != msgs {
			t.Fatalf("node %d delivered %d/%d (stats %+v)",
				i, len(orders[i]), msgs, c.Node(i).Stats())
		}
	}
	// Identical sequences at every node.
	for i := 1; i < 3; i++ {
		for pos := range orders[0] {
			a, b := orders[0][pos], orders[i][pos]
			if a.Src != b.Src || a.Seq != b.Seq {
				t.Fatalf("position %d: node 0 got s%d#%d, node %d got s%d#%d",
					pos, a.Src, a.Seq, i, b.Src, b.Seq)
			}
			if a.LTime != b.LTime || a.LTime == 0 {
				t.Fatalf("position %d: ltimes %d vs %d", pos, a.LTime, b.LTime)
			}
		}
	}
	// The sequence is sorted by (LTime, Src, Seq).
	for pos := 1; pos < msgs; pos++ {
		p, q := orders[0][pos-1], orders[0][pos]
		if q.LTime < p.LTime ||
			(q.LTime == p.LTime && q.Src < p.Src) {
			t.Fatalf("total order not key-sorted at %d: %+v then %+v", pos, p, q)
		}
	}
}

func TestClusterTotalOrderCausalPair(t *testing.T) {
	// Total order must still respect causality: answer after question.
	c, err := cobcast.NewCluster(3,
		cobcast.WithTotalOrder(),
		cobcast.WithDeferredAckInterval(time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Broadcast(0, []byte("question")); err != nil {
		t.Fatal(err)
	}
	// Node 1 waits to deliver the question before answering.
	deadline := time.After(30 * time.Second)
	for {
		select {
		case m := <-c.Node(1).Deliveries():
			if string(m.Data) == "question" {
				goto answer
			}
		case <-deadline:
			t.Fatal("node 1 never delivered the question")
		}
	}
answer:
	if err := c.Broadcast(1, []byte("answer")); err != nil {
		t.Fatal(err)
	}
	var got []string
	for len(got) < 2 {
		select {
		case m := <-c.Node(2).Deliveries():
			got = append(got, string(m.Data))
		case <-deadline:
			t.Fatalf("node 2 delivered %v", got)
		}
	}
	if got[0] != "question" || got[1] != "answer" {
		t.Fatalf("order: %v", got)
	}
}
