package cobcast_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"cobcast"
)

// collectAll drains want messages from every node of the cluster.
func collectAll(t *testing.T, c *cobcast.Cluster, want int) [][]cobcast.Message {
	t.Helper()
	out := make([][]cobcast.Message, c.Size())
	var wg sync.WaitGroup
	for i := 0; i < c.Size(); i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			deadline := time.After(30 * time.Second)
			for len(out[i]) < want {
				select {
				case m, ok := <-c.Node(i).Deliveries():
					if !ok {
						return
					}
					out[i] = append(out[i], m)
				case <-deadline:
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := range out {
		if len(out[i]) != want {
			t.Fatalf("node %d delivered %d/%d: %v", i, len(out[i]), want, out[i])
		}
	}
	return out
}

func TestClusterBroadcastDeliversEverywhere(t *testing.T) {
	c, err := cobcast.NewCluster(3, cobcast.WithDeferredAckInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const msgs = 5
	for i := 0; i < msgs; i++ {
		if err := c.Broadcast(i%3, []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := collectAll(t, c, msgs)
	// Every node, including each sender, delivers all messages exactly
	// once; per-source order must hold everywhere.
	for i, ms := range got {
		last := map[int]uint64{}
		for _, m := range ms {
			if prev, ok := last[m.Src]; ok && m.Seq <= prev {
				t.Errorf("node %d: source %d out of order", i, m.Src)
			}
			last[m.Src] = m.Seq
		}
	}
}

func TestClusterCausalPairOrdering(t *testing.T) {
	// Node 1 broadcasts its reply only after delivering node 0's message;
	// every node must deliver question before answer.
	c, err := cobcast.NewCluster(3, cobcast.WithDeferredAckInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for m := range c.Node(1).Deliveries() {
			if string(m.Data) == "question" {
				if err := c.Node(1).Broadcast([]byte("answer")); err != nil {
					t.Errorf("answer: %v", err)
				}
				return
			}
		}
	}()
	if err := c.Node(0).Broadcast([]byte("question")); err != nil {
		t.Fatal(err)
	}
	<-done

	check := func(node int) {
		var order []string
		deadline := time.After(30 * time.Second)
		for len(order) < 2 {
			select {
			case m := <-c.Node(node).Deliveries():
				order = append(order, string(m.Data))
			case <-deadline:
				t.Fatalf("node %d delivered %v", node, order)
			}
		}
		if order[0] != "question" || order[1] != "answer" {
			t.Errorf("node %d order: %v", node, order)
		}
	}
	check(0)
	check(2)
}

func TestClusterWithLossRecovers(t *testing.T) {
	c, err := cobcast.NewCluster(3,
		cobcast.WithLossRate(0.15),
		cobcast.WithSeed(7),
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithRetransmitTimeout(4*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const msgs = 12
	for i := 0; i < msgs; i++ {
		if err := c.Broadcast(i%3, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	collectAll(t, c, msgs)
	var retx uint64
	for i := 0; i < 3; i++ {
		retx += c.Node(i).Stats().Retransmitted
	}
	if retx == 0 {
		t.Error("loss run should have retransmitted")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := cobcast.NewCluster(1); err == nil {
		t.Error("1-node cluster accepted")
	}
	if _, err := cobcast.NewCluster(4, cobcast.WithBufferUnits(3)); err == nil {
		t.Error("invalid buffer config accepted")
	}
}

func TestNodeCloseSemantics(t *testing.T) {
	c, err := cobcast.NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal("second close should be a no-op")
	}
	if err := c.Node(0).Broadcast([]byte("x")); err == nil {
		t.Error("broadcast after close succeeded")
	}
	if _, ok := <-c.Node(0).Deliveries(); ok {
		t.Error("deliveries channel not closed")
	}
	// Stats must remain readable after close.
	_ = c.Node(0).Stats()
}

func TestStatsProgress(t *testing.T) {
	c, err := cobcast.NewCluster(2, cobcast.WithDeferredAckInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Broadcast(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	collectAll(t, c, 1)
	s0 := c.Node(0).Stats()
	if s0.DataSent != 1 || s0.Delivered != 1 {
		t.Errorf("node 0 stats: %+v", s0)
	}
	s1 := c.Node(1).Stats()
	if s1.Delivered != 1 || s1.Accepted == 0 {
		t.Errorf("node 1 stats: %+v", s1)
	}
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := cobcast.NewNode(0, 3, nil); err == nil {
		t.Error("nil transport accepted")
	}
}

func TestWaitIdle(t *testing.T) {
	c, err := cobcast.NewCluster(3, cobcast.WithDeferredAckInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Fresh cluster is idle immediately.
	if err := c.Node(0).WaitIdle(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := c.Broadcast(i%3, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := c.Node(i).WaitIdle(30 * time.Second); err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
	}
	// Once idle, every message must already be in the delivery queue.
	for i := 0; i < 3; i++ {
		for j := 0; j < 6; j++ {
			select {
			case <-c.Node(i).Deliveries():
			case <-time.After(5 * time.Second):
				t.Fatalf("node %d idle but delivered only %d/6", i, j)
			}
		}
	}
	c.Close()
	if err := c.Node(0).WaitIdle(time.Second); err == nil {
		t.Error("WaitIdle after close succeeded")
	}
}
