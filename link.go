package cobcast

import (
	"errors"
	"sync"

	"cobcast/internal/network"
	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
)

// inbound is one received datagram, in exactly one representation: pdus
// for links whose substrate moves decoded PDUs (in-memory network), raw
// for links whose substrate moves encoded batch frames (Transport). The
// owning link interprets its own inbounds in deliver.
type inbound struct {
	pdus []*pdu.PDU
	raw  []byte
	// group is the addressed group for substrates that tag at the
	// transport boundary (the in-memory network); wire links carry the
	// group inside the v3 frame header instead and peek it in route.
	group uint32
}

// link is the node's single attachment point to whatever moves PDUs —
// the layer that collapses the old port/trans duality. The loop
// goroutine owns the send side: it stages outgoing PDUs with append and
// coalesces them into one datagram per flush, which it calls whenever
// its input queue goes idle, so every PDU produced by one input burst
// rides together. A link must preserve per-sender datagram order, which
// with the frame ordering contract preserves per-sender PDU order within
// and across batches (the MC service contract).
//
// Ownership: append borrows the PDU pointer until the next flush; entity
// output PDUs are immutable after creation (the sendlog retransmits them
// bit-identically), so staging them is safe. deliver hands PDUs to fn
// under the entity Receive contract: sequenced PDUs are owned by the
// callee, unsequenced ones may be link scratch reused after fn returns.
type link interface {
	// append stages p for the next flush. It may flush early to respect
	// substrate limits (datagram size, batch cap).
	append(p *pdu.PDU)
	// flush sends everything staged since the last flush as one
	// datagram per destination. Send failures are dropped datagrams —
	// indistinguishable from network loss, repaired by the protocol.
	flush()
	// recv is the unified inbox: one entry per arriving datagram. It is
	// closed when the link or its substrate closes.
	recv() <-chan inbound
	// deliver decodes one inbound datagram and hands each PDU to fn in
	// batch order, then releases the datagram's resources.
	deliver(in inbound, fn func(p *pdu.PDU))
	// route classifies one inbound before decode: the group it is
	// addressed to (0 = the default group, handled by the node loop's
	// own deliver path) and whether the link already dropped it (an
	// out-of-range group ID — counted as unknown-group loss, resources
	// released). group > 0 hands ownership to the multi-group runtime.
	route(in inbound) (group uint32, drop bool)
	// close stops the link's pump goroutine and closes a transport the
	// link owns. It is idempotent.
	close() error
	// instrument attaches flush metrics. Must be called before the loop
	// goroutine starts using the link (node construction); nil detaches.
	instrument(m *obsv.LinkMetrics)
}

// memBatchMax bounds how many PDUs a memLink stages before flushing
// early; it plays the role MaxDatagram plays for wire links and keeps a
// long drain from growing the staging slice without bound.
const memBatchMax = 128

// memLink attaches a node to the in-memory network. PDUs move as
// pointers: append stages them (the network clones at its boundary on
// flush) and deliver's PDUs arrive already cloned and owned.
type memLink struct {
	port  *network.Port
	batch []*pdu.PDU
	lm    *obsv.LinkMetrics // nil unless instrumented
	in    chan inbound
	stop  chan struct{}
	done  chan struct{}
	once  sync.Once
}

func newMemLink(port *network.Port) *memLink {
	l := &memLink{
		port:  port,
		batch: make([]*pdu.PDU, 0, memBatchMax),
		in:    make(chan inbound),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go l.pump()
	return l
}

func (l *memLink) append(p *pdu.PDU) {
	l.batch = append(l.batch, p)
	if len(l.batch) >= memBatchMax {
		l.flushBatch(true)
	}
}

func (l *memLink) flush() { l.flushBatch(false) }

func (l *memLink) flushBatch(early bool) {
	if len(l.batch) == 0 {
		return
	}
	l.lm.Flush(len(l.batch), early)
	_ = l.port.Broadcast(l.batch...) // fails only on Close
	for i := range l.batch {
		l.batch[i] = nil
	}
	l.batch = l.batch[:0]
}

func (l *memLink) instrument(m *obsv.LinkMetrics) { l.lm = m }

func (l *memLink) recv() <-chan inbound { return l.in }

// pump forwards the port inbox onto the unified inbound channel until
// the network or the link closes.
func (l *memLink) pump() {
	defer close(l.done)
	for {
		select {
		case <-l.stop:
			return
		case in, ok := <-l.port.Recv():
			if !ok {
				close(l.in)
				return
			}
			select {
			case l.in <- inbound{pdus: in.PDUs, group: in.Group}:
			case <-l.stop:
				return
			}
		}
	}
}

func (l *memLink) deliver(in inbound, fn func(p *pdu.PDU)) {
	for _, p := range in.pdus {
		fn(p)
	}
}

// route passes through the network boundary's group tag; the in-memory
// network cannot produce out-of-range IDs, so nothing drops here.
func (l *memLink) route(in inbound) (uint32, bool) { return in.group, false }

func (l *memLink) close() error {
	l.once.Do(func() {
		close(l.stop)
		<-l.done
	})
	return nil
}

// wireBatchMax bounds how many sealed frames a wireLink stages before
// sending them mid-drain; it keeps one very long input burst from
// growing the staging buffers without bound while still letting the
// common burst ride down in a single BroadcastBatch call.
const wireBatchMax = 16

// wireLink attaches a node to a Transport. append marshals each PDU
// straight into an in-progress batch frame (sealing it into the staged
// set first if the PDU would push the frame past MaxDatagram), flush
// seals the last frame and hands the whole staged set to the transport —
// in one BroadcastBatch call when the transport implements
// BatchTransport (the UDP transport's sendmmsg path turns that into one
// syscall per flush), else one Broadcast per frame. deliver decodes
// arriving frames into a reused scratch PDU — so the whole encode/decode
// hot path is allocation-free in steady state, reusing a small set of
// grown frame buffers and the transport's datagram pool.
//
// The entry codec version is a send-side choice: reception accepts v1
// and v2 frames alike (the per-source stamp cache resolves v2 delta
// entries whatever this node emits), so a mixed-version cluster
// interoperates and the version can roll node by node.
type wireLink struct {
	trans Transport
	// bt is trans's batched-send extension, nil when unimplemented.
	bt      BatchTransport
	version uint8
	enc     pdu.FrameEncoder
	// stamps is the v2 reference-stamp state threaded through every
	// frame this link sends; nil for a v1 link.
	stamps *pdu.StampEncoder
	// bufs are the frame build buffers, retained across flushes so each
	// grows once: bufs[:nframes] hold sealed frames awaiting send,
	// bufs[nframes] is the in-progress frame the encoder writes into.
	// Only the loop goroutine touches them. Staged frames are sent in
	// seal order, preserving the per-sender PDU order across frames.
	bufs    [][]byte
	nframes int
	dec     pdu.FrameDecoder
	// sdec caches the last stamp decoded per source, mirroring each
	// sender's stream across frames (see pdu.StampDecoder).
	sdec    pdu.StampDecoder
	scratch pdu.PDU
	lm      *obsv.LinkMetrics // nil unless instrumented
	in      chan inbound
	stop    chan struct{}
	done    chan struct{}
	once    sync.Once
}

// newWireLink attaches trans using entry codec version (pdu.WireVersion
// or pdu.WireVersion2). stampK is v2's full-stamp sync interval; <= 0
// selects pdu.DefaultStampInterval.
func newWireLink(trans Transport, version uint8, stampK int) *wireLink {
	l := &wireLink{
		trans:   trans,
		version: version,
		bufs:    [][]byte{make([]byte, 0, 4096)},
		in:      make(chan inbound),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if bt, ok := trans.(BatchTransport); ok {
		l.bt = bt
	}
	if version == pdu.WireVersion2 {
		l.stamps = pdu.NewStampEncoder(stampK)
	}
	l.dec.SetStampDecoder(&l.sdec)
	l.begin()
	go l.pump()
	return l
}

// begin opens the next outgoing frame with the link's entry codec,
// writing into the first unsealed build buffer.
func (l *wireLink) begin() {
	if l.nframes == len(l.bufs) {
		l.bufs = append(l.bufs, make([]byte, 0, 4096))
	}
	buf := l.bufs[l.nframes][:0]
	if l.version == pdu.WireVersion2 {
		l.enc.BeginV2(buf, l.stamps)
	} else {
		l.enc.Begin(buf)
	}
}

// entryBound returns an upper bound on p's encoded size under the
// link's entry codec, for the early-flush datagram budget.
func (l *wireLink) entryBound(p *pdu.PDU) int {
	if l.version == pdu.WireVersion2 {
		return p.EncodedSizeV2Bound()
	}
	return p.EncodedSize()
}

func (l *wireLink) append(p *pdu.PDU) {
	if l.enc.Count() > 0 && l.enc.Size()+pdu.FrameEntrySize+l.entryBound(p) > MaxDatagram {
		l.seal(true)
		if l.nframes >= wireBatchMax {
			l.sendStaged()
		}
		l.begin()
	}
	// An Append error means the PDU itself cannot be encoded (field
	// overflow); dropping it is indistinguishable from transport loss.
	_ = l.enc.Append(p)
}

func (l *wireLink) flush() {
	l.seal(false)
	if l.nframes == 0 {
		return
	}
	l.sendStaged()
	l.begin()
}

// seal closes the in-progress frame, if non-empty, into the staged set.
// The encoder is left un-begun; callers begin() the next frame after
// any staged send so the build buffer index is stable.
func (l *wireLink) seal(early bool) {
	if l.enc.Count() == 0 {
		return
	}
	l.lm.Flush(l.enc.Count(), early)
	b := l.enc.Bytes()
	l.lm.FlushBytes(len(b), l.version)
	l.bufs[l.nframes] = b
	l.nframes++
}

// sendStaged hands every sealed frame to the transport and resets the
// staged set. Loss and oversize are the transport's to count; the
// protocol repairs both via selective retransmission.
func (l *wireLink) sendStaged() {
	switch {
	case l.nframes == 1:
		_ = l.trans.Broadcast(l.bufs[0])
	case l.bt != nil:
		_ = l.bt.BroadcastBatch(l.bufs[:l.nframes])
	default:
		for _, b := range l.bufs[:l.nframes] {
			_ = l.trans.Broadcast(b)
		}
	}
	l.nframes = 0
}

func (l *wireLink) instrument(m *obsv.LinkMetrics) { l.lm = m }

func (l *wireLink) recv() <-chan inbound { return l.in }

// pump forwards raw datagrams from the transport onto the unified
// inbound channel until the transport or the link closes.
func (l *wireLink) pump() {
	defer close(l.done)
	for {
		select {
		case <-l.stop:
			return
		case b, ok := <-l.trans.Recv():
			if !ok {
				close(l.in)
				return
			}
			select {
			case l.in <- inbound{raw: b}:
			case <-l.stop:
				pdu.PutDatagram(b)
				return
			}
		}
	}
}

func (l *wireLink) deliver(in inbound, fn func(p *pdu.PDU)) {
	// A decode error means a truncated or corrupt frame tail: PDUs
	// decoded before it stand, the rest are lost datagram content the
	// protocol recovers via RET. A delta entry whose reference stamp
	// this receiver never saw (pdu.ErrDeltaDesync) is the same thing one
	// level up — the reference was lost in transit — so the frame
	// remainder is dropped as loss too, repaired by retransmission or
	// the sender's next full-stamp sync point; it is counted separately
	// from genuinely invalid input.
	err := l.dec.Reset(in.raw)
	if err == nil {
		l.lm.RecvBytes(len(in.raw), l.dec.Version())
	}
	for err == nil {
		var ok bool
		ok, err = l.dec.Next(&l.scratch)
		if !ok {
			break
		}
		// Sequenced PDUs are retained by the entity and must be cloned
		// out of scratch; control PDUs are only read during Receive.
		// Clone shares Delta, which aliases the stamp decoder's scratch
		// here, so the retained copy takes ownership via OwnDelta.
		if l.scratch.Kind.Sequenced() {
			fn(l.scratch.Clone().OwnDelta())
		} else {
			fn(&l.scratch)
		}
	}
	if errors.Is(err, pdu.ErrDeltaDesync) {
		l.lm.StampDesync()
	}
	pdu.PutDatagram(in.raw)
}

// route peeks the frame header's group address without decoding the
// body. v1/v2 frames and v3 frames addressed to group 0 stay on the
// node loop's path; a v3 group ID past pdu.MaxGroupID (a corrupted or
// hostile header) is dropped whole here and counted as unknown-group
// loss. Headers too mangled to classify fall through to deliver, whose
// decoder rejects them as generic loss.
func (l *wireLink) route(in inbound) (uint32, bool) {
	g, ok := pdu.FrameGroup(in.raw)
	if !ok {
		return 0, false
	}
	if g > pdu.MaxGroupID {
		l.lm.UnknownGroup()
		pdu.PutDatagram(in.raw)
		return 0, true
	}
	return g, false
}

func (l *wireLink) close() error {
	var err error
	l.once.Do(func() {
		close(l.stop)
		<-l.done
		err = l.trans.Close()
	})
	return err
}
