// Package obsv is the public face of cobcast's live-introspection
// layer. The implementation lives in internal/obsv so that the sans-IO
// engine can depend on it; this package re-exports (as type aliases,
// so values flow freely between the two import paths) exactly what an
// embedding application needs:
//
//	reg := obsv.NewRegistry()
//	cluster, _ := cobcast.NewCluster(4, cobcast.WithObservability(reg))
//	srv, _ := obsv.Serve(reg, "127.0.0.1:9090")
//	defer srv.Close()
//
// The served endpoint exposes Prometheus text exposition at /metrics,
// JSON per-node protocol state at /statez (including the stall
// analyzer's verdicts on stuck messages), JSON flight-recorder dumps at
// /tracez (assembled into cross-node span traces by cotrace live), and
// net/http/pprof under /debug/pprof/. Applications with their own HTTP
// server can mount Handler(reg) instead, or render directly with
// Registry.WriteMetrics, WriteStatez and WriteTracez.
package obsv

import (
	"net/http"

	"cobcast/internal/obsv"
)

type (
	// Registry collects the metrics and snapshot providers of every
	// node, transport, and network registered with it, and renders
	// them as /metrics and /statez documents.
	Registry = obsv.Registry

	// Server is a running observability endpoint started by Serve.
	Server = obsv.Server

	// Statez is the /statez document: one StateSnapshot per node.
	Statez = obsv.Statez

	// StateSnapshot is a consistent point-in-time copy of one node's
	// protocol state (SEQ/REQ/minAL/minPAL/committed vectors, log
	// depths, buffer occupancy, quiescence).
	StateSnapshot = obsv.StateSnapshot

	// Tracez is the /tracez document: every registered flight-recorder
	// ring, scraped live.
	Tracez = obsv.Tracez

	// NodeFlight is one node's flight-recorder dump: its retained
	// protocol lifecycle events plus the wall-clock epoch converting
	// their relative timestamps (epoch 0 means virtual time).
	NodeFlight = obsv.NodeFlight

	// Stall is one stall-analyzer verdict: an undelivered message, the
	// pipeline stage holding it, the unmet condition, and the peers
	// whose confirmations are missing.
	Stall = obsv.Stall
)

// NewRegistry returns an empty Registry ready to be passed to
// cobcast.WithObservability and Serve.
func NewRegistry() *Registry { return obsv.NewRegistry() }

// Serve starts the observability endpoint on addr (e.g. ":9090" or
// "127.0.0.1:0") and serves it in a background goroutine until Close.
func Serve(reg *Registry, addr string) (*Server, error) { return obsv.Serve(reg, addr) }

// Handler returns an http.Handler serving the registry on a private
// mux, for embedding into an application's own HTTP server.
func Handler(reg *Registry) http.Handler { return obsv.Handler(reg) }

// LiveHeap forces a garbage collection and returns the post-GC heap
// bytes in use — the retention measure long-running harnesses sample
// for leak trends. Deliberately expensive (a full GC).
func LiveHeap() uint64 { return obsv.LiveHeap() }
