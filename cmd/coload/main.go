// Command coload is a load generator and soak tester for the CO protocol:
// it drives a real-time in-process cluster at a configured rate and
// reports delivery throughput, end-to-end latency percentiles, and
// protocol counters.
//
//	coload -n 4 -msgs 2000 -rate 5000 -size 128 -loss 0.05
//	coload -n 3 -msgs 500 -total        # total-order mode
//	coload -n 4 -msgs 4000 -groups 8    # spread over 8 ordered groups
//	coload -n 4 -msgs 1e9 -obsv 127.0.0.1:9090   # watch /metrics live
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"cobcast"
	"cobcast/internal/experiments"
	"cobcast/internal/metrics"
	"cobcast/obsv"
)

func main() {
	var (
		n      = flag.Int("n", 4, "cluster size")
		msgs   = flag.Int("msgs", 1000, "total messages to broadcast")
		rate   = flag.Float64("rate", 2000, "target submit rate, messages/second (0 = unthrottled)")
		size   = flag.Int("size", 64, "payload bytes")
		loss   = flag.Float64("loss", 0, "injected network loss rate")
		seed   = flag.Int64("seed", 1, "loss RNG seed")
		total  = flag.Bool("total", false, "use total-order delivery")
		groups = flag.Int("groups", 1, "spread traffic over this many independent ordered groups")
		shards = flag.Int("shards", 0, "shard goroutines for the multi-group runtime (0 = GOMAXPROCS)")
		wait   = flag.Duration("timeout", 2*time.Minute, "overall deadline")
		addr   = flag.String("obsv", "", "serve /metrics, /statez and pprof on this address during the run (e.g. 127.0.0.1:9090)")
	)
	flag.Parse()
	if *groups < 1 {
		fmt.Fprintln(os.Stderr, "coload: -groups must be >= 1")
		os.Exit(2)
	}
	if err := run(*n, *msgs, *rate, *size, *loss, *seed, *total, *groups, *shards, *wait, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "coload:", err)
		os.Exit(1)
	}
}

func run(n, msgs int, rate float64, size int, loss float64, seed int64, total bool, groups, shards int, wait time.Duration, obsvAddr string) error {
	opts := []cobcast.Option{
		cobcast.WithLossRate(loss),
		cobcast.WithSeed(seed),
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithRetransmitTimeout(5 * time.Millisecond),
	}
	if total {
		opts = append(opts, cobcast.WithTotalOrder())
	}
	if shards > 0 {
		opts = append(opts, cobcast.WithGroupShards(shards))
	}
	if obsvAddr != "" {
		reg := obsv.NewRegistry()
		opts = append(opts, cobcast.WithObservability(reg))
		srv, err := obsv.Serve(reg, obsvAddr)
		if err != nil {
			return fmt.Errorf("obsv endpoint: %w", err)
		}
		defer srv.Close()
		fmt.Printf("observability: http://%s/metrics /statez /debug/pprof/\n", srv.Addr())
	}
	cluster, err := cobcast.NewCluster(n, opts...)
	if err != nil {
		return err
	}
	defer cluster.Close()

	if size < 12 {
		size = 12
	}
	var (
		mu        sync.Mutex
		sendTimes = make(map[uint64]time.Time, msgs)
		lat       metrics.Histogram
	)
	key := func(src int, idx uint64) uint64 { return uint64(src)<<40 | idx }

	// One port per (node, group); with -groups 1 these are the nodes'
	// default ports and the run is byte-identical to the classic
	// single-group load test.
	ports := experiments.MultiGroupPorts(cluster, n, groups)
	perGroup := make([]int, groups)
	for i := 0; i < msgs; i++ {
		perGroup[i%groups]++
	}

	var wg sync.WaitGroup
	errs := make(chan error, n*groups)
	for i := 0; i < n; i++ {
		for g := 0; g < groups; g++ {
			i, g := i, g
			wg.Add(1)
			go func() {
				defer wg.Done()
				seen := 0
				deadline := time.After(wait)
				for seen < perGroup[g] {
					select {
					case m, ok := <-ports[i][g].Deliveries():
						if !ok {
							errs <- fmt.Errorf("node %d group %d: closed at %d/%d", i, g, seen, perGroup[g])
							return
						}
						now := time.Now()
						idx := binary.BigEndian.Uint64(m.Data[4:])
						mu.Lock()
						if at, ok := sendTimes[key(m.Src, idx)]; ok {
							lat.Record(float64(now.Sub(at).Microseconds()))
						}
						mu.Unlock()
						seen++
					case <-deadline:
						errs <- fmt.Errorf("node %d group %d: timeout at %d/%d (stats %+v)",
							i, g, seen, perGroup[g], cluster.Node(i).Stats())
						return
					}
				}
				errs <- nil
			}()
		}
	}

	payload := make([]byte, size)
	start := time.Now()
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(time.Second) / rate)
	}
	next := start
	for i := 0; i < msgs; i++ {
		src := i % n
		binary.BigEndian.PutUint32(payload, uint32(src))
		binary.BigEndian.PutUint64(payload[4:], uint64(i))
		mu.Lock()
		sendTimes[key(src, uint64(i))] = time.Now()
		mu.Unlock()
		if err := ports[src][i%groups].Broadcast(payload); err != nil {
			return err
		}
		if interval > 0 {
			next = next.Add(interval)
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
		}
	}
	submitted := time.Since(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	elapsed := time.Since(start)

	mode := "causal order"
	if total {
		mode = "total order"
	}
	if groups > 1 {
		mode = fmt.Sprintf("%s, %d groups", mode, groups)
	}
	fmt.Printf("%d messages × %d nodes (%s, %.0f%% loss) in %v (submit phase %v)\n",
		msgs, n, mode, loss*100, elapsed.Round(time.Millisecond), submitted.Round(time.Millisecond))
	fmt.Printf("delivery throughput: %.0f msg/s per node (%.0f deliveries/s cluster-wide)\n",
		float64(msgs)/elapsed.Seconds(), float64(msgs*n)/elapsed.Seconds())
	fmt.Printf("end-to-end latency (µs): p50=%.0f p95=%.0f p99=%.0f max=%.0f (n=%d samples)\n",
		lat.Percentile(50), lat.Percentile(95), lat.Percentile(99), lat.Max(), lat.Count())

	var agg cobcast.Stats
	for i := 0; i < n; i++ {
		for g := 0; g < groups; g++ {
			s, ok := ports[i][g].Stats()
			if !ok {
				continue
			}
			agg.DataSent += s.DataSent
			agg.SyncSent += s.SyncSent
			agg.AckOnlySent += s.AckOnlySent
			agg.RetSent += s.RetSent
			agg.Retransmitted += s.Retransmitted
			agg.Duplicates += s.Duplicates
			agg.FlowBlocked += s.FlowBlocked
		}
	}
	fmt.Printf("protocol: data=%d sync=%d ackonly=%d ret=%d retx=%d dup=%d flow-blocked=%d\n",
		agg.DataSent, agg.SyncSent, agg.AckOnlySent, agg.RetSent,
		agg.Retransmitted, agg.Duplicates, agg.FlowBlocked)
	ns := cluster.NetworkStats()
	fmt.Printf("network: sent=%d delivered=%d lost=%d overrun=%d\n",
		ns.Sent, ns.Delivered, ns.DroppedLoss, ns.DroppedOverrun)
	return nil
}
