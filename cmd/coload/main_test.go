package main

import (
	"testing"
	"time"
)

func TestRunSmall(t *testing.T) {
	if err := run(3, 60, 0, 32, 0, 1, false, 1, 0, time.Minute, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithLossAndRate(t *testing.T) {
	if err := run(3, 40, 5000, 32, 0.1, 2, false, 1, 0, time.Minute, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunTotalOrder(t *testing.T) {
	if err := run(3, 30, 0, 32, 0, 3, true, 1, 0, time.Minute, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithObservability(t *testing.T) {
	if err := run(3, 30, 0, 32, 0, 4, false, 1, 0, time.Minute, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiGroup(t *testing.T) {
	if err := run(3, 60, 0, 32, 0, 5, false, 4, 2, time.Minute, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunMultiGroupWithLoss(t *testing.T) {
	if err := run(2, 40, 0, 32, 0.1, 6, false, 2, 0, time.Minute, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadCluster(t *testing.T) {
	if err := run(1, 1, 0, 16, 0, 1, false, 1, 0, time.Second, ""); err != nil {
		t.Log(err)
	} else {
		t.Error("n=1 accepted")
	}
}
