// Command codemo runs a live CO-protocol cluster and shows every node
// delivering the same causally ordered stream, optionally under injected
// loss. Each line of input on stdin is broadcast from a rotating sender;
// with -auto N the demo broadcasts N messages by itself.
//
//	codemo -n 4 -loss 0.2 -auto 12
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"cobcast"
)

func main() {
	var (
		n     = flag.Int("n", 3, "cluster size")
		loss  = flag.Float64("loss", 0, "injected network loss rate [0,1)")
		seed  = flag.Int64("seed", 1, "loss RNG seed")
		auto  = flag.Int("auto", 0, "broadcast this many demo messages and exit (0 = read stdin)")
		delay = flag.Duration("delay", 0, "network propagation delay")
	)
	flag.Parse()
	if err := run(*n, *loss, *seed, *auto, *delay); err != nil {
		fmt.Fprintln(os.Stderr, "codemo:", err)
		os.Exit(1)
	}
}

func run(n int, loss float64, seed int64, auto int, delay time.Duration) error {
	cluster, err := cobcast.NewCluster(n,
		cobcast.WithLossRate(loss),
		cobcast.WithSeed(seed),
		cobcast.WithNetworkDelay(delay),
		cobcast.WithDeferredAckInterval(2*time.Millisecond),
	)
	if err != nil {
		return err
	}
	defer cluster.Close()

	var (
		mu     sync.Mutex
		counts = make([]int, n)
	)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			for m := range cluster.Node(i).Deliveries() {
				mu.Lock()
				counts[i]++
				fmt.Printf("node %d delivered #%d: [from %d seq %d] %q\n",
					i, counts[i], m.Src, m.Seq, m.Data)
				mu.Unlock()
			}
		}()
	}

	total := 0
	if auto > 0 {
		for i := 0; i < auto; i++ {
			msg := fmt.Sprintf("demo message %d", i)
			if err := cluster.Broadcast(i%n, []byte(msg)); err != nil {
				return err
			}
			total++
		}
	} else {
		fmt.Printf("cluster of %d nodes up (loss %.0f%%); type lines to broadcast, EOF to quit\n",
			n, loss*100)
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			if err := cluster.Broadcast(total%n, sc.Bytes()); err != nil {
				return err
			}
			total++
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}

	// Wait for every node to deliver everything.
	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		done := true
		for _, c := range counts {
			if c < total {
				done = false
			}
		}
		mu.Unlock()
		if done {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timeout: %v of %d delivered", counts, total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cluster.Close()
	wg.Wait()

	fmt.Println("\nper-node protocol statistics:")
	for i := 0; i < n; i++ {
		s := cluster.Node(i).Stats()
		fmt.Printf("  node %d: data=%d sync=%d ackonly=%d ret=%d retx=%d delivered=%d\n",
			i, s.DataSent, s.SyncSent, s.AckOnlySent, s.RetSent, s.Retransmitted, s.Delivered)
	}
	ns := cluster.NetworkStats()
	fmt.Printf("network: sent=%d delivered=%d lost=%d overrun=%d\n",
		ns.Sent, ns.Delivered, ns.DroppedLoss, ns.DroppedOverrun)
	return nil
}
