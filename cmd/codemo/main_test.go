package main

import (
	"testing"
	"time"
)

func TestRunAutoLossless(t *testing.T) {
	if err := run(3, 0, 1, 6, 0); err != nil {
		t.Fatal(err)
	}
}

func TestRunAutoWithLossAndDelay(t *testing.T) {
	if err := run(4, 0.2, 7, 8, time.Millisecond); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadCluster(t *testing.T) {
	if err := run(1, 0, 1, 1, 0); err == nil {
		t.Error("n=1 accepted")
	}
}
