// Command cochaos drives the deterministic chaos harness (internal/chaos)
// from the shell: bounded parallel seed sweeps for CI, and single-seed
// replays with full trace dumps for debugging.
//
// Sweep 500 seeds on 4 workers, shrinking failures and writing their
// configs + traces for artifact upload:
//
//	cochaos -sweep 500 -par 4 -shrink -faildir chaos-failures
//
// Sweep the same seeds with wire codec v2 in the loop (every simulated
// datagram round-trips through the delta-stamp byte codec):
//
//	cochaos -sweep 500 -par 4 -codec 2
//
// Replay one seed (for instance a sweep failure) standalone, verbosely,
// dumping its trace:
//
//	cochaos -seed 4242 -v -trace failing.jsonl
//
// Append a failing seed's (shrunk) config to the regression corpus:
//
//	cochaos -seed 4242 -shrink -corpus internal/chaos/corpus
//
// Replay with a live /metrics + /statez + pprof endpoint, kept up for
// five minutes after the run so it can be scraped:
//
//	cochaos -seed 4242 -obsv 127.0.0.1:9090 -hold 5m
//
// Exit status: 0 all runs passed, 1 at least one invariant violated,
// 2 usage or harness error.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cobcast/internal/chaos"
	"cobcast/internal/core"
	"cobcast/internal/metrics"
	"cobcast/obsv"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type options struct {
	sweep   int
	start   int64
	par     int
	seed    int64
	codec   int
	shrink  bool
	verbose bool
	trace   string
	faildir string
	corpus  string
	obsv    string
	hold    time.Duration
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cochaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	fs.IntVar(&o.sweep, "sweep", 0, "run this many consecutive seeds (sweep mode)")
	fs.Int64Var(&o.start, "start", 1, "first seed of the sweep")
	fs.IntVar(&o.par, "par", 4, "parallel workers for the sweep")
	fs.Int64Var(&o.seed, "seed", 0, "replay this single seed (replay mode)")
	fs.IntVar(&o.codec, "codec", 0, "force a wire codec for every run: 1 (fixed-width v1) or 2 (delta-stamp v2); 0 keeps the PDU-pointer path")
	fs.BoolVar(&o.shrink, "shrink", false, "shrink failing configs to minimal form")
	fs.BoolVar(&o.verbose, "v", false, "print per-run statistics")
	fs.StringVar(&o.trace, "trace", "", "replay mode: write the run's JSON-lines trace here")
	fs.StringVar(&o.faildir, "faildir", "", "write failing configs and traces into this directory")
	fs.StringVar(&o.corpus, "corpus", "", "append failing (shrunk) configs to this corpus directory")
	fs.StringVar(&o.obsv, "obsv", "", "replay mode: serve /metrics, /statez and pprof on this address during the run")
	fs.DurationVar(&o.hold, "hold", 0, "replay mode: keep the -obsv endpoint up this long after the run")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if o.codec < 0 || o.codec > 2 {
		fmt.Fprintln(stderr, "cochaos: -codec must be 0, 1 or 2")
		return 2
	}
	switch {
	case o.sweep > 0 && o.seed != 0:
		fmt.Fprintln(stderr, "cochaos: -sweep and -seed are mutually exclusive")
		return 2
	case o.sweep > 0:
		return sweep(o, stdout, stderr)
	case o.seed != 0:
		return replay(o, stdout, stderr)
	default:
		fmt.Fprintln(stderr, "cochaos: need -sweep N or -seed N")
		fs.Usage()
		return 2
	}
}

// failure is one seed that violated an invariant during a sweep.
type failure struct {
	Seed      int64        `json:"seed"`
	Predicate string       `json:"predicate"`
	Detail    string       `json:"detail"`
	Config    chaos.Config `json:"config"`
	Shrunk    chaos.Config `json:"shrunk_config,omitempty"`
	trace     []byte
	perEntity []core.Stats
	flight    []obsv.NodeFlight
	stalls    []obsv.Stall
}

// perEntityTable renders each entity's protocol counters as an aligned
// table — the first thing to read when a seed fails: it shows where the
// pipeline stalled (acceptance, loss detection, commit, delivery).
func perEntityTable(per []core.Stats) string {
	t := metrics.NewTable("per-entity protocol counters",
		"node", "data", "sync", "ackonly", "ret", "recv", "accepted", "dup", "parked",
		"f1", "f2", "retx", "committed", "delivered", "cpi", "cpi-pos", "deferred")
	for i, s := range per {
		t.AddRow(i, s.DataSent, s.SyncSent, s.AckOnlySent, s.RetSent,
			s.DataRecv+s.SyncRecv+s.AckOnlyRecv+s.RetRecv,
			s.Accepted, s.Duplicates, s.Parked,
			s.F1Detections, s.F2Detections, s.Retransmitted,
			s.Committed, s.Delivered, s.CPIDisplaced, s.CPIDisplacement, s.DeferredConfirms)
	}
	return t.String()
}

func sweep(o options, stdout, stderr io.Writer) int {
	if o.par < 1 {
		o.par = 1
	}
	seeds := make(chan int64)
	var mu sync.Mutex
	var failures []failure
	var passed int
	var agg struct {
		submitted                   int
		dropped, retx, parked, dups uint64
		codecDropped                uint64
		dataSent, syncSent          uint64
	}
	var wg sync.WaitGroup
	for w := 0; w < o.par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range seeds {
				cfg := chaos.FromSeed(seed)
				cfg.WireVersion = o.codec
				res, err := chaos.Run(cfg)
				mu.Lock()
				if err == nil {
					passed++
					agg.submitted += res.Submitted
					agg.dropped += res.Net.Dropped
					agg.codecDropped += res.Net.CodecDropped
					agg.retx += res.Stats.Retransmitted
					agg.parked += res.Stats.Parked
					agg.dups += res.Stats.Duplicates
					agg.dataSent += res.Stats.DataSent
					agg.syncSent += res.Stats.SyncSent + res.Stats.AckOnlySent
					mu.Unlock()
					continue
				}
				f := failure{Seed: seed, Config: cfg, Detail: err.Error()}
				var v *chaos.Violation
				if errors.As(err, &v) {
					f.Predicate = v.Predicate
				}
				if res != nil {
					f.trace = res.TraceJSON
					f.perEntity = res.PerEntity
					f.flight = res.Flight
					f.stalls = res.Stalls
				}
				if o.shrink && f.Predicate != "" {
					if min, ok, _ := chaos.Shrink(cfg, 64); ok {
						f.Shrunk = min
					}
				}
				failures = append(failures, f)
				mu.Unlock()
			}
		}()
	}
	for i := int64(0); i < int64(o.sweep); i++ {
		seeds <- o.start + i
	}
	close(seeds)
	wg.Wait()

	sort.Slice(failures, func(i, j int) bool { return failures[i].Seed < failures[j].Seed })
	fmt.Fprintf(stdout, "cochaos: %d/%d seeds passed (seeds %d..%d)\n",
		passed, o.sweep, o.start, o.start+int64(o.sweep)-1)
	if o.verbose || len(failures) == 0 {
		fmt.Fprintf(stdout, "coverage: %d submissions, %d datagram PDUs dropped, %d retransmitted, %d parked, %d duplicate discards, %d DATA + %d SYNC/ACKONLY sends\n",
			agg.submitted, agg.dropped, agg.retx, agg.parked, agg.dups, agg.dataSent, agg.syncSent)
		if o.codec != 0 {
			fmt.Fprintf(stdout, "codec v%d: %d PDUs dropped by delta-stamp desync\n", o.codec, agg.codecDropped)
		}
	}
	for _, f := range failures {
		fmt.Fprintf(stderr, "FAIL seed %d: [%s] %s\n", f.Seed, f.Predicate, f.Detail)
		fmt.Fprintf(stderr, "  replay: go run ./cmd/cochaos -seed %d -v -trace seed-%d.jsonl\n", f.Seed, f.Seed)
		if f.perEntity != nil {
			fmt.Fprintln(stderr, perEntityTable(f.perEntity))
		}
		if err := persistFailure(o, f, stderr); err != nil {
			fmt.Fprintln(stderr, "cochaos:", err)
			return 2
		}
	}
	if len(failures) > 0 {
		return 1
	}
	return 0
}

func replay(o options, stdout, stderr io.Writer) int {
	cfg := chaos.FromSeed(o.seed)
	cfg.WireVersion = o.codec
	if o.verbose {
		b, _ := json.MarshalIndent(cfg, "", "  ")
		fmt.Fprintf(stdout, "seed %d expands to:\n%s\n", o.seed, b)
	}
	var reg *obsv.Registry
	if o.obsv != "" {
		reg = obsv.NewRegistry()
		srv, err := obsv.Serve(reg, o.obsv)
		if err != nil {
			fmt.Fprintln(stderr, "cochaos: obsv endpoint:", err)
			return 2
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "observability: http://%s/metrics /statez /debug/pprof/\n", srv.Addr())
	}
	res, err := chaos.RunWithRegistry(cfg, reg)
	if res != nil {
		if o.trace != "" {
			if werr := os.WriteFile(o.trace, res.TraceJSON, 0o644); werr != nil {
				fmt.Fprintln(stderr, "cochaos:", werr)
				return 2
			}
			fmt.Fprintf(stdout, "trace (%d events, sha256 %s) written to %s\n",
				res.Summary.Events, res.TraceDigest, o.trace)
		}
		if o.verbose {
			fmt.Fprintf(stdout, "submitted %d, delivered %d, virtual elapsed %v (faults ceased at %v)\n",
				res.Submitted, res.Stats.Delivered, res.VirtualElapsed, res.FaultEnd)
			fmt.Fprintf(stdout, "net: %d sent, %d delivered, %d dropped; retransmitted %d, parked %d, duplicates %d\n",
				res.Net.Sent, res.Net.Delivered, res.Net.Dropped,
				res.Stats.Retransmitted, res.Stats.Parked, res.Stats.Duplicates)
			if o.codec != 0 {
				fmt.Fprintf(stdout, "codec v%d: %d PDUs dropped by delta-stamp desync\n",
					o.codec, res.Net.CodecDropped)
			}
		}
		if o.verbose || o.trace != "" {
			fmt.Fprintln(stdout, perEntityTable(res.PerEntity))
		}
	}
	if o.obsv != "" && o.hold > 0 {
		fmt.Fprintf(stdout, "holding endpoint for %v (ctrl-c to stop early)\n", o.hold)
		time.Sleep(o.hold)
	}
	if err == nil {
		fmt.Fprintf(stdout, "seed %d: all predicates hold\n", o.seed)
		return 0
	}
	f := failure{Seed: o.seed, Config: cfg, Detail: err.Error()}
	var v *chaos.Violation
	if !errors.As(err, &v) {
		fmt.Fprintln(stderr, "cochaos:", err)
		return 2
	}
	f.Predicate = v.Predicate
	if res != nil {
		f.trace = res.TraceJSON
		f.flight = res.Flight
		f.stalls = res.Stalls
	}
	fmt.Fprintf(stderr, "FAIL seed %d: [%s] %s\n", f.Seed, f.Predicate, f.Detail)
	for _, st := range f.stalls {
		fmt.Fprintf(stderr, "  stall: node %s %s [%s] %s: %s (waiting on %v)\n",
			st.Node, st.Msg, st.Kind, st.Stage, st.Reason, st.WaitingOn)
	}
	if o.shrink {
		if min, ok, runs := chaos.Shrink(cfg, 64); ok {
			f.Shrunk = min
			b, _ := json.MarshalIndent(min, "", "  ")
			fmt.Fprintf(stdout, "shrunk (%d runs) to:\n%s\n", runs, b)
		}
	}
	if err := persistFailure(o, f, stderr); err != nil {
		fmt.Fprintln(stderr, "cochaos:", err)
		return 2
	}
	return 1
}

// persistFailure writes the failing config + trace into -faildir (for CI
// artifact upload) and appends the minimal config to -corpus if asked.
func persistFailure(o options, f failure, stderr io.Writer) error {
	if o.faildir != "" {
		if err := os.MkdirAll(o.faildir, 0o755); err != nil {
			return err
		}
		b, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			return err
		}
		cfgPath := filepath.Join(o.faildir, fmt.Sprintf("seed-%d.config.json", f.Seed))
		if err := os.WriteFile(cfgPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		if f.trace != nil {
			tracePath := filepath.Join(o.faildir, fmt.Sprintf("seed-%d.trace.jsonl", f.Seed))
			if err := os.WriteFile(tracePath, f.trace, 0o644); err != nil {
				return err
			}
		}
		if f.flight != nil || f.stalls != nil {
			// The flight dump and stall verdicts land next to the trace: the
			// per-entity event rings say what each entity last did, and the
			// analyzer says which unmet condition holds what where.
			dump, err := json.MarshalIndent(struct {
				Stalls []obsv.Stall      `json:"stalls,omitempty"`
				Nodes  []obsv.NodeFlight `json:"nodes"`
			}{Stalls: f.stalls, Nodes: f.flight}, "", "  ")
			if err != nil {
				return err
			}
			flightPath := filepath.Join(o.faildir, fmt.Sprintf("seed-%d.flight.json", f.Seed))
			if err := os.WriteFile(flightPath, append(dump, '\n'), 0o644); err != nil {
				return err
			}
		}
		fmt.Fprintf(stderr, "  artifacts: %s\n", cfgPath)
	}
	if o.corpus != "" {
		cfg := f.Config
		if f.Shrunk != (chaos.Config{}) {
			cfg = f.Shrunk
		}
		path, err := chaos.AppendCorpus(o.corpus, chaos.CorpusEntry{
			Name:      fmt.Sprintf("seed-%d", f.Seed),
			Note:      fmt.Sprintf("sweep failure at seed %d", f.Seed),
			Predicate: f.Predicate,
			Config:    cfg,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "  corpus: %s\n", path)
	}
	return nil
}
