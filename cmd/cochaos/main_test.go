package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cobcast/internal/chaos"
)

func TestSweepPasses(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-sweep", "6", "-par", "2", "-start", "1"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "6/6 seeds passed") {
		t.Fatalf("unexpected output: %s", out.String())
	}
	if !strings.Contains(out.String(), "coverage:") {
		t.Fatalf("missing coverage summary: %s", out.String())
	}
}

func TestReplayDeterministicTrace(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "b.jsonl")
	for _, path := range []string{a, b} {
		var out, errb bytes.Buffer
		if code := run([]string{"-seed", "11", "-v", "-trace", path}, &out, &errb); code != 0 {
			t.Fatalf("exit %d, stderr: %s", code, errb.String())
		}
		if !strings.Contains(out.String(), "all predicates hold") {
			t.Fatalf("unexpected output: %s", out.String())
		}
	}
	ba, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(ba) == 0 || !bytes.Equal(ba, bb) {
		t.Fatal("replayed traces are not byte-identical")
	}
}

func TestReplayMatchesEngine(t *testing.T) {
	// The CLI must reproduce exactly what the engine computes for a seed.
	res, err := chaos.Run(chaos.FromSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "t.jsonl")
	var out, errb bytes.Buffer
	if code := run([]string{"-seed", "11", "-trace", path}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, res.TraceJSON) {
		t.Fatal("CLI trace differs from engine trace for the same seed")
	}
	if !strings.Contains(out.String(), res.TraceDigest) {
		t.Fatalf("digest %s not reported: %s", res.TraceDigest, out.String())
	}
}

func TestUsage(t *testing.T) {
	cases := [][]string{
		{},
		{"-sweep", "3", "-seed", "4"},
		{"-bogus"},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2", args, code)
		}
	}
}
