// Command cotrace verifies a recorded protocol trace (JSON lines, as
// written by trace.Recorder.WriteJSON) against the ordering properties of
// Section 2.2 of the paper: information preservation, local order, causal
// order, and optionally total order.
//
//	cotrace -n 4 [-total] trace.jsonl
//	cat trace.jsonl | cotrace -n 4
//
// With -gen it first records a fresh trace by running a simulated lossy
// cluster, writes it to the given file (or stdout), and verifies it:
//
//	cotrace -gen -n 4 -loss 0.1 -msgs 20 trace.jsonl
//
// The live subcommand scrapes the /tracez flight-recorder endpoint of
// one or more running nodes' observability servers and assembles the
// rings into a Chrome trace-event file — open it at ui.perfetto.dev to
// see each message's lifecycle span on every node, linked by causal
// flow arrows from its sequencing node to each acceptor:
//
//	cotrace live -out spans.json http://node0:9090 http://node1:9091 ...
//	cotrace live http://127.0.0.1:9090 > spans.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"cobcast/internal/cospan"
	"cobcast/internal/obsv"
	"cobcast/internal/sim"
	"cobcast/internal/simrun"
	"cobcast/internal/trace"
	"cobcast/internal/workload"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "live" {
		if err := live(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "cotrace live:", err)
			os.Exit(1)
		}
		return
	}
	var (
		n     = flag.Int("n", 0, "cluster size (required)")
		total = flag.Bool("total", false, "also check total order")
		gen   = flag.Bool("gen", false, "record a fresh trace from a simulated run first")
		loss  = flag.Float64("loss", 0.1, "loss rate for -gen")
		msgs  = flag.Int("msgs", 20, "messages for -gen")
		seed  = flag.Int64("seed", 1, "seed for -gen")
	)
	flag.Parse()
	var err error
	if *gen {
		err = generate(*n, *loss, *msgs, *seed, *total, flag.Args())
	} else {
		err = run(*n, *total, flag.Args())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cotrace:", err)
		os.Exit(1)
	}
}

// live scrapes /tracez from each endpoint and writes the assembled
// Chrome trace. Endpoints are observability-server base URLs; a node
// label that collides across endpoints is prefixed by its endpoint
// index so multi-process clusters keep distinct process tracks.
func live(args []string) error {
	fs := flag.NewFlagSet("cotrace live", flag.ExitOnError)
	out := fs.String("out", "", "write the Chrome trace here (default stdout)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-endpoint scrape timeout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	urls := fs.Args()
	if len(urls) == 0 {
		return fmt.Errorf("no endpoints; usage: cotrace live [-out spans.json] http://host:port ...")
	}
	client := &http.Client{Timeout: *timeout}
	var nodes []obsv.NodeFlight
	seen := make(map[string]bool)
	for i, u := range urls {
		doc, err := fetchTracez(client, u)
		if err != nil {
			return fmt.Errorf("%s: %w", u, err)
		}
		for _, nf := range doc.Nodes {
			if seen[nf.Node] {
				nf.Node = fmt.Sprintf("ep%d/%s", i, nf.Node)
			}
			seen[nf.Node] = true
			nodes = append(nodes, nf)
		}
	}
	if len(nodes) == 0 {
		return fmt.Errorf("endpoints served no flight rings (is WithObservability + flight recording enabled?)")
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := cospan.WriteJSON(w, nodes); err != nil {
		return err
	}
	if *out != "" {
		total := 0
		for _, nf := range nodes {
			total += len(nf.Events)
		}
		fmt.Printf("wrote %s: %d flight events from %d rings across %d endpoints (open at ui.perfetto.dev)\n",
			*out, total, len(nodes), len(urls))
	}
	return nil
}

func fetchTracez(client *http.Client, base string) (*obsv.Tracez, error) {
	u := strings.TrimSuffix(base, "/") + "/tracez"
	if !strings.Contains(base, "://") {
		u = "http://" + u
	}
	resp, err := client.Get(u)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", u, resp.Status)
	}
	var doc obsv.Tracez
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, fmt.Errorf("decode %s: %w", u, err)
	}
	return &doc, nil
}

func generate(n int, loss float64, msgs int, seed int64, total bool, args []string) error {
	if n < 2 {
		return fmt.Errorf("-n must be at least 2")
	}
	c, err := simrun.New(simrun.Options{
		N:     n,
		Trace: true,
		Net: []sim.NetOption{
			sim.NetUniformDelay(time.Millisecond),
			sim.NetLossRate(loss),
			sim.NetSeed(seed),
		},
	})
	if err != nil {
		return err
	}
	c.LoadWorkload(workload.NewContinuous(n, (msgs+n-1)/n, 32))
	if _, err := c.RunToQuiescence(2 * time.Minute); err != nil {
		return err
	}
	out := os.Stdout
	if len(args) > 0 {
		f, err := os.Create(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := c.Recorder.WriteJSON(out); err != nil {
		return err
	}
	if len(args) > 0 {
		fmt.Printf("wrote %d events to %s\n", c.Recorder.Len(), args[0])
		return run(n, total, args)
	}
	return nil
}

func run(n int, total bool, args []string) error {
	if n < 2 {
		return fmt.Errorf("-n must be at least 2")
	}
	var rd io.Reader = os.Stdin
	if len(args) > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		rd = f
	}
	events, err := trace.ReadJSON(rd)
	if err != nil {
		return err
	}
	a, err := trace.Analyze(events, n)
	if err != nil {
		return fmt.Errorf("analyze: %w", err)
	}
	s := trace.Summarize(events)
	fmt.Printf("%d events: %d data + %d sync sends, %d accepts, %d deliveries, %d retransmits\n",
		s.Events, s.DataSends, s.SyncSends, s.Accepts, s.Deliveries, s.Retransmits)
	fmt.Printf("%d distinct data messages\n", len(a.DataSends()))

	checks := []struct {
		name string
		fn   func() error
	}{
		{"information-preserved", a.CheckInformationPreserved},
		{"local-order-preserved", a.CheckLocalOrderPreserved},
		{"causality-preserved", a.CheckCausalOrderPreserved},
	}
	if total {
		checks = append(checks, struct {
			name string
			fn   func() error
		}{"total-order-preserved", a.CheckTotalOrderPreserved})
	}
	failed := false
	for _, c := range checks {
		if err := c.fn(); err != nil {
			failed = true
			fmt.Printf("FAIL %-24s %v\n", c.name, err)
		} else {
			fmt.Printf("ok   %s\n", c.name)
		}
	}
	if failed {
		return fmt.Errorf("trace violates the service properties")
	}
	return nil
}
