// Command cotrace verifies a recorded protocol trace (JSON lines, as
// written by trace.Recorder.WriteJSON) against the ordering properties of
// Section 2.2 of the paper: information preservation, local order, causal
// order, and optionally total order.
//
//	cotrace -n 4 [-total] trace.jsonl
//	cat trace.jsonl | cotrace -n 4
//
// With -gen it first records a fresh trace by running a simulated lossy
// cluster, writes it to the given file (or stdout), and verifies it:
//
//	cotrace -gen -n 4 -loss 0.1 -msgs 20 trace.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"cobcast/internal/sim"
	"cobcast/internal/simrun"
	"cobcast/internal/trace"
	"cobcast/internal/workload"
)

func main() {
	var (
		n     = flag.Int("n", 0, "cluster size (required)")
		total = flag.Bool("total", false, "also check total order")
		gen   = flag.Bool("gen", false, "record a fresh trace from a simulated run first")
		loss  = flag.Float64("loss", 0.1, "loss rate for -gen")
		msgs  = flag.Int("msgs", 20, "messages for -gen")
		seed  = flag.Int64("seed", 1, "seed for -gen")
	)
	flag.Parse()
	var err error
	if *gen {
		err = generate(*n, *loss, *msgs, *seed, *total, flag.Args())
	} else {
		err = run(*n, *total, flag.Args())
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cotrace:", err)
		os.Exit(1)
	}
}

func generate(n int, loss float64, msgs int, seed int64, total bool, args []string) error {
	if n < 2 {
		return fmt.Errorf("-n must be at least 2")
	}
	c, err := simrun.New(simrun.Options{
		N:     n,
		Trace: true,
		Net: []sim.NetOption{
			sim.NetUniformDelay(time.Millisecond),
			sim.NetLossRate(loss),
			sim.NetSeed(seed),
		},
	})
	if err != nil {
		return err
	}
	c.LoadWorkload(workload.NewContinuous(n, (msgs+n-1)/n, 32))
	if _, err := c.RunToQuiescence(2 * time.Minute); err != nil {
		return err
	}
	out := os.Stdout
	if len(args) > 0 {
		f, err := os.Create(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if err := c.Recorder.WriteJSON(out); err != nil {
		return err
	}
	if len(args) > 0 {
		fmt.Printf("wrote %d events to %s\n", c.Recorder.Len(), args[0])
		return run(n, total, args)
	}
	return nil
}

func run(n int, total bool, args []string) error {
	if n < 2 {
		return fmt.Errorf("-n must be at least 2")
	}
	var rd io.Reader = os.Stdin
	if len(args) > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		rd = f
	}
	events, err := trace.ReadJSON(rd)
	if err != nil {
		return err
	}
	a, err := trace.Analyze(events, n)
	if err != nil {
		return fmt.Errorf("analyze: %w", err)
	}
	s := trace.Summarize(events)
	fmt.Printf("%d events: %d data + %d sync sends, %d accepts, %d deliveries, %d retransmits\n",
		s.Events, s.DataSends, s.SyncSends, s.Accepts, s.Deliveries, s.Retransmits)
	fmt.Printf("%d distinct data messages\n", len(a.DataSends()))

	checks := []struct {
		name string
		fn   func() error
	}{
		{"information-preserved", a.CheckInformationPreserved},
		{"local-order-preserved", a.CheckLocalOrderPreserved},
		{"causality-preserved", a.CheckCausalOrderPreserved},
	}
	if total {
		checks = append(checks, struct {
			name string
			fn   func() error
		}{"total-order-preserved", a.CheckTotalOrderPreserved})
	}
	failed := false
	for _, c := range checks {
		if err := c.fn(); err != nil {
			failed = true
			fmt.Printf("FAIL %-24s %v\n", c.name, err)
		} else {
			fmt.Printf("ok   %s\n", c.name)
		}
	}
	if failed {
		return fmt.Errorf("trace violates the service properties")
	}
	return nil
}
