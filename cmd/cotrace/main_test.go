package main

import (
	"os"
	"path/filepath"
	"testing"

	"cobcast/internal/pdu"
	"cobcast/internal/trace"
)

func TestGenerateAndVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := generate(4, 0.1, 16, 1, false, []string{path}); err != nil {
		t.Fatal(err)
	}
	if err := run(4, false, []string{path}); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateTotalOrderVerifies(t *testing.T) {
	// A -gen trace of a plain CO run checked with -total would usually
	// fail; here just confirm the CO checks pass through run().
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := generate(3, 0, 9, 2, false, []string{path}); err != nil {
		t.Fatal(err)
	}
	if err := run(3, false, []string{path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadN(t *testing.T) {
	if err := run(1, false, nil); err == nil {
		t.Error("n=1 accepted")
	}
	if err := generate(0, 0, 1, 1, false, nil); err == nil {
		t.Error("generate with n=0 accepted")
	}
}

func TestRunMissingFile(t *testing.T) {
	if err := run(3, false, []string{"/nonexistent/trace.jsonl"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunDetectsViolation(t *testing.T) {
	// Hand-build a trace where entity 1 delivers a causal pair inverted.
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	ev := func(ty trace.EventType, entity, src pdu.EntityID, seq pdu.Seq) {
		rec.Record(trace.Event{Type: ty, Entity: entity,
			Msg: trace.MsgID{Src: src, Seq: seq}, Kind: pdu.KindData})
	}
	ev(trace.Send, 0, 0, 1)   // p sent by 0
	ev(trace.Accept, 1, 0, 1) // p accepted at 1
	ev(trace.Send, 1, 1, 1)   // q sent by 1, causally after p
	ev(trace.Accept, 0, 1, 1)
	ev(trace.Deliver, 0, 0, 1)
	ev(trace.Deliver, 0, 1, 1)
	ev(trace.Deliver, 1, 1, 1) // entity 1 delivers q before p: violation
	ev(trace.Deliver, 1, 0, 1)
	if err := rec.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(2, false, []string{path}); err == nil {
		t.Error("causal violation not detected")
	}
}
