// Command cobench regenerates every table and figure of the paper's
// evaluation. Each experiment prints one table in the shape of the
// corresponding paper artifact; EXPERIMENTS.md records one run against
// the paper's claims.
//
// Usage:
//
//	cobench                 # run everything
//	cobench -exp fig8       # one experiment
//	cobench -exp fig8 -quick
//
// Experiments: table1, services, fig8, acklat, buffer, pdulen, wire,
// syscalls, groups, retx, isis, msgs, ablate-window, ablate-defer,
// ablate-buffer, all.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cobcast/internal/experiments"
	"cobcast/internal/metrics"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (table1|services|fig8|acklat|buffer|pdulen|wire|syscalls|groups|retx|isis|msgs|ablate-window|ablate-defer|ablate-buffer|all)")
	quick := flag.Bool("quick", false, "smaller sweeps for a fast pass")
	flag.Parse()
	if err := run(*exp, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "cobench:", err)
		os.Exit(1)
	}
}

func run(exp string, quick bool) error {
	runners := map[string]func(bool) error{
		"services":      services,
		"table1":        table1,
		"fig8":          fig8,
		"acklat":        ackLatency,
		"buffer":        bufferOccupancy,
		"pdulen":        pduLength,
		"wire":          wireBytes,
		"syscalls":      syscallAmortization,
		"groups":        multiGroup,
		"retx":          retxComparison,
		"isis":          isisComparison,
		"msgs":          messageComplexity,
		"ablate-window": ablateWindow,
		"ablate-defer":  ablateDefer,
		"ablate-buffer": ablateBuffer,
	}
	if exp == "all" {
		order := []string{"table1", "services", "fig8", "acklat", "buffer", "pdulen",
			"wire", "syscalls", "groups", "retx", "isis", "msgs", "ablate-window", "ablate-defer", "ablate-buffer"}
		for _, name := range order {
			if err := runners[name](quick); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			fmt.Println()
		}
		return nil
	}
	r, ok := runners[exp]
	if !ok {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return r(quick)
}

func sizes(quick bool) []int {
	if quick {
		return []int{2, 4, 6}
	}
	return []int{2, 4, 6, 8, 10, 12, 16}
}

func services(bool) error {
	rows, err := experiments.ServiceComparison()
	if err != nil {
		return err
	}
	tbl := metrics.NewTable(
		"[§2.3] Service taxonomy on one reordered scenario: LO ⊂ CO ⊂ TO",
		"service", "local order", "causal order", "total order")
	yn := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, r := range rows {
		tbl.AddRow(r.Service, yn(r.Local), yn(r.Causal), yn(r.Total))
	}
	fmt.Print(tbl.String())
	return nil
}

func table1(bool) error {
	res, err := experiments.Table1()
	if err != nil {
		return err
	}
	fmt.Println("[E2] Example 4.1 / Figure 7 exchange")
	fmt.Print(res.Render())
	return nil
}

func fig8(quick bool) error {
	per := 8
	if quick {
		per = 4
	}
	rows, err := experiments.Fig8(sizes(quick), per)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable(
		"[E1] Figure 8: per-PDU processing time (Tco) and app-to-app delay (Tap) vs n",
		"n", "Tco (ns/PDU)", "Tap (wall)")
	for _, r := range rows {
		tbl.AddRow(r.N, fmt.Sprintf("%.0f", r.TcoNsPerPDU), r.TapMean.Round(time.Microsecond))
	}
	fmt.Print(tbl.String())
	fmt.Println("paper: both series grow O(n); Tap well above Tco (SPARC2 msec-scale).")
	return nil
}

func ackLatency(quick bool) error {
	rows, err := experiments.AckLatency(sizes(quick), 2*time.Millisecond)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable(
		"[E3] Acknowledgment latency after acceptance (paper: 2R)",
		"n", "R", "accept→deliver", "ratio to R")
	for _, r := range rows {
		tbl.AddRow(r.N, r.R, r.MeanAcceptToDeliver.Round(10*time.Microsecond),
			fmt.Sprintf("%.2f", r.RatioToR))
	}
	fmt.Print(tbl.String())
	return nil
}

func bufferOccupancy(quick bool) error {
	ws := []int{2, 8, 16}
	per := 12
	if quick {
		ws = []int{2, 8}
		per = 6
	}
	rows, err := experiments.BufferOccupancy(sizes(quick), ws, per)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable(
		"[E4] Peak buffered PDUs vs the paper's O(n) guideline (≈2nW)",
		"n", "W", "max resident", "2nW")
	for _, r := range rows {
		tbl.AddRow(r.N, r.W, r.MaxResident, r.Bound2nW)
	}
	fmt.Print(tbl.String())
	return nil
}

func pduLength(quick bool) error {
	rows := experiments.PDULength(sizes(quick))
	tbl := metrics.NewTable(
		"[E5] Encoded PDU length is O(n): +8 bytes per entity (ACK field)",
		"n", "empty PDU (bytes)", "64B payload (bytes)")
	for _, r := range rows {
		tbl.AddRow(r.N, r.HeaderBytes, r.Bytes64)
	}
	fmt.Print(tbl.String())
	return nil
}

func wireBytes(quick bool) error {
	ns := []int{8, 16, 64, 128}
	per := 8
	if quick {
		ns = []int{4, 8, 16}
		per = 4
	}
	rows, err := experiments.WireBytes(ns, per, 0)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable(
		"[E12] Wire bytes per DT PDU under the Fig. 8 workload: v1 fixed stamps vs v2 delta stamps",
		"n", "DT PDUs", "v1 (B/PDU)", "v2 (B/PDU)", "v2 full stamps", "saved")
	for _, r := range rows {
		tbl.AddRow(r.N, r.DTPDUs,
			fmt.Sprintf("%.1f", r.V1BytesPerDT), fmt.Sprintf("%.1f", r.V2BytesPerDT),
			r.V2FullStamps, fmt.Sprintf("%.1f%%", 100*r.Reduction))
	}
	fmt.Print(tbl.String())
	fmt.Println("v1 grows 8 B per entity (E5); v2's delta stamps stay near-flat, full")
	fmt.Println("stamps reappearing only at sync points (stream head, every 32nd SEQ).")
	return nil
}

func syscallAmortization(quick bool) error {
	ns := []int{2, 8, 16, 32}
	frames, batch := 2000, 16
	if quick {
		ns = []int{2, 8}
		frames = 400
	}
	rows, err := experiments.SyscallAmortization(ns, frames, batch)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable(
		"[E13] Syscall amortization: sendmmsg/recvmmsg vs per-datagram sendto/recvfrom",
		"n", "wire path", "PDUs", "send calls", "recv calls", "syscalls/PDU", "delivered kpps", "delivered")
	for _, r := range rows {
		path := "per-datagram"
		if r.Mmsg {
			path = "mmsg"
		}
		tbl.AddRow(r.N, path, r.PDUs, r.SendSyscalls, r.RecvSyscalls,
			fmt.Sprintf("%.3f", r.SyscallsPerPDU),
			fmt.Sprintf("%.0f", r.DeliveredKpps),
			fmt.Sprintf("%.0f%%", 100*r.DeliveredFrac))
	}
	fmt.Print(tbl.String())
	fmt.Println("per-datagram pays one syscall per datagram per peer; mmsg amortizes a")
	fmt.Println("4-frame flush toward all peers into one sendmmsg and drains a 32-slot")
	fmt.Println("ring per recvmmsg, so syscalls/PDU falls with both batch depth and n.")
	return nil
}

func multiGroup(quick bool) error {
	ns := []int{2, 4, 8}
	groupCounts := []int{1, 2, 4, 8}
	rates := []float64{0, 5000}
	msgs := 400
	if quick {
		ns = []int{2, 4}
		groupCounts = []int{1, 4}
		rates = []float64{0}
		msgs = 120
	}
	rows, err := experiments.MultiGroupSweep(ns, groupCounts, rates, msgs, 64)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable(
		"[E14] Multi-group sharded runtime: groups × n × rate on one transport",
		"n", "groups", "rate (msg/s)", "messages", "wall", "delivered kpps", "flow-blocked")
	for _, r := range rows {
		rate := "unthrottled"
		if r.RateMsgs > 0 {
			rate = fmt.Sprintf("%.0f", r.RateMsgs)
		}
		tbl.AddRow(r.N, r.Groups, rate, r.Messages, r.Wall.Round(time.Millisecond),
			fmt.Sprintf("%.1f", r.DeliveredKpps), r.FlowBlocked)
	}
	fmt.Print(tbl.String())
	fmt.Println("groups=1 is the classic single-group runtime (baseline); groups>1 runs")
	fmt.Println("independent ordered groups through the shard router over one transport.")
	fmt.Println("Independent sequence spaces relieve the per-group flow window, so adding")
	fmt.Println("groups sustains aggregate throughput where one group would flow-block.")
	return nil
}

func retxComparison(quick bool) error {
	losses := []float64{0.01, 0.02, 0.05, 0.10}
	msgs := 200
	if quick {
		losses = []float64{0.02, 0.10}
		msgs = 60
	}
	rows, err := experiments.RetxComparison(4, msgs, losses, 42)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable(
		"[E6] Selective retransmission (CO) vs go-back-n (TO protocol), n=4",
		"loss", "msgs", "CO retx", "CO PDUs", "GBN retx", "GBN slots")
	for _, r := range rows {
		tbl.AddRow(fmt.Sprintf("%.0f%%", r.Loss*100), r.Messages,
			r.CORetransmitted, r.COPDUsTotal, r.GBNRetransmissions, r.GBNTransmissions)
	}
	fmt.Print(tbl.String())
	fmt.Println("paper: CO retransmits only lost PDUs; go-back-n resends runs of delivered ones.")
	return nil
}

func isisComparison(quick bool) error {
	per := 8
	if quick {
		per = 4
	}
	rows, err := experiments.ISISCost(sizes(quick), per)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable(
		"[E7a] Ordering cost per PDU: CO sequence numbers vs CBCAST vector clocks",
		"n", "CO (ns/PDU, full pipeline)", "CBCAST (ns/msg, delivery test)")
	for _, r := range rows {
		tbl.AddRow(r.N, fmt.Sprintf("%.0f", r.CONsPerPDU), fmt.Sprintf("%.0f", r.CBCASTNsPerMsg))
	}
	fmt.Print(tbl.String())

	prim := experiments.OrderingPrimitiveCost(sizes(quick), 2_000_000)
	ptbl := metrics.NewTable(
		"[E7b] One causality decision: Theorem 4.1 seq test (O(1)) vs vector-clock compare (O(n))",
		"n", "seq test (ns)", "vclock compare (ns)")
	for _, r := range prim {
		ptbl.AddRow(r.N, fmt.Sprintf("%.1f", r.SeqTestNs), fmt.Sprintf("%.1f", r.VClockNs))
	}
	fmt.Println()
	fmt.Print(ptbl.String())

	res, err := experiments.ISISLossDemo()
	if err != nil {
		return err
	}
	fmt.Println("\n[E7c] Loss detection (m1 lost to one member, m2 follows):")
	fmt.Printf("  CO protocol: %d RET request(s), lossy member delivered %d/2 — loss detected and repaired\n",
		res.CORetRequests, res.CODelivered)
	fmt.Printf("  ISIS CBCAST: %d delivered, %d held forever — vector clocks cannot detect the loss\n",
		res.CBCASTDelivered, res.CBCASTHeld)
	return nil
}

func messageComplexity(quick bool) error {
	per := 10
	if quick {
		per = 5
	}
	rows, err := experiments.MessageComplexity(sizes(quick), per)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable(
		"[E8] Cluster-wide PDUs per application message (paper: O(n), not O(n²))",
		"n", "messages", "total PDUs", "PDUs/msg (saturated)", "PDUs for 1 solo msg", "n²")
	for _, r := range rows {
		tbl.AddRow(r.N, r.Messages, r.TotalPDUs,
			fmt.Sprintf("%.1f", r.PerMessage), r.SoloPDUs, r.NSquared)
	}
	fmt.Print(tbl.String())
	fmt.Println("solo column: one message in an idle cluster costs O(n) PDUs; saturated")
	fmt.Println("traffic amortizes confirmations via piggybacking (near-constant per msg).")
	return nil
}

func ablateWindow(quick bool) error {
	ws := []int{1, 2, 4, 8, 16, 32}
	per := 16
	if quick {
		ws = []int{1, 4, 16}
		per = 8
	}
	rows, err := experiments.AblationWindow(4, ws, per)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable(
		"[A1] Ablation: flow-control window W (n=4, saturating workload)",
		"W", "completion (virtual)", "Tap mean", "flow-blocked")
	for _, r := range rows {
		tbl.AddRow(r.W, r.CompletionVirtual.Round(time.Microsecond),
			r.TapMean.Round(time.Microsecond), r.FlowBlocked)
	}
	fmt.Print(tbl.String())
	return nil
}

func ablateDefer(quick bool) error {
	ivs := []time.Duration{time.Millisecond, 2 * time.Millisecond,
		5 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond}
	msgs := 20
	if quick {
		ivs = []time.Duration{time.Millisecond, 10 * time.Millisecond}
		msgs = 10
	}
	rows, err := experiments.AblationDeferredAck(4, ivs, msgs)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable(
		"[A2] Ablation: deferred-ack interval (n=4, interactive workload)",
		"interval", "total PDUs", "completion (virtual)")
	for _, r := range rows {
		tbl.AddRow(r.Interval, r.TotalPDUs, r.CompletionVirtual.Round(time.Millisecond))
	}
	fmt.Print(tbl.String())
	return nil
}

func ablateBuffer(quick bool) error {
	caps := []int{4, 16, 64, 1024}
	msgs := 60
	if quick {
		caps = []int{8, 1024}
		msgs = 30
	}
	rows, err := experiments.AblationBuffer(3, caps, msgs)
	if err != nil {
		return err
	}
	tbl := metrics.NewTable(
		"[A3] Ablation: receive-inbox capacity → buffer-overrun loss (real time, n=3)",
		"inbox", "overrun drops", "retransmitted", "wall time")
	for _, r := range rows {
		tbl.AddRow(r.InboxCap, r.Overruns, r.Retransmitted, r.Wall.Round(time.Millisecond))
	}
	fmt.Print(tbl.String())
	return nil
}
