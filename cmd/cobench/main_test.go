package main

import "testing"

func TestUnknownExperimentRejected(t *testing.T) {
	if err := run("no-such-experiment", true); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestQuickExperiments exercises the fast experiment runners end to end
// (output goes to stdout; correctness of the numbers is covered by the
// experiments package tests).
func TestQuickExperiments(t *testing.T) {
	for _, exp := range []string{"table1", "services", "pdulen", "acklat", "msgs"} {
		exp := exp
		t.Run(exp, func(t *testing.T) {
			if err := run(exp, true); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAllExperimentsQuick runs the complete quick sweep — every runner —
// to keep the harness end-to-end healthy. Skipped in -short.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	if err := run("all", true); err != nil {
		t.Fatal(err)
	}
}
