// Command cosoak is a saturation soak harness for the bounded-memory
// runtime mode: it drives a cluster flat-out against a per-engine memory
// budget, stalls one peer mid-run, scrapes its own /metrics endpoint
// periodically, and fails when any retention series (ledger bytes, log
// depths, process heap) trends upward after warm-up — the observable
// signature of a leak that the budget should have made impossible. It
// also fails unless the run produced positive evidence that the
// machinery engaged: producers blocked or shed, and the stalled peer was
// evicted on the pressure-shortened suspicion timer.
//
//	cosoak                      # CI-friendly 30s run, JSON report on stdout
//	cosoak -long                # multi-minute soak (3m)
//	cosoak -mode shed -n 6      # shed-mode saturation on a 6-node cluster
//	cosoak -dur 45s -out report.json
//
// Exit status: 0 when every trend is flat and all evidence checks pass,
// 1 on a soak failure, 2 on setup errors.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"cobcast"
	"cobcast/internal/experiments"
	"cobcast/obsv"
)

// The metric families the soak follows; names match internal/obsv.
const (
	mLedgerBytes = "cobcast_ledger_bytes"
	mBlocked     = "cobcast_backpressure_blocked_total"
	mShed        = "cobcast_backpressure_shed_total"
	mPressure    = "cobcast_pressure_evictions_total"
)

// depthFamilies together form the "log depth" series: every PDU-count
// gauge that bounded memory is supposed to keep bounded.
var depthFamilies = []string{
	"cobcast_rrl_depth", "cobcast_prl_depth", "cobcast_arl_depth",
	"cobcast_parked_pdus", "cobcast_data_resident",
	"cobcast_sendlog_pdus", "cobcast_pending_submits",
}

type runConfig struct {
	N           int           `json:"n"`
	Duration    time.Duration `json:"duration_ns"`
	BudgetBytes int64         `json:"budget_bytes"`
	Mode        string        `json:"mode"`
	PayloadSize int           `json:"payload_size"`
	Suspect     time.Duration `json:"suspect_ns"`
	StalledNode int           `json:"stalled_node"`
	StallAt     time.Duration `json:"stall_at_ns"`
	Tolerance   float64       `json:"tolerance"`
}

type finalCounters struct {
	Blocked          float64 `json:"blocked_total"`
	Shed             float64 `json:"shed_total"`
	PressureEvicted  float64 `json:"pressure_evictions_total"`
	Submitted        uint64  `json:"submitted"`
	ShedByProducers  uint64  `json:"shed_by_producers"`
	Delivered        uint64  `json:"delivered"`
	LedgerBytesFinal float64 `json:"ledger_bytes_final"`
}

type report struct {
	Config   runConfig                `json:"config"`
	Samples  []experiments.SoakSample `json:"samples"`
	Trends   []experiments.TrendRow   `json:"trends"`
	Final    finalCounters            `json:"final"`
	Failures []string                 `json:"failures,omitempty"`
	Pass     bool                     `json:"pass"`
	// On failure the report carries the evidence a postmortem needs:
	// every node's flight-recorder events and the stall analyzer's
	// verdicts on whatever was stuck when the run ended.
	Flight []obsv.NodeFlight `json:"flight,omitempty"`
	Stalls []obsv.Stall      `json:"stalls,omitempty"`
}

func main() {
	var (
		n         = flag.Int("n", 4, "cluster size (one node is stalled mid-run)")
		dur       = flag.Duration("dur", 30*time.Second, "soak duration")
		long      = flag.Bool("long", false, "multi-minute soak (3m unless -dur is set explicitly)")
		budget    = flag.Int64("budget", 256<<10, "per-engine memory budget, bytes")
		mode      = flag.String("mode", "block", "backpressure mode at budget: block or shed")
		size      = flag.Int("size", 256, "payload bytes")
		suspect   = flag.Duration("suspect", 2*time.Second, "suspicion timeout (pressure shortens it to a quarter)")
		tolerance = flag.Float64("tolerance", 1.25, "max ratio of post-warm-up half-means before a series counts as upward")
		out       = flag.String("out", "", "write the JSON report here instead of stdout")
	)
	flag.Parse()
	durSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "dur" {
			durSet = true
		}
	})
	if *long && !durSet {
		*dur = 3 * time.Minute
	}
	if *n < 3 {
		fmt.Fprintln(os.Stderr, "cosoak: -n must be >= 3 (two survivors plus the stalled peer)")
		os.Exit(2)
	}
	var bp cobcast.BackpressureMode
	switch *mode {
	case "block":
		bp = cobcast.BackpressureBlock
	case "shed":
		bp = cobcast.BackpressureShed
	default:
		fmt.Fprintln(os.Stderr, "cosoak: -mode must be block or shed")
		os.Exit(2)
	}
	rep, err := soak(*n, *dur, *budget, bp, *mode, *size, *suspect, *tolerance)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosoak:", err)
		os.Exit(2)
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "cosoak:", err)
		os.Exit(2)
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "cosoak:", err)
			os.Exit(2)
		}
	} else {
		os.Stdout.Write(enc)
	}
	summarize(os.Stderr, rep)
	if !rep.Pass {
		os.Exit(1)
	}
}

func soak(n int, dur time.Duration, budget int64, bp cobcast.BackpressureMode, modeName string, size int, suspect time.Duration, tolerance float64) (*report, error) {
	cfg := runConfig{
		N: n, Duration: dur, BudgetBytes: budget, Mode: modeName,
		PayloadSize: size, Suspect: suspect, StalledNode: n - 1,
		StallAt: dur / 6, Tolerance: tolerance,
	}
	reg := obsv.NewRegistry()
	cluster, err := cobcast.NewCluster(n,
		cobcast.WithMemoryBudget(budget),
		cobcast.WithBackpressure(bp),
		cobcast.WithSuspectTimeout(suspect),
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithRetransmitTimeout(5*time.Millisecond),
		cobcast.WithObservability(reg),
	)
	if err != nil {
		return nil, err
	}
	defer cluster.Close()
	srv, err := obsv.Serve(reg, "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("obsv endpoint: %w", err)
	}
	defer srv.Close()
	url := "http://" + srv.Addr() + "/metrics"

	// SIGQUIT dumps the live flight rings and stall verdicts to stderr
	// without killing the run — kill -QUIT a wedged soak to see exactly
	// which message is stuck where and on whom.
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	defer signal.Stop(quit)
	go func() {
		for range quit {
			fmt.Fprintln(os.Stderr, "cosoak: SIGQUIT flight dump:")
			_ = reg.WriteTracez(os.Stderr)
			for _, st := range reg.StallReport() {
				fmt.Fprintf(os.Stderr, "  stall: node %s %s [%s] %s: %s (waiting on %v)\n",
					st.Node, st.Msg, st.Kind, st.Stage, st.Reason, st.WaitingOn)
			}
		}
	}()

	// Drain every node's deliveries for the whole run, the stalled one
	// included — stalling is the network isolating it, not a slow
	// consumer on its channel.
	var delivered atomic.Uint64
	var drains sync.WaitGroup
	for i := 0; i < n; i++ {
		drains.Add(1)
		go func(i int) {
			defer drains.Done()
			for range cluster.Node(i).Deliveries() {
				delivered.Add(1)
			}
		}(i)
	}

	// Unthrottled producers on every survivor: saturation is the point,
	// so the only pacing is the budget itself (block) or a short retry
	// breather (shed).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var submitted, shedByProducers atomic.Uint64
	payload := make([]byte, size)
	var producers sync.WaitGroup
	for i := 0; i < n-1; i++ {
		producers.Add(1)
		go func(i int) {
			defer producers.Done()
			node := cluster.Node(i)
			for {
				err := node.BroadcastContext(ctx, payload)
				switch {
				case err == nil:
					submitted.Add(1)
				case errors.Is(err, cobcast.ErrOverBudget):
					shedByProducers.Add(1)
					select {
					case <-time.After(200 * time.Microsecond):
					case <-ctx.Done():
						return
					}
				default:
					return // context cancelled or node closed
				}
			}
		}(i)
	}

	stallTimer := time.AfterFunc(cfg.StallAt, func() { cluster.Isolate(cfg.StalledNode) })
	defer stallTimer.Stop()

	// Sample loop: scrape /metrics plus the process heap until the
	// deadline. Sampling interval scales with the run so a -long soak
	// doesn't produce thousands of report rows.
	interval := dur / 60
	if interval < 200*time.Millisecond {
		interval = 200 * time.Millisecond
	}
	if interval > 2*time.Second {
		interval = 2 * time.Second
	}
	families := append([]string{mLedgerBytes, mBlocked, mShed, mPressure}, depthFamilies...)
	var samples []experiments.SoakSample
	start := time.Now()
	deadline := time.NewTimer(dur)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
sampling:
	for {
		select {
		case <-deadline.C:
			break sampling
		case <-ticker.C:
			got, err := experiments.SumMetrics(url, families...)
			if err != nil {
				return nil, err
			}
			// obsv.LiveHeap forces a collection so the sample approximates
			// live bytes; without it the series measures GC hysteresis
			// (floating garbage from millions of submits), not retention.
			// Same measure the /metrics heap gauges complement un-forced.
			s := experiments.SoakSample{
				At:              time.Since(start),
				LedgerBytes:     got[mLedgerBytes],
				HeapInuse:       float64(obsv.LiveHeap()),
				Blocked:         got[mBlocked],
				Shed:            got[mShed],
				PressureEvicted: got[mPressure],
			}
			for _, f := range depthFamilies {
				s.LogDepth += got[f]
			}
			if n > 0 {
				s.DeliveredPerNode = float64(delivered.Load()) / float64(n)
			}
			samples = append(samples, s)
		}
	}
	cancel()
	producers.Wait()

	final, err := experiments.SumMetrics(url, families...)
	if err != nil {
		return nil, err
	}
	rep := &report{
		Config:  cfg,
		Samples: samples,
		Final: finalCounters{
			Blocked:          final[mBlocked],
			Shed:             final[mShed],
			PressureEvicted:  final[mPressure],
			Submitted:        submitted.Load(),
			ShedByProducers:  shedByProducers.Load(),
			Delivered:        delivered.Load(),
			LedgerBytesFinal: final[mLedgerBytes],
		},
	}
	rep.Trends, rep.Failures = verdict(cfg, samples, rep.Final, budget, n)
	rep.Pass = len(rep.Failures) == 0
	if !rep.Pass {
		// Taken before Close so the stall providers still reach live
		// protocol loops.
		rep.Flight = reg.Tracez().Nodes
		rep.Stalls = reg.StallReport()
	}

	cluster.Close() // closes Deliveries channels, letting the drains exit
	drains.Wait()
	return rep, nil
}

// verdict applies the soak's pass criteria: flat post-warm-up retention
// series and positive evidence that backpressure and pressure eviction
// actually engaged.
func verdict(cfg runConfig, samples []experiments.SoakSample, final finalCounters, budget int64, n int) ([]experiments.TrendRow, []string) {
	var fails []string
	// Discard the warm-up: everything before a third of the run, which
	// covers cluster spin-up, the stall itself, and the eviction step.
	warm := cfg.Duration / 3
	var ledger, depth, heap []float64
	for _, s := range samples {
		if s.At < warm {
			continue
		}
		ledger = append(ledger, s.LedgerBytes)
		depth = append(depth, s.LogDepth)
		heap = append(heap, s.HeapInuse)
	}
	if len(ledger) < 4 {
		fails = append(fails, fmt.Sprintf("only %d post-warm-up samples; run too short to judge", len(ledger)))
	}
	// Floors keep sampling noise around small means from flagging: a
	// quarter-budget of ledger drift, a handful of PDUs, a couple MiB of
	// heap jitter are not leaks.
	trends := []experiments.TrendRow{
		experiments.FlatTrend("ledger_bytes", ledger, cfg.Tolerance, float64(budget)/4),
		experiments.FlatTrend("log_depth", depth, cfg.Tolerance, 64),
		experiments.FlatTrend("heap_inuse", heap, cfg.Tolerance, float64(4<<20)),
	}
	for _, tr := range trends {
		if tr.Upward {
			fails = append(fails, fmt.Sprintf("%s trends upward post-warm-up: %.0f -> %.0f (ratio %.2f > %.2f)",
				tr.Name, tr.FirstMean, tr.SecondMean, tr.Ratio, cfg.Tolerance))
		}
	}
	if final.Blocked+final.Shed == 0 {
		fails = append(fails, "budget never engaged: no producer blocked or shed")
	}
	if cfg.Mode == "block" && final.Blocked == 0 {
		fails = append(fails, "block mode ran but the blocked counter stayed zero")
	}
	if cfg.Mode == "shed" && final.Shed == 0 {
		fails = append(fails, "shed mode ran but the shed counter stayed zero")
	}
	if final.PressureEvicted == 0 {
		fails = append(fails, "stalled peer was never evicted on the pressure-shortened timer")
	}
	if final.Delivered == 0 || final.Submitted == 0 {
		fails = append(fails, "run was vacuous: nothing submitted or delivered")
	}
	return trends, fails
}

func summarize(w *os.File, rep *report) {
	status := "PASS"
	if !rep.Pass {
		status = "FAIL"
	}
	fmt.Fprintf(w, "cosoak %s: n=%d %s mode=%s budget=%d stalled=node%d\n",
		status, rep.Config.N, rep.Config.Duration, rep.Config.Mode,
		rep.Config.BudgetBytes, rep.Config.StalledNode)
	fmt.Fprintf(w, "  submitted=%d delivered=%d blocked=%.0f shed=%.0f pressure-evictions=%.0f ledger-final=%.0fB\n",
		rep.Final.Submitted, rep.Final.Delivered, rep.Final.Blocked,
		rep.Final.Shed, rep.Final.PressureEvicted, rep.Final.LedgerBytesFinal)
	for _, tr := range rep.Trends {
		fmt.Fprintf(w, "  trend %-12s first-half=%.0f second-half=%.0f ratio=%.2f\n",
			tr.Name, tr.FirstMean, tr.SecondMean, tr.Ratio)
	}
	for _, f := range rep.Failures {
		fmt.Fprintf(w, "  FAIL: %s\n", f)
	}
	for _, st := range rep.Stalls {
		fmt.Fprintf(w, "  stall: node %s %s [%s] %s: %s (waiting on %v)\n",
			st.Node, st.Msg, st.Kind, st.Stage, st.Reason, st.WaitingOn)
	}
}
