// Package cobcast is a causally ordering broadcast library: a from-scratch
// reproduction of the CO protocol of Nakamura & Takizawa, "Causally
// Ordering Broadcast Protocol" (ICDCS 1994).
//
// A cluster of n nodes broadcasts messages to one another over a lossy,
// high-speed "multi-channel" network. Every node delivers every message,
// exactly once, in an order that respects causality: if message p was
// (transitively) known to the sender of q when q was sent, every node
// delivers p before q. Unlike vector-clock schemes (ISIS CBCAST), the
// protocol orders messages with plain per-source sequence numbers and the
// receipt-confirmation vectors piggybacked on every PDU, which also lets
// it detect and selectively retransmit lost PDUs — no reliable transport
// is assumed underneath.
//
// # Quick start
//
//	cluster, err := cobcast.NewCluster(3)
//	if err != nil { ... }
//	defer cluster.Close()
//
//	go func() {
//		for msg := range cluster.Node(0).Deliveries() {
//			fmt.Printf("from %d: %s\n", msg.Src, msg.Data)
//		}
//	}()
//	cluster.Node(1).Broadcast([]byte("hello, group"))
//
// NewCluster wires the nodes through an in-process network whose loss
// rate, latency and receive-buffer size are configurable — ideal for
// tests and simulation. For real deployments, create each node with
// NewNode and a Transport (see NewUDPTransport) on its own machine.
package cobcast

import (
	"time"

	"cobcast/internal/core"
	"cobcast/internal/flight"
	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
)

// Message is one causally ordered delivery.
type Message struct {
	// Group is the ordered group the message was broadcast on
	// (DefaultGroup for Node.Broadcast). Each group is an independent
	// sequence space: ordering guarantees hold within a group, never
	// across groups.
	Group GroupID
	// Src is the node that broadcast the message.
	Src int
	// Seq is the per-source sequence number (starting at 1). Sequence
	// numbers are shared with the protocol's internal confirmation PDUs,
	// so consecutive application messages from one node may have gaps.
	Seq uint64
	// Data is the application payload.
	Data []byte
	// LTime is the message's cluster-wide logical time when the cluster
	// runs in total-order mode (WithTotalOrder); 0 otherwise. Deliveries
	// are then sorted by (LTime, Src, Seq), identically at every node.
	LTime uint64
}

// Stats is a snapshot of one node's protocol counters. See the field
// descriptions on the corresponding experiment metrics in EXPERIMENTS.md.
type Stats struct {
	// DataSent, SyncSent, AckOnlySent, RetSent count broadcast PDUs by
	// kind: application data, deferred-confirmation syncs, unsequenced
	// control acks, and retransmission requests.
	DataSent    uint64
	SyncSent    uint64
	AckOnlySent uint64
	RetSent     uint64
	// DataRecv, SyncRecv, AckOnlyRecv, RetRecv count valid received
	// PDUs by kind.
	DataRecv    uint64
	SyncRecv    uint64
	AckOnlyRecv uint64
	RetRecv     uint64
	// Accepted counts in-order PDU acceptances; Duplicates and Parked
	// count duplicate and out-of-order arrivals.
	Accepted   uint64
	Duplicates uint64
	Parked     uint64
	// F1Detections and F2Detections count loss detections by failure
	// condition: a sequence gap revealed by a sequenced PDU (F1) versus
	// by an acknowledgment vector (F2).
	F1Detections uint64
	F2Detections uint64
	// Retransmitted counts own PDUs rebroadcast on request.
	Retransmitted uint64
	// Preacked, Acked, Committed and Delivered count pipeline progress.
	Preacked  uint64
	Acked     uint64
	Committed uint64
	Delivered uint64
	// CPIDisplaced counts causality-preserved insertions that had to
	// reorder (not tail appends); CPIDisplacement sums the entries each
	// one bypassed.
	CPIDisplaced    uint64
	CPIDisplacement uint64
	// DeferredConfirms counts confirmations emitted by the deferred
	// confirmation timer/all-heard rule.
	DeferredConfirms uint64
	// FlowBlocked counts broadcasts that waited for the flow-control
	// window.
	FlowBlocked uint64
	// MaxResident is the peak number of PDUs buffered by the node.
	MaxResident int
	// InvalidPDUs counts rejected datagrams.
	InvalidPDUs uint64
	// Evicted counts peers removed from this node's confirmation quorum;
	// AutoSuspected counts those removed by the suspect timeout, and
	// PressureEvicted the subset evicted early because the memory ledger
	// was under pressure (WithMemoryBudget + WithSuspectTimeout).
	Evicted         uint64
	AutoSuspected   uint64
	PressureEvicted uint64
}

func fromCoreStats(s core.Stats) Stats {
	return Stats{
		DataSent:         s.DataSent,
		SyncSent:         s.SyncSent,
		AckOnlySent:      s.AckOnlySent,
		RetSent:          s.RetSent,
		DataRecv:         s.DataRecv,
		SyncRecv:         s.SyncRecv,
		AckOnlyRecv:      s.AckOnlyRecv,
		RetRecv:          s.RetRecv,
		Accepted:         s.Accepted,
		Duplicates:       s.Duplicates,
		Parked:           s.Parked,
		F1Detections:     s.F1Detections,
		F2Detections:     s.F2Detections,
		Retransmitted:    s.Retransmitted,
		Preacked:         s.Preacked,
		Acked:            s.Acked,
		Committed:        s.Committed,
		Delivered:        s.Delivered,
		CPIDisplaced:     s.CPIDisplaced,
		CPIDisplacement:  s.CPIDisplacement,
		DeferredConfirms: s.DeferredConfirms,
		FlowBlocked:      s.FlowBlocked,
		MaxResident:      s.MaxResident,
		InvalidPDUs:      s.InvalidPDUs,
		Evicted:          s.Evicted,
		AutoSuspected:    s.AutoSuspected,
		PressureEvicted:  s.PressureEvicted,
	}
}

// options collects configuration shared by clusters and nodes.
type options struct {
	clusterID           uint32
	window              int
	bufferUnits         uint32
	unitsPerPDU         uint32
	deferredAckInterval time.Duration
	retransmitTimeout   time.Duration
	tickInterval        time.Duration
	totalOrder          bool
	suspectAfter        time.Duration
	registry            *obsv.Registry
	wireVersion         int
	stampInterval       int
	groupShards         int
	maxGroups           int
	memBudgetBytes      int64
	backpressure        BackpressureMode
	flightEvents        int

	// In-memory network knobs (NewCluster only).
	netDelay    time.Duration
	netLossRate float64
	netSeed     int64
	netInboxCap int
}

func defaultOptions() options {
	return options{
		window:      core.DefaultWindow,
		bufferUnits: core.DefaultBufferUnits,
		unitsPerPDU: core.DefaultUnitsPerPDU,
		netSeed:     1,
		netInboxCap: 1024,
	}
}

func (o options) coreConfig(id, n int) core.Config {
	return core.Config{
		ClusterID:           o.clusterID,
		ID:                  pdu.EntityID(id),
		N:                   n,
		Window:              pdu.Seq(o.window),
		BufferUnits:         o.bufferUnits,
		UnitsPerPDU:         o.unitsPerPDU,
		DeferredAckInterval: o.deferredAckInterval,
		RetransmitTimeout:   o.retransmitTimeout,
		TotalOrder:          o.totalOrder,
		SuspectAfter:        o.suspectAfter,
		// Under memory pressure a stalled peer is suspected on a quarter
		// of the configured timeout (no-op without a ledger or with
		// suspicion disabled).
		PressureSuspectAfter: o.suspectAfter / 4,
	}
}

// newLedger builds one engine's memory ledger, or nil when no budget is
// configured. Each engine gets its own ledger (the engine is the single
// writer), so per-group budgets compose with WithGroupShards.
func (o options) newLedger() *core.Ledger {
	if o.memBudgetBytes <= 0 {
		return nil
	}
	return core.NewLedger(o.memBudgetBytes)
}

// newFlightRing builds one engine's flight recorder, or nil when
// recording is off. The recorder rides on observability: it exists
// whenever a registry is attached (WithFlightRecorder resizes or
// disables it), because /tracez is how the ring leaves the process.
func (o options) newFlightRing() *flight.Ring {
	if o.registry == nil || o.flightEvents < 0 {
		return nil
	}
	return flight.NewRing(o.flightEvents)
}

func (o options) tick() time.Duration {
	if o.tickInterval > 0 {
		return o.tickInterval
	}
	if o.deferredAckInterval > 0 {
		return o.deferredAckInterval
	}
	return core.DefaultDeferredAckInterval
}

// Option configures a Cluster or Node.
type Option interface {
	apply(*options)
}

type optionFunc func(*options)

func (f optionFunc) apply(o *options) { f(o) }

// WithClusterID sets the cluster identifier stamped on every PDU; nodes
// discard PDUs from other clusters. The default is 0.
func WithClusterID(id uint32) Option {
	return optionFunc(func(o *options) { o.clusterID = id })
}

// WithWindow sets the flow-control window W: the maximum number of a
// node's PDUs that may be outstanding beyond the cluster-wide minimum
// acknowledgment. The default is 16.
func WithWindow(w int) Option {
	return optionFunc(func(o *options) { o.window = w })
}

// WithBufferUnits sets the receive-buffer capacity advertised in the BUF
// field and used by the flow condition. The default is 4096.
func WithBufferUnits(units uint32) Option {
	return optionFunc(func(o *options) { o.bufferUnits = units })
}

// WithUnitsPerPDU sets the paper's H constant: buffer units one PDU
// occupies. The default is 1.
func WithUnitsPerPDU(h uint32) Option {
	return optionFunc(func(o *options) { o.unitsPerPDU = h })
}

// WithDeferredAckInterval sets how often an otherwise idle node emits
// receipt confirmations. The default is 5ms.
func WithDeferredAckInterval(d time.Duration) Option {
	return optionFunc(func(o *options) { o.deferredAckInterval = d })
}

// WithRetransmitTimeout sets the spacing of retransmission requests and
// rebroadcasts. The default is 20ms.
func WithRetransmitTimeout(d time.Duration) Option {
	return optionFunc(func(o *options) { o.retransmitTimeout = d })
}

// WithTickInterval sets the node's internal timer resolution. The default
// is the deferred-ack interval.
func WithTickInterval(d time.Duration) Option {
	return optionFunc(func(o *options) { o.tickInterval = d })
}

// WithTotalOrder upgrades the service from causal order (CO) to total
// order (TO): every node delivers the identical message sequence, still
// causality-consistent, at the cost of extra delivery latency (a message
// is held until every node's confirmations pass it). Message.LTime
// carries the cluster-wide logical time.
func WithTotalOrder() Option {
	return optionFunc(func(o *options) { o.totalOrder = true })
}

// WithSuspectTimeout enables automatic eviction: a node that has owed the
// cluster confirmations for d without hearing anything from a peer evicts
// that peer from its confirmation quorum, so one crashed node cannot
// freeze delivery forever. Idle peers are never suspected. See Node.Evict
// for the extension's limitations.
func WithSuspectTimeout(d time.Duration) Option {
	return optionFunc(func(o *options) { o.suspectAfter = d })
}

// WithWireCodec selects the PDU wire encoding a node created with
// NewNode sends: 1 is the fixed-width v1 codec, 2 (the default) the
// varint + delta-ACK-stamp v2 codec, whose steady-state datagrams stay
// near-constant in cluster size instead of growing O(n) with the
// acknowledgment vector. The choice is send-side only — every node
// decodes both versions — so a cluster may mix codecs and roll the
// version one node at a time. NewNode rejects other values. In-process
// clusters (NewCluster) move decoded PDUs and take no codec.
func WithWireCodec(version int) Option {
	return optionFunc(func(o *options) { o.wireVersion = version })
}

// WithStampInterval sets the v2 wire codec's full-stamp sync interval
// K: every PDU whose sequence number is a multiple of K carries the
// full acknowledgment vector even when a delta would be smaller,
// bounding how long a receiver that missed a delta's reference PDU
// stays desynchronized (dropping deltas as loss) before it re-anchors.
// K = 1 full-stamps every PDU, degenerating v2 to v1-equivalent
// stamps; k <= 0 selects the default (32). Only meaningful with wire
// codec v2.
func WithStampInterval(k int) Option {
	return optionFunc(func(o *options) { o.stampInterval = k })
}

// WithObservability attaches live instrumentation: every node created
// with this option publishes its protocol counters, latency histograms,
// link flush metrics and state snapshots into reg (NewCluster also
// publishes the in-memory network counters; NewNode the transport's,
// when it exposes them). Construct the registry with the public
// cobcast/obsv package, serve it over HTTP with obsv.Serve, or render
// it directly with Registry.WriteMetrics/WriteStatez. Without this
// option the engine runs instrumentation-free.
func WithObservability(reg *obsv.Registry) Option {
	return optionFunc(func(o *options) { o.registry = reg })
}

// WithFlightRecorder sizes the per-engine flight recorder: a bounded,
// lock-free ring of protocol lifecycle events (submit, sequence, wire
// in/out, accept, commit, deliver, retransmission, park, backpressure,
// eviction) served as JSON on the observability endpoint's /tracez and
// assembled into cross-node span traces by `cotrace live`. The ring
// exists whenever WithObservability is attached; events sets its
// capacity (rounded up to a power of two; 0 selects the default 4096),
// and events < 0 disables recording entirely, reducing every record
// site to one untaken branch.
func WithFlightRecorder(events int) Option {
	return optionFunc(func(o *options) {
		if events == 0 {
			events = flight.DefaultEvents
		}
		o.flightEvents = events
	})
}

// WithGroupShards sets how many shard goroutines the multi-group
// runtime runs; each group is hash-assigned to one shard, which owns
// its engine (the single-writer invariant, per group). n <= 0 (the
// default) derives the count from GOMAXPROCS. The default group is
// unaffected — it stays on the node's own protocol loop.
func WithGroupShards(n int) Option {
	return optionFunc(func(o *options) { o.groupShards = n })
}

// WithMaxGroups bounds how many groups a node will lazily instantiate
// (each costs O(cluster size) state plus logs). Submits past the bound
// fail; inbound frames for groups past it are dropped and counted as
// unknown-group loss. n <= 0 selects the default (1024).
func WithMaxGroups(n int) Option {
	return optionFunc(func(o *options) { o.maxGroups = n })
}

// BackpressureMode selects what a producer experiences when the memory
// budget (WithMemoryBudget) is exhausted.
type BackpressureMode int

const (
	// BackpressureBlock (the default) blocks Broadcast until the logs
	// drain below budget; BroadcastContext unblocks on context
	// cancellation.
	BackpressureBlock BackpressureMode = iota
	// BackpressureShed fails Broadcast immediately with ErrOverBudget,
	// leaving the caller to retry, drop, or divert. Shedding happens
	// strictly before sequencing, so it never perturbs protocol state.
	BackpressureShed
)

// WithMemoryBudget puts a hard per-engine byte budget on the node's
// protocol logs (parked repairs, RRL/PRL/ARL, the send log, queued
// submissions). Once retained bytes reach the budget, Broadcast blocks
// or sheds per WithBackpressure until the logs drain; PDUs already
// sequenced are never dropped, so ordering guarantees are unaffected.
// Each group under WithGroupShards gets its own budget of this size.
// Combined with WithSuspectTimeout, memory pressure (≥ half budget)
// shortens the suspicion timer to a quarter, so a stalled peer is
// evicted before it pins producers forever. bytes <= 0 disables the
// budget (the default): accounting is then entirely off the hot path.
func WithMemoryBudget(bytes int64) Option {
	return optionFunc(func(o *options) { o.memBudgetBytes = bytes })
}

// WithBackpressure selects the producer-side behaviour at an exhausted
// memory budget. The default is BackpressureBlock. Meaningless without
// WithMemoryBudget.
func WithBackpressure(mode BackpressureMode) Option {
	return optionFunc(func(o *options) { o.backpressure = mode })
}

// WithNetworkDelay sets the in-memory network's uniform propagation delay
// (NewCluster only).
func WithNetworkDelay(d time.Duration) Option {
	return optionFunc(func(o *options) { o.netDelay = d })
}

// WithLossRate makes the in-memory network drop each transmission with
// probability p (NewCluster only) — useful for demonstrating recovery.
func WithLossRate(p float64) Option {
	return optionFunc(func(o *options) { o.netLossRate = p })
}

// WithSeed seeds the in-memory network's loss randomness (NewCluster
// only).
func WithSeed(s int64) Option {
	return optionFunc(func(o *options) { o.netSeed = s })
}

// WithInboxCapacity bounds each node's receive buffer on the in-memory
// network; overflow is dropped, modelling the paper's buffer-overrun loss
// (NewCluster only). The default is 1024.
func WithInboxCapacity(n int) Option {
	return optionFunc(func(o *options) { o.netInboxCap = n })
}
