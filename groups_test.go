package cobcast_test

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"cobcast"
	"cobcast/internal/obsv/promtext"
	"cobcast/obsv"
)

// drainGroup collects want messages from one group port.
func drainGroup(t *testing.T, p *cobcast.GroupPort, want int) []cobcast.Message {
	t.Helper()
	var got []cobcast.Message
	deadline := time.After(30 * time.Second)
	for len(got) < want {
		select {
		case m, ok := <-p.Deliveries():
			if !ok {
				t.Fatalf("group %d deliveries closed at %d/%d", p.ID(), len(got), want)
			}
			got = append(got, m)
		case <-deadline:
			t.Fatalf("group %d delivered %d/%d", p.ID(), len(got), want)
		}
	}
	return got
}

// checkGroupStream asserts per-source ordering and the group tag on one
// node's deliveries for one group.
func checkGroupStream(t *testing.T, node int, g cobcast.GroupID, got []cobcast.Message) {
	t.Helper()
	last := map[int]uint64{}
	for _, m := range got {
		if m.Group != g {
			t.Errorf("node %d: message tagged group %d on group %d's stream", node, m.Group, g)
		}
		if prev, ok := last[m.Src]; ok && m.Seq <= prev {
			t.Errorf("node %d group %d: source %d out of order", node, g, m.Src)
		}
		last[m.Src] = m.Seq
	}
}

func TestGroupNameDerivation(t *testing.T) {
	a, b := cobcast.Group("orders"), cobcast.Group("payments")
	if a != cobcast.Group("orders") {
		t.Error("Group is not deterministic")
	}
	if a == b {
		t.Error("distinct names collided (for these two, they should not)")
	}
	if a == cobcast.DefaultGroup || b == cobcast.DefaultGroup {
		t.Error("named group mapped to the default group")
	}
	if cobcast.Group("") == cobcast.DefaultGroup {
		t.Error("empty name mapped to the default group")
	}
}

// TestClusterMultiGroupConverges runs two named groups plus the default
// group over one in-process cluster: every node must deliver every
// group's full stream, per-source ordered, with the right group tags —
// and the per-group streams must not bleed into each other or into the
// default Deliveries channel.
func TestClusterMultiGroupConverges(t *testing.T) {
	const nodes, perGroup = 3, 12
	c, err := cobcast.NewCluster(nodes,
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithGroupShards(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ga, gb := cobcast.Group("alpha"), cobcast.Group("beta")
	var wg sync.WaitGroup
	results := make([][]cobcast.Message, nodes*3)
	for i := 0; i < nodes; i++ {
		for j, g := range []cobcast.GroupID{ga, gb, cobcast.DefaultGroup} {
			p := c.Group(i, g)
			slot := i*3 + j
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[slot] = drainGroup(t, p, perGroup)
			}()
		}
	}
	for i := 0; i < perGroup; i++ {
		from := i % nodes
		if err := c.Group(from, ga).Broadcast([]byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := c.Group(from, gb).Broadcast([]byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := c.Broadcast(from, []byte(fmt.Sprintf("d%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	for i := 0; i < nodes; i++ {
		for j, g := range []cobcast.GroupID{ga, gb, cobcast.DefaultGroup} {
			got := results[i*3+j]
			checkGroupStream(t, i, g, got)
			prefix := []byte{'a', 'b', 'd'}[j]
			for _, m := range got {
				if len(m.Data) == 0 || m.Data[0] != prefix {
					t.Errorf("node %d group %d: foreign payload %q", i, g, m.Data)
				}
			}
		}
	}

	if _, ok := c.Group(0, ga).Stats(); !ok {
		t.Error("group with traffic reported no stats")
	}
	if s, ok := c.Group(0, cobcast.DefaultGroup).Stats(); !ok || s.Delivered == 0 {
		t.Errorf("default group stats = %+v, %v", s, ok)
	}
}

// TestDefaultGroupPortDelegates pins the byte-compat contract: the
// DefaultGroup port is the node's own API — same delivery channel, same
// Broadcast path — so wrapping existing code in Group(DefaultGroup)
// changes nothing.
func TestDefaultGroupPortDelegates(t *testing.T) {
	c, err := cobcast.NewCluster(2, cobcast.WithDeferredAckInterval(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	p := c.Group(0, cobcast.DefaultGroup)
	if p.Deliveries() != c.Node(0).Deliveries() {
		t.Fatal("default port has its own delivery channel")
	}
	if p != c.Group(0, cobcast.DefaultGroup) {
		t.Fatal("Group is not idempotent")
	}
	if err := p.Broadcast([]byte("via-port")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-c.Node(1).Deliveries():
		if string(m.Data) != "via-port" || m.Group != cobcast.DefaultGroup {
			t.Errorf("got %q group %d", m.Data, m.Group)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("default-group message not delivered")
	}
}

func TestMaxGroupsBound(t *testing.T) {
	c, err := cobcast.NewCluster(2,
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithMaxGroups(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Group(0, 1).Broadcast([]byte("g1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Group(0, 2).Broadcast([]byte("g2")); err != nil {
		t.Fatal(err)
	}
	err = c.Group(0, 3).Broadcast([]byte("g3"))
	if !errors.Is(err, cobcast.ErrTooManyGroups) {
		t.Fatalf("third group error = %v, want ErrTooManyGroups", err)
	}
	// The default group rides outside the bound.
	if err := c.Broadcast(0, []byte("default-still-fine")); err != nil {
		t.Fatal(err)
	}
}

// TestUDPMultiGroupConverges is the wire-path twin of the cluster test:
// group frames ride v3 batch frames over UDP loopback, interleaved with
// default-group v2 traffic in the same socket stream.
func TestUDPMultiGroupConverges(t *testing.T) {
	const n, perGroup = 3, 10
	nodes := newUDPCluster(t, n, cobcast.WithDeferredAckInterval(2*time.Millisecond))
	ga, gb := cobcast.Group("udp-a"), cobcast.Group("udp-b")

	var wg sync.WaitGroup
	results := make([][]cobcast.Message, n*3)
	for i, nd := range nodes {
		for j, g := range []cobcast.GroupID{ga, gb, cobcast.DefaultGroup} {
			p := nd.Group(g)
			slot := i*3 + j
			wg.Add(1)
			go func() {
				defer wg.Done()
				results[slot] = drainGroup(t, p, perGroup)
			}()
		}
	}
	for i := 0; i < perGroup; i++ {
		nd := nodes[i%n]
		if err := nd.Group(ga).Broadcast([]byte(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := nd.Group(gb).Broadcast([]byte(fmt.Sprintf("b%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := nd.Broadcast([]byte(fmt.Sprintf("d%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		for j, g := range []cobcast.GroupID{ga, gb, cobcast.DefaultGroup} {
			checkGroupStream(t, i, g, results[i*3+j])
		}
	}
}

// TestUDPUnknownGroupCounted injects a hand-built v3 frame whose group
// ID is outside the 28-bit range straight into a node's socket. The node
// must drop it whole, count it on the unknown-group counter, and keep
// working.
func TestUDPUnknownGroupCounted(t *testing.T) {
	reg := obsv.NewRegistry()
	tr0, err := cobcast.NewUDPTransport("127.0.0.1:0", []string{"127.0.0.1:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	addr0 := tr0.LocalAddr()
	if err := tr0.Close(); err != nil {
		t.Fatal(err)
	}
	tr1, err := cobcast.NewUDPTransport("127.0.0.1:0", []string{addr0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	addr1 := tr1.LocalAddr()
	tr0, err = cobcast.NewUDPTransport(addr0, []string{addr1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := []cobcast.Option{
		cobcast.WithDeferredAckInterval(2 * time.Millisecond),
		cobcast.WithObservability(reg),
	}
	var nodes [2]*cobcast.Node
	for i, tr := range []cobcast.Transport{tr0, tr1} {
		nd, err := cobcast.NewNode(i, 2, tr, opts...)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		t.Cleanup(func() { nd.Close() })
	}

	// magic 0xC0BF | frame v3 | entry codec 1 | group 0xFFFFFFFF | count 0
	evil := []byte{0xC0, 0xBF, 0x03, 0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x00}
	conn, err := net.Dial("udp", addr0)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(evil); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		var buf bytes.Buffer
		if err := reg.WriteMetrics(&buf); err != nil {
			t.Fatal(err)
		}
		fams, err := promtext.Parse(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := fams.Value("cobcast_link_unknown_group_frames_total", nil); v >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("unknown-group frame never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The node is unharmed: normal traffic still converges.
	if err := nodes[0].Broadcast([]byte("alive")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-nodes[1].Deliveries():
		if string(m.Data) != "alive" {
			t.Errorf("got %q", m.Data)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cluster wedged after unknown-group frame")
	}
}

// TestGroupStatezSections pins the bounded per-group observability: a
// cluster with multi-group traffic publishes per-group /statez sections
// tagged with their group ID under the owning node's label.
func TestGroupStatezSections(t *testing.T) {
	reg := obsv.NewRegistry()
	c, err := cobcast.NewCluster(2,
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithObservability(reg),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g := cobcast.Group("statez")
	if err := c.Group(0, g).Broadcast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	drainGroup(t, c.Group(0, g), 1)
	drainGroup(t, c.Group(1, g), 1)

	deadline := time.Now().Add(10 * time.Second)
	for {
		found := false
		for _, s := range reg.Statez().Nodes {
			if s.Group == uint32(g) {
				found = true
			}
		}
		if found {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no per-group statez section appeared")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
