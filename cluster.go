package cobcast

import (
	"fmt"
	"sync"

	"cobcast/internal/groups"
	"cobcast/internal/network"
	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
)

// Cluster is an in-process group of nodes connected by an in-memory
// multi-channel network. It is the easiest way to use the library for
// simulation, testing and single-process applications; for distributed
// deployments use NewNode with a Transport.
type Cluster struct {
	net       *network.Net
	nodes     []*Node
	closeOnce sync.Once
	closeErr  error
}

// NewCluster creates and starts n nodes (n ≥ 2) wired through an
// in-memory network configured by the options.
func NewCluster(n int, opts ...Option) (*Cluster, error) {
	if n < 2 {
		return nil, fmt.Errorf("cobcast: cluster needs at least 2 nodes, got %d", n)
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt.apply(&o)
	}
	netOpts := []network.Option{
		network.WithSeed(o.netSeed),
		network.WithInboxCapacity(o.netInboxCap),
	}
	if o.netLossRate > 0 {
		netOpts = append(netOpts, network.WithLossRate(o.netLossRate))
	}
	if o.netDelay > 0 {
		netOpts = append(netOpts, network.WithUniformDelay(o.netDelay))
	}
	memnet := network.New(n, netOpts...)
	if o.registry != nil {
		o.registry.RegisterNetwork("memnet", memnet.Metrics())
	}
	c := &Cluster{net: memnet, nodes: make([]*Node, n)}
	for i := 0; i < n; i++ {
		ep := memnet.Endpoint(pdu.EntityID(i))
		nd, err := newNode(i, n, o, newMemLink(ep),
			func(shard int, lm *obsv.LinkMetrics) groups.Frames {
				// Shards share the node's port: BroadcastGroup is safe for
				// concurrent use and tags PDUs at the network boundary.
				return newMemGroupFrames(ep, lm)
			})
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes[i] = nd
	}
	return c, nil
}

// NetworkStats counts events on the cluster's in-memory network.
type NetworkStats struct {
	// Sent counts point-to-point transmissions (a broadcast in a cluster
	// of n counts n-1).
	Sent uint64
	// Delivered counts PDUs handed to node inboxes.
	Delivered uint64
	// DroppedLoss counts PDUs dropped by the configured loss rate.
	DroppedLoss uint64
	// DroppedOverrun counts PDUs dropped at full node inboxes — the
	// paper's buffer-overrun loss.
	DroppedOverrun uint64
}

// NetworkStats returns a snapshot of the in-memory network counters.
func (c *Cluster) NetworkStats() NetworkStats {
	s := c.net.Stats()
	return NetworkStats{
		Sent:           s.Sent,
		Delivered:      s.Delivered,
		DroppedLoss:    s.DroppedLoss,
		DroppedOverrun: s.DroppedOverrun + s.DroppedPartition,
	}
}

// Size returns the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns the i-th node.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Broadcast submits data from the given node; shorthand for
// c.Node(from).Broadcast(data).
func (c *Cluster) Broadcast(from int, data []byte) error {
	return c.nodes[from].Broadcast(data)
}

// Isolate blocks every network channel to and from node i — a fault-
// injection helper simulating a crashed or partitioned member.
func (c *Cluster) Isolate(i int) {
	c.net.Isolate(pdu.EntityID(i))
}

// Rejoin heals the channels of a previously isolated node. Note that the
// protocol has no membership rejoin: if survivors evicted the node, its
// confirmations stay ignored.
func (c *Cluster) Rejoin(i int) {
	c.net.Rejoin(pdu.EntityID(i))
}

// Close stops every node and the network.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		c.net.Close()
		for _, nd := range c.nodes {
			if nd == nil {
				continue
			}
			if err := nd.Close(); err != nil && c.closeErr == nil {
				c.closeErr = err
			}
		}
	})
	return c.closeErr
}
