package cobcast_test

import (
	"fmt"
	"sort"
	"time"

	"cobcast"
)

// ExampleNewCluster shows the minimal flow: build a cluster, broadcast,
// receive causally ordered deliveries.
func ExampleNewCluster() {
	cluster, err := cobcast.NewCluster(3,
		cobcast.WithDeferredAckInterval(time.Millisecond))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer cluster.Close()

	if err := cluster.Broadcast(0, []byte("hello, group")); err != nil {
		fmt.Println(err)
		return
	}
	m := <-cluster.Node(2).Deliveries()
	fmt.Printf("node 2 got %q from node %d\n", m.Data, m.Src)
	// Output:
	// node 2 got "hello, group" from node 0
}

// ExampleWithTotalOrder upgrades the service level to total order: every
// node delivers the identical sequence.
func ExampleWithTotalOrder() {
	cluster, err := cobcast.NewCluster(3,
		cobcast.WithTotalOrder(),
		cobcast.WithDeferredAckInterval(time.Millisecond))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer cluster.Close()

	for i := 0; i < 3; i++ {
		if err := cluster.Broadcast(i, []byte{byte('a' + i)}); err != nil {
			fmt.Println(err)
			return
		}
	}
	// Collect each node's delivery order; they are identical, so the
	// sorted set of distinct orders has exactly one element.
	orders := make(map[string]bool)
	for i := 0; i < 3; i++ {
		var order string
		for j := 0; j < 3; j++ {
			m := <-cluster.Node(i).Deliveries()
			order += string(m.Data)
		}
		orders[order] = true
	}
	var distinct []string
	for o := range orders {
		distinct = append(distinct, o)
	}
	sort.Strings(distinct)
	fmt.Println("distinct delivery orders:", len(distinct))
	// Output:
	// distinct delivery orders: 1
}

// ExampleWithLossRate demonstrates that delivery survives a lossy
// network: the protocol detects the gaps and selectively retransmits.
func ExampleWithLossRate() {
	cluster, err := cobcast.NewCluster(3,
		cobcast.WithLossRate(0.25),
		cobcast.WithSeed(7),
		cobcast.WithDeferredAckInterval(time.Millisecond),
		cobcast.WithRetransmitTimeout(4*time.Millisecond))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer cluster.Close()

	const msgs = 10
	for i := 0; i < msgs; i++ {
		if err := cluster.Broadcast(i%3, []byte{byte(i)}); err != nil {
			fmt.Println(err)
			return
		}
	}
	for i := 0; i < msgs; i++ {
		<-cluster.Node(1).Deliveries()
	}
	fmt.Printf("node 1 delivered all %d messages despite 25%% loss\n", msgs)
	// Output:
	// node 1 delivered all 10 messages despite 25% loss
}
