// Package groups is the multi-group sharded runtime: it multiplexes many
// independent causally/totally ordered groups — each its own core.Entity
// with its own sequence space, message log and ready queues — over one
// shared transport.
//
// The paper's engine is single-writer by construction: every input to an
// entity must be serialized on one goroutine. Instead of one goroutine
// per group (unbounded) or one for all groups (no parallelism), the
// registry hash-assigns each group to one of a fixed, GOMAXPROCS-sized
// set of shards. Each shard is one goroutine owning every engine mapped
// to it, which preserves the single-writer invariant per group while
// letting independent groups progress in parallel across shards.
//
// Engines are lazy: the first send or receive naming a group
// instantiates it, up to MaxGroups; past the bound (or after close)
// inbound frames are dropped and counted as unknown-group loss — the
// protocol treats that exactly like transport loss, so a late joiner or
// a confused peer can never crash the runtime.
//
// Each shard also owns a Frames adapter — the link-layer seam supplied
// by the embedding runtime — and flushes it once per input burst
// (flush-on-loop-idle, as the node loop does), so PDUs from many groups
// coalesce into the same staged-batch/sendmmsg path.
package groups

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cobcast/internal/core"
	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
)

// DefaultMaxGroups bounds lazily instantiated engines when Config leaves
// MaxGroups unset. Each engine costs O(n) state plus its logs, so the
// bound is a safety valve against a peer (or a fuzzer) minting fresh
// group IDs forever, not a sizing recommendation.
const DefaultMaxGroups = 1024

// ErrClosed is returned by operations on a closed registry.
var ErrClosed = errors.New("groups: closed")

// ErrTooManyGroups is returned when opening a group would exceed the
// MaxGroups bound.
var ErrTooManyGroups = errors.New("groups: too many groups")

// Inbound is one received wire unit addressed to a group, in exactly one
// representation: Raw for substrates that move encoded v3 frames, PDUs
// for substrates that move decoded PDU pointers (the in-memory network).
// The shard's Frames adapter interprets its own inbounds.
type Inbound struct {
	Raw  []byte
	PDUs []*pdu.PDU
}

// Frames is a shard's attachment to the wire: the multi-group analogue
// of the node's link. One Frames exists per shard and is used only from
// that shard's goroutine, so implementations need no locking of their
// own (the transport underneath must accept concurrent sends, as the
// UDP transport does).
//
// Append stages p on group g's in-progress frame for the next Flush;
// Deliver decodes one inbound for group g and hands each PDU to fn in
// order under the entity Receive contract (sequenced PDUs owned by the
// callee, unsequenced ones may be scratch), then releases the inbound's
// resources.
type Frames interface {
	Append(g uint32, p *pdu.PDU)
	Flush()
	Deliver(g uint32, in Inbound, fn func(p *pdu.PDU))
	Close()
}

// Config assembles a Registry. NewEntity, NewFrames and Deliver are the
// seams to the embedding runtime and must all be set.
type Config struct {
	// Shards is the number of owner goroutines; <= 0 derives it from
	// GOMAXPROCS (capped at 8: shards beyond the parallelism actually
	// available only add channels).
	Shards int
	// MaxGroups bounds lazily instantiated engines; <= 0 selects
	// DefaultMaxGroups.
	MaxGroups int
	// NewEntity builds group g's protocol engine (including any metrics
	// wiring). It runs on the owning shard goroutine.
	NewEntity func(g uint32) (*core.Entity, error)
	// NewFrames builds shard s's wire adapter; it is owned by that
	// shard's goroutine for the registry's lifetime.
	NewFrames func(shard int) Frames
	// Deliver receives group g's causally ordered deliveries, on the
	// owning shard goroutine; it must hand off quickly (the embedding
	// runtime queues to its consumers).
	Deliver func(g uint32, d core.Delivery)
	// DroppedUnknown, if set, is called once per inbound dropped for an
	// unknown-group reason (over the MaxGroups bound, failed engine
	// construction, closed registry).
	DroppedUnknown func()
	// Tick is the per-shard protocol tick interval driving timeouts and
	// deferred ACKs for every engine the shard owns.
	Tick time.Duration
	// Now is the shared protocol clock (time since the node started).
	Now func() time.Duration
}

// Registry is the multi-group runtime: the lazy group table plus the
// shard goroutines that own the engines. All methods are safe for
// concurrent use.
type Registry struct {
	cfg    Config
	shards []*shard

	mu     sync.Mutex
	known  map[uint32]struct{}
	closed bool
}

// New starts a registry with its shard goroutines. The configuration's
// NewEntity, NewFrames, Deliver and Now must be non-nil.
func New(cfg Config) (*Registry, error) {
	if cfg.NewEntity == nil || cfg.NewFrames == nil || cfg.Deliver == nil || cfg.Now == nil {
		return nil, errors.New("groups: incomplete config")
	}
	if cfg.Shards <= 0 {
		// One shard goroutine per schedulable CPU. The heuristic is
		// capped at GOMAXPROCS(0), not a fixed constant: shards run
		// mailbox loops that park when idle, so extra shards on a big
		// machine cost nothing while letting group traffic spread across
		// every core the scheduler can actually use. An explicit
		// cfg.Shards always wins.
		cfg.Shards = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxGroups <= 0 {
		cfg.MaxGroups = DefaultMaxGroups
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 5 * time.Millisecond
	}
	r := &Registry{
		cfg:   cfg,
		known: make(map[uint32]struct{}),
	}
	r.shards = make([]*shard, cfg.Shards)
	for i := range r.shards {
		s := &shard{
			reg:    r,
			idx:    i,
			in:     make(chan shardMsg, shardInboxCap),
			groups: make(map[uint32]*core.Entity),
			frames: cfg.NewFrames(i),
			stop:   make(chan struct{}),
			done:   make(chan struct{}),
		}
		r.shards[i] = s
		go s.loop()
	}
	return r, nil
}

// shardOf hash-assigns group g to its owner shard. Fibonacci hashing
// spreads the sequential and the name-hashed ID populations alike.
func (r *Registry) shardOf(g uint32) *shard {
	h := g * 0x9E3779B1
	return r.shards[h%uint32(len(r.shards))]
}

// Shards reports the number of shard goroutines.
func (r *Registry) Shards() int { return len(r.shards) }

// open reserves g in the group table, enforcing the MaxGroups bound.
func (r *Registry) open(g uint32) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if _, ok := r.known[g]; ok {
		return nil
	}
	if len(r.known) >= r.cfg.MaxGroups {
		return fmt.Errorf("%w: %d", ErrTooManyGroups, r.cfg.MaxGroups)
	}
	r.known[g] = struct{}{}
	return nil
}

// Open makes g known (reserving a MaxGroups slot) without yet building
// its engine; the owning shard instantiates lazily on first input.
// Opening an already-known group is a no-op.
func (r *Registry) Open(g uint32) error { return r.open(g) }

// Submit broadcasts data on group g, instantiating the group if needed.
// data is retained by the engine (callers pass an owned copy). It blocks
// only while the owning shard's inbox is full (backpressure).
func (r *Registry) Submit(g uint32, data []byte) error {
	if err := r.open(g); err != nil {
		return err
	}
	return r.shardOf(g).send(shardMsg{kind: msgSubmit, group: g, data: data})
}

// Inbound routes one received wire unit to group g's owner shard,
// instantiating the group on first receive. Frames for groups past the
// MaxGroups bound — or arriving after close — are dropped and counted
// via DroppedUnknown: unknown-group loss, repaired (or not) like any
// other transport loss, never a crash.
func (r *Registry) Inbound(g uint32, in Inbound) {
	if err := r.open(g); err != nil {
		r.dropUnknown(in)
		return
	}
	if err := r.shardOf(g).send(shardMsg{kind: msgInbound, group: g, in: in}); err != nil {
		r.dropUnknown(in)
	}
}

func (r *Registry) dropUnknown(in Inbound) {
	if in.Raw != nil {
		pdu.PutDatagram(in.Raw)
	}
	if r.cfg.DroppedUnknown != nil {
		r.cfg.DroppedUnknown()
	}
}

// Groups snapshots the known group IDs (reserved or instantiated), in
// arbitrary order.
func (r *Registry) Groups() []uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]uint32, 0, len(r.known))
	for g := range r.known {
		out = append(out, g)
	}
	return out
}

// GroupCount reports how many groups are known.
func (r *Registry) GroupCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.known)
}

// statsTimeout bounds how long introspection waits for a busy shard; a
// scrape that misses simply reports absence rather than stalling.
const statsTimeout = 100 * time.Millisecond

// Stats returns group g's protocol counters, or ok=false if the group
// has no engine (never instantiated) or its shard stayed busy past an
// internal timeout.
func (r *Registry) Stats(g uint32) (core.Stats, bool) {
	reply := make(chan statsReply, 1)
	if !r.shardOf(g).request(shardMsg{kind: msgStats, group: g, statsC: reply}) {
		return core.Stats{}, false
	}
	rep := <-reply
	return rep.stats, rep.ok
}

// SnapshotInto fills dst with group g's live protocol state, taken
// between inputs on the owning shard. ok=false as for Stats; on false
// dst is untouched.
func (r *Registry) SnapshotInto(g uint32, dst *obsv.StateSnapshot) bool {
	reply := make(chan bool, 1)
	if !r.shardOf(g).request(shardMsg{kind: msgSnap, group: g, snap: dst, okC: reply}) {
		return false
	}
	return <-reply
}

// Stalls fills dst with group g's stall-analyzer verdicts, taken
// between inputs on the owning shard. ok=false as for Stats; on false
// dst is untouched.
func (r *Registry) Stalls(g uint32, dst *[]obsv.Stall) bool {
	reply := make(chan bool, 1)
	if !r.shardOf(g).request(shardMsg{kind: msgStalls, group: g, stalls: dst, okC: reply}) {
		return false
	}
	return <-reply
}

// Quiescent reports whether every instantiated engine on every shard
// owes the cluster nothing. It blocks until each shard answers between
// inputs (or returns false if the registry is closing).
func (r *Registry) Quiescent() bool {
	for _, s := range r.shards {
		reply := make(chan bool, 1)
		if err := s.send(shardMsg{kind: msgQuiescent, okC: reply}); err != nil {
			return false
		}
		select {
		case q := <-reply:
			if !q {
				return false
			}
		case <-s.done:
			return false
		}
	}
	return true
}

// Close stops every shard goroutine and closes their Frames adapters.
// Pending inputs may be dropped — indistinguishable from loss. It is
// idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	for _, s := range r.shards {
		close(s.stop)
	}
	for _, s := range r.shards {
		<-s.done
	}
}

// shardInboxCap is each shard's input queue depth. Full inboxes apply
// backpressure to submitters and to the inbound router (which in turn
// slows the transport pump — the receive socket buffer absorbs bursts).
const shardInboxCap = 256

const (
	msgSubmit = iota
	msgInbound
	msgStats
	msgSnap
	msgStalls
	msgQuiescent
)

type statsReply struct {
	stats core.Stats
	ok    bool
}

type shardMsg struct {
	kind   int
	group  uint32
	data   []byte
	in     Inbound
	statsC chan statsReply
	snap   *obsv.StateSnapshot
	stalls *[]obsv.Stall
	okC    chan bool
}

// shard is one owner goroutine and the engines hash-assigned to it.
// Only the shard goroutine touches groups, its engines or its Frames —
// the single-writer invariant, per group, by construction.
type shard struct {
	reg *Registry
	idx int
	in  chan shardMsg
	// groups maps group ID -> engine; a nil engine is a tombstone for a
	// group whose construction failed (inputs drop as unknown-group loss
	// instead of retrying construction per datagram).
	groups map[uint32]*core.Entity
	frames Frames
	stop   chan struct{}
	done   chan struct{}
}

// send enqueues m, blocking while the inbox is full; it fails only once
// the registry is closing.
func (s *shard) send(m shardMsg) error {
	select {
	case <-s.stop:
		return ErrClosed
	default:
	}
	select {
	case s.in <- m:
		return nil
	case <-s.stop:
		return ErrClosed
	case <-s.done:
		return ErrClosed
	}
}

// request enqueues an introspection message, giving up after
// statsTimeout instead of blocking a scraper behind a busy shard.
func (s *shard) request(m shardMsg) bool {
	timer := time.NewTimer(statsTimeout)
	defer timer.Stop()
	select {
	case s.in <- m:
		return true
	case <-s.stop:
		return false
	case <-s.done:
		return false
	case <-timer.C:
		return false
	}
}

// loop is the shard's owner goroutine: block for one input, drain
// whatever else is pending without blocking, then flush — so the PDUs
// every engine produced for one burst ride out together, across groups,
// in one staged-batch send.
func (s *shard) loop() {
	defer close(s.done)
	defer s.frames.Close()
	ticker := time.NewTicker(s.reg.cfg.Tick)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			s.drainOnStop()
			return
		case m := <-s.in:
			s.handle(m)
		case <-ticker.C:
			s.tickAll()
		}
		drained := false
		for !drained {
			select {
			case <-s.stop:
				s.drainOnStop()
				return
			case m := <-s.in:
				s.handle(m)
			case <-ticker.C:
				s.tickAll()
			default:
				drained = true
			}
		}
		s.frames.Flush()
	}
}

// drainOnStop releases resources queued behind the stop signal so pooled
// datagram buffers are not leaked at close.
func (s *shard) drainOnStop() {
	for {
		select {
		case m := <-s.in:
			if m.in.Raw != nil {
				pdu.PutDatagram(m.in.Raw)
			}
			if m.statsC != nil {
				m.statsC <- statsReply{}
			}
			if m.okC != nil {
				m.okC <- false
			}
		default:
			return
		}
	}
}

func (s *shard) handle(m shardMsg) {
	switch m.kind {
	case msgSubmit:
		eng := s.engine(m.group)
		if eng == nil {
			return
		}
		s.dispatch(m.group, eng.Submit(m.data, s.reg.cfg.Now()))
	case msgInbound:
		eng := s.engine(m.group)
		if eng == nil {
			s.reg.dropUnknown(m.in)
			return
		}
		s.frames.Deliver(m.group, m.in, func(p *pdu.PDU) {
			// Receive errors mark malformed or foreign PDUs; the engine
			// counts them in InvalidPDUs and the protocol carries on.
			out, _ := eng.Receive(p, s.reg.cfg.Now())
			s.dispatch(m.group, out)
		})
	case msgStats:
		eng, ok := s.groups[m.group]
		if !ok || eng == nil {
			m.statsC <- statsReply{}
			return
		}
		m.statsC <- statsReply{stats: eng.Stats(), ok: true}
	case msgSnap:
		eng, ok := s.groups[m.group]
		if !ok || eng == nil {
			m.okC <- false
			return
		}
		eng.SnapshotInto(m.snap)
		m.okC <- true
	case msgStalls:
		eng, ok := s.groups[m.group]
		if !ok || eng == nil {
			m.okC <- false
			return
		}
		*m.stalls = eng.Stalls(s.reg.cfg.Now(), 0)
		m.okC <- true
	case msgQuiescent:
		for _, eng := range s.groups {
			if eng != nil && !eng.Quiescent() {
				m.okC <- false
				return
			}
		}
		m.okC <- true
	}
}

// engine returns group g's engine, instantiating it on first input. A
// failed construction is tombstoned so later inputs drop cheaply.
func (s *shard) engine(g uint32) *core.Entity {
	eng, ok := s.groups[g]
	if ok {
		return eng
	}
	eng, err := s.reg.cfg.NewEntity(g)
	if err != nil {
		eng = nil
	}
	s.groups[g] = eng
	return eng
}

func (s *shard) tickAll() {
	now := s.reg.cfg.Now()
	for g, eng := range s.groups {
		if eng != nil {
			s.dispatch(g, eng.Tick(now))
		}
	}
}

// dispatch stages an engine's output PDUs on the shard's frames (sent at
// the next flush) and hands its deliveries to the embedding runtime.
func (s *shard) dispatch(g uint32, out core.Output) {
	for _, p := range out.PDUs {
		s.frames.Append(g, p)
	}
	for _, d := range out.Deliveries {
		s.reg.cfg.Deliver(g, d)
	}
}
