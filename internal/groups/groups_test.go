package groups

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cobcast/internal/core"
	"cobcast/internal/pdu"
)

// pipe joins two registries back to back: frames staged on one side are
// handed (as cloned PDU pointers, the in-memory substrate) to the other
// side's Inbound. It stands in for a transport in these tests.
type pipe struct {
	mu   sync.Mutex
	peer [2]*Registry // peer[side] is the registry inbounds are routed TO
}

func (pp *pipe) to(side int) *Registry {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	return pp.peer[side]
}

// pipeFrames is one shard's Frames over the pipe: Append stages per
// group, Flush clones and crosses the pipe. Only the owning shard
// goroutine touches staged.
type pipeFrames struct {
	pp     *pipe
	side   int
	order  []uint32
	staged map[uint32][]*pdu.PDU
}

func (f *pipeFrames) Append(g uint32, p *pdu.PDU) {
	if f.staged[g] == nil {
		f.order = append(f.order, g)
	}
	f.staged[g] = append(f.staged[g], p)
}

func (f *pipeFrames) Flush() {
	for _, g := range f.order {
		batch := f.staged[g]
		clones := make([]*pdu.PDU, len(batch))
		for i, p := range batch {
			clones[i] = p.Clone()
		}
		delete(f.staged, g)
		if peer := f.pp.to(f.side); peer != nil {
			peer.Inbound(g, Inbound{PDUs: clones})
		}
	}
	f.order = f.order[:0]
}

func (f *pipeFrames) Deliver(g uint32, in Inbound, fn func(p *pdu.PDU)) {
	for _, p := range in.PDUs {
		fn(p)
	}
}

func (f *pipeFrames) Close() {}

// collector gathers deliveries per group across shard goroutines.
type collector struct {
	mu   sync.Mutex
	msgs map[uint32][]core.Delivery
}

func (c *collector) add(g uint32, d core.Delivery) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.msgs == nil {
		c.msgs = make(map[uint32][]core.Delivery)
	}
	c.msgs[g] = append(c.msgs[g], d)
}

func (c *collector) count(g uint32) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.msgs[g])
}

func (c *collector) get(g uint32) []core.Delivery {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]core.Delivery(nil), c.msgs[g]...)
}

// newPair builds two joined registries forming a 2-entity cluster per
// group; shards and maxGroups apply to both sides.
func newPair(t *testing.T, shards, maxGroups int) (a, b *Registry, ca, cb *collector, cleanup func()) {
	t.Helper()
	pp := &pipe{}
	start := time.Now()
	now := func() time.Duration { return time.Since(start) }
	mk := func(id, side int, col *collector) *Registry {
		r, err := New(Config{
			Shards:    shards,
			MaxGroups: maxGroups,
			NewEntity: func(g uint32) (*core.Entity, error) {
				return core.New(core.Config{
					ClusterID:   g,
					ID:          pdu.EntityID(id),
					N:           2,
					Window:      core.DefaultWindow,
					BufferUnits: core.DefaultBufferUnits,
					UnitsPerPDU: core.DefaultUnitsPerPDU,
				})
			},
			NewFrames: func(shard int) Frames {
				return &pipeFrames{pp: pp, side: side, staged: make(map[uint32][]*pdu.PDU)}
			},
			Deliver: col.add,
			Tick:    time.Millisecond,
			Now:     now,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	ca, cb = &collector{}, &collector{}
	a = mk(0, 0, ca)
	b = mk(1, 1, cb)
	pp.mu.Lock()
	pp.peer[0], pp.peer[1] = b, a
	pp.mu.Unlock()
	return a, b, ca, cb, func() {
		pp.mu.Lock()
		pp.peer[0], pp.peer[1] = nil, nil
		pp.mu.Unlock()
		a.Close()
		b.Close()
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestMultiGroupConverges drives several groups across several shards
// and checks every message is delivered on both sides of every group,
// in per-source sequence order.
func TestMultiGroupConverges(t *testing.T) {
	a, b, ca, cb, cleanup := newPair(t, 4, 0)
	defer cleanup()

	groupIDs := []uint32{1, 2, 3, 4}
	const perGroup = 20
	for i := 0; i < perGroup; i++ {
		for _, g := range groupIDs {
			if err := a.Submit(g, []byte(fmt.Sprintf("g%d-m%d", g, i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	waitFor(t, "all deliveries", func() bool {
		for _, g := range groupIDs {
			if ca.count(g) != perGroup || cb.count(g) != perGroup {
				return false
			}
		}
		return a.Quiescent() && b.Quiescent()
	})
	for _, g := range groupIDs {
		for _, col := range []*collector{ca, cb} {
			ds := col.get(g)
			for i, d := range ds {
				if d.Src != 0 || d.SEQ != pdu.Seq(i+1) {
					t.Fatalf("group %d delivery %d = src %d seq %d, want src 0 seq %d", g, i, d.Src, d.SEQ, i+1)
				}
				if want := fmt.Sprintf("g%d-m%d", g, i); string(d.Data) != want {
					t.Fatalf("group %d delivery %d data = %q, want %q", g, i, d.Data, want)
				}
			}
		}
	}
	if a.GroupCount() != len(groupIDs) {
		t.Fatalf("GroupCount = %d, want %d", a.GroupCount(), len(groupIDs))
	}
	for _, g := range groupIDs {
		st, ok := a.Stats(g)
		if !ok || st.Delivered == 0 {
			t.Fatalf("Stats(%d) = %+v,%v", g, st, ok)
		}
	}
}

// TestLazyInstantiationAndBound checks groups exist only once touched,
// the MaxGroups bound rejects submits, and over-bound inbounds are
// dropped and counted — never a crash.
func TestLazyInstantiationAndBound(t *testing.T) {
	var drops atomic.Int64
	r, err := New(Config{
		Shards:    2,
		MaxGroups: 2,
		NewEntity: func(g uint32) (*core.Entity, error) {
			return core.New(core.Config{
				ClusterID: g, ID: 0, N: 2,
				Window: core.DefaultWindow, BufferUnits: core.DefaultBufferUnits, UnitsPerPDU: core.DefaultUnitsPerPDU,
			})
		},
		NewFrames:      func(int) Frames { return &pipeFrames{pp: &pipe{}, staged: make(map[uint32][]*pdu.PDU)} },
		Deliver:        func(uint32, core.Delivery) {},
		DroppedUnknown: func() { drops.Add(1) },
		Now:            func() time.Duration { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if n := r.GroupCount(); n != 0 {
		t.Fatalf("GroupCount before any input = %d", n)
	}
	if _, ok := r.Stats(5); ok {
		t.Fatal("Stats ok for never-touched group")
	}
	if err := r.Submit(5, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := r.Submit(6, []byte("y")); err != nil {
		t.Fatal(err)
	}
	if err := r.Submit(7, []byte("z")); !errors.Is(err, ErrTooManyGroups) {
		t.Fatalf("Submit over bound = %v, want ErrTooManyGroups", err)
	}
	r.Inbound(8, Inbound{PDUs: []*pdu.PDU{{Kind: pdu.KindAckOnly, Src: 1, ACK: []pdu.Seq{0, 0}, LSrc: pdu.NoEntity}}})
	waitFor(t, "unknown-group drop", func() bool { return drops.Load() == 1 })
	if n := r.GroupCount(); n != 2 {
		t.Fatalf("GroupCount = %d, want 2", n)
	}
}

// TestEngineFailureTombstoned checks a group whose engine cannot be
// built drops its inputs as unknown-group loss without retry storms or
// crashes.
func TestEngineFailureTombstoned(t *testing.T) {
	var drops, builds atomic.Int64
	r, err := New(Config{
		Shards: 1,
		NewEntity: func(g uint32) (*core.Entity, error) {
			builds.Add(1)
			return nil, errors.New("boom")
		},
		NewFrames:      func(int) Frames { return &pipeFrames{pp: &pipe{}, staged: make(map[uint32][]*pdu.PDU)} },
		Deliver:        func(uint32, core.Delivery) {},
		DroppedUnknown: func() { drops.Add(1) },
		Now:            func() time.Duration { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	in := func() Inbound {
		return Inbound{PDUs: []*pdu.PDU{{Kind: pdu.KindAckOnly, Src: 1, ACK: []pdu.Seq{0, 0}, LSrc: pdu.NoEntity}}}
	}
	r.Inbound(3, in())
	r.Inbound(3, in())
	waitFor(t, "tombstoned drops", func() bool { return drops.Load() == 2 })
	if builds.Load() != 1 {
		t.Fatalf("engine built %d times, want 1 (tombstone)", builds.Load())
	}
	if !r.Quiescent() {
		t.Fatal("registry with only tombstones should be quiescent")
	}
}

// TestCloseDropsInbound checks close is idempotent and later inbounds
// are counted drops, not panics.
func TestCloseDropsInbound(t *testing.T) {
	var drops atomic.Int64
	r, err := New(Config{
		Shards: 2,
		NewEntity: func(g uint32) (*core.Entity, error) {
			return core.New(core.Config{
				ClusterID: g, ID: 0, N: 2,
				Window: core.DefaultWindow, BufferUnits: core.DefaultBufferUnits, UnitsPerPDU: core.DefaultUnitsPerPDU,
			})
		},
		NewFrames:      func(int) Frames { return &pipeFrames{pp: &pipe{}, staged: make(map[uint32][]*pdu.PDU)} },
		Deliver:        func(uint32, core.Delivery) {},
		DroppedUnknown: func() { drops.Add(1) },
		Now:            func() time.Duration { return 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Submit(1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close()
	if err := r.Submit(1, []byte("y")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after close = %v, want ErrClosed", err)
	}
	r.Inbound(1, Inbound{PDUs: []*pdu.PDU{{Kind: pdu.KindAckOnly, Src: 1, ACK: []pdu.Seq{0, 0}, LSrc: pdu.NoEntity}}})
	if drops.Load() != 1 {
		t.Fatalf("drops after close = %d, want 1", drops.Load())
	}
}
