// Package sim is a deterministic discrete-event simulator used to
// reproduce the paper's latency experiments (Figure 8's Tap series and the
// 2R acknowledgment-latency claim of Section 5) independently of the host
// machine. Virtual time advances only when events fire, so a cluster with
// a maximum propagation delay R yields exact, repeatable delay
// measurements.
package sim

import (
	"container/heap"
	"time"
)

// Sim is a single-threaded discrete-event scheduler. The zero value is not
// usable; create one with New. Sim is not safe for concurrent use — all
// events run on the caller's goroutine, which is what makes runs
// deterministic.
type Sim struct {
	now    time.Duration
	queue  eventQueue
	nextID uint64
}

// New returns an empty simulation at virtual time zero.
func New() *Sim { return &Sim{} }

// Now returns the current virtual time.
func (s *Sim) Now() time.Duration { return s.now }

// After schedules fn to run d from now. Events scheduled for the same
// instant fire in scheduling order. Negative delays are treated as zero.
func (s *Sim) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now+d, fn)
}

// At schedules fn at absolute virtual time t, clamped to now.
func (s *Sim) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.nextID++
	heap.Push(&s.queue, &event{at: t, id: s.nextID, fn: fn})
}

// Step runs the next event, returning false if none remain.
func (s *Sim) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*event)
	s.now = ev.at
	ev.fn()
	return true
}

// Run fires events until the queue is empty, returning the number fired.
func (s *Sim) Run() int {
	n := 0
	for s.Step() {
		n++
	}
	return n
}

// RunUntil fires events with timestamps ≤ t, then advances the clock to
// t. Events scheduled beyond t remain queued.
func (s *Sim) RunUntil(t time.Duration) int {
	n := 0
	for s.queue.Len() > 0 && s.queue[0].at <= t {
		s.Step()
		n++
	}
	if s.now < t {
		s.now = t
	}
	return n
}

// RunFor fires events within the next d of virtual time.
func (s *Sim) RunFor(d time.Duration) int { return s.RunUntil(s.now + d) }

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.queue.Len() }

type event struct {
	at time.Duration
	id uint64 // insertion order breaks timestamp ties
	fn func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].id < q[j].id
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
