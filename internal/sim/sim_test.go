package sim

import (
	"math/rand"
	"testing"
	"time"

	"cobcast/internal/pdu"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	s := New()
	var order []int
	s.After(3*time.Millisecond, func() { order = append(order, 3) })
	s.After(1*time.Millisecond, func() { order = append(order, 1) })
	s.After(2*time.Millisecond, func() { order = append(order, 2) })
	if n := s.Run(); n != 3 {
		t.Fatalf("Run fired %d events, want 3", n)
	}
	if order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 3*time.Millisecond {
		t.Errorf("Now = %v, want 3ms", s.Now())
	}
}

func TestTiesFireInSchedulingOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie order = %v", order)
		}
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	s := New()
	var fired []time.Duration
	s.After(time.Millisecond, func() {
		fired = append(fired, s.Now())
		s.After(time.Millisecond, func() {
			fired = append(fired, s.Now())
		})
	})
	s.Run()
	if len(fired) != 2 || fired[0] != time.Millisecond || fired[1] != 2*time.Millisecond {
		t.Errorf("fired = %v", fired)
	}
}

func TestRunUntilLeavesLaterEvents(t *testing.T) {
	s := New()
	var count int
	s.After(1*time.Millisecond, func() { count++ })
	s.After(5*time.Millisecond, func() { count++ })
	if n := s.RunUntil(2 * time.Millisecond); n != 1 {
		t.Fatalf("RunUntil fired %d, want 1", n)
	}
	if s.Now() != 2*time.Millisecond {
		t.Errorf("Now = %v, want 2ms", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	s.Run()
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
}

func TestNegativeAndPastTimesClamp(t *testing.T) {
	s := New()
	s.After(time.Millisecond, func() {
		s.At(0, func() {}) // in the past: clamps to now
		s.After(-time.Second, func() {})
	})
	s.Run()
	if s.Now() != time.Millisecond {
		t.Errorf("Now = %v", s.Now())
	}
}

func TestNetDeliversWithDelayAndOrder(t *testing.T) {
	s := New()
	net := NewNet(s, 2, NetUniformDelay(2*time.Millisecond))
	var got []pdu.Seq
	var at []time.Duration
	net.Attach(1, func(from pdu.EntityID, p *pdu.PDU) {
		got = append(got, p.SEQ)
		at = append(at, s.Now())
	})
	for i := 1; i <= 3; i++ {
		net.Send(0, 1, &pdu.PDU{Kind: pdu.KindSync, Src: 0, SEQ: pdu.Seq(i), ACK: []pdu.Seq{1, 1}})
	}
	s.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got = %v", got)
	}
	if at[0] != 2*time.Millisecond {
		t.Errorf("first arrival at %v, want 2ms", at[0])
	}
}

func TestNetFIFOUnderJitter(t *testing.T) {
	// Random per-PDU delays must not reorder a channel (MC service).
	s := New()
	net := NewNet(s, 2, NetSeed(3), NetDelay(
		func(_, _ pdu.EntityID, rng *rand.Rand) time.Duration {
			return time.Duration(rng.Intn(1000)) * time.Microsecond
		}))
	var got []pdu.Seq
	net.Attach(1, func(from pdu.EntityID, p *pdu.PDU) { got = append(got, p.SEQ) })
	const count = 200
	for i := 1; i <= count; i++ {
		net.Send(0, 1, &pdu.PDU{Kind: pdu.KindSync, Src: 0, SEQ: pdu.Seq(i), ACK: []pdu.Seq{1, 1}})
	}
	s.Run()
	if len(got) != count {
		t.Fatalf("delivered %d, want %d", len(got), count)
	}
	for i, seq := range got {
		if seq != pdu.Seq(i+1) {
			t.Fatalf("position %d: seq %d (reordered)", i, seq)
		}
	}
}

func TestNetLossAndStats(t *testing.T) {
	s := New()
	net := NewNet(s, 2, NetLossRate(0.5), NetSeed(9))
	delivered := 0
	net.Attach(1, func(pdu.EntityID, *pdu.PDU) { delivered++ })
	const count = 1000
	for i := 1; i <= count; i++ {
		net.Send(0, 1, &pdu.PDU{Kind: pdu.KindSync, Src: 0, SEQ: pdu.Seq(i), ACK: []pdu.Seq{1, 1}})
	}
	s.Run()
	st := net.Stats()
	if st.Sent != count || st.Delivered+st.Dropped != count {
		t.Errorf("stats: %+v", st)
	}
	if delivered != int(st.Delivered) {
		t.Errorf("handler saw %d, stats %d", delivered, st.Delivered)
	}
	if st.Dropped < count/3 || st.Dropped > 2*count/3 {
		t.Errorf("dropped %d of %d at rate 0.5", st.Dropped, count)
	}
}

func TestNetBroadcastSkipsSelfAndClones(t *testing.T) {
	s := New()
	net := NewNet(s, 3)
	heard := make(map[pdu.EntityID]*pdu.PDU)
	for i := 0; i < 3; i++ {
		id := pdu.EntityID(i)
		net.Attach(id, func(from pdu.EntityID, p *pdu.PDU) { heard[id] = p })
	}
	p := &pdu.PDU{Kind: pdu.KindSync, Src: 0, SEQ: 1, ACK: []pdu.Seq{1, 1, 1}}
	net.Broadcast(0, p)
	p.ACK[0] = 99
	s.Run()
	if _, ok := heard[0]; ok {
		t.Error("sender heard its own broadcast")
	}
	for _, id := range []pdu.EntityID{1, 2} {
		q, ok := heard[id]
		if !ok {
			t.Fatalf("entity %d heard nothing", id)
		}
		if q.ACK[0] == 99 {
			t.Error("simnet delivered aliased PDU")
		}
	}
}

func TestNetDropFilter(t *testing.T) {
	s := New()
	net := NewNet(s, 2, NetDropFilter(func(_, _ pdu.EntityID, p *pdu.PDU) bool {
		return p.SEQ == 2
	}))
	var got []pdu.Seq
	net.Attach(1, func(_ pdu.EntityID, p *pdu.PDU) { got = append(got, p.SEQ) })
	for i := 1; i <= 3; i++ {
		net.Send(0, 1, &pdu.PDU{Kind: pdu.KindSync, Src: 0, SEQ: pdu.Seq(i), ACK: []pdu.Seq{1, 1}})
	}
	s.Run()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("got = %v, want [1 3]", got)
	}
}

func TestNetDatagramFilter(t *testing.T) {
	s := New()
	calls := 0
	net := NewNet(s, 2, NetDatagramFilter(func(_, to pdu.EntityID, pdus int) bool {
		calls++
		return to == 1 && calls == 2 // drop the second datagram whole
	}))
	var got []pdu.Seq
	net.Attach(1, func(_ pdu.EntityID, p *pdu.PDU) { got = append(got, p.SEQ) })
	mk := func(seq pdu.Seq) *pdu.PDU {
		return &pdu.PDU{Kind: pdu.KindSync, Src: 0, SEQ: seq, ACK: []pdu.Seq{1, 1}}
	}
	net.Send(0, 1, mk(1), mk(2)) // batch of 2: one filter call
	net.Send(0, 1, mk(3), mk(4)) // dropped as a unit
	net.Send(0, 1, mk(5))
	s.Run()
	if calls != 3 {
		t.Errorf("filter consulted %d times, want once per datagram (3)", calls)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 5 {
		t.Errorf("got = %v, want [1 2 5]", got)
	}
	if st := net.Stats(); st.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2 (PDUs of the dropped datagram)", st.Dropped)
	}
}

func TestNetDuplicateRate(t *testing.T) {
	s := New()
	net := NewNet(s, 2, NetDuplicateRate(1.0))
	var got []pdu.Seq
	net.Attach(1, func(_ pdu.EntityID, p *pdu.PDU) { got = append(got, p.SEQ) })
	net.Send(0, 1, &pdu.PDU{Kind: pdu.KindSync, Src: 0, SEQ: 1, ACK: []pdu.Seq{1, 1}})
	net.Send(0, 1, &pdu.PDU{Kind: pdu.KindSync, Src: 0, SEQ: 2, ACK: []pdu.Seq{1, 1}})
	s.Run()
	want := []pdu.Seq{1, 1, 2, 2}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v (duplicates must stay in channel order)", got, want)
		}
	}
}
