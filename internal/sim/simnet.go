package sim

import (
	"math/rand"
	"time"

	"cobcast/internal/pdu"
)

// Handler receives a PDU arriving at an entity attached to a Net.
type Handler func(from pdu.EntityID, p *pdu.PDU)

// NetOption configures a simulated network.
type NetOption func(*netConfig)

type netConfig struct {
	delay         func(from, to pdu.EntityID, rng *rand.Rand) time.Duration
	lossRate      float64
	duplicateRate float64
	seed          int64
	drop          func(from, to pdu.EntityID, p *pdu.PDU) bool
	dropDatagram  func(from, to pdu.EntityID, pdus int) bool
	encode        func(from pdu.EntityID, batch []*pdu.PDU) []byte
	decode        func(from, to pdu.EntityID, frame []byte) []*pdu.PDU
}

// NetDelay sets a per-channel propagation-delay model; the RNG allows
// jitter while staying deterministic.
func NetDelay(fn func(from, to pdu.EntityID, rng *rand.Rand) time.Duration) NetOption {
	return func(c *netConfig) { c.delay = fn }
}

// NetUniformDelay gives every channel the same propagation delay R.
func NetUniformDelay(r time.Duration) NetOption {
	return NetDelay(func(_, _ pdu.EntityID, _ *rand.Rand) time.Duration { return r })
}

// NetLossRate drops each point-to-point transmission independently with
// probability p.
func NetLossRate(p float64) NetOption { return func(c *netConfig) { c.lossRate = p } }

// NetDuplicateRate delivers each transmission twice with probability p.
func NetDuplicateRate(p float64) NetOption { return func(c *netConfig) { c.duplicateRate = p } }

// NetSeed seeds the network RNG.
func NetSeed(s int64) NetOption { return func(c *netConfig) { c.seed = s } }

// NetDropFilter installs a targeted-loss hook for failure injection.
func NetDropFilter(fn func(from, to pdu.EntityID, p *pdu.PDU) bool) NetOption {
	return func(c *netConfig) { c.drop = fn }
}

// NetDatagramFilter installs a per-datagram loss hook, consulted exactly
// once per transmission (after the blocked-channel and uniform loss-rate
// checks) with the datagram's PDU count; returning true drops the whole
// datagram. Unlike NetDropFilter it sees each datagram once regardless of
// batch size, which lets fault models that consume randomness — per-link
// loss rates, correlated buffer-overrun bursts — stay deterministic under
// batching changes.
func NetDatagramFilter(fn func(from, to pdu.EntityID, pdus int) bool) NetOption {
	return func(c *netConfig) { c.dropDatagram = fn }
}

// NetCodec routes every Broadcast datagram through a wire codec round
// trip instead of moving PDU pointers: encode runs exactly once per
// datagram, before the per-receiver fault rolls, so send-side codec
// state (a v2 delta-stamp reference) advances the way a real link's
// does; decode runs once per delivered copy at its receiver, so lost
// and duplicated datagrams exercise the receive-side codec state
// exactly as on a lossy wire. decode returns the PDUs that survived —
// a short result models codec-level loss (a delta stamp whose
// reference datagram was dropped) and is counted in CodecDropped. The
// returned frame and PDUs must be freshly owned (the network schedules
// and replays them). Direct Send calls bypass the codec.
func NetCodec(encode func(from pdu.EntityID, batch []*pdu.PDU) []byte,
	decode func(from, to pdu.EntityID, frame []byte) []*pdu.PDU) NetOption {
	return func(c *netConfig) { c.encode, c.decode = encode, decode }
}

// NetStats counts simulated-network events.
type NetStats struct {
	Sent      uint64
	Delivered uint64
	Dropped   uint64
	// CodecDropped counts PDUs lost inside delivered datagrams by the
	// NetCodec round trip (decode returned fewer PDUs than were sent),
	// e.g. v2 delta stamps rejected for a lost reference.
	CodecDropped uint64
}

// Net is the virtual-time MC network: per-sender order preserved on every
// directed channel, arbitrary interleaving across senders, optional loss.
// Attach one handler per entity, then Broadcast from inside or outside
// event callbacks; deliveries are scheduled as simulator events.
type Net struct {
	sim      *Sim
	cfg      netConfig
	rng      *rand.Rand
	handlers []Handler
	// lastAt[from][to] is the latest scheduled arrival on the channel,
	// used to keep the MC service local-order-preserved under jitter.
	lastAt  [][]time.Duration
	blocked map[[2]pdu.EntityID]bool
	stats   NetStats
}

// NewNet creates a simulated network for n entities on s.
func NewNet(s *Sim, n int, opts ...NetOption) *Net {
	cfg := netConfig{
		seed:  1,
		delay: func(_, _ pdu.EntityID, _ *rand.Rand) time.Duration { return 0 },
	}
	for _, o := range opts {
		o(&cfg)
	}
	last := make([][]time.Duration, n)
	for i := range last {
		last[i] = make([]time.Duration, n)
	}
	return &Net{
		sim:      s,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.seed)),
		handlers: make([]Handler, n),
		lastAt:   last,
		blocked:  make(map[[2]pdu.EntityID]bool),
	}
}

// Block partitions the directed channel from→to until Unblock.
func (n *Net) Block(from, to pdu.EntityID) { n.blocked[[2]pdu.EntityID{from, to}] = true }

// Unblock heals the directed channel from→to.
func (n *Net) Unblock(from, to pdu.EntityID) { delete(n.blocked, [2]pdu.EntityID{from, to}) }

// Isolate blocks every channel to and from entity i.
func (n *Net) Isolate(i pdu.EntityID) {
	for j := range n.handlers {
		if pdu.EntityID(j) != i {
			n.Block(i, pdu.EntityID(j))
			n.Block(pdu.EntityID(j), i)
		}
	}
}

// Rejoin heals every channel to and from entity i.
func (n *Net) Rejoin(i pdu.EntityID) {
	for j := range n.handlers {
		if pdu.EntityID(j) != i {
			n.Unblock(i, pdu.EntityID(j))
			n.Unblock(pdu.EntityID(j), i)
		}
	}
}

// Attach registers the handler invoked when PDUs arrive at entity i.
func (n *Net) Attach(i pdu.EntityID, h Handler) { n.handlers[i] = h }

// Size returns the number of entities.
func (n *Net) Size() int { return len(n.handlers) }

// Stats returns a snapshot of the counters.
func (n *Net) Stats() NetStats { return n.stats }

// Broadcast schedules delivery of a batch (one datagram) from one entity
// to every other. With a NetCodec installed the batch is encoded here,
// once, and the same frame bytes fan out to every receiver.
func (n *Net) Broadcast(from pdu.EntityID, batch ...*pdu.PDU) {
	if len(batch) == 0 {
		return
	}
	var frame []byte
	if n.cfg.encode != nil {
		frame = n.cfg.encode(from, batch)
	}
	for to := range n.handlers {
		if pdu.EntityID(to) == from {
			continue
		}
		n.send(from, pdu.EntityID(to), batch, frame)
	}
}

// Send schedules delivery of a batch on the from→to channel. The batch is
// one datagram: it is delayed, lost, and duplicated as a unit, arrives as
// one simulator event, and its PDUs reach the handler in append order —
// so per-sender order holds within and across batches. Stats count PDUs.
func (n *Net) Send(from, to pdu.EntityID, batch ...*pdu.PDU) {
	n.send(from, to, batch, nil)
}

// send is the shared channel path; a non-nil frame carries the encoded
// datagram for the NetCodec byte path.
func (n *Net) send(from, to pdu.EntityID, batch []*pdu.PDU, frame []byte) {
	if len(batch) == 0 {
		return
	}
	n.stats.Sent += uint64(len(batch))
	if n.blocked[[2]pdu.EntityID{from, to}] {
		n.stats.Dropped += uint64(len(batch))
		return
	}
	if n.cfg.lossRate > 0 && n.rng.Float64() < n.cfg.lossRate {
		n.stats.Dropped += uint64(len(batch))
		return
	}
	if n.cfg.dropDatagram != nil && n.cfg.dropDatagram(from, to, len(batch)) {
		n.stats.Dropped += uint64(len(batch))
		return
	}
	if n.cfg.drop != nil {
		for _, p := range batch {
			if n.cfg.drop(from, to, p) {
				n.stats.Dropped += uint64(len(batch))
				return
			}
		}
	}
	copies := 1
	if n.cfg.duplicateRate > 0 && n.rng.Float64() < n.cfg.duplicateRate {
		copies = 2
	}
	for c := 0; c < copies; c++ {
		at := n.sim.Now() + n.cfg.delay(from, to, n.rng)
		// FIFO per directed channel: never deliver before an earlier send.
		if prev := n.lastAt[from][to]; at <= prev {
			at = prev + time.Nanosecond
		}
		n.lastAt[from][to] = at
		if frame != nil {
			// Byte path: decode at arrival, per delivered copy, so the
			// receiver's codec state sees exactly the datagram sequence
			// the channel delivered (losses, duplicates and all).
			sent := len(batch)
			n.sim.At(at, func() {
				pdus := n.cfg.decode(from, to, frame)
				n.stats.Delivered += uint64(len(pdus))
				if len(pdus) < sent {
					n.stats.CodecDropped += uint64(sent - len(pdus))
				}
				h := n.handlers[to]
				if h == nil {
					return
				}
				for _, p := range pdus {
					h(from, p)
				}
			})
			continue
		}
		clones := make([]*pdu.PDU, len(batch))
		for i, p := range batch {
			clones[i] = p.Clone()
		}
		n.sim.At(at, func() {
			n.stats.Delivered += uint64(len(clones))
			h := n.handlers[to]
			if h == nil {
				return
			}
			for _, p := range clones {
				h(from, p)
			}
		})
	}
}
