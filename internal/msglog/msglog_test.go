package msglog

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"cobcast/internal/pdu"
)

func dataPDU(src pdu.EntityID, seq pdu.Seq, ack []pdu.Seq) *pdu.PDU {
	return &pdu.PDU{Kind: pdu.KindData, Src: src, SEQ: seq, ACK: ack}
}

// table1 returns the eight PDUs of Table 1 keyed by their paper names.
func table1() map[string]*pdu.PDU {
	return map[string]*pdu.PDU{
		"a": dataPDU(0, 1, []pdu.Seq{1, 1, 1}),
		"b": dataPDU(2, 1, []pdu.Seq{2, 1, 1}),
		"c": dataPDU(0, 2, []pdu.Seq{2, 1, 1}),
		"d": dataPDU(1, 1, []pdu.Seq{3, 1, 2}),
		"e": dataPDU(0, 3, []pdu.Seq{3, 2, 2}),
		"f": dataPDU(0, 4, []pdu.Seq{4, 2, 2}),
		"g": dataPDU(1, 2, []pdu.Seq{4, 2, 2}),
		"h": dataPDU(2, 2, []pdu.Seq{5, 3, 2}),
	}
}

func names(ps []*pdu.PDU, tbl map[string]*pdu.PDU) string {
	out := ""
	for _, p := range ps {
		for name, q := range tbl {
			if q == p {
				out += name
			}
		}
	}
	return out
}

// TestInsertCPIExample41 replays the CPI sequence of Example 4.1: first c
// and e extend <a], then d lands between c and e, then b between c and d,
// producing PRL = <a c b d e].
func TestInsertCPIExample41(t *testing.T) {
	tbl := table1()
	var prl Log
	for _, name := range []string{"a", "c", "e", "d", "b"} {
		prl.InsertCPI(tbl[name])
	}
	if got := names(prl.Slice(), tbl); got != "acbde" {
		t.Fatalf("PRL order = %q, want %q (Example 4.1)", got, "acbde")
	}
	if !IsCausalityPreserved(prl.Slice()) {
		t.Fatal("Example 4.1 PRL not causality-preserved")
	}
}

func TestQueueOperations(t *testing.T) {
	var l Log
	if !l.Empty() || l.Top() != nil || l.Last() != nil || l.Dequeue() != nil {
		t.Fatal("zero-value log not empty")
	}
	tbl := table1()
	l.Enqueue(tbl["a"])
	l.Enqueue(tbl["c"])
	l.Enqueue(tbl["e"])
	if l.Len() != 3 || l.Top() != tbl["a"] || l.Last() != tbl["e"] || l.At(1) != tbl["c"] {
		t.Fatal("enqueue/accessors wrong")
	}
	if got := l.Dequeue(); got != tbl["a"] {
		t.Fatalf("Dequeue = %v, want a", got)
	}
	if l.Len() != 2 || l.Top() != tbl["c"] {
		t.Fatal("state after dequeue wrong")
	}
	s := l.Slice()
	s[0] = nil
	if l.Top() == nil {
		t.Fatal("Slice aliases log storage")
	}
}

func TestDequeueCompaction(t *testing.T) {
	var l Log
	const total = 500
	for i := 1; i <= total; i++ {
		l.Enqueue(dataPDU(0, pdu.Seq(i), []pdu.Seq{pdu.Seq(i)}))
	}
	for i := 1; i <= total; i++ {
		p := l.Dequeue()
		if p == nil || p.SEQ != pdu.Seq(i) {
			t.Fatalf("Dequeue %d = %v", i, p)
		}
	}
	if !l.Empty() {
		t.Fatal("log not empty after draining")
	}
	// Interleaved enqueue/dequeue across the compaction threshold.
	for i := 1; i <= total; i++ {
		l.Enqueue(dataPDU(1, pdu.Seq(i), []pdu.Seq{pdu.Seq(i)}))
		if p := l.Dequeue(); p.SEQ != pdu.Seq(i) {
			t.Fatalf("interleaved Dequeue = %v, want seq %d", p, i)
		}
	}
}

func TestInsertCPIIntoEmptyAndTail(t *testing.T) {
	tbl := table1()
	var l Log
	l.InsertCPI(tbl["a"]) // case (1): empty
	l.InsertCPI(tbl["c"]) // successor of a: tail
	l.InsertCPI(tbl["b"]) // concurrent with both: tail
	if got := names(l.Slice(), tbl); got != "acb" {
		t.Fatalf("order = %q, want acb", got)
	}
}

// TestInsertCPIDisplacement pins the return value: the number of queued
// PDUs the insertion bypassed — 0 for empty-log and tail appends (both
// fast paths and a full scan that finds no successor), the entry count
// behind the insertion point otherwise.
func TestInsertCPIDisplacement(t *testing.T) {
	tbl := table1()
	var prl Log
	steps := []struct {
		name string
		want int
	}{
		{"a", 0}, // empty log
		{"c", 0}, // tail: a ≺ c
		{"e", 0}, // tail: c ≺ e
		{"d", 1}, // lands between c and e: bypasses e
		{"b", 2}, // lands between c and d: bypasses d and e
	}
	for _, s := range steps {
		if got := prl.InsertCPI(tbl[s.name]); got != s.want {
			t.Errorf("InsertCPI(%s) displaced %d, want %d", s.name, got, s.want)
		}
	}
	if got := names(prl.Slice(), tbl); got != "acbde" {
		t.Fatalf("PRL order = %q, want acbde", got)
	}
}

func TestInsertCPIAfterDequeue(t *testing.T) {
	// InsertCPI must respect the logical top after dequeues shifted head.
	tbl := table1()
	var l Log
	l.Enqueue(tbl["a"])
	l.Enqueue(tbl["c"])
	l.Dequeue() // drop a; top is now c
	l.InsertCPI(tbl["e"])
	l.InsertCPI(tbl["d"]) // c ≺ d ≺ e
	if got := names(l.Slice(), tbl); got != "cde" {
		t.Fatalf("order = %q, want cde", got)
	}
}

func TestIsLocalOrderPreserved(t *testing.T) {
	tbl := table1()
	tests := []struct {
		name string
		seq  []string
		want bool
	}{
		{"empty", nil, true},
		{"single", []string{"a"}, true},
		{"in order", []string{"a", "b", "c", "d", "e"}, true},
		{"interleaved ok", []string{"b", "a", "d", "c", "h"}, true},
		{"source regression", []string{"c", "a"}, false},
		{"duplicate", []string{"a", "a"}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var ps []*pdu.PDU
			for _, n := range tt.seq {
				ps = append(ps, tbl[n])
			}
			if got := IsLocalOrderPreserved(ps); got != tt.want {
				t.Errorf("IsLocalOrderPreserved(%v) = %v, want %v", tt.seq, got, tt.want)
			}
		})
	}
}

func TestIsCausalityPreserved(t *testing.T) {
	tbl := table1()
	tests := []struct {
		name string
		seq  []string
		want bool
	}{
		{"paper RL_k <g p q]", []string{"a", "c", "b", "d", "e"}, true},
		{"violates: d before its predecessor c", []string{"a", "d", "c"}, false},
		{"concurrent either way", []string{"b", "c"}, true},
		{"concurrent reversed", []string{"c", "b"}, true},
		{"local order violation is causal violation", []string{"c", "a"}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var ps []*pdu.PDU
			for _, n := range tt.seq {
				ps = append(ps, tbl[n])
			}
			if got := IsCausalityPreserved(ps); got != tt.want {
				t.Errorf("IsCausalityPreserved(%v) = %v, want %v", tt.seq, got, tt.want)
			}
		})
	}
}

func TestIsInformationPreserved(t *testing.T) {
	tbl := table1()
	all := []*pdu.PDU{tbl["a"], tbl["b"], tbl["c"]}
	if !IsInformationPreserved(all, all) {
		t.Error("identical sets should be information-preserved")
	}
	if IsInformationPreserved(all[:2], all) {
		t.Error("missing PDU should fail")
	}
	if !IsInformationPreserved(all, all[:2]) {
		t.Error("superset should pass")
	}
	if !IsInformationPreserved(nil, nil) {
		t.Error("empty vs empty should pass")
	}
}

// TestQuickCPIPreservesCausality inserts random causal histories in random
// arrival orders and checks the CPI invariants: the log is always a
// permutation of what was inserted and always causality-preserved.
func TestQuickCPIPreservesCausality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pdus := randomCausalHistory(rng, 3, 12)
		// Random arrival order.
		rng.Shuffle(len(pdus), func(i, j int) { pdus[i], pdus[j] = pdus[j], pdus[i] })
		var l Log
		for _, p := range pdus {
			l.InsertCPI(p)
		}
		got := l.Slice()
		if len(got) != len(pdus) {
			return false
		}
		return IsCausalityPreserved(got)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// randomCausalHistory builds a plausible run of the protocol: n entities
// broadcast sequenced PDUs, each entity's ACK vector tracking a random
// monotone view of what it has received so far. The result is a set of
// PDUs whose SEQ/ACK fields encode a genuine causal history.
func randomCausalHistory(rng *rand.Rand, n, total int) []*pdu.PDU {
	type state struct {
		seq pdu.Seq
		req []pdu.Seq
	}
	sts := make([]state, n)
	for i := range sts {
		sts[i].seq = 1
		sts[i].req = make([]pdu.Seq, n)
		for j := range sts[i].req {
			sts[i].req[j] = 1
		}
	}
	sent := make(map[pdu.EntityID][]*pdu.PDU)
	var out []*pdu.PDU
	for len(out) < total {
		i := pdu.EntityID(rng.Intn(n))
		st := &sts[i]
		// Maybe "receive" some prefix of another entity's PDUs first.
		j := pdu.EntityID(rng.Intn(n))
		if j != i && len(sent[j]) > 0 {
			k := rng.Intn(len(sent[j]) + 1)
			for _, q := range sent[j][:k] {
				if q.SEQ >= st.req[j] {
					st.req[j] = q.SEQ + 1
					// Transitively learn what q's sender knew.
					for m, a := range q.ACK {
						if a > st.req[m] && pdu.EntityID(m) != i {
							st.req[m] = a
						}
					}
				}
			}
		}
		ack := make([]pdu.Seq, n)
		copy(ack, st.req)
		p := &pdu.PDU{Kind: pdu.KindData, Src: i, SEQ: st.seq, ACK: ack}
		st.seq++
		st.req[i] = p.SEQ + 1 // self-acceptance
		sent[i] = append(sent[i], p)
		out = append(out, p)
	}
	return out
}

func BenchmarkInsertCPI(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	hist := randomCausalHistory(rng, 4, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var l Log
		for _, p := range hist {
			l.InsertCPI(p)
		}
	}
}

func ExampleLog_InsertCPI() {
	a := dataPDU(0, 1, []pdu.Seq{1, 1, 1})
	c := dataPDU(0, 2, []pdu.Seq{2, 1, 1})
	d := dataPDU(1, 1, []pdu.Seq{3, 1, 2})
	var prl Log
	prl.InsertCPI(a)
	prl.InsertCPI(d)
	prl.InsertCPI(c) // lands between a and d: a ≺ c ≺ d
	for _, p := range prl.Slice() {
		fmt.Println(p)
	}
	// Output:
	// DATA s0#1 ack=[1 1 1]
	// DATA s0#2 ack=[2 1 1]
	// DATA s1#1 ack=[3 1 2]
}

// referenceInsertCPI is the unoptimized CPI placement rule, used to pin
// the fast-path implementation.
func referenceInsertCPI(log []*pdu.PDU, p *pdu.PDU) []*pdu.PDU {
	at := len(log)
	for i, q := range log {
		if pdu.CausallyPrecedes(p, q) {
			at = i
			break
		}
	}
	log = append(log, nil)
	copy(log[at+1:], log[at:])
	log[at] = p
	return log
}

// TestInsertCPIFastPathEquivalence interleaves random CPI insertions and
// dequeues — exercising stale successor-witness bounds and the
// empty-log reset — and checks the optimized Log places every PDU
// exactly where the reference rule does.
func TestInsertCPIFastPathEquivalence(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		// Simulate n entities gossiping so ACK vectors are realistic
		// snapshots, with enough slack that concurrent PDUs occur.
		next := make([]pdu.Seq, n)
		seen := make([][]pdu.Seq, n)
		for i := range seen {
			seen[i] = make([]pdu.Seq, n)
			for j := range seen[i] {
				seen[i][j] = 1
			}
			next[i] = 1
		}
		var history []*pdu.PDU
		for step := 0; step < 150; step++ {
			src := pdu.EntityID(rng.Intn(n))
			ack := make([]pdu.Seq, n)
			copy(ack, seen[src])
			p := dataPDU(src, next[src], ack)
			p.ACK[src] = p.SEQ // own entry: accepted self through SEQ
			next[src]++
			seen[src][src] = next[src]
			// Randomly propagate knowledge to another entity, sometimes
			// skipping (models loss/delay), so concurrency is common.
			if dst := rng.Intn(n); rng.Intn(3) > 0 {
				for j := 0; j < n; j++ {
					if p.ACK[j] > seen[dst][j] {
						seen[dst][j] = p.ACK[j]
					}
				}
			}
			history = append(history, p)
		}
		// Insert in a locally shuffled order (bounded displacement keeps
		// it a plausible network reordering) so late stragglers force the
		// slow mid-log insertion path, interleaved with dequeues that
		// leave the successor-witness bounds stale.
		for i := range history {
			j := i + rng.Intn(6)
			if j >= len(history) {
				j = len(history) - 1
			}
			history[i], history[j] = history[j], history[i]
		}
		var l Log
		var ref []*pdu.PDU
		for step, p := range history {
			l.InsertCPI(p)
			ref = referenceInsertCPI(ref, p)
			if rng.Intn(4) == 0 && len(ref) > 0 {
				got := l.Dequeue()
				if got != ref[0] {
					t.Fatalf("seed %d step %d: Dequeue = (%d,%d), want (%d,%d)",
						seed, step, got.Src, got.SEQ, ref[0].Src, ref[0].SEQ)
				}
				ref = ref[1:]
			}
			got, want := l.Slice(), ref
			if len(got) != len(want) {
				t.Fatalf("seed %d step %d: len %d, want %d", seed, step, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d step %d pos %d: (%d,%d), want (%d,%d)",
						seed, step, i, got[i].Src, got[i].SEQ, want[i].Src, want[i].SEQ)
				}
			}
		}
	}
}
