// Package msglog implements the receipt logs of the CO protocol and the
// causality-preserved insertion (CPI) operation of Section 4.4.
//
// Each entity keeps, per the paper:
//
//   - one receipt sublog RRL_j per source j, holding PDUs accepted from j
//     in sequence order, awaiting pre-acknowledgment;
//   - one receipt sublog PRL holding pre-acknowledged PDUs, kept
//     causality-preserved by the CPI operation;
//   - one log ARL holding acknowledged PDUs ready for delivery to the
//     application entity.
//
// The package also provides the ordering predicates of Section 2.2
// (local-order-preserved, causality-preserved) that the test suite uses to
// state protocol invariants.
package msglog

import (
	"cobcast/internal/pdu"
)

// Log is an ordered sequence of PDUs with queue operations. The zero value
// is an empty, ready-to-use log. Dequeue is amortized O(1).
type Log struct {
	pdus []*pdu.PDU
	head int

	// maxAck[j] / maxSeq[j] bound, from above, the ACK[j] entries and
	// the sequence numbers of source-j PDUs ever inserted since the log
	// was last empty. They witness the absence of causal successors: a
	// PDU p with maxAck[p.Src] <= p.SEQ and maxSeq[p.Src] <= p.SEQ has
	// no successor in the log under Theorem 4.1, so InsertCPI may append
	// it at the tail without scanning. Dequeue leaves the bounds stale
	// (overestimates only ever force the slow path, never a wrong
	// placement) and resets them when the log drains empty.
	maxAck []pdu.Seq
	maxSeq []pdu.Seq

	// lastPos[j] is the index (into pdus) of the most recently inserted
	// source-j PDU, or -1 if unknown. Because per-source insertions arrive
	// in ascending SEQ and the log stays causality-preserved, no causal
	// successor of a source-j PDU can sit at or before an earlier
	// source-j PDU — so InsertCPI's successor scan may start just past
	// the hint instead of at the head. Hints are best-effort: each is
	// validated against the resident PDU before use, and an invalid hint
	// only widens the scan back to the head. Allocated by Reserve; logs
	// that skip Reserve run without hints.
	lastPos []int
}

// Reserve pre-sizes the log for a cluster of n entities and an expected
// resident population of c PDUs, so the steady-state hot path neither
// grows the successor-witness bounds nor reallocates the backing array.
// It is optional: the zero-value log grows on demand.
func (l *Log) Reserve(n, c int) {
	if n > len(l.maxAck) {
		l.maxAck = append(l.maxAck, make([]pdu.Seq, n-len(l.maxAck))...)
	}
	if n > len(l.maxSeq) {
		l.maxSeq = append(l.maxSeq, make([]pdu.Seq, n-len(l.maxSeq))...)
	}
	if c > cap(l.pdus) {
		grown := make([]*pdu.PDU, len(l.pdus), c)
		copy(grown, l.pdus)
		l.pdus = grown
	}
	if n > len(l.lastPos) {
		old := len(l.lastPos)
		l.lastPos = append(l.lastPos, make([]int, n-old)...)
		for i := old; i < len(l.lastPos); i++ {
			l.lastPos[i] = -1
		}
	}
}

// notePos records that p now resides at index at, shifting hints that the
// insertion displaced. shifted is true when entries at or past at moved
// one slot right (a middle insert), false for a tail append.
func (l *Log) notePos(p *pdu.PDU, at int, shifted bool) {
	if len(l.lastPos) == 0 {
		return
	}
	if shifted {
		for j, h := range l.lastPos {
			if h >= at {
				l.lastPos[j] = h + 1
			}
		}
	}
	if int(p.Src) < len(l.lastPos) {
		l.lastPos[p.Src] = at
	}
}

// posHint returns the index after the latest resident same-source
// predecessor of p, or l.head when no valid hint exists. The first causal
// successor of p cannot sit at or before that predecessor (pred ≺ p, so
// p ≺ q would make q a successor of pred placed before pred, breaking the
// causality-preserved invariant), so scanning may begin there.
func (l *Log) posHint(p *pdu.PDU) int {
	if int(p.Src) < len(l.lastPos) {
		if h := l.lastPos[p.Src]; h >= l.head && h < len(l.pdus) {
			if q := l.pdus[h]; q != nil && q.Src == p.Src && q.SEQ < p.SEQ {
				return h + 1
			}
		}
	}
	return l.head
}

// Len returns the number of PDUs in the log.
func (l *Log) Len() int { return len(l.pdus) - l.head }

// Empty reports whether the log holds no PDUs.
func (l *Log) Empty() bool { return l.Len() == 0 }

// Top returns the first PDU (the paper's top(L)), or nil if empty.
func (l *Log) Top() *pdu.PDU {
	if l.Empty() {
		return nil
	}
	return l.pdus[l.head]
}

// Last returns the final PDU (the paper's last(L)), or nil if empty.
func (l *Log) Last() *pdu.PDU {
	if l.Empty() {
		return nil
	}
	return l.pdus[len(l.pdus)-1]
}

// At returns the i-th PDU (0 = top). It panics if i is out of range.
func (l *Log) At(i int) *pdu.PDU { return l.pdus[l.head+i] }

// Enqueue appends p at the tail (the paper's enqueue(L, p)).
func (l *Log) Enqueue(p *pdu.PDU) {
	l.pdus = append(l.pdus, p)
	l.noteInsert(p)
	l.notePos(p, len(l.pdus)-1, false)
}

// Dequeue removes and returns the top PDU (the paper's dequeue(L)), or nil
// if the log is empty.
func (l *Log) Dequeue() *pdu.PDU {
	if l.Empty() {
		return nil
	}
	p := l.pdus[l.head]
	l.pdus[l.head] = nil // release for GC
	l.head++
	if l.Empty() {
		// Drained: rewind to the front of the backing array (every slot
		// behind head is already nil) so the head index cannot grow
		// without bound in enqueue/dequeue steady state.
		l.pdus = l.pdus[:0]
		l.head = 0
		l.resetBounds()
	} else if l.head > 64 && l.head*2 >= len(l.pdus) {
		l.compact()
	}
	return p
}

// noteInsert folds p into the successor-witness bounds.
func (l *Log) noteInsert(p *pdu.PDU) {
	if n := len(p.ACK); n > len(l.maxAck) {
		l.maxAck = append(l.maxAck, make([]pdu.Seq, n-len(l.maxAck))...)
	}
	if s := int(p.Src) + 1; s > len(l.maxSeq) {
		l.maxSeq = append(l.maxSeq, make([]pdu.Seq, s-len(l.maxSeq))...)
	}
	if p.Delta != nil && p.SEQ >= 2 && l.maxSeq[p.Src] >= p.SEQ-1 {
		// Delta fast path: some PDU q from p.Src with q.SEQ >= p.SEQ-1
		// was folded since the last reset (the maxSeq witness). ACK
		// vectors are monotone per source, so for every index outside
		// Delta, p.ACK[j] = pred.ACK[j] <= q.ACK[j] <= maxAck[j] —
		// the bound already covers it (inductively, even if q itself
		// was folded sparsely). An under-fold here would misplace CPI
		// insertions, hence the conservative witness. The bounds only
		// ever overestimate after dequeues, which is safe in the same
		// direction.
		for _, k := range p.Delta {
			if p.ACK[k] > l.maxAck[k] {
				l.maxAck[k] = p.ACK[k]
			}
		}
	} else {
		for j, a := range p.ACK {
			if a > l.maxAck[j] {
				l.maxAck[j] = a
			}
		}
	}
	if p.SEQ > l.maxSeq[p.Src] {
		l.maxSeq[p.Src] = p.SEQ
	}
}

// resetBounds re-arms the append-at-tail fast path on an empty log.
func (l *Log) resetBounds() {
	for i := range l.maxAck {
		l.maxAck[i] = 0
	}
	for i := range l.maxSeq {
		l.maxSeq[i] = 0
	}
	for i := range l.lastPos {
		l.lastPos[i] = -1
	}
}

// noSuccessorIn reports whether the bounds prove no PDU in the log
// causally follows p (Theorem 4.1: a successor q has q.ACK[p.Src] > p.SEQ,
// or q.Src == p.Src with q.SEQ > p.SEQ).
func (l *Log) noSuccessorIn(p *pdu.PDU) bool {
	if int(p.Src) < len(l.maxAck) && l.maxAck[p.Src] > p.SEQ {
		return false
	}
	if int(p.Src) < len(l.maxSeq) && l.maxSeq[p.Src] > p.SEQ {
		return false
	}
	return true
}

func (l *Log) compact() {
	n := copy(l.pdus, l.pdus[l.head:])
	for i := n; i < len(l.pdus); i++ {
		l.pdus[i] = nil
	}
	for j, h := range l.lastPos {
		if h >= l.head {
			l.lastPos[j] = h - l.head
		} else if h >= 0 {
			l.lastPos[j] = -1
		}
	}
	l.pdus = l.pdus[:n]
	l.head = 0
}

// Slice returns a copy of the log contents from top to last. Mutating the
// returned slice does not affect the log.
func (l *Log) Slice() []*pdu.PDU {
	if l.Empty() {
		return nil
	}
	return l.AppendTo(nil)
}

// AppendTo appends the log contents from top to last onto dst and
// returns the extended slice, reusing dst's capacity — the scratch-friendly
// form of Slice for callers that snapshot repeatedly.
func (l *Log) AppendTo(dst []*pdu.PDU) []*pdu.PDU {
	return append(dst, l.pdus[l.head:]...)
}

// InsertCPI performs the causality-preserved insertion L < p of Section
// 4.4: p is placed immediately before the first PDU q in the log with
// p ≺ q (per Theorem 4.1), or appended at the tail if no such q exists.
// Concurrent PDUs therefore keep their arrival order, matching cases
// (2-2)/(2-3) of the paper's CPI definition. If the log was
// causality-preserved before the call it remains so after, because in a
// causality-preserved log no q' ≺ p can appear at or after the first
// successor of p (q' ≺ p ≺ q would put q' before q).
// In the common case — PDUs arriving in causal order — no entry follows
// p, the successor-witness bounds prove it, and p is appended at the tail
// in O(1) without scanning.
//
// It returns p's displacement: the number of entries p was inserted in
// front of, 0 for a tail append. The successor-witness bounds are
// conservative, so a slow-path scan that finds no successor also
// returns 0.
func (l *Log) InsertCPI(p *pdu.PDU) int {
	if l.noSuccessorIn(p) {
		l.pdus = append(l.pdus, p)
		l.noteInsert(p)
		l.notePos(p, len(l.pdus)-1, false)
		return 0
	}
	// The scan applies pdu.CausallyPrecedes(p, q) unrolled to the
	// one-directional Theorem 4.1 test: this loop runs once per resident
	// PDU and the full Compare would redundantly evaluate q ≺ p too. It
	// starts at the same-source position hint: entries at or before p's
	// latest resident predecessor cannot causally follow p.
	at := len(l.pdus)
	src, seq := p.Src, p.SEQ
	start := l.posHint(p)
	for i := start; i < len(l.pdus); i++ {
		q := l.pdus[i]
		if q.Src == src {
			if seq < q.SEQ {
				at = i
				break
			}
		} else if seq < q.ACK[src] {
			at = i
			break
		}
	}
	displaced := len(l.pdus) - at
	l.pdus = append(l.pdus, nil)
	copy(l.pdus[at+1:], l.pdus[at:])
	l.pdus[at] = p
	l.noteInsert(p)
	l.notePos(p, at, displaced != 0)
	return displaced
}

// InsertBySeq inserts p keeping the log sorted by ascending SEQ. It is
// meant for logs holding PDUs from a single source, where SEQ is a total
// order. The common case — p's SEQ above every entry — appends at the
// tail in O(1); a late straggler shifts the larger entries right.
func (l *Log) InsertBySeq(p *pdu.PDU) {
	at := len(l.pdus)
	for at > l.head && l.pdus[at-1].SEQ > p.SEQ {
		at--
	}
	l.pdus = append(l.pdus, nil)
	copy(l.pdus[at+1:], l.pdus[at:])
	l.pdus[at] = p
	l.noteInsert(p)
	l.notePos(p, at, at != len(l.pdus)-1)
}

// IsCausalityPreserved reports whether the sequence satisfies the
// causality-preserved property of Section 2.2: no PDU appears before one
// of its causal predecessors (for all i < j, not pdus[j] ≺ pdus[i]).
func IsCausalityPreserved(pdus []*pdu.PDU) bool {
	for i := range pdus {
		for j := i + 1; j < len(pdus); j++ {
			if pdu.CausallyPrecedes(pdus[j], pdus[i]) {
				return false
			}
		}
	}
	return true
}

// IsLocalOrderPreserved reports whether the sequence satisfies the
// local-order-preserved property of Section 2.2: PDUs from each source
// appear in strictly increasing sequence order.
func IsLocalOrderPreserved(pdus []*pdu.PDU) bool {
	last := make(map[pdu.EntityID]pdu.Seq)
	for _, p := range pdus {
		if prev, ok := last[p.Src]; ok && p.SEQ <= prev {
			return false
		}
		last[p.Src] = p.SEQ
	}
	return true
}

// IsInformationPreserved reports whether received contains every PDU of
// sent (matched by source and sequence number): the
// information-preserved property of Section 2.2 restricted to a known
// sent set.
func IsInformationPreserved(received, sent []*pdu.PDU) bool {
	type key struct {
		src pdu.EntityID
		seq pdu.Seq
	}
	have := make(map[key]bool, len(received))
	for _, p := range received {
		have[key{p.Src, p.SEQ}] = true
	}
	for _, p := range sent {
		if !have[key{p.Src, p.SEQ}] {
			return false
		}
	}
	return true
}
