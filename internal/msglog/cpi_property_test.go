package msglog

import (
	"math/rand"
	"testing"

	"cobcast/internal/pdu"
)

// history is a valid causal broadcast history: the PDUs in global
// creation order, each stamped with its source's ACK view at send time.
type history struct {
	n    int
	pdus []*pdu.PDU
}

// genHistory simulates n sources broadcasting msgs sequenced PDUs with
// protocol-faithful ACK stamps. Each source's view holds the next
// sequence number it expects from every source; a view entry advances
// only by in-order, causally closed acceptance: a source takes a PDU
// only once its view dominates the PDU's own ACK stamp, the state the CO
// pipeline guarantees before a PDU reaches the PRL (gaps are repaired by
// RET and pre-acknowledgment waits for cluster-wide acceptance). Under
// causal closure the Theorem 4.1 test is a strict partial order — it
// coincides with true causal precedence — which is exactly the regime in
// which CPI's insert-before-first-successor rule is order-independent.
// (Without closure the sequence-number test is not transitive and no
// insertion discipline could keep every pair ordered.)
func genHistory(rng *rand.Rand, n, msgs int) history {
	view := make([][]pdu.Seq, n) // view[i][j]: next SEQ i expects from j
	for i := range view {
		view[i] = make([]pdu.Seq, n)
		for j := range view[i] {
			view[i][j] = 1
		}
	}
	h := history{n: n}
	sent := make([]pdu.Seq, n) // highest SEQ broadcast by each source
	bySrc := make([][]*pdu.PDU, n)
	dominates := func(view []pdu.Seq, ack []pdu.Seq) bool {
		for k := range ack {
			if view[k] < ack[k] {
				return false
			}
		}
		return true
	}
	for len(h.pdus) < msgs {
		i := rng.Intn(n)
		if rng.Intn(2) == 0 {
			// i broadcasts: stamp with its current view, then self-accept.
			ack := make([]pdu.Seq, n)
			copy(ack, view[i])
			sent[i]++
			p := &pdu.PDU{
				Kind: pdu.KindData, Src: pdu.EntityID(i), SEQ: sent[i], ACK: ack,
				LSrc: pdu.NoEntity,
			}
			h.pdus = append(h.pdus, p)
			bySrc[i] = append(bySrc[i], p)
			view[i][i] = sent[i] + 1
			continue
		}
		// i accepts the next in-order PDU from a random other source, if
		// one exists and i already holds its causal past.
		j := rng.Intn(n)
		if j == i || view[i][j] > sent[j] {
			continue
		}
		if m := bySrc[j][view[i][j]-1]; dominates(view[i], m.ACK) {
			view[i][j]++
		}
	}
	return h
}

// TestCPIPropertyRandomInterleavings is the CPI correctness property:
// inserting the PDUs of a valid causal history into an empty log in ANY
// order via InsertCPI yields a causality-preserved (hence local-order-
// preserved) permutation of the history. Runs well over 1k seeded
// shuffles across varying cluster sizes and history lengths.
func TestCPIPropertyRandomInterleavings(t *testing.T) {
	shuffles := 1500
	if testing.Short() {
		shuffles = 200
	}
	for seed := 0; seed < shuffles; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := 2 + rng.Intn(5)
		msgs := 10 + rng.Intn(31)
		h := genHistory(rng, n, msgs)

		shuffled := make([]*pdu.PDU, len(h.pdus))
		copy(shuffled, h.pdus)
		rng.Shuffle(len(shuffled), func(a, b int) {
			shuffled[a], shuffled[b] = shuffled[b], shuffled[a]
		})

		var l Log
		for _, p := range shuffled {
			l.InsertCPI(p)
		}
		got := l.Slice()
		if len(got) != len(h.pdus) {
			t.Fatalf("seed %d: log has %d PDUs, inserted %d", seed, len(got), len(h.pdus))
		}
		if !IsCausalityPreserved(got) {
			t.Fatalf("seed %d (n=%d, %d msgs): log not causality-preserved after shuffle",
				seed, n, msgs)
		}
		if !IsLocalOrderPreserved(got) {
			t.Fatalf("seed %d: log not local-order-preserved after shuffle", seed)
		}
		if !IsInformationPreserved(got, h.pdus) || !IsInformationPreserved(h.pdus, got) {
			t.Fatalf("seed %d: log is not a permutation of the history", seed)
		}
	}
}

// TestCPIPropertyWorstCaseOrders drives the same property through the
// adversarial fixed orders a random shuffle rarely produces: fully
// reversed and interleaved-by-source histories.
func TestCPIPropertyWorstCaseOrders(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := genHistory(rng, 4, 32)
		reversed := make([]*pdu.PDU, len(h.pdus))
		for i, p := range h.pdus {
			reversed[len(h.pdus)-1-i] = p
		}
		orders := [][]*pdu.PDU{h.pdus, reversed}
		for oi, order := range orders {
			var l Log
			for _, p := range order {
				l.InsertCPI(p)
			}
			got := l.Slice()
			if !IsCausalityPreserved(got) || !IsLocalOrderPreserved(got) {
				t.Fatalf("seed %d order %d: CPI broke ordering", seed, oi)
			}
			if len(got) != len(h.pdus) {
				t.Fatalf("seed %d order %d: lost PDUs", seed, oi)
			}
		}
	}
}
