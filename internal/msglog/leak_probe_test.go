package msglog

import (
	"testing"

	"cobcast/internal/pdu"
)

// Probe: steady-state enqueue-1/dequeue-1 (log drains to empty each cycle).
func TestProbeHeadGrowth(t *testing.T) {
	var l Log
	for i := 0; i < 100000; i++ {
		l.Enqueue(&pdu.PDU{Src: 0, SEQ: pdu.Seq(i), ACK: []pdu.Seq{1, 2}})
		l.Dequeue()
	}
	t.Logf("head=%d len=%d cap=%d", l.head, len(l.pdus), cap(l.pdus))
	if l.head > 1000 {
		t.Errorf("head grew without bound: %d", l.head)
	}
}
