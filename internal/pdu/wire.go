// Wire encoding for PDUs. The format is a fixed header followed by the
// variable-length ACK vector and payload, integrity-protected by a CRC-32
// trailer so the UDP transport can reject corrupted datagrams:
//
//	magic   uint16  0xC0BC
//	version uint8   1
//	kind    uint8
//	flags   uint8   bit0 = NeedAck
//	cid     uint32
//	src     int32
//	seq     uint64
//	buf     uint32
//	lsrc    int32
//	lseq    uint64
//	nack    uint16
//	ack     nack × uint64
//	dlen    uint32
//	data    dlen bytes
//	crc     uint32  (IEEE, over everything before it)
//
// All integers are big-endian.
package pdu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

const (
	// Magic identifies cobcast datagrams on the wire.
	Magic uint16 = 0xC0BC
	// WireVersion is the encoding version emitted by Marshal.
	WireVersion uint8 = 1

	headerSize  = 2 + 1 + 1 + 1 + 4 + 4 + 8 + 4 + 4 + 8 + 2
	trailerSize = 4

	flagNeedAck = 1 << 0
)

// Wire decoding errors.
var (
	ErrTruncated   = errors.New("pdu: truncated datagram")
	ErrBadMagic    = errors.New("pdu: bad magic")
	ErrBadVersion  = errors.New("pdu: unsupported wire version")
	ErrBadChecksum = errors.New("pdu: checksum mismatch")
	ErrBadFlags    = errors.New("pdu: unknown flag bits")
	ErrTooLong     = errors.New("pdu: field too long to encode")
)

// EncodedSize returns the exact number of bytes Marshal will produce.
// It grows linearly with the cluster size via the ACK vector (experiment
// E5 measures this O(n) growth).
func (p *PDU) EncodedSize() int {
	return headerSize + 8*len(p.ACK) + 4 + len(p.Data) + trailerSize
}

// Marshal encodes the PDU into a self-contained datagram.
func (p *PDU) Marshal() ([]byte, error) {
	return p.MarshalAppend(make([]byte, 0, p.EncodedSize()))
}

// MarshalAppend encodes the PDU as Marshal does, appending the datagram
// to buf and returning the extended slice. With a buf of sufficient
// capacity the steady-state send path allocates nothing.
func (p *PDU) MarshalAppend(buf []byte) ([]byte, error) {
	if len(p.ACK) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: ACK vector %d entries", ErrTooLong, len(p.ACK))
	}
	if len(p.Data) > math.MaxUint32 {
		return nil, fmt.Errorf("%w: data %d bytes", ErrTooLong, len(p.Data))
	}
	start := len(buf)
	buf = binary.BigEndian.AppendUint16(buf, Magic)
	buf = append(buf, WireVersion, byte(p.Kind))
	var flags byte
	if p.NeedAck {
		flags |= flagNeedAck
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint32(buf, p.CID)
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.Src))
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.SEQ))
	buf = binary.BigEndian.AppendUint32(buf, p.BUF)
	buf = binary.BigEndian.AppendUint32(buf, uint32(p.LSrc))
	buf = binary.BigEndian.AppendUint64(buf, uint64(p.LSeq))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.ACK)))
	for _, a := range p.ACK {
		buf = binary.BigEndian.AppendUint64(buf, uint64(a))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(p.Data)))
	buf = append(buf, p.Data...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
	return buf, nil
}

// Unmarshal decodes a datagram produced by Marshal. The returned PDU owns
// freshly allocated ACK and Data slices.
func Unmarshal(b []byte) (*PDU, error) {
	p := new(PDU)
	if err := p.UnmarshalFrom(b); err != nil {
		return nil, err
	}
	return p, nil
}

// UnmarshalFrom decodes a datagram produced by Marshal into p, reusing
// the capacity of p.ACK and p.Data — a scratch PDU decoded in a loop
// allocates nothing once its slices have grown. Every field of p is
// overwritten; on error p's contents are unspecified. The decoded slices
// copy out of b, so b may be recycled as soon as the call returns.
func (p *PDU) UnmarshalFrom(b []byte) error {
	// Magic and version are checked before anything else so that a
	// datagram from a peer speaking another codec version fails with
	// the typed ErrBadVersion whatever its length.
	if len(b) >= 3 {
		if m := binary.BigEndian.Uint16(b[0:2]); m != Magic {
			return fmt.Errorf("%w: %04x", ErrBadMagic, m)
		}
		if v := b[2]; v != WireVersion {
			return fmt.Errorf("%w: %d", ErrBadVersion, v)
		}
	}
	if len(b) < headerSize+4+trailerSize {
		return fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	body, crcBytes := b[:len(b)-trailerSize], b[len(b)-trailerSize:]
	if got, want := crc32.ChecksumIEEE(body), binary.BigEndian.Uint32(crcBytes); got != want {
		return fmt.Errorf("%w: got %08x want %08x", ErrBadChecksum, got, want)
	}
	p.Kind = Kind(body[3])
	// Unknown flag bits are rejected (not silently dropped) so that
	// every accepted datagram re-encodes bit-identically.
	if extra := body[4] &^ flagNeedAck; extra != 0 {
		return fmt.Errorf("%w: %02x", ErrBadFlags, extra)
	}
	p.NeedAck = body[4]&flagNeedAck != 0
	// v1 stamps are always full: a scratch PDU reused across codec
	// versions must not keep a stale v2 delta annotation.
	p.Delta = nil
	p.CID = binary.BigEndian.Uint32(body[5:9])
	p.Src = EntityID(int32(binary.BigEndian.Uint32(body[9:13])))
	p.SEQ = Seq(binary.BigEndian.Uint64(body[13:21]))
	p.BUF = binary.BigEndian.Uint32(body[21:25])
	p.LSrc = EntityID(int32(binary.BigEndian.Uint32(body[25:29])))
	p.LSeq = Seq(binary.BigEndian.Uint64(body[29:37]))
	nack := int(binary.BigEndian.Uint16(body[37:39]))
	rest := body[headerSize:]
	if len(rest) < 8*nack+4 {
		return fmt.Errorf("%w: ACK vector", ErrTruncated)
	}
	if p.ACK == nil || cap(p.ACK) < nack {
		p.ACK = make([]Seq, nack)
	} else {
		p.ACK = p.ACK[:nack]
	}
	for i := range p.ACK {
		p.ACK[i] = Seq(binary.BigEndian.Uint64(rest[8*i:]))
	}
	rest = rest[8*nack:]
	dlen := int(binary.BigEndian.Uint32(rest[:4]))
	rest = rest[4:]
	if len(rest) != dlen {
		return fmt.Errorf("%w: data (have %d want %d)", ErrTruncated, len(rest), dlen)
	}
	p.Data = append(p.Data[:0], rest...)
	return nil
}
