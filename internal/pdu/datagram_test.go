package pdu

import "testing"

func TestDatagramRingTakeTransfersAndRefills(t *testing.T) {
	r := NewDatagramRing(4)
	defer r.Release()
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	for i := 0; i < r.Len(); i++ {
		if got := cap(r.Buf(i)); got != DatagramBufCap {
			t.Fatalf("slot %d cap = %d, want %d", i, got, DatagramBufCap)
		}
	}

	before := r.Buf(1)
	before[0] = 0xAB
	taken := r.Take(1, 10)
	if len(taken) != 10 || cap(taken) != DatagramBufCap {
		t.Fatalf("taken len/cap = %d/%d, want 10/%d", len(taken), cap(taken), DatagramBufCap)
	}
	if taken[0] != 0xAB {
		t.Fatal("Take did not return the slot's previous buffer")
	}
	if &r.Buf(1)[0] == &taken[0] {
		t.Fatal("slot 1 was not refilled with a distinct buffer after Take")
	}
	PutDatagram(taken)
}

// TestDatagramRingLeakProbe drives the ring through the steady-state
// receive cycle — Take a filled slot, recycle the taken buffer — and
// asserts the cycle is allocation-free: every Take is fed by the
// PutDatagram of the previous one, so the ring cannot leak pool buffers
// (a leaked buffer would force the pool to allocate replacements).
func TestDatagramRingLeakProbe(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates, skewing AllocsPerRun")
	}
	r := NewDatagramRing(8)
	defer r.Release()
	allocs := testing.AllocsPerRun(5000, func() {
		for i := 0; i < r.Len(); i++ {
			PutDatagram(r.Take(i, 100))
		}
	})
	// GC may empty the sync.Pool between runs; allow a stray refill but
	// reject per-Take allocation (which would be >= 8 per run).
	if allocs > 1 {
		t.Fatalf("Take/PutDatagram cycle allocates %.1f/run, want ~0", allocs)
	}
}

func TestDatagramRingReleaseIdempotent(t *testing.T) {
	r := NewDatagramRing(2)
	r.Release()
	r.Release() // must not double-put or panic
}
