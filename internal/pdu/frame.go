// Batch frame encoding: the wire unit exchanged by cobcast transports.
// A frame is a versioned header followed by a length-prefixed sequence of
// PDU datagrams, so every PDU an entity produces while draining its input
// queue can ride in one datagram (one syscall, one header, one channel
// hop) instead of one datagram each:
//
//	magic   uint16  0xC0BF
//	version uint8   1
//	count   uint16  number of PDUs
//	count × {
//	  plen  uint32  length of the PDU encoding
//	  pdu   plen bytes (Marshal output, self-checksummed)
//	}
//
// Version 2 keeps this layout with v2 PDU entries; version 3 widens the
// header with an entry-codec byte and a uint32 group ID (see
// FrameVersion3) so one transport can carry many independent ordered
// groups.
//
// All integers are big-endian. Frames carry no checksum of their own:
// each entry is integrity-protected by the PDU codec's CRC-32 trailer,
// and the frame structure is validated field by field so a truncated or
// corrupt frame errors out without panicking or over-reading.
//
// Ordering contract: a frame preserves the append order of its PDUs, and
// decoders hand PDUs back in exactly that order, so a transport that
// keeps per-sender frame order automatically keeps per-sender PDU order
// within and across frames — the MC service contract.
package pdu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

const (
	// FrameMagic identifies cobcast batch frames on the wire.
	FrameMagic uint16 = 0xC0BF
	// FrameVersion is the frame-encoding version emitted by
	// FrameEncoder.Begin; its entries are v1 PDU datagrams.
	FrameVersion uint8 = 1
	// FrameVersion2 marks frames whose entries are wire codec v2
	// datagrams (varint fields, delta-encoded ACK stamps). The frame
	// version is the negotiation point: decoders accept both versions
	// and dispatch each entry to the matching PDU codec, so a v2 entry
	// inside a v1 frame (or vice versa) fails with the entry codec's
	// typed ErrBadVersion.
	FrameVersion2 uint8 = 2
	// FrameVersion3 marks group-addressed frames. A v3 header widens to
	//
	//	magic   uint16  0xC0BF
	//	version uint8   3
	//	ecodec  uint8   entry codec: 1 (v1 PDUs) or 2 (v2 delta-stamp PDUs)
	//	group   uint32  group ID, 1..MaxGroupID (0 = default group)
	//	count   uint16  number of PDUs
	//
	// separating the frame layout version from the entry codec (v1/v2
	// frames conflate them). Like v1/v2 the version is negotiated
	// per-frame: every decoder accepts all three, so single-group v1/v2
	// traffic — which is what the default group keeps emitting — decodes
	// unchanged and maps to group 0.
	FrameVersion3 uint8 = 3

	// FrameHeaderSize is the fixed v1/v2 frame header length in bytes.
	FrameHeaderSize = 2 + 1 + 2
	// FrameHeaderSizeV3 is the group-addressed frame header length.
	FrameHeaderSizeV3 = 2 + 1 + 1 + 4 + 2
	// FrameEntrySize is the per-PDU framing overhead (the length prefix).
	FrameEntrySize = 4

	// MaxFramePDUs is the most PDUs one frame can carry.
	MaxFramePDUs = math.MaxUint16

	// MaxGroupID bounds valid group IDs on the wire. The group field is
	// a uint32 but IDs are confined to 28 bits so a corrupted header is
	// overwhelmingly likely to land out of range and be counted as an
	// unknown-group drop instead of feeding a bogus group to the runtime.
	MaxGroupID uint32 = 1<<28 - 1
)

// Frame decoding errors.
var (
	ErrFrameTruncated  = errors.New("pdu: truncated batch frame")
	ErrBadFrameMagic   = errors.New("pdu: bad frame magic")
	ErrBadFrameVersion = errors.New("pdu: unsupported frame version")
	ErrFrameTrailing   = errors.New("pdu: trailing bytes after batch frame")
	ErrFrameFull       = errors.New("pdu: batch frame full")
	// ErrBadFrameGroup marks a v3 frame whose group ID exceeds
	// MaxGroupID; receivers count it as an unknown-group drop.
	ErrBadFrameGroup = errors.New("pdu: frame group ID out of range")
	// ErrBadEntryCodec marks a v3 frame whose entry-codec byte names
	// neither wire codec v1 nor v2.
	ErrBadEntryCodec = errors.New("pdu: unsupported frame entry codec")
)

// FrameEncoder builds a batch frame by appending PDUs into a caller-owned
// buffer. With a buffer of sufficient capacity the steady-state encode
// path allocates nothing. The zero value is ready for Begin.
type FrameEncoder struct {
	buf   []byte
	start int
	count int
	// frame is the header layout version (1, 2 or 3); version is the
	// entry codec (WireVersion or WireVersion2). For v1/v2 frames the
	// two coincide; a v3 header carries the entry codec explicitly.
	frame   uint8
	version uint8
	stamps  *StampEncoder
}

// Begin starts a new v1 frame, appending its header to buf. Any frame in
// progress is discarded.
func (e *FrameEncoder) Begin(buf []byte) {
	e.beginVersion(buf, FrameVersion)
	e.stamps = nil
}

// BeginV2 starts a new v2 frame whose entries are encoded with wire
// codec v2 against st's reference stamp. st persists across frames (it
// tracks the sender's whole outgoing stream); nil st forces a full stamp
// on every entry.
func (e *FrameEncoder) BeginV2(buf []byte, st *StampEncoder) {
	e.beginVersion(buf, FrameVersion2)
	e.stamps = st
}

// BeginGroup starts a new v3 group-addressed frame carrying entries in
// the given codec (WireVersion or WireVersion2; anything else is encoded
// as WireVersion). group must be <= MaxGroupID — each group is its own
// sequence space, so for codec v2 the stamp encoder st must be dedicated
// to this group's stream (nil st: all entries full-stamped).
func (e *FrameEncoder) BeginGroup(buf []byte, group uint32, ecodec uint8, st *StampEncoder) {
	e.start = len(buf)
	buf = binary.BigEndian.AppendUint16(buf, FrameMagic)
	if ecodec != WireVersion2 {
		ecodec = WireVersion
	}
	buf = append(buf, FrameVersion3, ecodec)
	buf = binary.BigEndian.AppendUint32(buf, group)
	e.buf = append(buf, 0, 0) // count patched by Bytes
	e.count = 0
	e.frame = FrameVersion3
	e.version = ecodec
	if ecodec == WireVersion2 {
		e.stamps = st
	} else {
		e.stamps = nil
	}
}

func (e *FrameEncoder) beginVersion(buf []byte, v uint8) {
	e.start = len(buf)
	buf = binary.BigEndian.AppendUint16(buf, FrameMagic)
	e.buf = append(buf, v, 0, 0) // count patched by Bytes
	e.count = 0
	e.frame = v
	e.version = v
}

// Append encodes p as the frame's next entry, with the entry codec the
// frame was begun with. On error the frame (and, for v2, the stamp
// encoder) is left exactly as before the call.
func (e *FrameEncoder) Append(p *PDU) error {
	if e.count >= MaxFramePDUs {
		return ErrFrameFull
	}
	lenOff := len(e.buf)
	buf := append(e.buf, 0, 0, 0, 0)
	var err error
	if e.version == FrameVersion2 {
		buf, err = p.MarshalAppendV2(buf, e.stamps)
	} else {
		buf, err = p.MarshalAppend(buf)
	}
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint32(buf[lenOff:], uint32(len(buf)-lenOff-FrameEntrySize))
	e.buf = buf
	e.count++
	return nil
}

// Count returns the number of PDUs appended since Begin.
func (e *FrameEncoder) Count() int { return e.count }

// Size returns the frame's current encoded size in bytes.
func (e *FrameEncoder) Size() int { return len(e.buf) - e.start }

// Bytes seals the frame (patching the entry count into the header) and
// returns the buffer passed to Begin extended with the complete frame.
// The encoder may be reused with Begin afterwards.
func (e *FrameEncoder) Bytes() []byte {
	countOff := e.start + 3
	if e.frame == FrameVersion3 {
		countOff = e.start + FrameHeaderSizeV3 - 2
	}
	binary.BigEndian.PutUint16(e.buf[countOff:], uint16(e.count))
	return e.buf
}

// EncodeFrame is a convenience wrapper marshaling a batch into one frame.
func EncodeFrame(batch []*PDU) ([]byte, error) {
	var e FrameEncoder
	e.Begin(nil)
	for _, p := range batch {
		if err := e.Append(p); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

// EncodeFrameV2 marshals a batch into one v2 frame against st's
// reference stamp (nil st: all entries full-stamped).
func EncodeFrameV2(batch []*PDU, st *StampEncoder) ([]byte, error) {
	var e FrameEncoder
	e.BeginV2(nil, st)
	for _, p := range batch {
		if err := e.Append(p); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

// EncodeFrameGroup marshals a batch into one v3 group-addressed frame
// with the given entry codec (st as in EncodeFrameV2, used only for
// codec v2).
func EncodeFrameGroup(batch []*PDU, group uint32, ecodec uint8, st *StampEncoder) ([]byte, error) {
	var e FrameEncoder
	e.BeginGroup(nil, group, ecodec, st)
	for _, p := range batch {
		if err := e.Append(p); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

// FrameGroup peeks the group ID out of an encoded frame without decoding
// it: v1/v2 frames are the default group (0, true), v3 frames return
// their header's group field unvalidated — callers treat IDs above
// MaxGroupID as unknown-group drops. ok is false when b is too short or
// not a frame at all; such datagrams belong on the default decode path,
// whose terminal error accounts for them as loss.
func FrameGroup(b []byte) (group uint32, ok bool) {
	if len(b) < FrameHeaderSize || binary.BigEndian.Uint16(b) != FrameMagic {
		return 0, false
	}
	switch b[2] {
	case FrameVersion, FrameVersion2:
		return 0, true
	case FrameVersion3:
		if len(b) < FrameHeaderSizeV3 {
			return 0, false
		}
		return binary.BigEndian.Uint32(b[4:8]), true
	}
	return 0, false
}

// FrameDecoder iterates the PDUs of a batch frame in place. It performs
// no allocation of its own; decoding into a reused scratch PDU keeps the
// steady-state receive path allocation-free. Every error is terminal:
// once Reset or Next fails, subsequent Next calls return the same error,
// so a malformed frame can never cause an over-read or a stuck loop.
type FrameDecoder struct {
	rest      []byte
	remaining int
	err       error
	version   uint8
	group     uint32
	stamps    *StampDecoder
}

// SetStampDecoder attaches the per-source stamp cache used to resolve
// delta-encoded entries of v2 frames. The cache persists across Reset
// calls — it mirrors the senders' streams, not one frame. Without it,
// delta entries fail with ErrDeltaDesync (full-stamp entries still
// decode).
func (d *FrameDecoder) SetStampDecoder(sd *StampDecoder) { d.stamps = sd }

// Reset points the decoder at frame b, validating the header. Frame
// versions 1, 2 and 3 are all accepted; the version (for v3, the entry
// codec byte) selects the entry codec for Next. The decoder reads from b
// in place, so b must stay alive and unmodified until the last Next.
func (d *FrameDecoder) Reset(b []byte) error {
	d.rest, d.remaining, d.group = nil, 0, 0
	if len(b) < FrameHeaderSize {
		d.err = fmt.Errorf("%w: %d header bytes", ErrFrameTruncated, len(b))
		return d.err
	}
	if m := binary.BigEndian.Uint16(b); m != FrameMagic {
		d.err = fmt.Errorf("%w: %04x", ErrBadFrameMagic, m)
		return d.err
	}
	switch v := b[2]; v {
	case FrameVersion, FrameVersion2:
		d.version = v
		d.remaining = int(binary.BigEndian.Uint16(b[3:5]))
		d.rest = b[FrameHeaderSize:]
	case FrameVersion3:
		if len(b) < FrameHeaderSizeV3 {
			d.err = fmt.Errorf("%w: %d header bytes for v3", ErrFrameTruncated, len(b))
			return d.err
		}
		if ec := b[3]; ec != WireVersion && ec != WireVersion2 {
			d.err = fmt.Errorf("%w: %d", ErrBadEntryCodec, ec)
			return d.err
		}
		if g := binary.BigEndian.Uint32(b[4:8]); g > MaxGroupID {
			d.err = fmt.Errorf("%w: %d", ErrBadFrameGroup, g)
			return d.err
		}
		d.version = b[3]
		d.group = binary.BigEndian.Uint32(b[4:8])
		d.remaining = int(binary.BigEndian.Uint16(b[8:10]))
		d.rest = b[FrameHeaderSizeV3:]
	default:
		d.err = fmt.Errorf("%w: %d", ErrBadFrameVersion, v)
		return d.err
	}
	d.err = nil
	return nil
}

// Version reports the entry codec version of the frame last Reset
// (WireVersion or WireVersion2 — for v3 frames, the header's entry-codec
// byte), 0 if none was accepted yet.
func (d *FrameDecoder) Version() uint8 { return d.version }

// Group reports the group ID of the frame last Reset: the v3 header
// field, or 0 (the default group) for v1/v2 frames.
func (d *FrameDecoder) Group() uint32 { return d.group }

// Next decodes the frame's next PDU into p (overwriting every field and
// reusing p's ACK/Data capacity). It returns false with a nil error when
// the frame is exhausted; false with an error when the frame is
// malformed, after which the decoder stays in the error state.
func (d *FrameDecoder) Next(p *PDU) (bool, error) {
	if d.err != nil {
		return false, d.err
	}
	if d.remaining == 0 {
		if len(d.rest) != 0 {
			d.err = fmt.Errorf("%w: %d bytes", ErrFrameTrailing, len(d.rest))
			return false, d.err
		}
		return false, nil
	}
	if len(d.rest) < FrameEntrySize {
		d.err = fmt.Errorf("%w: entry prefix", ErrFrameTruncated)
		return false, d.err
	}
	plen := binary.BigEndian.Uint32(d.rest)
	if uint64(plen) > uint64(len(d.rest)-FrameEntrySize) {
		d.err = fmt.Errorf("%w: entry of %d bytes, %d left", ErrFrameTruncated, plen, len(d.rest)-FrameEntrySize)
		return false, d.err
	}
	entry := d.rest[FrameEntrySize : FrameEntrySize+plen]
	d.rest = d.rest[FrameEntrySize+plen:]
	d.remaining--
	var err error
	if d.version == FrameVersion2 {
		err = p.UnmarshalFromV2(entry, d.stamps)
	} else {
		err = p.UnmarshalFrom(entry)
	}
	if err != nil {
		d.err = err
		return false, d.err
	}
	return true, nil
}
