// Batch frame encoding: the wire unit exchanged by cobcast transports.
// A frame is a versioned header followed by a length-prefixed sequence of
// PDU datagrams, so every PDU an entity produces while draining its input
// queue can ride in one datagram (one syscall, one header, one channel
// hop) instead of one datagram each:
//
//	magic   uint16  0xC0BF
//	version uint8   1
//	count   uint16  number of PDUs
//	count × {
//	  plen  uint32  length of the PDU encoding
//	  pdu   plen bytes (Marshal output, self-checksummed)
//	}
//
// All integers are big-endian. Frames carry no checksum of their own:
// each entry is integrity-protected by the PDU codec's CRC-32 trailer,
// and the frame structure is validated field by field so a truncated or
// corrupt frame errors out without panicking or over-reading.
//
// Ordering contract: a frame preserves the append order of its PDUs, and
// decoders hand PDUs back in exactly that order, so a transport that
// keeps per-sender frame order automatically keeps per-sender PDU order
// within and across frames — the MC service contract.
package pdu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

const (
	// FrameMagic identifies cobcast batch frames on the wire.
	FrameMagic uint16 = 0xC0BF
	// FrameVersion is the frame-encoding version emitted by
	// FrameEncoder.Begin; its entries are v1 PDU datagrams.
	FrameVersion uint8 = 1
	// FrameVersion2 marks frames whose entries are wire codec v2
	// datagrams (varint fields, delta-encoded ACK stamps). The frame
	// version is the negotiation point: decoders accept both versions
	// and dispatch each entry to the matching PDU codec, so a v2 entry
	// inside a v1 frame (or vice versa) fails with the entry codec's
	// typed ErrBadVersion.
	FrameVersion2 uint8 = 2

	// FrameHeaderSize is the fixed frame header length in bytes.
	FrameHeaderSize = 2 + 1 + 2
	// FrameEntrySize is the per-PDU framing overhead (the length prefix).
	FrameEntrySize = 4

	// MaxFramePDUs is the most PDUs one frame can carry.
	MaxFramePDUs = math.MaxUint16
)

// Frame decoding errors.
var (
	ErrFrameTruncated  = errors.New("pdu: truncated batch frame")
	ErrBadFrameMagic   = errors.New("pdu: bad frame magic")
	ErrBadFrameVersion = errors.New("pdu: unsupported frame version")
	ErrFrameTrailing   = errors.New("pdu: trailing bytes after batch frame")
	ErrFrameFull       = errors.New("pdu: batch frame full")
)

// FrameEncoder builds a batch frame by appending PDUs into a caller-owned
// buffer. With a buffer of sufficient capacity the steady-state encode
// path allocates nothing. The zero value is ready for Begin.
type FrameEncoder struct {
	buf     []byte
	start   int
	count   int
	version uint8
	stamps  *StampEncoder
}

// Begin starts a new v1 frame, appending its header to buf. Any frame in
// progress is discarded.
func (e *FrameEncoder) Begin(buf []byte) {
	e.beginVersion(buf, FrameVersion)
	e.stamps = nil
}

// BeginV2 starts a new v2 frame whose entries are encoded with wire
// codec v2 against st's reference stamp. st persists across frames (it
// tracks the sender's whole outgoing stream); nil st forces a full stamp
// on every entry.
func (e *FrameEncoder) BeginV2(buf []byte, st *StampEncoder) {
	e.beginVersion(buf, FrameVersion2)
	e.stamps = st
}

func (e *FrameEncoder) beginVersion(buf []byte, v uint8) {
	e.start = len(buf)
	buf = binary.BigEndian.AppendUint16(buf, FrameMagic)
	e.buf = append(buf, v, 0, 0) // count patched by Bytes
	e.count = 0
	e.version = v
}

// Append encodes p as the frame's next entry, with the entry codec the
// frame was begun with. On error the frame (and, for v2, the stamp
// encoder) is left exactly as before the call.
func (e *FrameEncoder) Append(p *PDU) error {
	if e.count >= MaxFramePDUs {
		return ErrFrameFull
	}
	lenOff := len(e.buf)
	buf := append(e.buf, 0, 0, 0, 0)
	var err error
	if e.version == FrameVersion2 {
		buf, err = p.MarshalAppendV2(buf, e.stamps)
	} else {
		buf, err = p.MarshalAppend(buf)
	}
	if err != nil {
		return err
	}
	binary.BigEndian.PutUint32(buf[lenOff:], uint32(len(buf)-lenOff-FrameEntrySize))
	e.buf = buf
	e.count++
	return nil
}

// Count returns the number of PDUs appended since Begin.
func (e *FrameEncoder) Count() int { return e.count }

// Size returns the frame's current encoded size in bytes.
func (e *FrameEncoder) Size() int { return len(e.buf) - e.start }

// Bytes seals the frame (patching the entry count into the header) and
// returns the buffer passed to Begin extended with the complete frame.
// The encoder may be reused with Begin afterwards.
func (e *FrameEncoder) Bytes() []byte {
	binary.BigEndian.PutUint16(e.buf[e.start+3:], uint16(e.count))
	return e.buf
}

// EncodeFrame is a convenience wrapper marshaling a batch into one frame.
func EncodeFrame(batch []*PDU) ([]byte, error) {
	var e FrameEncoder
	e.Begin(nil)
	for _, p := range batch {
		if err := e.Append(p); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

// EncodeFrameV2 marshals a batch into one v2 frame against st's
// reference stamp (nil st: all entries full-stamped).
func EncodeFrameV2(batch []*PDU, st *StampEncoder) ([]byte, error) {
	var e FrameEncoder
	e.BeginV2(nil, st)
	for _, p := range batch {
		if err := e.Append(p); err != nil {
			return nil, err
		}
	}
	return e.Bytes(), nil
}

// FrameDecoder iterates the PDUs of a batch frame in place. It performs
// no allocation of its own; decoding into a reused scratch PDU keeps the
// steady-state receive path allocation-free. Every error is terminal:
// once Reset or Next fails, subsequent Next calls return the same error,
// so a malformed frame can never cause an over-read or a stuck loop.
type FrameDecoder struct {
	rest      []byte
	remaining int
	err       error
	version   uint8
	stamps    *StampDecoder
}

// SetStampDecoder attaches the per-source stamp cache used to resolve
// delta-encoded entries of v2 frames. The cache persists across Reset
// calls — it mirrors the senders' streams, not one frame. Without it,
// delta entries fail with ErrDeltaDesync (full-stamp entries still
// decode).
func (d *FrameDecoder) SetStampDecoder(sd *StampDecoder) { d.stamps = sd }

// Reset points the decoder at frame b, validating the header. Frame
// versions 1 and 2 are both accepted; the version selects the entry
// codec for Next. The decoder reads from b in place, so b must stay
// alive and unmodified until the last Next.
func (d *FrameDecoder) Reset(b []byte) error {
	d.rest, d.remaining = nil, 0
	if len(b) < FrameHeaderSize {
		d.err = fmt.Errorf("%w: %d header bytes", ErrFrameTruncated, len(b))
		return d.err
	}
	if m := binary.BigEndian.Uint16(b); m != FrameMagic {
		d.err = fmt.Errorf("%w: %04x", ErrBadFrameMagic, m)
		return d.err
	}
	if v := b[2]; v != FrameVersion && v != FrameVersion2 {
		d.err = fmt.Errorf("%w: %d", ErrBadFrameVersion, v)
		return d.err
	}
	d.version = b[2]
	d.remaining = int(binary.BigEndian.Uint16(b[3:5]))
	d.rest = b[FrameHeaderSize:]
	d.err = nil
	return nil
}

// Version reports the entry codec version of the frame last Reset, 0 if
// none was accepted yet.
func (d *FrameDecoder) Version() uint8 { return d.version }

// Next decodes the frame's next PDU into p (overwriting every field and
// reusing p's ACK/Data capacity). It returns false with a nil error when
// the frame is exhausted; false with an error when the frame is
// malformed, after which the decoder stays in the error state.
func (d *FrameDecoder) Next(p *PDU) (bool, error) {
	if d.err != nil {
		return false, d.err
	}
	if d.remaining == 0 {
		if len(d.rest) != 0 {
			d.err = fmt.Errorf("%w: %d bytes", ErrFrameTrailing, len(d.rest))
			return false, d.err
		}
		return false, nil
	}
	if len(d.rest) < FrameEntrySize {
		d.err = fmt.Errorf("%w: entry prefix", ErrFrameTruncated)
		return false, d.err
	}
	plen := binary.BigEndian.Uint32(d.rest)
	if uint64(plen) > uint64(len(d.rest)-FrameEntrySize) {
		d.err = fmt.Errorf("%w: entry of %d bytes, %d left", ErrFrameTruncated, plen, len(d.rest)-FrameEntrySize)
		return false, d.err
	}
	entry := d.rest[FrameEntrySize : FrameEntrySize+plen]
	d.rest = d.rest[FrameEntrySize+plen:]
	d.remaining--
	var err error
	if d.version == FrameVersion2 {
		err = p.UnmarshalFromV2(entry, d.stamps)
	} else {
		err = p.UnmarshalFrom(entry)
	}
	if err != nil {
		d.err = err
		return false, d.err
	}
	return true, nil
}
