package pdu

// Pooled datagram buffers for the send/receive hot path. The UDP
// transport reads every datagram into a pooled buffer and the runtime
// returns it once decoded, so steady-state traffic recycles a handful of
// buffers instead of allocating per PDU.

import "sync"

// DatagramBufCap is the capacity of pooled datagram buffers: 64 KiB, the
// largest payload a UDP datagram can carry, so any datagram fits.
const DatagramBufCap = 64 * 1024

// The pool stores *[DatagramBufCap]byte rather than []byte: a slice put
// into a sync.Pool is boxed into a fresh interface allocation on every
// Put, while an array pointer converts without allocating.
var datagramPool = sync.Pool{
	New: func() any { return new([DatagramBufCap]byte) },
}

// GetDatagram returns an empty buffer with DatagramBufCap capacity from
// the pool. Pass it to PutDatagram when done; dropping it instead is safe
// but defeats the recycling.
func GetDatagram() []byte {
	return datagramPool.Get().(*[DatagramBufCap]byte)[:0]
}

// PutDatagram recycles a buffer obtained from GetDatagram. Any slice of
// the original buffer works regardless of length; buffers with a
// different capacity (not from this pool) are ignored. The caller must
// not touch b afterwards.
func PutDatagram(b []byte) {
	if cap(b) < DatagramBufCap {
		return
	}
	datagramPool.Put((*[DatagramBufCap]byte)(b[:DatagramBufCap]))
}
