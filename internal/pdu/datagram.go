package pdu

// Pooled datagram buffers for the send/receive hot path. The UDP
// transport reads every datagram into a pooled buffer and the runtime
// returns it once decoded, so steady-state traffic recycles a handful of
// buffers instead of allocating per PDU.

import "sync"

// DatagramBufCap is the capacity of pooled datagram buffers: 64 KiB, the
// largest payload a UDP datagram can carry, so any datagram fits.
const DatagramBufCap = 64 * 1024

// The pool stores *[DatagramBufCap]byte rather than []byte: a slice put
// into a sync.Pool is boxed into a fresh interface allocation on every
// Put, while an array pointer converts without allocating.
var datagramPool = sync.Pool{
	New: func() any { return new([DatagramBufCap]byte) },
}

// GetDatagram returns an empty buffer with DatagramBufCap capacity from
// the pool. Pass it to PutDatagram when done; dropping it instead is safe
// but defeats the recycling.
func GetDatagram() []byte {
	return datagramPool.Get().(*[DatagramBufCap]byte)[:0]
}

// PutDatagram recycles a buffer obtained from GetDatagram. Any slice of
// the original buffer works regardless of length; buffers with a
// different capacity (not from this pool) are ignored. The caller must
// not touch b afterwards.
func PutDatagram(b []byte) {
	if cap(b) < DatagramBufCap {
		return
	}
	datagramPool.Put((*[DatagramBufCap]byte)(b[:DatagramBufCap]))
}

// DatagramRing is a fixed-slot ring of pooled datagram buffers for
// batched receive paths (recvmmsg): every slot stays registered with the
// kernel across syscalls (its address is baked into a pre-built iovec),
// and only slots that actually received a datagram are swapped out.
//
// Ownership rules: Buf(i) is scratch the ring owns — the kernel may
// write into it on the next batched read, so its contents are only
// meaningful between a read and the Take for that slot. Take(i, n)
// transfers the slot's buffer (first n bytes) to the caller — who
// releases it with PutDatagram, exactly like a GetDatagram buffer — and
// refills the slot from the pool, so the slot's address changes and any
// iovec pointing at it must be re-pointed via Buf(i). Release returns
// every slot to the pool; the ring must not be used afterwards.
//
// A ring is owned by a single goroutine (the read loop); none of its
// methods are safe for concurrent use.
type DatagramRing struct {
	slots []*[DatagramBufCap]byte
}

// NewDatagramRing returns a ring of k pool-backed slots.
func NewDatagramRing(k int) *DatagramRing {
	r := &DatagramRing{slots: make([]*[DatagramBufCap]byte, k)}
	for i := range r.slots {
		r.slots[i] = datagramPool.Get().(*[DatagramBufCap]byte)
	}
	return r
}

// Len returns the number of slots.
func (r *DatagramRing) Len() int { return len(r.slots) }

// Buf returns slot i's full-capacity buffer for registering with the
// kernel (iovec base/len). The ring retains ownership.
func (r *DatagramRing) Buf(i int) []byte { return r.slots[i][:] }

// Take hands slot i's buffer (first n bytes) to the caller and refills
// the slot with a fresh pooled buffer. The returned slice has
// DatagramBufCap capacity, so PutDatagram recycles it.
func (r *DatagramRing) Take(i, n int) []byte {
	b := r.slots[i]
	r.slots[i] = datagramPool.Get().(*[DatagramBufCap]byte)
	return b[:n]
}

// Release returns every slot to the pool. Idempotent; the ring is dead
// afterwards (Buf/Take would dereference nil).
func (r *DatagramRing) Release() {
	for i, s := range r.slots {
		if s != nil {
			datagramPool.Put(s)
			r.slots[i] = nil
		}
	}
}
