// Package pdu defines the protocol data units (PDUs) exchanged by the
// causally ordering broadcast (CO) protocol, their wire encoding, and the
// sequence-number-based causality relation of Theorem 4.1 of the paper.
//
// The PDU format follows Figure 4 (data PDUs) and Figure 5 (RET PDUs) of
// Nakamura & Takizawa, "Causally Ordering Broadcast Protocol": every PDU
// carries the cluster identifier CID, the source entity SRC, the sequence
// number SEQ assigned by the source, the receipt-confirmation vector
// ACK = <ACK_1 ... ACK_n>, and the advertised free buffer size BUF.
// ACK_j is the sequence number the source expects to receive next from
// entity j, i.e. the source has accepted every PDU q from j with
// q.SEQ < ACK_j. Because ACK carries one entry per cluster member, the PDU
// length is O(n) — measured by experiment E5.
package pdu

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// EntityID identifies a system entity within a cluster. Entities are
// numbered 0..n-1. The zero value is a valid identifier (entity 0), so
// contexts that need a sentinel use NoEntity.
type EntityID int32

// NoEntity is the sentinel "no entity" value used where an EntityID field
// is meaningless (for example LSRC on non-RET PDUs).
const NoEntity EntityID = -1

// Seq is a per-source PDU sequence number. Sources number their sequenced
// PDUs from 1; 0 means "unsequenced" and is carried by control PDUs
// (AckOnly, Ret) that never enter the receipt logs.
type Seq uint64

// Kind discriminates the PDU variants used by the CO protocol.
type Kind uint8

const (
	// KindData is a sequenced PDU carrying application data (the DT PDU of
	// Figure 4). It flows through the full acceptance → pre-acknowledgment
	// → acknowledgment pipeline and is delivered to the application.
	KindData Kind = iota + 1
	// KindSync is a sequenced PDU with empty DATA, emitted by the deferred
	// confirmation rule of Section 5 when an entity has nothing to send
	// but must keep receipt confirmations flowing. It traverses the same
	// pipeline as KindData but is never handed to the application.
	KindSync
	// KindAckOnly is an unsequenced control PDU (SEQ = 0) carrying only
	// the ACK vector and BUF. It is exempt from the flow condition and is
	// used to break window-stall deadlocks; it never enters the logs.
	KindAckOnly
	// KindRet is the retransmission-request PDU of Figure 5. LSRC names
	// the source whose PDUs were lost and LSEQ bounds the missing range:
	// the receiver rebroadcasts its PDUs g with ACK[LSRC] <= g.SEQ < LSEQ.
	KindRet
)

// String returns the mnemonic used in traces and error messages.
func (k Kind) String() string {
	switch k {
	case KindData:
		return "DATA"
	case KindSync:
		return "SYNC"
	case KindAckOnly:
		return "ACKONLY"
	case KindRet:
		return "RET"
	default:
		return "KIND(" + strconv.Itoa(int(k)) + ")"
	}
}

// Sequenced reports whether PDUs of this kind consume a sequence number
// and enter the receipt logs.
func (k Kind) Sequenced() bool { return k == KindData || k == KindSync }

// PDU is a single protocol data unit. Fields mirror Figures 4 and 5 of the
// paper; Kind and NeedAck are implementation additions documented in
// DESIGN.md (control PDUs for liveness, and gossip damping).
type PDU struct {
	// Kind discriminates DATA/SYNC/ACKONLY/RET.
	Kind Kind
	// CID is the cluster identifier; entities discard PDUs whose CID does
	// not match their own cluster.
	CID uint32
	// Src is the source entity that created the PDU.
	Src EntityID
	// SEQ is the per-source sequence number (0 for unsequenced kinds).
	SEQ Seq
	// ACK[j] is the sequence number the source expects next from entity j
	// at the time the PDU was created. len(ACK) == n.
	ACK []Seq
	// BUF is the number of available buffer units at the source.
	BUF uint32
	// NeedAck is set on sequenced PDUs while the source still holds
	// undelivered data; receivers with nothing of their own to confirm
	// respond to NeedAck PDUs so the two-phase acknowledgment keeps
	// making progress after data traffic stops.
	NeedAck bool
	// LSrc is, on RET PDUs, the source whose PDUs were detected lost.
	LSrc EntityID
	// LSeq is, on RET PDUs, the exclusive upper bound of the missing
	// sequence range (F condition (1): the SEQ of the PDU that revealed
	// the gap; F condition (2): the ACK entry that revealed it).
	LSeq Seq
	// Data is the application payload (KindData only).
	Data []byte
	// Delta, when non-nil, lists in ascending order the ACK indices that
	// changed relative to the same source's previous sequenced PDU
	// (SEQ-1). It is a sparse-fold hint, not part of the PDU's identity:
	// nil means "unknown — consider every entry changed". Senders
	// annotate it from their dirty-column stamp (vclock.Stamp) and the
	// v2 wire codec both consumes it on encode and reconstructs it on
	// decode, so the engine can fold only the changed ACK entries into
	// AL/PAL instead of scanning all n.
	//
	// Delta is immutable once attached: Clone shares it rather than
	// copying, so the same annotation flows through fan-out for free.
	// Holders that need a copy outliving the producer's buffers (e.g.
	// decode scratch) call OwnDelta after Clone.
	Delta []Seq
}

// Relation is the outcome of comparing two PDUs under the
// causality-precedence relation of Section 2.2.
type Relation int

const (
	// Precedes means p ≺ q: p was causally sent before q.
	Precedes Relation = iota + 1
	// Follows means q ≺ p.
	Follows
	// Concurrent means neither precedes the other (causality-coincident,
	// written p ∥ q in the paper).
	Concurrent
)

// String returns "≺", "≻" or "∥".
func (r Relation) String() string {
	switch r {
	case Precedes:
		return "≺"
	case Follows:
		return "≻"
	case Concurrent:
		return "∥"
	default:
		return "REL(" + strconv.Itoa(int(r)) + ")"
	}
}

// Compare determines the causality relation between two sequenced PDUs
// using only their sequence numbers and ACK vectors, per Theorem 4.1:
//
//	(1) if p.Src == q.Src:  p ≺ q  iff  p.SEQ < q.SEQ
//	(2) if p.Src != q.Src:  p ≺ q  iff  p.SEQ < q.ACK[p.Src]
//
// Both PDUs must be sequenced and their ACK vectors must cover each
// other's sources; Compare panics otherwise because calling it on control
// PDUs is a programming error, not a runtime condition.
//
// Stamps where each PDU acknowledges the other (a causal cycle) cannot
// arise in any valid protocol history, but can arrive from a corrupt or
// hostile peer whose datagram still passes the checksum. Compare reports
// such contradictory pairs as Concurrent so the relation stays
// antisymmetric on arbitrary inputs rather than answering Precedes in
// both directions.
func Compare(p, q *PDU) Relation {
	if !p.Kind.Sequenced() || !q.Kind.Sequenced() {
		panic("pdu: Compare called on unsequenced PDU")
	}
	if p.Src == q.Src {
		switch {
		case p.SEQ < q.SEQ:
			return Precedes
		case p.SEQ > q.SEQ:
			return Follows
		default:
			return Concurrent // the same PDU; callers treat as coincident
		}
	}
	pBeforeQ := p.SEQ < q.ACK[p.Src]
	qBeforeP := q.SEQ < p.ACK[q.Src]
	switch {
	case pBeforeQ && qBeforeP:
		return Concurrent // contradictory stamps; see above
	case pBeforeQ:
		return Precedes
	case qBeforeP:
		return Follows
	default:
		return Concurrent
	}
}

// CausallyPrecedes reports whether p ≺ q under Theorem 4.1.
func CausallyPrecedes(p, q *PDU) bool { return Compare(p, q) == Precedes }

// Clone returns a deep copy of the PDU. Networks clone PDUs at the
// boundary so that entities never share backing arrays. Delta is shared,
// not copied — it is immutable once attached; call OwnDelta on the clone
// when the source's Delta storage will be reused (decoder scratch).
func (p *PDU) Clone() *PDU {
	q := *p
	if p.ACK != nil {
		q.ACK = make([]Seq, len(p.ACK))
		copy(q.ACK, p.ACK)
	}
	if p.Data != nil {
		q.Data = make([]byte, len(p.Data))
		copy(q.Data, p.Data)
	}
	return &q
}

// OwnDelta replaces a shared Delta annotation with an owned copy and
// returns p for chaining. Callers cloning out of a decoder's scratch PDU
// use it because the scratch Delta is overwritten by the next decode.
func (p *PDU) OwnDelta() *PDU {
	if p.Delta != nil {
		d := make([]Seq, len(p.Delta))
		copy(d, p.Delta)
		p.Delta = d
	}
	return p
}

// Validation errors returned by Validate.
var (
	ErrBadKind   = errors.New("pdu: unknown kind")
	ErrBadSrc    = errors.New("pdu: source out of range")
	ErrBadSeq    = errors.New("pdu: sequence number inconsistent with kind")
	ErrBadACKLen = errors.New("pdu: ACK vector length does not match cluster size")
	ErrBadRet    = errors.New("pdu: RET fields inconsistent")
)

// Validate checks structural well-formedness of the PDU for a cluster of
// n entities.
func (p *PDU) Validate(n int) error {
	switch p.Kind {
	case KindData, KindSync, KindAckOnly, KindRet:
	default:
		return fmt.Errorf("%w: %d", ErrBadKind, p.Kind)
	}
	if p.Src < 0 || int(p.Src) >= n {
		return fmt.Errorf("%w: src=%d n=%d", ErrBadSrc, p.Src, n)
	}
	if p.Kind.Sequenced() && p.SEQ == 0 {
		return fmt.Errorf("%w: sequenced %s with SEQ=0", ErrBadSeq, p.Kind)
	}
	if !p.Kind.Sequenced() && p.SEQ != 0 {
		return fmt.Errorf("%w: unsequenced %s with SEQ=%d", ErrBadSeq, p.Kind, p.SEQ)
	}
	if len(p.ACK) != n {
		return fmt.Errorf("%w: len=%d n=%d", ErrBadACKLen, len(p.ACK), n)
	}
	for _, k := range p.Delta {
		// Seq is unsigned: compare in Seq space so huge indices cannot
		// wrap through an int conversion.
		if k >= Seq(n) {
			return fmt.Errorf("%w: delta index %d n=%d", ErrBadACKLen, k, n)
		}
	}
	if p.Kind == KindRet {
		if p.LSrc < 0 || int(p.LSrc) >= n {
			return fmt.Errorf("%w: lsrc=%d n=%d", ErrBadRet, p.LSrc, n)
		}
		if p.LSeq == 0 {
			return fmt.Errorf("%w: lseq=0", ErrBadRet)
		}
	}
	return nil
}

// String renders a compact human-readable form used by traces and tests,
// for example "DATA s1#3 ack=[4 2 2] len=12".
func (p *PDU) String() string {
	var b strings.Builder
	b.WriteString(p.Kind.String())
	fmt.Fprintf(&b, " s%d", p.Src)
	if p.Kind.Sequenced() {
		fmt.Fprintf(&b, "#%d", p.SEQ)
	}
	b.WriteString(" ack=[")
	for i, a := range p.ACK {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatUint(uint64(a), 10))
	}
	b.WriteByte(']')
	if p.Kind == KindRet {
		fmt.Fprintf(&b, " lost=s%d<%d", p.LSrc, p.LSeq)
	}
	if len(p.Data) > 0 {
		fmt.Fprintf(&b, " len=%d", len(p.Data))
	}
	if p.NeedAck {
		b.WriteString(" need")
	}
	return b.String()
}
