package pdu

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal throws arbitrary bytes at the wire decoder: it must never
// panic, and everything it accepts must re-encode to the identical
// datagram (the codec is canonical).
func FuzzUnmarshal(f *testing.F) {
	seedPDUs := []*PDU{
		{Kind: KindData, CID: 1, Src: 0, SEQ: 1, ACK: []Seq{1, 1}, LSrc: NoEntity, Data: []byte("seed")},
		{Kind: KindSync, CID: 9, Src: 2, SEQ: 7, ACK: []Seq{3, 2, 9}, BUF: 44, NeedAck: true, LSrc: NoEntity},
		{Kind: KindAckOnly, Src: 1, ACK: []Seq{5, 5}, LSrc: NoEntity},
		{Kind: KindRet, Src: 3, ACK: []Seq{1, 2, 3, 4}, LSrc: 1, LSeq: 9},
	}
	for _, p := range seedPDUs {
		b, err := p.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xC0, 0xBC}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("accepted PDU failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("codec not canonical:\n in  %x\n out %x", data, out)
		}
	})
}

// FuzzFrameDecode throws arbitrary bytes at the batch-frame decoder: it
// must never panic or over-read, and any frame it fully accepts must
// re-encode to the identical bytes (the frame codec is canonical).
func FuzzFrameDecode(f *testing.F) {
	seedBatches := [][]*PDU{
		{},
		{{Kind: KindData, CID: 1, Src: 0, SEQ: 1, ACK: []Seq{1, 1}, LSrc: NoEntity, Data: []byte("solo")}},
		{
			{Kind: KindData, CID: 3, Src: 1, SEQ: 4, ACK: []Seq{2, 5, 1}, BUF: 8, LSrc: NoEntity, Data: []byte("a")},
			{Kind: KindSync, CID: 3, Src: 1, SEQ: 5, ACK: []Seq{2, 6, 1}, NeedAck: true, LSrc: NoEntity},
			{Kind: KindAckOnly, CID: 3, Src: 1, ACK: []Seq{2, 6, 2}, LSrc: NoEntity},
			{Kind: KindRet, CID: 3, Src: 1, ACK: []Seq{2, 6, 2}, LSrc: 0, LSeq: 2},
		},
	}
	for _, batch := range seedBatches {
		b, err := EncodeFrame(batch)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xC0, 0xBF})
	f.Add(bytes.Repeat([]byte{0xC0, 0xBF, 0x01}, 20))

	f.Fuzz(func(t *testing.T, data []byte) {
		var d FrameDecoder
		if err := d.Reset(data); err != nil {
			return
		}
		var batch []*PDU
		for {
			var p PDU
			ok, err := d.Next(&p)
			if err != nil {
				// Terminal-error contract: the decoder must keep failing.
				if _, again := d.Next(&p); again == nil {
					t.Fatal("decoder error was not terminal")
				}
				return
			}
			if !ok {
				break
			}
			batch = append(batch, &p)
		}
		out, err := EncodeFrame(batch)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("frame codec not canonical:\n in  %x\n out %x", data, out)
		}
	})
}

// fuzzDatagram is the shared body of the per-kind decoder fuzz targets.
// Accepted datagrams must re-encode canonically, survive a double decode
// with identity fields intact, and decode identically into a dirty
// scratch PDU (slice reuse cannot leak state between datagrams).
// Rejected datagrams must fail in both decoders and leave the scratch
// usable for the next datagram (the terminal-error contract).
func fuzzDatagram(f *testing.F, seeds []*PDU) {
	for _, p := range seeds {
		b, err := p.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		// Corrupted and truncated siblings seed the reject path.
		bad := append([]byte(nil), b...)
		bad[len(bad)-1] ^= 0xFF
		f.Add(bad)
		f.Add(b[:len(b)-3])
	}
	good, err := (&PDU{Kind: KindData, CID: 7, Src: 1, SEQ: 3,
		ACK: []Seq{2, 4}, LSrc: NoEntity, Data: []byte("known-good")}).Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		scratch := &PDU{ACK: []Seq{9, 9, 9}, Data: []byte("dirty-scratch-bytes")}
		fresh, err := Unmarshal(data)
		if err != nil {
			if err2 := scratch.UnmarshalFrom(data); err2 == nil {
				t.Fatalf("UnmarshalFrom accepted what Unmarshal rejected (%v)", err)
			}
			if err := scratch.UnmarshalFrom(good); err != nil {
				t.Fatalf("scratch poisoned by failed decode: %v", err)
			}
			return
		}
		out, err := fresh.Marshal()
		if err != nil {
			t.Fatalf("accepted PDU failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("codec not canonical:\n in  %x\n out %x", data, out)
		}
		q, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-encoded datagram rejected: %v", err)
		}
		if q.Kind != fresh.Kind || q.Src != fresh.Src || q.SEQ != fresh.SEQ ||
			q.LSrc != fresh.LSrc || q.LSeq != fresh.LSeq || q.CID != fresh.CID {
			t.Fatalf("round trip changed identity fields:\n %+v\n %+v", fresh, q)
		}
		if err := scratch.UnmarshalFrom(data); err != nil {
			t.Fatalf("dirty-scratch decode disagreed with fresh decode: %v", err)
		}
		out2, err := scratch.MarshalAppend(nil)
		if err != nil {
			t.Fatalf("scratch re-encode: %v", err)
		}
		if !bytes.Equal(out2, data) {
			t.Fatalf("dirty-scratch decode not canonical:\n in  %x\n out %x", data, out2)
		}
	})
}

// FuzzDTUnmarshal focuses the wire decoder on DT (data transmission)
// datagrams: empty and large payloads, wide ACK vectors, flow-control and
// confirmation flags.
func FuzzDTUnmarshal(f *testing.F) {
	fuzzDatagram(f, []*PDU{
		{Kind: KindData, CID: 1, Src: 0, SEQ: 1, ACK: []Seq{1, 1}, LSrc: NoEntity, Data: []byte("dt")},
		{Kind: KindData, CID: 2, Src: 3, SEQ: 900, ACK: []Seq{5, 0, 17, 2}, BUF: 4096,
			NeedAck: true, LSrc: NoEntity},
		{Kind: KindData, CID: 3, Src: 7, SEQ: 2, ACK: []Seq{1, 1, 1, 1, 1, 1, 1, 2},
			LSrc: NoEntity, Data: bytes.Repeat([]byte{0xAB}, 512)},
	})
}

// FuzzRETUnmarshal focuses the wire decoder on RET (retransmission
// request) datagrams, whose LSrc/LSeq fields address the lost PDU; the
// shared body asserts those survive the round trip.
func FuzzRETUnmarshal(f *testing.F) {
	fuzzDatagram(f, []*PDU{
		{Kind: KindRet, CID: 1, Src: 3, ACK: []Seq{1, 2, 3, 4}, LSrc: 1, LSeq: 9},
		{Kind: KindRet, CID: 5, Src: 0, SEQ: 12, ACK: []Seq{8, 11}, LSrc: 0, LSeq: 1, NeedAck: true},
		{Kind: KindRet, CID: 9, Src: 2, ACK: []Seq{0, 0, 0}, LSrc: 2, LSeq: 1 << 40},
	})
}

// FuzzCompare checks that the Theorem 4.1 relation is antisymmetric for
// arbitrary well-formed PDU pairs.
func FuzzCompare(f *testing.F) {
	f.Add(uint8(0), uint64(1), uint64(2), uint64(3), uint8(1), uint64(2), uint64(1), uint64(9))
	f.Fuzz(func(t *testing.T, srcP uint8, seqP, ackP0, ackP1 uint64,
		srcQ uint8, seqQ, ackQ0, ackQ1 uint64) {
		p := &PDU{Kind: KindData, Src: EntityID(srcP % 2), SEQ: Seq(seqP%1000) + 1,
			ACK: []Seq{Seq(ackP0 % 1000), Seq(ackP1 % 1000)}}
		q := &PDU{Kind: KindData, Src: EntityID(srcQ % 2), SEQ: Seq(seqQ%1000) + 1,
			ACK: []Seq{Seq(ackQ0 % 1000), Seq(ackQ1 % 1000)}}
		pq, qp := Compare(p, q), Compare(q, p)
		switch pq {
		case Precedes:
			if qp != Follows {
				t.Fatalf("%v ≺ %v but reverse %v", p, q, qp)
			}
		case Follows:
			if qp != Precedes {
				t.Fatalf("%v ≻ %v but reverse %v", p, q, qp)
			}
		case Concurrent:
			if p.Src != q.Src || p.SEQ != q.SEQ {
				if qp != Concurrent {
					t.Fatalf("%v ∥ %v but reverse %v", p, q, qp)
				}
			}
		}
	})
}
