package pdu

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal throws arbitrary bytes at the wire decoder: it must never
// panic, and everything it accepts must re-encode to the identical
// datagram (the codec is canonical).
func FuzzUnmarshal(f *testing.F) {
	seedPDUs := []*PDU{
		{Kind: KindData, CID: 1, Src: 0, SEQ: 1, ACK: []Seq{1, 1}, LSrc: NoEntity, Data: []byte("seed")},
		{Kind: KindSync, CID: 9, Src: 2, SEQ: 7, ACK: []Seq{3, 2, 9}, BUF: 44, NeedAck: true, LSrc: NoEntity},
		{Kind: KindAckOnly, Src: 1, ACK: []Seq{5, 5}, LSrc: NoEntity},
		{Kind: KindRet, Src: 3, ACK: []Seq{1, 2, 3, 4}, LSrc: 1, LSeq: 9},
	}
	for _, p := range seedPDUs {
		b, err := p.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xC0, 0xBC}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("accepted PDU failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("codec not canonical:\n in  %x\n out %x", data, out)
		}
	})
}

// FuzzFrameDecode throws arbitrary bytes at the batch-frame decoder: it
// must never panic or over-read, and any frame it fully accepts must
// re-encode to the identical bytes (the frame codec is canonical).
func FuzzFrameDecode(f *testing.F) {
	seedBatches := [][]*PDU{
		{},
		{{Kind: KindData, CID: 1, Src: 0, SEQ: 1, ACK: []Seq{1, 1}, LSrc: NoEntity, Data: []byte("solo")}},
		{
			{Kind: KindData, CID: 3, Src: 1, SEQ: 4, ACK: []Seq{2, 5, 1}, BUF: 8, LSrc: NoEntity, Data: []byte("a")},
			{Kind: KindSync, CID: 3, Src: 1, SEQ: 5, ACK: []Seq{2, 6, 1}, NeedAck: true, LSrc: NoEntity},
			{Kind: KindAckOnly, CID: 3, Src: 1, ACK: []Seq{2, 6, 2}, LSrc: NoEntity},
			{Kind: KindRet, CID: 3, Src: 1, ACK: []Seq{2, 6, 2}, LSrc: 0, LSeq: 2},
		},
	}
	for _, batch := range seedBatches {
		b, err := EncodeFrame(batch)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xC0, 0xBF})
	f.Add(bytes.Repeat([]byte{0xC0, 0xBF, 0x01}, 20))

	f.Fuzz(func(t *testing.T, data []byte) {
		var d FrameDecoder
		if err := d.Reset(data); err != nil {
			return
		}
		var batch []*PDU
		for {
			var p PDU
			ok, err := d.Next(&p)
			if err != nil {
				// Terminal-error contract: the decoder must keep failing.
				if _, again := d.Next(&p); again == nil {
					t.Fatal("decoder error was not terminal")
				}
				return
			}
			if !ok {
				break
			}
			batch = append(batch, &p)
		}
		out, err := EncodeFrame(batch)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("frame codec not canonical:\n in  %x\n out %x", data, out)
		}
	})
}

// FuzzCompare checks that the Theorem 4.1 relation is antisymmetric for
// arbitrary well-formed PDU pairs.
func FuzzCompare(f *testing.F) {
	f.Add(uint8(0), uint64(1), uint64(2), uint64(3), uint8(1), uint64(2), uint64(1), uint64(9))
	f.Fuzz(func(t *testing.T, srcP uint8, seqP, ackP0, ackP1 uint64,
		srcQ uint8, seqQ, ackQ0, ackQ1 uint64) {
		p := &PDU{Kind: KindData, Src: EntityID(srcP % 2), SEQ: Seq(seqP%1000) + 1,
			ACK: []Seq{Seq(ackP0 % 1000), Seq(ackP1 % 1000)}}
		q := &PDU{Kind: KindData, Src: EntityID(srcQ % 2), SEQ: Seq(seqQ%1000) + 1,
			ACK: []Seq{Seq(ackQ0 % 1000), Seq(ackQ1 % 1000)}}
		pq, qp := Compare(p, q), Compare(q, p)
		switch pq {
		case Precedes:
			if qp != Follows {
				t.Fatalf("%v ≺ %v but reverse %v", p, q, qp)
			}
		case Follows:
			if qp != Precedes {
				t.Fatalf("%v ≻ %v but reverse %v", p, q, qp)
			}
		case Concurrent:
			if p.Src != q.Src || p.SEQ != q.SEQ {
				if qp != Concurrent {
					t.Fatalf("%v ∥ %v but reverse %v", p, q, qp)
				}
			}
		}
	})
}
