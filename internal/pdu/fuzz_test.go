package pdu

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

// FuzzUnmarshal throws arbitrary bytes at the wire decoder: it must never
// panic, and everything it accepts must re-encode to the identical
// datagram (the codec is canonical).
func FuzzUnmarshal(f *testing.F) {
	seedPDUs := []*PDU{
		{Kind: KindData, CID: 1, Src: 0, SEQ: 1, ACK: []Seq{1, 1}, LSrc: NoEntity, Data: []byte("seed")},
		{Kind: KindSync, CID: 9, Src: 2, SEQ: 7, ACK: []Seq{3, 2, 9}, BUF: 44, NeedAck: true, LSrc: NoEntity},
		{Kind: KindAckOnly, Src: 1, ACK: []Seq{5, 5}, LSrc: NoEntity},
		{Kind: KindRet, Src: 3, ACK: []Seq{1, 2, 3, 4}, LSrc: 1, LSeq: 9},
	}
	for _, p := range seedPDUs {
		b, err := p.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xC0, 0xBC}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("accepted PDU failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("codec not canonical:\n in  %x\n out %x", data, out)
		}
	})
}

// FuzzFrameDecode throws arbitrary bytes at the batch-frame decoder: it
// must never panic or over-read, and any frame it fully accepts must
// re-encode to the identical bytes (the frame codec is canonical).
func FuzzFrameDecode(f *testing.F) {
	seedBatches := [][]*PDU{
		{},
		{{Kind: KindData, CID: 1, Src: 0, SEQ: 1, ACK: []Seq{1, 1}, LSrc: NoEntity, Data: []byte("solo")}},
		{
			{Kind: KindData, CID: 3, Src: 1, SEQ: 4, ACK: []Seq{2, 5, 1}, BUF: 8, LSrc: NoEntity, Data: []byte("a")},
			{Kind: KindSync, CID: 3, Src: 1, SEQ: 5, ACK: []Seq{2, 6, 1}, NeedAck: true, LSrc: NoEntity},
			{Kind: KindAckOnly, CID: 3, Src: 1, ACK: []Seq{2, 6, 2}, LSrc: NoEntity},
			{Kind: KindRet, CID: 3, Src: 1, ACK: []Seq{2, 6, 2}, LSrc: 0, LSeq: 2},
		},
	}
	for _, batch := range seedBatches {
		b, err := EncodeFrame(batch)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		// The same batches as v2 frames: once full-stamped (nil encoder)
		// and once with a live delta chain.
		b2, err := EncodeFrameV2(batch, nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b2)
		b2d, err := EncodeFrameV2(batch, NewStampEncoder(64))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b2d)
		// The same batches as v3 group-addressed frames: default group
		// with v1 entries, a high-but-valid group with a live delta chain.
		b3, err := EncodeFrameGroup(batch, 7, WireVersion, nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b3)
		b3d, err := EncodeFrameGroup(batch, MaxGroupID, WireVersion2, NewStampEncoder(64))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b3d)
	}
	f.Add([]byte{})
	f.Add([]byte{0xC0, 0xBF})
	f.Add(bytes.Repeat([]byte{0xC0, 0xBF, 0x01}, 20))
	f.Add(bytes.Repeat([]byte{0xC0, 0xBF, 0x02}, 20))
	// Malformed v3 headers: truncated mid-group-ID, overflowing group ID,
	// unknown entry codec — all must fail terminally, never panic.
	f.Add([]byte{0xC0, 0xBF, 0x03})
	f.Add([]byte{0xC0, 0xBF, 0x03, 0x01, 0x00, 0x00})
	f.Add([]byte{0xC0, 0xBF, 0x03, 0x01, 0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x00})
	f.Add([]byte{0xC0, 0xBF, 0x03, 0x07, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		decodeAll := func() ([]*PDU, bool) {
			var d FrameDecoder
			var stamps StampDecoder
			d.SetStampDecoder(&stamps)
			if err := d.Reset(data); err != nil {
				return nil, false
			}
			var batch []*PDU
			for {
				var p PDU
				ok, err := d.Next(&p)
				if err != nil {
					// Terminal-error contract: the decoder must keep failing.
					if _, again := d.Next(&p); again == nil {
						t.Fatal("decoder error was not terminal")
					}
					return nil, false
				}
				if !ok {
					break
				}
				batch = append(batch, p.Clone())
			}
			return batch, true
		}
		batch, ok := decodeAll()
		if !ok {
			return
		}
		// Reset accepted the header, so the layout bytes below exist. The
		// re-encoder mirrors the accepted frame's layout: v3 frames carry
		// their entry codec and group explicitly, v1/v2 conflate them.
		ecodec := data[2]
		reencode := func(b []*PDU) ([]byte, error) { return EncodeFrame(b) }
		switch data[2] {
		case FrameVersion2:
			reencode = func(b []*PDU) ([]byte, error) { return EncodeFrameV2(b, nil) }
		case FrameVersion3:
			ecodec = data[3]
			group := binary.BigEndian.Uint32(data[4:8])
			reencode = func(b []*PDU) ([]byte, error) {
				return EncodeFrameGroup(b, group, ecodec, nil)
			}
		}
		if ecodec == WireVersion2 {
			sawDelta := false
			for _, p := range batch {
				if p.Delta != nil {
					sawDelta = true
				}
			}
			if !sawDelta {
				// Full-stamp-only v2-entry frames are canonical:
				// re-encoding with a stampless encoder reproduces the
				// input.
				out, err := reencode(batch)
				if err != nil {
					t.Fatalf("accepted v2 frame failed to re-encode: %v", err)
				}
				if !bytes.Equal(out, data) {
					t.Fatalf("v2 frame codec not canonical:\n in  %x\n out %x", data, out)
				}
				return
			}
			// Delta entries depend on the sender's stamp state, so byte
			// identity is out of reach; the decode itself must still be
			// deterministic and each reconstructed PDU must survive a
			// stampless v2 round trip.
			again, ok := decodeAll()
			if !ok || len(again) != len(batch) {
				t.Fatalf("v2 frame decode not deterministic: %d vs %d PDUs", len(batch), len(again))
			}
			for i, p := range batch {
				if !wireEqual(p, again[i]) {
					t.Fatalf("v2 frame decode not deterministic at entry %d", i)
				}
				b, err := p.MarshalV2(nil)
				if err != nil {
					t.Fatalf("reconstructed PDU failed to re-encode: %v", err)
				}
				q, err := UnmarshalV2(b, nil)
				if err != nil {
					t.Fatalf("re-encoded reconstruction rejected: %v", err)
				}
				if !wireEqual(p, q) {
					t.Fatalf("reconstruction round trip changed PDU %d", i)
				}
			}
			return
		}
		out, err := reencode(batch)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("frame codec not canonical:\n in  %x\n out %x", data, out)
		}
	})
}

// fuzzDatagram is the shared body of the per-kind decoder fuzz targets.
// Accepted datagrams must re-encode canonically, survive a double decode
// with identity fields intact, and decode identically into a dirty
// scratch PDU (slice reuse cannot leak state between datagrams).
// Rejected datagrams must fail in both decoders and leave the scratch
// usable for the next datagram (the terminal-error contract).
func fuzzDatagram(f *testing.F, seeds []*PDU) {
	for _, p := range seeds {
		b, err := p.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		// Corrupted and truncated siblings seed the reject path.
		bad := append([]byte(nil), b...)
		bad[len(bad)-1] ^= 0xFF
		f.Add(bad)
		f.Add(b[:len(b)-3])
		// The v2 encoding of the same PDU seeds the cross-version
		// rejection path (the v1 decoder must fail it cleanly).
		b2, err := p.MarshalV2(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b2)
	}
	good, err := (&PDU{Kind: KindData, CID: 7, Src: 1, SEQ: 3,
		ACK: []Seq{2, 4}, LSrc: NoEntity, Data: []byte("known-good")}).Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		scratch := &PDU{ACK: []Seq{9, 9, 9}, Data: []byte("dirty-scratch-bytes")}
		fresh, err := Unmarshal(data)
		if err != nil {
			if err2 := scratch.UnmarshalFrom(data); err2 == nil {
				t.Fatalf("UnmarshalFrom accepted what Unmarshal rejected (%v)", err)
			}
			if err := scratch.UnmarshalFrom(good); err != nil {
				t.Fatalf("scratch poisoned by failed decode: %v", err)
			}
			return
		}
		out, err := fresh.Marshal()
		if err != nil {
			t.Fatalf("accepted PDU failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("codec not canonical:\n in  %x\n out %x", data, out)
		}
		q, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-encoded datagram rejected: %v", err)
		}
		if q.Kind != fresh.Kind || q.Src != fresh.Src || q.SEQ != fresh.SEQ ||
			q.LSrc != fresh.LSrc || q.LSeq != fresh.LSeq || q.CID != fresh.CID {
			t.Fatalf("round trip changed identity fields:\n %+v\n %+v", fresh, q)
		}
		if err := scratch.UnmarshalFrom(data); err != nil {
			t.Fatalf("dirty-scratch decode disagreed with fresh decode: %v", err)
		}
		out2, err := scratch.MarshalAppend(nil)
		if err != nil {
			t.Fatalf("scratch re-encode: %v", err)
		}
		if !bytes.Equal(out2, data) {
			t.Fatalf("dirty-scratch decode not canonical:\n in  %x\n out %x", data, out2)
		}
	})
}

// FuzzDTUnmarshal focuses the wire decoder on DT (data transmission)
// datagrams: empty and large payloads, wide ACK vectors, flow-control and
// confirmation flags.
func FuzzDTUnmarshal(f *testing.F) {
	fuzzDatagram(f, []*PDU{
		{Kind: KindData, CID: 1, Src: 0, SEQ: 1, ACK: []Seq{1, 1}, LSrc: NoEntity, Data: []byte("dt")},
		{Kind: KindData, CID: 2, Src: 3, SEQ: 900, ACK: []Seq{5, 0, 17, 2}, BUF: 4096,
			NeedAck: true, LSrc: NoEntity},
		{Kind: KindData, CID: 3, Src: 7, SEQ: 2, ACK: []Seq{1, 1, 1, 1, 1, 1, 1, 2},
			LSrc: NoEntity, Data: bytes.Repeat([]byte{0xAB}, 512)},
	})
}

// FuzzRETUnmarshal focuses the wire decoder on RET (retransmission
// request) datagrams, whose LSrc/LSeq fields address the lost PDU; the
// shared body asserts those survive the round trip.
func FuzzRETUnmarshal(f *testing.F) {
	fuzzDatagram(f, []*PDU{
		{Kind: KindRet, CID: 1, Src: 3, ACK: []Seq{1, 2, 3, 4}, LSrc: 1, LSeq: 9},
		{Kind: KindRet, CID: 5, Src: 0, SEQ: 12, ACK: []Seq{8, 11}, LSrc: 0, LSeq: 1, NeedAck: true},
		{Kind: KindRet, CID: 9, Src: 2, ACK: []Seq{0, 0, 0}, LSrc: 2, LSeq: 1 << 40},
	})
}

// FuzzV2Unmarshal throws arbitrary bytes at the v2 decoder: it must
// never panic, accepted full-stamp datagrams must re-encode to the
// identical bytes, and neither failure nor success may poison the
// per-source stamp cache for a subsequent known-good stream.
func FuzzV2Unmarshal(f *testing.F) {
	seedPDUs := []*PDU{
		{Kind: KindData, CID: 1, Src: 0, SEQ: 1, ACK: []Seq{1, 1}, LSrc: NoEntity, Data: []byte("seed")},
		{Kind: KindSync, CID: 9, Src: 2, SEQ: 7, ACK: []Seq{3, 2, 9}, BUF: 44, NeedAck: true, LSrc: NoEntity},
		{Kind: KindAckOnly, Src: 1, ACK: []Seq{5, 5}, LSrc: NoEntity},
		{Kind: KindRet, Src: 3, ACK: []Seq{1, 2, 3, 4}, LSrc: 1, LSeq: 9},
	}
	enc := NewStampEncoder(4)
	chain := []*PDU{
		{Kind: KindData, CID: 2, Src: 1, SEQ: 1, ACK: []Seq{0, 1, 4}, LSrc: NoEntity, Data: []byte("a")},
		{Kind: KindData, CID: 2, Src: 1, SEQ: 2, ACK: []Seq{2, 2, 4}, LSrc: NoEntity, Data: []byte("b")},
		{Kind: KindData, CID: 2, Src: 1, SEQ: 3, ACK: []Seq{2, 3, 7}, LSrc: NoEntity},
	}
	for _, p := range seedPDUs {
		b, err := p.MarshalV2(nil)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	for _, p := range chain {
		// Delta-carrying seeds (SEQ 2 and 3 ride on SEQ 1's full stamp).
		b, err := p.MarshalV2(enc)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{0xC0, 0xBC, 0x02})

	goodEnc := NewStampEncoder(4)
	var goodStream [][]byte
	for _, p := range chain {
		b, err := p.MarshalV2(goodEnc)
		if err != nil {
			f.Fatal(err)
		}
		goodStream = append(goodStream, b)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		var dec StampDecoder
		scratch := &PDU{ACK: []Seq{9, 9, 9}, Delta: []Seq{2}, Data: []byte("dirty")}
		fresh, err := UnmarshalV2(data, &dec)
		if err == nil {
			if fresh.Delta == nil {
				out, err := fresh.MarshalV2(nil)
				if err != nil {
					t.Fatalf("accepted full-stamp PDU failed to re-encode: %v", err)
				}
				if !bytes.Equal(out, data) {
					t.Fatalf("v2 codec not canonical:\n in  %x\n out %x", data, out)
				}
			}
			// Dirty-scratch decode must agree with the fresh decode
			// (fresh cache: a first decode never resolves a delta).
			var dec2 StampDecoder
			if err := scratch.UnmarshalFromV2(data, &dec2); err != nil {
				t.Fatalf("dirty-scratch decode disagreed with fresh decode: %v", err)
			}
			if !wireEqual(scratch, fresh) {
				t.Fatalf("dirty-scratch decode differs:\n %v\n %v", scratch, fresh)
			}
		}
		// Whatever happened, the cache must still track a known-good
		// stream: arbitrary input can only ever advance it with exact,
		// CRC-valid stamps.
		for i, b := range goodStream {
			got, err := scratch.UnmarshalFromV2(b, &dec), chain[i]
			if got != nil && !errors.Is(got, ErrDeltaDesync) {
				t.Fatalf("good stream PDU %d rejected after fuzz input: %v", i, got)
			}
			if got == nil && !wireEqual(scratch, err) {
				t.Fatalf("good stream PDU %d corrupted by fuzz input:\n %v\n %v", i, scratch, err)
			}
		}
	})
}

// FuzzV2StreamRoundTrip is the delta-codec property fuzz: an arbitrary
// sequenced stream (arbitrary stamp movement, retransmissions, sync
// interval) encoded with a StampEncoder and decoded through a lossy
// channel must reconstruct bit-exact stamps, and every desync must be
// exactly predicted by the reference-chain oracle.
func FuzzV2StreamRoundTrip(f *testing.F) {
	f.Add(int64(1), uint64(0), uint8(4), uint8(8))
	f.Add(int64(2), uint64(0xAAAA), uint8(64), uint8(1))
	f.Add(int64(3), uint64(0x0F0F0F), uint8(2), uint8(32))
	f.Fuzz(func(t *testing.T, seed int64, lossMask uint64, nRaw, kRaw uint8) {
		n := int(nRaw)%128 + 2
		k := int(kRaw)%40 + 1
		rng := rand.New(rand.NewSource(seed))
		enc := NewStampEncoder(k)
		var dec StampDecoder
		src := EntityID(rng.Intn(n))
		stream := seqStream(src, n, 48, rng)
		// Splice in a retransmission at a random point: an old PDU
		// re-encoded mid-stream, as the send log does on a RET.
		if len(stream) > 10 {
			i := 5 + rng.Intn(len(stream)-10)
			stream = append(stream[:i], append([]*PDU{stream[rng.Intn(i)]}, stream[i:]...)...)
		}
		cacheSeq := Seq(0) // oracle: the decoder cache's seq, 0 = empty
		for i, p := range stream {
			b, err := p.MarshalV2(enc)
			if err != nil {
				t.Fatalf("encode %d: %v", i, err)
			}
			full := b[4]&flagFullStamp != 0
			if lossMask>>(uint(i)%64)&1 == 1 {
				continue // datagram lost before the decoder
			}
			got, err := UnmarshalV2(b, &dec)
			switch {
			case err == nil:
				if !wireEqual(got, p) {
					t.Fatalf("PDU %d (seq %d) reconstructed wrong:\n got %v\nwant %v", i, p.SEQ, got, p)
				}
				if full {
					if p.SEQ > cacheSeq {
						cacheSeq = p.SEQ
					}
				} else {
					cacheSeq = p.SEQ
				}
			case errors.Is(err, ErrDeltaDesync):
				if full {
					t.Fatalf("PDU %d: full stamp cannot desync: %v", i, err)
				}
				if cacheSeq+1 == p.SEQ && cacheSeq != 0 {
					t.Fatalf("PDU %d (seq %d): desync despite contiguous cache at %d", i, p.SEQ, cacheSeq)
				}
			default:
				t.Fatalf("decode %d: %v", i, err)
			}
		}
	})
}

// FuzzCompare checks that the Theorem 4.1 relation is antisymmetric for
// arbitrary well-formed PDU pairs.
func FuzzCompare(f *testing.F) {
	f.Add(uint8(0), uint64(1), uint64(2), uint64(3), uint8(1), uint64(2), uint64(1), uint64(9))
	f.Fuzz(func(t *testing.T, srcP uint8, seqP, ackP0, ackP1 uint64,
		srcQ uint8, seqQ, ackQ0, ackQ1 uint64) {
		p := &PDU{Kind: KindData, Src: EntityID(srcP % 2), SEQ: Seq(seqP%1000) + 1,
			ACK: []Seq{Seq(ackP0 % 1000), Seq(ackP1 % 1000)}}
		q := &PDU{Kind: KindData, Src: EntityID(srcQ % 2), SEQ: Seq(seqQ%1000) + 1,
			ACK: []Seq{Seq(ackQ0 % 1000), Seq(ackQ1 % 1000)}}
		pq, qp := Compare(p, q), Compare(q, p)
		switch pq {
		case Precedes:
			if qp != Follows {
				t.Fatalf("%v ≺ %v but reverse %v", p, q, qp)
			}
		case Follows:
			if qp != Precedes {
				t.Fatalf("%v ≻ %v but reverse %v", p, q, qp)
			}
		case Concurrent:
			if p.Src != q.Src || p.SEQ != q.SEQ {
				if qp != Concurrent {
					t.Fatalf("%v ∥ %v but reverse %v", p, q, qp)
				}
			}
		}
	})
}
