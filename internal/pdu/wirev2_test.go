package pdu

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"
)

// wireEqual compares the wire identity of two PDUs, ignoring the
// decode-side Delta hint.
func wireEqual(a, b *PDU) bool {
	ac, bc := *a, *b
	ac.Delta, bc.Delta = nil, nil
	if len(ac.ACK) == 0 && len(bc.ACK) == 0 {
		ac.ACK, bc.ACK = nil, nil
	}
	if len(ac.Data) == 0 && len(bc.Data) == 0 {
		ac.Data, bc.Data = nil, nil
	}
	return reflect.DeepEqual(ac, bc)
}

// seqStream synthesizes a plausible sequenced stream from src for a
// cluster of n: each PDU advances its own ACK entry to SEQ and bumps a
// few other entries, like a live engine does.
func seqStream(src EntityID, n, count int, rng *rand.Rand) []*PDU {
	ack := make([]Seq, n)
	out := make([]*PDU, 0, count)
	for s := 1; s <= count; s++ {
		ack[src] = Seq(s)
		for k := 0; k < 1+rng.Intn(3); k++ {
			j := rng.Intn(n)
			ack[j] += Seq(rng.Intn(3))
		}
		p := &PDU{Kind: KindData, CID: 1, Src: src, SEQ: Seq(s),
			ACK: append([]Seq(nil), ack...), BUF: 100, LSrc: NoEntity,
			Data: []byte("payload")}
		out = append(out, p)
	}
	return out
}

func TestV2RoundTripStream(t *testing.T) {
	for _, n := range []int{2, 4, 16, 64, 128} {
		rng := rand.New(rand.NewSource(int64(n)))
		enc := NewStampEncoder(8)
		var dec StampDecoder
		sawDelta := false
		for _, p := range seqStream(1%EntityID(n), n, 50, rng) {
			b, err := p.MarshalV2(enc)
			if err != nil {
				t.Fatalf("n=%d MarshalV2: %v", n, err)
			}
			if len(b) > p.EncodedSizeV2Bound() {
				t.Fatalf("n=%d len=%d exceeds bound %d", n, len(b), p.EncodedSizeV2Bound())
			}
			got, err := UnmarshalV2(b, &dec)
			if err != nil {
				t.Fatalf("n=%d seq=%d UnmarshalV2: %v", n, p.SEQ, err)
			}
			if !wireEqual(got, p) {
				t.Fatalf("n=%d seq=%d round trip:\n got %v\nwant %v", n, p.SEQ, got, p)
			}
			if got.Delta != nil {
				sawDelta = true
				// Delta must name exactly the entries that changed the
				// reconstruction relative to the previous stamp.
				for _, k := range got.Delta {
					if k < 0 || int(k) >= n {
						t.Fatalf("n=%d delta index %d out of range", n, k)
					}
				}
			}
		}
		if n >= 16 && !sawDelta {
			t.Errorf("n=%d: no delta stamps produced over 50 contiguous PDUs", n)
		}
	}
}

func TestV2UnsequencedAlwaysFull(t *testing.T) {
	enc := NewStampEncoder(8)
	var dec StampDecoder
	// Prime the reference so a delta would be possible for sequenced PDUs.
	prime := &PDU{Kind: KindData, CID: 1, Src: 0, SEQ: 1, ACK: []Seq{1, 0, 0, 0}, LSrc: NoEntity}
	b, err := prime.MarshalV2(enc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalV2(b, &dec); err != nil {
		t.Fatal(err)
	}
	for _, p := range []*PDU{
		{Kind: KindAckOnly, CID: 1, Src: 0, ACK: []Seq{1, 0, 0, 0}, LSrc: NoEntity},
		{Kind: KindRet, CID: 1, Src: 0, ACK: []Seq{1, 0, 0, 0}, LSrc: 2, LSeq: 5},
	} {
		b, err := p.MarshalV2(enc)
		if err != nil {
			t.Fatalf("%v: %v", p.Kind, err)
		}
		if b[4]&flagFullStamp == 0 {
			t.Fatalf("%v: unsequenced PDU encoded with delta stamp", p.Kind)
		}
		got, err := UnmarshalV2(b, &dec)
		if err != nil {
			t.Fatalf("%v: %v", p.Kind, err)
		}
		if !wireEqual(got, p) {
			t.Fatalf("%v round trip mismatch", p.Kind)
		}
	}
}

func TestV2SyncPointEscapes(t *testing.T) {
	n := 16
	enc := NewStampEncoder(4) // full stamp at SEQ % 4 == 0
	mk := func(seq Seq) *PDU {
		ack := make([]Seq, n)
		ack[0] = seq
		return &PDU{Kind: KindData, CID: 1, Src: 0, SEQ: seq, ACK: ack, LSrc: NoEntity}
	}
	fullAt := func(p *PDU) bool {
		b, err := p.MarshalV2(enc)
		if err != nil {
			t.Fatalf("seq %d: %v", p.SEQ, err)
		}
		return b[4]&flagFullStamp != 0
	}
	if !fullAt(mk(1)) {
		t.Error("first PDU of a stream must be full-stamped")
	}
	if fullAt(mk(2)) {
		t.Error("contiguous successor should be delta-stamped")
	}
	if fullAt(mk(3)) {
		t.Error("contiguous successor should be delta-stamped")
	}
	if !fullAt(mk(4)) {
		t.Error("every interval-th PDU must be full-stamped")
	}
	if !fullAt(mk(2)) {
		t.Error("a retransmission (non-contiguous SEQ) must be full-stamped")
	}
	if !fullAt(mk(3)) {
		t.Error("a second retransmission must be full-stamped, not a delta on the first")
	}
	if fullAt(mk(5)) {
		t.Error("the live head must survive retransmissions: SEQ 5 is contiguous with 4")
	}
	// A regressed entry (can't happen in a live stream, but the encoder
	// must never emit a negative increment).
	p := mk(4 + 1)
	enc.lastSeq = 4
	enc.last = make([]Seq, n)
	enc.last[1] = 99
	enc.valid = true
	if !fullAt(p) {
		t.Error("a regressed ACK entry must force a full stamp")
	}
}

func TestV2IntervalOneDegeneratesToFull(t *testing.T) {
	enc := NewStampEncoder(1)
	var dec StampDecoder
	rng := rand.New(rand.NewSource(7))
	for _, p := range seqStream(0, 8, 40, rng) {
		b, err := p.MarshalV2(enc)
		if err != nil {
			t.Fatal(err)
		}
		if b[4]&flagFullStamp == 0 {
			t.Fatalf("seq %d: interval 1 must force full stamps", p.SEQ)
		}
		got, err := UnmarshalV2(b, &dec)
		if err != nil {
			t.Fatal(err)
		}
		if got.Delta != nil {
			t.Fatalf("seq %d: full stamp decoded with a delta hint", p.SEQ)
		}
	}
}

func TestV2DesyncOnLossAndResync(t *testing.T) {
	n := 8
	enc := NewStampEncoder(10)
	var dec StampDecoder
	rng := rand.New(rand.NewSource(3))
	stream := seqStream(2, n, 30, rng)
	frames := make([][]byte, len(stream))
	for i, p := range stream {
		b, err := p.MarshalV2(enc)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = b
	}
	drop := map[int]bool{4: true} // lose SEQ 5 (a delta carrier)
	desyncs, delivered := 0, 0
	for i, b := range frames {
		if drop[i] {
			continue
		}
		got, err := UnmarshalV2(b, &dec)
		switch {
		case errors.Is(err, ErrDeltaDesync):
			desyncs++
		case err != nil:
			t.Fatalf("seq %d: %v", stream[i].SEQ, err)
		default:
			delivered++
			if !wireEqual(got, stream[i]) {
				t.Fatalf("seq %d reconstructed stamp differs", stream[i].SEQ)
			}
		}
	}
	if desyncs == 0 {
		t.Fatal("loss of a delta's reference must desynchronize the decoder")
	}
	// SEQ 10 is the next sync point: everything at and after it decodes.
	if want := len(stream) - 1 - desyncs; delivered != want {
		t.Fatalf("delivered %d, want %d", delivered, want)
	}
	if delivered < len(stream)-10 {
		t.Fatalf("decoder failed to resync at the interval escape: only %d delivered", delivered)
	}
}

func TestV2DuplicateDeltaDropsDuplicateFullDecodes(t *testing.T) {
	n := 4
	enc := NewStampEncoder(100)
	var dec StampDecoder
	rng := rand.New(rand.NewSource(5))
	stream := seqStream(0, n, 6, rng)
	var frames [][]byte
	for _, p := range stream {
		b, err := p.MarshalV2(enc)
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, b)
	}
	if _, err := UnmarshalV2(frames[0], &dec); err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalV2(frames[1], &dec); err != nil {
		t.Fatal(err)
	}
	// Duplicate of a delta PDU: its reference is no longer SEQ-1.
	if _, err := UnmarshalV2(frames[1], &dec); !errors.Is(err, ErrDeltaDesync) {
		t.Fatalf("duplicate delta: err = %v, want ErrDeltaDesync", err)
	}
	// Duplicate of the full-stamped first PDU still decodes (it is
	// self-contained) and must not regress the cache.
	if _, err := UnmarshalV2(frames[0], &dec); err != nil {
		t.Fatalf("duplicate full stamp: %v", err)
	}
	if got, err := UnmarshalV2(frames[2], &dec); err != nil || !wireEqual(got, stream[2]) {
		t.Fatalf("stream after full-stamp duplicate: got %v err %v", got, err)
	}
}

func TestV2CrossVersionRejection(t *testing.T) {
	p := &PDU{Kind: KindData, CID: 1, Src: 0, SEQ: 1, ACK: []Seq{1, 0}, LSrc: NoEntity}
	v1b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	v2b, err := p.MarshalV2(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(v2b); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("v1 decoder on v2 datagram: err = %v, want ErrBadVersion", err)
	}
	var dec StampDecoder
	if _, err := UnmarshalV2(v1b, &dec); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("v2 decoder on v1 datagram: err = %v, want ErrBadVersion", err)
	}

	// Frame-level cross wiring: entries must match the frame version.
	var d FrameDecoder
	d.SetStampDecoder(&dec)
	var scratch PDU

	v1frame := mixedFrame(t, FrameVersion, v2b)
	if err := d.Reset(v1frame); err != nil {
		t.Fatalf("Reset(v1 frame): %v", err)
	}
	if _, err := d.Next(&scratch); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("v2 entry in v1 frame: err = %v, want ErrBadVersion", err)
	}

	v2frame := mixedFrame(t, FrameVersion2, v1b)
	if err := d.Reset(v2frame); err != nil {
		t.Fatalf("Reset(v2 frame): %v", err)
	}
	if _, err := d.Next(&scratch); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("v1 entry in v2 frame: err = %v, want ErrBadVersion", err)
	}
}

// mixedFrame hand-builds a frame of the given version around one
// already-encoded entry, bypassing the encoder's version dispatch.
func mixedFrame(t *testing.T, version uint8, entry []byte) []byte {
	t.Helper()
	b := binary.BigEndian.AppendUint16(nil, FrameMagic)
	b = append(b, version)
	b = binary.BigEndian.AppendUint16(b, 1)
	b = binary.BigEndian.AppendUint32(b, uint32(len(entry)))
	return append(b, entry...)
}

// TestV2OutOfOrderDeltaIndices hand-crafts a delta stamp whose index
// pairs arrive in descending order; the decoder must apply them
// regardless of order.
func TestV2OutOfOrderDeltaIndices(t *testing.T) {
	n := 4
	var dec StampDecoder
	full := &PDU{Kind: KindData, CID: 1, Src: 0, SEQ: 1, ACK: []Seq{1, 5, 6, 7}, LSrc: NoEntity}
	fb, err := full.MarshalV2(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalV2(fb, &dec); err != nil {
		t.Fatal(err)
	}
	// Delta for SEQ 2: entries {3:+2, 0:+1} in descending index order.
	b := binary.BigEndian.AppendUint16(nil, Magic)
	b = append(b, WireVersion2, byte(KindData), 0) // flags: delta stamp
	b = binary.AppendUvarint(b, 1)                 // cid
	b = binary.AppendUvarint(b, uint64(0+1))       // src 0
	b = binary.AppendUvarint(b, 2)                 // seq
	b = binary.AppendUvarint(b, 0)                 // buf
	b = binary.AppendUvarint(b, 0)                 // lsrc NoEntity
	b = binary.AppendUvarint(b, 0)                 // lseq
	b = binary.AppendUvarint(b, uint64(n))
	b = binary.AppendUvarint(b, 2) // two delta entries
	b = binary.AppendUvarint(b, 3)
	b = binary.AppendUvarint(b, 2)
	b = binary.AppendUvarint(b, 0)
	b = binary.AppendUvarint(b, 1)
	b = binary.AppendUvarint(b, 0) // dlen
	b = binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	got, err := UnmarshalV2(b, &dec)
	if err != nil {
		t.Fatalf("out-of-order delta: %v", err)
	}
	want := []Seq{2, 5, 6, 9}
	if !reflect.DeepEqual(got.ACK, want) {
		t.Fatalf("ACK = %v, want %v", got.ACK, want)
	}
	if !reflect.DeepEqual(got.Delta, []Seq{3, 0}) {
		t.Fatalf("Delta = %v, want [3 0]", got.Delta)
	}
}

func TestV2RejectsNonMinimalVarint(t *testing.T) {
	// Re-encode the CID field (value 1) as the padded form 0x81 0x00.
	p := &PDU{Kind: KindData, CID: 1, Src: 0, SEQ: 1, ACK: []Seq{1, 0}, LSrc: NoEntity}
	good, err := p.MarshalV2(nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good[:5]...)
	bad = append(bad, 0x81, 0x00)             // cid = 1, non-minimal
	bad = append(bad, good[6:len(good)-4]...) // rest of body after 1-byte cid
	bad = binary.BigEndian.AppendUint32(bad, crc32.ChecksumIEEE(bad))
	var dec StampDecoder
	if _, err := UnmarshalV2(bad, &dec); !errors.Is(err, ErrBadVarint) {
		t.Fatalf("non-minimal varint: err = %v, want ErrBadVarint", err)
	}
}

func TestV2DecodeAllocFree(t *testing.T) {
	enc := NewStampEncoder(8)
	rng := rand.New(rand.NewSource(9))
	stream := seqStream(1, 64, 64, rng)
	frames := make([][]byte, len(stream))
	for i, p := range stream {
		b, err := p.MarshalV2(enc)
		if err != nil {
			t.Fatal(err)
		}
		frames[i] = b
	}
	var dec StampDecoder
	var scratch PDU
	// Warm the scratch and cache.
	for _, b := range frames {
		if err := scratch.UnmarshalFromV2(b, &dec); err != nil {
			t.Fatal(err)
		}
	}
	dec.Reset()
	allocs := testing.AllocsPerRun(50, func() {
		for _, b := range frames {
			if err := scratch.UnmarshalFromV2(b, &dec); err != nil {
				t.Fatal(err)
			}
		}
		dec.Reset()
	})
	if allocs != 0 {
		t.Fatalf("steady-state v2 decode allocates %.1f per stream", allocs)
	}
}

func TestV2MarshalAllocBound(t *testing.T) {
	enc := NewStampEncoder(8)
	rng := rand.New(rand.NewSource(11))
	stream := seqStream(0, 64, 64, rng)
	buf := make([]byte, 0, 1<<16)
	allocs := testing.AllocsPerRun(50, func() {
		enc.Reset()
		buf = buf[:0]
		for _, p := range stream {
			var err error
			buf, err = p.MarshalAppendV2(buf, enc)
			if err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state v2 encode allocates %.1f per stream", allocs)
	}
}

// TestV2WireSavings pins the headline property: under a contiguous
// stream, v2 bytes per DT PDU are far below v1 at large n.
func TestV2WireSavings(t *testing.T) {
	n := 64
	enc := NewStampEncoder(int(DefaultStampInterval))
	rng := rand.New(rand.NewSource(13))
	v1, v2 := 0, 0
	for _, p := range seqStream(0, n, 200, rng) {
		b1, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		b2, err := p.MarshalV2(enc)
		if err != nil {
			t.Fatal(err)
		}
		v1 += len(b1)
		v2 += len(b2)
	}
	if v2*2 > v1 {
		t.Fatalf("v2 bytes %d not <= 50%% of v1 bytes %d at n=%d", v2, v1, n)
	}
}
