package pdu

import (
	"errors"
	"strings"
	"testing"
)

func seqPDU(src EntityID, seq Seq, ack []Seq) *PDU {
	return &PDU{Kind: KindData, Src: src, SEQ: seq, ACK: ack}
}

// TestCompareTable1 checks Theorem 4.1 against every pair from Table 1 of
// the paper (the Example 4.1 exchange in a three-entity cluster).
func TestCompareTable1(t *testing.T) {
	// PDU -> (src, seq, ack) exactly as printed in Table 1.
	var (
		a = seqPDU(0, 1, []Seq{1, 1, 1})
		b = seqPDU(2, 1, []Seq{2, 1, 1})
		c = seqPDU(0, 2, []Seq{2, 1, 1})
		d = seqPDU(1, 1, []Seq{3, 1, 2})
		e = seqPDU(0, 3, []Seq{3, 2, 2})
		f = seqPDU(0, 4, []Seq{4, 2, 2})
		g = seqPDU(1, 2, []Seq{4, 2, 2})
		h = seqPDU(2, 2, []Seq{5, 3, 2})
	)
	tests := []struct {
		name string
		p, q *PDU
		want Relation
	}{
		{"a before c (same source)", a, c, Precedes},
		{"c before e (same source)", c, e, Precedes},
		{"a before d (d acked c)", a, d, Precedes},
		{"c before d", c, d, Precedes},
		{"d before e (e acked d)", d, e, Precedes},
		{"b concurrent with c (Example 4.1: b ∥ c)", b, c, Concurrent},
		{"b before d (d acked b)", b, d, Precedes},
		{"a before h", a, h, Precedes},
		{"g before h (h acked g)", g, h, Precedes},
		{"e follows d", e, d, Follows},
		{"f concurrent g", f, g, Concurrent},
		{"e before f (same source)", e, f, Precedes},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Compare(tt.p, tt.q); got != tt.want {
				t.Errorf("Compare(%v, %v) = %v, want %v", tt.p, tt.q, got, tt.want)
			}
		})
	}
}

// TestCompareAntisymmetric verifies p ≺ q implies q ≻ p over the Table 1
// PDUs.
func TestCompareAntisymmetric(t *testing.T) {
	pdus := []*PDU{
		seqPDU(0, 1, []Seq{1, 1, 1}),
		seqPDU(2, 1, []Seq{2, 1, 1}),
		seqPDU(0, 2, []Seq{2, 1, 1}),
		seqPDU(1, 1, []Seq{3, 1, 2}),
		seqPDU(0, 3, []Seq{3, 2, 2}),
		seqPDU(0, 4, []Seq{4, 2, 2}),
		seqPDU(1, 2, []Seq{4, 2, 2}),
		seqPDU(2, 2, []Seq{5, 3, 2}),
	}
	for _, p := range pdus {
		for _, q := range pdus {
			if p == q {
				continue
			}
			pq, qp := Compare(p, q), Compare(q, p)
			switch pq {
			case Precedes:
				if qp != Follows {
					t.Errorf("%v ≺ %v but reverse is %v", p, q, qp)
				}
			case Follows:
				if qp != Precedes {
					t.Errorf("%v ≻ %v but reverse is %v", p, q, qp)
				}
			case Concurrent:
				if qp != Concurrent {
					t.Errorf("%v ∥ %v but reverse is %v", p, q, qp)
				}
			}
		}
	}
}

func TestCompareUnsequencedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Compare on ACKONLY did not panic")
		}
	}()
	ack := &PDU{Kind: KindAckOnly, Src: 0, ACK: []Seq{1, 1}}
	dat := seqPDU(1, 1, []Seq{1, 1})
	Compare(ack, dat)
}

func TestValidate(t *testing.T) {
	const n = 3
	valid := func() *PDU {
		return &PDU{Kind: KindData, Src: 1, SEQ: 5, ACK: []Seq{1, 2, 3}, Data: []byte("x")}
	}
	tests := []struct {
		name    string
		mutate  func(*PDU)
		wantErr error
	}{
		{"valid data", func(p *PDU) {}, nil},
		{"valid sync", func(p *PDU) { p.Kind = KindSync; p.Data = nil }, nil},
		{"valid ackonly", func(p *PDU) { p.Kind = KindAckOnly; p.SEQ = 0 }, nil},
		{"valid ret", func(p *PDU) { p.Kind = KindRet; p.SEQ = 0; p.LSrc = 2; p.LSeq = 9 }, nil},
		{"zero kind", func(p *PDU) { p.Kind = 0 }, ErrBadKind},
		{"unknown kind", func(p *PDU) { p.Kind = 99 }, ErrBadKind},
		{"negative src", func(p *PDU) { p.Src = -1 }, ErrBadSrc},
		{"src too large", func(p *PDU) { p.Src = n }, ErrBadSrc},
		{"data without seq", func(p *PDU) { p.SEQ = 0 }, ErrBadSeq},
		{"ackonly with seq", func(p *PDU) { p.Kind = KindAckOnly }, ErrBadSeq},
		{"short ack", func(p *PDU) { p.ACK = p.ACK[:2] }, ErrBadACKLen},
		{"long ack", func(p *PDU) { p.ACK = append(p.ACK, 4) }, ErrBadACKLen},
		{"ret bad lsrc", func(p *PDU) { p.Kind = KindRet; p.SEQ = 0; p.LSrc = 7; p.LSeq = 1 }, ErrBadRet},
		{"ret zero lseq", func(p *PDU) { p.Kind = KindRet; p.SEQ = 0; p.LSrc = 0; p.LSeq = 0 }, ErrBadRet},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			p := valid()
			tt.mutate(p)
			err := p.Validate(n)
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("Validate() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("Validate() = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := &PDU{
		Kind: KindData, CID: 7, Src: 1, SEQ: 3,
		ACK: []Seq{1, 2, 3}, BUF: 10, Data: []byte("hello"),
	}
	q := p.Clone()
	q.ACK[0] = 99
	q.Data[0] = 'H'
	if p.ACK[0] != 1 {
		t.Error("Clone shares ACK backing array")
	}
	if p.Data[0] != 'h' {
		t.Error("Clone shares Data backing array")
	}
	if q.SEQ != p.SEQ || q.CID != p.CID || q.Src != p.Src {
		t.Error("Clone lost scalar fields")
	}
}

func TestCloneNilSlices(t *testing.T) {
	p := &PDU{Kind: KindAckOnly, Src: 0}
	q := p.Clone()
	if q.ACK != nil || q.Data != nil {
		t.Error("Clone invented slices for nil fields")
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		k    Kind
		want string
	}{
		{KindData, "DATA"},
		{KindSync, "SYNC"},
		{KindAckOnly, "ACKONLY"},
		{KindRet, "RET"},
		{Kind(42), "KIND(42)"},
	}
	for _, tt := range tests {
		if got := tt.k.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.k, got, tt.want)
		}
	}
}

func TestPDUString(t *testing.T) {
	p := seqPDU(1, 3, []Seq{4, 2, 2})
	p.Data = []byte("payload")
	p.NeedAck = true
	s := p.String()
	for _, want := range []string{"DATA", "s1#3", "[4 2 2]", "len=7", "need"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	r := &PDU{Kind: KindRet, Src: 0, ACK: []Seq{1, 1}, LSrc: 1, LSeq: 5}
	if s := r.String(); !strings.Contains(s, "lost=s1<5") {
		t.Errorf("RET String() = %q, missing lost range", s)
	}
}

func TestRelationString(t *testing.T) {
	if Precedes.String() != "≺" || Follows.String() != "≻" || Concurrent.String() != "∥" {
		t.Error("Relation strings wrong")
	}
	if !strings.Contains(Relation(9).String(), "REL") {
		t.Error("unknown Relation string wrong")
	}
}
