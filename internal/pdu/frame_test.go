package pdu

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func frameBatch() []*PDU {
	return []*PDU{
		{Kind: KindData, CID: 7, Src: 0, SEQ: 1, ACK: []Seq{1, 1, 1}, BUF: 10, LSrc: NoEntity, Data: []byte("first")},
		{Kind: KindSync, CID: 7, Src: 0, SEQ: 2, ACK: []Seq{2, 1, 1}, BUF: 9, NeedAck: true, LSrc: NoEntity},
		{Kind: KindAckOnly, CID: 7, Src: 0, ACK: []Seq{2, 2, 1}, LSrc: NoEntity},
		{Kind: KindRet, CID: 7, Src: 0, ACK: []Seq{2, 2, 2}, LSrc: 1, LSeq: 5},
	}
}

// decodeFrame decodes every PDU of a frame into fresh PDUs.
func decodeFrame(t *testing.T, b []byte) []*PDU {
	t.Helper()
	var d FrameDecoder
	if err := d.Reset(b); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	var out []*PDU
	for {
		var p PDU
		ok, err := d.Next(&p)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, &p)
	}
}

// TestFrameRoundTrip encodes a mixed batch and checks the decoder hands
// back identical PDUs in append order.
func TestFrameRoundTrip(t *testing.T) {
	batch := frameBatch()
	b, err := EncodeFrame(batch)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeFrame(t, b)
	if len(got) != len(batch) {
		t.Fatalf("decoded %d PDUs, want %d", len(got), len(batch))
	}
	for i, p := range batch {
		want, _ := p.Marshal()
		have, _ := got[i].Marshal()
		if !bytes.Equal(want, have) {
			t.Errorf("PDU %d mismatch:\n want %v\n got  %v", i, p, got[i])
		}
	}
}

// TestFrameEmpty checks a zero-PDU frame round-trips (the encoder never
// emits one, but the decoder must not choke on it).
func TestFrameEmpty(t *testing.T) {
	var e FrameEncoder
	e.Begin(nil)
	b := e.Bytes()
	if len(b) != FrameHeaderSize {
		t.Fatalf("empty frame is %d bytes, want %d", len(b), FrameHeaderSize)
	}
	if got := decodeFrame(t, b); len(got) != 0 {
		t.Fatalf("decoded %d PDUs from empty frame", len(got))
	}
}

// TestFrameEncoderReuse checks Begin resets state and the appended-to
// buffer convention works (frame appended after a prefix).
func TestFrameEncoderReuse(t *testing.T) {
	batch := frameBatch()
	var e FrameEncoder
	e.Begin(nil)
	if err := e.Append(batch[0]); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), e.Bytes()...)

	prefix := []byte("xx")
	e.Begin(prefix)
	if e.Count() != 0 {
		t.Fatalf("Count after Begin = %d", e.Count())
	}
	if err := e.Append(batch[0]); err != nil {
		t.Fatal(err)
	}
	out := e.Bytes()
	if !bytes.Equal(out[:2], prefix) {
		t.Fatalf("prefix clobbered: %q", out[:2])
	}
	if !bytes.Equal(out[2:], first) {
		t.Fatalf("re-encoded frame differs from first encoding")
	}
	if e.Size() != len(first) {
		t.Fatalf("Size = %d, want %d", e.Size(), len(first))
	}
}

// TestFrameDecodeMalformed feeds the decoder truncated and corrupt frames:
// each must surface an error (never panic), and the error must be terminal.
func TestFrameDecodeMalformed(t *testing.T) {
	good, err := EncodeFrame(frameBatch())
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(b []byte) []byte) []byte {
		return mutate(append([]byte(nil), good...))
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrFrameTruncated},
		{"short header", good[:FrameHeaderSize-1], ErrFrameTruncated},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] ^= 0xFF; return b }), ErrBadFrameMagic},
		{"bad version", corrupt(func(b []byte) []byte { b[2] = 99; return b }), ErrBadFrameVersion},
		{"truncated entry prefix", good[:FrameHeaderSize+2], ErrFrameTruncated},
		{"truncated entry body", good[:len(good)-1], ErrFrameTruncated},
		{"oversized entry length", corrupt(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[FrameHeaderSize:], 1<<30)
			return b
		}), ErrFrameTruncated},
		{"count larger than entries", corrupt(func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[3:5], 99)
			return b
		}), ErrFrameTruncated},
		{"trailing bytes", corrupt(func(b []byte) []byte { return append(b, 0xEE) }), ErrFrameTrailing},
		{"corrupt entry checksum", corrupt(func(b []byte) []byte {
			b[len(b)-1] ^= 0xFF
			return b
		}), ErrBadChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var d FrameDecoder
			var p PDU
			err := d.Reset(tc.in)
			for err == nil {
				var ok bool
				ok, err = d.Next(&p)
				if !ok && err == nil {
					t.Fatalf("frame decoded cleanly, want %v", tc.want)
				}
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want %v", err, tc.want)
			}
			// The error must be terminal: Next keeps failing identically.
			if _, again := d.Next(&p); !errors.Is(again, tc.want) {
				t.Fatalf("error not terminal: second Next returned %v", again)
			}
		})
	}
}

// TestFrameCodecZeroAlloc proves the batch encode/decode hot path is
// allocation-free in steady state: a warmed encoder buffer and scratch
// decode PDU are reused across frames without allocating.
func TestFrameCodecZeroAlloc(t *testing.T) {
	batch := frameBatch()
	var e FrameEncoder
	buf := make([]byte, 0, 4096)
	var d FrameDecoder
	var scratch PDU
	// Warm the scratch PDU's ACK/Data capacity.
	e.Begin(buf)
	for _, p := range batch {
		if err := e.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	warm := e.Bytes()
	if err := d.Reset(warm); err != nil {
		t.Fatal(err)
	}
	for {
		ok, err := d.Next(&scratch)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}

	allocs := testing.AllocsPerRun(100, func() {
		e.Begin(buf)
		for _, p := range batch {
			if err := e.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		b := e.Bytes()
		if err := d.Reset(b); err != nil {
			t.Fatal(err)
		}
		for {
			ok, err := d.Next(&scratch)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("frame codec hot path allocates %.1f times per frame, want 0", allocs)
	}
}

// TestFrameGroupRoundTrip encodes a batch as v3 group-addressed frames
// under both entry codecs and checks the decoder reports the group and
// entry codec and hands back identical PDUs.
func TestFrameGroupRoundTrip(t *testing.T) {
	batch := frameBatch()
	for _, ecodec := range []uint8{WireVersion, WireVersion2} {
		b, err := EncodeFrameGroup(batch, 42, ecodec, nil)
		if err != nil {
			t.Fatal(err)
		}
		var d FrameDecoder
		var sd StampDecoder
		d.SetStampDecoder(&sd)
		if err := d.Reset(b); err != nil {
			t.Fatalf("Reset: %v", err)
		}
		if d.Group() != 42 {
			t.Fatalf("Group = %d, want 42", d.Group())
		}
		if d.Version() != ecodec {
			t.Fatalf("Version = %d, want entry codec %d", d.Version(), ecodec)
		}
		var got []*PDU
		for {
			var p PDU
			ok, err := d.Next(&p)
			if err != nil {
				t.Fatalf("Next: %v", err)
			}
			if !ok {
				break
			}
			got = append(got, &p)
		}
		if len(got) != len(batch) {
			t.Fatalf("decoded %d PDUs, want %d", len(got), len(batch))
		}
		for i, p := range batch {
			want, _ := p.Marshal()
			have, _ := got[i].Marshal()
			if !bytes.Equal(want, have) {
				t.Errorf("ecodec %d PDU %d mismatch:\n want %v\n got  %v", ecodec, i, p, got[i])
			}
		}
	}
}

// TestFrameGroupDefaultZero checks v1/v2 frames decode as the default
// group and the FrameGroup peek agrees with the full decoder on every
// layout.
func TestFrameGroupDefaultZero(t *testing.T) {
	batch := frameBatch()
	v1, _ := EncodeFrame(batch)
	v2, _ := EncodeFrameV2(batch, nil)
	v3, _ := EncodeFrameGroup(batch, 7, WireVersion2, nil)
	for _, tc := range []struct {
		name  string
		frame []byte
		group uint32
	}{
		{"v1", v1, 0}, {"v2", v2, 0}, {"v3", v3, 7},
	} {
		var d FrameDecoder
		if err := d.Reset(tc.frame); err != nil {
			t.Fatalf("%s Reset: %v", tc.name, err)
		}
		if d.Group() != tc.group {
			t.Fatalf("%s Group = %d, want %d", tc.name, d.Group(), tc.group)
		}
		g, ok := FrameGroup(tc.frame)
		if !ok || g != tc.group {
			t.Fatalf("%s FrameGroup = %d,%v, want %d,true", tc.name, g, ok, tc.group)
		}
	}
	// Non-frames and truncated v3 headers are not routable.
	for _, b := range [][]byte{nil, {0xC0}, {0xBE, 0xEF, 0x01, 0x00, 0x00}, v3[:FrameHeaderSizeV3-1], {0xC0, 0xBF, 0x99}} {
		if g, ok := FrameGroup(b); ok {
			t.Fatalf("FrameGroup(%x) = %d,true, want not-ok", b, g)
		}
	}
	// FrameGroup peeks without range-checking: an overflowing group ID is
	// routable (so the runtime can count it) but Reset rejects it.
	big := append([]byte(nil), v3...)
	binary.BigEndian.PutUint32(big[4:8], MaxGroupID+1)
	if g, ok := FrameGroup(big); !ok || g != MaxGroupID+1 {
		t.Fatalf("FrameGroup(out-of-range) = %d,%v", g, ok)
	}
	var d FrameDecoder
	if err := d.Reset(big); !errors.Is(err, ErrBadFrameGroup) {
		t.Fatalf("Reset(out-of-range group) = %v, want ErrBadFrameGroup", err)
	}
}

// TestFrameGroupMalformed feeds the decoder malformed v3 headers: each
// must surface its typed error terminally, never panic.
func TestFrameGroupMalformed(t *testing.T) {
	good, err := EncodeFrameGroup(frameBatch(), 9, WireVersion, nil)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(b []byte) []byte) []byte {
		return mutate(append([]byte(nil), good...))
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"truncated group id", good[:6], ErrFrameTruncated},
		{"truncated v3 header", good[:FrameHeaderSizeV3-1], ErrFrameTruncated},
		{"bad entry codec", corrupt(func(b []byte) []byte { b[3] = 9; return b }), ErrBadEntryCodec},
		{"group out of range", corrupt(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[4:8], 0xFFFFFFFF)
			return b
		}), ErrBadFrameGroup},
		{"count larger than entries", corrupt(func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[8:10], 99)
			return b
		}), ErrFrameTruncated},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var d FrameDecoder
			var p PDU
			err := d.Reset(tc.in)
			for err == nil {
				var ok bool
				ok, err = d.Next(&p)
				if !ok && err == nil {
					t.Fatalf("frame decoded cleanly, want %v", tc.want)
				}
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want %v", err, tc.want)
			}
			if _, again := d.Next(&p); !errors.Is(again, tc.want) {
				t.Fatalf("error not terminal: second Next returned %v", again)
			}
		})
	}
}

// TestFrameGroupZeroAlloc proves the v3 encode/decode path stays
// allocation-free in steady state like v1/v2.
func TestFrameGroupZeroAlloc(t *testing.T) {
	batch := frameBatch()
	var e FrameEncoder
	buf := make([]byte, 0, 4096)
	var d FrameDecoder
	var scratch PDU
	run := func() {
		e.BeginGroup(buf, 3, WireVersion, nil)
		for _, p := range batch {
			if err := e.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		b := e.Bytes()
		if err := d.Reset(b); err != nil {
			t.Fatal(err)
		}
		for {
			ok, err := d.Next(&scratch)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
		}
	}
	run() // warm scratch capacity
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("v3 frame codec hot path allocates %.1f times per frame, want 0", allocs)
	}
}
