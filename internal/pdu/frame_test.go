package pdu

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

func frameBatch() []*PDU {
	return []*PDU{
		{Kind: KindData, CID: 7, Src: 0, SEQ: 1, ACK: []Seq{1, 1, 1}, BUF: 10, LSrc: NoEntity, Data: []byte("first")},
		{Kind: KindSync, CID: 7, Src: 0, SEQ: 2, ACK: []Seq{2, 1, 1}, BUF: 9, NeedAck: true, LSrc: NoEntity},
		{Kind: KindAckOnly, CID: 7, Src: 0, ACK: []Seq{2, 2, 1}, LSrc: NoEntity},
		{Kind: KindRet, CID: 7, Src: 0, ACK: []Seq{2, 2, 2}, LSrc: 1, LSeq: 5},
	}
}

// decodeFrame decodes every PDU of a frame into fresh PDUs.
func decodeFrame(t *testing.T, b []byte) []*PDU {
	t.Helper()
	var d FrameDecoder
	if err := d.Reset(b); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	var out []*PDU
	for {
		var p PDU
		ok, err := d.Next(&p)
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if !ok {
			return out
		}
		out = append(out, &p)
	}
}

// TestFrameRoundTrip encodes a mixed batch and checks the decoder hands
// back identical PDUs in append order.
func TestFrameRoundTrip(t *testing.T) {
	batch := frameBatch()
	b, err := EncodeFrame(batch)
	if err != nil {
		t.Fatal(err)
	}
	got := decodeFrame(t, b)
	if len(got) != len(batch) {
		t.Fatalf("decoded %d PDUs, want %d", len(got), len(batch))
	}
	for i, p := range batch {
		want, _ := p.Marshal()
		have, _ := got[i].Marshal()
		if !bytes.Equal(want, have) {
			t.Errorf("PDU %d mismatch:\n want %v\n got  %v", i, p, got[i])
		}
	}
}

// TestFrameEmpty checks a zero-PDU frame round-trips (the encoder never
// emits one, but the decoder must not choke on it).
func TestFrameEmpty(t *testing.T) {
	var e FrameEncoder
	e.Begin(nil)
	b := e.Bytes()
	if len(b) != FrameHeaderSize {
		t.Fatalf("empty frame is %d bytes, want %d", len(b), FrameHeaderSize)
	}
	if got := decodeFrame(t, b); len(got) != 0 {
		t.Fatalf("decoded %d PDUs from empty frame", len(got))
	}
}

// TestFrameEncoderReuse checks Begin resets state and the appended-to
// buffer convention works (frame appended after a prefix).
func TestFrameEncoderReuse(t *testing.T) {
	batch := frameBatch()
	var e FrameEncoder
	e.Begin(nil)
	if err := e.Append(batch[0]); err != nil {
		t.Fatal(err)
	}
	first := append([]byte(nil), e.Bytes()...)

	prefix := []byte("xx")
	e.Begin(prefix)
	if e.Count() != 0 {
		t.Fatalf("Count after Begin = %d", e.Count())
	}
	if err := e.Append(batch[0]); err != nil {
		t.Fatal(err)
	}
	out := e.Bytes()
	if !bytes.Equal(out[:2], prefix) {
		t.Fatalf("prefix clobbered: %q", out[:2])
	}
	if !bytes.Equal(out[2:], first) {
		t.Fatalf("re-encoded frame differs from first encoding")
	}
	if e.Size() != len(first) {
		t.Fatalf("Size = %d, want %d", e.Size(), len(first))
	}
}

// TestFrameDecodeMalformed feeds the decoder truncated and corrupt frames:
// each must surface an error (never panic), and the error must be terminal.
func TestFrameDecodeMalformed(t *testing.T) {
	good, err := EncodeFrame(frameBatch())
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func(b []byte) []byte) []byte {
		return mutate(append([]byte(nil), good...))
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"empty", nil, ErrFrameTruncated},
		{"short header", good[:FrameHeaderSize-1], ErrFrameTruncated},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] ^= 0xFF; return b }), ErrBadFrameMagic},
		{"bad version", corrupt(func(b []byte) []byte { b[2] = 99; return b }), ErrBadFrameVersion},
		{"truncated entry prefix", good[:FrameHeaderSize+2], ErrFrameTruncated},
		{"truncated entry body", good[:len(good)-1], ErrFrameTruncated},
		{"oversized entry length", corrupt(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[FrameHeaderSize:], 1<<30)
			return b
		}), ErrFrameTruncated},
		{"count larger than entries", corrupt(func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[3:5], 99)
			return b
		}), ErrFrameTruncated},
		{"trailing bytes", corrupt(func(b []byte) []byte { return append(b, 0xEE) }), ErrFrameTrailing},
		{"corrupt entry checksum", corrupt(func(b []byte) []byte {
			b[len(b)-1] ^= 0xFF
			return b
		}), ErrBadChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var d FrameDecoder
			var p PDU
			err := d.Reset(tc.in)
			for err == nil {
				var ok bool
				ok, err = d.Next(&p)
				if !ok && err == nil {
					t.Fatalf("frame decoded cleanly, want %v", tc.want)
				}
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error = %v, want %v", err, tc.want)
			}
			// The error must be terminal: Next keeps failing identically.
			if _, again := d.Next(&p); !errors.Is(again, tc.want) {
				t.Fatalf("error not terminal: second Next returned %v", again)
			}
		})
	}
}

// TestFrameCodecZeroAlloc proves the batch encode/decode hot path is
// allocation-free in steady state: a warmed encoder buffer and scratch
// decode PDU are reused across frames without allocating.
func TestFrameCodecZeroAlloc(t *testing.T) {
	batch := frameBatch()
	var e FrameEncoder
	buf := make([]byte, 0, 4096)
	var d FrameDecoder
	var scratch PDU
	// Warm the scratch PDU's ACK/Data capacity.
	e.Begin(buf)
	for _, p := range batch {
		if err := e.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	warm := e.Bytes()
	if err := d.Reset(warm); err != nil {
		t.Fatal(err)
	}
	for {
		ok, err := d.Next(&scratch)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}

	allocs := testing.AllocsPerRun(100, func() {
		e.Begin(buf)
		for _, p := range batch {
			if err := e.Append(p); err != nil {
				t.Fatal(err)
			}
		}
		b := e.Bytes()
		if err := d.Reset(b); err != nil {
			t.Fatal(err)
		}
		for {
			ok, err := d.Next(&scratch)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("frame codec hot path allocates %.1f times per frame, want 0", allocs)
	}
}
