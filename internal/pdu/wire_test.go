package pdu

import (
	"bytes"
	"errors"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		p    *PDU
	}{
		{
			name: "data",
			p: &PDU{
				Kind: KindData, CID: 42, Src: 2, SEQ: 17,
				ACK: []Seq{1, 2, 3, 4}, BUF: 128, NeedAck: true,
				LSrc: NoEntity, Data: []byte("the quick brown fox"),
			},
		},
		{
			name: "sync empty data",
			p: &PDU{
				Kind: KindSync, CID: 1, Src: 0, SEQ: 1,
				ACK: []Seq{9, 9}, BUF: 1, LSrc: NoEntity,
			},
		},
		{
			name: "ackonly",
			p: &PDU{
				Kind: KindAckOnly, CID: 7, Src: 1,
				ACK: []Seq{5, 6, 7}, BUF: 0, LSrc: NoEntity,
			},
		},
		{
			name: "ret",
			p: &PDU{
				Kind: KindRet, CID: 9, Src: 3,
				ACK: []Seq{1, 1, 1, 1}, LSrc: 2, LSeq: 44,
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b, err := tt.p.Marshal()
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			if len(b) != tt.p.EncodedSize() {
				t.Errorf("len = %d, EncodedSize() = %d", len(b), tt.p.EncodedSize())
			}
			got, err := Unmarshal(b)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if !reflect.DeepEqual(got, tt.p) {
				t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, tt.p)
			}
		})
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	p := &PDU{
		Kind: KindData, CID: 1, Src: 0, SEQ: 1,
		ACK: []Seq{1, 2}, LSrc: NoEntity, Data: []byte("abc"),
	}
	good, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut < len(good); cut++ {
			if _, err := Unmarshal(good[:cut]); err == nil {
				t.Fatalf("Unmarshal accepted %d/%d bytes", cut, len(good))
			}
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Unmarshal(nil); !errors.Is(err, ErrTruncated) {
			t.Errorf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("bit flips", func(t *testing.T) {
		for i := range good {
			bad := bytes.Clone(good)
			bad[i] ^= 0x40
			if _, err := Unmarshal(bad); err == nil {
				t.Fatalf("Unmarshal accepted datagram with byte %d flipped", i)
			}
		}
	})
	t.Run("bad magic with fixed crc", func(t *testing.T) {
		bad := bytes.Clone(good)
		bad[0] = 0
		refreshCRC(bad)
		if _, err := Unmarshal(bad); !errors.Is(err, ErrBadMagic) {
			t.Errorf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad version with fixed crc", func(t *testing.T) {
		bad := bytes.Clone(good)
		bad[2] = 99
		refreshCRC(bad)
		if _, err := Unmarshal(bad); !errors.Is(err, ErrBadVersion) {
			t.Errorf("got %v, want ErrBadVersion", err)
		}
	})
}

// refreshCRC recomputes the trailer so corruption tests exercise the
// structural checks rather than the checksum.
func refreshCRC(b []byte) {
	body := b[:len(b)-4]
	crc := crc32.ChecksumIEEE(body)
	b[len(b)-4] = byte(crc >> 24)
	b[len(b)-3] = byte(crc >> 16)
	b[len(b)-2] = byte(crc >> 8)
	b[len(b)-1] = byte(crc)
}

func TestEncodedSizeGrowsLinearlyWithN(t *testing.T) {
	// The O(n) PDU-length claim of Section 5 (experiment E5): adding one
	// entity adds exactly 8 bytes (one ACK entry).
	size := func(n int) int {
		p := &PDU{Kind: KindSync, Src: 0, SEQ: 1, ACK: make([]Seq, n), LSrc: NoEntity}
		return p.EncodedSize()
	}
	base := size(2)
	for n := 3; n <= 64; n++ {
		if got, want := size(n), base+8*(n-2); got != want {
			t.Fatalf("EncodedSize(n=%d) = %d, want %d", n, got, want)
		}
	}
}

// TestMarshalQuick round-trips randomly generated PDUs.
func TestMarshalQuick(t *testing.T) {
	f := func(cid uint32, srcRaw uint8, seqRaw uint16, bufv uint32, need bool, acks []uint16, data []byte) bool {
		n := len(acks) + 1
		p := &PDU{
			Kind: KindData, CID: cid, Src: EntityID(int(srcRaw) % n),
			SEQ: Seq(seqRaw) + 1, BUF: bufv, NeedAck: need,
			ACK: make([]Seq, len(acks)), LSrc: NoEntity,
		}
		for i, a := range acks {
			p.ACK[i] = Seq(a)
		}
		if len(data) > 0 {
			p.Data = bytes.Clone(data)
		}
		b, err := p.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, p)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
