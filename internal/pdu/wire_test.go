package pdu

import (
	"bytes"
	"errors"
	"hash/crc32"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		p    *PDU
	}{
		{
			name: "data",
			p: &PDU{
				Kind: KindData, CID: 42, Src: 2, SEQ: 17,
				ACK: []Seq{1, 2, 3, 4}, BUF: 128, NeedAck: true,
				LSrc: NoEntity, Data: []byte("the quick brown fox"),
			},
		},
		{
			name: "sync empty data",
			p: &PDU{
				Kind: KindSync, CID: 1, Src: 0, SEQ: 1,
				ACK: []Seq{9, 9}, BUF: 1, LSrc: NoEntity,
			},
		},
		{
			name: "ackonly",
			p: &PDU{
				Kind: KindAckOnly, CID: 7, Src: 1,
				ACK: []Seq{5, 6, 7}, BUF: 0, LSrc: NoEntity,
			},
		},
		{
			name: "ret",
			p: &PDU{
				Kind: KindRet, CID: 9, Src: 3,
				ACK: []Seq{1, 1, 1, 1}, LSrc: 2, LSeq: 44,
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			b, err := tt.p.Marshal()
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			if len(b) != tt.p.EncodedSize() {
				t.Errorf("len = %d, EncodedSize() = %d", len(b), tt.p.EncodedSize())
			}
			got, err := Unmarshal(b)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			if !reflect.DeepEqual(got, tt.p) {
				t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, tt.p)
			}
		})
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	p := &PDU{
		Kind: KindData, CID: 1, Src: 0, SEQ: 1,
		ACK: []Seq{1, 2}, LSrc: NoEntity, Data: []byte("abc"),
	}
	good, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("truncated", func(t *testing.T) {
		for cut := 1; cut < len(good); cut++ {
			if _, err := Unmarshal(good[:cut]); err == nil {
				t.Fatalf("Unmarshal accepted %d/%d bytes", cut, len(good))
			}
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Unmarshal(nil); !errors.Is(err, ErrTruncated) {
			t.Errorf("got %v, want ErrTruncated", err)
		}
	})
	t.Run("bit flips", func(t *testing.T) {
		for i := range good {
			bad := bytes.Clone(good)
			bad[i] ^= 0x40
			if _, err := Unmarshal(bad); err == nil {
				t.Fatalf("Unmarshal accepted datagram with byte %d flipped", i)
			}
		}
	})
	t.Run("bad magic with fixed crc", func(t *testing.T) {
		bad := bytes.Clone(good)
		bad[0] = 0
		refreshCRC(bad)
		if _, err := Unmarshal(bad); !errors.Is(err, ErrBadMagic) {
			t.Errorf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad version with fixed crc", func(t *testing.T) {
		bad := bytes.Clone(good)
		bad[2] = 99
		refreshCRC(bad)
		if _, err := Unmarshal(bad); !errors.Is(err, ErrBadVersion) {
			t.Errorf("got %v, want ErrBadVersion", err)
		}
	})
}

// refreshCRC recomputes the trailer so corruption tests exercise the
// structural checks rather than the checksum.
func refreshCRC(b []byte) {
	body := b[:len(b)-4]
	crc := crc32.ChecksumIEEE(body)
	b[len(b)-4] = byte(crc >> 24)
	b[len(b)-3] = byte(crc >> 16)
	b[len(b)-2] = byte(crc >> 8)
	b[len(b)-1] = byte(crc)
}

func TestEncodedSizeGrowsLinearlyWithN(t *testing.T) {
	// The O(n) PDU-length claim of Section 5 (experiment E5): adding one
	// entity adds exactly 8 bytes (one ACK entry).
	size := func(n int) int {
		p := &PDU{Kind: KindSync, Src: 0, SEQ: 1, ACK: make([]Seq, n), LSrc: NoEntity}
		return p.EncodedSize()
	}
	base := size(2)
	for n := 3; n <= 64; n++ {
		if got, want := size(n), base+8*(n-2); got != want {
			t.Fatalf("EncodedSize(n=%d) = %d, want %d", n, got, want)
		}
	}
}

// TestMarshalQuick round-trips randomly generated PDUs.
func TestMarshalQuick(t *testing.T) {
	f := func(cid uint32, srcRaw uint8, seqRaw uint16, bufv uint32, need bool, acks []uint16, data []byte) bool {
		n := len(acks) + 1
		p := &PDU{
			Kind: KindData, CID: cid, Src: EntityID(int(srcRaw) % n),
			SEQ: Seq(seqRaw) + 1, BUF: bufv, NeedAck: need,
			ACK: make([]Seq, len(acks)), LSrc: NoEntity,
		}
		for i, a := range acks {
			p.ACK[i] = Seq(a)
		}
		if len(data) > 0 {
			p.Data = bytes.Clone(data)
		}
		b, err := p.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, p)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestMarshalAppendMatchesMarshal checks that MarshalAppend produces the
// exact Marshal encoding, appended after any existing prefix untouched.
func TestMarshalAppendMatchesMarshal(t *testing.T) {
	p := &PDU{
		Kind: KindData, CID: 42, Src: 2, SEQ: 17,
		ACK: []Seq{1, 2, 3, 4}, BUF: 128, NeedAck: true,
		LSrc: NoEntity, Data: []byte("payload"),
	}
	want, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("existing")
	got, err := p.MarshalAppend(bytes.Clone(prefix))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:len(prefix)], prefix) {
		t.Errorf("prefix clobbered: %q", got[:len(prefix)])
	}
	if !bytes.Equal(got[len(prefix):], want) {
		t.Errorf("appended encoding differs from Marshal:\n got %x\nwant %x", got[len(prefix):], want)
	}
}

// TestUnmarshalFromReuse decodes a sequence of differently shaped PDUs
// into one scratch, checking every field is fully overwritten (no state
// leaks between decodes through the reused ACK/Data capacity).
func TestUnmarshalFromReuse(t *testing.T) {
	pdus := []*PDU{
		{Kind: KindData, CID: 1, Src: 0, SEQ: 9, ACK: []Seq{7, 8, 9, 10}, BUF: 4,
			NeedAck: true, LSrc: NoEntity, Data: []byte("a longer payload here")},
		{Kind: KindAckOnly, CID: 1, Src: 2, ACK: []Seq{1, 2}, LSrc: NoEntity},
		{Kind: KindRet, CID: 3, Src: 1, ACK: []Seq{5}, LSrc: 0, LSeq: 6},
		{Kind: KindSync, CID: 2, Src: 3, SEQ: 1, ACK: []Seq{0, 0, 0, 0, 0, 0}, LSrc: NoEntity},
	}
	var scratch PDU
	for i, p := range pdus {
		b, err := p.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if err := scratch.UnmarshalFrom(b); err != nil {
			t.Fatalf("pdu %d: UnmarshalFrom: %v", i, err)
		}
		// Compare against the fresh-allocation decode; clone because
		// scratch's slices are reused on the next round.
		want, err := Unmarshal(b)
		if err != nil {
			t.Fatal(err)
		}
		got := scratch.Clone()
		if len(got.Data) == 0 && len(want.Data) == 0 {
			// Scratch reuse keeps an empty non-nil Data where a fresh
			// decode yields nil; the two are semantically identical.
			got.Data, want.Data = nil, nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("pdu %d: reuse decode mismatch:\n got %#v\nwant %#v", i, got, want)
		}
	}
}

// TestPooledCodecZeroAllocs pins the allocation-free contract of the hot
// path: a pooled datagram buffer through MarshalAppend and a scratch PDU
// through UnmarshalFrom must not allocate in steady state.
func TestPooledCodecZeroAllocs(t *testing.T) {
	p := &PDU{
		Kind: KindData, CID: 1, Src: 2, SEQ: 99,
		ACK: make([]Seq, 16), BUF: 1024, LSrc: NoEntity,
		Data: make([]byte, 256),
	}
	var scratch PDU
	// Warm the pool and grow scratch's slices once.
	warm, err := p.MarshalAppend(GetDatagram())
	if err != nil {
		t.Fatal(err)
	}
	if err := scratch.UnmarshalFrom(warm); err != nil {
		t.Fatal(err)
	}
	PutDatagram(warm)

	allocs := testing.AllocsPerRun(100, func() {
		buf, err := p.MarshalAppend(GetDatagram())
		if err != nil {
			t.Fatal(err)
		}
		if err := scratch.UnmarshalFrom(buf); err != nil {
			t.Fatal(err)
		}
		PutDatagram(buf)
	})
	if allocs != 0 {
		t.Errorf("pooled marshal/unmarshal round trip: %.1f allocs/op, want 0", allocs)
	}
}

// TestDatagramPool checks the pool contract: GetDatagram returns an
// empty slice with full capacity, and PutDatagram silently drops
// foreign (undersized) buffers instead of poisoning the pool.
func TestDatagramPool(t *testing.T) {
	b := GetDatagram()
	if len(b) != 0 || cap(b) != DatagramBufCap {
		t.Fatalf("GetDatagram: len=%d cap=%d, want 0/%d", len(b), cap(b), DatagramBufCap)
	}
	PutDatagram(b)
	PutDatagram(make([]byte, 16)) // undersized: dropped
	PutDatagram(nil)              // nil: dropped
	if c := GetDatagram(); cap(c) != DatagramBufCap {
		t.Fatalf("pool poisoned: cap=%d, want %d", cap(c), DatagramBufCap)
	}
}
