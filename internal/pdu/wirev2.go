// Wire codec v2: varint header fields and a delta-encoded ACK stamp.
// Consecutive sequenced PDUs from one source differ in only a few ACK
// entries, so v2 encodes just the changed (index, increment) pairs
// against the source's previous sequenced PDU instead of the full O(n)
// vector, with a full-stamp escape at sync points so a receiver can
// resynchronize after loss without waiting for a RET round trip:
//
//	magic   uint16  0xC0BC (big-endian, shared with v1)
//	version uint8   2
//	kind    uint8
//	flags   uint8   bit0 = NeedAck, bit1 = full stamp
//	cid     uvarint
//	src     uvarint src+1 (so NoEntity encodes as 0)
//	seq     uvarint
//	buf     uvarint
//	lsrc    uvarint lsrc+1
//	lseq    uvarint
//	n       uvarint len(ACK)
//	stamp   full:  n × uvarint ACK value
//	        delta: uvarint c, then c × { uvarint index, uvarint increment }
//	dlen    uvarint
//	data    dlen bytes
//	crc     uint32  (IEEE, big-endian, over everything before it)
//
// Varints are encoding/binary unsigned varints and must be minimally
// encoded; the decoder rejects padded forms so that decode∘encode is the
// identity on every accepted datagram.
//
// Sync-point invariant: the encoder emits a full stamp for the first
// sequenced PDU of a stream, whenever SEQ is not exactly one past the
// previously encoded sequenced PDU (which covers retransmissions out of
// the send log), every StampEncoder interval-th PDU, and for every
// unsequenced PDU. The decoder's per-source cache therefore only
// advances along a contiguous chain of CRC-valid PDUs rooted at a full
// stamp, so the reconstructed vector is always bit-exact with what the
// sender stamped; loss merely forces the decoder to reject deltas (a
// typed ErrDeltaDesync, treated as loss by the link) until the next
// full-stamp sync point re-anchors it.
package pdu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

const (
	// WireVersion2 is the delta-stamp encoding version emitted by
	// MarshalV2.
	WireVersion2 uint8 = 2

	flagFullStamp = 1 << 1

	// DefaultStampInterval is the default sync-point spacing K: every
	// PDU whose SEQ is a multiple of K carries a full stamp even when a
	// delta would be smaller, bounding how long a receiver that lost a
	// delta's reference stays desynchronized.
	DefaultStampInterval Seq = 32

	// v2MinSize is the smallest well-formed v2 datagram: fixed prefix,
	// seven one-byte varints (cid src seq buf lsrc lseq n=0), a one-byte
	// dlen, and the CRC trailer.
	v2MinSize = 5 + 7 + 1 + 4
)

// V2 decoding errors (v2 shares ErrTruncated, ErrBadMagic, ErrBadVersion
// and ErrBadChecksum with the v1 codec).
var (
	// ErrBadVarint marks a varint field that is overlong, non-minimal or
	// out of range for its destination.
	ErrBadVarint = errors.New("pdu: malformed varint field")
	// ErrBadDelta marks a structurally invalid delta stamp (delta on an
	// unsequenced PDU, source outside its own stamp, index out of range).
	ErrBadDelta = errors.New("pdu: malformed delta stamp")
	// ErrDeltaDesync marks a delta stamp whose reference PDU the decoder
	// has not seen: the per-source cache is empty, behind, or ahead of
	// SEQ-1. Links treat it as loss — the PDU is dropped and recovered
	// by retransmission or the next full-stamp sync point.
	ErrDeltaDesync = errors.New("pdu: delta stamp without reference (decoder cache desynchronized)")
)

// StampEncoder carries one sender's reference stamp between MarshalV2
// calls: the SEQ and ACK vector of the last sequenced PDU it encoded.
// Every PDU a node sends carries its own Src (retransmissions come from
// the sender's own send log), so one encoder per node covers the whole
// outgoing stream. The zero value is ready to use and starts with a
// full-stamp sync point.
type StampEncoder struct {
	interval Seq
	lastSeq  Seq
	last     []Seq
	valid    bool
}

// NewStampEncoder returns an encoder with sync interval k (every PDU
// with SEQ%k == 0 is full-stamped). k <= 0 selects
// DefaultStampInterval; k == 1 forces a full stamp on every PDU,
// degenerating v2 to v1-equivalent stamps.
func NewStampEncoder(k int) *StampEncoder {
	e := &StampEncoder{}
	if k > 0 {
		e.interval = Seq(k)
	}
	return e
}

// Reset forgets the reference stamp; the next sequenced PDU is
// full-stamped.
func (e *StampEncoder) Reset() {
	e.lastSeq, e.valid = 0, false
	e.last = e.last[:0]
}

func (e *StampEncoder) syncInterval() Seq {
	if e == nil || e.interval == 0 {
		return DefaultStampInterval
	}
	return e.interval
}

// deltaCount reports whether p may carry a delta stamp against e's
// reference and, if so, how many entries changed. A full stamp is forced
// at every sync point: no reference yet, a non-contiguous SEQ (first PDU
// or a retransmission), every interval-th SEQ, a shrunken or regressed
// entry, or a delta that would not be smaller than the full vector.
func (e *StampEncoder) deltaCount(p *PDU) (int, bool) {
	if e == nil || !e.valid || !p.Kind.Sequenced() {
		return 0, false
	}
	if p.SEQ != e.lastSeq+1 || p.SEQ%e.syncInterval() == 0 {
		return 0, false
	}
	if len(e.last) != len(p.ACK) {
		return 0, false
	}
	c := 0
	for i, a := range p.ACK {
		if a < e.last[i] {
			return 0, false
		}
		if a != e.last[i] {
			c++
		}
	}
	if 2*c >= len(p.ACK) {
		return 0, false
	}
	return c, true
}

// note records p as the reference for the next MarshalV2 call. The
// reference only moves forward: a retransmission out of the send log
// (SEQ at or behind the live head) is full-stamped by deltaCount and
// must not become the reference, both so the live stream's delta chain
// survives retransmission rounds and because a receiver that needs the
// retransmission has, by definition, no contiguous cache to resolve a
// delta against.
func (e *StampEncoder) note(p *PDU) {
	if e == nil || !p.Kind.Sequenced() {
		return
	}
	if e.valid && p.SEQ <= e.lastSeq {
		return
	}
	e.lastSeq = p.SEQ
	e.last = append(e.last[:0], p.ACK...)
	e.valid = true
}

// EncodedSizeV2Bound returns an upper bound on the bytes MarshalAppendV2
// can produce for p (varint fields make the exact size state-dependent).
// Links use it for early-flush datagram budgeting.
func (p *PDU) EncodedSizeV2Bound() int {
	return 5 + // magic, version, kind, flags
		binary.MaxVarintLen32 + // cid
		binary.MaxVarintLen64 + // src+1
		binary.MaxVarintLen64 + // seq
		binary.MaxVarintLen32 + // buf
		binary.MaxVarintLen64 + // lsrc+1
		binary.MaxVarintLen64 + // lseq
		3 + // n (<= MaxUint16)
		len(p.ACK)*binary.MaxVarintLen64 + // full stamp dominates any accepted delta
		binary.MaxVarintLen32 + len(p.Data) +
		trailerSize
}

// MarshalV2 encodes the PDU as a self-contained v2 datagram, advancing
// enc's reference stamp. A nil enc always emits full stamps.
func (p *PDU) MarshalV2(enc *StampEncoder) ([]byte, error) {
	return p.MarshalAppendV2(make([]byte, 0, p.EncodedSizeV2Bound()), enc)
}

// MarshalAppendV2 encodes the PDU as MarshalV2 does, appending the
// datagram to buf and returning the extended slice. On success enc (when
// non-nil and p is sequenced) adopts p as the reference for the next
// call, so PDUs must be encoded in the order they are sent. With a buf
// of sufficient capacity the steady-state send path allocates nothing.
//
// When p carries a sender-side Delta annotation and extends the
// encoder's reference chain contiguously, the encoder trusts the
// annotation: the changed-entry scan and the O(n) reference copy both
// collapse to O(len(Delta)). The emitted bytes are identical to the
// dense diff because the annotation is, by contract, exactly the strict
// difference against the same reference PDU (Src, SEQ-1).
func (p *PDU) MarshalAppendV2(buf []byte, enc *StampEncoder) ([]byte, error) {
	if len(p.ACK) > math.MaxUint16 {
		return nil, fmt.Errorf("%w: ACK vector %d entries", ErrTooLong, len(p.ACK))
	}
	if len(p.Data) > math.MaxUint32 {
		return nil, fmt.Errorf("%w: data %d bytes", ErrTooLong, len(p.Data))
	}
	if p.Src < NoEntity || p.LSrc < NoEntity {
		return nil, fmt.Errorf("%w: negative source", ErrTooLong)
	}
	var c int
	var delta bool
	annotated := enc != nil && enc.valid && p.Delta != nil && p.Kind.Sequenced() &&
		p.SEQ == enc.lastSeq+1 && p.SEQ%enc.syncInterval() != 0 &&
		len(enc.last) == len(p.ACK) && 2*len(p.Delta) < len(p.ACK)
	if annotated {
		c, delta = len(p.Delta), true
	} else {
		c, delta = enc.deltaCount(p)
	}
	start := len(buf)
	buf = binary.BigEndian.AppendUint16(buf, Magic)
	var flags byte
	if p.NeedAck {
		flags |= flagNeedAck
	}
	if !delta {
		flags |= flagFullStamp
	}
	buf = append(buf, WireVersion2, byte(p.Kind), flags)
	buf = binary.AppendUvarint(buf, uint64(p.CID))
	buf = binary.AppendUvarint(buf, uint64(p.Src+1))
	buf = binary.AppendUvarint(buf, uint64(p.SEQ))
	buf = binary.AppendUvarint(buf, uint64(p.BUF))
	buf = binary.AppendUvarint(buf, uint64(p.LSrc+1))
	buf = binary.AppendUvarint(buf, uint64(p.LSeq))
	buf = binary.AppendUvarint(buf, uint64(len(p.ACK)))
	switch {
	case annotated:
		buf = binary.AppendUvarint(buf, uint64(c))
		for _, i := range p.Delta {
			buf = binary.AppendUvarint(buf, uint64(i))
			buf = binary.AppendUvarint(buf, uint64(p.ACK[i]-enc.last[i]))
		}
	case delta:
		buf = binary.AppendUvarint(buf, uint64(c))
		for i, a := range p.ACK {
			if a != enc.last[i] {
				buf = binary.AppendUvarint(buf, uint64(i))
				buf = binary.AppendUvarint(buf, uint64(a-enc.last[i]))
			}
		}
	default:
		for _, a := range p.ACK {
			buf = binary.AppendUvarint(buf, uint64(a))
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(p.Data)))
	buf = append(buf, p.Data...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:]))
	if annotated {
		// Advance the reference in place: only the annotated columns
		// moved, so the O(n) snapshot of note() is unnecessary.
		for _, i := range p.Delta {
			enc.last[i] = p.ACK[i]
		}
		enc.lastSeq = p.SEQ
	} else {
		enc.note(p)
	}
	return buf, nil
}

// stampRef is one source's cached reference stamp on the decode side.
type stampRef struct {
	seq   Seq
	ack   []Seq
	valid bool
}

// StampDecoder reconstructs full ACK vectors from delta stamps: a
// per-source cache of the last sequenced stamp decoded. One decoder per
// receiving link mirrors the per-sender FIFO order of the MC service, so
// a delta's reference is always the cache entry — or the delta is
// rejected with ErrDeltaDesync. The zero value is ready to use.
type StampDecoder struct {
	bySrc []stampRef
	// scratchIdx/scratchInc hold one datagram's parsed delta entries so
	// the whole delta can be validated before any state is touched;
	// scratchIdx doubles as the decoded PDU's Delta annotation.
	scratchIdx []Seq
	scratchInc []Seq
}

// Reset forgets every cached stamp, as after a reconnect.
func (d *StampDecoder) Reset() {
	for i := range d.bySrc {
		d.bySrc[i].valid = false
	}
}

// ref returns the cache slot for src, growing the table on demand. The
// caller has already bounded src by the PDU's own stamp width.
func (d *StampDecoder) ref(src EntityID) *stampRef {
	for int(src) >= len(d.bySrc) {
		d.bySrc = append(d.bySrc, stampRef{})
	}
	return &d.bySrc[src]
}

// UnmarshalV2 decodes a datagram produced by MarshalV2. The returned PDU
// owns freshly allocated slices.
func UnmarshalV2(b []byte, dec *StampDecoder) (*PDU, error) {
	p := new(PDU)
	if err := p.UnmarshalFromV2(b, dec); err != nil {
		return nil, err
	}
	return p, nil
}

// readUvarint decodes one minimally encoded unsigned varint, returning
// the value and the remaining bytes. Non-minimal (zero-padded) and
// overlong encodings are rejected so that accepted datagrams re-encode
// bit-identically.
func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, ErrBadVarint
	}
	if n > 1 && b[n-1] == 0 {
		return 0, nil, fmt.Errorf("%w: non-minimal encoding", ErrBadVarint)
	}
	return v, b[n:], nil
}

// readUvarintMax is readUvarint with an inclusive range bound.
func readUvarintMax(b []byte, max uint64) (uint64, []byte, error) {
	v, rest, err := readUvarint(b)
	if err != nil {
		return 0, nil, err
	}
	if v > max {
		return 0, nil, fmt.Errorf("%w: %d out of range", ErrBadVarint, v)
	}
	return v, rest, nil
}

// UnmarshalFromV2 decodes a datagram produced by MarshalV2 into p,
// reusing the capacity of p.ACK, p.Delta and p.Data as UnmarshalFrom
// does. Delta stamps are resolved against dec's per-source cache: the
// reconstructed p.ACK is bit-exact with the sender's stamp and p.Delta
// lists the changed indices for the engine's fold fast path (nil after a
// full stamp). dec is only advanced by a fully valid datagram, and only
// forward, so corrupt or replayed input can never poison the cache. A
// nil dec accepts full stamps only.
func (p *PDU) UnmarshalFromV2(b []byte, dec *StampDecoder) error {
	// Magic/version first, as in UnmarshalFrom: cross-version input
	// fails with ErrBadVersion whatever its length.
	if len(b) >= 3 {
		if m := binary.BigEndian.Uint16(b[0:2]); m != Magic {
			return fmt.Errorf("%w: %04x", ErrBadMagic, m)
		}
		if v := b[2]; v != WireVersion2 {
			return fmt.Errorf("%w: %d", ErrBadVersion, v)
		}
	}
	if len(b) < v2MinSize {
		return fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	body, crcBytes := b[:len(b)-trailerSize], b[len(b)-trailerSize:]
	if got, want := crc32.ChecksumIEEE(body), binary.BigEndian.Uint32(crcBytes); got != want {
		return fmt.Errorf("%w: got %08x want %08x", ErrBadChecksum, got, want)
	}
	p.Kind = Kind(body[3])
	flags := body[4]
	if extra := flags &^ (flagNeedAck | flagFullStamp); extra != 0 {
		return fmt.Errorf("%w: %02x", ErrBadFlags, extra)
	}
	p.NeedAck = flags&flagNeedAck != 0
	full := flags&flagFullStamp != 0
	rest := body[5:]
	var v uint64
	var err error
	if v, rest, err = readUvarintMax(rest, math.MaxUint32); err != nil {
		return fmt.Errorf("cid: %w", err)
	}
	p.CID = uint32(v)
	if v, rest, err = readUvarintMax(rest, math.MaxInt32+1); err != nil {
		return fmt.Errorf("src: %w", err)
	}
	p.Src = EntityID(int64(v) - 1)
	if v, rest, err = readUvarint(rest); err != nil {
		return fmt.Errorf("seq: %w", err)
	}
	p.SEQ = Seq(v)
	if v, rest, err = readUvarintMax(rest, math.MaxUint32); err != nil {
		return fmt.Errorf("buf: %w", err)
	}
	p.BUF = uint32(v)
	if v, rest, err = readUvarintMax(rest, math.MaxInt32+1); err != nil {
		return fmt.Errorf("lsrc: %w", err)
	}
	p.LSrc = EntityID(int64(v) - 1)
	if v, rest, err = readUvarint(rest); err != nil {
		return fmt.Errorf("lseq: %w", err)
	}
	p.LSeq = Seq(v)
	var nv uint64
	if nv, rest, err = readUvarintMax(rest, math.MaxUint16); err != nil {
		return fmt.Errorf("stamp width: %w", err)
	}
	n := int(nv)
	if p.ACK == nil || cap(p.ACK) < n {
		p.ACK = make([]Seq, n)
	} else {
		p.ACK = p.ACK[:n]
	}
	var ref *stampRef
	if full {
		p.Delta = nil
		for i := 0; i < n; i++ {
			if v, rest, err = readUvarint(rest); err != nil {
				return fmt.Errorf("stamp[%d]: %w", i, err)
			}
			p.ACK[i] = Seq(v)
		}
	} else {
		if !p.Kind.Sequenced() {
			return fmt.Errorf("%w: delta on unsequenced %s", ErrBadDelta, p.Kind)
		}
		if p.Src < 0 || int(p.Src) >= n {
			return fmt.Errorf("%w: src %d outside stamp of %d", ErrBadDelta, p.Src, n)
		}
		if dec == nil {
			return fmt.Errorf("%w: no decoder cache", ErrDeltaDesync)
		}
		ref = dec.ref(p.Src)
		if !ref.valid || len(ref.ack) != n || ref.seq+1 != p.SEQ {
			return fmt.Errorf("%w: src %d seq %d (cache seq %d)", ErrDeltaDesync, p.Src, p.SEQ, ref.seq)
		}
		var cv uint64
		if cv, rest, err = readUvarintMax(rest, uint64(n)); err != nil {
			return fmt.Errorf("delta count: %w", err)
		}
		c := int(cv)
		dec.scratchIdx = dec.scratchIdx[:0]
		dec.scratchInc = dec.scratchInc[:0]
		for i := 0; i < c; i++ {
			var idx uint64
			if idx, rest, err = readUvarintMax(rest, uint64(n)-1); err != nil {
				return fmt.Errorf("delta[%d] index: %w", i, err)
			}
			if v, rest, err = readUvarint(rest); err != nil {
				return fmt.Errorf("delta[%d] increment: %w", i, err)
			}
			dec.scratchIdx = append(dec.scratchIdx, Seq(idx))
			dec.scratchInc = append(dec.scratchInc, Seq(v))
		}
	}
	var dlen uint64
	if dlen, rest, err = readUvarintMax(rest, math.MaxUint32); err != nil {
		return fmt.Errorf("dlen: %w", err)
	}
	if uint64(len(rest)) != dlen {
		return fmt.Errorf("%w: data (have %d want %d)", ErrTruncated, len(rest), dlen)
	}
	p.Data = append(p.Data[:0], rest...)
	// The datagram is fully valid: advance the per-source cache. Full
	// stamps re-anchor it (forward only, so a replayed or retransmitted
	// old PDU cannot regress it); deltas extend the contiguous chain by
	// applying the parsed increments to the reference in place — O(c)
	// writes plus the one unavoidable O(n) copy into p.ACK, where the
	// old shape paid copy-out plus a full re-snapshot.
	if ref != nil {
		for i, idx := range dec.scratchIdx {
			ref.ack[idx] += dec.scratchInc[i]
		}
		ref.seq = p.SEQ
		copy(p.ACK, ref.ack)
		// p.Delta aliases dec's index scratch: valid until the next
		// decode with dec, exactly the lifetime of a scratch-decoded PDU.
		p.Delta = dec.scratchIdx
	} else if dec != nil && p.Kind.Sequenced() && p.Src >= 0 && int(p.Src) < n {
		r := dec.ref(p.Src)
		if !r.valid || p.SEQ > r.seq {
			r.seq = p.SEQ
			r.ack = append(r.ack[:0], p.ACK...)
			r.valid = true
		}
	}
	return nil
}
