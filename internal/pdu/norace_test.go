//go:build !race

package pdu

const raceEnabled = false
