// Package udpnet is a UDP transport for cobcast nodes. It substitutes for
// the paper's Ethernet testbed: datagrams may be lost, duplicated or
// reordered across senders, while a single sender's datagrams to one
// receiver stay ordered on a LAN or loopback path in practice — the MC
// service contract. Receive-buffer overrun shows up naturally: when the
// inbox channel is full, datagrams are dropped, exactly the loss mode the
// CO protocol is designed to repair.
//
// On Linux the transport amortizes syscalls: Broadcast sends one
// datagram to every peer with a single sendmmsg, BroadcastBatch sends a
// whole flush's frames to every peer with a single sendmmsg, and the
// read loop drains up to a ring's worth of datagrams per recvmmsg into
// pooled buffers. Elsewhere (and when disabled) the per-datagram
// WriteToUDP/ReadFromUDP path is used; both paths are byte-identical on
// the wire and share one set of counters.
package udpnet

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"

	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
)

// MaxDatagram is the largest datagram the transport accepts. Frame size
// grows with batch size and O(n) per PDU via the ACK vector; 60 KiB fits
// loopback and jumbo-frame LANs. Broadcast enforces this bound and
// returns ErrDatagramTooLarge beyond it.
const MaxDatagram = 60 * 1024

// DefaultSocketBuffer is the SO_RCVBUF/SO_SNDBUF size requested for new
// transports unless WithSocketBuffers overrides it. ~4 MiB absorbs a
// burst of ~70 max-size datagrams in the kernel before the OS starts
// dropping; kernel-level drops are invisible to the Overrun counter
// (which only sees inbox-channel overflow), so a generous kernel buffer
// keeps the observable loss mode the one the protocol is built around.
const DefaultSocketBuffer = 4 << 20

// batchEnv is the environment override for the batched-syscall path:
// "0"/"false"/"off" forces the portable per-datagram path, "1"/"true"/
// "on" requests batching (still subject to platform support). The
// WithBatchSyscalls option takes precedence over the environment.
const batchEnv = "COBCAST_BATCH_SYSCALLS"

// ErrDatagramTooLarge is returned by Broadcast for datagrams over
// MaxDatagram; each rejection is also counted in Stats.Oversize.
var ErrDatagramTooLarge = errors.New("udpnet: datagram exceeds MaxDatagram")

// Stats counts transport-level events.
type Stats struct {
	Sent     uint64
	Received uint64
	// Overrun counts datagrams dropped because the inbox was full.
	Overrun uint64
	// ReadErrors counts failed or short reads.
	ReadErrors uint64
	// Oversize counts datagrams rejected by Broadcast for exceeding
	// MaxDatagram.
	Oversize uint64
	// SendErrors counts per-peer transmissions the kernel rejected
	// (EPERM, ENOBUFS, unreachable peer, ...); Sent counts only
	// successes, so Sent+SendErrors is the number attempted.
	SendErrors uint64
	// BytesSent and BytesReceived count datagram payload bytes on the
	// wire; BytesSent accumulates once per successful peer
	// transmission, like Sent.
	BytesSent     uint64
	BytesReceived uint64
	// SendmmsgCalls and RecvmmsgCalls count batched syscalls on the
	// Linux fast path (0 on the portable path); Sent/SendmmsgCalls is
	// the send-side amortization ratio.
	SendmmsgCalls uint64
	RecvmmsgCalls uint64
}

// Option configures a Transport at construction.
type Option func(*config)

type config struct {
	// batch is the explicit WithBatchSyscalls choice; nil means
	// environment then platform auto-detection.
	batch *bool
	// sockBuf is the requested SO_RCVBUF/SO_SNDBUF size in bytes;
	// <= 0 leaves the OS defaults.
	sockBuf int
}

// WithBatchSyscalls forces the batched sendmmsg/recvmmsg wire path on
// or off. The default is auto-detection: batched on Linux (falling back
// at runtime if the kernel rejects the syscalls), per-datagram
// elsewhere; the COBCAST_BATCH_SYSCALLS environment variable ("0"/"1")
// overrides the auto-detection but not this option.
func WithBatchSyscalls(on bool) Option {
	return func(c *config) { c.batch = &on }
}

// WithSocketBuffers requests kernel socket buffers of the given size
// (SO_RCVBUF and SO_SNDBUF, bytes) instead of the DefaultSocketBuffer.
// bytes <= 0 leaves the OS defaults in place. The kernel may cap the
// request (Linux: net.core.rmem_max/wmem_max); the effective sizes are
// reported by SocketBuffers and in /statez. Note the interaction with
// Stats.Overrun: Overrun counts only inbox-channel overflow, while an
// undersized kernel buffer drops datagrams before the transport ever
// sees them — if delivered traffic looks lossy with Overrun at 0, the
// kernel buffer is the first suspect.
func WithSocketBuffers(bytes int) Option {
	return func(c *config) { c.sockBuf = bytes }
}

// Transport is a cobcast.Transport over UDP.
type Transport struct {
	conn  *net.UDPConn
	peers []*net.UDPAddr
	recv  chan []byte

	stop      chan struct{}
	readDone  chan struct{}
	closeOnce sync.Once
	closeErr  error

	// batch reports whether the sendmmsg/recvmmsg fast path was
	// selected at construction (it may still fall back at runtime on
	// an unsupported kernel; mm tracks that).
	batch bool
	// readBufBytes/writeBufBytes are the effective kernel socket
	// buffer sizes (0 = OS default left in place).
	readBufBytes, writeBufBytes int

	// mm is the platform-specific batched-syscall state; empty on
	// non-Linux builds.
	mm mmsgState

	// m holds the transport counters on the shared obsv atomic type —
	// the single counting scheme for the whole runtime. The send path
	// (Broadcast/BroadcastBatch, caller goroutine) and the receive
	// path (read-loop goroutine) write disjoint counters; Stats and
	// registry scrapers read from any goroutine via atomic loads.
	m obsv.TransportMetrics
}

// New binds a UDP socket on local (e.g. "127.0.0.1:9001") and targets the
// given peer addresses (every other cluster member). inboxCap bounds the
// receive queue; 0 means 1024.
func New(local string, peers []string, inboxCap int, opts ...Option) (*Transport, error) {
	if len(peers) == 0 {
		return nil, errors.New("udpnet: no peers")
	}
	if inboxCap <= 0 {
		inboxCap = 1024
	}
	cfg := config{sockBuf: DefaultSocketBuffer}
	for _, opt := range opts {
		opt(&cfg)
	}
	laddr, err := net.ResolveUDPAddr("udp", local)
	if err != nil {
		return nil, fmt.Errorf("udpnet: local %q: %w", local, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udpnet: listen %q: %w", local, err)
	}
	t := &Transport{
		conn:     conn,
		recv:     make(chan []byte, inboxCap),
		stop:     make(chan struct{}),
		readDone: make(chan struct{}),
	}
	for _, p := range peers {
		addr, err := net.ResolveUDPAddr("udp", p)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("udpnet: peer %q: %w", p, err)
		}
		t.peers = append(t.peers, addr)
	}
	if cfg.sockBuf > 0 {
		// Best-effort: the kernel may cap the request; the effective
		// sizes (read back where the platform allows) are what count.
		_ = conn.SetReadBuffer(cfg.sockBuf)
		_ = conn.SetWriteBuffer(cfg.sockBuf)
	}
	t.readBufBytes, t.writeBufBytes = effectiveSocketBuffers(conn, cfg.sockBuf)
	if resolveBatch(cfg) {
		// initMmsg prepares the raw-syscall state; failure (exotic
		// peer address, raw access unavailable) means the portable
		// path, not a construction error.
		if err := t.initMmsg(); err == nil {
			t.batch = true
			t.m.SendBatch = obsv.NewHistogram(obsv.BatchBuckets()...)
			t.m.RecvBatch = obsv.NewHistogram(obsv.BatchBuckets()...)
		}
	}
	if t.batch {
		go t.readLoopMmsg()
	} else {
		go t.readLoop()
	}
	return t, nil
}

// resolveBatch decides the wire path: explicit option, then the
// COBCAST_BATCH_SYSCALLS environment variable, then platform support.
func resolveBatch(cfg config) bool {
	if cfg.batch != nil {
		return *cfg.batch && mmsgSupported
	}
	switch os.Getenv(batchEnv) {
	case "0", "false", "off":
		return false
	case "1", "true", "on":
		return mmsgSupported
	}
	return mmsgSupported
}

// LocalAddr returns the bound socket address (useful with port 0).
func (t *Transport) LocalAddr() string { return t.conn.LocalAddr().String() }

// BatchSyscalls reports whether the transport selected the batched
// sendmmsg/recvmmsg path at construction.
func (t *Transport) BatchSyscalls() bool { return t.batch }

// SocketBuffers returns the effective kernel socket buffer sizes in
// bytes (read, write); 0 means the OS default was left in place or the
// platform cannot report it.
func (t *Transport) SocketBuffers() (read, write int) {
	return t.readBufBytes, t.writeBufBytes
}

// Stats returns a snapshot of the transport counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Sent:          t.m.Sent.Load(),
		Received:      t.m.Received.Load(),
		Overrun:       t.m.Overrun.Load(),
		ReadErrors:    t.m.ReadErrors.Load(),
		Oversize:      t.m.Oversize.Load(),
		SendErrors:    t.m.SendErrors.Load(),
		BytesSent:     t.m.BytesSent.Load(),
		BytesReceived: t.m.BytesReceived.Load(),
		SendmmsgCalls: t.m.SendmmsgCalls.Load(),
		RecvmmsgCalls: t.m.RecvmmsgCalls.Load(),
	}
}

// Metrics returns the live counters for registry registration; the
// returned pointer stays valid for the transport's lifetime.
func (t *Transport) Metrics() *obsv.TransportMetrics { return &t.m }

// State returns the transport's static configuration for /statez.
func (t *Transport) State() obsv.TransportState {
	return obsv.TransportState{
		BatchSyscalls:    t.batch,
		ReadBufferBytes:  t.readBufBytes,
		WriteBufferBytes: t.writeBufBytes,
	}
}

// Broadcast sends the datagram to every peer — one sendmmsg syscall on
// the batched path, one WriteToUDP per peer otherwise. Oversize
// datagrams are rejected with ErrDatagramTooLarge before touching the
// socket; per-peer send errors are counted in Stats.SendErrors but not
// returned: UDP loss is the protocol's problem to repair.
func (t *Transport) Broadcast(datagram []byte) error {
	if len(datagram) > MaxDatagram {
		t.m.Oversize.Inc()
		return fmt.Errorf("%w: %d bytes > %d", ErrDatagramTooLarge, len(datagram), MaxDatagram)
	}
	select {
	case <-t.stop:
		return errors.New("udpnet: closed")
	default:
	}
	t.sendOne(datagram)
	return nil
}

// BroadcastBatch sends every datagram to every peer, amortizing the
// whole batch over as few syscalls as possible (a single sendmmsg for
// len(datagrams)×len(peers) transmissions on the batched path). Like
// Broadcast, the datagrams are handed to the kernel before returning,
// so the caller may reuse the buffers immediately. Oversize datagrams
// are rejected individually (counted in Stats.Oversize, last rejection
// returned) while the rest still go out.
func (t *Transport) BroadcastBatch(datagrams [][]byte) error {
	select {
	case <-t.stop:
		return errors.New("udpnet: closed")
	default:
	}
	for _, d := range datagrams {
		if len(d) > MaxDatagram {
			// Rare path: route each datagram through Broadcast so
			// oversize entries are counted and reported per datagram.
			var err error
			for _, d := range datagrams {
				if e := t.Broadcast(d); e != nil {
					err = e
				}
			}
			return err
		}
	}
	if len(datagrams) == 0 {
		return nil
	}
	if t.sendMmsgActive() && t.batchMmsg(datagrams) {
		return nil
	}
	for _, d := range datagrams {
		t.sendOne(d)
	}
	return nil
}

// sendOne transmits one datagram to every peer, preferring the batched
// path. Both paths count Sent/BytesSent once per successful peer
// transmission and SendErrors per rejected one.
func (t *Transport) sendOne(datagram []byte) {
	if t.sendMmsgActive() && t.broadcastMmsg(datagram) {
		return
	}
	for _, addr := range t.peers {
		if _, err := t.conn.WriteToUDP(datagram, addr); err == nil {
			t.m.Sent.Inc()
			t.m.BytesSent.Add(uint64(len(datagram)))
		} else {
			t.m.SendErrors.Inc()
		}
	}
}

// Recv returns the inbox channel; it is closed after Close. Delivered
// slices are pool-backed (pdu.GetDatagram): the consumer owns each one
// and should pass it to pdu.PutDatagram once decoded to keep the receive
// path allocation-free.
func (t *Transport) Recv() <-chan []byte { return t.recv }

// Close shuts the socket and inbox down.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		close(t.stop)
		t.closeErr = t.conn.Close()
		<-t.readDone
		close(t.recv)
	})
	return t.closeErr
}

func (t *Transport) readLoop() {
	defer close(t.readDone)
	t.readLoopBody()
}

// readLoopBody is the portable per-datagram receive loop; the Linux
// batched read loop falls back to it if the kernel lacks recvmmsg.
func (t *Transport) readLoopBody() {
	for {
		// Read straight into a pooled buffer and hand it to the consumer
		// without copying; the consumer recycles it via pdu.PutDatagram
		// after decoding, so steady state allocates nothing here.
		buf := pdu.GetDatagram()[:MaxDatagram]
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			pdu.PutDatagram(buf)
			select {
			case <-t.stop:
				return
			default:
				t.m.ReadErrors.Inc()
				continue
			}
		}
		t.deliverInbound(buf[:n])
	}
}

// deliverInbound hands one pool-backed datagram to the inbox, dropping
// it on overrun — the paper's receive-buffer-overrun loss, repaired by
// the CO protocol's selective retransmission.
func (t *Transport) deliverInbound(buf []byte) {
	select {
	case t.recv <- buf:
		t.m.Received.Inc()
		t.m.BytesReceived.Add(uint64(len(buf)))
	default:
		t.m.Overrun.Inc()
		pdu.PutDatagram(buf)
	}
}
