// Package udpnet is a UDP transport for cobcast nodes. It substitutes for
// the paper's Ethernet testbed: datagrams may be lost, duplicated or
// reordered across senders, while a single sender's datagrams to one
// receiver stay ordered on a LAN or loopback path in practice — the MC
// service contract. Receive-buffer overrun shows up naturally: when the
// inbox channel is full, datagrams are dropped, exactly the loss mode the
// CO protocol is designed to repair.
package udpnet

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
)

// MaxDatagram is the largest datagram the transport accepts. Frame size
// grows with batch size and O(n) per PDU via the ACK vector; 60 KiB fits
// loopback and jumbo-frame LANs. Broadcast enforces this bound and
// returns ErrDatagramTooLarge beyond it.
const MaxDatagram = 60 * 1024

// ErrDatagramTooLarge is returned by Broadcast for datagrams over
// MaxDatagram; each rejection is also counted in Stats.Oversize.
var ErrDatagramTooLarge = errors.New("udpnet: datagram exceeds MaxDatagram")

// Stats counts transport-level events.
type Stats struct {
	Sent     uint64
	Received uint64
	// Overrun counts datagrams dropped because the inbox was full.
	Overrun uint64
	// ReadErrors counts failed or short reads.
	ReadErrors uint64
	// Oversize counts datagrams rejected by Broadcast for exceeding
	// MaxDatagram.
	Oversize uint64
	// BytesSent and BytesReceived count datagram payload bytes on the
	// wire; BytesSent accumulates once per peer transmission, like Sent.
	BytesSent     uint64
	BytesReceived uint64
}

// Transport is a cobcast.Transport over UDP.
type Transport struct {
	conn  *net.UDPConn
	peers []*net.UDPAddr
	recv  chan []byte

	stop      chan struct{}
	readDone  chan struct{}
	closeOnce sync.Once
	closeErr  error

	// m holds the transport counters on the shared obsv atomic type —
	// the single counting scheme for the whole runtime. The send path
	// (Broadcast, caller goroutine) and the receive path (readLoop
	// goroutine) write disjoint counters; Stats and registry scrapers
	// read from any goroutine via atomic loads.
	m obsv.TransportMetrics
}

// New binds a UDP socket on local (e.g. "127.0.0.1:9001") and targets the
// given peer addresses (every other cluster member). inboxCap bounds the
// receive queue; 0 means 1024.
func New(local string, peers []string, inboxCap int) (*Transport, error) {
	if len(peers) == 0 {
		return nil, errors.New("udpnet: no peers")
	}
	if inboxCap <= 0 {
		inboxCap = 1024
	}
	laddr, err := net.ResolveUDPAddr("udp", local)
	if err != nil {
		return nil, fmt.Errorf("udpnet: local %q: %w", local, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("udpnet: listen %q: %w", local, err)
	}
	t := &Transport{
		conn:     conn,
		recv:     make(chan []byte, inboxCap),
		stop:     make(chan struct{}),
		readDone: make(chan struct{}),
	}
	for _, p := range peers {
		addr, err := net.ResolveUDPAddr("udp", p)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("udpnet: peer %q: %w", p, err)
		}
		t.peers = append(t.peers, addr)
	}
	go t.readLoop()
	return t, nil
}

// LocalAddr returns the bound socket address (useful with port 0).
func (t *Transport) LocalAddr() string { return t.conn.LocalAddr().String() }

// Stats returns a snapshot of the transport counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Sent:          t.m.Sent.Load(),
		Received:      t.m.Received.Load(),
		Overrun:       t.m.Overrun.Load(),
		ReadErrors:    t.m.ReadErrors.Load(),
		Oversize:      t.m.Oversize.Load(),
		BytesSent:     t.m.BytesSent.Load(),
		BytesReceived: t.m.BytesReceived.Load(),
	}
}

// Metrics returns the live counters for registry registration; the
// returned pointer stays valid for the transport's lifetime.
func (t *Transport) Metrics() *obsv.TransportMetrics { return &t.m }

// Broadcast sends the datagram to every peer. Oversize datagrams are
// rejected with ErrDatagramTooLarge before touching the socket; per-peer
// send errors are ignored beyond counting: UDP loss is the protocol's
// problem to repair.
func (t *Transport) Broadcast(datagram []byte) error {
	if len(datagram) > MaxDatagram {
		t.m.Oversize.Inc()
		return fmt.Errorf("%w: %d bytes > %d", ErrDatagramTooLarge, len(datagram), MaxDatagram)
	}
	select {
	case <-t.stop:
		return errors.New("udpnet: closed")
	default:
	}
	for _, addr := range t.peers {
		if _, err := t.conn.WriteToUDP(datagram, addr); err == nil {
			t.m.Sent.Inc()
			t.m.BytesSent.Add(uint64(len(datagram)))
		}
	}
	return nil
}

// Recv returns the inbox channel; it is closed after Close. Delivered
// slices are pool-backed (pdu.GetDatagram): the consumer owns each one
// and should pass it to pdu.PutDatagram once decoded to keep the receive
// path allocation-free.
func (t *Transport) Recv() <-chan []byte { return t.recv }

// Close shuts the socket and inbox down.
func (t *Transport) Close() error {
	t.closeOnce.Do(func() {
		close(t.stop)
		t.closeErr = t.conn.Close()
		<-t.readDone
		close(t.recv)
	})
	return t.closeErr
}

func (t *Transport) readLoop() {
	defer close(t.readDone)
	for {
		// Read straight into a pooled buffer and hand it to the consumer
		// without copying; the consumer recycles it via pdu.PutDatagram
		// after decoding, so steady state allocates nothing here.
		buf := pdu.GetDatagram()[:MaxDatagram]
		n, _, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			pdu.PutDatagram(buf)
			select {
			case <-t.stop:
				return
			default:
				t.m.ReadErrors.Inc()
				continue
			}
		}
		select {
		case t.recv <- buf[:n]:
			t.m.Received.Inc()
			t.m.BytesReceived.Add(uint64(n))
		default:
			// Receive-buffer overrun: the paper's loss model, repaired
			// by the CO protocol's selective retransmission.
			t.m.Overrun.Inc()
			pdu.PutDatagram(buf)
		}
	}
}
