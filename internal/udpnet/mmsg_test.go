package udpnet

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cobcast/internal/pdu"
)

// pairOpts is pair with transport options applied to both ends.
func pairOpts(t *testing.T, inboxCap int, opts ...Option) (*Transport, *Transport) {
	t.Helper()
	a, err := New("127.0.0.1:0", []string{"127.0.0.1:1"}, inboxCap, opts...)
	if err != nil {
		t.Fatal(err)
	}
	aAddr := a.LocalAddr()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := New("127.0.0.1:0", []string{aAddr}, inboxCap, opts...)
	if err != nil {
		t.Fatal(err)
	}
	a, err = New(aAddr, []string{b.LocalAddr()}, inboxCap, opts...)
	if err != nil {
		b.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

// seededWorkload builds count datagrams of varying size from a fixed
// seed, so the exact same byte sequence can be replayed over both wire
// paths.
func seededWorkload(seed int64, count int) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]byte, count)
	for i := range out {
		d := make([]byte, 16+rng.Intn(512))
		rng.Read(d)
		// Tag with the index so ordering violations are identifiable.
		d[0], d[1] = byte(i>>8), byte(i)
		out[i] = d
	}
	return out
}

// runWorkload replays the workload from a to b in batches and returns
// the digest of the received byte sequence, in arrival order.
func runWorkload(t *testing.T, a, b *Transport, work [][]byte, batch int) [32]byte {
	t.Helper()
	done := make(chan [32]byte)
	go func() {
		h := sha256.New()
		for range work {
			select {
			case d := <-b.Recv():
				h.Write(d)
				pdu.PutDatagram(d)
			case <-time.After(10 * time.Second):
				t.Error("timeout draining workload")
				close(done)
				return
			}
		}
		var sum [32]byte
		h.Sum(sum[:0])
		done <- sum
	}()
	for i := 0; i < len(work); i += batch {
		end := i + batch
		if end > len(work) {
			end = len(work)
		}
		if err := a.BroadcastBatch(work[i:end]); err != nil {
			t.Fatal(err)
		}
		// Pace lightly so the inbox never overruns: equivalence needs
		// zero loss, and loopback offers no flow control.
		if i%16 == 0 {
			time.Sleep(200 * time.Microsecond)
		}
	}
	sum, ok := <-done
	if !ok {
		t.FailNow()
	}
	return sum
}

// TestWirePathEquivalence replays one seeded workload over the batched
// and per-datagram wire paths and requires byte-identical arrival
// sequences: same datagrams, same per-sender order, same digest.
func TestWirePathEquivalence(t *testing.T) {
	work := seededWorkload(42, 400)
	var digests [2][32]byte
	for i, on := range []bool{true, false} {
		a, b := pairOpts(t, 4096, WithBatchSyscalls(on))
		if on && !a.BatchSyscalls() {
			t.Skip("batched syscalls unsupported on this platform")
		}
		digests[i] = runWorkload(t, a, b, work, 16)
		if s := b.Stats(); s.Overrun > 0 {
			t.Fatalf("path batch=%v lost datagrams to overrun: %+v", on, s)
		}
	}
	if digests[0] != digests[1] {
		t.Errorf("delivered sequences differ across wire paths: %x vs %x", digests[0], digests[1])
	}
}

// TestBroadcastBatchOrderAndCounters sends one multi-datagram batch and
// checks arrival order, content, and the syscall-amortization counters.
func TestBroadcastBatchOrderAndCounters(t *testing.T) {
	a, b := pairOpts(t, 4096)
	const count = 32
	batch := make([][]byte, count)
	for i := range batch {
		batch[i] = []byte(fmt.Sprintf("batch-datagram-%02d", i))
	}
	if err := a.BroadcastBatch(batch); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < count; i++ {
		got := recvOne(t, b)
		if !bytes.Equal(got, batch[i]) {
			t.Fatalf("position %d: got %q want %q", i, got, batch[i])
		}
	}
	s := a.Stats()
	if s.Sent != count {
		t.Errorf("Sent = %d, want %d", s.Sent, count)
	}
	var wantBytes uint64
	for _, d := range batch {
		wantBytes += uint64(len(d))
	}
	if s.BytesSent != wantBytes {
		t.Errorf("BytesSent = %d, want %d", s.BytesSent, wantBytes)
	}
	if a.BatchSyscalls() {
		// The whole batch fits one sendmmsg toward the single peer.
		if s.SendmmsgCalls == 0 || s.SendmmsgCalls > 2 {
			t.Errorf("SendmmsgCalls = %d, want 1..2 for one %d-datagram batch", s.SendmmsgCalls, count)
		}
		if rs := b.Stats(); rs.RecvmmsgCalls == 0 {
			t.Errorf("receiver RecvmmsgCalls = 0 on batched path (stats %+v)", rs)
		}
	} else if s.SendmmsgCalls != 0 {
		t.Errorf("SendmmsgCalls = %d on per-datagram path", s.SendmmsgCalls)
	}
	if err := a.BroadcastBatch(nil); err != nil {
		t.Errorf("empty batch errored: %v", err)
	}
}

// TestBroadcastBatchOversizeMixed checks that an oversize datagram in a
// batch is rejected and counted while the rest still go out.
func TestBroadcastBatchOversizeMixed(t *testing.T) {
	a, b := pairOpts(t, 64)
	batch := [][]byte{
		[]byte("fine-1"),
		make([]byte, MaxDatagram+1),
		[]byte("fine-2"),
	}
	if err := a.BroadcastBatch(batch); err == nil {
		t.Error("oversize datagram in batch not reported")
	}
	if got := recvOne(t, b); string(got) != "fine-1" {
		t.Errorf("first datagram = %q", got)
	}
	if got := recvOne(t, b); string(got) != "fine-2" {
		t.Errorf("second datagram = %q", got)
	}
	if s := a.Stats(); s.Oversize != 1 || s.Sent != 2 {
		t.Errorf("stats after mixed batch: %+v, want Oversize=1 Sent=2", s)
	}
}

// TestSendErrorsCounted drives a send the kernel must reject —
// destination port 0 fails sendto/sendmmsg with EINVAL — and checks the
// rejection lands in SendErrors instead of vanishing (on either path).
func TestSendErrorsCounted(t *testing.T) {
	for _, on := range []bool{true, false} {
		tr, err := New("127.0.0.1:0", []string{"127.0.0.1:0"}, 0, WithBatchSyscalls(on))
		if err != nil {
			t.Fatal(err)
		}
		if on && !tr.BatchSyscalls() {
			tr.Close()
			continue
		}
		if err := tr.Broadcast([]byte("never leaves")); err != nil {
			t.Fatal(err)
		}
		s := tr.Stats()
		tr.Close()
		if s.SendErrors != 1 || s.Sent != 0 {
			t.Errorf("batch=%v: stats %+v, want SendErrors=1 Sent=0", on, s)
		}
	}
}

// TestSocketBuffers checks the option plumbs through and the effective
// sizes are reported. The kernel may clamp (or on Linux double) the
// request, so only coarse shape is asserted.
func TestSocketBuffers(t *testing.T) {
	tr, err := New("127.0.0.1:0", []string{"127.0.0.1:1"}, 0, WithSocketBuffers(256<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	r, w := tr.SocketBuffers()
	if r <= 0 || w <= 0 {
		t.Errorf("SocketBuffers = %d, %d; want positive effective sizes", r, w)
	}
	st := tr.State()
	if st.ReadBufferBytes != r || st.WriteBufferBytes != w {
		t.Errorf("State buffers %+v disagree with SocketBuffers %d/%d", st, r, w)
	}
	if st.BatchSyscalls != tr.BatchSyscalls() {
		t.Errorf("State.BatchSyscalls = %v, want %v", st.BatchSyscalls, tr.BatchSyscalls())
	}
}

// TestBatchSyscallsOptionForcesPortablePath pins the explicit opt-out.
func TestBatchSyscallsOptionForcesPortablePath(t *testing.T) {
	tr, err := New("127.0.0.1:0", []string{"127.0.0.1:1"}, 0, WithBatchSyscalls(false))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.BatchSyscalls() {
		t.Error("WithBatchSyscalls(false) left the batched path on")
	}
}

// TestBatchedSendSteadyStateAllocs requires the mmsg send path to be
// allocation-free in steady state: the sockaddrs, iovec patterns and
// mmsghdr rings are all pre-built, and the send closure is bound once.
func TestBatchedSendSteadyStateAllocs(t *testing.T) {
	// Peers nobody listens on: sendto succeeds (UDP is connectionless),
	// nothing arrives anywhere, so only the send path runs.
	tr, err := New("127.0.0.1:0", []string{"127.0.0.1:9", "127.0.0.1:11"}, 0, WithBatchSyscalls(true))
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if !tr.BatchSyscalls() {
		t.Skip("batched syscalls unsupported on this platform")
	}
	datagram := bytes.Repeat([]byte("x"), 512)
	batch := [][]byte{datagram, datagram, datagram, datagram}
	// Warm up: first BroadcastBatch sizes the batch pattern.
	for i := 0; i < 4; i++ {
		if err := tr.BroadcastBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := tr.Broadcast(datagram); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("Broadcast allocates %.2f per op on the mmsg path, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if err := tr.BroadcastBatch(batch); err != nil {
			t.Fatal(err)
		}
	}); allocs > 0 {
		t.Errorf("BroadcastBatch allocates %.2f per op on the mmsg path, want 0", allocs)
	}
	if s := tr.Stats(); s.SendErrors > 0 {
		t.Errorf("unexpected send errors: %+v", s)
	}
}

// TestBatchedReceiveSoak pushes thousands of datagrams through the
// recvmmsg ring in bursts (run it with -race to exercise the slot
// ownership protocol) and checks nothing is lost, reordered or torn.
func TestBatchedReceiveSoak(t *testing.T) {
	a, b := pairOpts(t, 8192, WithBatchSyscalls(true))
	if !a.BatchSyscalls() {
		t.Skip("batched syscalls unsupported on this platform")
	}
	const total, batch = 4000, 20
	done := make(chan int)
	go func() {
		next := 0
		for next < total {
			select {
			case d := <-b.Recv():
				got := int(d[0])<<8 | int(d[1])
				if got != next {
					t.Errorf("datagram %d arrived at position %d", got, next)
				}
				next++
				pdu.PutDatagram(d)
			case <-time.After(10 * time.Second):
				done <- next
				return
			}
		}
		done <- next
	}()
	buf := make([][]byte, batch)
	for i := 0; i < total; i += batch {
		for j := range buf {
			d := make([]byte, 128)
			d[0], d[1] = byte((i+j)>>8), byte(i+j)
			buf[j] = d
		}
		if err := a.BroadcastBatch(buf); err != nil {
			t.Fatal(err)
		}
		time.Sleep(50 * time.Microsecond)
	}
	if got := <-done; got != total {
		t.Fatalf("received %d/%d datagrams (receiver stats %+v)", got, total, b.Stats())
	}
	s := b.Stats()
	if s.RecvmmsgCalls == 0 || s.RecvmmsgCalls > s.Received {
		t.Errorf("RecvmmsgCalls = %d with Received = %d", s.RecvmmsgCalls, s.Received)
	}
}
