//go:build linux && (amd64 || arm64 || riscv64 || loong64)

// Batched-syscall wire path: sendmmsg/recvmmsg via the net.UDPConn's
// SyscallConn, keeping the module zero-dependency. One sendmmsg carries
// a whole flush (every datagram × every peer) and one recvmmsg drains
// up to recvRingSize inbound datagrams into a ring of pooled,
// pre-registered buffers. The path degrades gracefully: any condition
// it cannot express (IPv6 zones, empty datagrams, a kernel without the
// syscalls) routes through the portable per-datagram code, which is
// byte-identical on the wire.
package udpnet

import (
	"errors"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"unsafe"

	"cobcast/internal/pdu"
)

// mmsgSupported gates auto-detection: Linux has had sendmmsg/recvmmsg
// since 3.0/2.6.33; if a kernel (or seccomp filter) rejects them anyway
// the transport falls back at the first syscall.
const mmsgSupported = true

// recvRingSize is the number of pre-registered datagram slots one
// recvmmsg can fill: 32 slots × 60 KiB bounds the ring under 2 MiB
// while letting a single syscall drain a deep kernel queue.
const recvRingSize = 32

// mmsghdr mirrors the kernel's struct mmsghdr: a msghdr plus the
// kernel-written transfer length. Go's alignment rules reproduce the C
// layout (trailing padding to the msghdr's pointer alignment) on every
// linux arch.
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
}

// rawPeer is one peer's pre-built sockaddr. name points at sa4 or sa6;
// the mmsgState.peers slice is allocated once and never grown, so the
// interior pointers stay valid for the transport's lifetime.
type rawPeer struct {
	sa4     syscall.RawSockaddrInet4
	sa6     syscall.RawSockaddrInet6
	name    unsafe.Pointer
	namelen uint32
}

// init encodes addr for an AF_INET (v6Socket false) or AF_INET6 socket.
// Port bytes are written positionally so the in-memory representation
// is network order on any host endianness.
func (p *rawPeer) init(addr *net.UDPAddr, v6Socket bool) error {
	if addr.Zone != "" {
		// Scoped addresses would need an interface-index lookup;
		// leave them to the portable path.
		return errors.New("udpnet: zoned IPv6 peer on batched path")
	}
	if !v6Socket {
		ip4 := addr.IP.To4()
		if ip4 == nil {
			return errors.New("udpnet: IPv6 peer on IPv4 socket")
		}
		p.sa4.Family = syscall.AF_INET
		putPortNBO(&p.sa4.Port, addr.Port)
		copy(p.sa4.Addr[:], ip4)
		p.name = unsafe.Pointer(&p.sa4)
		p.namelen = syscall.SizeofSockaddrInet4
		return nil
	}
	ip := addr.IP.To16() // v4 peers become v4-mapped v6 addresses
	if ip == nil {
		return errors.New("udpnet: unencodable peer IP")
	}
	p.sa6.Family = syscall.AF_INET6
	putPortNBO(&p.sa6.Port, addr.Port)
	copy(p.sa6.Addr[:], ip)
	p.name = unsafe.Pointer(&p.sa6)
	p.namelen = syscall.SizeofSockaddrInet6
	return nil
}

func putPortNBO(dst *uint16, port int) {
	b := (*[2]byte)(unsafe.Pointer(dst))
	b[0] = byte(port >> 8)
	b[1] = byte(port)
}

// mmsgState is the Linux batched-syscall state. The send scratch
// (hdrs/iovs) is guarded by mu so Broadcast stays safe for concurrent
// callers like the portable path; the protocol loop is in practice the
// only sender, so the lock is uncontended.
type mmsgState struct {
	rc    syscall.RawConn
	peers []rawPeer

	// sendOK flips off permanently if the kernel rejects sendmmsg
	// (ENOSYS under seccomp, say); reads are atomic because send and
	// receive goroutines both consult it.
	sendOK atomic.Bool
	// recvOK is only touched by the read-loop goroutine.
	recvOK bool

	mu sync.Mutex
	// bcastIov/bcastHdrs: the single-datagram Broadcast pattern — one
	// shared iovec, one pre-built header per peer.
	bcastIov  []syscall.Iovec
	bcastHdrs []mmsghdr
	// batchIovs/batchHdrs: the BroadcastBatch pattern — one iovec per
	// datagram row, headers laid out datagram-major so the kernel's
	// sequential processing preserves per-peer datagram order.
	batchIovs []syscall.Iovec
	batchHdrs []mmsghdr
	batchRows int
	// hdrs is the active entry slice for the in-flight send; off the
	// resume point across EAGAIN waits. sendFn is bound once so the
	// hot path passes a preallocated closure to RawConn.Write.
	hdrs     []mmsghdr
	off      int
	fellBack bool
	sendFn   func(fd uintptr) bool
}

// initMmsg prepares the raw-syscall state; an error means the portable
// path (not a construction failure).
func (t *Transport) initMmsg() error {
	rc, err := t.conn.SyscallConn()
	if err != nil {
		return err
	}
	la, ok := t.conn.LocalAddr().(*net.UDPAddr)
	if !ok {
		return errors.New("udpnet: non-UDP local address")
	}
	v6 := la.IP.To4() == nil
	mm := &t.mm
	mm.rc = rc
	mm.peers = make([]rawPeer, len(t.peers))
	for i, a := range t.peers {
		if err := mm.peers[i].init(a, v6); err != nil {
			return err
		}
	}
	mm.bcastIov = make([]syscall.Iovec, 1)
	mm.bcastHdrs = make([]mmsghdr, len(mm.peers))
	for i := range mm.bcastHdrs {
		h := &mm.bcastHdrs[i]
		h.hdr.Name = (*byte)(mm.peers[i].name)
		h.hdr.Namelen = mm.peers[i].namelen
		h.hdr.Iov = &mm.bcastIov[0]
		h.hdr.Iovlen = 1
	}
	mm.sendFn = t.sendStep
	mm.sendOK.Store(true)
	mm.recvOK = true
	return nil
}

func (t *Transport) sendMmsgActive() bool { return t.batch && t.mm.sendOK.Load() }

// broadcastMmsg sends one datagram to every peer with one sendmmsg.
// false means nothing was sent and the caller should use the portable
// path.
func (t *Transport) broadcastMmsg(datagram []byte) bool {
	if len(datagram) == 0 {
		return false
	}
	mm := &t.mm
	mm.mu.Lock()
	defer mm.mu.Unlock()
	mm.bcastIov[0].Base = &datagram[0]
	mm.bcastIov[0].SetLen(len(datagram))
	mm.hdrs = mm.bcastHdrs
	ok := t.runSend()
	runtime.KeepAlive(datagram)
	return ok
}

// batchMmsg sends every datagram to every peer with one sendmmsg
// (datagram-major, so each peer sees the datagrams in order). false
// means nothing was sent.
func (t *Transport) batchMmsg(datagrams [][]byte) bool {
	for _, d := range datagrams {
		if len(d) == 0 {
			return false
		}
	}
	mm := &t.mm
	mm.mu.Lock()
	defer mm.mu.Unlock()
	mm.ensureBatch(len(datagrams))
	for i, d := range datagrams {
		mm.batchIovs[i].Base = &d[0]
		mm.batchIovs[i].SetLen(len(d))
	}
	mm.hdrs = mm.batchHdrs[:len(datagrams)*len(mm.peers)]
	ok := t.runSend()
	runtime.KeepAlive(datagrams)
	return ok
}

// ensureBatch lays out the (datagram × peer) header pattern for at
// least rows datagrams. Growing reallocates the iovec array the headers
// point into, so the whole pattern is rebuilt; doubling amortizes this
// to zero steady-state allocations.
func (mm *mmsgState) ensureBatch(rows int) {
	if rows <= mm.batchRows {
		return
	}
	if rows < 2*mm.batchRows {
		rows = 2 * mm.batchRows
	}
	peers := len(mm.peers)
	iovs := make([]syscall.Iovec, rows)
	hdrs := make([]mmsghdr, rows*peers)
	for r := 0; r < rows; r++ {
		for p := 0; p < peers; p++ {
			h := &hdrs[r*peers+p]
			h.hdr.Name = (*byte)(mm.peers[p].name)
			h.hdr.Namelen = mm.peers[p].namelen
			h.hdr.Iov = &iovs[r]
			h.hdr.Iovlen = 1
		}
	}
	mm.batchIovs, mm.batchHdrs, mm.batchRows = iovs, hdrs, rows
}

// runSend pushes mm.hdrs through sendmmsg, waiting out EAGAIN via the
// runtime poller. Caller holds mm.mu. false means the kernel lacks the
// syscall and nothing was sent.
func (t *Transport) runSend() bool {
	mm := &t.mm
	mm.off = 0
	mm.fellBack = false
	if err := mm.rc.Write(mm.sendFn); err != nil {
		// Socket closed mid-send: remaining entries are lost
		// datagrams, indistinguishable from network loss.
		return true
	}
	if mm.fellBack {
		mm.sendOK.Store(false)
		return false
	}
	return true
}

// sendStep is one writability window: issue sendmmsg until the batch is
// done (true) or the socket would block (false → the poller waits and
// calls again). Entry errors skip the failing head entry, counted in
// SendErrors, and carry on — an EPERM/ENOBUFS storm shows up in the
// counter instead of stalling the flush.
func (t *Transport) sendStep(fd uintptr) bool {
	mm := &t.mm
	for mm.off < len(mm.hdrs) {
		n, errno := sendmmsg(fd, mm.hdrs[mm.off:])
		t.m.SendmmsgCalls.Inc()
		switch {
		case errno == 0 && n > 0:
			t.m.SendBatch.Observe(uint64(n))
			for i := 0; i < n; i++ {
				t.m.Sent.Inc()
				t.m.BytesSent.Add(uint64(mm.hdrs[mm.off+i].hdr.Iov.Len))
			}
			mm.off += n
		case errno == syscall.EAGAIN:
			return false
		case errno == syscall.EINTR:
			// retry
		case errno == syscall.ENOSYS || errno == syscall.EOPNOTSUPP:
			if mm.off == 0 {
				mm.fellBack = true // nothing sent: caller retries portably
				return true
			}
			t.m.SendErrors.Add(uint64(len(mm.hdrs) - mm.off))
			mm.off = len(mm.hdrs)
		default:
			t.m.SendErrors.Inc()
			mm.off++
		}
	}
	return true
}

// readLoopMmsg drains the socket with recvmmsg into a ring of pooled
// slots: each filled slot's buffer is handed to the inbox (ownership
// transfers to the consumer, who recycles it via pdu.PutDatagram) and
// the slot is refilled from the pool, re-pointing its iovec. Steady
// state allocates nothing: taken buffers cycle back through the pool.
func (t *Transport) readLoopMmsg() {
	defer close(t.readDone)
	mm := &t.mm
	ring := pdu.NewDatagramRing(recvRingSize)
	defer ring.Release()
	hdrs := make([]mmsghdr, recvRingSize)
	iovs := make([]syscall.Iovec, recvRingSize)
	for i := range hdrs {
		iovs[i].Base = &ring.Buf(i)[0]
		iovs[i].SetLen(MaxDatagram)
		hdrs[i].hdr.Iov = &iovs[i]
		hdrs[i].hdr.Iovlen = 1
	}
	var n int
	var errno syscall.Errno
	recvStep := func(fd uintptr) bool {
		for {
			n, errno = recvmmsg(fd, hdrs)
			if errno == syscall.EINTR {
				continue
			}
			return errno != syscall.EAGAIN
		}
	}
	for {
		if err := mm.rc.Read(recvStep); err != nil {
			select {
			case <-t.stop:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			t.m.ReadErrors.Inc()
			continue
		}
		switch {
		case errno == 0 && n > 0:
			t.m.RecvmmsgCalls.Inc()
			t.m.RecvBatch.Observe(uint64(n))
			for i := 0; i < n; i++ {
				t.deliverInbound(ring.Take(i, int(hdrs[i].len)))
				iovs[i].Base = &ring.Buf(i)[0]
			}
		case errno == syscall.ENOSYS || errno == syscall.EOPNOTSUPP:
			// Kernel without recvmmsg: per-datagram reads from here on.
			mm.recvOK = false
			t.readLoopBody()
			return
		default:
			select {
			case <-t.stop:
				return
			default:
				t.m.ReadErrors.Inc()
			}
		}
	}
}

func sendmmsg(fd uintptr, hdrs []mmsghdr) (int, syscall.Errno) {
	n, _, e := syscall.Syscall6(sysSENDMMSG, fd,
		uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)), 0, 0, 0)
	return int(n), e
}

func recvmmsg(fd uintptr, hdrs []mmsghdr) (int, syscall.Errno) {
	n, _, e := syscall.Syscall6(sysRECVMMSG, fd,
		uintptr(unsafe.Pointer(&hdrs[0])), uintptr(len(hdrs)), 0, 0, 0)
	return int(n), e
}

// effectiveSocketBuffers reads the kernel's view of SO_RCVBUF/SO_SNDBUF
// (Linux doubles the requested value for bookkeeping headroom and caps
// it at rmem_max/wmem_max).
func effectiveSocketBuffers(conn *net.UDPConn, requested int) (r, w int) {
	rc, err := conn.SyscallConn()
	if err != nil {
		return requested, requested
	}
	_ = rc.Control(func(fd uintptr) {
		if v, err := syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_RCVBUF); err == nil {
			r = v
		}
		if v, err := syscall.GetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_SNDBUF); err == nil {
			w = v
		}
	})
	return r, w
}
