//go:build !(linux && (amd64 || arm64 || riscv64 || loong64))

// Portable fallback for platforms without sendmmsg/recvmmsg: the
// batched-syscall hooks all decline, so every send and receive goes
// through the per-datagram WriteToUDP/ReadFromUDP path in udpnet.go.
// The wire format is identical; only the syscall count differs.
package udpnet

import (
	"errors"
	"net"
)

const mmsgSupported = false

// mmsgState is empty off Linux; the hooks below keep udpnet.go
// platform-agnostic.
type mmsgState struct{}

func (t *Transport) initMmsg() error {
	return errors.New("udpnet: batched syscalls unsupported on this platform")
}

func (t *Transport) sendMmsgActive() bool { return false }

func (t *Transport) broadcastMmsg(datagram []byte) bool { return false }

func (t *Transport) batchMmsg(datagrams [][]byte) bool { return false }

// readLoopMmsg never runs off Linux (New only selects it when initMmsg
// succeeded), but keep the symbol total: it degrades to the portable
// loop.
func (t *Transport) readLoopMmsg() {
	defer close(t.readDone)
	t.readLoopBody()
}

// effectiveSocketBuffers cannot portably read SO_RCVBUF/SO_SNDBUF back;
// report the requested sizes as a best-effort answer (0 = OS default).
func effectiveSocketBuffers(conn *net.UDPConn, requested int) (r, w int) {
	if requested <= 0 {
		return 0, 0
	}
	return requested, requested
}
