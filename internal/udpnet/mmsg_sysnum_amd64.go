//go:build linux

package udpnet

// linux/amd64 syscall numbers; the stdlib syscall table predates
// sendmmsg (307), so both are pinned here.
const (
	sysSENDMMSG = 307
	sysRECVMMSG = 299
)
