package udpnet

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// pair binds two loopback transports pointed at each other.
func pair(t *testing.T, inboxCap int) (*Transport, *Transport) {
	t.Helper()
	a, err := New("127.0.0.1:0", []string{"127.0.0.1:1"}, inboxCap)
	if err != nil {
		t.Fatal(err)
	}
	aAddr := a.LocalAddr()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := New("127.0.0.1:0", []string{aAddr}, inboxCap)
	if err != nil {
		t.Fatal(err)
	}
	a, err = New(aAddr, []string{b.LocalAddr()}, inboxCap)
	if err != nil {
		b.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func recvOne(t *testing.T, tr *Transport) []byte {
	t.Helper()
	select {
	case b, ok := <-tr.Recv():
		if !ok {
			t.Fatal("recv channel closed")
		}
		return b
	case <-time.After(5 * time.Second):
		t.Fatal("timeout waiting for datagram")
		return nil
	}
}

func TestRoundTrip(t *testing.T) {
	a, b := pair(t, 0)
	msg := []byte("over the loopback")
	if err := a.Broadcast(msg); err != nil {
		t.Fatal(err)
	}
	got := recvOne(t, b)
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
	if err := b.Broadcast([]byte("reply")); err != nil {
		t.Fatal(err)
	}
	if got := recvOne(t, a); string(got) != "reply" {
		t.Fatalf("reply = %q", got)
	}
	if s := a.Stats(); s.Sent == 0 || s.Received == 0 {
		t.Errorf("stats: %+v", s)
	}
}

func TestManyDatagramsInOrderOnLoopback(t *testing.T) {
	a, b := pair(t, 4096)
	const count = 200
	for i := 0; i < count; i++ {
		if err := a.Broadcast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < count; i++ {
		got := recvOne(t, b)
		if got[0] != byte(i) {
			t.Fatalf("position %d: got %d (loopback reordered?)", i, got[0])
		}
	}
}

func TestValidation(t *testing.T) {
	if _, err := New("127.0.0.1:0", nil, 0); err == nil {
		t.Error("no peers accepted")
	}
	if _, err := New("###", []string{"127.0.0.1:1"}, 0); err == nil {
		t.Error("bad local addr accepted")
	}
	if _, err := New("127.0.0.1:0", []string{"###"}, 0); err == nil {
		t.Error("bad peer accepted")
	}
}

func TestOversizeDatagramRejected(t *testing.T) {
	a, b := pair(t, 0)
	err := a.Broadcast(make([]byte, MaxDatagram+1))
	if !errors.Is(err, ErrDatagramTooLarge) {
		t.Errorf("oversize error = %v, want ErrDatagramTooLarge", err)
	}
	if s := a.Stats(); s.Oversize != 1 || s.Sent != 0 {
		t.Errorf("after oversize reject: %+v, want Oversize=1 Sent=0", s)
	}
	// A datagram at exactly the bound still goes through.
	if err := a.Broadcast(make([]byte, MaxDatagram)); err != nil {
		t.Fatalf("max-size datagram rejected: %v", err)
	}
	if got := recvOne(t, b); len(got) != MaxDatagram {
		t.Errorf("received %d bytes, want %d", len(got), MaxDatagram)
	}
	if s := a.Stats(); s.Oversize != 1 {
		t.Errorf("Oversize moved on a valid send: %+v", s)
	}
}

func TestCloseIsIdempotentAndStopsTraffic(t *testing.T) {
	a, err := New("127.0.0.1:0", []string{"127.0.0.1:1"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("second close errored")
	}
	if err := a.Broadcast([]byte("x")); err == nil {
		t.Error("broadcast after close succeeded")
	}
	if _, ok := <-a.Recv(); ok {
		t.Error("recv not closed")
	}
}

func TestInboxOverrunCounts(t *testing.T) {
	// Tiny inbox with nobody draining: the reader must drop, not block.
	a, b := pair(t, 2)
	const count = 100
	for i := 0; i < count; i++ {
		if err := a.Broadcast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := b.Stats()
		if s.Received+s.Overrun >= count/2 && s.Overrun > 0 {
			return // drops observed, reader alive
		}
		if time.Now().After(deadline) {
			t.Fatalf("no overrun observed: %+v (UDP may have dropped in-kernel)", s)
		}
		time.Sleep(time.Millisecond)
	}
}
