//go:build linux && (arm64 || riscv64 || loong64)

package udpnet

// Generic (asm-generic) Linux syscall table, shared by arm64, riscv64
// and loong64.
const (
	sysSENDMMSG = 269
	sysRECVMMSG = 243
)
