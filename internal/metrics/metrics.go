// Package metrics provides the small statistics toolkit used by the
// benchmark harness: histograms with percentiles, counters, and aligned
// text tables for rendering the paper's figures and tables as terminal
// output.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
)

// Histogram accumulates float64 samples. The zero value is ready to use.
// It is safe for concurrent use.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
}

// Record adds a sample.
func (h *Histogram) Record(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, v)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// Mean returns the arithmetic mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	m := h.samples[0]
	for _, v := range h.samples[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	m := h.samples[0]
	for _, v := range h.samples[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// StdDev returns the population standard deviation, or 0 with fewer than
// two samples.
func (h *Histogram) StdDev() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) < 2 {
		return 0
	}
	var sum float64
	for _, v := range h.samples {
		sum += v
	}
	mean := sum / float64(len(h.samples))
	var ss float64
	for _, v := range h.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(h.samples)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank, or 0 with no samples.
func (h *Histogram) Percentile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
	if p <= 0 {
		return h.samples[0]
	}
	if p >= 100 {
		return h.samples[len(h.samples)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(h.samples))))
	if rank < 1 {
		rank = 1
	}
	return h.samples[rank-1]
}

// Table accumulates rows and renders them with aligned columns. Used by
// cmd/cobench to print each experiment in the shape of the paper's
// figures and tables.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with a title line and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("-", len(t.title)))
		b.WriteByte('\n')
	}
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	if len(t.headers) > 0 {
		fmt.Fprintln(w, strings.Join(t.headers, "\t"))
	}
	for _, row := range t.rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
	}
	w.Flush()
	return b.String()
}
