package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 ||
		h.StdDev() != 0 || h.Percentile(50) != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []float64{4, 2, 8, 6} {
		h.Record(v)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if h.Min() != 2 || h.Max() != 8 {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if got, want := h.StdDev(), math.Sqrt(5); math.Abs(got-want) > 1e-9 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(float64(i))
	}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {1, 1}, {50, 50}, {95, 95}, {99, 99}, {100, 100}, {150, 100},
	}
	for _, tt := range tests {
		if got := h.Percentile(tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	// Recording after a percentile query must re-sort.
	h.Record(0.5)
	if got := h.Percentile(0); got != 0.5 {
		t.Errorf("Percentile(0) after Record = %v, want 0.5", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(1)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Errorf("Count = %d, want 8000", h.Count())
	}
}

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Figure 8", "n", "Tco", "Tap")
	tbl.AddRow(2, 1.5, "3ms")
	tbl.AddRow(4, 2.25, "6ms")
	s := tbl.String()
	for _, want := range []string{"Figure 8", "n", "Tco", "Tap", "1.500", "2.250", "3ms", "6ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, rule, header, 2 rows
		t.Errorf("table has %d lines, want 5:\n%s", len(lines), s)
	}
}

func TestTableNoTitle(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.AddRow("x")
	if strings.Contains(tbl.String(), "---") {
		t.Error("title rule printed for empty title")
	}
}
