// Package obsv is the live-introspection layer for cobcast: lock-cheap
// atomic counters and fixed-bucket histograms that the engine and the
// runtime publish into, a Registry that renders them as Prometheus text
// exposition and JSON state snapshots, and an opt-in stdlib HTTP server
// (Serve) exposing /metrics, /statez, and net/http/pprof.
//
// The package imports nothing but the standard library so that
// internal/core can depend on it without dragging IO into the sans-IO
// engine. Every instrumentation entry point is nil-safe: a nil
// *Histogram or a nil metrics family is a no-op, so an engine built
// without a registry pays only an untaken nil-check branch.
package obsv

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use. It is safe for concurrent use; reads (Load) may run
// on any goroutine while the owner increments.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Histogram is a fixed-boundary histogram of uint64 observations.
// Buckets are cumulative only at snapshot time; Observe does a single
// branchless-ish scan over at most len(bounds) comparisons plus two
// atomic adds, so it is cheap enough for per-PDU paths. A nil
// *Histogram ignores observations, which is what makes instrumentation
// call sites nil-safe without guards.
type Histogram struct {
	bounds []uint64 // ascending upper bounds; implicit +Inf bucket last
	counts []atomic.Uint64
	sum    atomic.Uint64
	total  atomic.Uint64
}

// NewHistogram returns a histogram with the given ascending upper
// bounds. An implicit +Inf bucket is appended.
func NewHistogram(bounds ...uint64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obsv: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one observation. Safe on a nil receiver (no-op) and
// for concurrent use.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a histogram, with
// cumulative bucket counts as Prometheus expects.
type HistogramSnapshot struct {
	Bounds     []uint64 // upper bounds; +Inf is implicit as the final bucket
	Cumulative []uint64 // len(Bounds)+1, monotone; last == Count
	Sum        uint64
	Count      uint64
}

// Snapshot copies the histogram. Counts are loaded bucket-by-bucket
// without a global lock, so concurrent Observes may straddle buckets;
// the snapshot is still internally monotone because cumulation happens
// after all loads. Safe on a nil receiver (returns a zero snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]uint64, len(h.counts)),
		Sum:        h.sum.Load(),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Cumulative[i] = cum
	}
	s.Count = cum
	return s
}

// Quantile returns an upper-bound estimate of the q-quantile (0..1)
// from bucket boundaries: the upper bound of the bucket containing the
// q-th observation, or +Inf if it falls in the overflow bucket. Zero
// observations yield 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	for i, c := range s.Cumulative {
		if c >= rank {
			if i < len(s.Bounds) {
				return float64(s.Bounds[i])
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}

// LatencyBucketsUS are the default microsecond boundaries used for the
// broadcast→deliver and ack-wait histograms: 50µs to 1s, roughly
// log-spaced, matching the virtual-time delays the sim and the chaos
// harness use (hundreds of µs to tens of ms).
func LatencyBucketsUS() []uint64 {
	return []uint64{50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000, 1000000}
}

// BatchBuckets are the default boundaries for link flush batch sizes
// (PDUs per datagram/flush), powers of two up to the memLink cap.
func BatchBuckets() []uint64 {
	return []uint64{1, 2, 4, 8, 16, 32, 64, 128}
}
