package obsv

import (
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler returns an http.Handler serving the registry on a private
// mux: Prometheus text at /metrics, JSON state snapshots at /statez,
// and the stdlib profiler under /debug/pprof/. A private mux (rather
// than http.DefaultServeMux, which importing net/http/pprof would
// otherwise pollute) keeps the endpoint opt-in per server.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteMetrics(w)
	})
	mux.HandleFunc("/statez", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteStatez(w)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteTracez(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("cobcast observability endpoint\n/metrics  Prometheus text exposition\n/statez   JSON entity state snapshots (with stall-analyzer verdicts)\n/tracez   JSON flight-recorder dumps (per-node protocol event rings)\n/debug/pprof/  stdlib profiler\n"))
	})
	return mux
}

// Server is a running observability endpoint.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the observability endpoint on addr (e.g. ":9090" or
// "127.0.0.1:0") and serves it in a background goroutine until Close.
func Serve(reg *Registry, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{
		Handler:           Handler(reg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() { _ = srv.Serve(ln) }()
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint.
func (s *Server) Close() error { return s.srv.Close() }
