package obsv

// Stall is one stall-analyzer verdict: a message (or pending submit)
// an entity is holding undelivered, the pipeline stage it is stuck in,
// the exact protocol condition that is unmet, and the peers whose
// confirmations are missing. Produced by the core entity (which alone
// can read the AL/PAL matrices), attributed to a node by the registry,
// and served on /statez and in failure dumps.
type Stall struct {
	// Node is the registry label of the entity reporting the stall
	// (filled by the collector; empty when the entity is read direct).
	Node string `json:"node,omitempty"`
	// Msg identifies the stuck message as "s<src>#<seq>".
	Msg string `json:"msg"`
	// Kind is the PDU kind ("data", "sync"), empty for pending submits.
	Kind string `json:"kind,omitempty"`
	// Stage names the pipeline stage holding the message:
	// parked | pack-wait | ack-wait | commit-wait | total-order-hold |
	// flow-blocked.
	Stage string `json:"stage"`
	// Reason states the unmet protocol condition in plain words.
	Reason string `json:"reason"`
	// WaitingOn lists the entity IDs whose confirmation (or
	// retransmission) must arrive before the message can advance.
	WaitingOn []int `json:"waiting_on,omitempty"`
}
