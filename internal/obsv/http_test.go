package obsv_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"cobcast/internal/obsv"
	"cobcast/internal/obsv/promtext"
)

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestServeEndpoints(t *testing.T) {
	reg := testRegistry()
	srv, err := obsv.Serve(reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	resp, body := get(t, base+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if _, err := promtext.Parse(strings.NewReader(string(body))); err != nil {
		t.Fatalf("/metrics not valid exposition: %v", err)
	}

	resp, body = get(t, base+"/statez")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statez status %d", resp.StatusCode)
	}
	var statez obsv.Statez
	if err := json.Unmarshal(body, &statez); err != nil {
		t.Fatalf("/statez not valid JSON: %v", err)
	}
	if len(statez.Nodes) != 1 || statez.Nodes[0].Seq != 7 {
		t.Fatalf("/statez content: %+v", statez)
	}

	resp, body = get(t, base+"/debug/pprof/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Fatal("pprof index does not list profiles")
	}

	resp, _ = get(t, base+"/")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("index status %d", resp.StatusCode)
	}
	resp, _ = get(t, base+"/nosuch")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", resp.StatusCode)
	}
}

func TestServeBadAddress(t *testing.T) {
	if _, err := obsv.Serve(obsv.NewRegistry(), "256.0.0.1:bad"); err == nil {
		t.Fatal("bad address accepted")
	}
}
