// Go runtime health, build identity, and process uptime for /metrics.
// One implementation shared by the HTTP exposition and cosoak's trend
// sampling, so "live heap" means the same thing everywhere.

package obsv

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"time"
)

// LiveHeap forces a garbage collection and returns the post-GC heap
// bytes in use — the retention measure: what the program is actually
// holding, with garbage excluded. This is deliberately expensive (a
// full GC); use it for trend sampling, not per-scrape gauges (the
// /metrics heap gauges read MemStats without forcing a collection).
func LiveHeap() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// gcPauseBucketsUS bounds the GC pause histogram: 10µs .. 500ms.
func gcPauseBucketsUS() []uint64 {
	return []uint64{10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000, 100000, 500000}
}

// runtimeTracker accumulates GC pause observations across scrapes so
// the pause histogram is cumulative like every other histogram. Scrape
// N feeds the pauses that completed since scrape N-1; gaps longer than
// the runtime's 256-entry pause log lose the overwritten tail.
type runtimeTracker struct {
	mu        sync.Mutex
	pauses    *Histogram
	lastNumGC uint32
}

// sample reads the current runtime stats and folds new GC pauses into
// the cumulative histogram.
func (t *runtimeTracker) sample() (goroutines int, ms runtime.MemStats, pauses HistogramSnapshot) {
	goroutines = runtime.NumGoroutine()
	runtime.ReadMemStats(&ms)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.pauses == nil {
		t.pauses = NewHistogram(gcPauseBucketsUS()...)
	}
	from := t.lastNumGC
	if ms.NumGC > from+uint32(len(ms.PauseNs)) {
		from = ms.NumGC - uint32(len(ms.PauseNs))
	}
	for i := from; i < ms.NumGC; i++ {
		t.pauses.Observe(ms.PauseNs[(i+255)%256] / 1000)
	}
	t.lastNumGC = ms.NumGC
	return goroutines, ms, t.pauses.Snapshot()
}

// buildIdentity resolves once per process: the module version (or VCS
// revision when built from a checkout) and the Go toolchain version.
var buildIdentity = sync.OnceValue(func() (id struct{ version, goVersion string }) {
	id.version = "unknown"
	id.goVersion = runtime.Version()
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		id.version = v
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && len(s.Value) >= 12 {
			id.version = s.Value[:12]
		}
	}
	return
})

// SetBuildLabel attaches an extra label (for example the default wire
// codec) to the cobcast_build_info gauge, so scrapes from mixed
// clusters stay attributable. Later writes to the same key win.
func (r *Registry) SetBuildLabel(key, value string) {
	if r == nil || key == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.buildLabels == nil {
		r.buildLabels = make(map[string]string)
	}
	r.buildLabels[key] = value
}

// writeRuntimeMetrics renders process-wide Go runtime health, build
// identity and uptime. Called from WriteMetrics on every scrape.
func (r *Registry) writeRuntimeMetrics(bw *errWriter) {
	goroutines, ms, pauses := r.rt.sample()

	bw.printf("# HELP cobcast_go_goroutines Current goroutine count.\n# TYPE cobcast_go_goroutines gauge\n")
	bw.printf("cobcast_go_goroutines %d\n", goroutines)
	bw.printf("# HELP cobcast_go_heap_alloc_bytes Bytes of allocated heap objects (live + not yet swept).\n# TYPE cobcast_go_heap_alloc_bytes gauge\n")
	bw.printf("cobcast_go_heap_alloc_bytes %d\n", ms.HeapAlloc)
	bw.printf("# HELP cobcast_go_heap_inuse_bytes Bytes in in-use heap spans.\n# TYPE cobcast_go_heap_inuse_bytes gauge\n")
	bw.printf("cobcast_go_heap_inuse_bytes %d\n", ms.HeapInuse)
	bw.printf("# HELP cobcast_go_gc_cycles_total Completed GC cycles.\n# TYPE cobcast_go_gc_cycles_total counter\n")
	bw.printf("cobcast_go_gc_cycles_total %d\n", ms.NumGC)

	bw.printf("# HELP cobcast_go_gc_pause_us Stop-the-world GC pause durations, microseconds.\n# TYPE cobcast_go_gc_pause_us histogram\n")
	for i, b := range pauses.Bounds {
		bw.printf("cobcast_go_gc_pause_us_bucket{le=\"%d\"} %d\n", b, pauses.Cumulative[i])
	}
	bw.printf("cobcast_go_gc_pause_us_bucket{le=\"+Inf\"} %d\n", pauses.Count)
	bw.printf("cobcast_go_gc_pause_us_sum %d\n", pauses.Sum)
	bw.printf("cobcast_go_gc_pause_us_count %d\n", pauses.Count)

	if !r.start.IsZero() {
		bw.printf("# HELP cobcast_process_uptime_seconds Seconds since the registry was created (process start, in practice).\n# TYPE cobcast_process_uptime_seconds gauge\n")
		bw.printf("cobcast_process_uptime_seconds %.3f\n", time.Since(r.start).Seconds())
	}

	id := buildIdentity()
	labels := fmt.Sprintf("version=%q,go=%q", id.version, id.goVersion)
	r.mu.Lock()
	keys := make([]string, 0, len(r.buildLabels))
	for k := range r.buildLabels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		labels += fmt.Sprintf(",%s=%q", k, r.buildLabels[k])
	}
	r.mu.Unlock()
	bw.printf("# HELP cobcast_build_info Build identity; value is always 1.\n# TYPE cobcast_build_info gauge\n")
	bw.printf("cobcast_build_info{%s} 1\n", labels)
}
