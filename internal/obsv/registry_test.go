package obsv_test

import (
	"bytes"
	"strings"
	"testing"

	"cobcast/internal/obsv"
	"cobcast/internal/obsv/promtext"
)

// populateEntity bumps a distinctive value into every entity counter so
// renders are distinguishable from zero defaults.
func populateEntity(m *obsv.EntityMetrics) {
	m.DataSent.Add(1)
	m.SyncSent.Add(2)
	m.AckOnlySent.Add(3)
	m.RetSent.Add(4)
	m.DataRecv.Add(5)
	m.SyncRecv.Add(6)
	m.AckOnlyRecv.Add(7)
	m.RetRecv.Add(8)
	m.Accepted.Add(9)
	m.Duplicates.Add(10)
	m.Parked.Add(11)
	m.F1Detections.Add(12)
	m.F2Detections.Add(13)
	m.RetServed.Add(14)
	m.Preacked.Add(15)
	m.Acked.Add(16)
	m.Committed.Add(17)
	m.Delivered.Add(18)
	m.CPIDisplaced.Add(19)
	m.CPIDisplacement.Add(20)
	m.DeferredConfirms.Add(21)
	m.FlowBlocked.Add(22)
	m.InvalidPDUs.Add(23)
	m.DeliverLatencyUS.Observe(120)
	m.AckWaitUS.Observe(3000)
}

func testRegistry() *obsv.Registry {
	reg := obsv.NewRegistry()
	em := obsv.NewEntityMetrics()
	populateEntity(em)
	lm := obsv.NewLinkMetrics()
	lm.Flush(4, true)
	lm.Flush(1, false)
	snap := func() (obsv.StateSnapshot, bool) {
		return obsv.StateSnapshot{
			Node: "0", Seq: 7,
			REQ: []uint64{8, 8}, MinAL: []uint64{7, 7}, MinPAL: []uint64{7, 7},
			Committed: []uint64{7, 7}, RRL: []int{1, 2},
			PRL: 3, ARL: 4, Parked: 0, SendLog: 5, PendingSubmits: 0,
			BufFree: 4000, BufUnits: 4096, Quiescent: false,
		}, true
	}
	reg.RegisterNode("0", em, lm, snap)

	var tm obsv.TransportMetrics
	tm.Sent.Add(100)
	tm.Received.Add(90)
	tm.Overrun.Add(2)
	reg.RegisterTransport("0", &tm)

	var nm obsv.NetworkMetrics
	nm.Sent.Add(500)
	nm.Delivered.Add(450)
	nm.DroppedLoss.Add(40)
	nm.DroppedOverrun.Add(7)
	nm.DroppedPartition.Add(3)
	reg.RegisterNetwork("memnet", &nm)
	return reg
}

func TestWriteMetricsIsValidPrometheusText(t *testing.T) {
	reg := testRegistry()
	var buf bytes.Buffer
	if err := reg.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := promtext.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, buf.String())
	}

	checks := []struct {
		family string
		labels map[string]string
		want   float64
	}{
		{"cobcast_pdus_sent_total", map[string]string{"node": "0", "kind": "data"}, 1},
		{"cobcast_pdus_sent_total", map[string]string{"node": "0", "kind": "ret"}, 4},
		{"cobcast_pdus_received_total", map[string]string{"node": "0", "kind": "sync"}, 6},
		{"cobcast_loss_detections_total", map[string]string{"cond": "f1"}, 12},
		{"cobcast_loss_detections_total", map[string]string{"cond": "f2"}, 13},
		{"cobcast_retransmissions_served_total", map[string]string{"node": "0"}, 14},
		{"cobcast_committed_total", nil, 17},
		{"cobcast_cpi_displaced_total", nil, 19},
		{"cobcast_cpi_displacement_positions_total", nil, 20},
		{"cobcast_deferred_confirms_total", nil, 21},
		{"cobcast_link_flushed_pdus_total", nil, 5},
		{"cobcast_link_early_flushes_total", nil, 1},
		{"cobcast_transport_datagrams_sent_total", map[string]string{"transport": "0"}, 100},
		{"cobcast_net_pdus_dropped_total", map[string]string{"cause": "loss"}, 40},
		{"cobcast_net_pdus_dropped_total", map[string]string{"cause": "partition"}, 3},
		{"cobcast_seq", map[string]string{"node": "0"}, 7},
		{"cobcast_rrl_depth", nil, 3}, // summed over sources: 1+2
		{"cobcast_sendlog_pdus", nil, 5},
		{"cobcast_buf_free_units", nil, 4000},
		{"cobcast_quiescent", nil, 0},
	}
	for _, c := range checks {
		got, ok := fams.Value(c.family, c.labels)
		if !ok {
			t.Errorf("%s%v: no samples", c.family, c.labels)
			continue
		}
		if got != c.want {
			t.Errorf("%s%v = %v, want %v", c.family, c.labels, got, c.want)
		}
	}

	for _, hist := range []string{"cobcast_deliver_latency_us", "cobcast_ack_wait_us", "cobcast_link_flush_batch_pdus"} {
		f, ok := fams[hist]
		if !ok {
			t.Errorf("histogram family %s missing", hist)
			continue
		}
		if f.Type != "histogram" {
			t.Errorf("%s type = %s", hist, f.Type)
		}
	}
}

func TestRegistryUniqueLabels(t *testing.T) {
	reg := obsv.NewRegistry()
	a := reg.RegisterNode("0", obsv.NewEntityMetrics(), nil, nil)
	b := reg.RegisterNode("0", obsv.NewEntityMetrics(), nil, nil)
	if a == b {
		t.Fatalf("duplicate labels not disambiguated: %q vs %q", a, b)
	}
	var buf bytes.Buffer
	if err := reg.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := promtext.Parse(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("invalid exposition with duplicate registrations: %v", err)
	}
	if !strings.Contains(buf.String(), `node="`+b+`"`) {
		t.Fatalf("disambiguated label %q not rendered", b)
	}
}

func TestStatezSortsAndSkipsDeclined(t *testing.T) {
	reg := obsv.NewRegistry()
	mk := func(node string, ok bool) obsv.SnapshotFunc {
		return func() (obsv.StateSnapshot, bool) {
			return obsv.StateSnapshot{Node: node, Seq: 1}, ok
		}
	}
	reg.RegisterNode("2", nil, nil, mk("2", true))
	reg.RegisterNode("0", nil, nil, mk("0", true))
	reg.RegisterNode("1", nil, nil, mk("1", false)) // declines: omitted
	s := reg.Statez()
	if len(s.Nodes) != 2 {
		t.Fatalf("got %d nodes, want 2 (declined snapshot not skipped)", len(s.Nodes))
	}
	if s.Nodes[0].Node != "0" || s.Nodes[1].Node != "2" {
		t.Fatalf("not sorted by node: %v, %v", s.Nodes[0].Node, s.Nodes[1].Node)
	}
}

func TestNilRegistryRegistrationIsSafe(t *testing.T) {
	var reg *obsv.Registry
	reg.RegisterNode("0", nil, nil, nil)
	reg.RegisterTransport("0", nil)
	reg.RegisterNetwork("x", nil)
}
