package obsv

import (
	"math"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("zero value loads %d", c.Load())
	}
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Fatalf("got %d, want 42", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != 8000 {
		t.Fatalf("got %d, want 8000", got)
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := NewHistogram(10, 20, 30)
	for _, v := range []uint64{5, 10, 11, 25, 31, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count %d, want 6", s.Count)
	}
	if s.Sum != 5+10+11+25+31+1000 {
		t.Fatalf("sum %d", s.Sum)
	}
	// Cumulative: ≤10 → {5,10}=2; ≤20 → +{11}=3; ≤30 → +{25}=4; +Inf → 6.
	want := []uint64{2, 3, 4, 6}
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (full %v)", i, s.Cumulative[i], w, s.Cumulative)
		}
	}
	if s.Cumulative[len(s.Cumulative)-1] != s.Count {
		t.Fatal("last cumulative bucket != count")
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(10, 20, 30)
	for i := 0; i < 10; i++ {
		h.Observe(5) // all in the first bucket
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q != 10 {
		t.Fatalf("p50 = %v, want 10 (first bound)", q)
	}
	h.Observe(1 << 40) // overflow bucket
	s = h.Snapshot()
	if q := s.Quantile(1.0); !math.IsInf(q, 1) {
		t.Fatalf("p100 = %v, want +Inf", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(7) // must not panic
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot not empty")
	}
}

func TestNewHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds accepted")
		}
	}()
	NewHistogram(10, 10)
}

func TestLinkMetricsFlushNilSafe(t *testing.T) {
	var m *LinkMetrics
	m.Flush(3, true) // must not panic
	lm := NewLinkMetrics()
	lm.Flush(0, false) // empty flushes are not recorded
	if lm.Flushes.Load() != 0 {
		t.Fatal("zero-PDU flush recorded")
	}
	lm.Flush(4, true)
	lm.Flush(2, false)
	if lm.Flushes.Load() != 2 || lm.FlushedPDUs.Load() != 6 || lm.EarlyFlushes.Load() != 1 {
		t.Fatalf("flush counters: %d flushes, %d pdus, %d early",
			lm.Flushes.Load(), lm.FlushedPDUs.Load(), lm.EarlyFlushes.Load())
	}
	if s := lm.FlushBatch.Snapshot(); s.Count != 2 || s.Sum != 6 {
		t.Fatalf("batch histogram count=%d sum=%d", s.Count, s.Sum)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(LatencyBucketsUS()...)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(0); i < 500; i++ {
				h.Observe(i * 7)
				_ = h.Snapshot() // concurrent snapshots must stay monotone
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 2000 {
		t.Fatalf("count %d, want 2000", s.Count)
	}
	for i := 1; i < len(s.Cumulative); i++ {
		if s.Cumulative[i] < s.Cumulative[i-1] {
			t.Fatal("cumulative counts not monotone")
		}
	}
}
