package obsv

import (
	"bytes"
	"runtime"
	"strings"
	"testing"
)

func TestRuntimeMetricsOnScrape(t *testing.T) {
	reg := NewRegistry()
	reg.SetBuildLabel("codec", "v2")

	// Force at least one GC cycle so the pause histogram has content.
	runtime.GC()

	var buf bytes.Buffer
	if err := reg.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"cobcast_go_goroutines ",
		"cobcast_go_heap_alloc_bytes ",
		"cobcast_go_heap_inuse_bytes ",
		"cobcast_go_gc_cycles_total ",
		"cobcast_go_gc_pause_us_bucket{le=\"+Inf\"}",
		"cobcast_go_gc_pause_us_count ",
		"cobcast_process_uptime_seconds ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// Build identity: version + toolchain always present, extra labels
	// appended in sorted order, value pinned at 1.
	if !strings.Contains(out, "cobcast_build_info{version=") {
		t.Errorf("metrics missing build_info gauge:\n%s", out)
	}
	if !strings.Contains(out, `,codec="v2"} 1`) {
		t.Errorf("build_info missing codec label: %s", grepLine(out, "cobcast_build_info{"))
	}
	if !strings.Contains(out, "go=\""+runtime.Version()+"\"") {
		t.Errorf("build_info missing toolchain version: %s", grepLine(out, "cobcast_build_info{"))
	}
}

func TestLiveHeapReturnsPostGCHeap(t *testing.T) {
	// Hold a known-large allocation across the forced GC: LiveHeap must
	// include retained memory and be nonzero.
	held := make([]byte, 1<<20)
	h := LiveHeap()
	if h == 0 {
		t.Fatal("LiveHeap returned 0")
	}
	if h < uint64(len(held)) {
		t.Fatalf("LiveHeap %d smaller than a live %d-byte allocation", h, len(held))
	}
	runtime.KeepAlive(held)
}

func grepLine(s, substr string) string {
	for _, ln := range strings.Split(s, "\n") {
		if strings.Contains(ln, substr) {
			return ln
		}
	}
	return "<absent>"
}
