package promtext

import (
	"strings"
	"testing"
)

func TestParseAcceptsWellFormed(t *testing.T) {
	in := `# HELP x_total Things.
# TYPE x_total counter
x_total{node="0"} 3
x_total{node="1"} 4
# HELP h_us Latency.
# TYPE h_us histogram
h_us_bucket{node="0",le="10"} 1
h_us_bucket{node="0",le="+Inf"} 2
h_us_sum{node="0"} 25
h_us_count{node="0"} 2
# HELP g Depth.
# TYPE g gauge
g{node="0"} 5
`
	fams, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := fams.Value("x_total", nil); !ok || v != 7 {
		t.Fatalf("x_total sum = %v (%v)", v, ok)
	}
	if v, ok := fams.Value("x_total", map[string]string{"node": "1"}); !ok || v != 4 {
		t.Fatalf("x_total{node=1} = %v (%v)", v, ok)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"sample without family": "x_total 3\n",
		"duplicate TYPE":        "# TYPE x counter\n# TYPE x counter\nx 1\n",
		"TYPE after samples":    "# HELP x h\nx 1\n# TYPE x counter\n",
		"bad value":             "# TYPE x counter\nx banana\n",
		"bad label pair":        "# TYPE x counter\nx{node=0} 1\n",
		"unknown type":          "# TYPE x foo\nx 1\n",
		"non-monotone buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"10\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n",
		"inf != count": "# TYPE h histogram\n" +
			"h_bucket{le=\"10\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3\n",
		"missing inf bucket": "# TYPE h histogram\n" +
			"h_bucket{le=\"10\"} 1\nh_sum 1\nh_count 1\n",
	}
	for name, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted:\n%s", name, in)
		}
	}
}
