// Package promtext is a minimal validator for the Prometheus text
// exposition format (version 0.0.4) — just enough parsing to let tests
// assert that an endpoint's output is well-formed and to read sample
// values back out. It is intentionally not a full client: no escaping
// beyond what our renderer emits, no timestamps, no exemplars.
package promtext

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// Sample is one metric line.
type Sample struct {
	// Name is the full sample name, including any _bucket/_sum/_count
	// suffix on histogram series.
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one metric family: a # TYPE declaration plus its samples.
type Family struct {
	Name    string
	Type    string // counter, gauge, histogram
	Help    string
	Samples []Sample
}

// Families maps family name to its parsed family.
type Families map[string]*Family

// sampleLine matches `name{labels} value` or `name value`.
var sampleLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)

// labelPair matches one `key="value"` pair.
var labelPair = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)

// Parse validates r as text exposition and returns the families. It
// enforces the structural rules the format requires: every sample is
// preceded by its family's single # TYPE line, sample names extend the
// family name only with the histogram suffixes, values parse as floats,
// and histogram series have monotone cumulative buckets whose +Inf
// bucket equals their _count.
func Parse(r io.Reader) (Families, error) {
	fams := Families{}
	var cur *Family
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("line %d: HELP without text: %q", lineNo, line)
			}
			if _, dup := fams[name]; dup {
				return nil, fmt.Errorf("line %d: duplicate HELP for %s", lineNo, name)
			}
			fams[name] = &Family{Name: name, Help: rest[len(name)+1:]}
			cur = fams[name]
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE: %q", lineNo, line)
			}
			name, typ := fields[0], fields[1]
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown type %q", lineNo, typ)
			}
			f, ok := fams[name]
			if !ok {
				f = &Family{Name: name}
				fams[name] = f
			}
			if f.Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %s", lineNo, name)
			}
			if len(f.Samples) > 0 {
				return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
			}
			f.Type = typ
			cur = f
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}
		m := sampleLine.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("line %d: malformed sample: %q", lineNo, line)
		}
		name, rawLabels, rawValue := m[1], m[3], m[4]
		labels := map[string]string{}
		if rawLabels != "" {
			for _, pair := range strings.Split(rawLabels, ",") {
				lm := labelPair.FindStringSubmatch(pair)
				if lm == nil {
					return nil, fmt.Errorf("line %d: malformed label pair %q", lineNo, pair)
				}
				labels[lm[1]] = lm[2]
			}
		}
		value, err := strconv.ParseFloat(rawValue, 64)
		if err != nil && rawValue != "+Inf" && rawValue != "-Inf" && rawValue != "NaN" {
			return nil, fmt.Errorf("line %d: bad value %q: %v", lineNo, rawValue, err)
		}
		f := familyFor(fams, cur, name)
		if f == nil {
			return nil, fmt.Errorf("line %d: sample %s outside any declared family", lineNo, name)
		}
		f.Samples = append(f.Samples, Sample{Name: name, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range fams {
		if f.Type == "" {
			return nil, fmt.Errorf("family %s has HELP but no TYPE", f.Name)
		}
		if f.Type == "histogram" {
			if err := checkHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return fams, nil
}

// familyFor resolves which declared family a sample belongs to: its
// exact name, or for histograms the name minus a _bucket/_sum/_count
// suffix. cur breaks the tie in favour of the family being emitted.
func familyFor(fams Families, cur *Family, sample string) *Family {
	if cur != nil && sampleOf(cur, sample) {
		return cur
	}
	for _, f := range fams {
		if sampleOf(f, sample) {
			return f
		}
	}
	return nil
}

func sampleOf(f *Family, sample string) bool {
	if sample == f.Name {
		return f.Type != "histogram" && f.Type != "summary"
	}
	if f.Type == "histogram" || f.Type == "summary" {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if sample == f.Name+suf {
				return true
			}
		}
	}
	return false
}

// checkHistogram verifies each labelled series (grouped by every label
// except le) has monotone cumulative buckets, a +Inf bucket, and
// +Inf == _count.
func checkHistogram(f *Family) error {
	type series struct {
		last    float64
		lastLE  string
		inf     float64
		hasInf  bool
		count   float64
		hasCnt  bool
		buckets int
	}
	byKey := map[string]*series{}
	key := func(labels map[string]string) string {
		var parts []string
		for k, v := range labels {
			if k == "le" {
				continue
			}
			parts = append(parts, k+"="+v)
		}
		// Order-insensitive join is fine for a validity check.
		for i := 0; i < len(parts); i++ {
			for j := i + 1; j < len(parts); j++ {
				if parts[j] < parts[i] {
					parts[i], parts[j] = parts[j], parts[i]
				}
			}
		}
		return strings.Join(parts, ",")
	}
	get := func(labels map[string]string) *series {
		k := key(labels)
		s, ok := byKey[k]
		if !ok {
			s = &series{}
			byKey[k] = s
		}
		return s
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			sr := get(s.Labels)
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket without le label", f.Name)
			}
			if s.Value < sr.last {
				return fmt.Errorf("%s: bucket le=%q (%.0f) below previous le=%q (%.0f)",
					f.Name, le, s.Value, sr.lastLE, sr.last)
			}
			sr.last, sr.lastLE = s.Value, le
			sr.buckets++
			if le == "+Inf" {
				sr.inf, sr.hasInf = s.Value, true
			}
		case f.Name + "_count":
			sr := get(s.Labels)
			sr.count, sr.hasCnt = s.Value, true
		}
	}
	for k, sr := range byKey {
		if sr.buckets == 0 {
			continue
		}
		if !sr.hasInf {
			return fmt.Errorf("%s{%s}: no +Inf bucket", f.Name, k)
		}
		if !sr.hasCnt {
			return fmt.Errorf("%s{%s}: no _count", f.Name, k)
		}
		if sr.inf != sr.count {
			return fmt.Errorf("%s{%s}: +Inf bucket %.0f != count %.0f", f.Name, k, sr.inf, sr.count)
		}
	}
	return nil
}

// Value sums the values of every sample in family name whose labels
// include all of want. Missing families sum to 0 with ok=false.
func (f Families) Value(name string, want map[string]string) (float64, bool) {
	fam, ok := f[name]
	if !ok {
		return 0, false
	}
	var sum float64
	matched := false
	for _, s := range fam.Samples {
		match := true
		for k, v := range want {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			sum += s.Value
			matched = true
		}
	}
	return sum, matched
}
