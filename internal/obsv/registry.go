package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"cobcast/internal/flight"
)

// SnapshotFunc produces a point-in-time state snapshot of one entity.
// ok is false when the snapshot could not be taken (for example the
// node's loop was busy past the snapshot deadline); the scraper then
// simply omits that node rather than blocking.
type SnapshotFunc func() (StateSnapshot, bool)

// Registry is the collection point the runtime publishes metrics into
// and the HTTP endpoint scrapes from. Registration happens at node
// construction; scraping happens on arbitrary goroutines. All counter
// reads are atomic loads, so a scrape never blocks the protocol.
type Registry struct {
	mu         sync.Mutex
	nodes      []nodeEntry
	transports []labeledTransport
	networks   []labeledNetwork
	// start anchors the process-uptime gauge (registry creation time).
	start time.Time
	// rt accumulates GC pause observations across scrapes (runtime.go).
	rt runtimeTracker
	// buildLabels are extra cobcast_build_info labels (SetBuildLabel).
	buildLabels map[string]string
}

type nodeEntry struct {
	label string
	em    *EntityMetrics
	lm    *LinkMetrics
	snap  SnapshotFunc
	// fr and epoch publish the node's flight recorder on /tracez
	// (RegisterFlight); stalls its stall-analyzer provider
	// (RegisterStalls).
	fr     *flight.Ring
	epoch  int64
	stalls StallsFunc
}

type labeledTransport struct {
	label string
	m     *TransportMetrics
	// state is the transport's static configuration for /statez; nil
	// until SetTransportState.
	state *TransportState
}

type labeledNetwork struct {
	label string
	m     *NetworkMetrics
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{start: time.Now()} }

// uniqueLabel disambiguates duplicate labels (two clusters in one
// process, say) by suffixing #2, #3, ... so Prometheus series stay
// distinct.
func uniqueLabel(label string, taken func(string) bool) string {
	if !taken(label) {
		return label
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s#%d", label, i)
		if !taken(cand) {
			return cand
		}
	}
}

// RegisterNode publishes one node's entity metrics, link metrics, and
// snapshot provider under the given label. Any of the three may be
// nil. It returns the (possibly disambiguated) label actually used.
func (r *Registry) RegisterNode(label string, em *EntityMetrics, lm *LinkMetrics, snap SnapshotFunc) string {
	if r == nil {
		return label
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	label = uniqueLabel(label, func(s string) bool {
		for _, n := range r.nodes {
			if n.label == s {
				return true
			}
		}
		return false
	})
	r.nodes = append(r.nodes, nodeEntry{label: label, em: em, lm: lm, snap: snap})
	return label
}

// RegisterTransport publishes one UDP transport's datagram counters.
func (r *Registry) RegisterTransport(label string, m *TransportMetrics) string {
	if r == nil || m == nil {
		return label
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	label = uniqueLabel(label, func(s string) bool {
		for _, t := range r.transports {
			if t.label == s {
				return true
			}
		}
		return false
	})
	r.transports = append(r.transports, labeledTransport{label: label, m: m})
	return label
}

// SetTransportState attaches static configuration (wire path, socket
// buffer sizes) to a transport registered under label (the label
// RegisterTransport returned). Unknown labels are ignored.
func (r *Registry) SetTransportState(label string, s TransportState) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.transports {
		if r.transports[i].label == label {
			s.Transport = label
			r.transports[i].state = &s
			return
		}
	}
}

// RegisterNetwork publishes one in-memory network's counters.
func (r *Registry) RegisterNetwork(label string, m *NetworkMetrics) string {
	if r == nil || m == nil {
		return label
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	label = uniqueLabel(label, func(s string) bool {
		for _, n := range r.networks {
			if n.label == s {
				return true
			}
		}
		return false
	})
	r.networks = append(r.networks, labeledNetwork{label: label, m: m})
	return label
}

// snapshotLists copies the registration lists so rendering happens
// without holding the registry lock.
func (r *Registry) snapshotLists() (nodes []nodeEntry, transports []labeledTransport, networks []labeledNetwork) {
	r.mu.Lock()
	defer r.mu.Unlock()
	nodes = append(nodes, r.nodes...)
	transports = append(transports, r.transports...)
	networks = append(networks, r.networks...)
	return
}

// entityCounterFamilies maps EntityMetrics fields onto Prometheus
// counter families. Families with a kind/cond label share one TYPE
// line across variants, as the exposition format requires.
type entitySample struct {
	extra string // extra label pair rendered verbatim, e.g. `,kind="data"`
	get   func(*EntityMetrics) *Counter
}

type entityFamily struct {
	name, help string
	samples    []entitySample
}

var entityCounterFamilies = []entityFamily{
	{"cobcast_pdus_sent_total", "PDUs sent by this entity, by kind.", []entitySample{
		{`,kind="data"`, func(m *EntityMetrics) *Counter { return &m.DataSent }},
		{`,kind="sync"`, func(m *EntityMetrics) *Counter { return &m.SyncSent }},
		{`,kind="ackonly"`, func(m *EntityMetrics) *Counter { return &m.AckOnlySent }},
		{`,kind="ret"`, func(m *EntityMetrics) *Counter { return &m.RetSent }},
	}},
	{"cobcast_pdus_received_total", "PDUs received by this entity, by kind.", []entitySample{
		{`,kind="data"`, func(m *EntityMetrics) *Counter { return &m.DataRecv }},
		{`,kind="sync"`, func(m *EntityMetrics) *Counter { return &m.SyncRecv }},
		{`,kind="ackonly"`, func(m *EntityMetrics) *Counter { return &m.AckOnlyRecv }},
		{`,kind="ret"`, func(m *EntityMetrics) *Counter { return &m.RetRecv }},
	}},
	{"cobcast_accepted_total", "Sequenced PDUs accepted into the acknowledge list.", []entitySample{
		{"", func(m *EntityMetrics) *Counter { return &m.Accepted }},
	}},
	{"cobcast_duplicates_total", "Duplicate sequenced PDUs discarded.", []entitySample{
		{"", func(m *EntityMetrics) *Counter { return &m.Duplicates }},
	}},
	{"cobcast_parked_total", "Out-of-order PDUs parked awaiting a predecessor.", []entitySample{
		{"", func(m *EntityMetrics) *Counter { return &m.Parked }},
	}},
	{"cobcast_loss_detections_total", "Loss detections by condition: F1 = sequence gap, F2 = ACK-vector evidence.", []entitySample{
		{`,cond="f1"`, func(m *EntityMetrics) *Counter { return &m.F1Detections }},
		{`,cond="f2"`, func(m *EntityMetrics) *Counter { return &m.F2Detections }},
	}},
	{"cobcast_retransmissions_served_total", "Selective retransmissions served from the send log.", []entitySample{
		{"", func(m *EntityMetrics) *Counter { return &m.RetServed }},
	}},
	{"cobcast_preacked_total", "PDUs moved to the pre-acknowledged list (PACK transition).", []entitySample{
		{"", func(m *EntityMetrics) *Counter { return &m.Preacked }},
	}},
	{"cobcast_acked_total", "PDUs fully acknowledged (ACK transition).", []entitySample{
		{"", func(m *EntityMetrics) *Counter { return &m.Acked }},
	}},
	{"cobcast_committed_total", "PDUs committed (confirmed cluster-wide, ready for delivery ordering).", []entitySample{
		{"", func(m *EntityMetrics) *Counter { return &m.Committed }},
	}},
	{"cobcast_delivered_total", "Messages delivered to the application.", []entitySample{
		{"", func(m *EntityMetrics) *Counter { return &m.Delivered }},
	}},
	{"cobcast_cpi_displaced_total", "CPI insertions that were not tail appends.", []entitySample{
		{"", func(m *EntityMetrics) *Counter { return &m.CPIDisplaced }},
	}},
	{"cobcast_cpi_displacement_positions_total", "Total list positions bypassed by displaced CPI insertions.", []entitySample{
		{"", func(m *EntityMetrics) *Counter { return &m.CPIDisplacement }},
	}},
	{"cobcast_deferred_confirms_total", "Deferred-confirmation timer firings (SYNC/ACKONLY emitted).", []entitySample{
		{"", func(m *EntityMetrics) *Counter { return &m.DeferredConfirms }},
	}},
	{"cobcast_flow_blocked_total", "Submissions stalled by the flow window.", []entitySample{
		{"", func(m *EntityMetrics) *Counter { return &m.FlowBlocked }},
	}},
	{"cobcast_invalid_pdus_total", "Malformed or mis-addressed PDUs rejected.", []entitySample{
		{"", func(m *EntityMetrics) *Counter { return &m.InvalidPDUs }},
	}},
}

// linkSample mirrors entitySample for LinkMetrics families with a
// version label (per-codec byte counters).
type linkSample struct {
	extra string
	get   func(*LinkMetrics) *Counter
}

var linkCounterFamilies = []struct {
	name, help string
	samples    []linkSample
}{
	{"cobcast_link_flushes_total", "Link flushes that put at least one PDU on the wire.", []linkSample{
		{"", func(m *LinkMetrics) *Counter { return &m.Flushes }},
	}},
	{"cobcast_link_flushed_pdus_total", "PDUs flushed by the link layer.", []linkSample{
		{"", func(m *LinkMetrics) *Counter { return &m.FlushedPDUs }},
	}},
	{"cobcast_link_early_flushes_total", "Flushes forced mid-batch by the datagram/batch cap.", []linkSample{
		{"", func(m *LinkMetrics) *Counter { return &m.EarlyFlushes }},
	}},
	{"cobcast_link_bytes_sent_total", "Encoded frame bytes sent, by entry codec version.", []linkSample{
		{`,version="1"`, func(m *LinkMetrics) *Counter { return &m.BytesOutV1 }},
		{`,version="2"`, func(m *LinkMetrics) *Counter { return &m.BytesOutV2 }},
	}},
	{"cobcast_link_bytes_received_total", "Frame bytes received, by entry codec version.", []linkSample{
		{`,version="1"`, func(m *LinkMetrics) *Counter { return &m.BytesInV1 }},
		{`,version="2"`, func(m *LinkMetrics) *Counter { return &m.BytesInV2 }},
	}},
	{"cobcast_link_stamp_desyncs_total", "Inbound v2 delta entries dropped for a missing reference stamp (treated as loss).", []linkSample{
		{"", func(m *LinkMetrics) *Counter { return &m.StampDesyncs }},
	}},
	{"cobcast_link_unknown_group_frames_total", "Inbound group-addressed frames dropped for an unknown or out-of-range group ID (treated as loss).", []linkSample{
		{"", func(m *LinkMetrics) *Counter { return &m.UnknownGroups }},
	}},
}

var transportCounterFamilies = []struct {
	name, help string
	get        func(*TransportMetrics) *Counter
}{
	{"cobcast_transport_datagrams_sent_total", "Datagrams sent by the UDP transport.", func(m *TransportMetrics) *Counter { return &m.Sent }},
	{"cobcast_transport_datagrams_received_total", "Datagrams received by the UDP transport.", func(m *TransportMetrics) *Counter { return &m.Received }},
	{"cobcast_transport_overruns_total", "Inbound datagrams dropped on receive-queue overrun.", func(m *TransportMetrics) *Counter { return &m.Overrun }},
	{"cobcast_transport_read_errors_total", "Transient socket read errors.", func(m *TransportMetrics) *Counter { return &m.ReadErrors }},
	{"cobcast_transport_oversize_total", "Local sends rejected for exceeding the datagram budget.", func(m *TransportMetrics) *Counter { return &m.Oversize }},
	{"cobcast_transport_send_errors_total", "Per-peer datagram transmissions rejected by the kernel (EPERM, ENOBUFS, ...).", func(m *TransportMetrics) *Counter { return &m.SendErrors }},
	{"cobcast_transport_bytes_sent_total", "Datagram bytes sent by the UDP transport (counted once per successful peer transmission).", func(m *TransportMetrics) *Counter { return &m.BytesSent }},
	{"cobcast_transport_bytes_received_total", "Datagram bytes received by the UDP transport.", func(m *TransportMetrics) *Counter { return &m.BytesReceived }},
	{"cobcast_transport_sendmmsg_calls_total", "sendmmsg syscalls issued by the batched send path.", func(m *TransportMetrics) *Counter { return &m.SendmmsgCalls }},
	{"cobcast_transport_recvmmsg_calls_total", "recvmmsg syscalls issued by the batched receive path.", func(m *TransportMetrics) *Counter { return &m.RecvmmsgCalls }},
}

// WriteMetrics renders every registered metric in Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WriteMetrics(w io.Writer) error {
	nodes, transports, networks := r.snapshotLists()

	bw := &errWriter{w: w}
	for _, fam := range entityCounterFamilies {
		wroteHeader := false
		for _, n := range nodes {
			if n.em == nil {
				continue
			}
			if !wroteHeader {
				bw.printf("# HELP %s %s\n# TYPE %s counter\n", fam.name, fam.help, fam.name)
				wroteHeader = true
			}
			for _, s := range fam.samples {
				bw.printf("%s{node=%q%s} %d\n", fam.name, n.label, s.extra, s.get(n.em).Load())
			}
		}
	}
	writeHistFamily(bw, "cobcast_deliver_latency_us", "Broadcast-to-deliver latency of own DATA PDUs, microseconds.", nodes,
		func(m *EntityMetrics) *Histogram { return m.DeliverLatencyUS })
	writeHistFamily(bw, "cobcast_ack_wait_us", "Accept-to-commit wait per PDU, microseconds.", nodes,
		func(m *EntityMetrics) *Histogram { return m.AckWaitUS })

	for _, fam := range linkCounterFamilies {
		wroteHeader := false
		for _, n := range nodes {
			if n.lm == nil {
				continue
			}
			if !wroteHeader {
				bw.printf("# HELP %s %s\n# TYPE %s counter\n", fam.name, fam.help, fam.name)
				wroteHeader = true
			}
			for _, s := range fam.samples {
				bw.printf("%s{node=%q%s} %d\n", fam.name, n.label, s.extra, s.get(n.lm).Load())
			}
		}
	}
	{
		wroteHeader := false
		for _, n := range nodes {
			if n.lm == nil || n.lm.FlushBatch == nil {
				continue
			}
			if !wroteHeader {
				bw.printf("# HELP cobcast_link_flush_batch_pdus PDUs per link flush.\n# TYPE cobcast_link_flush_batch_pdus histogram\n")
				wroteHeader = true
			}
			writeHistogram(bw, "cobcast_link_flush_batch_pdus", n.label, n.lm.FlushBatch.Snapshot())
		}
	}

	for _, fam := range transportCounterFamilies {
		wroteHeader := false
		for _, t := range transports {
			if !wroteHeader {
				bw.printf("# HELP %s %s\n# TYPE %s counter\n", fam.name, fam.help, fam.name)
				wroteHeader = true
			}
			bw.printf("%s{transport=%q} %d\n", fam.name, t.label, fam.get(t.m).Load())
		}
	}
	writeTransportHist(bw, "cobcast_transport_send_batch_datagrams",
		"Datagrams per sendmmsg call.", transports,
		func(m *TransportMetrics) *Histogram { return m.SendBatch })
	writeTransportHist(bw, "cobcast_transport_recv_batch_datagrams",
		"Datagrams per recvmmsg call.", transports,
		func(m *TransportMetrics) *Histogram { return m.RecvBatch })
	{
		wroteHeader := false
		for _, t := range transports {
			if t.state == nil {
				continue
			}
			if !wroteHeader {
				bw.printf("# HELP cobcast_transport_socket_buffer_bytes Effective kernel socket buffer size, by direction (0 = OS default).\n# TYPE cobcast_transport_socket_buffer_bytes gauge\n")
				wroteHeader = true
			}
			bw.printf("cobcast_transport_socket_buffer_bytes{transport=%q,dir=\"read\"} %d\n", t.label, t.state.ReadBufferBytes)
			bw.printf("cobcast_transport_socket_buffer_bytes{transport=%q,dir=\"write\"} %d\n", t.label, t.state.WriteBufferBytes)
		}
	}

	if len(networks) > 0 {
		bw.printf("# HELP cobcast_net_pdus_sent_total Point-to-point PDU transmissions on the in-memory network.\n# TYPE cobcast_net_pdus_sent_total counter\n")
		for _, n := range networks {
			bw.printf("cobcast_net_pdus_sent_total{net=%q} %d\n", n.label, n.m.Sent.Load())
		}
		bw.printf("# HELP cobcast_net_pdus_delivered_total PDUs delivered by the in-memory network.\n# TYPE cobcast_net_pdus_delivered_total counter\n")
		for _, n := range networks {
			bw.printf("cobcast_net_pdus_delivered_total{net=%q} %d\n", n.label, n.m.Delivered.Load())
		}
		bw.printf("# HELP cobcast_net_pdus_dropped_total PDUs dropped by the in-memory network, by fault class.\n# TYPE cobcast_net_pdus_dropped_total counter\n")
		for _, n := range networks {
			bw.printf("cobcast_net_pdus_dropped_total{net=%q,cause=\"loss\"} %d\n", n.label, n.m.DroppedLoss.Load())
			bw.printf("cobcast_net_pdus_dropped_total{net=%q,cause=\"overrun\"} %d\n", n.label, n.m.DroppedOverrun.Load())
			bw.printf("cobcast_net_pdus_dropped_total{net=%q,cause=\"partition\"} %d\n", n.label, n.m.DroppedPartition.Load())
		}
	}

	// Live-state gauges, derived from whatever snapshots are
	// obtainable right now. Nodes whose snapshot provider declines
	// (busy loop) are omitted from this scrape.
	var snaps []snappedNode
	for _, n := range nodes {
		if n.snap == nil {
			continue
		}
		if s, ok := n.snap(); ok {
			snaps = append(snaps, snappedNode{n.label, s})
		}
	}
	writeGauge(bw, "cobcast_seq", "Entity send sequence number.", snaps, func(s StateSnapshot) int64 { return int64(s.Seq) })
	writeGauge(bw, "cobcast_rrl_depth", "Receive/retransmission list depth, summed over sources.", snaps, func(s StateSnapshot) int64 {
		var t int64
		for _, d := range s.RRL {
			t += int64(d)
		}
		return t
	})
	writeGauge(bw, "cobcast_prl_depth", "Pre-acknowledged list depth.", snaps, func(s StateSnapshot) int64 { return int64(s.PRL) })
	writeGauge(bw, "cobcast_arl_depth", "Acknowledged (commit-ready) list depth.", snaps, func(s StateSnapshot) int64 { return int64(s.ARL) })
	writeGauge(bw, "cobcast_parked_pdus", "PDUs parked awaiting predecessors.", snaps, func(s StateSnapshot) int64 { return int64(s.Parked) })
	writeGauge(bw, "cobcast_data_resident", "Accepted-but-undelivered DATA PDUs (drains to 0 at quiescence).", snaps, func(s StateSnapshot) int64 { return int64(s.DataResident) })
	writeGauge(bw, "cobcast_sendlog_pdus", "PDUs retained in the send log for retransmission.", snaps, func(s StateSnapshot) int64 { return int64(s.SendLog) })
	writeGauge(bw, "cobcast_pending_submits", "Submissions queued behind the flow window.", snaps, func(s StateSnapshot) int64 { return int64(s.PendingSubmits) })
	writeGauge(bw, "cobcast_buf_free_units", "Remaining buffer allocation, units.", snaps, func(s StateSnapshot) int64 { return int64(s.BufFree) })
	writeGauge(bw, "cobcast_buf_total_units", "Configured buffer size, units.", snaps, func(s StateSnapshot) int64 { return int64(s.BufUnits) })
	writeGauge(bw, "cobcast_quiescent", "1 when the entity has no unconfirmed or buffered PDUs.", snaps, func(s StateSnapshot) int64 {
		if s.Quiescent {
			return 1
		}
		return 0
	})

	// Memory-ledger series, only for nodes running with a byte budget
	// (LedgerBudget > 0 marks a ledgered engine).
	var ledgered []snappedNode
	for _, sn := range snaps {
		if sn.s.LedgerBudget > 0 {
			ledgered = append(ledgered, sn)
		}
	}
	writeGauge(bw, "cobcast_ledger_bytes", "Bytes retained by the entity's logs, metered against the memory budget.", ledgered, func(s StateSnapshot) int64 { return s.LedgerBytes })
	writeGauge(bw, "cobcast_ledger_pdus", "PDU references retained by the entity's logs.", ledgered, func(s StateSnapshot) int64 { return s.LedgerPDUs })
	writeGauge(bw, "cobcast_ledger_budget_bytes", "Configured memory budget, bytes.", ledgered, func(s StateSnapshot) int64 { return s.LedgerBudget })
	writeCounterFromSnaps(bw, "cobcast_backpressure_blocked_total", "Producer submissions blocked at the memory budget.", ledgered, func(s StateSnapshot) int64 { return int64(s.BackpressureBlocked) })
	writeCounterFromSnaps(bw, "cobcast_backpressure_shed_total", "Producer submissions shed at the memory budget.", ledgered, func(s StateSnapshot) int64 { return int64(s.BackpressureShed) })
	writeCounterFromSnaps(bw, "cobcast_pressure_evictions_total", "Peers evicted on the pressure-shortened suspicion timer.", ledgered, func(s StateSnapshot) int64 { return int64(s.PressureEvicted) })

	// Flight-recorder depth: total events ever recorded per ring, so a
	// dashboard can tell a dead recorder from a quiet one.
	{
		wroteHeader := false
		for _, n := range nodes {
			if n.fr == nil {
				continue
			}
			if !wroteHeader {
				bw.printf("# HELP cobcast_flight_events_total Protocol events recorded by the flight recorder (ring retains the most recent).\n# TYPE cobcast_flight_events_total counter\n")
				wroteHeader = true
			}
			bw.printf("cobcast_flight_events_total{node=%q} %d\n", n.label, n.fr.Recorded())
		}
	}

	r.writeRuntimeMetrics(bw)
	return bw.err
}

// writeCounterFromSnaps renders a monotone counter whose value rides the
// state snapshot instead of an atomic Counter (the ledger's producer-side
// totals live on the ledger, sampled at snapshot time).
func writeCounterFromSnaps(bw *errWriter, name, help string, snaps []snappedNode, get func(StateSnapshot) int64) {
	if len(snaps) == 0 {
		return
	}
	bw.printf("# HELP %s %s\n# TYPE %s counter\n", name, help, name)
	for _, sn := range snaps {
		bw.printf("%s{node=%q} %d\n", name, sn.label, get(sn.s))
	}
}

type snappedNode struct {
	label string
	s     StateSnapshot
}

func writeGauge(bw *errWriter, name, help string, snaps []snappedNode, get func(StateSnapshot) int64) {
	if len(snaps) == 0 {
		return
	}
	bw.printf("# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
	for _, sn := range snaps {
		bw.printf("%s{node=%q} %d\n", name, sn.label, get(sn.s))
	}
}

func writeTransportHist(bw *errWriter, name, help string, transports []labeledTransport, get func(*TransportMetrics) *Histogram) {
	wroteHeader := false
	for _, t := range transports {
		h := get(t.m)
		if h == nil {
			continue
		}
		if !wroteHeader {
			bw.printf("# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
			wroteHeader = true
		}
		writeLabeledHistogram(bw, name, "transport", t.label, h.Snapshot())
	}
}

func writeHistFamily(bw *errWriter, name, help string, nodes []nodeEntry, get func(*EntityMetrics) *Histogram) {
	wroteHeader := false
	for _, n := range nodes {
		if n.em == nil || get(n.em) == nil {
			continue
		}
		if !wroteHeader {
			bw.printf("# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
			wroteHeader = true
		}
		writeHistogram(bw, name, n.label, get(n.em).Snapshot())
	}
}

func writeHistogram(bw *errWriter, name, node string, s HistogramSnapshot) {
	writeLabeledHistogram(bw, name, "node", node, s)
}

func writeLabeledHistogram(bw *errWriter, name, key, val string, s HistogramSnapshot) {
	for i, b := range s.Bounds {
		bw.printf("%s_bucket{%s=%q,le=\"%d\"} %d\n", name, key, val, b, s.Cumulative[i])
	}
	bw.printf("%s_bucket{%s=%q,le=\"+Inf\"} %d\n", name, key, val, s.Count)
	bw.printf("%s_sum{%s=%q} %d\n", name, key, val, s.Sum)
	bw.printf("%s_count{%s=%q} %d\n", name, key, val, s.Count)
}

// errWriter latches the first write error so render code stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

// Statez is the JSON document served at /statez: one entry per node
// whose snapshot could be taken, sorted by label, plus one entry per
// transport that published its static configuration (wire path and
// effective socket buffer sizes).
type Statez struct {
	Nodes      []StateSnapshot  `json:"nodes"`
	Transports []TransportState `json:"transports,omitempty"`
	// Stalls are the stall-analyzer verdicts of every node with a
	// registered provider: each undelivered message, the pipeline
	// stage holding it, and the peers whose confirmations it awaits.
	// Empty when nothing is stuck.
	Stalls []Stall `json:"stalls,omitempty"`
}

// Statez collects the current state snapshots.
func (r *Registry) Statez() Statez {
	nodes, transports, _ := r.snapshotLists()
	var out Statez
	for _, n := range nodes {
		if n.snap == nil {
			continue
		}
		if s, ok := n.snap(); ok {
			if s.Node == "" {
				s.Node = n.label
			}
			out.Nodes = append(out.Nodes, s)
		}
	}
	out.Stalls = r.StallReport()
	sort.Slice(out.Nodes, func(i, j int) bool { return out.Nodes[i].Node < out.Nodes[j].Node })
	for _, t := range transports {
		if t.state != nil {
			out.Transports = append(out.Transports, *t.state)
		}
	}
	sort.Slice(out.Transports, func(i, j int) bool { return out.Transports[i].Transport < out.Transports[j].Transport })
	return out
}

// WriteStatez renders the state snapshots as indented JSON.
func (r *Registry) WriteStatez(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Statez())
}
