package obsv

import (
	"encoding/json"
	"io"
	"sort"

	"cobcast/internal/flight"
)

// StallsFunc produces the current stall-analyzer verdicts of one
// entity. ok is false when the report could not be taken (owner loop
// busy past the deadline), mirroring SnapshotFunc.
type StallsFunc func() ([]Stall, bool)

// RegisterFlight attaches a flight recorder to the node registered
// under label (the label RegisterNode returned), with the wall-clock
// epoch (UnixNano) that event timestamps are relative to. Unknown
// labels get their own entry so group shards can publish rings without
// entity metrics.
func (r *Registry) RegisterFlight(label string, fr *flight.Ring, epochUnixNano int64) {
	if r == nil || fr == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.nodes {
		if r.nodes[i].label == label {
			r.nodes[i].fr = fr
			r.nodes[i].epoch = epochUnixNano
			return
		}
	}
	r.nodes = append(r.nodes, nodeEntry{label: label, fr: fr, epoch: epochUnixNano})
}

// RegisterStalls attaches a stall-report provider to the node
// registered under label.
func (r *Registry) RegisterStalls(label string, f StallsFunc) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.nodes {
		if r.nodes[i].label == label {
			r.nodes[i].stalls = f
			return
		}
	}
	r.nodes = append(r.nodes, nodeEntry{label: label, stalls: f})
}

// NodeFlight is one node's flight-recorder dump as served on /tracez:
// the retained events plus the epoch that converts their relative
// nanosecond timestamps to wall time (epoch 0 means virtual time — a
// simulated entity).
type NodeFlight struct {
	Node          string         `json:"node"`
	EpochUnixNano int64          `json:"epoch_unix_nano"`
	Recorded      uint64         `json:"recorded"`
	Capacity      int            `json:"capacity"`
	Events        []flight.Event `json:"events"`
}

// Tracez is the JSON document served at /tracez: every registered
// flight ring, scraped live (recording continues; slots overwritten
// mid-scrape are skipped by the ring's seqlock).
type Tracez struct {
	Nodes []NodeFlight `json:"nodes"`
}

// Tracez snapshots every registered flight ring.
func (r *Registry) Tracez() Tracez {
	nodes, _, _ := r.snapshotLists()
	var out Tracez
	for _, n := range nodes {
		if n.fr == nil {
			continue
		}
		out.Nodes = append(out.Nodes, NodeFlight{
			Node:          n.label,
			EpochUnixNano: n.epoch,
			Recorded:      n.fr.Recorded(),
			Capacity:      n.fr.Cap(),
			Events:        n.fr.Snapshot(nil),
		})
	}
	sort.Slice(out.Nodes, func(i, j int) bool { return out.Nodes[i].Node < out.Nodes[j].Node })
	return out
}

// WriteTracez renders the flight dumps as indented JSON.
func (r *Registry) WriteTracez(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Tracez())
}

// StallReport collects the current stall verdicts of every node with a
// provider, each attributed to its node label.
func (r *Registry) StallReport() []Stall {
	nodes, _, _ := r.snapshotLists()
	var out []Stall
	for _, n := range nodes {
		if n.stalls == nil {
			continue
		}
		sts, ok := n.stalls()
		if !ok {
			continue
		}
		for _, st := range sts {
			st.Node = n.label
			out = append(out, st)
		}
	}
	return out
}
