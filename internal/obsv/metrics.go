package obsv

// EntityMetrics counts every protocol edge of one core.Entity. The
// entity's owner goroutine increments; scrapers read concurrently via
// atomic loads. All fields are inline (no pointers to chase) except
// the histograms, which are allocated by NewEntityMetrics.
type EntityMetrics struct {
	// PDUs sent, by kind. DataSent counts sequenced DT broadcasts,
	// SyncSent sequenced no-payload confirmations, AckOnlySent
	// unsequenced ACKONLY PDUs, RetSent RET requests issued.
	DataSent, SyncSent, AckOnlySent, RetSent Counter

	// PDUs received, by kind (before any validity/duplicate checks).
	DataRecv, SyncRecv, AckOnlyRecv, RetRecv Counter

	// Acceptance pipeline (§4.2): accepted into AL, duplicates
	// dropped, PDUs parked waiting for a predecessor.
	Accepted, Duplicates, Parked Counter

	// Loss detection (§4.3): F1 fires when a sequenced PDU arrives
	// ahead of REQ for its source; F2 fires when an ACK vector
	// reveals PDUs we have not seen.
	F1Detections, F2Detections Counter

	// RetServed counts selective retransmissions this entity served
	// from its sendlog in response to RET PDUs.
	RetServed Counter

	// PACK/ACK transitions (§4.4–4.5) and the commit/delivery tail.
	Preacked, Acked, Committed, Delivered Counter

	// CPI (causality-preserved insertion) displacement: CPIDisplaced
	// counts insertions that were not tail appends; CPIDisplacement
	// sums how many entries each displaced insertion bypassed.
	CPIDisplaced, CPIDisplacement Counter

	// DeferredConfirms counts deferred-confirmation firings (§5):
	// SYNC or ACKONLY PDUs emitted by the confirmation timer because
	// the entity had been silent.
	DeferredConfirms Counter

	// FlowBlocked counts submissions stalled by the flow window;
	// InvalidPDUs counts malformed or mis-addressed receptions.
	FlowBlocked, InvalidPDUs Counter

	// DeliverLatencyUS observes broadcast→local-deliver latency of
	// this entity's own DATA PDUs, in microseconds. AckWaitUS
	// observes accept→commit time (how long a PDU waited for the
	// cluster to confirm it), in microseconds.
	DeliverLatencyUS *Histogram
	AckWaitUS        *Histogram
}

// NewEntityMetrics allocates an EntityMetrics with default histogram
// boundaries.
func NewEntityMetrics() *EntityMetrics {
	return &EntityMetrics{
		DeliverLatencyUS: NewHistogram(LatencyBucketsUS()...),
		AckWaitUS:        NewHistogram(LatencyBucketsUS()...),
	}
}

// LinkMetrics counts link-layer flush behaviour for one node.
type LinkMetrics struct {
	// Flushes counts flush operations that put at least one PDU on
	// the wire; FlushedPDUs sums the PDUs across them. EarlyFlushes
	// counts flushes forced mid-batch because the next PDU would
	// have overflowed the datagram (wireLink) or batch cap (memLink).
	Flushes, FlushedPDUs, EarlyFlushes Counter

	// BytesOutV1/V2 count encoded frame bytes sent and BytesInV1/V2
	// frame bytes received, attributed to the entry codec version of
	// the frame (wire links only: memLinks move decoded PDUs). The
	// per-version split is what experiment E12 reads to compare v1's
	// fixed-width encoding against v2's delta stamps.
	BytesOutV1, BytesOutV2, BytesInV1, BytesInV2 Counter

	// StampDesyncs counts inbound v2 delta entries dropped because
	// this receiver had no reference stamp for them (pdu.ErrDeltaDesync)
	// — a loss-amplification event repaired by retransmission or the
	// next full-stamp sync point, not a protocol error.
	StampDesyncs Counter

	// UnknownGroups counts inbound group-addressed (v3) frames dropped
	// whole for an unknown or out-of-range group ID: the header's group
	// exceeds pdu.MaxGroupID, the group table is at its MaxGroups
	// bound, or the group's engine could not be built. Each is a lost
	// datagram the protocol treats like transport loss, never a crash.
	UnknownGroups Counter

	// FlushBatch observes PDUs-per-flush.
	FlushBatch *Histogram
}

// NewLinkMetrics allocates a LinkMetrics with default batch buckets.
func NewLinkMetrics() *LinkMetrics {
	return &LinkMetrics{FlushBatch: NewHistogram(BatchBuckets()...)}
}

// Flush records one flush of n PDUs, early if it was forced before the
// loop went idle. Safe on a nil receiver.
func (m *LinkMetrics) Flush(n int, early bool) {
	if m == nil || n <= 0 {
		return
	}
	m.Flushes.Inc()
	m.FlushedPDUs.Add(uint64(n))
	if early {
		m.EarlyFlushes.Inc()
	}
	m.FlushBatch.Observe(uint64(n))
}

// FlushBytes records one encoded frame of n bytes leaving the link,
// attributed to the entry codec version that built it. Safe on a nil
// receiver.
func (m *LinkMetrics) FlushBytes(n int, version uint8) {
	if m == nil || n <= 0 {
		return
	}
	if version == 2 {
		m.BytesOutV2.Add(uint64(n))
	} else {
		m.BytesOutV1.Add(uint64(n))
	}
}

// RecvBytes records one received frame of n bytes, attributed to its
// entry codec version. Safe on a nil receiver.
func (m *LinkMetrics) RecvBytes(n int, version uint8) {
	if m == nil || n <= 0 {
		return
	}
	if version == 2 {
		m.BytesInV2.Add(uint64(n))
	} else {
		m.BytesInV1.Add(uint64(n))
	}
}

// StampDesync records one inbound delta entry dropped for a missing
// reference stamp. Safe on a nil receiver.
func (m *LinkMetrics) StampDesync() {
	if m == nil {
		return
	}
	m.StampDesyncs.Inc()
}

// UnknownGroup records one inbound frame dropped whole for an unknown
// or out-of-range group ID. Safe on a nil receiver.
func (m *LinkMetrics) UnknownGroup() {
	if m == nil {
		return
	}
	m.UnknownGroups.Inc()
}

// TransportMetrics counts datagram-level UDP transport activity
// (internal/udpnet). It is also the storage for udpnet's own Stats —
// a single counting scheme rather than parallel sets of atomics.
type TransportMetrics struct {
	// Sent/Received count datagrams on the wire. Overrun counts
	// inbound datagrams dropped because the receive queue was full,
	// ReadErrors transient socket read errors, Oversize local sends
	// rejected for exceeding the datagram budget.
	Sent, Received, Overrun, ReadErrors, Oversize Counter

	// SendErrors counts per-peer datagram transmissions the kernel
	// rejected (EPERM, ENOBUFS, unreachable peer, ...). Sent and
	// BytesSent count only successful transmissions on every path, so
	// Sent + SendErrors is the number attempted and an EPERM/ENOBUFS
	// storm shows up here instead of as mystery loss.
	SendErrors Counter

	// BytesSent/BytesReceived count datagram payload bytes on the
	// wire (BytesSent once per successful peer transmission, like
	// Sent, identically on the batched and per-datagram paths).
	BytesSent, BytesReceived Counter

	// SendmmsgCalls/RecvmmsgCalls count batched syscalls issued by the
	// sendmmsg/recvmmsg fast path; both stay 0 on the portable
	// per-datagram path. Sent/SendmmsgCalls and Received/RecvmmsgCalls
	// are the observed amortization ratios.
	SendmmsgCalls, RecvmmsgCalls Counter

	// SendBatch/RecvBatch observe datagrams per batched syscall (the
	// DatagramsPerCall distribution). Nil unless the transport runs
	// the batched path; Observe is nil-safe.
	SendBatch, RecvBatch *Histogram
}

// TransportState is slow-changing transport configuration published to
// /statez alongside the node snapshots: which wire path the transport
// runs and the effective kernel socket buffer sizes. Effective sizes
// are read back from the socket where the platform allows (Linux
// doubles and caps the requested value against rmem_max/wmem_max);
// 0 means the OS default was left in place.
type TransportState struct {
	Transport        string `json:"transport"`
	BatchSyscalls    bool   `json:"batch_syscalls"`
	ReadBufferBytes  int    `json:"read_buffer_bytes"`
	WriteBufferBytes int    `json:"write_buffer_bytes"`
}

// NetworkMetrics counts the in-memory simulated network
// (internal/network). All counters are in PDUs, not datagrams, so they
// stay comparable across batching configurations: Sent counts
// point-to-point PDU transmissions, Delivered PDUs handed to inboxes,
// and the Dropped counters the fault classes.
type NetworkMetrics struct {
	Sent, Delivered                               Counter
	DroppedLoss, DroppedOverrun, DroppedPartition Counter
}

// StateSnapshot is a consistent point-in-time copy of one entity's
// protocol state, taken on the entity's owner goroutine (see
// core.Entity.Snapshot). Plain slices and integers so it marshals
// directly to JSON for /statez.
type StateSnapshot struct {
	Node string `json:"node"`
	// Group is the ordered group this engine serves (0 = the default
	// group); per-group sections appear in /statez under the owning
	// node's label with bounded cardinality.
	Group uint32 `json:"group,omitempty"`

	// Seq is the entity's own send sequence number; REQ[k] the next
	// expected sequence from source k; Committed[k] the highest
	// sequence from k confirmed by every live entity.
	Seq       uint64   `json:"seq"`
	REQ       []uint64 `json:"req"`
	MinAL     []uint64 `json:"min_al"`
	MinPAL    []uint64 `json:"min_pal"`
	Committed []uint64 `json:"committed"`

	// Log depths: RRL per source, PRL/ARL total, parked PDUs waiting
	// for predecessors, sendlog PDUs retained for retransmission,
	// submissions queued behind the flow window.
	RRL            []int `json:"rrl"`
	PRL            int   `json:"prl"`
	ARL            int   `json:"arl"`
	Parked         int   `json:"parked"`
	SendLog        int   `json:"sendlog"`
	PendingSubmits int   `json:"pending_submits"`

	// DATA-specific depths: the ones a healthy cluster drains to zero
	// at quiescence. Trailing SYNCs may legitimately remain in the
	// aggregate depths above, so liveness questions ("is anything
	// stuck?") should read these. ReleasePending counts DATA PDUs held
	// by the total-order release stage (always 0 in CO mode).
	ParkedData     int `json:"parked_data"`
	SendLogData    int `json:"sendlog_data"`
	DataResident   int `json:"data_resident"`
	ReleasePending int `json:"release_pending"`

	// BufFree is the remaining buffer allocation in units; BufUnits
	// the configured total, so occupancy = BufUnits - BufFree.
	BufFree  uint32 `json:"buf_free"`
	BufUnits uint32 `json:"buf_units"`

	// Memory-ledger state, present only when the engine runs with a
	// byte budget (cobcast.WithMemoryBudget). LedgerBytes/LedgerPDUs
	// gauge the bytes and PDUs currently retained by the logs against
	// LedgerBudget; BackpressureBlocked/BackpressureShed count producer
	// submissions blocked or shed at the budget; PressureEvicted counts
	// peers evicted on the pressure-shortened suspicion timer.
	LedgerBytes         int64  `json:"ledger_bytes,omitempty"`
	LedgerPDUs          int64  `json:"ledger_pdus,omitempty"`
	LedgerBudget        int64  `json:"ledger_budget,omitempty"`
	BackpressureBlocked uint64 `json:"backpressure_blocked,omitempty"`
	BackpressureShed    uint64 `json:"backpressure_shed,omitempty"`
	PressureEvicted     uint64 `json:"pressure_evicted,omitempty"`

	// Quiescent reports whether the entity has no unconfirmed local
	// sends and no buffered remote PDUs.
	Quiescent bool `json:"quiescent"`
}
