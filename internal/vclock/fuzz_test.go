package vclock

import "testing"

// FuzzSparseStamp drives two stamps forked from a fuzzer-chosen shared
// base through an arbitrary interleaving of Raise calls and checks the
// sparse word-skipping operations against dense ground truth:
//
//   - the dirty set is exactly the strict diff against the fork point
//     (round-tripped through AppendDirty),
//   - CompareDirty agrees with the dense Compare,
//   - MergeDirty agrees with a dense component-wise maximum.
//
// The fork construction maintains the documented preconditions by
// design: no ClearDirty intervenes after the fork, so columns clean in
// both stamps still hold the shared base value.
func FuzzSparseStamp(f *testing.F) {
	f.Add(4, []byte{})
	f.Add(3, []byte{0x00, 0x11, 0x82, 0x93})
	f.Add(64, []byte{0xff, 0x01, 0x40, 0xbf, 0x3f, 0x80})
	f.Add(65, []byte{0x01, 0x02, 0x03, 0x81, 0x82, 0x83, 0x7f, 0xfe})
	f.Add(200, []byte{0x10, 0x90, 0x20, 0xa0, 0x30, 0xb0, 0x55, 0xd5})
	f.Fuzz(func(t *testing.T, n int, ops []byte) {
		if n < 1 || n > 512 {
			return
		}
		a := NewStamp(n)
		// Base: a deterministic ramp so forked columns start nonzero.
		for i := 0; i < n; i++ {
			a.Raise(i, uint64(i%5))
		}
		a.ClearDirty()
		b := a.Clone()
		base := make([]uint64, n)
		copy(base, a.Vec())

		// Each op byte: high bit picks the stamp, the rest picks the
		// column; the value raised is derived from the op position so
		// repeats exercise the no-advance path.
		for pos, op := range ops {
			tgt := &a
			if op&0x80 != 0 {
				tgt = &b
			}
			col := int(op&0x7f) % n
			tgt.Raise(col, uint64(pos%11))
		}

		check := func(name string, s *Stamp) {
			nd := 0
			for i := 0; i < n; i++ {
				changed := s.Get(i) != base[i]
				if s.Dirty().Test(i) != changed {
					t.Fatalf("%s: dirty(%d)=%v, strict-diff=%v",
						name, i, s.Dirty().Test(i), changed)
				}
				if s.Get(i) < base[i] {
					t.Fatalf("%s: column %d regressed below base", name, i)
				}
				if changed {
					nd++
				}
			}
			if s.NDirty() != nd {
				t.Fatalf("%s: NDirty=%d want %d", name, s.NDirty(), nd)
			}
			idx := s.AppendDirty(nil)
			if len(idx) != nd {
				t.Fatalf("%s: AppendDirty returned %d indices, want %d", name, len(idx), nd)
			}
			for k, i := range idx {
				if k > 0 && idx[k-1] >= i {
					t.Fatalf("%s: AppendDirty not ascending: %v", name, idx)
				}
				if s.Get(i) == base[i] {
					t.Fatalf("%s: AppendDirty lists unchanged column %d", name, i)
				}
			}
		}
		check("a", &a)
		check("b", &b)

		if got, want := a.CompareDirty(&b), a.Compare(&b); got != want {
			t.Fatalf("CompareDirty=%v, dense Compare=%v", got, want)
		}
		want := make([]uint64, n)
		for i := 0; i < n; i++ {
			want[i] = a.Get(i)
			if b.Get(i) > want[i] {
				want[i] = b.Get(i)
			}
		}
		a.MergeDirty(&b)
		for i := 0; i < n; i++ {
			if a.Get(i) != want[i] {
				t.Fatalf("MergeDirty col %d = %d, want %d", i, a.Get(i), want[i])
			}
		}
		if ord := a.Compare(&b); ord == Before || ord == Concurrent {
			t.Fatalf("post-merge ordering %v, want ≥", ord)
		}
	})
}
