// Sparse ACK-stamp machinery. The CO protocol's DT PDUs carry an n-wide
// ACK vector, and folding one into the AL/PAL matrices dense costs O(n)
// per PDU — the structural scalability barrier named by Nédelec et al.
// (PAPERS.md). Between two consecutive PDUs of one sender, though, only
// the columns whose REQ advanced differ, and under steady load that set
// is small and independent of n. Bits is a 64-bit-word bitmap over
// sources, and Stamp is a version vector that tracks exactly which of
// its columns changed since the last ClearDirty, so compares, merges and
// folds can touch only changed words — with a dense fallback once the
// dirty set covers half the vector, mirroring the wire codec's
// full-stamp condition (2c ≥ n).
package vclock

import "math/bits"

// Bits is a bitmap over sources, packed 64 per word. Index i lives in
// word i>>6 at bit i&63, so ascending-bit iteration visits sources in
// ascending order. The caller sizes it with NewBits and never indexes
// past n-1. Bits is a plain slice so hot paths can range over its words
// directly and scan set bits with math/bits intrinsics.
type Bits []uint64

// NewBits returns a zeroed bitmap able to hold n sources.
func NewBits(n int) Bits { return make(Bits, (n+63)>>6) }

// Set sets bit i.
func (b Bits) Set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b Bits) Clear(i int) { b[i>>6] &^= 1 << (uint(i) & 63) }

// Test reports whether bit i is set.
func (b Bits) Test(i int) bool { return b[i>>6]&(1<<(uint(i)&63)) != 0 }

// Empty reports whether no bit is set.
func (b Bits) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (b Bits) Count() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears every bit.
func (b Bits) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Fill sets bits 0..n-1 and clears the rest.
func (b Bits) Fill(n int) {
	b.Reset()
	for i := 0; i+64 <= n; i += 64 {
		b[i>>6] = ^uint64(0)
	}
	if r := n & 63; r != 0 {
		b[n>>6] = 1<<uint(r) - 1
	}
}

// CopyFrom overwrites b with src. The bitmaps must be the same size.
func (b Bits) CopyFrom(src Bits) { copy(b, src) }

// ForEach calls fn for every set bit in ascending order.
func (b Bits) ForEach(fn func(i int)) {
	for wi, w := range b {
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Stamp is a version vector over n sources that remembers which columns
// changed: every strict advance through Raise (or a sparse Merge) marks
// the column dirty, until ClearDirty resets the tracking epoch. The
// dirty set is exactly the strict difference against the vector's value
// at the last ClearDirty, which is what lets a sender annotate each
// sequenced PDU with the columns that moved since its predecessor.
type Stamp struct {
	v     []uint64
	dirty Bits
	nd    int
}

// NewStamp returns a zero stamp over n sources with an empty dirty set.
func NewStamp(n int) Stamp {
	return Stamp{v: make([]uint64, n), dirty: NewBits(n)}
}

// Len returns the number of sources.
func (s *Stamp) Len() int { return len(s.v) }

// Get returns column i.
func (s *Stamp) Get(i int) uint64 { return s.v[i] }

// Vec returns the underlying value vector, borrowed: callers must not
// mutate it (all writes must go through Raise so dirtiness stays exact).
func (s *Stamp) Vec() []uint64 { return s.v }

// Raise advances column i to x if x is strictly larger, marking the
// column dirty, and reports whether it advanced. Lower or equal values
// are ignored (version vectors only move forward).
func (s *Stamp) Raise(i int, x uint64) bool {
	if x <= s.v[i] {
		return false
	}
	s.v[i] = x
	if !s.dirty.Test(i) {
		s.dirty.Set(i)
		s.nd++
	}
	return true
}

// Dirty returns the dirty bitmap, borrowed: callers may read (and
// iterate) it but must not mutate it.
func (s *Stamp) Dirty() Bits { return s.dirty }

// NDirty returns the number of dirty columns.
func (s *Stamp) NDirty() int { return s.nd }

// Dense reports whether the dirty set has crossed the density threshold
// (2·dirty ≥ n) past which a sparse delta stops paying: enumerating more
// than half the columns costs as much as a dense scan, so callers fall
// back to the dense form — the same 2c ≥ n condition at which the v2
// wire codec emits a full stamp instead of a delta.
func (s *Stamp) Dense() bool { return 2*s.nd >= len(s.v) }

// ClearDirty empties the dirty set, starting a new tracking epoch. It
// touches only words with set bits, so it is O(dirty), not O(n).
func (s *Stamp) ClearDirty() {
	if s.nd == 0 {
		return
	}
	for i, w := range s.dirty {
		if w != 0 {
			s.dirty[i] = 0
		}
	}
	s.nd = 0
}

// AppendDirty appends the dirty column indices to dst in ascending
// order and returns the extended slice.
func (s *Stamp) AppendDirty(dst []int) []int {
	s.dirty.ForEach(func(i int) { dst = append(dst, i) })
	return dst
}

// Clone returns an independent copy of the stamp, dirty set included.
func (s *Stamp) Clone() Stamp {
	c := Stamp{v: make([]uint64, len(s.v)), dirty: NewBits(len(s.v)), nd: s.nd}
	copy(c.v, s.v)
	copy(c.dirty, s.dirty)
	return c
}

// Compare determines the causal ordering between s and w, scanning all
// n columns. It is the always-correct dense form; CompareDirty is the
// sparse fast path for stamps known to share a base.
func (s *Stamp) Compare(w *Stamp) Ordering {
	if len(s.v) != len(w.v) {
		panic("vclock: Compare on stamps of different lengths")
	}
	return VC(s.v).Compare(VC(w.v))
}

// CompareDirty determines the causal ordering between s and w touching
// only words that hold a dirty column of either stamp.
//
// Precondition: every column clean in BOTH stamps has equal values in
// both (the stamps diverged from a common base and all writes since
// went through Raise without an intervening ClearDirty). Columns inside
// a touched word are compared wholesale, so partial dirtiness within a
// word is fine. Falls back to the dense Compare once either side has
// crossed the density threshold.
func (s *Stamp) CompareDirty(w *Stamp) Ordering {
	if len(s.v) != len(w.v) {
		panic("vclock: CompareDirty on stamps of different lengths")
	}
	if s.Dense() || w.Dense() {
		return s.Compare(w)
	}
	var less, greater bool
	for wi := range s.dirty {
		m := s.dirty[wi] | w.dirty[wi]
		if m == 0 {
			continue
		}
		base := wi << 6
		end := base + 64
		if end > len(s.v) {
			end = len(s.v)
		}
		for i := base; i < end; i++ {
			switch {
			case s.v[i] < w.v[i]:
				less = true
			case s.v[i] > w.v[i]:
				greater = true
			}
			if less && greater {
				return Concurrent
			}
		}
	}
	switch {
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// Merge folds w into s column-wise (component maximum) over all n
// columns, marking every column it raises dirty.
func (s *Stamp) Merge(w *Stamp) {
	if len(s.v) != len(w.v) {
		panic("vclock: Merge on stamps of different lengths")
	}
	for i, x := range w.v {
		s.Raise(i, x)
	}
}

// MergeDirty folds w into s touching only words that hold a dirty
// column of w.
//
// Precondition: every column clean in w satisfies w[i] ≤ s[i] (w
// diverged from a base s already covers, and all of w's advances since
// went through Raise without an intervening ClearDirty). Falls back to
// the dense Merge once w has crossed the density threshold.
func (s *Stamp) MergeDirty(w *Stamp) {
	if len(s.v) != len(w.v) {
		panic("vclock: MergeDirty on stamps of different lengths")
	}
	if w.Dense() {
		s.Merge(w)
		return
	}
	for wi, d := range w.dirty {
		if d == 0 {
			continue
		}
		base := wi << 6
		for d != 0 {
			i := base + bits.TrailingZeros64(d)
			d &= d - 1
			s.Raise(i, w.v[i])
		}
	}
}
