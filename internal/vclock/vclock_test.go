package vclock

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCompare(t *testing.T) {
	tests := []struct {
		name string
		v, w VC
		want Ordering
	}{
		{"equal zero", VC{0, 0}, VC{0, 0}, Equal},
		{"equal nonzero", VC{1, 2, 3}, VC{1, 2, 3}, Equal},
		{"strictly before", VC{0, 1}, VC{1, 2}, Before},
		{"before with tie", VC{1, 1}, VC{1, 2}, Before},
		{"after", VC{3, 0}, VC{2, 0}, After},
		{"concurrent", VC{1, 0}, VC{0, 1}, Concurrent},
		{"concurrent long", VC{5, 0, 3}, VC{4, 1, 3}, Concurrent},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.Compare(tt.w); got != tt.want {
				t.Errorf("%v.Compare(%v) = %v, want %v", tt.v, tt.w, got, tt.want)
			}
		})
	}
}

func TestCompareMismatchedLengthsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	VC{1}.Compare(VC{1, 2})
}

func TestTickMergeClone(t *testing.T) {
	v := New(3)
	v.Tick(0).Tick(0)
	v.Tick(2)
	if v.String() != "<2 0 1>" {
		t.Fatalf("after ticks: %v", v)
	}
	w := v.Clone()
	w.Tick(1)
	if v[1] != 0 {
		t.Error("Clone shares storage")
	}
	v.Merge(VC{1, 5, 0})
	if v.String() != "<2 5 1>" {
		t.Errorf("after merge: %v", v)
	}
}

func TestBeforeAndConcurrentHelpers(t *testing.T) {
	a, b := VC{1, 0}, VC{1, 1}
	if !a.Before(b) || b.Before(a) {
		t.Error("Before helper wrong")
	}
	c := VC{0, 2}
	if !a.Concurrent(c) || !c.Concurrent(a) {
		t.Error("Concurrent helper wrong")
	}
	if a.Concurrent(a.Clone()) {
		t.Error("equal clocks reported concurrent")
	}
}

func TestCausalReady(t *testing.T) {
	tests := []struct {
		name  string
		m     VC
		local VC
		src   int
		want  bool
	}{
		{"first message from src", VC{1, 0, 0}, VC{0, 0, 0}, 0, true},
		{"next in sequence", VC{2, 0, 0}, VC{1, 0, 0}, 0, true},
		{"gap from src", VC{3, 0, 0}, VC{1, 0, 0}, 0, false},
		{"duplicate", VC{1, 0, 0}, VC{1, 0, 0}, 0, false},
		{"missing dependency", VC{1, 1, 0}, VC{0, 0, 0}, 1, false},
		{"dependency satisfied", VC{1, 1, 0}, VC{1, 0, 0}, 1, true},
		{"unrelated progress ok", VC{0, 1, 0}, VC{9, 0, 4}, 1, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := CausalReady(tt.m, tt.local, tt.src); got != tt.want {
				t.Errorf("CausalReady(%v, %v, %d) = %v, want %v", tt.m, tt.local, tt.src, got, tt.want)
			}
		})
	}
}

// clamp converts arbitrary quick-generated uint64s into small clock values
// so comparisons exercise all orderings, not just Concurrent.
func clamp(raw []uint64, n int) VC {
	v := New(n)
	for i := range v {
		if i < len(raw) {
			v[i] = raw[i] % 4
		}
	}
	return v
}

func TestQuickCompareLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(7))}

	t.Run("antisymmetry", func(t *testing.T) {
		f := func(a, b []uint64) bool {
			v, w := clamp(a, 4), clamp(b, 4)
			switch v.Compare(w) {
			case Before:
				return w.Compare(v) == After
			case After:
				return w.Compare(v) == Before
			case Equal:
				return w.Compare(v) == Equal
			default:
				return w.Compare(v) == Concurrent
			}
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("merge is upper bound", func(t *testing.T) {
		f := func(a, b []uint64) bool {
			v, w := clamp(a, 4), clamp(b, 4)
			m := v.Clone()
			m.Merge(w)
			vo, wo := v.Compare(m), w.Compare(m)
			return (vo == Before || vo == Equal) && (wo == Before || wo == Equal)
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("merge idempotent and commutative", func(t *testing.T) {
		f := func(a, b []uint64) bool {
			v, w := clamp(a, 4), clamp(b, 4)
			m1 := v.Clone()
			m1.Merge(w)
			m2 := w.Clone()
			m2.Merge(v)
			if m1.Compare(m2) != Equal {
				return false
			}
			m3 := m1.Clone()
			m3.Merge(w)
			return m3.Compare(m1) == Equal
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("tick strictly advances", func(t *testing.T) {
		f := func(a []uint64, iRaw uint8) bool {
			v := clamp(a, 4)
			i := int(iRaw) % 4
			w := v.Clone().Tick(i)
			return v.Compare(w) == Before
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
}

func TestOrderingString(t *testing.T) {
	if Before.String() != "<" || After.String() != ">" || Equal.String() != "=" || Concurrent.String() != "||" {
		t.Error("Ordering strings wrong")
	}
}
