package vclock

import (
	"math/rand"
	"testing"
)

func TestBitsBasic(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 128, 130, 256} {
		b := NewBits(n)
		if !b.Empty() || b.Count() != 0 {
			t.Fatalf("n=%d: new bitmap not empty", n)
		}
		want := map[int]bool{}
		rng := rand.New(rand.NewSource(int64(n)))
		for i := 0; i < 3*n; i++ {
			j := rng.Intn(n)
			if rng.Intn(3) == 0 {
				b.Clear(j)
				delete(want, j)
			} else {
				b.Set(j)
				want[j] = true
			}
		}
		if b.Count() != len(want) {
			t.Fatalf("n=%d: Count=%d want %d", n, b.Count(), len(want))
		}
		for j := 0; j < n; j++ {
			if b.Test(j) != want[j] {
				t.Fatalf("n=%d: Test(%d)=%v want %v", n, j, b.Test(j), want[j])
			}
		}
		// ForEach visits exactly the set bits, ascending.
		prev := -1
		seen := 0
		b.ForEach(func(i int) {
			if i <= prev {
				t.Fatalf("n=%d: ForEach not ascending: %d after %d", n, i, prev)
			}
			if !want[i] {
				t.Fatalf("n=%d: ForEach visited clear bit %d", n, i)
			}
			prev = i
			seen++
		})
		if seen != len(want) {
			t.Fatalf("n=%d: ForEach visited %d bits, want %d", n, seen, len(want))
		}
		b.Reset()
		if !b.Empty() {
			t.Fatalf("n=%d: not empty after Reset", n)
		}
	}
}

func TestBitsFill(t *testing.T) {
	for _, n := range []int{1, 5, 63, 64, 65, 128, 129} {
		b := NewBits(n)
		b.Set(0) // Fill must also clear stale bits
		b.Fill(n)
		if b.Count() != n {
			t.Fatalf("Fill(%d): Count=%d", n, b.Count())
		}
		for j := 0; j < n; j++ {
			if !b.Test(j) {
				t.Fatalf("Fill(%d): bit %d clear", n, j)
			}
		}
		b.Fill(n - 1)
		if b.Count() != n-1 || b.Test(n-1) {
			t.Fatalf("Fill(%d) after Fill(%d): Count=%d Test(n-1)=%v",
				n-1, n, b.Count(), b.Test(n-1))
		}
	}
}

// TestStampDirtyExactness checks the load-bearing property of the dirty
// set: after any mix of Raise calls, the dirty set is exactly the strict
// difference against the vector's value at the last ClearDirty.
func TestStampDirtyExactness(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(150)
		s := NewStamp(n)
		epoch := make([]uint64, n) // value at last ClearDirty
		for step := 0; step < 500; step++ {
			switch rng.Intn(10) {
			case 0:
				s.ClearDirty()
				copy(epoch, s.Vec())
			default:
				i := rng.Intn(n)
				x := uint64(rng.Intn(20))
				before := s.Get(i)
				adv := s.Raise(i, x)
				if adv != (x > before) {
					t.Fatalf("Raise(%d,%d) from %d: advanced=%v", i, x, before, adv)
				}
			}
			nd := 0
			for i := 0; i < n; i++ {
				changed := s.Get(i) != epoch[i]
				if s.Dirty().Test(i) != changed {
					t.Fatalf("seed %d step %d: dirty(%d)=%v, changed=%v",
						seed, step, i, s.Dirty().Test(i), changed)
				}
				if changed {
					nd++
				}
			}
			if s.NDirty() != nd {
				t.Fatalf("seed %d step %d: NDirty=%d want %d", seed, step, s.NDirty(), nd)
			}
			if s.Dense() != (2*nd >= n) {
				t.Fatalf("seed %d step %d: Dense=%v with nd=%d n=%d",
					seed, step, s.Dense(), nd, n)
			}
		}
	}
}

func TestStampAppendDirtyAscending(t *testing.T) {
	s := NewStamp(130)
	for _, i := range []int{129, 0, 64, 63, 65, 7} {
		s.Raise(i, 1)
	}
	got := s.AppendDirty(nil)
	want := []int{0, 7, 63, 64, 65, 129}
	if len(got) != len(want) {
		t.Fatalf("AppendDirty = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendDirty = %v, want %v", got, want)
		}
	}
}

// TestCompareMergeDirtyAgainstDense forks two stamps from a shared base
// and checks that the sparse word-skipping forms agree with the dense
// forms while the documented preconditions hold.
func TestCompareMergeDirtyAgainstDense(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		rng := rand.New(rand.NewSource(seed * 31))
		n := 2 + rng.Intn(200)
		a := NewStamp(n)
		for i := 0; i < n; i++ {
			a.Raise(i, uint64(rng.Intn(8)))
		}
		a.ClearDirty()
		b := a.Clone() // shared base, both clean
		for step := 0; step < 200; step++ {
			tgt := &a
			if rng.Intn(2) == 0 {
				tgt = &b
			}
			tgt.Raise(rng.Intn(n), uint64(rng.Intn(30)))
			if got, want := a.CompareDirty(&b), a.Compare(&b); got != want {
				t.Fatalf("seed %d step %d: CompareDirty=%v Compare=%v", seed, step, got, want)
			}
		}
		// MergeDirty(a, b): b's clean columns still hold the base value,
		// which a can only have raised — precondition holds.
		wantMerged := make([]uint64, n)
		for i := 0; i < n; i++ {
			wantMerged[i] = a.Get(i)
			if b.Get(i) > wantMerged[i] {
				wantMerged[i] = b.Get(i)
			}
		}
		a.MergeDirty(&b)
		for i := 0; i < n; i++ {
			if a.Get(i) != wantMerged[i] {
				t.Fatalf("seed %d: MergeDirty col %d = %d, want %d",
					seed, i, a.Get(i), wantMerged[i])
			}
		}
		if a.Compare(&b) == Before || a.Compare(&b) == Concurrent {
			t.Fatalf("seed %d: merged stamp not ≥ source", seed)
		}
	}
}

func TestStampClone(t *testing.T) {
	s := NewStamp(70)
	s.Raise(3, 5)
	s.Raise(68, 2)
	c := s.Clone()
	c.Raise(10, 9)
	if s.Dirty().Test(10) || s.Get(10) != 0 {
		t.Fatal("Clone shares state with original")
	}
	if !c.Dirty().Test(3) || c.Get(68) != 2 || c.NDirty() != 3 {
		t.Fatal("Clone dropped state")
	}
}
