// Package vclock implements vector clocks in the style of Lamport [8] and
// the ISIS CBCAST protocol [3]. The CO protocol itself deliberately avoids
// vector clocks — it orders PDUs by sequence numbers (Theorem 4.1) — so
// this package serves two roles in the reproduction:
//
//   - it is the ordering machinery of the internal/baseline/cbcast
//     comparator, and
//   - it provides ground-truth happened-before for the trace checker, so
//     tests can verify that the CO protocol's sequence-number ordering
//     agrees with the real causal order.
package vclock

import (
	"strconv"
	"strings"
)

// VC is a vector clock over n processes. VC[i] counts the events process i
// has performed (or that the holder has learned of). The zero-length VC is
// valid and compares Equal to itself.
type VC []uint64

// New returns a zero clock for n processes.
func New(n int) VC { return make(VC, n) }

// Clone returns an independent copy of the clock.
func (v VC) Clone() VC {
	w := make(VC, len(v))
	copy(w, v)
	return w
}

// Tick increments the component of process i and returns v for chaining.
func (v VC) Tick(i int) VC {
	v[i]++
	return v
}

// Merge sets v to the component-wise maximum of v and w. The two clocks
// must have the same length.
func (v VC) Merge(w VC) {
	if len(v) != len(w) {
		panic("vclock: Merge on clocks of different lengths")
	}
	for i, x := range w {
		if x > v[i] {
			v[i] = x
		}
	}
}

// Ordering is the result of comparing two vector clocks.
type Ordering int

const (
	// Before means v happened-before w (v < w component-wise, with at
	// least one strict inequality).
	Before Ordering = iota + 1
	// After means w happened-before v.
	After
	// Equal means the clocks are identical.
	Equal
	// Concurrent means neither happened-before the other.
	Concurrent
)

// String returns "<", ">", "=" or "||".
func (o Ordering) String() string {
	switch o {
	case Before:
		return "<"
	case After:
		return ">"
	case Equal:
		return "="
	case Concurrent:
		return "||"
	default:
		return "ORD(" + strconv.Itoa(int(o)) + ")"
	}
}

// Compare determines the causal ordering between v and w. The clocks must
// have the same length.
func (v VC) Compare(w VC) Ordering {
	if len(v) != len(w) {
		panic("vclock: Compare on clocks of different lengths")
	}
	var less, greater bool
	for i := range v {
		switch {
		case v[i] < w[i]:
			less = true
		case v[i] > w[i]:
			greater = true
		}
		if less && greater {
			return Concurrent
		}
	}
	switch {
	case less:
		return Before
	case greater:
		return After
	default:
		return Equal
	}
}

// Before reports whether v happened-before w.
func (v VC) Before(w VC) bool { return v.Compare(w) == Before }

// Concurrent reports whether neither clock happened-before the other and
// they are not equal.
func (v VC) Concurrent(w VC) bool { return v.Compare(w) == Concurrent }

// String renders the clock as "<1 0 2>".
func (v VC) String() string {
	var b strings.Builder
	b.WriteByte('<')
	for i, x := range v {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strconv.FormatUint(x, 10))
	}
	b.WriteByte('>')
	return b.String()
}

// CausalReady implements the CBCAST delivery condition of Birman, Schiper
// and Stephenson [3]: a message stamped m sent by process src is
// deliverable at a process whose current clock is local when
//
//	m[src] == local[src]+1           (next message from src), and
//	m[k]   <= local[k]  for k != src (all causal predecessors delivered).
func CausalReady(m, local VC, src int) bool {
	if len(m) != len(local) {
		panic("vclock: CausalReady on clocks of different lengths")
	}
	if m[src] != local[src]+1 {
		return false
	}
	for k := range m {
		if k != src && m[k] > local[k] {
			return false
		}
	}
	return true
}
