// Package trace records protocol events and checks the ordering
// properties of Section 2.2 against them. The checker derives ground-truth
// happened-before with vector clocks (independent of the CO protocol's
// sequence-number machinery), so tests can verify that the protocol's
// deliveries are information-preserved, local-order-preserved and
// causality-preserved without trusting the implementation under test.
package trace

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"cobcast/internal/pdu"
	"cobcast/internal/vclock"
)

// EventType classifies recorded events.
type EventType int

const (
	// Send records an application-level broadcast of a sequenced PDU.
	Send EventType = iota + 1
	// Accept records the acceptance (in-order receipt) of a sequenced PDU
	// at an entity; this is the receipt event r_i[p] of the paper.
	Accept
	// Deliver records a PDU being handed to the application entity.
	Deliver
	// Drop records a PDU lost in the network.
	Drop
	// Retransmit records a rebroadcast triggered by an RET PDU.
	Retransmit
)

// String returns the event mnemonic.
func (t EventType) String() string {
	switch t {
	case Send:
		return "send"
	case Accept:
		return "accept"
	case Deliver:
		return "deliver"
	case Drop:
		return "drop"
	case Retransmit:
		return "retransmit"
	default:
		return fmt.Sprintf("event(%d)", int(t))
	}
}

// MsgID identifies a sequenced PDU by source and sequence number.
type MsgID struct {
	Src pdu.EntityID `json:"src"`
	Seq pdu.Seq      `json:"seq"`
}

// String renders "s1#3".
func (m MsgID) String() string { return fmt.Sprintf("s%d#%d", m.Src, m.Seq) }

// Event is one recorded protocol event.
type Event struct {
	Type   EventType     `json:"type"`
	Entity pdu.EntityID  `json:"entity"` // where the event happened
	Msg    MsgID         `json:"msg"`
	Kind   pdu.Kind      `json:"kind"`
	At     time.Duration `json:"at"`
}

// Recorder collects events. It is safe for concurrent use; events from a
// single entity must be recorded in that entity's processing order, which
// holds naturally because each entity is single-threaded.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// Record appends an event.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

// Events returns a copy of everything recorded so far.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// WriteJSON writes the trace as JSON lines.
func (r *Recorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range r.Events() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("encode trace event: %w", err)
		}
	}
	return nil
}

// DigestEvents returns the SHA-256 hex digest of the trace's JSON-lines
// encoding — the byte-identity witness behind the chaos harness's
// determinism contract (same seed ⇒ identical trace ⇒ identical digest).
func DigestEvents(events []Event) (string, error) {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return "", fmt.Errorf("digest trace event: %w", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// ReadJSON parses a JSON-lines trace.
func ReadJSON(rd io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("trace line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("read trace: %w", err)
	}
	return out, nil
}

// Analysis is the digested form of a trace used by the checkers.
type Analysis struct {
	n int
	// stamps holds the ground-truth vector-clock stamp of each sent
	// message, derived by replaying Send/Accept events.
	stamps map[MsgID]vclock.VC
	// kinds remembers each message's PDU kind.
	kinds map[MsgID]pdu.Kind
	// deliveries[e] is entity e's delivery sequence in order.
	deliveries map[pdu.EntityID][]MsgID
	// sends is every sent message in send order.
	sends []MsgID
}

// Analyze replays the trace, computing ground-truth vector stamps. The
// trace must contain each entity's events in its processing order and a
// message's Send before any of its Accepts (guaranteed by construction
// for recorded runs).
func Analyze(events []Event, n int) (*Analysis, error) {
	a := &Analysis{
		n:          n,
		stamps:     make(map[MsgID]vclock.VC),
		kinds:      make(map[MsgID]pdu.Kind),
		deliveries: make(map[pdu.EntityID][]MsgID),
	}
	vcs := make([]vclock.VC, n)
	for i := range vcs {
		vcs[i] = vclock.New(n)
	}
	for _, e := range events {
		if int(e.Entity) < 0 || int(e.Entity) >= n {
			return nil, fmt.Errorf("trace: entity %d out of range", e.Entity)
		}
		switch e.Type {
		case Send:
			if _, dup := a.stamps[e.Msg]; dup {
				return nil, fmt.Errorf("trace: duplicate send of %v", e.Msg)
			}
			vcs[e.Entity].Tick(int(e.Entity))
			a.stamps[e.Msg] = vcs[e.Entity].Clone()
			a.kinds[e.Msg] = e.Kind
			a.sends = append(a.sends, e.Msg)
		case Accept:
			stamp, ok := a.stamps[e.Msg]
			if !ok {
				return nil, fmt.Errorf("trace: accept of unsent %v at entity %d", e.Msg, e.Entity)
			}
			vcs[e.Entity].Merge(stamp)
		case Deliver:
			a.deliveries[e.Entity] = append(a.deliveries[e.Entity], e.Msg)
		}
	}
	return a, nil
}

// Stamp returns the ground-truth vector stamp of a message, or nil if the
// message was never sent.
func (a *Analysis) Stamp(m MsgID) vclock.VC { return a.stamps[m] }

// Deliveries returns entity e's delivery order.
func (a *Analysis) Deliveries(e pdu.EntityID) []MsgID { return a.deliveries[e] }

// DataSends returns every KindData message in send order.
func (a *Analysis) DataSends() []MsgID {
	var out []MsgID
	for _, m := range a.sends {
		if a.kinds[m] == pdu.KindData {
			out = append(out, m)
		}
	}
	return out
}

// CheckInformationPreserved verifies every entity delivered every DATA
// message exactly once (atomic, loss-free delivery).
func (a *Analysis) CheckInformationPreserved() error {
	want := a.DataSends()
	for e := pdu.EntityID(0); int(e) < a.n; e++ {
		seen := make(map[MsgID]int, len(want))
		for _, m := range a.deliveries[e] {
			seen[m]++
		}
		for _, m := range want {
			switch seen[m] {
			case 0:
				return fmt.Errorf("entity %d never delivered %v", e, m)
			case 1:
			default:
				return fmt.Errorf("entity %d delivered %v %d times", e, m, seen[m])
			}
		}
		if len(a.deliveries[e]) != len(want) {
			return fmt.Errorf("entity %d delivered %d messages, want %d",
				e, len(a.deliveries[e]), len(want))
		}
	}
	return nil
}

// CheckInformationPreservedAmong is CheckInformationPreserved restricted
// to a surviving subset: every alive entity must deliver every DATA
// message an alive entity sent exactly once, and nothing twice. Messages
// from non-alive sources are best-effort — a stalled source can never
// serve retransmissions (source-only repair), so survivors may hold an
// incomplete suffix of its stream.
func (a *Analysis) CheckInformationPreservedAmong(alive []pdu.EntityID) error {
	aliveSet := make(map[pdu.EntityID]bool, len(alive))
	for _, e := range alive {
		aliveSet[e] = true
	}
	var want []MsgID
	for _, m := range a.DataSends() {
		if aliveSet[m.Src] {
			want = append(want, m)
		}
	}
	for _, e := range alive {
		seen := make(map[MsgID]int, len(a.deliveries[e]))
		for _, m := range a.deliveries[e] {
			seen[m]++
			if seen[m] > 1 {
				return fmt.Errorf("entity %d delivered %v %d times", e, m, seen[m])
			}
		}
		for _, m := range want {
			if seen[m] == 0 {
				return fmt.Errorf("entity %d never delivered %v", e, m)
			}
		}
	}
	return nil
}

// CheckTotalOrderPreservedAmong is CheckTotalOrderPreserved restricted to
// the alive entities: they must deliver identical sequences, while each
// non-alive entity's sequence must be a prefix of that common order (it
// ran the same stable-release rule until it stopped).
func (a *Analysis) CheckTotalOrderPreservedAmong(alive []pdu.EntityID) error {
	aliveSet := make(map[pdu.EntityID]bool, len(alive))
	var ref []MsgID
	var refEntity pdu.EntityID
	for _, e := range alive {
		aliveSet[e] = true
		ms := a.deliveries[e]
		if ref == nil {
			ref, refEntity = ms, e
			continue
		}
		if len(ms) != len(ref) {
			return fmt.Errorf("entities %d and %d delivered %d vs %d messages",
				refEntity, e, len(ref), len(ms))
		}
		for i := range ms {
			if ms[i] != ref[i] {
				return fmt.Errorf("position %d: entity %d delivered %v, entity %d delivered %v",
					i, refEntity, ref[i], e, ms[i])
			}
		}
	}
	for e := pdu.EntityID(0); int(e) < a.n; e++ {
		if aliveSet[e] {
			continue
		}
		ms := a.deliveries[e]
		if len(ms) > len(ref) {
			return fmt.Errorf("stopped entity %d delivered %d messages, survivors %d",
				e, len(ms), len(ref))
		}
		for i := range ms {
			if ms[i] != ref[i] {
				return fmt.Errorf("position %d: stopped entity %d delivered %v, survivors %v",
					i, e, ms[i], ref[i])
			}
		}
	}
	return nil
}

// CheckLocalOrderPreserved verifies each entity delivers each source's
// messages in sending (sequence) order.
func (a *Analysis) CheckLocalOrderPreserved() error {
	for e := pdu.EntityID(0); int(e) < a.n; e++ {
		last := make(map[pdu.EntityID]pdu.Seq)
		for _, m := range a.deliveries[e] {
			if prev, ok := last[m.Src]; ok && m.Seq <= prev {
				return fmt.Errorf("entity %d delivered %v after s%d#%d", e, m, m.Src, prev)
			}
			last[m.Src] = m.Seq
		}
	}
	return nil
}

// CheckCausalOrderPreserved verifies no entity delivers a message before
// one of its ground-truth causal predecessors (the CO service property).
func (a *Analysis) CheckCausalOrderPreserved() error {
	for e := pdu.EntityID(0); int(e) < a.n; e++ {
		ms := a.deliveries[e]
		for i := 0; i < len(ms); i++ {
			for j := i + 1; j < len(ms); j++ {
				si, sj := a.stamps[ms[i]], a.stamps[ms[j]]
				if si == nil || sj == nil {
					return fmt.Errorf("entity %d delivered untraced message", e)
				}
				if sj.Before(si) {
					return fmt.Errorf("entity %d delivered %v before its causal predecessor %v",
						e, ms[i], ms[j])
				}
			}
		}
	}
	return nil
}

// CheckTotalOrderPreserved verifies all entities deliver in the identical
// sequence (the TO service property; used for the total-order baseline).
func (a *Analysis) CheckTotalOrderPreserved() error {
	var ref []MsgID
	var refEntity pdu.EntityID
	for e := pdu.EntityID(0); int(e) < a.n; e++ {
		ms := a.deliveries[e]
		if ref == nil {
			ref, refEntity = ms, e
			continue
		}
		if len(ms) != len(ref) {
			return fmt.Errorf("entities %d and %d delivered %d vs %d messages",
				refEntity, e, len(ref), len(ms))
		}
		for i := range ms {
			if ms[i] != ref[i] {
				return fmt.Errorf("position %d: entity %d delivered %v, entity %d delivered %v",
					i, refEntity, ref[i], e, ms[i])
			}
		}
	}
	return nil
}

// Summary describes a trace in aggregate.
type Summary struct {
	Events      int
	DataSends   int
	SyncSends   int
	Accepts     int
	Deliveries  int
	Drops       int
	Retransmits int
	// PerEntityDeliveries maps entity → delivered count.
	PerEntityDeliveries map[pdu.EntityID]int
}

// Summarize computes aggregate counts over raw events.
func Summarize(events []Event) Summary {
	s := Summary{
		Events:              len(events),
		PerEntityDeliveries: make(map[pdu.EntityID]int),
	}
	for _, e := range events {
		switch e.Type {
		case Send:
			if e.Kind == pdu.KindData {
				s.DataSends++
			} else {
				s.SyncSends++
			}
		case Accept:
			s.Accepts++
		case Deliver:
			s.Deliveries++
			s.PerEntityDeliveries[e.Entity]++
		case Drop:
			s.Drops++
		case Retransmit:
			s.Retransmits++
		}
	}
	return s
}

// CheckCOService runs the full causally-ordering-broadcast service check:
// information-preserved + causality-preserved (which implies local order).
func (a *Analysis) CheckCOService() error {
	if err := a.CheckInformationPreserved(); err != nil {
		return fmt.Errorf("information-preserved: %w", err)
	}
	if err := a.CheckLocalOrderPreserved(); err != nil {
		return fmt.Errorf("local-order-preserved: %w", err)
	}
	if err := a.CheckCausalOrderPreserved(); err != nil {
		return fmt.Errorf("causality-preserved: %w", err)
	}
	return nil
}
