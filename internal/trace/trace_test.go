package trace

import (
	"bytes"
	"strings"
	"testing"

	"cobcast/internal/pdu"
)

// script builds a trace from compact tuples for readability.
func script(evs ...Event) []Event { return evs }

func ev(t EventType, entity pdu.EntityID, src pdu.EntityID, seq pdu.Seq) Event {
	return Event{Type: t, Entity: entity, Msg: MsgID{Src: src, Seq: seq}, Kind: pdu.KindData}
}

// figure2Trace reproduces Figure 2 of the paper: E_g sends p; E_h receives
// p then sends q; E_k receives both. g is an earlier message from E_g.
// (Entities g,h,k = 0,1,2.)
func figure2Trace(deliverOrderAtK []MsgID) []Event {
	evs := script(
		ev(Send, 0, 0, 1),   // g
		ev(Send, 0, 0, 2),   // p
		ev(Accept, 1, 0, 1), // h accepts g
		ev(Accept, 1, 0, 2), // h accepts p
		ev(Send, 1, 1, 1),   // q (causally after p)
		ev(Accept, 2, 0, 1),
		ev(Accept, 2, 0, 2),
		ev(Accept, 2, 1, 1),
		// Deliveries at 0 and 1 in causal order.
		ev(Deliver, 0, 0, 1), ev(Deliver, 0, 0, 2), ev(Deliver, 0, 1, 1),
		ev(Deliver, 1, 0, 1), ev(Deliver, 1, 0, 2), ev(Deliver, 1, 1, 1),
	)
	for _, m := range deliverOrderAtK {
		evs = append(evs, Event{Type: Deliver, Entity: 2, Msg: m, Kind: pdu.KindData})
	}
	return evs
}

func TestCheckCOServiceFigure2(t *testing.T) {
	g, p, q := MsgID{0, 1}, MsgID{0, 2}, MsgID{1, 1}

	t.Run("causality-preserved RL_k = <g p q]", func(t *testing.T) {
		a, err := Analyze(figure2Trace([]MsgID{g, p, q}), 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.CheckCOService(); err != nil {
			t.Errorf("CheckCOService: %v", err)
		}
	})

	t.Run("violating RL_k = <g q p] (paper: not causality-preserved)", func(t *testing.T) {
		a, err := Analyze(figure2Trace([]MsgID{g, q, p}), 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.CheckCausalOrderPreserved(); err == nil {
			t.Error("q-before-p passed the causal check")
		}
		// The paper notes <g q p] is still local-order-preserved.
		if err := a.CheckLocalOrderPreserved(); err != nil {
			t.Errorf("local order should hold: %v", err)
		}
	})
}

func TestGroundTruthStamps(t *testing.T) {
	a, err := Analyze(figure2Trace([]MsgID{{0, 1}, {0, 2}, {1, 1}}), 3)
	if err != nil {
		t.Fatal(err)
	}
	p, q := a.Stamp(MsgID{0, 2}), a.Stamp(MsgID{1, 1})
	if !p.Before(q) {
		t.Errorf("stamp(p)=%v should be before stamp(q)=%v", p, q)
	}
	if a.Stamp(MsgID{2, 9}) != nil {
		t.Error("unsent message has a stamp")
	}
}

func TestCheckInformationPreserved(t *testing.T) {
	base := script(
		ev(Send, 0, 0, 1),
		ev(Accept, 1, 0, 1),
		ev(Deliver, 0, 0, 1),
	)
	t.Run("missing delivery", func(t *testing.T) {
		a, err := Analyze(base, 2)
		if err != nil {
			t.Fatal(err)
		}
		err = a.CheckInformationPreserved()
		if err == nil || !strings.Contains(err.Error(), "entity 1") {
			t.Errorf("got %v, want entity-1 miss", err)
		}
	})
	t.Run("duplicate delivery", func(t *testing.T) {
		evs := append(append([]Event{}, base...),
			ev(Deliver, 1, 0, 1), ev(Deliver, 1, 0, 1))
		a, err := Analyze(evs, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.CheckInformationPreserved(); err == nil {
			t.Error("duplicate delivery passed")
		}
	})
	t.Run("complete", func(t *testing.T) {
		evs := append(append([]Event{}, base...), ev(Deliver, 1, 0, 1))
		a, err := Analyze(evs, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.CheckInformationPreserved(); err != nil {
			t.Error(err)
		}
	})
	t.Run("sync PDUs are exempt", func(t *testing.T) {
		evs := append(append([]Event{}, base...), ev(Deliver, 1, 0, 1),
			Event{Type: Send, Entity: 0, Msg: MsgID{0, 2}, Kind: pdu.KindSync})
		a, err := Analyze(evs, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.CheckInformationPreserved(); err != nil {
			t.Errorf("undelivered SYNC should not fail the check: %v", err)
		}
	})
}

func TestCheckLocalOrder(t *testing.T) {
	evs := script(
		ev(Send, 0, 0, 1), ev(Send, 0, 0, 2),
		ev(Deliver, 1, 0, 2), ev(Deliver, 1, 0, 1),
	)
	a, err := Analyze(evs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckLocalOrderPreserved(); err == nil {
		t.Error("out-of-order same-source delivery passed")
	}
}

func TestCheckTotalOrder(t *testing.T) {
	mk := func(order1 []pdu.Seq) []Event {
		evs := script(
			ev(Send, 0, 0, 1),
			ev(Send, 1, 1, 1),
			ev(Deliver, 0, 0, 1), ev(Deliver, 0, 1, 1),
		)
		for _, s := range order1 {
			if s == 1 {
				evs = append(evs, ev(Deliver, 1, 0, 1))
			} else {
				evs = append(evs, ev(Deliver, 1, 1, 1))
			}
		}
		return evs
	}
	a, err := Analyze(mk([]pdu.Seq{1, 2}), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckTotalOrderPreserved(); err != nil {
		t.Errorf("identical orders failed: %v", err)
	}
	a, err = Analyze(mk([]pdu.Seq{2, 1}), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckTotalOrderPreserved(); err == nil {
		t.Error("different orders passed total-order check")
	}
}

func TestAnalyzeRejectsMalformedTraces(t *testing.T) {
	tests := []struct {
		name string
		evs  []Event
	}{
		{"accept before send", script(ev(Accept, 1, 0, 1))},
		{"duplicate send", script(ev(Send, 0, 0, 1), ev(Send, 0, 0, 1))},
		{"entity out of range", script(ev(Send, 5, 5, 1))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Analyze(tt.evs, 2); err == nil {
				t.Error("Analyze accepted malformed trace")
			}
		})
	}
}

func TestJSONRoundTrip(t *testing.T) {
	var r Recorder
	r.Record(ev(Send, 0, 0, 1))
	r.Record(ev(Accept, 1, 0, 1))
	r.Record(Event{Type: Drop, Entity: 1, Msg: MsgID{0, 2}, Kind: pdu.KindData})
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != r.Len() {
		t.Fatalf("round trip %d events, want %d", len(got), r.Len())
	}
	for i, e := range r.Events() {
		if got[i] != e {
			t.Errorf("event %d: got %+v want %+v", i, got[i], e)
		}
	}
}

func TestReadJSONBadInput(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json}\n")); err == nil {
		t.Error("bad JSON accepted")
	}
	got, err := ReadJSON(strings.NewReader("\n\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("blank lines: got %v, %v", got, err)
	}
}

func TestEventTypeAndMsgIDStrings(t *testing.T) {
	if Send.String() != "send" || Deliver.String() != "deliver" ||
		Accept.String() != "accept" || Drop.String() != "drop" ||
		Retransmit.String() != "retransmit" {
		t.Error("EventType strings wrong")
	}
	if !strings.Contains(EventType(99).String(), "99") {
		t.Error("unknown EventType string wrong")
	}
	if (MsgID{1, 3}).String() != "s1#3" {
		t.Error("MsgID string wrong")
	}
}

func TestSummarize(t *testing.T) {
	evs := script(
		ev(Send, 0, 0, 1),
		Event{Type: Send, Entity: 1, Msg: MsgID{1, 1}, Kind: pdu.KindSync},
		ev(Accept, 1, 0, 1),
		ev(Deliver, 0, 0, 1),
		ev(Deliver, 1, 0, 1),
		Event{Type: Drop, Entity: 1, Msg: MsgID{0, 2}, Kind: pdu.KindData},
		Event{Type: Retransmit, Entity: 0, Msg: MsgID{0, 2}, Kind: pdu.KindData},
	)
	s := Summarize(evs)
	if s.Events != 7 || s.DataSends != 1 || s.SyncSends != 1 || s.Accepts != 1 ||
		s.Deliveries != 2 || s.Drops != 1 || s.Retransmits != 1 {
		t.Errorf("summary: %+v", s)
	}
	if s.PerEntityDeliveries[0] != 1 || s.PerEntityDeliveries[1] != 1 {
		t.Errorf("per-entity: %+v", s.PerEntityDeliveries)
	}
}
