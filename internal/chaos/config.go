// Package chaos is a deterministic, seed-driven fault-exploration engine
// for the CO protocol: FoundationDB-style simulation testing on the
// virtual-time simulator. A seed expands into a randomized cluster run —
// cluster size, workload shape, per-link loss and delay distributions,
// correlated loss bursts (the paper's receive-buffer-overrun failure
// mode), partitions that form and heal, paused entities — and the run is
// recorded through internal/trace and checked against every safety
// predicate of Section 2.2 plus liveness predicates (every broadcast
// delivered everywhere, no DATA PDU stuck in any log at quiesce).
//
// Determinism contract: a run reads no wall clock and draws randomness
// from exactly two seeded streams — the chaos RNG (schedule derivation
// and fault rolls, in simulator-event order) and the simnet RNG (delay
// jitter and duplication, same seed) — so the same Config always yields
// a byte-identical trace. Failing seeds auto-shrink to minimal configs
// (shrink.go) and land in a regression corpus replayed by plain go test
// (corpus.go, corpus/*.json). cmd/cochaos runs bounded parallel sweeps
// and replays single seeds with full trace dumps.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"time"
)

// Workload shapes the engine can draw. Mixed overlays a file transfer on
// conversational chatter; the rest map to one internal/workload generator.
const (
	WorkloadContinuous  = "continuous"
	WorkloadSingle      = "single"
	WorkloadBursty      = "bursty"
	WorkloadInteractive = "interactive"
	WorkloadMixed       = "mixed"
)

// workloadShapes lists every shape FromSeed draws from.
var workloadShapes = []string{
	WorkloadContinuous, WorkloadSingle, WorkloadBursty, WorkloadInteractive, WorkloadMixed,
}

// Config fully determines one chaos run. It is the unit stored in the
// regression corpus, so every field must round-trip through JSON; the
// concrete fault schedule (which links are slow, per-link loss rates,
// partition groups, window times) is re-derived from Seed inside Run, not
// stored.
type Config struct {
	// Seed drives every random choice of the run.
	Seed int64 `json:"seed"`
	// N is the cluster size, 2..16.
	N int `json:"n"`
	// TotalOrder runs the cluster in TO mode and additionally checks
	// total-order preservation.
	TotalOrder bool `json:"total_order,omitempty"`
	// DenseFold disables the engines' sparse ACK-fold fast paths so the
	// run exercises the dense reference arithmetic. The two modes must
	// be byte-identical in every trace digest — the differential tests
	// replay the same seed both ways to pin that equivalence.
	DenseFold bool `json:"dense_fold,omitempty"`

	// Workload names the traffic shape (see the Workload constants);
	// Messages is the total submission count and PayloadSize the
	// application payload bytes. MeanGapUS spaces submissions (µs).
	Workload    string `json:"workload"`
	Messages    int    `json:"messages"`
	PayloadSize int    `json:"payload_size"`
	MeanGapUS   int    `json:"mean_gap_us"`

	// DelayBaseUS bounds the per-link base propagation delay (µs, drawn
	// per directed link); JitterUS bounds the additional per-datagram
	// jitter. SlowEntities marks that many entities as slow: every link
	// touching one runs at 8× its base delay.
	DelayBaseUS  int `json:"delay_base_us"`
	JitterUS     int `json:"jitter_us,omitempty"`
	SlowEntities int `json:"slow_entities,omitempty"`

	// Loss bounds the per-directed-link datagram loss probability (each
	// link draws its own rate in [0, Loss]). Duplicate is the uniform
	// datagram duplication probability. BurstProb triggers a correlated
	// loss burst at the receiving entity — the next BurstLen datagrams
	// addressed to it are dropped, modeling a receive-buffer overrun.
	Loss      float64 `json:"loss,omitempty"`
	Duplicate float64 `json:"duplicate,omitempty"`
	BurstProb float64 `json:"burst_prob,omitempty"`
	BurstLen  int     `json:"burst_len,omitempty"`

	// Partitions cuts the cluster into two groups that many times for a
	// random window; Pauses isolates one random entity (a stop-the-world
	// pause whose traffic overruns and drops) that many times. Fault
	// windows are disjoint and all heal before the drain phase.
	Partitions int `json:"partitions,omitempty"`
	Pauses     int `json:"pauses,omitempty"`

	// WireVersion routes every simulated datagram through the real wire
	// codec (1 = fixed-width v1, 2 = delta-stamp v2), so loss and
	// duplication exercise the codec's per-source stamp caches; 0 keeps
	// the historical PDU-pointer path and its pinned trace digests. The
	// codec changes only the byte representation in flight, never the
	// PDU sequence a fault-free channel delivers, so 0/1/2 runs of one
	// seed share a trace digest when no delta loses its reference.
	WireVersion int `json:"wire_version,omitempty"`

	// Groups >= 2 runs that many independent ordered groups over the one
	// faulty network: every group's datagrams ride v3 group-addressed
	// frames on the same per-link loss/delay/partition schedule, and
	// every safety and liveness predicate is checked per group (see
	// multigroup.go). 0 or 1 is the classic single-group run.
	Groups int `json:"groups,omitempty"`

	// StalledPeers freezes that many entities at a random point mid-run:
	// they stop reading, acking and submitting — permanently, while
	// their links stay up (distinct from a partition or pause, which
	// heal). Stalled runs derive a suspicion timeout spanning the fault
	// horizon so survivors evict the frozen peers, and every predicate
	// is checked over the survivors. Lossy faults are rejected alongside
	// stalls: a frozen source can never serve retransmissions
	// (source-only repair, see internal/core/evict.go), so any loss of
	// its pre-freeze messages would be unrecoverable by design.
	StalledPeers int `json:"stalled_peers,omitempty"`
	// MemBudgetBytes gives every entity a memory ledger with this byte
	// budget; Shed additionally sheds application submissions at an
	// over-budget sender (the node runtime's BackpressureShed
	// admission). Shed requires a budget.
	MemBudgetBytes int64 `json:"mem_budget_bytes,omitempty"`
	Shed           bool  `json:"shed,omitempty"`
}

// ErrBadConfig reports an unusable chaos configuration.
var ErrBadConfig = errors.New("chaos: bad config")

// Validate reports whether the configuration can run.
func (c Config) Validate() error {
	if c.N < 2 || c.N > 16 {
		return fmt.Errorf("%w: n=%d (want 2..16)", ErrBadConfig, c.N)
	}
	switch c.Workload {
	case WorkloadContinuous, WorkloadSingle, WorkloadBursty, WorkloadInteractive, WorkloadMixed:
	default:
		return fmt.Errorf("%w: workload %q", ErrBadConfig, c.Workload)
	}
	if c.Messages < 1 {
		return fmt.Errorf("%w: messages=%d", ErrBadConfig, c.Messages)
	}
	if c.Loss < 0 || c.Loss > 0.5 {
		return fmt.Errorf("%w: loss=%v (want 0..0.5)", ErrBadConfig, c.Loss)
	}
	if c.Duplicate < 0 || c.Duplicate > 0.5 {
		return fmt.Errorf("%w: duplicate=%v", ErrBadConfig, c.Duplicate)
	}
	if c.BurstProb < 0 || c.BurstProb > 0.2 {
		return fmt.Errorf("%w: burst_prob=%v (want 0..0.2)", ErrBadConfig, c.BurstProb)
	}
	if c.BurstProb > 0 && c.BurstLen < 1 {
		return fmt.Errorf("%w: burst_prob set with burst_len=%d", ErrBadConfig, c.BurstLen)
	}
	if c.Partitions < 0 || c.Pauses < 0 || c.SlowEntities < 0 {
		return fmt.Errorf("%w: negative fault count", ErrBadConfig)
	}
	if c.SlowEntities >= c.N {
		return fmt.Errorf("%w: slow_entities=%d with n=%d", ErrBadConfig, c.SlowEntities, c.N)
	}
	if c.WireVersion < 0 || c.WireVersion > 2 {
		return fmt.Errorf("%w: wire_version=%d (want 0..2)", ErrBadConfig, c.WireVersion)
	}
	if c.Groups < 0 || c.Groups > 4 {
		return fmt.Errorf("%w: groups=%d (want 0..4)", ErrBadConfig, c.Groups)
	}
	if c.StalledPeers < 0 || c.MemBudgetBytes < 0 {
		return fmt.Errorf("%w: negative stalled_peers or mem_budget_bytes", ErrBadConfig)
	}
	if c.StalledPeers > 0 {
		if c.N-c.StalledPeers < 2 {
			return fmt.Errorf("%w: stalled_peers=%d with n=%d (need 2 survivors)",
				ErrBadConfig, c.StalledPeers, c.N)
		}
		if c.Groups >= 2 {
			return fmt.Errorf("%w: stalled_peers with groups", ErrBadConfig)
		}
		if c.Loss > 0 || c.BurstProb > 0 || c.Partitions > 0 || c.Pauses > 0 {
			return fmt.Errorf("%w: stalled_peers with lossy faults (a frozen source cannot serve retransmissions)",
				ErrBadConfig)
		}
	}
	if c.Shed && c.MemBudgetBytes == 0 {
		return fmt.Errorf("%w: shed without mem_budget_bytes", ErrBadConfig)
	}
	return nil
}

// FromSeed expands a seed into a randomized run configuration: n ∈ 2..8,
// loss up to 30%, duplication up to 10%, overrun bursts, up to two
// partitions and two pauses, every workload shape. The expansion is the
// sweep's exploration distribution; Run re-derives the concrete fault
// schedule from cfg.Seed, so a Config shrunk or stored in the corpus
// replays identically without this function.
func FromSeed(seed int64) Config {
	rng := rand.New(rand.NewSource(seed))
	cfg := Config{
		Seed:        seed,
		N:           2 + rng.Intn(7),
		TotalOrder:  rng.Intn(4) == 0,
		Workload:    workloadShapes[rng.Intn(len(workloadShapes))],
		Messages:    12 + rng.Intn(61),
		PayloadSize: 16 + rng.Intn(113),
		MeanGapUS:   200 + rng.Intn(1800),
		DelayBaseUS: 100 + rng.Intn(1900),
		JitterUS:    rng.Intn(1500),
		Loss:        float64(rng.Intn(31)) / 100,
		Duplicate:   float64(rng.Intn(11)) / 100,
	}
	if rng.Intn(2) == 0 {
		cfg.BurstProb = float64(1+rng.Intn(5)) / 100
		cfg.BurstLen = 2 + rng.Intn(6)
	}
	cfg.Partitions = rng.Intn(3)
	cfg.Pauses = rng.Intn(3)
	if cfg.N > 2 && rng.Intn(3) == 0 {
		cfg.SlowEntities = 1
	}
	// Drawn last so every earlier field keeps its historical value for a
	// given seed (corpus entries and pinned results stay comparable):
	// a quarter of the seeds run 2..4 groups over the one faulty network.
	if rng.Intn(4) == 0 {
		cfg.Groups = 2 + rng.Intn(3)
	}
	// Also drawn last: a sixth of the remaining single-group seeds run
	// the bounded-memory overload regime — one peer freezes mid-run and
	// every entity gets a small shedding ledger budget. Lossy faults are
	// cleared (see the StalledPeers field comment: a frozen source can
	// never repair a lost pre-freeze message), so the stall is the fault.
	if cfg.Groups == 0 && cfg.N > 2 && rng.Intn(6) == 0 {
		cfg.StalledPeers = 1
		cfg.MemBudgetBytes = int64(32+rng.Intn(97)) << 10 // 32..128 KiB
		cfg.Shed = true
		cfg.Loss, cfg.BurstProb, cfg.BurstLen = 0, 0, 0
		cfg.Partitions, cfg.Pauses = 0, 0
	}
	return cfg
}

// durations derived from the config; µs fields become time.Durations here.
func (c Config) meanGap() time.Duration { return time.Duration(c.MeanGapUS) * time.Microsecond }
func (c Config) delayBase() time.Duration {
	return time.Duration(c.DelayBaseUS) * time.Microsecond
}
func (c Config) jitter() time.Duration { return time.Duration(c.JitterUS) * time.Microsecond }
