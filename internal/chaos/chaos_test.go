package chaos

import (
	"bytes"
	"errors"
	"testing"
)

// TestFromSeedStaysInBounds checks the exploration distribution honors
// its documented envelope for many seeds.
func TestFromSeedStaysInBounds(t *testing.T) {
	for seed := int64(0); seed < 2000; seed++ {
		cfg := FromSeed(seed)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if cfg.N < 2 || cfg.N > 8 {
			t.Fatalf("seed %d: n=%d outside 2..8", seed, cfg.N)
		}
		if cfg.Loss > 0.30 {
			t.Fatalf("seed %d: loss=%v > 0.30", seed, cfg.Loss)
		}
		if cfg.Duplicate > 0.10 {
			t.Fatalf("seed %d: duplicate=%v > 0.10", seed, cfg.Duplicate)
		}
	}
}

// TestSweep runs a bounded seed sweep and requires every predicate to
// hold; it also asserts the sweep genuinely exercised the fault machinery
// (drops, retransmissions, parking, duplicates) rather than passing
// vacuously. CI's chaos-sweep job runs the 500-seed version through
// cmd/cochaos.
func TestSweep(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	var agg struct {
		dropped, retx, parked, dups uint64
		partitions, pauses, toRuns  int
	}
	for seed := int64(1); seed <= int64(seeds); seed++ {
		cfg := FromSeed(seed)
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d (%+v): %v", seed, cfg, err)
		}
		if res.Submitted == 0 || res.Stats.Delivered == 0 {
			t.Fatalf("seed %d: empty run (%d submitted)", seed, res.Submitted)
		}
		agg.dropped += res.Net.Dropped
		agg.retx += res.Stats.Retransmitted
		agg.parked += res.Stats.Parked
		agg.dups += res.Stats.Duplicates
		agg.partitions += cfg.Partitions
		agg.pauses += cfg.Pauses
		if cfg.TotalOrder {
			agg.toRuns++
		}
	}
	if agg.dropped == 0 {
		t.Error("sweep injected no datagram loss")
	}
	if agg.retx == 0 {
		t.Error("sweep triggered no retransmissions")
	}
	if agg.parked == 0 {
		t.Error("sweep produced no out-of-order parking")
	}
	if agg.dups == 0 {
		t.Error("sweep produced no duplicate discards")
	}
	if agg.partitions == 0 || agg.pauses == 0 {
		t.Errorf("sweep scheduled %d partitions, %d pauses; want both > 0",
			agg.partitions, agg.pauses)
	}
	if !testing.Short() && agg.toRuns == 0 {
		t.Error("sweep never exercised total-order mode")
	}
}

// TestStalledPeerRuns exercises the bounded-memory overload regime the
// expansion draws: for several seeds that freeze a peer, the run must
// pass every survivor predicate, and — whenever the frozen peer left
// survivors with undelivered obligations — the suspicion timer must have
// evicted it. Aggregate evidence requirements keep the regime honest:
// the seeds must actually trigger evictions, and replaying the corpus
// reproducers must actually shed.
func TestStalledPeerRuns(t *testing.T) {
	want := 4
	if testing.Short() {
		want = 2
	}
	ran := 0
	var autoEvictions uint64
	for seed := int64(0); seed < 4000 && ran < want; seed++ {
		cfg := FromSeed(seed)
		if cfg.StalledPeers == 0 {
			continue
		}
		ran++
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d (%+v): %v", seed, cfg, err)
		}
		if len(res.Stalled) != cfg.StalledPeers {
			t.Fatalf("seed %d: stalled %v, want %d entities", seed, res.Stalled, cfg.StalledPeers)
		}
		autoEvictions += res.Stats.AutoSuspected
	}
	if ran < want {
		t.Fatalf("only %d stalled seeds found in 0..4000; expansion draw broken?", ran)
	}
	if autoEvictions == 0 {
		t.Error("no stalled run auto-evicted its frozen peer")
	}
}

// TestStalledDeterminism extends the determinism contract to the stall
// machinery: the first expansion-drawn stalled seed must replay to a
// byte-identical trace with identical shed and eviction counts.
func TestStalledDeterminism(t *testing.T) {
	for seed := int64(0); seed < 4000; seed++ {
		cfg := FromSeed(seed)
		if cfg.StalledPeers == 0 {
			continue
		}
		a, errA := Run(cfg)
		b, errB := Run(cfg)
		if errA != nil || errB != nil {
			t.Fatalf("seed %d: run errors %v / %v", seed, errA, errB)
		}
		if a.TraceDigest != b.TraceDigest || !bytes.Equal(a.TraceJSON, b.TraceJSON) {
			t.Fatalf("seed %d: stalled run not deterministic", seed)
		}
		if a.ShedSubmits != b.ShedSubmits || a.Stats.AutoSuspected != b.Stats.AutoSuspected {
			t.Fatalf("seed %d: shed/eviction counts differ across replays", seed)
		}
		return
	}
	t.Fatal("no stalled seed found in 0..4000")
}

// TestStalledCorpusSheds pins the satellite requirement: the corpus holds
// at least two bounded-memory reproducers (configs that fail without
// backpressure and stall suspicion), and replaying them both sheds
// producers and evicts the frozen peer.
func TestStalledCorpusSheds(t *testing.T) {
	entries, err := LoadCorpus("corpus")
	if err != nil {
		t.Fatal(err)
	}
	var stalled []CorpusEntry
	for _, e := range entries {
		if e.Config.StalledPeers > 0 {
			stalled = append(stalled, e)
		}
	}
	if len(stalled) < 2 {
		t.Fatalf("corpus holds %d stalled-peer reproducers, want >= 2", len(stalled))
	}
	for _, e := range stalled {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			res, err := Run(e.Config)
			if err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if res.ShedSubmits == 0 {
				t.Error("reproducer shed no submissions; budget too large to bite")
			}
			if res.Stats.AutoSuspected == 0 {
				t.Error("survivors never evicted the frozen peer")
			}
			if res.Stats.PressureEvicted == 0 {
				t.Error("no eviction fired on the pressure-shortened timer")
			}
		})
	}
}

// TestDeterminism is the contract: same seed, byte-identical trace.
func TestDeterminism(t *testing.T) {
	for _, seed := range []int64{3, 17, 42} {
		cfg := FromSeed(seed)
		a, errA := Run(cfg)
		b, errB := Run(cfg)
		if errA != nil || errB != nil {
			t.Fatalf("seed %d: run errors %v / %v", seed, errA, errB)
		}
		if a.TraceDigest != b.TraceDigest {
			t.Fatalf("seed %d: trace digests differ: %s vs %s", seed, a.TraceDigest, b.TraceDigest)
		}
		if !bytes.Equal(a.TraceJSON, b.TraceJSON) {
			t.Fatalf("seed %d: traces not byte-identical", seed)
		}
		if a.VirtualElapsed != b.VirtualElapsed || a.Net != b.Net {
			t.Fatalf("seed %d: run statistics differ", seed)
		}
	}
}

// TestCorpusReplay replays every checked-in regression config and
// requires all predicates to hold now.
func TestCorpusReplay(t *testing.T) {
	entries, err := LoadCorpus("corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("corpus is empty; expected checked-in entries")
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			res, err := Run(e.Config)
			if err != nil {
				t.Fatalf("corpus entry %s (%s): %v", e.Name, e.Note, err)
			}
			if res.Submitted == 0 {
				t.Fatalf("corpus entry %s ran empty", e.Name)
			}
		})
	}
}

// TestCorpusRoundTrip exercises append + load + append-only refusal.
func TestCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e := CorpusEntry{
		Note:      "synthetic",
		Predicate: PredLivenessDrain,
		Config:    FromSeed(99),
	}
	path, err := AppendCorpus(dir, e)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AppendCorpus(dir, CorpusEntry{Name: "seed-99", Config: FromSeed(99)}); err == nil {
		t.Fatal("overwriting an existing entry should fail")
	}
	got, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Name != "seed-99" || got[0].Config != e.Config {
		t.Fatalf("round trip mismatch: %+v (from %s)", got, path)
	}
	if es, err := LoadCorpus(dir + "/missing"); err != nil || es != nil {
		t.Fatalf("missing dir should be empty corpus, got %v, %v", es, err)
	}
}

// TestShrinkWithMinimizes drives the shrinker with a synthetic failure
// predicate and checks it reaches the minimal failing config.
func TestShrinkWithMinimizes(t *testing.T) {
	cfg := Config{
		Seed: 7, N: 8, Workload: WorkloadContinuous, Messages: 64,
		PayloadSize: 32, MeanGapUS: 500, DelayBaseUS: 500, JitterUS: 900,
		Loss: 0.3, Duplicate: 0.1, BurstProb: 0.05, BurstLen: 4,
		Partitions: 2, Pauses: 2, SlowEntities: 1,
	}
	// Fails whenever a partition exists and at least 4 messages flow:
	// everything else should shrink away.
	fails := func(c Config) bool { return c.Partitions >= 1 && c.Messages >= 4 }
	min, runs := ShrinkWith(cfg, fails, 200)
	if !fails(min) {
		t.Fatal("shrinker returned a passing config")
	}
	if min.Messages != 4 || min.Partitions != 1 {
		t.Errorf("not minimal: messages=%d partitions=%d", min.Messages, min.Partitions)
	}
	if min.Pauses != 0 || min.Loss != 0 || min.Duplicate != 0 || min.BurstProb != 0 ||
		min.JitterUS != 0 || min.SlowEntities != 0 || min.N != 2 {
		t.Errorf("irrelevant knobs survived shrinking: %+v", min)
	}
	if runs > 200 {
		t.Errorf("shrinker overspent: %d runs", runs)
	}
}

// TestShrinkConfirmsFailureFirst checks Shrink refuses configs that pass.
func TestShrinkConfirmsFailureFirst(t *testing.T) {
	cfg := FromSeed(5)
	if _, ok, _ := Shrink(cfg, 3); ok {
		t.Fatal("Shrink claimed a passing config fails")
	}
}

// TestViolationError pins the error wording used by cochaos and CI logs.
func TestViolationError(t *testing.T) {
	v := &Violation{Predicate: PredCausalOrder, Detail: "entity 1 delivered s0#2 before s0#1"}
	var err error = v
	var got *Violation
	if !errors.As(err, &got) || got.Predicate != PredCausalOrder {
		t.Fatal("Violation does not round-trip through errors.As")
	}
	if want := "chaos: causality-preserved violated: entity 1 delivered s0#2 before s0#1"; v.Error() != want {
		t.Fatalf("Error() = %q, want %q", v.Error(), want)
	}
}

// TestBadConfigRejected checks Run surfaces config errors as ErrBadConfig,
// not Violations.
func TestBadConfigRejected(t *testing.T) {
	_, err := Run(Config{Seed: 1, N: 1, Workload: WorkloadSingle, Messages: 1})
	if !errors.Is(err, ErrBadConfig) {
		t.Fatalf("got %v, want ErrBadConfig", err)
	}
	var v *Violation
	if errors.As(err, &v) {
		t.Fatal("config error misreported as a Violation")
	}
}
