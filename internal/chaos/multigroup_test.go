package chaos

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// pinnedMultiGroup is the fixed scenario whose per-group digests are
// pinned below: three groups sharing one lossy, partitioning, pausing
// network. Any change to the multi-group harness, the v3 frame codec, or
// the protocol core that alters what any group delivers shows up here.
var pinnedMultiGroup = Config{
	Seed: 11, N: 3, Groups: 3,
	Workload: WorkloadContinuous, Messages: 18, PayloadSize: 32,
	MeanGapUS: 400, DelayBaseUS: 300, JitterUS: 200,
	Loss: 0.15, Duplicate: 0.05,
	Partitions: 1, Pauses: 1,
}

// pinnedMultiGroupDigests are pinnedMultiGroup's expected per-group trace
// digests (regenerate with: go test -run TestMultiGroupPinnedDigests -v
// after an intentional protocol change).
var pinnedMultiGroupDigests = []string{
	"9a9f54261c0b6c4e2c3755b9d8fd56ab62de33da8e6f11e7c636fd9f7babc57e",
	"24f7cdb6d7cd70eb9647696e5d87794bb5c63d835802b6de3269d4672b2e3591",
	"694dd671540feb0c47da637142144c4b653af5e4d88e52e48ef8517683e2cc43",
}

// TestMultiGroupConverges runs 2..4 groups over one faulty network and
// requires every per-group predicate to hold, every group to carry
// traffic, and the faults to have genuinely bitten.
func TestMultiGroupConverges(t *testing.T) {
	for groups := 2; groups <= 4; groups++ {
		cfg := pinnedMultiGroup
		cfg.Groups = groups
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("groups=%d: %v", groups, err)
		}
		if res.Submitted != cfg.Messages {
			t.Fatalf("groups=%d: submitted %d, want %d", groups, res.Submitted, cfg.Messages)
		}
		if len(res.GroupDigests) != groups {
			t.Fatalf("groups=%d: %d group digests", groups, len(res.GroupDigests))
		}
		seen := map[string]int{}
		for g, d := range res.GroupDigests {
			if d == "" {
				t.Fatalf("groups=%d: empty digest for group %d", groups, g)
			}
			seen[d]++
		}
		if len(seen) != groups {
			t.Fatalf("groups=%d: digests collide (%v) — groups not isolated", groups, res.GroupDigests)
		}
		// Deliveries count every (message, entity) pair exactly once
		// across all groups: group isolation means no message reaches a
		// group it was not submitted to.
		if want := uint64(cfg.Messages * cfg.N); res.Stats.Delivered != want {
			t.Fatalf("groups=%d: delivered %d engine-deliveries, want %d", groups, res.Stats.Delivered, want)
		}
		if res.Net.Dropped == 0 {
			t.Errorf("groups=%d: no datagram loss injected", groups)
		}
		// Every engine contributes a flight dump, attributed "i/gG".
		if want := groups * cfg.N; len(res.Flight) != want {
			t.Fatalf("groups=%d: %d flight dumps, want %d", groups, len(res.Flight), want)
		}
		names := map[string]bool{}
		for _, nf := range res.Flight {
			if nf.Recorded == 0 || len(nf.Events) == 0 {
				t.Fatalf("groups=%d: node %s recorded no flight events", groups, nf.Node)
			}
			names[nf.Node] = true
		}
		for g := 0; g < groups; g++ {
			for i := 0; i < cfg.N; i++ {
				if node := fmt.Sprintf("%d/g%d", i, g); !names[node] {
					t.Fatalf("groups=%d: missing flight dump for %s", groups, node)
				}
			}
		}
		// A clean converged run leaves nothing stuck.
		if len(res.Stalls) != 0 {
			t.Fatalf("groups=%d: unexpected stall verdicts: %+v", groups, res.Stalls)
		}
	}
}

// TestMultiGroupDeterminism is the contract extended to groups: same
// config, identical per-group digests, run over run.
func TestMultiGroupDeterminism(t *testing.T) {
	for _, wire := range []int{0, 2} {
		cfg := pinnedMultiGroup
		cfg.WireVersion = wire
		a, errA := Run(cfg)
		b, errB := Run(cfg)
		if errA != nil || errB != nil {
			t.Fatalf("wire=%d: run errors %v / %v", wire, errA, errB)
		}
		if a.TraceDigest != b.TraceDigest {
			t.Fatalf("wire=%d: combined digests differ: %s vs %s", wire, a.TraceDigest, b.TraceDigest)
		}
		for g := range a.GroupDigests {
			if a.GroupDigests[g] != b.GroupDigests[g] {
				t.Fatalf("wire=%d: group %d digests differ", wire, g)
			}
		}
		if a.VirtualElapsed != b.VirtualElapsed || a.Net != b.Net {
			t.Fatalf("wire=%d: run statistics differ", wire)
		}
	}
}

// TestMultiGroupPinnedDigests replays the fixed scenario and compares
// against the checked-in digests, so a behavior change anywhere in the
// multi-group path is a visible diff, not a silent drift.
func TestMultiGroupPinnedDigests(t *testing.T) {
	res, err := Run(pinnedMultiGroup)
	if err != nil {
		t.Fatal(err)
	}
	for g, want := range pinnedMultiGroupDigests {
		if got := res.GroupDigests[g]; got != want {
			t.Errorf("group %d digest drifted:\n got  %s\n want %s", g, got, want)
		}
	}
	if t.Failed() {
		t.Logf("full digest list for re-pinning: %q", res.GroupDigests)
	}
}

// TestMultiGroupV2Wire runs the scenario with the delta-stamp entry codec
// in the loop: per-(channel, group) stamp caches must keep each group's
// sequence space intact under loss and duplication.
func TestMultiGroupV2Wire(t *testing.T) {
	cfg := pinnedMultiGroup
	cfg.WireVersion = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(cfg.Messages * cfg.N); res.Stats.Delivered != want {
		t.Fatalf("delivered %d engine-deliveries, want %d", res.Stats.Delivered, want)
	}
}

// TestMultiGroupTotalOrder checks the TO release stage per group.
func TestMultiGroupTotalOrder(t *testing.T) {
	cfg := pinnedMultiGroup
	cfg.TotalOrder = true
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

// TestFromSeedDrawsGroups checks the exploration distribution actually
// emits multi-group configs (about a quarter of seeds) and stays in the
// validated 0..4 envelope.
func TestFromSeedDrawsGroups(t *testing.T) {
	multi := 0
	for seed := int64(0); seed < 400; seed++ {
		cfg := FromSeed(seed)
		if cfg.Groups < 0 || cfg.Groups == 1 || cfg.Groups > 4 {
			t.Fatalf("seed %d: groups=%d outside {0, 2..4}", seed, cfg.Groups)
		}
		if cfg.Groups >= 2 {
			multi++
		}
	}
	if multi < 50 || multi > 150 {
		t.Errorf("%d/400 seeds drew multi-group; want roughly a quarter", multi)
	}
}

// TestShrinkReducesGroups checks the fewer-groups step: a failure that
// needs at least two groups keeps exactly two, and one that does not
// care shrinks back to the classic single-group run.
func TestShrinkReducesGroups(t *testing.T) {
	cfg := pinnedMultiGroup
	cfg.Groups = 4
	needsGroups := func(c Config) bool { return c.Groups >= 2 && c.Messages >= 2 }
	min, _ := ShrinkWith(cfg, needsGroups, 200)
	if min.Groups != 2 {
		t.Errorf("groups-dependent failure shrank to groups=%d, want 2", min.Groups)
	}
	anyFailure := func(c Config) bool { return c.Messages >= 2 }
	min, _ = ShrinkWith(cfg, anyFailure, 200)
	if min.Groups != 0 {
		t.Errorf("groups-independent failure kept groups=%d, want 0", min.Groups)
	}
}

// TestMultiGroupBadConfig pins the Groups validation bound.
func TestMultiGroupBadConfig(t *testing.T) {
	cfg := pinnedMultiGroup
	cfg.Groups = 5
	_, err := Run(cfg)
	if !errors.Is(err, ErrBadConfig) || !strings.Contains(err.Error(), "groups") {
		t.Fatalf("groups=5 not rejected: %v", err)
	}
}
