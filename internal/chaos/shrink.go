package chaos

// Shrinking reduces a failing Config to a minimal one that still fails,
// so corpus entries and bug reports carry the smallest reproducer: fewer
// messages, fewer fault types, fewer entities. The reduction is a greedy
// fixpoint over a fixed transformation list — deterministic, bounded,
// and independent of wall time.

// shrinkSteps are the candidate reductions, tried in order at every
// round. Each must strictly simplify the config or return ok=false.
var shrinkSteps = []struct {
	name  string
	apply func(Config) (Config, bool)
}{
	{"halve-messages", func(c Config) (Config, bool) {
		if c.Messages <= 2 {
			return c, false
		}
		c.Messages /= 2
		return c, true
	}},
	{"drop-duplication", func(c Config) (Config, bool) {
		if c.Duplicate == 0 {
			return c, false
		}
		c.Duplicate = 0
		return c, true
	}},
	{"drop-bursts", func(c Config) (Config, bool) {
		if c.BurstProb == 0 {
			return c, false
		}
		c.BurstProb, c.BurstLen = 0, 0
		return c, true
	}},
	{"fewer-partitions", func(c Config) (Config, bool) {
		if c.Partitions == 0 {
			return c, false
		}
		c.Partitions--
		return c, true
	}},
	{"fewer-pauses", func(c Config) (Config, bool) {
		if c.Pauses == 0 {
			return c, false
		}
		c.Pauses--
		return c, true
	}},
	{"drop-slow-entities", func(c Config) (Config, bool) {
		if c.SlowEntities == 0 {
			return c, false
		}
		c.SlowEntities = 0
		return c, true
	}},
	{"drop-jitter", func(c Config) (Config, bool) {
		if c.JitterUS == 0 {
			return c, false
		}
		c.JitterUS = 0
		return c, true
	}},
	{"drop-loss", func(c Config) (Config, bool) {
		if c.Loss == 0 {
			return c, false
		}
		c.Loss = 0
		return c, true
	}},
	{"fewer-groups", func(c Config) (Config, bool) {
		switch {
		case c.Groups < 2:
			return c, false
		case c.Groups == 2:
			c.Groups = 0 // back to the classic single-group run
		default:
			c.Groups--
		}
		return c, true
	}},
	{"drop-stalled-peers", func(c Config) (Config, bool) {
		if c.StalledPeers == 0 {
			return c, false
		}
		c.StalledPeers = 0
		return c, true
	}},
	{"drop-mem-budget", func(c Config) (Config, bool) {
		if c.MemBudgetBytes == 0 {
			return c, false
		}
		c.MemBudgetBytes, c.Shed = 0, false
		return c, true
	}},
	{"shrink-cluster", func(c Config) (Config, bool) {
		// Keep at least two survivors alongside any stalled peers, so
		// every candidate stays a valid config (an invalid one would
		// "fail" under Run and trap the shrinker).
		if c.N <= 2 || c.N-1-c.StalledPeers < 2 {
			return c, false
		}
		c.N--
		return c, true
	}},
}

// ShrinkWith minimizes cfg against an arbitrary failure predicate,
// spending at most maxRuns evaluations. It assumes fails(cfg) is true
// (callers verify first) and returns the smallest failing config found
// plus the number of evaluations spent. Deterministic for a
// deterministic predicate.
func ShrinkWith(cfg Config, fails func(Config) bool, maxRuns int) (Config, int) {
	runs := 0
	for {
		reduced := false
		for _, step := range shrinkSteps {
			cand, ok := step.apply(cfg)
			if !ok {
				continue
			}
			if runs >= maxRuns {
				return cfg, runs
			}
			runs++
			if fails(cand) {
				cfg = cand
				reduced = true
			}
		}
		if !reduced {
			return cfg, runs
		}
	}
}

// Shrink minimizes a config that fails under Run. It first confirms the
// failure (returning ok=false if cfg actually passes), then reduces to a
// fixpoint within maxRuns total runs.
func Shrink(cfg Config, maxRuns int) (min Config, ok bool, runs int) {
	fails := func(c Config) bool {
		_, err := Run(c)
		return err != nil
	}
	if maxRuns < 1 || !fails(cfg) {
		return cfg, false, 1
	}
	min, runs = ShrinkWith(cfg, fails, maxRuns-1)
	return min, true, runs + 1
}
