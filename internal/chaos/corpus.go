package chaos

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CorpusEntry is one checked-in regression config: a run that once
// violated a predicate (shrunk to minimal form) or a pinned adversarial
// configuration worth replaying forever. The chaos test suite replays
// every entry under plain go test and asserts all predicates now hold.
type CorpusEntry struct {
	// Name is the file stem, unique within the corpus.
	Name string `json:"name"`
	// Note says why the entry exists (what it once broke, or what regime
	// it pins).
	Note string `json:"note,omitempty"`
	// Predicate is the invariant the config originally violated; empty
	// for pinned-adversarial entries that never failed.
	Predicate string `json:"predicate,omitempty"`
	// Config replays the run.
	Config Config `json:"config"`
}

// LoadCorpus reads every *.json entry in dir, sorted by name for
// deterministic replay order. A missing directory is an empty corpus.
func LoadCorpus(dir string) ([]CorpusEntry, error) {
	des, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("chaos corpus: %w", err)
	}
	var out []CorpusEntry
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, de.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("chaos corpus: %w", err)
		}
		var e CorpusEntry
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("chaos corpus %s: %w", de.Name(), err)
		}
		if e.Name == "" {
			e.Name = strings.TrimSuffix(de.Name(), ".json")
		}
		if err := e.Config.Validate(); err != nil {
			return nil, fmt.Errorf("chaos corpus %s: %w", de.Name(), err)
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// AppendCorpus writes entry as dir/<name>.json (creating dir), refusing
// to overwrite an existing entry so corpus growth is append-only.
func AppendCorpus(dir string, e CorpusEntry) (string, error) {
	if e.Name == "" {
		e.Name = fmt.Sprintf("seed-%d", e.Config.Seed)
	}
	if err := e.Config.Validate(); err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("chaos corpus: %w", err)
	}
	path := filepath.Join(dir, e.Name+".json")
	if _, err := os.Stat(path); err == nil {
		return "", fmt.Errorf("chaos corpus: entry %s already exists", e.Name)
	}
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return "", fmt.Errorf("chaos corpus: %w", err)
	}
	b = append(b, '\n')
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return "", fmt.Errorf("chaos corpus: %w", err)
	}
	return path, nil
}
