package chaos

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"cobcast/internal/obsv"
	"cobcast/internal/obsv/promtext"
)

// vitalsSeed is a chaos seed whose run exercises every recovery path at
// once: F1 and F2 loss detections, selective retransmissions served,
// and CPI insertions that displace queued PDUs. (Most seeds do; this
// one is small — n=3 — and fast.)
const vitalsSeed = 4

// TestEndpointShowsRecoveryVitals is the acceptance check for the obsv
// layer: replay a lossy chaos seed with the HTTP endpoint up, then read
// the protocol's recovery story back out of /metrics and /statez.
func TestEndpointShowsRecoveryVitals(t *testing.T) {
	reg := obsv.NewRegistry()
	srv, err := obsv.Serve(reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	res, runErr := RunWithRegistry(FromSeed(vitalsSeed), reg)
	if runErr != nil {
		t.Fatalf("seed %d: %v", vitalsSeed, runErr)
	}
	if s := res.Stats; s.F1Detections == 0 || s.F2Detections == 0 ||
		s.Retransmitted == 0 || s.CPIDisplacement == 0 {
		t.Fatalf("seed %d no longer exercises all vitals: %+v — pick another seed", vitalsSeed, s)
	}

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	fams, err := promtext.Parse(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("/metrics not valid exposition: %v", err)
	}

	checks := []struct {
		family string
		labels map[string]string
		want   uint64
	}{
		{"cobcast_loss_detections_total", map[string]string{"cond": "f1"}, res.Stats.F1Detections},
		{"cobcast_loss_detections_total", map[string]string{"cond": "f2"}, res.Stats.F2Detections},
		{"cobcast_retransmissions_served_total", nil, res.Stats.Retransmitted},
		{"cobcast_cpi_displacement_positions_total", nil, res.Stats.CPIDisplacement},
		{"cobcast_delivered_total", nil, res.Stats.Delivered},
	}
	for _, c := range checks {
		got, ok := fams.Value(c.family, c.labels)
		if !ok {
			t.Errorf("%s%v: no samples on /metrics", c.family, c.labels)
			continue
		}
		if uint64(got) != c.want {
			t.Errorf("%s%v = %v on /metrics, run counted %d", c.family, c.labels, got, c.want)
		}
		if got == 0 {
			t.Errorf("%s%v is zero — endpoint does not show the recovery", c.family, c.labels)
		}
	}

	// Latency histograms observed something.
	for _, hist := range []string{"cobcast_deliver_latency_us", "cobcast_ack_wait_us"} {
		fam, ok := fams[hist]
		if !ok {
			t.Errorf("histogram %s missing from /metrics", hist)
			continue
		}
		var count float64
		for _, s := range fam.Samples {
			if s.Name == hist+"_count" {
				count += s.Value
			}
		}
		if count == 0 {
			t.Errorf("histogram %s observed nothing", hist)
		}
	}

	// /statez: the run quiesced, so every DATA depth is back to zero.
	resp, err = http.Get("http://" + srv.Addr() + "/statez")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var statez obsv.Statez
	if err := json.Unmarshal(body, &statez); err != nil {
		t.Fatalf("/statez not valid JSON: %v", err)
	}
	if len(statez.Nodes) != res.Config.N {
		t.Fatalf("/statez has %d nodes, want %d", len(statez.Nodes), res.Config.N)
	}
	for _, s := range statez.Nodes {
		if s.DataResident != 0 || s.ParkedData != 0 || s.SendLogData != 0 ||
			s.ReleasePending != 0 || s.PendingSubmits != 0 {
			t.Errorf("node %s DATA depths not drained at quiesce: %+v", s.Node, s)
		}
		if !s.Quiescent {
			t.Errorf("node %s not quiescent at quiesce", s.Node)
		}
	}
}

// TestRegistryPreservesDeterminism asserts the instrumented run is the
// same run: identical trace digest and counters with and without a
// registry attached.
func TestRegistryPreservesDeterminism(t *testing.T) {
	cfg := FromSeed(vitalsSeed)
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	instr, err := RunWithRegistry(cfg, obsv.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if plain.TraceDigest != instr.TraceDigest {
		t.Fatalf("trace digest diverges: %s vs %s", plain.TraceDigest, instr.TraceDigest)
	}
	if plain.Stats != instr.Stats {
		t.Fatalf("stats diverge:\nplain %+v\ninstr %+v", plain.Stats, instr.Stats)
	}
}

// TestResultPerEntitySumsToStats pins the new per-entity breakdown to
// the aggregate.
func TestResultPerEntitySumsToStats(t *testing.T) {
	res, err := Run(FromSeed(vitalsSeed))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerEntity) != res.Config.N {
		t.Fatalf("PerEntity has %d entries, want %d", len(res.PerEntity), res.Config.N)
	}
	var delivered, f1, retx uint64
	for _, s := range res.PerEntity {
		delivered += s.Delivered
		f1 += s.F1Detections
		retx += s.Retransmitted
	}
	if delivered != res.Stats.Delivered || f1 != res.Stats.F1Detections || retx != res.Stats.Retransmitted {
		t.Fatalf("per-entity sums (deliv %d, f1 %d, retx %d) != aggregate %+v",
			delivered, f1, retx, res.Stats)
	}
}
