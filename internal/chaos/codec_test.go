package chaos

import (
	"errors"
	"testing"
)

// TestWireVersionDeterminism extends the determinism contract to the
// codec byte path: same Config ⇒ same trace digest for each wire
// version, and the v1 round trip — which is lossless per PDU — must be
// trace-identical to the historical pointer path, pinning that the
// codec layer changes only the representation in flight.
func TestWireVersionDeterminism(t *testing.T) {
	for _, seed := range []int64{3, 17, 42} {
		base := FromSeed(seed)
		digests := map[int]string{}
		for _, v := range []int{0, 1, 2} {
			cfg := base
			cfg.WireVersion = v
			a, errA := Run(cfg)
			b, errB := Run(cfg)
			if errA != nil || errB != nil {
				t.Fatalf("seed %d v%d: run errors %v / %v", seed, v, errA, errB)
			}
			if a.TraceDigest != b.TraceDigest {
				t.Fatalf("seed %d v%d: digests differ: %s vs %s", seed, v, a.TraceDigest, b.TraceDigest)
			}
			if a.Net != b.Net {
				t.Fatalf("seed %d v%d: net stats differ: %+v vs %+v", seed, v, a.Net, b.Net)
			}
			digests[v] = a.TraceDigest
		}
		if digests[0] != digests[1] {
			t.Fatalf("seed %d: v1 codec changed the trace: %s vs %s", seed, digests[0], digests[1])
		}
	}
}

// TestCodecV2ExercisesDeltaResync sweeps seeds under wire codec v2 and
// requires both that every predicate holds and that the sweep actually
// hit the delta-desync path: loss or duplication must strand at least
// one delta stamp without its reference (CodecDropped > 0), proving the
// protocol recovers from codec-level loss, not just datagram loss.
func TestCodecV2ExercisesDeltaResync(t *testing.T) {
	seeds := 30
	if testing.Short() {
		seeds = 8
	}
	var codecDropped, dropped uint64
	for seed := int64(1); seed <= int64(seeds); seed++ {
		cfg := FromSeed(seed)
		cfg.WireVersion = 2
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d (%+v): %v", seed, cfg, err)
		}
		if res.Submitted == 0 || res.Stats.Delivered == 0 {
			t.Fatalf("seed %d: empty run", seed)
		}
		codecDropped += res.Net.CodecDropped
		dropped += res.Net.Dropped
	}
	if dropped == 0 {
		t.Error("v2 sweep injected no datagram loss")
	}
	if codecDropped == 0 {
		t.Error("v2 sweep never desynchronized a delta stamp; resync path untested")
	}
}

// TestCorpusReplayUnderV2 replays every checked-in regression config
// through the v2 byte path: the corpus's loss, duplication, overrun and
// partition regimes must not break any predicate when delta stamps (and
// their desync-as-loss semantics) are in the loop.
func TestCorpusReplayUnderV2(t *testing.T) {
	entries, err := LoadCorpus("corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("corpus is empty; expected checked-in entries")
	}
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			cfg := e.Config
			cfg.WireVersion = 2
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("corpus entry %s under v2 (%s): %v", e.Name, e.Note, err)
			}
			if res.Submitted == 0 {
				t.Fatalf("corpus entry %s ran empty", e.Name)
			}
		})
	}
}

// TestBadWireVersionRejected pins config validation for the codec knob.
func TestBadWireVersionRejected(t *testing.T) {
	cfg := FromSeed(1)
	cfg.WireVersion = 3
	if _, err := Run(cfg); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("wire_version=3: got %v, want ErrBadConfig", err)
	}
}
