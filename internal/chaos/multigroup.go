package chaos

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"cobcast/internal/core"
	"cobcast/internal/flight"
	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
	"cobcast/internal/sim"
	"cobcast/internal/trace"
	"cobcast/internal/workload"
)

// runMultiGroup is the Groups >= 2 chaos run: cfg.Groups independent
// ordered groups — each its own set of N engines with its own sequence
// space and its own trace — multiplexed over ONE simulated network
// carrying v3 group-addressed frames. The per-link loss rates, delays,
// bursts, partitions and pauses of the schedule hit every group's
// datagrams alike (the groups share the links), while ordering state
// never crosses groups: the codec keeps per-(channel, group) stamp
// caches exactly as the node runtime's per-group decode state does.
//
// Every safety and liveness predicate of the single-group run is
// checked per group, and each group's trace digest lands in
// Result.GroupDigests — the determinism witness multi-group tests pin.
func runMultiGroup(cfg Config, reg *obsv.Registry) (*Result, error) {
	groups := cfg.Groups
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := buildWorkload(cfg, rng)

	// Submission times as in the single-group run, plus a group draw per
	// message. The first min(groups, len) messages cover every group so
	// no per-group predicate is vacuous.
	type submission struct {
		at    time.Duration
		group int
		m     workload.Message
	}
	var subs []submission
	var at time.Duration
	for {
		m, ok := gen.Next()
		if !ok {
			break
		}
		at += m.Gap
		if cfg.MeanGapUS > 0 {
			at += time.Duration(rng.Intn(cfg.MeanGapUS+1)) * time.Microsecond
		}
		subs = append(subs, submission{at: at, m: m})
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("%w: workload produced no messages", ErrBadConfig)
	}
	perGroup := make([]int, groups)
	for i := range subs {
		g := rng.Intn(groups)
		if i < groups {
			g = i
		}
		subs[i].group = g
		perGroup[g]++
	}
	submitEnd := subs[len(subs)-1].at
	faultEnd := submitEnd + 10*time.Millisecond
	sched := deriveSchedule(cfg, rng, faultEnd)

	s := sim.New()
	burstLeft := make([]int, cfg.N)
	dropDatagram := func(from, to pdu.EntityID, _ int) bool {
		if s.Now() >= faultEnd {
			return false
		}
		if burstLeft[to] > 0 {
			burstLeft[to]--
			return true
		}
		if r := sched.lossRate[from][to]; r > 0 && rng.Float64() < r {
			return true
		}
		if cfg.BurstProb > 0 && rng.Float64() < cfg.BurstProb {
			burstLeft[to] = cfg.BurstLen - 1
			return true
		}
		return false
	}
	jitterUS := cfg.JitterUS
	delay := func(from, to pdu.EntityID, netRNG *rand.Rand) time.Duration {
		d := sched.baseDelay[from][to]
		if jitterUS > 0 {
			d += time.Duration(netRNG.Intn(jitterUS+1)) * time.Microsecond
		}
		return d
	}

	// The group codec: real v3 frames over the simulated links. One
	// stamp encoder per (sender, group) and one stamp decoder per
	// (receiver, sender, group) — each group is its own sequence space,
	// so a delta reference must never resolve across groups. The sim is
	// single-threaded, so the group of the datagram in flight rides two
	// side channels: sendGroup (set by dispatch just before Broadcast,
	// read by encode) and arriveGroup (set by decode, read by the
	// arrival handler in the same simulator event).
	ecodec := uint8(pdu.WireVersion)
	if cfg.WireVersion == 2 {
		ecodec = pdu.WireVersion2
	}
	encs := make([]pdu.FrameEncoder, cfg.N)
	stamps := make([][]*pdu.StampEncoder, cfg.N)
	for i := range stamps {
		stamps[i] = make([]*pdu.StampEncoder, groups)
		if ecodec == pdu.WireVersion2 {
			for g := range stamps[i] {
				stamps[i][g] = pdu.NewStampEncoder(0)
			}
		}
	}
	decs := make([][]pdu.FrameDecoder, cfg.N) // decs[to][from]
	sdecs := make([][][]pdu.StampDecoder, cfg.N)
	for to := range decs {
		decs[to] = make([]pdu.FrameDecoder, cfg.N)
		sdecs[to] = make([][]pdu.StampDecoder, cfg.N)
		for from := range sdecs[to] {
			sdecs[to][from] = make([]pdu.StampDecoder, groups)
		}
	}
	sendGroup := make([]int, cfg.N)
	arriveGroup := make([]int, cfg.N)
	encode := func(from pdu.EntityID, batch []*pdu.PDU) []byte {
		g := sendGroup[from]
		e := &encs[from]
		e.BeginGroup(nil, uint32(g), ecodec, stamps[from][g])
		for _, p := range batch {
			if err := e.Append(p); err != nil {
				panic(fmt.Sprintf("chaos: encode group %d from %d: %v", g, from, err))
			}
		}
		return e.Bytes()
	}
	decode := func(from, to pdu.EntityID, frame []byte) []*pdu.PDU {
		d := &decs[to][from]
		if err := d.Reset(frame); err != nil {
			panic(fmt.Sprintf("chaos: frame %d->%d: %v", from, to, err))
		}
		g := int(d.Group())
		d.SetStampDecoder(&sdecs[to][from][g])
		arriveGroup[to] = g
		var out []*pdu.PDU
		var p pdu.PDU
		for {
			ok, err := d.Next(&p)
			if err != nil {
				if errors.Is(err, pdu.ErrDeltaDesync) {
					// A delta whose reference this (channel, group) lost:
					// the datagram remainder drops as loss, repaired by
					// retransmission — same as the node link layer.
					return out
				}
				panic(fmt.Sprintf("chaos: decode %d->%d: %v", from, to, err))
			}
			if !ok {
				return out
			}
			// Delta aliases the stamp decoder's scratch; the clone owns
			// a copy because the PDU outlives the next decode.
			out = append(out, p.Clone().OwnDelta())
		}
	}

	net := sim.NewNet(s, cfg.N,
		sim.NetSeed(cfg.Seed),
		sim.NetDelay(delay),
		sim.NetDuplicateRate(cfg.Duplicate),
		sim.NetDatagramFilter(dropDatagram),
		sim.NetCodec(encode, decode),
	)

	// Engines and per-group recorders. The protocol configuration is
	// identical for every group, as in the node runtime: isolation comes
	// from frame routing, never from the entity configuration. stepMu
	// serializes virtual-time stepping against registry snapshot scrapes
	// (instrumentation never affects the run's determinism).
	var stepMu sync.Mutex
	ents := make([][]*core.Entity, groups)  // ents[g][i]
	rings := make([][]*flight.Ring, groups) // rings[g][i]
	recs := make([]*trace.Recorder, groups)
	delivered := make([][]int, groups) // delivered[g][i] = delivery count
	for g := 0; g < groups; g++ {
		recs[g] = &trace.Recorder{}
		ents[g] = make([]*core.Entity, cfg.N)
		rings[g] = make([]*flight.Ring, cfg.N)
		delivered[g] = make([]int, cfg.N)
		for i := 0; i < cfg.N; i++ {
			rings[g][i] = flight.NewRing(flight.DefaultEvents)
			ecfg := core.Config{
				ID:         pdu.EntityID(i),
				N:          cfg.N,
				TotalOrder: cfg.TotalOrder,
				DenseFold:  cfg.DenseFold,
				Tracer:     recs[g],
				Flight:     rings[g][i],
			}
			if reg != nil {
				ecfg.Metrics = obsv.NewEntityMetrics()
			}
			ent, err := core.New(ecfg)
			if err != nil {
				return nil, fmt.Errorf("chaos: group %d entity %d: %w", g, i, err)
			}
			ents[g][i] = ent
			if reg != nil {
				gid := uint32(g)
				reg.RegisterNode(strconv.Itoa(i)+"/g"+strconv.Itoa(g),
					ecfg.Metrics, nil, func() (obsv.StateSnapshot, bool) {
						stepMu.Lock()
						defer stepMu.Unlock()
						snap := ent.Snapshot()
						snap.Group = gid
						return snap, true
					})
			}
		}
	}

	dispatch := func(g int, id pdu.EntityID, out core.Output) {
		if len(out.PDUs) > 0 {
			sendGroup[id] = g
			net.Broadcast(id, out.PDUs...)
		}
		delivered[g][id] += len(out.Deliveries)
	}
	for i := 0; i < cfg.N; i++ {
		id := pdu.EntityID(i)
		net.Attach(id, func(from pdu.EntityID, p *pdu.PDU) {
			g := arriveGroup[id]
			out, err := ents[g][id].Receive(p, s.Now())
			if err != nil {
				panic(fmt.Sprintf("chaos: group %d entity %d receive: %v", g, id, err))
			}
			dispatch(g, id, out)
		})
	}
	tickEvery := core.DefaultDeferredAckInterval
	var scheduleTick func(g int, id pdu.EntityID)
	scheduleTick = func(g int, id pdu.EntityID) {
		s.After(tickEvery, func() {
			dispatch(g, id, ents[g][id].Tick(s.Now()))
			scheduleTick(g, id)
		})
	}
	for g := 0; g < groups; g++ {
		for i := 0; i < cfg.N; i++ {
			scheduleTick(g, pdu.EntityID(i))
		}
	}

	for _, sub := range subs {
		sub := sub
		s.At(sub.at, func() {
			out := ents[sub.group][sub.m.Sender].Submit(sub.m.Payload, s.Now())
			dispatch(sub.group, sub.m.Sender, out)
		})
	}
	for _, w := range sched.windows {
		w := w
		if w.partition != nil {
			s.At(w.start, func() { applyPartition(net, w.partition, true) })
			s.At(w.end, func() { applyPartition(net, w.partition, false) })
		} else {
			s.At(w.start, func() { net.Isolate(w.paused) })
			s.At(w.end, func() { net.Rejoin(w.paused) })
		}
	}

	res := &Result{Config: cfg, Submitted: len(subs), FaultEnd: faultEnd}
	allDone := func() bool {
		for g := 0; g < groups; g++ {
			for i := 0; i < cfg.N; i++ {
				if delivered[g][i] < perGroup[g] || !ents[g][i].Quiescent() {
					return false
				}
			}
		}
		return true
	}
	finish := func() error {
		res.VirtualElapsed = s.Now()
		res.PerEntity = make([]core.Stats, cfg.N)
		for g := 0; g < groups; g++ {
			for i, e := range ents[g] {
				st := e.Stats()
				addStats(&res.Stats, st)
				addStats(&res.PerEntity[i], st)
			}
		}
		res.Net = net.Stats()
		// The trace artifact concatenates the per-group traces (a debug
		// aid; checkers analyze each group separately). GroupDigests
		// holds each group's own digest; TraceDigest binds them all, so
		// it stays the one-line determinism witness.
		res.GroupDigests = make([]string, groups)
		sum := sha256.New()
		var buf bytes.Buffer
		for g := 0; g < groups; g++ {
			events := recs[g].Events()
			gd, err := trace.DigestEvents(events)
			if err != nil {
				return fmt.Errorf("chaos: digest group %d trace: %w", g, err)
			}
			res.GroupDigests[g] = gd
			sum.Write([]byte(gd))
			gs := trace.Summarize(events)
			res.Summary.Events += gs.Events
			res.Summary.DataSends += gs.DataSends
			res.Summary.SyncSends += gs.SyncSends
			res.Summary.Accepts += gs.Accepts
			res.Summary.Deliveries += gs.Deliveries
			res.Summary.Drops += gs.Drops
			res.Summary.Retransmits += gs.Retransmits
			_ = recs[g].WriteJSON(&buf)
		}
		res.TraceJSON = buf.Bytes()
		res.TraceDigest = hex.EncodeToString(sum.Sum(nil))
		// Flight dumps and stall verdicts for every engine, attributed
		// "i/gG" like the registry node names, so a failing seed's
		// artifact pinpoints the stuck (entity, group) pair.
		for g := 0; g < groups; g++ {
			for i, fr := range rings[g] {
				node := strconv.Itoa(i) + "/g" + strconv.Itoa(g)
				res.Flight = append(res.Flight, obsv.NodeFlight{
					Node:     node,
					Recorded: fr.Recorded(),
					Capacity: fr.Cap(),
					Events:   fr.Snapshot(nil),
				})
				for _, st := range ents[g][i].Stalls(s.Now(), 0) {
					st.Node = node
					res.Stalls = append(res.Stalls, st)
				}
			}
		}
		return nil
	}

	deadline := faultEnd + 3*time.Second
	done := false
	for s.Now() < deadline {
		stepMu.Lock()
		s.RunFor(tickEvery)
		done = allDone()
		stepMu.Unlock()
		if done {
			break
		}
	}
	if err := finish(); err != nil {
		return res, err
	}
	if !done {
		for g := 0; g < groups; g++ {
			for i := 0; i < cfg.N; i++ {
				if delivered[g][i] < perGroup[g] {
					return res, &Violation{
						Predicate: PredLivenessDelivered,
						Detail: fmt.Sprintf("deadline %v: group %d entity %d delivered %d/%d (stats %+v)",
							deadline, g, i, delivered[g][i], perGroup[g], ents[g][i].Stats()),
					}
				}
			}
		}
		return res, &Violation{
			Predicate: PredLivenessDelivered,
			Detail:    fmt.Sprintf("deadline %v: delivered but not quiescent", deadline),
		}
	}

	// Safety per group: the same checker battery as the single-group run,
	// over each group's own trace; then the data-drain liveness check.
	for g := 0; g < groups; g++ {
		an, err := trace.Analyze(recs[g].Events(), cfg.N)
		if err != nil {
			return res, fmt.Errorf("chaos: analyze group %d trace: %w", g, err)
		}
		gv := func(pred, detail string) *Violation {
			return &Violation{Predicate: pred, Detail: fmt.Sprintf("group %d: %s", g, detail)}
		}
		if err := an.CheckInformationPreserved(); err != nil {
			return res, gv(PredInformation, err.Error())
		}
		if err := an.CheckLocalOrderPreserved(); err != nil {
			return res, gv(PredLocalOrder, err.Error())
		}
		if err := an.CheckCausalOrderPreserved(); err != nil {
			return res, gv(PredCausalOrder, err.Error())
		}
		if cfg.TotalOrder {
			if err := an.CheckTotalOrderPreserved(); err != nil {
				return res, gv(PredTotalOrder, err.Error())
			}
		}
		if err := an.CheckCOService(); err != nil {
			return res, gv(PredCOService, err.Error())
		}
		for i, e := range ents[g] {
			d := e.Drain()
			switch {
			case d.DataResident != 0:
				return res, gv(PredLivenessDrain, fmt.Sprintf("entity %d quiesced with %d resident DATA PDUs", i, d.DataResident))
			case d.ParkedData != 0:
				return res, gv(PredLivenessDrain, fmt.Sprintf("entity %d quiesced with %d parked DATA PDUs", i, d.ParkedData))
			case d.PendingSubmits != 0:
				return res, gv(PredLivenessDrain, fmt.Sprintf("entity %d quiesced with %d flow-blocked submissions", i, d.PendingSubmits))
			case d.SendLogData != 0:
				return res, gv(PredLivenessDrain, fmt.Sprintf("entity %d quiesced with %d unconfirmed DATA in sendlog", i, d.SendLogData))
			case d.ReleasePending != 0:
				return res, gv(PredLivenessDrain, fmt.Sprintf("entity %d quiesced with %d PDUs held by TO release stage", i, d.ReleasePending))
			}
		}
	}
	return res, nil
}

// addStats accumulates src counters into dst (MaxResident by maximum),
// mirroring simrun's cluster-wide totals.
func addStats(dst *core.Stats, s core.Stats) {
	dst.DataSent += s.DataSent
	dst.SyncSent += s.SyncSent
	dst.AckOnlySent += s.AckOnlySent
	dst.RetSent += s.RetSent
	dst.DataRecv += s.DataRecv
	dst.SyncRecv += s.SyncRecv
	dst.AckOnlyRecv += s.AckOnlyRecv
	dst.RetRecv += s.RetRecv
	dst.Accepted += s.Accepted
	dst.Duplicates += s.Duplicates
	dst.Parked += s.Parked
	dst.F1Detections += s.F1Detections
	dst.F2Detections += s.F2Detections
	dst.Retransmitted += s.Retransmitted
	dst.Preacked += s.Preacked
	dst.Acked += s.Acked
	dst.Committed += s.Committed
	dst.Delivered += s.Delivered
	dst.CPIDisplaced += s.CPIDisplaced
	dst.CPIDisplacement += s.CPIDisplacement
	dst.DeferredConfirms += s.DeferredConfirms
	dst.FlowBlocked += s.FlowBlocked
	dst.InvalidPDUs += s.InvalidPDUs
	if s.MaxResident > dst.MaxResident {
		dst.MaxResident = s.MaxResident
	}
}
