package chaos

import (
	"bytes"
	"fmt"
	"math/rand"
	"time"

	"cobcast/internal/core"
	"cobcast/internal/flight"
	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
	"cobcast/internal/sim"
	"cobcast/internal/simrun"
	"cobcast/internal/trace"
	"cobcast/internal/workload"
)

// Violation is a failed invariant: the error Run returns when the
// protocol, not the harness, is wrong. Predicate names the broken
// property ("information-preserved", "liveness-drain", ...) so corpus
// entries and CI artifacts can say what a seed once broke.
type Violation struct {
	Predicate string `json:"predicate"`
	Detail    string `json:"detail"`
}

// Error implements error.
func (v *Violation) Error() string {
	return fmt.Sprintf("chaos: %s violated: %s", v.Predicate, v.Detail)
}

// Predicate names checked by Run, in checking order.
const (
	PredLivenessDelivered = "liveness-delivered"
	PredInformation       = "information-preserved"
	PredLocalOrder        = "local-order-preserved"
	PredCausalOrder       = "causality-preserved"
	PredTotalOrder        = "total-order-preserved"
	PredCOService         = "co-service"
	PredLivenessDrain     = "liveness-drain"
)

// Result reports one completed chaos run (returned even when Run also
// returns a Violation, so failures still carry their evidence).
type Result struct {
	Config Config
	// Submitted is the number of application broadcasts actually issued.
	Submitted int
	// VirtualElapsed is the virtual time at quiescence (or at abandonment).
	VirtualElapsed time.Duration
	// FaultEnd is the virtual time after which the harness injected no
	// further loss; everything later is pure protocol recovery.
	FaultEnd time.Duration
	// Stats sums the entity counters; PerEntity is each entity's own
	// counters (indexed by entity ID); Net counts simulated-network PDUs.
	Stats     core.Stats
	PerEntity []core.Stats
	Net       sim.NetStats
	// Summary aggregates the recorded trace.
	Summary trace.Summary
	// TraceJSON is the full JSON-lines trace; TraceDigest its SHA-256.
	// The digest is the determinism witness: same Config ⇒ same digest.
	TraceJSON   []byte
	TraceDigest string
	// GroupDigests is set by multi-group runs (Config.Groups >= 2): one
	// trace digest per group, in group order; TraceDigest then binds
	// them all. Nil for single-group runs.
	GroupDigests []string
	// Stalled lists the entities frozen mid-run (nil when none);
	// ShedSubmits counts submissions dropped by producer-side ledger
	// admission (Config.Shed).
	Stalled     []int
	ShedSubmits int
	// Flight holds each entity's flight-recorder dump (virtual-time
	// timestamps) and Stalls the stall-analyzer verdicts at the end of
	// the run — the evidence cochaos persists next to a failing seed's
	// trace. Recording is off the protocol path and does not perturb
	// TraceDigest. Multi-group runs record one dump per engine,
	// attributed "i/gG" (entity i of group g).
	Flight []obsv.NodeFlight
	Stalls []obsv.Stall
}

// schedule is the concrete fault plan derived from Config.Seed. It exists
// only inside Run; corpus entries store the Config and re-derive it.
type schedule struct {
	baseDelay [][]time.Duration // per directed link
	lossRate  [][]float64       // per directed link
	windows   []faultWindow
}

type faultWindow struct {
	start, end time.Duration
	partition  []int // entity→group (0/1) when a partition; nil for a pause
	paused     pdu.EntityID
}

// stall freezes one entity at a point in time, forever.
type stall struct {
	id pdu.EntityID
	at time.Duration
}

// Run executes one chaos run. It returns a non-nil *Violation error when
// an invariant fails, ErrBadConfig for unusable configs, and nil when
// every predicate holds. The Result is non-nil whenever the config was
// runnable.
func Run(cfg Config) (*Result, error) { return RunWithRegistry(cfg, nil) }

// RunWithRegistry is Run with live instrumentation: when reg is non-nil
// every entity publishes its counters and state snapshots into it, so an
// obsv HTTP endpoint can watch the run. Instrumentation does not affect
// the run's determinism (the trace digest is identical with and without
// a registry).
func RunWithRegistry(cfg Config, reg *obsv.Registry) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Groups >= 2 {
		return runMultiGroup(cfg, reg)
	}
	// The chaos RNG: first derives the static schedule (below, in fixed
	// order), then serves fault rolls during the run (in simulator-event
	// order, which is itself deterministic).
	rng := rand.New(rand.NewSource(cfg.Seed))
	gen := buildWorkload(cfg, rng)

	// Submission times: generator think time plus chaos spacing, so even
	// gap-free workloads spread across the fault horizon.
	type submission struct {
		at time.Duration
		m  workload.Message
	}
	var subs []submission
	var at time.Duration
	for {
		m, ok := gen.Next()
		if !ok {
			break
		}
		at += m.Gap
		if cfg.MeanGapUS > 0 {
			at += time.Duration(rng.Intn(cfg.MeanGapUS+1)) * time.Microsecond
		}
		subs = append(subs, submission{at: at, m: m})
	}
	if len(subs) == 0 {
		return nil, fmt.Errorf("%w: workload produced no messages", ErrBadConfig)
	}
	submitEnd := subs[len(subs)-1].at
	// All injected loss ceases at faultEnd so the drain phase converges;
	// duplication and delay jitter may continue (they cannot stall the
	// protocol).
	faultEnd := submitEnd + 10*time.Millisecond

	sched := deriveSchedule(cfg, rng, faultEnd)
	stalls := deriveStalls(cfg, rng, faultEnd)

	// Stalled runs are the one place suspicion is on (see the Core
	// comment below): the timeout spans the whole fault horizon, so only
	// a permanently frozen peer can ever accumulate that much silence.
	var suspectAfter time.Duration
	if len(stalls) > 0 {
		suspectAfter = faultEnd
	}

	// The net options need the cluster's virtual clock before the cluster
	// exists; capture through a pointer filled in below.
	var cl *simrun.Cluster
	now := func() time.Duration { return cl.Sim.Now() }

	burstLeft := make([]int, cfg.N)
	dropDatagram := func(from, to pdu.EntityID, _ int) bool {
		if now() >= faultEnd {
			return false
		}
		if burstLeft[to] > 0 {
			burstLeft[to]--
			return true
		}
		if r := sched.lossRate[from][to]; r > 0 && rng.Float64() < r {
			return true
		}
		if cfg.BurstProb > 0 && rng.Float64() < cfg.BurstProb {
			// Receive-buffer overrun at to: this datagram and the next
			// BurstLen-1 addressed to it are lost together.
			burstLeft[to] = cfg.BurstLen - 1
			return true
		}
		return false
	}
	jitterUS := cfg.JitterUS
	delay := func(from, to pdu.EntityID, netRNG *rand.Rand) time.Duration {
		d := sched.baseDelay[from][to]
		if jitterUS > 0 {
			d += time.Duration(netRNG.Intn(jitterUS+1)) * time.Microsecond
		}
		return d
	}

	c, err := simrun.New(simrun.Options{
		N: cfg.N,
		Core: core.Config{
			TotalOrder: cfg.TotalOrder,
			DenseFold:  cfg.DenseFold,
			// SuspectAfter stays zero for classic runs: eviction would
			// legitimately shed a paused entity, and information-preserved
			// requires all N to deliver everything. Stalled runs are the
			// exception — the fault never heals, so survivors must evict
			// the frozen peer (predicates then quantify over survivors).
			SuspectAfter:         suspectAfter,
			PressureSuspectAfter: suspectAfter / 4,
			Ledger:               nil, // per-entity ledgers: MemBudgetBytes below
		},
		Net: []sim.NetOption{
			sim.NetSeed(cfg.Seed),
			sim.NetDelay(delay),
			sim.NetDuplicateRate(cfg.Duplicate),
			sim.NetDatagramFilter(dropDatagram),
		},
		Trace:          true,
		Registry:       reg,
		WireVersion:    cfg.WireVersion,
		MemBudgetBytes: cfg.MemBudgetBytes,
		Shed:           cfg.Shed,
		FlightEvents:   flight.DefaultEvents,
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: build cluster: %w", err)
	}
	cl = c

	for _, s := range subs {
		c.SubmitAt(s.m.Sender, s.m.Payload, s.at)
	}
	for _, w := range sched.windows {
		w := w
		if w.partition != nil {
			c.Sim.At(w.start, func() { applyPartition(c.Net, w.partition, true) })
			c.Sim.At(w.end, func() { applyPartition(c.Net, w.partition, false) })
		} else {
			c.Sim.At(w.start, func() { c.Net.Isolate(w.paused) })
			c.Sim.At(w.end, func() { c.Net.Rejoin(w.paused) })
		}
	}
	for _, st := range stalls {
		st := st
		c.Sim.At(st.at, func() { c.Freeze(st.id) })
	}

	res := &Result{Config: cfg, Submitted: c.Submitted(), FaultEnd: faultEnd}
	for _, st := range stalls {
		res.Stalled = append(res.Stalled, int(st.id))
	}
	finish := func() {
		res.VirtualElapsed = c.Sim.Now()
		res.Stats = c.TotalStats()
		res.PerEntity = make([]core.Stats, cfg.N)
		for i, e := range c.Entities {
			res.PerEntity[i] = e.Stats()
		}
		res.Net = c.Net.Stats()
		events := c.Recorder.Events()
		res.Summary = trace.Summarize(events)
		var buf bytes.Buffer
		_ = c.Recorder.WriteJSON(&buf)
		res.TraceJSON = buf.Bytes()
		res.TraceDigest, _ = trace.DigestEvents(events)
		res.ShedSubmits = c.ShedCount()
		res.Flight = c.FlightDumps()
		res.Stalls = c.StallReport()
	}

	stalled := make(map[pdu.EntityID]bool, len(stalls))
	for _, st := range stalls {
		stalled[st.id] = true
	}
	alive := make([]pdu.EntityID, 0, cfg.N)
	for i := 0; i < cfg.N; i++ {
		if !stalled[pdu.EntityID(i)] {
			alive = append(alive, pdu.EntityID(i))
		}
	}

	// Liveness: every broadcast delivered everywhere and the cluster
	// quiescent within a generous recovery budget after faults cease.
	// Stalled or shedding runs quantify over survivors and executed
	// submissions instead: a frozen entity never drains, and a shed
	// submission never became a broadcast.
	deadline := faultEnd + 3*time.Second
	if len(stalls) == 0 && !cfg.Shed {
		if _, err := c.RunToQuiescence(deadline); err != nil {
			finish()
			return res, &Violation{Predicate: PredLivenessDelivered, Detail: err.Error()}
		}
	} else {
		done := func() bool {
			for _, i := range alive {
				if !c.Entities[i].Quiescent() {
					return false
				}
			}
			sub := c.SubmittedBy()
			for _, i := range alive {
				got := make([]int, cfg.N)
				for _, d := range c.Delivered[i] {
					got[d.Src]++
				}
				for _, s := range alive {
					if got[s] != sub[s] {
						return false
					}
				}
			}
			return true
		}
		if _, err := c.RunUntil(done, deadline); err != nil {
			finish()
			return res, &Violation{
				Predicate: PredLivenessDelivered,
				Detail: fmt.Sprintf("%v (stalled %v, executed per sender %v, shed %d)",
					err, res.Stalled, c.SubmittedBy(), c.ShedCount()),
			}
		}
	}
	finish()

	// Safety: the trace checkers, each reported under its own name.
	// Stalled runs use the survivor-restricted information and total-order
	// forms; local and causal order are prefix-safe, so a frozen entity's
	// truncated delivery sequence is checked like any other.
	an, err := c.Analyze()
	if err != nil {
		return res, fmt.Errorf("chaos: analyze trace: %w", err)
	}
	if len(stalls) == 0 {
		if err := an.CheckInformationPreserved(); err != nil {
			return res, &Violation{Predicate: PredInformation, Detail: err.Error()}
		}
	} else if err := an.CheckInformationPreservedAmong(alive); err != nil {
		return res, &Violation{Predicate: PredInformation, Detail: err.Error()}
	}
	if err := an.CheckLocalOrderPreserved(); err != nil {
		return res, &Violation{Predicate: PredLocalOrder, Detail: err.Error()}
	}
	if err := an.CheckCausalOrderPreserved(); err != nil {
		return res, &Violation{Predicate: PredCausalOrder, Detail: err.Error()}
	}
	if cfg.TotalOrder {
		if len(stalls) == 0 {
			if err := an.CheckTotalOrderPreserved(); err != nil {
				return res, &Violation{Predicate: PredTotalOrder, Detail: err.Error()}
			}
		} else if err := an.CheckTotalOrderPreservedAmong(alive); err != nil {
			return res, &Violation{Predicate: PredTotalOrder, Detail: err.Error()}
		}
	}
	if len(stalls) == 0 {
		if err := an.CheckCOService(); err != nil {
			return res, &Violation{Predicate: PredCOService, Detail: err.Error()}
		}
	}

	// Liveness: no DATA PDU stuck anywhere. Trailing SYNCs legitimately
	// remain in the logs (needsToSpeak tracks only data obligations), so
	// only the data-specific drain fields must be zero. A frozen entity
	// legitimately quiesced with its pipeline full; it is skipped.
	for i, d := range c.Drains() {
		if stalled[pdu.EntityID(i)] {
			continue
		}
		switch {
		case d.DataResident != 0:
			return res, drainViolation(i, "resident DATA PDUs", d.DataResident)
		case d.ParkedData != 0:
			return res, drainViolation(i, "parked DATA PDUs", d.ParkedData)
		case d.PendingSubmits != 0:
			return res, drainViolation(i, "flow-blocked submissions", d.PendingSubmits)
		case d.SendLogData != 0:
			return res, drainViolation(i, "unconfirmed DATA in sendlog", d.SendLogData)
		case d.ReleasePending != 0:
			return res, drainViolation(i, "PDUs held by TO release stage", d.ReleasePending)
		}
	}
	return res, nil
}

func drainViolation(entity int, what string, n int) *Violation {
	return &Violation{
		Predicate: PredLivenessDrain,
		Detail:    fmt.Sprintf("entity %d quiesced with %d %s", entity, n, what),
	}
}

// buildWorkload maps the config's shape name to a generator, drawing
// sub-seeds and shape parameters from the chaos RNG.
func buildWorkload(cfg Config, rng *rand.Rand) workload.Generator {
	n, msgs, size := cfg.N, cfg.Messages, cfg.PayloadSize
	switch cfg.Workload {
	case WorkloadSingle:
		return workload.NewSingleSource(pdu.EntityID(rng.Intn(n)), msgs, size)
	case WorkloadBursty:
		burstLen := 2 + rng.Intn(3)
		bursts := (msgs + burstLen - 1) / burstLen
		return workload.NewBursty(n, bursts, burstLen, size, 4*cfg.meanGap(), rng.Int63())
	case WorkloadInteractive:
		return workload.NewInteractive(n, msgs, size, cfg.meanGap(), rng.Int63())
	case WorkloadMixed:
		transfer := msgs / 2
		if transfer < 1 {
			transfer = 1
		}
		chatter := msgs - transfer
		if chatter < 1 {
			chatter = 1
		}
		return workload.NewMixed(rng.Int63(),
			workload.NewSingleSource(pdu.EntityID(rng.Intn(n)), transfer, size),
			workload.NewInteractive(n, chatter, size, cfg.meanGap(), rng.Int63()),
		)
	default: // WorkloadContinuous
		perSender := (msgs + n - 1) / n
		return workload.NewContinuous(n, perSender, size)
	}
}

// deriveSchedule draws the static fault plan: per-link delays and loss
// rates, which entities are slow, and disjoint partition/pause windows
// that all close before faultEnd.
func deriveSchedule(cfg Config, rng *rand.Rand, faultEnd time.Duration) schedule {
	n := cfg.N
	slow := make([]bool, n)
	for k := 0; k < cfg.SlowEntities; k++ {
		for {
			i := rng.Intn(n)
			if !slow[i] {
				slow[i] = true
				break
			}
		}
	}
	s := schedule{
		baseDelay: make([][]time.Duration, n),
		lossRate:  make([][]float64, n),
	}
	base := cfg.delayBase()
	for i := 0; i < n; i++ {
		s.baseDelay[i] = make([]time.Duration, n)
		s.lossRate[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := base/4 + time.Duration(rng.Int63n(int64(base)/4*3+1))
			if slow[i] || slow[j] {
				d *= 8
			}
			s.baseDelay[i][j] = d
			if cfg.Loss > 0 {
				s.lossRate[i][j] = rng.Float64() * cfg.Loss
			}
		}
	}

	// Fault windows: one per slot of the fault horizon, so windows never
	// overlap. Overlap would corrupt healing — Net.blocked is a plain
	// bool map, and an Unblock from one fault would heal another's cuts.
	k := cfg.Partitions + cfg.Pauses
	if k == 0 {
		return s
	}
	horizon := faultEnd - 2*time.Millisecond
	if horizon <= 0 {
		return s
	}
	kinds := make([]bool, 0, k) // true = partition
	for i := 0; i < cfg.Partitions; i++ {
		kinds = append(kinds, true)
	}
	for i := 0; i < cfg.Pauses; i++ {
		kinds = append(kinds, false)
	}
	rng.Shuffle(len(kinds), func(i, j int) { kinds[i], kinds[j] = kinds[j], kinds[i] })
	slot := horizon / time.Duration(k)
	for i, isPartition := range kinds {
		slotStart := 2*time.Millisecond + slot*time.Duration(i)
		start := slotStart + time.Duration(rng.Int63n(int64(slot)/4+1))
		length := slot/4 + time.Duration(rng.Int63n(int64(slot)/2+1))
		end := start + length
		if max := slotStart + slot - time.Microsecond; end > max {
			end = max
		}
		w := faultWindow{start: start, end: end}
		if isPartition {
			w.partition = bipartition(n, rng)
		} else {
			w.paused = pdu.EntityID(rng.Intn(n))
		}
		s.windows = append(s.windows, w)
	}
	return s
}

// deriveStalls picks which entities freeze and when: distinct victims,
// each at a uniform point in the middle half of the fault horizon, so
// traffic exists both before the stall (building up retention) and after
// it (sustaining the overload the ledger must bound).
func deriveStalls(cfg Config, rng *rand.Rand, faultEnd time.Duration) []stall {
	if cfg.StalledPeers == 0 {
		return nil
	}
	taken := make([]bool, cfg.N)
	out := make([]stall, 0, cfg.StalledPeers)
	for k := 0; k < cfg.StalledPeers; k++ {
		for {
			i := rng.Intn(cfg.N)
			if !taken[i] {
				taken[i] = true
				out = append(out, stall{
					id: pdu.EntityID(i),
					at: faultEnd/4 + time.Duration(rng.Int63n(int64(faultEnd)/2+1)),
				})
				break
			}
		}
	}
	return out
}

// bipartition assigns each entity to group 0 or 1, both non-empty.
func bipartition(n int, rng *rand.Rand) []int {
	groups := make([]int, n)
	for {
		ones := 0
		for i := range groups {
			groups[i] = rng.Intn(2)
			ones += groups[i]
		}
		if ones > 0 && ones < n {
			return groups
		}
	}
}

// applyPartition blocks (or heals) every cross-group channel.
func applyPartition(net *sim.Net, groups []int, cut bool) {
	for i := range groups {
		for j := range groups {
			if i == j || groups[i] == groups[j] {
				continue
			}
			if cut {
				net.Block(pdu.EntityID(i), pdu.EntityID(j))
			} else {
				net.Unblock(pdu.EntityID(i), pdu.EntityID(j))
			}
		}
	}
}
