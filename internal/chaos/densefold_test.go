package chaos

import "testing"

// TestDenseFoldDifferential is the sparse-engine equivalence oracle: the
// same chaos seed replayed with the sparse ACK-fold fast paths enabled
// (production default) and disabled (DenseFold — the dense reference
// arithmetic) must produce byte-identical trace digests. The fault
// schedules exercise loss, duplication, partitions, pauses, parking and
// retransmission, so every sparse branch in the fold, the gap detector,
// the commit scan and the TO hold check gets differential coverage —
// not just the clean-run paths.
func TestDenseFoldDifferential(t *testing.T) {
	seeds := int64(30)
	if testing.Short() {
		seeds = 6
	}
	for seed := int64(1); seed <= seeds; seed++ {
		cfg := FromSeed(seed)
		cfg.DenseFold = false
		sparse, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d sparse (%+v): %v", seed, cfg, err)
		}
		cfg.DenseFold = true
		dense, err := Run(cfg)
		if err != nil {
			t.Fatalf("seed %d dense (%+v): %v", seed, cfg, err)
		}
		if sparse.TraceDigest != dense.TraceDigest {
			t.Fatalf("seed %d: sparse digest %s != dense digest %s",
				seed, sparse.TraceDigest, dense.TraceDigest)
		}
		for g := range sparse.GroupDigests {
			if sparse.GroupDigests[g] != dense.GroupDigests[g] {
				t.Fatalf("seed %d group %d: sparse %s != dense %s",
					seed, g, sparse.GroupDigests[g], dense.GroupDigests[g])
			}
		}
	}
}

// TestDenseFoldDifferentialMultiGroup pins the same equivalence on the
// fixed multi-group scenario with the v2 delta codec in the loop, where
// decoded PDUs carry Delta annotations reconstructed from the wire.
func TestDenseFoldDifferentialMultiGroup(t *testing.T) {
	for _, wire := range []int{0, 2} {
		cfg := pinnedMultiGroup
		cfg.WireVersion = wire
		cfg.DenseFold = false
		sparse, err := Run(cfg)
		if err != nil {
			t.Fatalf("wire=%d sparse: %v", wire, err)
		}
		cfg.DenseFold = true
		dense, err := Run(cfg)
		if err != nil {
			t.Fatalf("wire=%d dense: %v", wire, err)
		}
		for g := range sparse.GroupDigests {
			if sparse.GroupDigests[g] != dense.GroupDigests[g] {
				t.Fatalf("wire=%d group %d: sparse %s != dense %s",
					wire, g, sparse.GroupDigests[g], dense.GroupDigests[g])
			}
		}
	}
}
