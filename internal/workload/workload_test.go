package workload

import (
	"encoding/binary"
	"testing"
	"time"

	"cobcast/internal/pdu"
)

func TestContinuousRoundRobin(t *testing.T) {
	g := NewContinuous(3, 2, 16)
	msgs := Drain(g)
	if len(msgs) != 6 || g.Total() != 6 {
		t.Fatalf("got %d messages, Total %d, want 6", len(msgs), g.Total())
	}
	wantSenders := []pdu.EntityID{0, 1, 2, 0, 1, 2}
	for i, m := range msgs {
		if m.Sender != wantSenders[i] {
			t.Errorf("message %d from %d, want %d", i, m.Sender, wantSenders[i])
		}
		if len(m.Payload) != 16 {
			t.Errorf("message %d payload %d bytes, want 16", i, len(m.Payload))
		}
		if m.Gap != 0 {
			t.Errorf("continuous workload has gap %v", m.Gap)
		}
	}
	// Payload self-describes sender and per-sender index.
	if got := pdu.EntityID(binary.BigEndian.Uint32(msgs[4].Payload)); got != 1 {
		t.Errorf("payload sender = %d, want 1", got)
	}
	if got := binary.BigEndian.Uint64(msgs[4].Payload[4:]); got != 1 {
		t.Errorf("payload index = %d, want 1", got)
	}
	if _, ok := g.Next(); ok {
		t.Error("generator produced past Total")
	}
}

func TestPayloadMinimumSize(t *testing.T) {
	g := NewContinuous(1, 1, 1)
	msgs := Drain(g)
	if len(msgs[0].Payload) < 12 {
		t.Errorf("payload %d bytes, want >= 12", len(msgs[0].Payload))
	}
}

func TestSingleSource(t *testing.T) {
	g := NewSingleSource(2, 5, 32)
	msgs := Drain(g)
	if len(msgs) != 5 {
		t.Fatalf("got %d, want 5", len(msgs))
	}
	for i, m := range msgs {
		if m.Sender != 2 {
			t.Errorf("message %d from %d, want 2", i, m.Sender)
		}
	}
}

func TestBurstyStructure(t *testing.T) {
	const (
		n        = 4
		bursts   = 10
		burstLen = 3
		gap      = 5 * time.Millisecond
	)
	g := NewBursty(n, bursts, burstLen, 16, gap, 1)
	msgs := Drain(g)
	if len(msgs) != bursts*burstLen || g.Total() != bursts*burstLen {
		t.Fatalf("got %d, want %d", len(msgs), bursts*burstLen)
	}
	for b := 0; b < bursts; b++ {
		first := msgs[b*burstLen]
		if b == 0 && first.Gap != 0 {
			t.Error("first burst should have no leading gap")
		}
		if b > 0 && first.Gap != gap {
			t.Errorf("burst %d gap = %v, want %v", b, first.Gap, gap)
		}
		for i := 1; i < burstLen; i++ {
			m := msgs[b*burstLen+i]
			if m.Sender != first.Sender {
				t.Errorf("burst %d mixes senders", b)
			}
			if m.Gap != 0 {
				t.Errorf("intra-burst gap %v", m.Gap)
			}
		}
	}
}

func TestBurstyDeterministicPerSeed(t *testing.T) {
	a := Drain(NewBursty(4, 5, 2, 16, time.Millisecond, 9))
	b := Drain(NewBursty(4, 5, 2, 16, time.Millisecond, 9))
	for i := range a {
		if a[i].Sender != b[i].Sender {
			t.Fatal("same seed produced different senders")
		}
	}
}

func TestMixedInterleavesAllSubStreams(t *testing.T) {
	g := NewMixed(5,
		NewSingleSource(0, 10, 16),
		NewBursty(3, 4, 3, 16, time.Millisecond, 2),
		NewInteractive(3, 8, 16, time.Millisecond, 3),
	)
	want := 10 + 12 + 8
	if g.Total() != want {
		t.Fatalf("Total = %d, want %d", g.Total(), want)
	}
	msgs := Drain(g)
	if len(msgs) != want {
		t.Fatalf("drained %d, want %d", len(msgs), want)
	}
	// Every sub-stream's messages appear, and not as one contiguous run
	// each (the streams genuinely interleave).
	fromSingle := 0
	for _, m := range msgs {
		if m.Sender == 0 && len(m.Payload) == 16 {
			fromSingle++
		}
	}
	if fromSingle < 10 {
		t.Errorf("single-source messages missing: %d < 10", fromSingle)
	}
	firstHalfSingle := 0
	for _, m := range msgs[:want/2] {
		if m.Sender == 0 {
			firstHalfSingle++
		}
	}
	if firstHalfSingle == 0 || firstHalfSingle >= 10+12/3+8/3 {
		t.Errorf("streams did not interleave: %d single-source messages in first half", firstHalfSingle)
	}
	if _, ok := g.Next(); ok {
		t.Error("generator produced past Total")
	}
}

func TestMixedDeterministicPerSeed(t *testing.T) {
	mk := func() *Mixed {
		return NewMixed(11, NewSingleSource(1, 6, 16), NewContinuous(3, 4, 16))
	}
	a, b := Drain(mk()), Drain(mk())
	for i := range a {
		if a[i].Sender != b[i].Sender || a[i].Gap != b[i].Gap {
			t.Fatal("same seed produced different interleaving")
		}
	}
}

func TestInteractive(t *testing.T) {
	g := NewInteractive(3, 50, 16, 10*time.Millisecond, 7)
	msgs := Drain(g)
	if len(msgs) != 50 {
		t.Fatalf("got %d, want 50", len(msgs))
	}
	var total time.Duration
	seen := make(map[pdu.EntityID]bool)
	for _, m := range msgs {
		if int(m.Sender) < 0 || int(m.Sender) >= 3 {
			t.Fatalf("sender %d out of range", m.Sender)
		}
		seen[m.Sender] = true
		total += m.Gap
	}
	if len(seen) < 2 {
		t.Error("interactive workload used fewer than 2 senders")
	}
	mean := total / 50
	if mean < 2*time.Millisecond || mean > 50*time.Millisecond {
		t.Errorf("mean gap %v implausible for 10ms exponential", mean)
	}
}
