// Package workload generates broadcast traffic for experiments. The
// paper's evaluation drives the protocol with entities that "send data
// transmission requests continuously like the file transfer"; that and a
// few other shapes (single source, bursty, interactive) are provided as
// deterministic, seeded generators.
package workload

import (
	"encoding/binary"
	"math/rand"
	"time"

	"cobcast/internal/pdu"
)

// Message is one application-level broadcast request.
type Message struct {
	// Sender is the entity that should broadcast the payload.
	Sender pdu.EntityID
	// Payload is the application data.
	Payload []byte
	// Gap is the think time before this message is submitted, relative to
	// the previous message from the generator.
	Gap time.Duration
}

// Generator produces a finite stream of broadcast requests.
type Generator interface {
	// Next returns the next message, or ok=false when the workload is
	// exhausted.
	Next() (m Message, ok bool)
	// Total returns the total number of messages the generator will emit.
	Total() int
}

// payload builds a deterministic, self-describing payload of the given
// size (at least 12 bytes to hold the sender and index).
func payload(sender pdu.EntityID, index, size int) []byte {
	if size < 12 {
		size = 12
	}
	b := make([]byte, size)
	binary.BigEndian.PutUint32(b, uint32(sender))
	binary.BigEndian.PutUint64(b[4:], uint64(index))
	for i := 12; i < size; i++ {
		b[i] = byte(i)
	}
	return b
}

// Continuous is the paper's evaluation workload: all n entities submit
// continuously, round-robin, with no think time.
type Continuous struct {
	n, perSender, size int
	next               int
}

var _ Generator = (*Continuous)(nil)

// NewContinuous creates a continuous workload: n senders, perSender
// messages each, of size bytes.
func NewContinuous(n, perSender, size int) *Continuous {
	return &Continuous{n: n, perSender: perSender, size: size}
}

// Next implements Generator.
func (c *Continuous) Next() (Message, bool) {
	if c.next >= c.n*c.perSender {
		return Message{}, false
	}
	i := c.next
	c.next++
	sender := pdu.EntityID(i % c.n)
	return Message{Sender: sender, Payload: payload(sender, i/c.n, c.size)}, true
}

// Total implements Generator.
func (c *Continuous) Total() int { return c.n * c.perSender }

// SingleSource sends everything from one entity (a pure file transfer).
type SingleSource struct {
	src         pdu.EntityID
	count, size int
	next        int
}

var _ Generator = (*SingleSource)(nil)

// NewSingleSource creates a workload where src broadcasts count messages.
func NewSingleSource(src pdu.EntityID, count, size int) *SingleSource {
	return &SingleSource{src: src, count: count, size: size}
}

// Next implements Generator.
func (s *SingleSource) Next() (Message, bool) {
	if s.next >= s.count {
		return Message{}, false
	}
	i := s.next
	s.next++
	return Message{Sender: s.src, Payload: payload(s.src, i, s.size)}, true
}

// Total implements Generator.
func (s *SingleSource) Total() int { return s.count }

// Bursty emits bursts of back-to-back messages from a random sender,
// separated by idle gaps — the CSCW-style traffic the paper's introduction
// motivates (groupware sessions alternate activity and silence).
type Bursty struct {
	n, bursts, burstLen, size int
	gap                       time.Duration
	rng                       *rand.Rand

	burst, inBurst int
	sender         pdu.EntityID
}

var _ Generator = (*Bursty)(nil)

// NewBursty creates a bursty workload: bursts bursts of burstLen messages,
// each burst from one random sender, separated by gap.
func NewBursty(n, bursts, burstLen, size int, gap time.Duration, seed int64) *Bursty {
	return &Bursty{
		n: n, bursts: bursts, burstLen: burstLen, size: size,
		gap: gap, rng: rand.New(rand.NewSource(seed)),
	}
}

// Next implements Generator.
func (b *Bursty) Next() (Message, bool) {
	if b.burst >= b.bursts {
		return Message{}, false
	}
	var g time.Duration
	if b.inBurst == 0 {
		b.sender = pdu.EntityID(b.rng.Intn(b.n))
		if b.burst > 0 {
			g = b.gap
		}
	}
	m := Message{
		Sender:  b.sender,
		Payload: payload(b.sender, b.burst*b.burstLen+b.inBurst, b.size),
		Gap:     g,
	}
	b.inBurst++
	if b.inBurst == b.burstLen {
		b.inBurst = 0
		b.burst++
	}
	return m, true
}

// Total implements Generator.
func (b *Bursty) Total() int { return b.bursts * b.burstLen }

// Interactive models conversational traffic: each message comes from a
// random sender after an exponentially distributed think time.
type Interactive struct {
	n, count, size int
	meanGap        time.Duration
	rng            *rand.Rand
	next           int
}

var _ Generator = (*Interactive)(nil)

// NewInteractive creates an interactive workload of count messages with
// the given mean think time.
func NewInteractive(n, count, size int, meanGap time.Duration, seed int64) *Interactive {
	return &Interactive{
		n: n, count: count, size: size, meanGap: meanGap,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Next implements Generator.
func (g *Interactive) Next() (Message, bool) {
	if g.next >= g.count {
		return Message{}, false
	}
	i := g.next
	g.next++
	sender := pdu.EntityID(g.rng.Intn(g.n))
	gap := time.Duration(g.rng.ExpFloat64() * float64(g.meanGap))
	return Message{Sender: sender, Payload: payload(sender, i, g.size), Gap: gap}, true
}

// Total implements Generator.
func (g *Interactive) Total() int { return g.count }

// Mixed interleaves several generators into one stream: each Next picks a
// random non-exhausted sub-generator. It models the heterogeneous traffic
// of a real session — a file transfer running under conversational
// chatter — and gives the chaos harness a workload shape no single
// generator produces.
type Mixed struct {
	gens []Generator
	rng  *rand.Rand
	left []int
	rem  int
}

var _ Generator = (*Mixed)(nil)

// NewMixed combines the given generators under one seeded interleaving.
func NewMixed(seed int64, gens ...Generator) *Mixed {
	m := &Mixed{gens: gens, rng: rand.New(rand.NewSource(seed)), left: make([]int, len(gens))}
	for i, g := range gens {
		m.left[i] = g.Total()
		m.rem += g.Total()
	}
	return m
}

// Next implements Generator. The pick is weighted by each sub-generator's
// remaining count, so long streams do not starve short ones (nor vice
// versa) and the draw costs one RNG call.
func (m *Mixed) Next() (Message, bool) {
	for m.rem > 0 {
		k := m.rng.Intn(m.rem)
		for i, g := range m.gens {
			if k >= m.left[i] {
				k -= m.left[i]
				continue
			}
			msg, ok := g.Next()
			if !ok {
				// The sub-generator overstated Total; retire it.
				m.rem -= m.left[i]
				m.left[i] = 0
				break
			}
			m.left[i]--
			m.rem--
			return msg, true
		}
	}
	return Message{}, false
}

// Total implements Generator.
func (m *Mixed) Total() int {
	t := 0
	for _, g := range m.gens {
		t += g.Total()
	}
	return t
}

// Drain collects every message from a generator (helper for tests and
// simulator harnesses).
func Drain(g Generator) []Message {
	out := make([]Message, 0, g.Total())
	for {
		m, ok := g.Next()
		if !ok {
			return out
		}
		out = append(out, m)
	}
}
