package flight

import (
	"sync"
	"testing"
)

func TestRecordAndSnapshot(t *testing.T) {
	r := NewRing(8)
	if r.Cap() != 8 {
		t.Fatalf("Cap = %d, want 8", r.Cap())
	}
	r.Record(EvSequence, 1, 0, 1, -1, 100)
	r.Record(EvWireOut, 1, 0, 1, -1, 110)
	r.Record(EvRetRequest, 0, 2, 7, 2, 120)

	evs := r.Snapshot(nil)
	if len(evs) != 3 {
		t.Fatalf("Snapshot len = %d, want 3: %+v", len(evs), evs)
	}
	want := []Event{
		{At: 100, Type: EvSequence, TypeName: "sequence", Src: 0, Seq: 1, Kind: 1, Peer: -1},
		{At: 110, Type: EvWireOut, TypeName: "wire-out", Src: 0, Seq: 1, Kind: 1, Peer: -1},
		{At: 120, Type: EvRetRequest, TypeName: "ret-request", Src: 2, Seq: 7, Kind: 0, Peer: 2},
	}
	for i, w := range want {
		if evs[i] != w {
			t.Errorf("event %d = %+v, want %+v", i, evs[i], w)
		}
	}
}

func TestWrapAroundKeepsNewest(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 100; i++ {
		r.Record(EvAccept, 1, int32(i%4), uint64(i), -1, int64(i))
	}
	if got := r.Recorded(); got != 100 {
		t.Fatalf("Recorded = %d, want 100", got)
	}
	evs := r.Snapshot(nil)
	if len(evs) != 8 {
		t.Fatalf("Snapshot len = %d, want 8", len(evs))
	}
	// The retained window is the last 8 records, oldest first.
	for i, ev := range evs {
		if want := uint64(92 + i); ev.Seq != want || ev.At != int64(want) {
			t.Errorf("event %d: seq=%d at=%d, want %d", i, ev.Seq, ev.At, want)
		}
	}
}

func TestSizeRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultEvents}, {-1, DefaultEvents}, {1, 1}, {3, 4}, {8, 8}, {1000, 1024},
	} {
		if got := NewRing(tc.in).Cap(); got != tc.want {
			t.Errorf("NewRing(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestNilRingIsSafe(t *testing.T) {
	var r *Ring
	r.Record(EvAccept, 1, 0, 1, -1, 0) // must not panic
	if r.Cap() != 0 || r.Recorded() != 0 {
		t.Fatalf("nil ring reported non-zero size")
	}
	if got := r.Snapshot(nil); got != nil {
		t.Fatalf("nil ring Snapshot = %v, want nil", got)
	}
}

// TestConcurrentWritersAndScrape is the -race witness for the seqlock:
// several writers record while readers continuously snapshot. Every
// event a reader observes must be internally consistent (the writer-id
// is encoded redundantly in Src and At, and Seq mirrors At), proving
// no torn slot ever escapes the stamp check.
func TestConcurrentWritersAndScrape(t *testing.T) {
	r := NewRing(64)
	const writers, perWriter = 4, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				at := int64(w)<<32 | int64(i)
				r.Record(EvAccept, uint8(w), int32(w), uint64(at), int32(w), at)
			}
		}(w)
	}

	var readers sync.WaitGroup
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var scratch []Event
			for {
				select {
				case <-stop:
					return
				default:
				}
				scratch = r.Snapshot(scratch[:0])
				for _, ev := range scratch {
					w := ev.At >> 32
					if int64(ev.Src) != w || ev.Seq != uint64(ev.At) ||
						ev.Kind != uint8(w) || int64(ev.Peer) != w {
						t.Errorf("torn event escaped seqlock: %+v", ev)
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()
	if got := r.Recorded(); got != writers*perWriter {
		t.Fatalf("Recorded = %d, want %d", got, writers*perWriter)
	}
}

// TestRecordZeroAllocs pins the record fast path at zero allocations,
// both enabled and disabled (nil ring).
func TestRecordZeroAllocs(t *testing.T) {
	r := NewRing(256)
	if n := testing.AllocsPerRun(1000, func() {
		r.Record(EvAccept, 1, 3, 41, -1, 12345)
	}); n != 0 {
		t.Fatalf("Record allocates %v/op, want 0", n)
	}
	var nilRing *Ring
	if n := testing.AllocsPerRun(1000, func() {
		nilRing.Record(EvAccept, 1, 3, 41, -1, 12345)
	}); n != 0 {
		t.Fatalf("nil Record allocates %v/op, want 0", n)
	}
}

// TestSnapshotReuseZeroAllocs: a scraper reusing its scratch slice
// pays no per-scrape allocations once warm.
func TestSnapshotReuseZeroAllocs(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 100; i++ {
		r.Record(EvAccept, 1, 0, uint64(i), -1, int64(i))
	}
	scratch := r.Snapshot(nil)
	if n := testing.AllocsPerRun(100, func() {
		scratch = r.Snapshot(scratch[:0])
	}); n != 0 {
		t.Fatalf("Snapshot with reused scratch allocates %v/op, want 0", n)
	}
}

func BenchmarkRecord(b *testing.B) {
	r := NewRing(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(EvAccept, 1, 3, uint64(i), -1, int64(i))
	}
}

func BenchmarkRecordNil(b *testing.B) {
	var r *Ring
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(EvAccept, 1, 3, uint64(i), -1, int64(i))
	}
}
