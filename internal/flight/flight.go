// Package flight is a lock-free, bounded flight recorder for protocol
// events on the real wire path. Each entity (node loop or group shard)
// owns one Ring and records a fixed vocabulary of lifecycle events —
// submit, sequence, wire-out/in, accept, commit, deliver, retransmit
// request/serve, park/unpark, backpressure block/shed, suspicion — each
// stamped with the pipeline's nanosecond clock and the message's
// globally unique (src, seq) identity.
//
// Design constraints, in order:
//
//  1. Near-zero overhead when recording. Record is a reserve
//     (atomic add) plus four atomic word stores into a preallocated
//     slot: no locks, no allocation, no time syscall (callers pass the
//     timestamp the pipeline already has in hand).
//  2. One untaken branch when disabled. Record is nil-receiver-safe
//     and small enough to inline, so `cfg.Flight.Record(...)` with a
//     nil ring costs a single predictable branch — the same contract
//     as Config.Metrics / Config.Ledger.
//  3. Safe concurrent scrape. /tracez readers run on scraper
//     goroutines while owners keep recording. Every slot is a seqlock:
//     the writer invalidates (stamp=0), stores the payload words, then
//     publishes (stamp=index+1); a reader accepts a slot only if the
//     stamp is the expected index before and after reading the
//     payload. All accesses are atomic, so the race detector stays
//     quiet and a torn read is impossible — at worst a slot being
//     overwritten mid-scrape is skipped.
//
// The ring is bounded: new events overwrite the oldest. A scrape
// returns the most recent ≤ Cap() events in record order.
package flight

import "sync/atomic"

// EventType identifies a protocol lifecycle transition. The vocabulary
// extends internal/trace's sim events (send/accept/deliver/drop/
// retransmit) with the wire- and resource-level transitions only a real
// node sees.
type EventType uint8

// Flight event vocabulary. The comments give the site that records
// each event and the meaning of the Src/Seq/Peer fields beyond the
// default (Src/Seq = the message's MsgID, Peer = -1).
const (
	evNone EventType = iota

	// EvSubmit: application handed a payload to Broadcast. Recorded
	// before sequencing, so Seq is 0 — the EvSequence that follows
	// carries the assigned sequence number.
	EvSubmit
	// EvSequence: the local entity stamped its next SEQ on a DATA/SYNC
	// PDU and self-accepted it (broadcast begins).
	EvSequence
	// EvWireOut: the PDU was staged on the link for transmission.
	EvWireOut
	// EvWireIn: a PDU arrived off the wire and was decoded.
	EvWireIn
	// EvAccept: the PDU passed acceptance (REQ matched) and entered
	// the receipt-confirmed pipeline.
	EvAccept
	// EvCommit: every causal dependency is committed; the PDU left the
	// acknowledged stage.
	EvCommit
	// EvDeliver: the PDU was handed to the application.
	EvDeliver
	// EvRetRequest: a sequence gap was detected (F1/F2) and a RET was
	// addressed to the source. Src/Seq name the missing PDU; Peer is
	// the entity the request is addressed to (== Src for the paper's
	// source-only retransmission).
	EvRetRequest
	// EvRetServe: a RET for one of our own PDUs arrived and the PDU
	// was rebroadcast from the send log. Peer is the requester.
	EvRetServe
	// EvPark: a sequenced PDU arrived ahead of its per-source order
	// and was parked until the gap fills.
	EvPark
	// EvUnpark: a parked PDU's predecessor arrived; it re-entered
	// acceptance.
	EvUnpark
	// EvFlowBlock: the Section 2.2 flow condition refused a submit;
	// the payload queued in pendingSubmits.
	EvFlowBlock
	// EvBlock: the memory ledger blocked a producer (bounded-memory
	// backpressure). Seq counts nothing; Src is the local entity.
	EvBlock
	// EvShed: the memory ledger shed a submit instead of blocking.
	EvShed
	// EvEvict: Peer was evicted from the confirmation quorum
	// (manually or by suspicion). Src is the local entity.
	EvEvict

	numEventTypes
)

var eventNames = [numEventTypes]string{
	evNone:       "none",
	EvSubmit:     "submit",
	EvSequence:   "sequence",
	EvWireOut:    "wire-out",
	EvWireIn:     "wire-in",
	EvAccept:     "accept",
	EvCommit:     "commit",
	EvDeliver:    "deliver",
	EvRetRequest: "ret-request",
	EvRetServe:   "ret-serve",
	EvPark:       "park",
	EvUnpark:     "unpark",
	EvFlowBlock:  "flow-block",
	EvBlock:      "bp-block",
	EvShed:       "bp-shed",
	EvEvict:      "evict",
}

func (t EventType) String() string {
	if t < numEventTypes {
		return eventNames[t]
	}
	return "unknown"
}

// TypeFromName maps an event's wire name back to its EventType —
// consumers that decode /tracez JSON (where only TypeName survives)
// rehydrate Type with it. Unknown names map to 0.
func TypeFromName(name string) EventType {
	for t, n := range eventNames {
		if n == name {
			return EventType(t)
		}
	}
	return evNone
}

// Event is the decoded form of one recorded slot, as returned by
// Snapshot and serialized on /tracez.
type Event struct {
	// At is the event time in nanoseconds on the owning runtime's
	// monotonic protocol clock (node: time.Since(start); sim: virtual
	// time). The owner's epoch converts it to wall time.
	At int64 `json:"at"`
	// Type names the lifecycle transition.
	Type EventType `json:"-"`
	// TypeName is Type rendered for JSON consumers.
	TypeName string `json:"type"`
	// Src and Seq identify the message: (src, seq) is globally unique.
	Src int32  `json:"src"`
	Seq uint64 `json:"seq"`
	// Kind is the PDU kind (pdu.Kind) where one applies, else 0.
	Kind uint8 `json:"kind,omitempty"`
	// Peer is the counterpart entity for events that have one
	// (ret-request target, ret-serve requester, evicted peer); -1 when
	// there is none.
	Peer int32 `json:"peer"`
}

// slot is one seqlock-protected ring entry. stamp holds index+1 when
// the payload words are consistent and 0 while the writer is mid-store.
type slot struct {
	stamp  atomic.Uint64
	at     atomic.Uint64
	seq    atomic.Uint64
	packed atomic.Uint64 // src(16) | peer(16) | type(8) | kind(8)
}

const peerNone = 0xFFFF // packed encoding of Peer == -1

func pack(t EventType, kind uint8, src int32, peer int32) uint64 {
	ps := uint64(uint16(src))
	pp := uint64(peerNone)
	if peer >= 0 {
		pp = uint64(uint16(peer))
	}
	return ps<<32 | pp<<16 | uint64(t)<<8 | uint64(kind)
}

func unpack(w uint64) (t EventType, kind uint8, src int32, peer int32) {
	src = int32(uint16(w >> 32))
	peer = -1
	if p := uint16(w >> 16); p != peerNone {
		peer = int32(p)
	}
	return EventType(uint8(w >> 8)), uint8(w), src, peer
}

// Ring is a fixed-capacity flight recorder. Writers may record from
// multiple goroutines (the reserve is an atomic add), though in
// practice each ring has one owner plus the occasional producer-side
// backpressure event. Readers snapshot concurrently without stopping
// the writer. The zero *Ring (nil) is a valid disabled recorder.
type Ring struct {
	mask  uint64
	w     atomic.Uint64 // next slot index, monotonic
	slots []slot
}

// DefaultEvents is the ring capacity used when a caller asks for the
// default (size <= 0): enough to hold several seconds of per-message
// history at moderate load in 128 KiB per entity.
const DefaultEvents = 4096

// NewRing returns a recorder holding the most recent `size` events,
// rounded up to a power of two; size <= 0 selects DefaultEvents.
func NewRing(size int) *Ring {
	if size <= 0 {
		size = DefaultEvents
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &Ring{mask: uint64(n - 1), slots: make([]slot, n)}
}

// Record appends one event. It is safe on a nil ring (one untaken
// branch) and never allocates. at is the caller's pipeline clock in
// nanoseconds — Record performs no time syscall itself.
func (r *Ring) Record(t EventType, kind uint8, src int32, seq uint64, peer int32, at int64) {
	if r == nil {
		return
	}
	r.record(t, kind, src, seq, peer, at)
}

func (r *Ring) record(t EventType, kind uint8, src int32, seq uint64, peer int32, at int64) {
	idx := r.w.Add(1) - 1
	s := &r.slots[idx&r.mask]
	s.stamp.Store(0) // invalidate: readers mid-flight will reject
	s.at.Store(uint64(at))
	s.seq.Store(seq)
	s.packed.Store(pack(t, kind, src, peer))
	s.stamp.Store(idx + 1) // publish
}

// Cap returns the ring capacity (0 for a nil ring).
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// Recorded returns the total number of events ever recorded (0 for a
// nil ring); min(Recorded, Cap) are retained.
func (r *Ring) Recorded() uint64 {
	if r == nil {
		return 0
	}
	return r.w.Load()
}

// Snapshot appends the retained events to dst in record order and
// returns the extended slice. It runs concurrently with writers: a
// slot overwritten mid-read fails its seqlock check and is skipped, so
// the result is always a set of consistent events, possibly missing a
// few of the oldest that were overtaken during the scan. Nil rings
// return dst unchanged.
func (r *Ring) Snapshot(dst []Event) []Event {
	if r == nil {
		return dst
	}
	end := r.w.Load()
	start := uint64(0)
	if n := uint64(len(r.slots)); end > n {
		start = end - n
	}
	for idx := start; idx < end; idx++ {
		s := &r.slots[idx&r.mask]
		if s.stamp.Load() != idx+1 {
			continue // overwritten (or being overwritten) since we read w
		}
		at := int64(s.at.Load())
		seq := s.seq.Load()
		packed := s.packed.Load()
		if s.stamp.Load() != idx+1 {
			continue // writer moved in while we were reading
		}
		t, kind, src, peer := unpack(packed)
		dst = append(dst, Event{
			At:       at,
			Type:     t,
			TypeName: t.String(),
			Src:      src,
			Seq:      seq,
			Kind:     kind,
			Peer:     peer,
		})
	}
	return dst
}
