// Package network provides the multi-channel (MC) network substrate the CO
// protocol runs on (Section 2.3 of the paper): a fully connected set of
// high-speed channels that
//
//   - preserves per-sender order on every channel (the MC service is
//     local-order-preserved), but
//   - may lose PDUs, primarily through receive-buffer overrun, because the
//     network is faster than the receiving entities, and
//   - imposes an arbitrary interleaving across senders (entities may
//     receive PDUs from different entities in different orders).
//
// The in-memory implementation models buffer overrun faithfully: every
// endpoint has a bounded inbox and a PDU arriving at a full inbox is
// dropped, exactly the loss mode the paper designs for. Additional random
// loss, per-pair latency, drop filters for failure injection, and
// partitions are available through options. All randomness is seeded so
// tests are reproducible.
package network

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
)

// Inbound is a batch of PDUs arriving at an endpoint, tagged with its
// sender. A batch models one datagram: it is transmitted, delayed,
// duplicated, lost, and delivered as a unit, and its PDUs are in the
// sender's append order, so per-sender order holds within and across
// batches (the MC service contract).
type Inbound struct {
	From pdu.EntityID
	// Group tags the datagram's ordered group (0 = the default group) —
	// the in-memory analogue of the v3 frame header's group field.
	Group uint32
	PDUs  []*pdu.PDU
}

// Endpoint is the per-entity attachment point to a network. Broadcast
// delivers to every other endpoint (never back to the sender: the CO
// protocol self-accepts at send time).
type Endpoint interface {
	// Local returns the entity this endpoint belongs to.
	Local() pdu.EntityID
	// Broadcast sends the batch to every other entity in the cluster as
	// one datagram. The batch is cloned at the network boundary; the
	// caller keeps ownership of its PDUs.
	Broadcast(batch ...*pdu.PDU) error
	// Send sends the batch to a single entity (used by tests and tools;
	// the CO protocol itself only broadcasts).
	Send(to pdu.EntityID, batch ...*pdu.PDU) error
	// Recv is the endpoint's inbox. It is closed when the network closes.
	Recv() <-chan Inbound
}

// DelayFn returns the propagation delay from one entity to another.
type DelayFn func(from, to pdu.EntityID) time.Duration

// DropFn lets tests inject targeted loss; returning true for any PDU of
// a batch drops the whole batch (the datagram) on the from→to channel.
type DropFn func(from, to pdu.EntityID, p *pdu.PDU) bool

// Stats counts network-level events since the network was created. All
// counters are in PDUs, not batches, so they are comparable across
// batching configurations.
type Stats struct {
	// Sent counts point-to-point PDU transmissions (a broadcast of a
	// k-PDU batch in a cluster of n counts k×(n-1)).
	Sent uint64
	// Delivered counts PDUs handed to inboxes.
	Delivered uint64
	// DroppedLoss counts PDUs dropped by random loss or drop filters.
	DroppedLoss uint64
	// DroppedOverrun counts PDUs dropped because the receiver inbox was
	// full — the paper's buffer-overrun failure mode.
	DroppedOverrun uint64
	// DroppedPartition counts PDUs dropped on blocked channels.
	DroppedPartition uint64
}

type config struct {
	lossRate      float64
	duplicateRate float64
	seed          int64
	delay         DelayFn
	drop          DropFn
	inboxCap      int
	queueCap      int
}

// Option configures a Net.
type Option func(*config)

// WithLossRate makes every point-to-point transmission independently lost
// with probability p (0 ≤ p < 1).
func WithLossRate(p float64) Option { return func(c *config) { c.lossRate = p } }

// WithDuplicateRate makes every point-to-point transmission delivered
// twice with probability p — UDP-style duplication the protocol must
// absorb.
func WithDuplicateRate(p float64) Option { return func(c *config) { c.duplicateRate = p } }

// WithSeed seeds the loss RNG; networks with equal seeds and traffic lose
// the same PDUs.
func WithSeed(s int64) Option { return func(c *config) { c.seed = s } }

// WithDelay sets the propagation-delay model. The default is zero delay.
func WithDelay(fn DelayFn) Option { return func(c *config) { c.delay = fn } }

// WithUniformDelay sets the same propagation delay on every channel (the
// paper's parameter R is the maximum such delay).
func WithUniformDelay(d time.Duration) Option {
	return WithDelay(func(_, _ pdu.EntityID) time.Duration { return d })
}

// WithDropFilter installs a targeted-loss hook for failure injection.
func WithDropFilter(fn DropFn) Option { return func(c *config) { c.drop = fn } }

// WithInboxCapacity bounds each endpoint's receive buffer; arrivals at a
// full inbox are dropped (buffer overrun). The default is 1024.
func WithInboxCapacity(n int) Option { return func(c *config) { c.inboxCap = n } }

// WithQueueCapacity bounds each directed channel's in-flight queue. The
// default is 4096; overflow counts as loss.
func WithQueueCapacity(n int) Option { return func(c *config) { c.queueCap = n } }

// Net is an in-memory MC network connecting n entities. Create with New,
// attach entities via Endpoint, and Close when done; Close waits for all
// channel goroutines to exit.
type Net struct {
	cfg   config
	ports []*Port

	mu      sync.Mutex
	rng     *rand.Rand
	blocked map[[2]pdu.EntityID]bool
	closed  bool

	stop chan struct{}
	wg   sync.WaitGroup

	// m holds the network counters on the shared obsv atomic type.
	// transmit (sender goroutines) and runPipe (per-channel goroutines)
	// increment concurrently; Stats and registry scrapers load from any
	// goroutine.
	m obsv.NetworkMetrics
}

// ErrClosed is returned by sends on a closed network.
var ErrClosed = errors.New("network: closed")

// New creates an MC network for n entities.
func New(n int, opts ...Option) *Net {
	cfg := config{
		seed:     1,
		inboxCap: 1024,
		queueCap: 4096,
		delay:    func(_, _ pdu.EntityID) time.Duration { return 0 },
	}
	for _, o := range opts {
		o(&cfg)
	}
	net := &Net{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.seed)),
		blocked: make(map[[2]pdu.EntityID]bool),
		stop:    make(chan struct{}),
	}
	net.ports = make([]*Port, n)
	for i := range net.ports {
		p := &Port{
			net:   net,
			id:    pdu.EntityID(i),
			inbox: make(chan Inbound, cfg.inboxCap),
			pipes: make([]chan Inbound, n),
		}
		net.ports[i] = p
	}
	// One ordered pipe per directed pair keeps the MC service's
	// local-order-preserved guarantee even with nonzero delays.
	for from := range net.ports {
		for to := range net.ports {
			if from == to {
				continue
			}
			pipe := make(chan Inbound, cfg.queueCap)
			net.ports[to].pipes[from] = pipe
			net.wg.Add(1)
			go net.runPipe(pdu.EntityID(from), pdu.EntityID(to), pipe)
		}
	}
	return net
}

// runPipe delivers the from→to channel sequentially, applying the
// propagation delay to the head of the queue so per-sender order is
// preserved.
func (n *Net) runPipe(from, to pdu.EntityID, pipe chan Inbound) {
	defer n.wg.Done()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-n.stop:
			return
		case in := <-pipe:
			if d := n.cfg.delay(from, to); d > 0 {
				timer.Reset(d)
				select {
				case <-n.stop:
					if !timer.Stop() {
						<-timer.C
					}
					return
				case <-timer.C:
				}
			}
			select {
			case n.ports[to].inbox <- in:
				n.m.Delivered.Add(uint64(len(in.PDUs)))
			default:
				// Receive-buffer overrun: the paper's loss model. The
				// whole datagram is lost with its slot.
				n.m.DroppedOverrun.Add(uint64(len(in.PDUs)))
			}
		}
	}
}

// Endpoint returns entity i's attachment point.
func (n *Net) Endpoint(i pdu.EntityID) *Port { return n.ports[i] }

// Size returns the number of entities the network connects.
func (n *Net) Size() int { return len(n.ports) }

// Block partitions the directed channel from→to; PDUs sent on it are
// dropped until Unblock.
func (n *Net) Block(from, to pdu.EntityID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[[2]pdu.EntityID{from, to}] = true
}

// Unblock heals the directed channel from→to.
func (n *Net) Unblock(from, to pdu.EntityID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, [2]pdu.EntityID{from, to})
}

// Isolate blocks every channel to and from entity i.
func (n *Net) Isolate(i pdu.EntityID) {
	for j := range n.ports {
		if pdu.EntityID(j) == i {
			continue
		}
		n.Block(i, pdu.EntityID(j))
		n.Block(pdu.EntityID(j), i)
	}
}

// Rejoin heals every channel to and from entity i.
func (n *Net) Rejoin(i pdu.EntityID) {
	for j := range n.ports {
		if pdu.EntityID(j) == i {
			continue
		}
		n.Unblock(i, pdu.EntityID(j))
		n.Unblock(pdu.EntityID(j), i)
	}
}

// Stats returns a snapshot of the network counters.
func (n *Net) Stats() Stats {
	return Stats{
		Sent:             n.m.Sent.Load(),
		Delivered:        n.m.Delivered.Load(),
		DroppedLoss:      n.m.DroppedLoss.Load(),
		DroppedOverrun:   n.m.DroppedOverrun.Load(),
		DroppedPartition: n.m.DroppedPartition.Load(),
	}
}

// Metrics returns the live counters for registry registration; the
// returned pointer stays valid for the network's lifetime.
func (n *Net) Metrics() *obsv.NetworkMetrics { return &n.m }

// Close shuts the network down. Inboxes are closed after all channel
// goroutines exit; in-flight PDUs may be discarded.
func (n *Net) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	close(n.stop)
	n.wg.Wait()
	for _, p := range n.ports {
		close(p.inbox)
	}
}

// transmit routes one point-to-point copy of a batch (one datagram)
// tagged with its group, applying partition, loss and drop-filter policy
// to the batch as a unit. It never blocks.
func (n *Net) transmit(from, to pdu.EntityID, group uint32, batch []*pdu.PDU) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if len(batch) == 0 {
		n.mu.Unlock()
		return nil
	}
	blocked := n.blocked[[2]pdu.EntityID{from, to}]
	lost := n.cfg.lossRate > 0 && n.rng.Float64() < n.cfg.lossRate
	duplicated := n.cfg.duplicateRate > 0 && n.rng.Float64() < n.cfg.duplicateRate
	n.mu.Unlock()

	n.m.Sent.Add(uint64(len(batch)))
	if blocked {
		n.m.DroppedPartition.Add(uint64(len(batch)))
		return nil
	}
	if lost {
		n.m.DroppedLoss.Add(uint64(len(batch)))
		return nil
	}
	if n.cfg.drop != nil {
		for _, p := range batch {
			if n.cfg.drop(from, to, p) {
				n.m.DroppedLoss.Add(uint64(len(batch)))
				return nil
			}
		}
	}
	copies := 1
	if duplicated {
		copies = 2
	}
	for c := 0; c < copies; c++ {
		// Clone at the network boundary so entities never share
		// backing arrays; each duplicate is an independent copy.
		pdus := make([]*pdu.PDU, len(batch))
		for i, p := range batch {
			pdus[i] = p.Clone()
		}
		in := Inbound{From: from, Group: group, PDUs: pdus}
		select {
		case n.ports[to].pipes[from] <- in:
		default:
			n.m.DroppedOverrun.Add(uint64(len(in.PDUs)))
		}
	}
	return nil
}

// Port is an entity's endpoint on a Net.
type Port struct {
	net   *Net
	id    pdu.EntityID
	inbox chan Inbound
	pipes []chan Inbound // indexed by sender; pipes[id] is nil
}

var _ Endpoint = (*Port)(nil)

// Local returns the entity this port belongs to.
func (p *Port) Local() pdu.EntityID { return p.id }

// Broadcast sends the batch to every other entity as one datagram per
// destination, on the default group.
func (p *Port) Broadcast(batch ...*pdu.PDU) error {
	return p.BroadcastGroup(0, batch...)
}

// BroadcastGroup sends the batch to every other entity as one datagram
// per destination, tagged with the given group. It is safe for
// concurrent use (shard goroutines broadcast different groups through
// one port).
func (p *Port) BroadcastGroup(group uint32, batch ...*pdu.PDU) error {
	for to := range p.net.ports {
		if pdu.EntityID(to) == p.id {
			continue
		}
		if err := p.net.transmit(p.id, pdu.EntityID(to), group, batch); err != nil {
			return fmt.Errorf("broadcast from %d: %w", p.id, err)
		}
	}
	return nil
}

// Send sends the batch to one entity as one datagram on the default
// group.
func (p *Port) Send(to pdu.EntityID, batch ...*pdu.PDU) error {
	if to == p.id {
		return fmt.Errorf("network: entity %d sending to itself", p.id)
	}
	return p.net.transmit(p.id, to, 0, batch)
}

// Recv returns the inbox channel.
func (p *Port) Recv() <-chan Inbound { return p.inbox }
