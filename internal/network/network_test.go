package network

import (
	"testing"
	"time"

	"cobcast/internal/pdu"
)

func syncPDU(src pdu.EntityID, seq pdu.Seq) *pdu.PDU {
	return &pdu.PDU{Kind: pdu.KindSync, Src: src, SEQ: seq, ACK: []pdu.Seq{1, 1, 1}}
}

// collect drains up to want PDUs from an endpoint, with a deadline.
func collect(t *testing.T, ep Endpoint, want int) []Inbound {
	t.Helper()
	var got []Inbound
	deadline := time.After(5 * time.Second)
	for len(got) < want {
		select {
		case in, ok := <-ep.Recv():
			if !ok {
				t.Fatalf("inbox closed after %d/%d", len(got), want)
			}
			got = append(got, in)
		case <-deadline:
			t.Fatalf("timeout after %d/%d PDUs", len(got), want)
		}
	}
	return got
}

func TestBroadcastReachesAllOthers(t *testing.T) {
	net := New(3)
	defer net.Close()
	if err := net.Endpoint(0).Broadcast(syncPDU(0, 1)); err != nil {
		t.Fatal(err)
	}
	for _, id := range []pdu.EntityID{1, 2} {
		in := collect(t, net.Endpoint(id), 1)[0]
		if in.From != 0 || in.PDUs[0].SEQ != 1 {
			t.Errorf("entity %d got %v from %d", id, in.PDUs[0], in.From)
		}
	}
	select {
	case in := <-net.Endpoint(0).Recv():
		t.Errorf("sender received its own broadcast: %v", in.PDUs[0])
	case <-time.After(50 * time.Millisecond):
	}
}

func TestPerSenderOrderPreservedWithDelay(t *testing.T) {
	// The MC service must be local-order-preserved even with latency.
	net := New(2, WithUniformDelay(time.Millisecond))
	defer net.Close()
	const count = 50
	for i := 1; i <= count; i++ {
		if err := net.Endpoint(0).Send(1, syncPDU(0, pdu.Seq(i))); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, net.Endpoint(1), count)
	for i, in := range got {
		if in.PDUs[0].SEQ != pdu.Seq(i+1) {
			t.Fatalf("position %d: got seq %d, want %d", i, in.PDUs[0].SEQ, i+1)
		}
	}
}

func TestLossRateDropsApproximately(t *testing.T) {
	net := New(2, WithLossRate(0.5), WithSeed(42))
	defer net.Close()
	const count = 2000
	for i := 1; i <= count; i++ {
		if err := net.Endpoint(0).Send(1, syncPDU(0, pdu.Seq(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the pipe to drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := net.Stats()
		if s.Delivered+s.DroppedLoss+s.DroppedOverrun == count {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipes did not drain: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
	s := net.Stats()
	if s.DroppedLoss < count/3 || s.DroppedLoss > 2*count/3 {
		t.Errorf("loss rate 0.5 dropped %d of %d", s.DroppedLoss, count)
	}
	if s.Sent != count {
		t.Errorf("Sent = %d, want %d", s.Sent, count)
	}
}

func TestLossIsDeterministicPerSeed(t *testing.T) {
	run := func() uint64 {
		net := New(2, WithLossRate(0.3), WithSeed(7))
		defer net.Close()
		for i := 1; i <= 500; i++ {
			if err := net.Endpoint(0).Send(1, syncPDU(0, pdu.Seq(i))); err != nil {
				t.Fatal(err)
			}
		}
		return net.Stats().DroppedLoss
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed, different loss: %d vs %d", a, b)
	}
}

func TestInboxOverrunDrops(t *testing.T) {
	// A receiver that never drains loses PDUs to buffer overrun — the
	// paper's loss model.
	net := New(2, WithInboxCapacity(4))
	defer net.Close()
	const count = 100
	for i := 1; i <= count; i++ {
		if err := net.Endpoint(0).Send(1, syncPDU(0, pdu.Seq(i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := net.Stats()
		if s.Delivered+s.DroppedOverrun == count {
			if s.DroppedOverrun == 0 {
				t.Error("expected overrun drops with tiny inbox")
			}
			if s.Delivered < 4 {
				t.Errorf("Delivered = %d, want at least inbox capacity", s.Delivered)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("did not settle: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestDropFilterTargetsPDUs(t *testing.T) {
	dropped := 0
	net := New(2, WithDropFilter(func(from, to pdu.EntityID, p *pdu.PDU) bool {
		if p.SEQ == 2 {
			dropped++
			return true
		}
		return false
	}))
	defer net.Close()
	for i := 1; i <= 3; i++ {
		if err := net.Endpoint(0).Send(1, syncPDU(0, pdu.Seq(i))); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, net.Endpoint(1), 2)
	if got[0].PDUs[0].SEQ != 1 || got[1].PDUs[0].SEQ != 3 {
		t.Errorf("got seqs %d,%d want 1,3", got[0].PDUs[0].SEQ, got[1].PDUs[0].SEQ)
	}
	if dropped != 1 {
		t.Errorf("filter invoked for %d drops, want 1", dropped)
	}
}

func TestPartitionBlockAndHeal(t *testing.T) {
	net := New(2)
	defer net.Close()
	net.Block(0, 1)
	if err := net.Endpoint(0).Send(1, syncPDU(0, 1)); err != nil {
		t.Fatal(err)
	}
	if s := net.Stats(); s.DroppedPartition != 1 {
		t.Fatalf("DroppedPartition = %d, want 1", s.DroppedPartition)
	}
	net.Unblock(0, 1)
	if err := net.Endpoint(0).Send(1, syncPDU(0, 2)); err != nil {
		t.Fatal(err)
	}
	in := collect(t, net.Endpoint(1), 1)[0]
	if in.PDUs[0].SEQ != 2 {
		t.Errorf("after heal got seq %d, want 2", in.PDUs[0].SEQ)
	}
}

func TestIsolateAndRejoin(t *testing.T) {
	net := New(3)
	defer net.Close()
	net.Isolate(1)
	if err := net.Endpoint(0).Broadcast(syncPDU(0, 1)); err != nil {
		t.Fatal(err)
	}
	if err := net.Endpoint(1).Broadcast(syncPDU(1, 1)); err != nil {
		t.Fatal(err)
	}
	// Entity 2 hears only entity 0.
	in := collect(t, net.Endpoint(2), 1)[0]
	if in.From != 0 {
		t.Errorf("entity 2 heard %d, want 0", in.From)
	}
	net.Rejoin(1)
	if err := net.Endpoint(1).Broadcast(syncPDU(1, 2)); err != nil {
		t.Fatal(err)
	}
	in = collect(t, net.Endpoint(2), 1)[0]
	if in.From != 1 || in.PDUs[0].SEQ != 2 {
		t.Errorf("after rejoin: %v from %d", in.PDUs[0], in.From)
	}
}

func TestPDUsAreClonedAtBoundary(t *testing.T) {
	net := New(2)
	defer net.Close()
	p := syncPDU(0, 1)
	if err := net.Endpoint(0).Send(1, p); err != nil {
		t.Fatal(err)
	}
	p.ACK[0] = 99 // mutate after send
	in := collect(t, net.Endpoint(1), 1)[0]
	if in.PDUs[0].ACK[0] == 99 {
		t.Error("network delivered aliased PDU")
	}
}

func TestSendToSelfRejected(t *testing.T) {
	net := New(2)
	defer net.Close()
	if err := net.Endpoint(0).Send(0, syncPDU(0, 1)); err == nil {
		t.Error("self-send accepted")
	}
}

func TestCloseIdempotentAndRejectsSends(t *testing.T) {
	net := New(2)
	net.Close()
	net.Close()
	if err := net.Endpoint(0).Send(1, syncPDU(0, 1)); err == nil {
		t.Error("send on closed network succeeded")
	}
	if _, ok := <-net.Endpoint(1).Recv(); ok {
		t.Error("inbox not closed")
	}
}

func TestDuplicateRateDeliversTwice(t *testing.T) {
	net := New(2, WithDuplicateRate(1.0))
	defer net.Close()
	if err := net.Endpoint(0).Send(1, syncPDU(0, 1)); err != nil {
		t.Fatal(err)
	}
	got := collect(t, net.Endpoint(1), 2)
	if got[0].PDUs[0].SEQ != 1 || got[1].PDUs[0].SEQ != 1 {
		t.Errorf("expected two copies of seq 1, got %v %v", got[0].PDUs[0], got[1].PDUs[0])
	}
}

func TestBatchDeliveredAsUnitInOrder(t *testing.T) {
	// A multi-PDU batch is one datagram: it arrives as one Inbound with
	// its PDUs in append order.
	net := New(2)
	defer net.Close()
	batch := []*pdu.PDU{syncPDU(0, 1), syncPDU(0, 2), syncPDU(0, 3)}
	if err := net.Endpoint(0).Send(1, batch...); err != nil {
		t.Fatal(err)
	}
	in := collect(t, net.Endpoint(1), 1)[0]
	if len(in.PDUs) != 3 {
		t.Fatalf("batch of 3 arrived as %d PDUs", len(in.PDUs))
	}
	for i, p := range in.PDUs {
		if p.SEQ != pdu.Seq(i+1) {
			t.Errorf("position %d: got seq %d, want %d", i, p.SEQ, i+1)
		}
	}
	if s := net.Stats(); s.Sent != 3 || s.Delivered != 3 {
		t.Errorf("stats count PDUs: Sent=%d Delivered=%d, want 3/3", s.Sent, s.Delivered)
	}
}

func TestBatchLostAsUnit(t *testing.T) {
	// Loss hits the datagram, so a batch is lost or delivered whole —
	// never split. A drop filter matching one member drops the batch.
	net := New(2, WithDropFilter(func(_, _ pdu.EntityID, p *pdu.PDU) bool {
		return p.SEQ == 2
	}))
	defer net.Close()
	if err := net.Endpoint(0).Send(1, syncPDU(0, 1), syncPDU(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := net.Endpoint(0).Send(1, syncPDU(0, 3), syncPDU(0, 4)); err != nil {
		t.Fatal(err)
	}
	in := collect(t, net.Endpoint(1), 1)[0]
	if len(in.PDUs) != 2 || in.PDUs[0].SEQ != 3 || in.PDUs[1].SEQ != 4 {
		t.Fatalf("surviving batch = %v, want seqs 3,4", in.PDUs)
	}
	if s := net.Stats(); s.DroppedLoss != 2 {
		t.Errorf("DroppedLoss = %d, want 2 (whole batch)", s.DroppedLoss)
	}
}

func TestBatchDuplicatesAreIndependentClones(t *testing.T) {
	net := New(2, WithDuplicateRate(1.0))
	defer net.Close()
	if err := net.Endpoint(0).Send(1, syncPDU(0, 1), syncPDU(0, 2)); err != nil {
		t.Fatal(err)
	}
	got := collect(t, net.Endpoint(1), 2)
	if len(got[0].PDUs) != 2 || len(got[1].PDUs) != 2 {
		t.Fatalf("duplicate batches have %d,%d PDUs, want 2,2", len(got[0].PDUs), len(got[1].PDUs))
	}
	got[0].PDUs[0].ACK[0] = 99
	if got[1].PDUs[0].ACK[0] == 99 {
		t.Error("duplicate batch shares backing arrays with the original")
	}
}

func TestQueueCapacityOverflowDrops(t *testing.T) {
	// A pipe with capacity 1 and a slow consumer drops on overflow
	// rather than blocking the sender.
	net := New(2, WithQueueCapacity(1), WithUniformDelay(5*time.Millisecond))
	defer net.Close()
	for i := 1; i <= 50; i++ {
		if err := net.Endpoint(0).Send(1, syncPDU(0, pdu.Seq(i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := net.Stats()
		if s.Delivered+s.DroppedOverrun == 50 {
			if s.DroppedOverrun == 0 {
				t.Error("expected queue overflow drops")
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("did not settle: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}
}
