// Package totalorder models the TO (totally ordering broadcast) protocol
// family of Takizawa that the CO paper compares against in Section 5: a
// one-channel network (an Ethernet-like bus) on which every entity
// observes the same global sequence of slots, with lossy receivers and a
// go-back-n retransmission scheme — "all PDUs preceding the lost PDU are
// retransmitted".
//
// The model is intentionally reduced to what the comparison needs: the
// bus delivers PDUs in global sequence order; each receiver independently
// loses each slot with some probability; a receiver discards every slot
// above its next expected one (the defining go-back-n behaviour); the
// sender rebroadcasts from the lowest next-expected slot across the
// group. Experiment E6 counts bus transmissions against the CO protocol's
// selective scheme under identical loss.
package totalorder

import (
	"errors"
	"fmt"
	"math/rand"

	"cobcast/internal/pdu"
)

// Config parameterizes a bus simulation.
type Config struct {
	// N is the number of receivers on the bus.
	N int
	// LossRate is each receiver's independent per-slot loss probability.
	LossRate float64
	// Seed drives the loss RNG.
	Seed int64
	// Window is the go-back-n window: how many slots the sender
	// broadcasts beyond the group's lowest next-expected slot per round.
	Window int
	// MaxRounds bounds the simulation (a safety net against loss rates
	// close to 1). Zero means 1 << 20 rounds.
	MaxRounds int
}

// Stats summarizes a completed run.
type Stats struct {
	// Messages is the number of distinct application messages broadcast.
	Messages int
	// Transmissions counts bus slots used, including retransmissions.
	Transmissions uint64
	// Retransmissions is Transmissions minus the first broadcast of each
	// message.
	Retransmissions uint64
	// Discarded counts in-window slots thrown away by receivers that had
	// an earlier gap — the go-back-n waste.
	Discarded uint64
	// Rounds is the number of window rounds the bus needed.
	Rounds int
}

// MsgID identifies a message by its original source and global slot.
type MsgID struct {
	Src  pdu.EntityID
	Slot int
}

// Cluster is a TO-protocol bus with n receivers.
type Cluster struct {
	cfg Config
	rng *rand.Rand
	// log is the global bus history: every message in slot order.
	log []MsgID
	// next[r] is receiver r's next expected slot.
	next []int
	// delivered[r] is receiver r's delivery sequence (always a prefix of
	// the global log, hence totally ordered).
	delivered [][]MsgID
	stats     Stats
}

// ErrBadConfig reports an unusable configuration.
var ErrBadConfig = errors.New("totalorder: bad config")

// New creates a bus simulation.
func New(cfg Config) (*Cluster, error) {
	if cfg.N < 2 {
		return nil, fmt.Errorf("%w: n=%d", ErrBadConfig, cfg.N)
	}
	if cfg.LossRate < 0 || cfg.LossRate >= 1 {
		return nil, fmt.Errorf("%w: loss=%v", ErrBadConfig, cfg.LossRate)
	}
	if cfg.Window == 0 {
		cfg.Window = 16
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 1 << 20
	}
	return &Cluster{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		next:      make([]int, cfg.N),
		delivered: make([][]MsgID, cfg.N),
	}, nil
}

// Broadcast appends a message from src to the bus log. Messages are
// transmitted by Run.
func (c *Cluster) Broadcast(src pdu.EntityID, _ []byte) MsgID {
	m := MsgID{Src: src, Slot: len(c.log)}
	c.log = append(c.log, m)
	c.stats.Messages++
	return m
}

// Run drives window rounds until every receiver has delivered the whole
// log, or MaxRounds passes. Each round broadcasts the window starting at
// the group's lowest next-expected slot; every receiver independently
// loses slots and discards anything past its first gap (go-back-n).
func (c *Cluster) Run() (Stats, error) {
	firstTx := make([]bool, len(c.log))
	for round := 0; ; round++ {
		base := len(c.log)
		for _, nx := range c.next {
			if nx < base {
				base = nx
			}
		}
		if base >= len(c.log) {
			c.stats.Rounds = round
			return c.stats, nil
		}
		if round >= c.cfg.MaxRounds {
			return c.stats, fmt.Errorf("totalorder: no progress after %d rounds", round)
		}
		end := base + c.cfg.Window
		if end > len(c.log) {
			end = len(c.log)
		}
		for slot := base; slot < end; slot++ {
			c.stats.Transmissions++
			if firstTx[slot] {
				c.stats.Retransmissions++
			}
			firstTx[slot] = true
			for r := 0; r < c.cfg.N; r++ {
				lost := c.cfg.LossRate > 0 && c.rng.Float64() < c.cfg.LossRate
				if lost {
					continue
				}
				if c.next[r] != slot {
					if slot > c.next[r] {
						// Go-back-n: the receiver cannot buffer past a
						// gap; the slot is discarded.
						c.stats.Discarded++
					}
					continue
				}
				c.delivered[r] = append(c.delivered[r], c.log[slot])
				c.next[r]++
			}
		}
	}
}

// Delivered returns receiver r's delivery sequence.
func (c *Cluster) Delivered(r int) []MsgID {
	out := make([]MsgID, len(c.delivered[r]))
	copy(out, c.delivered[r])
	return out
}

// Stats returns the counters accumulated so far.
func (c *Cluster) Stats() Stats { return c.stats }
