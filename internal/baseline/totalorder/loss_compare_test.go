package totalorder_test

import (
	"testing"
	"time"

	"cobcast/internal/baseline/totalorder"
	"cobcast/internal/pdu"
	"cobcast/internal/sim"
	"cobcast/internal/simrun"
	"cobcast/internal/workload"
)

// TestCOAdvantageHoldsUnderLoss pits the CO protocol's selective
// retransmission against the go-back-n bus at matching loss rates — the
// Section 5 comparison, here run under drops rather than a lossless
// wire. At every loss level both must still deliver everything, the bus
// must exhibit go-back-n waste (discarded in-window slots), and the CO
// protocol must retransmit strictly fewer PDUs than the bus — the
// paper's central efficiency claim.
func TestCOAdvantageHoldsUnderLoss(t *testing.T) {
	const (
		n    = 4
		msgs = 48
		seed = 11
	)
	for _, loss := range []float64{0.1, 0.2, 0.3} {
		co, err := simrun.New(simrun.Options{
			N:     n,
			Trace: true,
			Net: []sim.NetOption{
				sim.NetUniformDelay(time.Millisecond),
				sim.NetLossRate(loss),
				sim.NetSeed(seed),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		co.LoadWorkload(workload.NewContinuous(n, msgs/n, 32))
		if _, err := co.RunToQuiescence(2 * time.Minute); err != nil {
			t.Fatalf("loss %v: CO run: %v", loss, err)
		}
		an, err := co.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		if err := an.CheckCOService(); err != nil {
			t.Fatalf("loss %v: CO service violated: %v", loss, err)
		}
		coRetx := co.TotalStats().Retransmitted

		bus, err := totalorder.New(totalorder.Config{N: n, LossRate: loss, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < msgs; i++ {
			bus.Broadcast(pdu.EntityID(i%n), nil)
		}
		st, err := bus.Run()
		if err != nil {
			t.Fatalf("loss %v: bus run: %v", loss, err)
		}
		for r := 0; r < n; r++ {
			if got := len(bus.Delivered(r)); got != msgs {
				t.Fatalf("loss %v: bus receiver %d delivered %d/%d", loss, r, got, msgs)
			}
		}
		if st.Discarded == 0 {
			t.Errorf("loss %v: go-back-n bus discarded nothing; loss not exercised", loss)
		}
		if st.Retransmissions == 0 {
			t.Errorf("loss %v: bus retransmitted nothing; comparison is vacuous", loss)
		}
		if coRetx >= st.Retransmissions {
			t.Errorf("loss %v: CO retransmitted %d PDUs, go-back-n bus %d — selective advantage lost",
				loss, coRetx, st.Retransmissions)
		}
		t.Logf("loss %v: CO retransmitted %d, go-back-n %d (+%d discarded)",
			loss, coRetx, st.Retransmissions, st.Discarded)
	}
}
