package totalorder

import (
	"testing"

	"cobcast/internal/pdu"
)

func load(c *Cluster, msgs int) {
	for i := 0; i < msgs; i++ {
		c.Broadcast(pdu.EntityID(i%3), nil)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{N: 1}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := New(Config{N: 3, LossRate: 1.0}); err == nil {
		t.Error("loss=1 accepted")
	}
	if _, err := New(Config{N: 3, LossRate: -0.1}); err == nil {
		t.Error("negative loss accepted")
	}
}

func TestLosslessDeliversEverythingOnce(t *testing.T) {
	c, err := New(Config{N: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	load(c, 20)
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Transmissions != 20 || st.Retransmissions != 0 {
		t.Errorf("lossless: %+v", st)
	}
	for r := 0; r < 3; r++ {
		if got := c.Delivered(r); len(got) != 20 {
			t.Errorf("receiver %d delivered %d, want 20", r, len(got))
		}
	}
}

func TestTotalOrderIdenticalAcrossReceivers(t *testing.T) {
	c, err := New(Config{N: 4, LossRate: 0.2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	load(c, 50)
	if _, err := c.Run(); err != nil {
		t.Fatal(err)
	}
	ref := c.Delivered(0)
	if len(ref) != 50 {
		t.Fatalf("receiver 0 delivered %d, want 50", len(ref))
	}
	for r := 1; r < 4; r++ {
		got := c.Delivered(r)
		if len(got) != len(ref) {
			t.Fatalf("receiver %d delivered %d, want %d", r, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("receiver %d slot %d = %v, want %v (total order broken)",
					r, i, got[i], ref[i])
			}
		}
	}
}

func TestLossCausesGoBackNRetransmissions(t *testing.T) {
	c, err := New(Config{N: 3, LossRate: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	load(c, 100)
	st, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st.Retransmissions == 0 {
		t.Error("20% loss produced no retransmissions")
	}
	if st.Discarded == 0 {
		t.Error("go-back-n should discard in-window slots after a gap")
	}
	if st.Transmissions != uint64(st.Messages)+st.Retransmissions {
		t.Errorf("accounting: %+v", st)
	}
}

func TestRetransmissionsGrowWithLoss(t *testing.T) {
	retx := func(loss float64) uint64 {
		c, err := New(Config{N: 4, LossRate: loss, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		load(c, 200)
		st, err := c.Run()
		if err != nil {
			t.Fatal(err)
		}
		return st.Retransmissions
	}
	low, high := retx(0.02), retx(0.3)
	if high <= low {
		t.Errorf("retransmissions: loss 2%% -> %d, loss 30%% -> %d; want growth", low, high)
	}
}

func TestMaxRoundsGuard(t *testing.T) {
	c, err := New(Config{N: 2, LossRate: 0.99, Seed: 1, MaxRounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	load(c, 50)
	if _, err := c.Run(); err == nil {
		t.Error("expected MaxRounds error at 99% loss")
	}
}
