// Package cbcast implements the ISIS CBCAST causal broadcast of Birman,
// Schiper and Stephenson ("Lightweight Causal and Atomic Group
// Multicast"), the protocol the paper positions the CO protocol against.
//
// CBCAST stamps every message with a vector clock and delays delivery
// until the CBCAST delivery condition holds. Two properties matter for
// the comparison (Section 5 of the CO paper):
//
//   - it assumes a reliable transport: a lost message is never detected
//     by the vector clocks themselves, the protocol simply stalls — the
//     CO protocol's sequence numbers detect the loss instead;
//   - delivery requires comparing whole vector clocks, which the CO paper
//     argues costs more than its sequence-number test.
//
// The implementation is sans-IO like internal/core: Broadcast and Receive
// return effects, callers move messages.
package cbcast

import (
	"errors"
	"fmt"

	"cobcast/internal/pdu"
	"cobcast/internal/vclock"
)

// Message is one CBCAST broadcast, stamped with the sender's vector clock
// at send time (after ticking its own component).
type Message struct {
	Src  pdu.EntityID
	VT   vclock.VC
	Data []byte
}

// Delivery is a message handed to the application in causal order.
type Delivery struct {
	Src  pdu.EntityID
	Seq  uint64 // the sender's component of the stamp: its per-source index
	Data []byte
}

// Stats counts protocol events at one entity.
type Stats struct {
	Sent       uint64
	Received   uint64
	Delivered  uint64
	Duplicates uint64
	// Held counts messages that had to wait for causal predecessors.
	Held uint64
	// MaxHeld is the peak size of the hold-back queue.
	MaxHeld int
	// Comparisons counts vector-clock component comparisons performed by
	// the delivery condition — the ordering-cost metric of experiment E7.
	Comparisons uint64
}

// Entity is one CBCAST group member. Not safe for concurrent use.
type Entity struct {
	me    pdu.EntityID
	n     int
	vt    vclock.VC
	held  []Message
	stats Stats
}

// ErrBadID reports an out-of-range entity id.
var ErrBadID = errors.New("cbcast: entity id out of range")

// New creates a group member with a zero vector clock.
func New(id pdu.EntityID, n int) (*Entity, error) {
	if n < 2 || id < 0 || int(id) >= n {
		return nil, fmt.Errorf("%w: id=%d n=%d", ErrBadID, id, n)
	}
	return &Entity{me: id, n: n, vt: vclock.New(n)}, nil
}

// ID returns the member's identifier.
func (e *Entity) ID() pdu.EntityID { return e.me }

// VT returns a copy of the member's current vector clock.
func (e *Entity) VT() vclock.VC { return e.vt.Clone() }

// Stats returns a snapshot of the counters.
func (e *Entity) Stats() Stats { return e.stats }

// Held returns the number of messages waiting for causal predecessors.
func (e *Entity) Held() int { return len(e.held) }

// Broadcast stamps data with the next vector time. The message is
// considered delivered locally at send time (the sender's own component
// ticks), matching BSS.
func (e *Entity) Broadcast(data []byte) Message {
	e.vt.Tick(int(e.me))
	e.stats.Sent++
	e.stats.Delivered++
	return Message{Src: e.me, VT: e.vt.Clone(), Data: data}
}

// Receive processes a message from the group, returning any deliveries it
// unlocks (including held messages that become deliverable).
func (e *Entity) Receive(m Message) ([]Delivery, error) {
	if len(m.VT) != e.n {
		return nil, fmt.Errorf("cbcast: stamp length %d, want %d", len(m.VT), e.n)
	}
	if m.Src == e.me {
		return nil, nil
	}
	e.stats.Received++
	if m.VT[m.Src] <= e.vt[m.Src] {
		e.stats.Duplicates++
		return nil, nil
	}
	e.held = append(e.held, m)
	if len(e.held) > e.stats.MaxHeld {
		e.stats.MaxHeld = len(e.held)
	}
	out := e.drain()
	undelivered := true
	for _, d := range out {
		if d.Src == m.Src && d.Seq == m.VT[m.Src] {
			undelivered = false
			break
		}
	}
	if undelivered {
		e.stats.Held++
	}
	return out, nil
}

// drain repeatedly delivers every held message whose delivery condition
// holds, until a full pass makes no progress.
func (e *Entity) drain() []Delivery {
	var out []Delivery
	for progress := true; progress; {
		progress = false
		for i := 0; i < len(e.held); i++ {
			m := e.held[i]
			e.stats.Comparisons += uint64(e.n)
			if !vclock.CausalReady(m.VT, e.vt, int(m.Src)) {
				if m.VT[m.Src] <= e.vt[m.Src] {
					// A duplicate surfaced behind a repair; discard.
					e.held = append(e.held[:i], e.held[i+1:]...)
					i--
					e.stats.Duplicates++
					progress = true
				}
				continue
			}
			e.held = append(e.held[:i], e.held[i+1:]...)
			i--
			e.vt.Merge(m.VT)
			e.stats.Delivered++
			out = append(out, Delivery{Src: m.Src, Seq: m.VT[m.Src], Data: m.Data})
			progress = true
		}
	}
	return out
}
