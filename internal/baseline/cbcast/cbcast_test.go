package cbcast

import (
	"math/rand"
	"testing"

	"cobcast/internal/pdu"
	"cobcast/internal/trace"
)

func newGroup(t *testing.T, n int) []*Entity {
	t.Helper()
	es := make([]*Entity, n)
	for i := range es {
		e, err := New(pdu.EntityID(i), n)
		if err != nil {
			t.Fatal(err)
		}
		es[i] = e
	}
	return es
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := New(3, 3); err == nil {
		t.Error("id out of range accepted")
	}
	if _, err := New(-1, 3); err == nil {
		t.Error("negative id accepted")
	}
}

func TestImmediateDeliveryInOrder(t *testing.T) {
	es := newGroup(t, 2)
	m1 := es[0].Broadcast([]byte("one"))
	m2 := es[0].Broadcast([]byte("two"))
	d, err := es[1].Receive(m1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 1 || string(d[0].Data) != "one" {
		t.Fatalf("first delivery: %v", d)
	}
	d, err = es[1].Receive(m2)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 1 || string(d[0].Data) != "two" {
		t.Fatalf("second delivery: %v", d)
	}
}

func TestHoldsForSourceGap(t *testing.T) {
	es := newGroup(t, 2)
	m1 := es[0].Broadcast([]byte("one"))
	m2 := es[0].Broadcast([]byte("two"))
	d, err := es[1].Receive(m2) // out of order
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 0 || es[1].Held() != 1 {
		t.Fatalf("m2 should be held: deliveries=%v held=%d", d, es[1].Held())
	}
	d, err = es[1].Receive(m1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 || string(d[0].Data) != "one" || string(d[1].Data) != "two" {
		t.Fatalf("repair should release both in order: %v", d)
	}
	if es[1].Stats().Held != 1 {
		t.Errorf("Held = %d, want 1", es[1].Stats().Held)
	}
}

func TestHoldsForCausalDependency(t *testing.T) {
	// e0 broadcasts p; e1 delivers p then broadcasts q (q depends on p).
	// e2 receives q first: it must wait for p.
	es := newGroup(t, 3)
	p := es[0].Broadcast([]byte("p"))
	if _, err := es[1].Receive(p); err != nil {
		t.Fatal(err)
	}
	q := es[1].Broadcast([]byte("q"))

	d, err := es[2].Receive(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 0 {
		t.Fatalf("q delivered before its dependency p: %v", d)
	}
	d, err = es[2].Receive(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 2 || string(d[0].Data) != "p" || string(d[1].Data) != "q" {
		t.Fatalf("expected p then q, got %v", d)
	}
}

func TestDuplicatesDropped(t *testing.T) {
	es := newGroup(t, 2)
	m := es[0].Broadcast([]byte("m"))
	if _, err := es[1].Receive(m); err != nil {
		t.Fatal(err)
	}
	d, err := es[1].Receive(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(d) != 0 || es[1].Stats().Duplicates != 1 {
		t.Errorf("duplicate not dropped: %v, stats %+v", d, es[1].Stats())
	}
}

func TestOwnMessageIgnored(t *testing.T) {
	es := newGroup(t, 2)
	m := es[0].Broadcast([]byte("m"))
	d, err := es[0].Receive(m)
	if err != nil || len(d) != 0 {
		t.Errorf("own echo: %v, %v", d, err)
	}
}

func TestBadStampRejected(t *testing.T) {
	es := newGroup(t, 2)
	if _, err := es[1].Receive(Message{Src: 0, VT: []uint64{1, 2, 3}}); err == nil {
		t.Error("wrong-length stamp accepted")
	}
}

// TestRandomRunCausalOrder shuffles delivery of a random causal history
// (per-source order preserved, cross-source arbitrary) and checks the
// resulting delivery order against the ground-truth checker.
func TestRandomRunCausalOrder(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		es := newGroup(t, n)
		rec := &trace.Recorder{}

		// Per-receiver pending queues preserve per-sender order but
		// interleave sources randomly (the MC-network hazard).
		queues := make([][]Message, n)
		var msgCount int
		for round := 0; round < 12; round++ {
			src := rng.Intn(n)
			m := es[src].Broadcast([]byte{byte(round)})
			msgCount++
			rec.Record(trace.Event{Type: trace.Send, Entity: pdu.EntityID(src),
				Msg: trace.MsgID{Src: m.Src, Seq: pdu.Seq(m.VT[m.Src])}, Kind: pdu.KindData})
			rec.Record(trace.Event{Type: trace.Deliver, Entity: pdu.EntityID(src),
				Msg: trace.MsgID{Src: m.Src, Seq: pdu.Seq(m.VT[m.Src])}, Kind: pdu.KindData})
			// Everyone must "accept" it for the sender's next stamp to be
			// causally downstream in ground truth; queue for receivers.
			for r := 0; r < n; r++ {
				if r != src {
					queues[r] = append(queues[r], m)
				}
			}
			// Randomly drain some queued messages.
			for r := 0; r < n; r++ {
				drain := rng.Intn(len(queues[r]) + 1)
				for k := 0; k < drain; k++ {
					m := queues[r][0]
					queues[r] = queues[r][1:]
					ds, err := es[r].Receive(m)
					if err != nil {
						t.Fatal(err)
					}
					for _, d := range ds {
						rec.Record(trace.Event{Type: trace.Accept, Entity: pdu.EntityID(r),
							Msg: trace.MsgID{Src: d.Src, Seq: pdu.Seq(d.Seq)}, Kind: pdu.KindData})
						rec.Record(trace.Event{Type: trace.Deliver, Entity: pdu.EntityID(r),
							Msg: trace.MsgID{Src: d.Src, Seq: pdu.Seq(d.Seq)}, Kind: pdu.KindData})
					}
				}
			}
		}
		// Drain everything remaining.
		for r := 0; r < n; r++ {
			for len(queues[r]) > 0 {
				m := queues[r][0]
				queues[r] = queues[r][1:]
				ds, err := es[r].Receive(m)
				if err != nil {
					t.Fatal(err)
				}
				for _, d := range ds {
					rec.Record(trace.Event{Type: trace.Accept, Entity: pdu.EntityID(r),
						Msg: trace.MsgID{Src: d.Src, Seq: pdu.Seq(d.Seq)}, Kind: pdu.KindData})
					rec.Record(trace.Event{Type: trace.Deliver, Entity: pdu.EntityID(r),
						Msg: trace.MsgID{Src: d.Src, Seq: pdu.Seq(d.Seq)}, Kind: pdu.KindData})
				}
			}
		}
		a, err := trace.Analyze(rec.Events(), n)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := a.CheckCOService(); err != nil {
			t.Fatalf("seed %d (n=%d): %v", seed, n, err)
		}
	}
}

func TestComparisonsCounted(t *testing.T) {
	es := newGroup(t, 4)
	m := es[0].Broadcast([]byte("m"))
	if _, err := es[1].Receive(m); err != nil {
		t.Fatal(err)
	}
	if es[1].Stats().Comparisons == 0 {
		t.Error("delivery condition performed no counted comparisons")
	}
}
