package fifo

import (
	"testing"

	"cobcast/internal/pdu"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := New(2, 2); err == nil {
		t.Error("id out of range accepted")
	}
}

func TestInOrderDelivery(t *testing.T) {
	a, _ := New(0, 2)
	b, _ := New(1, 2)
	m1 := a.Broadcast([]byte("1"))
	m2 := a.Broadcast([]byte("2"))
	d, err := b.Receive(m1)
	if err != nil || len(d) != 1 || string(d[0].Data) != "1" {
		t.Fatalf("d=%v err=%v", d, err)
	}
	d, err = b.Receive(m2)
	if err != nil || len(d) != 1 || string(d[0].Data) != "2" {
		t.Fatalf("d=%v err=%v", d, err)
	}
}

func TestGapParksAndDrains(t *testing.T) {
	a, _ := New(0, 2)
	b, _ := New(1, 2)
	m1 := a.Broadcast(nil)
	m2 := a.Broadcast(nil)
	m3 := a.Broadcast(nil)
	if d, _ := b.Receive(m3); len(d) != 0 {
		t.Fatalf("out-of-order delivered: %v", d)
	}
	if d, _ := b.Receive(m2); len(d) != 0 {
		t.Fatalf("still gapped: %v", d)
	}
	if got := b.Missing()[0]; got != 1 {
		t.Errorf("Missing = %d, want 1", got)
	}
	d, _ := b.Receive(m1)
	if len(d) != 3 || d[0].Seq != 1 || d[1].Seq != 2 || d[2].Seq != 3 {
		t.Fatalf("drain: %v", d)
	}
	if st := b.Stats(); st.Parked != 2 || st.Delivered != 3 {
		t.Errorf("stats: %+v", st)
	}
}

func TestDuplicateAndSelfAndBadSrc(t *testing.T) {
	a, _ := New(0, 2)
	b, _ := New(1, 2)
	m := a.Broadcast(nil)
	if _, err := b.Receive(m); err != nil {
		t.Fatal(err)
	}
	if d, _ := b.Receive(m); len(d) != 0 || b.Stats().Duplicates != 1 {
		t.Error("duplicate not dropped")
	}
	own := b.Broadcast(nil)
	if d, _ := b.Receive(own); len(d) != 0 {
		t.Error("own message delivered twice")
	}
	if _, err := b.Receive(Message{Src: 9, Seq: 1}); err == nil {
		t.Error("bad src accepted")
	}
}

func TestCrossSourceUnconstrained(t *testing.T) {
	// LO service: no causal constraint across sources — q (sent causally
	// after p) may be delivered before p.
	es := make([]*Entity, 3)
	for i := range es {
		es[i], _ = New(pdu.EntityID(i), 3)
	}
	p := es[0].Broadcast([]byte("p"))
	if _, err := es[1].Receive(p); err != nil {
		t.Fatal(err)
	}
	q := es[1].Broadcast([]byte("q"))
	// Entity 2 receives q before p: FIFO delivers q immediately.
	d, err := es[2].Receive(q)
	if err != nil || len(d) != 1 {
		t.Fatalf("LO should deliver q immediately: %v %v", d, err)
	}
}
