// Package fifo implements the LO (locally ordering broadcast) service
// level of the paper's taxonomy — the PO protocol [16] ordering guarantee:
// each receiver delivers every source's messages in sending order, with no
// cross-source constraint. It is the cheapest of the three service levels
// (LO < CO < TO) and serves as the lower baseline when measuring what
// causal ordering costs on top of plain per-source FIFO.
//
// Loss handling is per-source selective: out-of-order messages wait in a
// parking buffer until the gap closes (callers provide the retransmission
// transport; this package only orders).
package fifo

import (
	"errors"
	"fmt"

	"cobcast/internal/pdu"
)

// Message is a FIFO broadcast: a source-assigned sequence number plus
// payload.
type Message struct {
	Src  pdu.EntityID
	Seq  pdu.Seq
	Data []byte
}

// Stats counts events at one entity.
type Stats struct {
	Sent       uint64
	Delivered  uint64
	Duplicates uint64
	Parked     uint64
}

// Entity is one LO-service group member. Not safe for concurrent use.
type Entity struct {
	me     pdu.EntityID
	n      int
	seq    pdu.Seq
	next   []pdu.Seq
	parked []map[pdu.Seq]Message
	stats  Stats
}

// ErrBadID reports an out-of-range entity id.
var ErrBadID = errors.New("fifo: entity id out of range")

// New creates a group member.
func New(id pdu.EntityID, n int) (*Entity, error) {
	if n < 2 || id < 0 || int(id) >= n {
		return nil, fmt.Errorf("%w: id=%d n=%d", ErrBadID, id, n)
	}
	e := &Entity{me: id, n: n, seq: 1, next: make([]pdu.Seq, n),
		parked: make([]map[pdu.Seq]Message, n)}
	for i := range e.next {
		e.next[i] = 1
		e.parked[i] = make(map[pdu.Seq]Message)
	}
	return e, nil
}

// ID returns the member's identifier.
func (e *Entity) ID() pdu.EntityID { return e.me }

// Stats returns a snapshot of the counters.
func (e *Entity) Stats() Stats { return e.stats }

// Broadcast stamps data with the next sequence number. The sender
// delivers its own message immediately.
func (e *Entity) Broadcast(data []byte) Message {
	m := Message{Src: e.me, Seq: e.seq, Data: data}
	e.seq++
	e.next[e.me] = e.seq
	e.stats.Sent++
	e.stats.Delivered++
	return m
}

// Receive processes a message, returning the in-order deliveries it
// unlocks for that source.
func (e *Entity) Receive(m Message) ([]Message, error) {
	if m.Src < 0 || int(m.Src) >= e.n {
		return nil, fmt.Errorf("%w: src=%d", ErrBadID, m.Src)
	}
	if m.Src == e.me {
		return nil, nil
	}
	switch {
	case m.Seq < e.next[m.Src]:
		e.stats.Duplicates++
		return nil, nil
	case m.Seq > e.next[m.Src]:
		if _, dup := e.parked[m.Src][m.Seq]; !dup {
			e.parked[m.Src][m.Seq] = m
			e.stats.Parked++
		}
		return nil, nil
	}
	out := []Message{m}
	e.next[m.Src]++
	e.stats.Delivered++
	for {
		q, ok := e.parked[m.Src][e.next[m.Src]]
		if !ok {
			break
		}
		delete(e.parked[m.Src], q.Seq)
		out = append(out, q)
		e.next[m.Src]++
		e.stats.Delivered++
	}
	return out, nil
}

// Missing returns, per source, the next sequence number this entity is
// waiting for — what a transport would use to request retransmissions.
func (e *Entity) Missing() []pdu.Seq {
	out := make([]pdu.Seq, e.n)
	copy(out, e.next)
	return out
}
