package core

// Total-order extension (TO service, §2.3 of the paper). The paper's
// taxonomy has three service levels — LO ⊂ CO ⊂ TO — and its authors'
// other protocols provide TO directly on a one-channel network. This
// extension derives the TO service from the CO machinery instead:
//
//   - Every committed sequenced PDU gets a logical time
//     ltime(p) = 1 + max over k of ltime((k, p.ACK[k]-1)),
//     a Lamport-style clock over the PDU's causal dependencies. The
//     commit stage guarantees dependencies commit first, and ltime is a
//     deterministic function of the (identical) per-source committed
//     sequences, so every entity computes identical values.
//   - DATA PDUs are released to the application in (ltime, src, seq)
//     order once *stable*: a PDU m is released when every other source
//     has committed something with a larger key, so nothing that could
//     sort before m can still commit. Keys grow strictly per source,
//     and the deferred-confirmation gossip keeps committing fresh SYNC
//     keys while any entity still holds unreleased data, so release is
//     live.
//
// The result: all entities deliver the identical sequence, which is also
// causality-preserving (p ≺ q ⇒ ltime(p) < ltime(q)).

import (
	"container/heap"
	"fmt"
	"time"

	"cobcast/internal/flight"
	"cobcast/internal/pdu"
	"cobcast/internal/trace"
	"cobcast/internal/vclock"
)

// toKey is the total-order sort key. Keys are unique ((src,seq) is) and
// strictly increasing per source.
type toKey struct {
	lt  uint64
	src pdu.EntityID
	seq pdu.Seq
}

func (a toKey) less(b toKey) bool {
	if a.lt != b.lt {
		return a.lt < b.lt
	}
	if a.src != b.src {
		return a.src < b.src
	}
	return a.seq < b.seq
}

// toState is the per-entity total-order machinery, allocated only when
// Config.TotalOrder is set.
type toState struct {
	// ltimes[k] holds the logical times of committed PDUs from source k,
	// starting at sequence base[k].
	ltimes [][]uint64
	base   []pdu.Seq
	// lastKey[j] is the key of the newest committed PDU from source j
	// (zero until j commits something here).
	lastKey []toKey
	hasKey  []bool
	// pending holds committed DATA PDUs awaiting stable release.
	pending toHeap
	// lastAcc[j] is the ACK vector of the newest accepted sequenced PDU
	// from j, used as the pruning floor for ltimes.
	lastAcc [][]pdu.Seq
	// Stability cache for releaseTotal: while the pending head stays the
	// same, unsat holds the sources still blocking its release
	// (unsatValid marks the cache live, unsatFor the head it describes).
	// onCommitTotal clears a source's bit as soon as its frontier passes
	// the head, so the steady-state "head still blocked" probe is one
	// word test instead of an O(n) scan; the cache recomputes when the
	// head changes and invalidates on eviction (quorum shrink).
	unsat      vclock.Bits
	unsatFor   toKey
	unsatValid bool
}

// ltimePruneThreshold bounds the per-source logical-time history before a
// pruning pass runs; a variable so white-box tests can exercise pruning
// without committing thousands of PDUs.
var ltimePruneThreshold = 8192

func newTOState(n int) *toState {
	s := &toState{
		ltimes:  make([][]uint64, n),
		base:    make([]pdu.Seq, n),
		lastKey: make([]toKey, n),
		hasKey:  make([]bool, n),
		lastAcc: make([][]pdu.Seq, n),
		unsat:   vclock.NewBits(n),
	}
	for k := range s.base {
		s.base[k] = 1
	}
	return s
}

// ltimeOf returns the logical time of committed PDU (k, seq).
func (s *toState) ltimeOf(k pdu.EntityID, seq pdu.Seq) uint64 {
	if seq < s.base[k] {
		// The pruning floor guarantees referenced entries are retained;
		// reaching here is an implementation bug, not a runtime input.
		panic(fmt.Sprintf("core: ltime of s%d#%d pruned (base %d)", k, seq, s.base[k]))
	}
	idx := int(seq - s.base[k])
	return s.ltimes[k][idx]
}

// onCommit computes and records the logical time of a freshly committed
// sequenced PDU, and queues DATA for stable release.
func (e *Entity) onCommitTotal(p *pdu.PDU) {
	s := e.to
	var lt uint64
	if d := p.Delta; d != nil && p.SEQ >= 2 {
		// Delta fast path: the own column changes on every PDU
		// (ACK[src] = SEQ), so src ∈ Delta and the max includes
		// ltime(pred) = ltime(src, SEQ-1). Every unchanged reference
		// equals one of pred's references, whose ltime is < ltime(pred)
		// by construction, so restricting the max to the changed
		// entries is exact (induction down the chain to the dense base
		// case SEQ = 1).
		for _, k := range d {
			if p.ACK[k] >= 2 {
				if v := s.ltimeOf(pdu.EntityID(k), p.ACK[k]-1); v > lt {
					lt = v
				}
			}
		}
	} else {
		for k := 0; k < e.n; k++ {
			if p.ACK[k] >= 2 {
				if v := s.ltimeOf(pdu.EntityID(k), p.ACK[k]-1); v > lt {
					lt = v
				}
			}
		}
	}
	lt++
	if p.SEQ != s.base[p.Src]+pdu.Seq(len(s.ltimes[p.Src])) {
		panic(fmt.Sprintf("core: out-of-order commit s%d#%d (next %d)",
			p.Src, p.SEQ, s.base[p.Src]+pdu.Seq(len(s.ltimes[p.Src]))))
	}
	s.ltimes[p.Src] = append(s.ltimes[p.Src], lt)
	key := toKey{lt: lt, src: p.Src, seq: p.SEQ}
	s.lastKey[p.Src] = key
	s.hasKey[p.Src] = true
	// The committed frontier of p.Src just advanced: if it passed the
	// cached pending head's key, this source no longer blocks release.
	if s.unsatValid && s.unsat.Test(int(p.Src)) && s.unsatFor.less(key) {
		s.unsat.Clear(int(p.Src))
	}
	if p.Kind == pdu.KindData {
		heap.Push(&s.pending, toItem{key: key, p: p})
		e.chargePDU(p)
	}
	if len(s.ltimes[p.Src]) > ltimePruneThreshold {
		e.pruneLTimes()
	}
}

// releaseTotal delivers every stable pending PDU in key order. A key is
// stable once every other source has committed beyond it. The per-head
// scan is cached in s.unsat: it recomputes only when the head changes
// (pop, or a smaller key pushed) and onCommitTotal retires blockers
// incrementally, so a head probed repeatedly while waiting costs one
// word test per probe instead of O(n).
func (e *Entity) releaseTotal(now time.Duration, out *Output) {
	s := e.to
	for s.pending.Len() > 0 {
		head := s.pending[0]
		if !s.unsatValid || s.unsatFor != head.key {
			s.unsat.Reset()
			for j := 0; j < e.n; j++ {
				if pdu.EntityID(j) == head.key.src || e.evicted[j] {
					continue
				}
				if !s.hasKey[j] || !head.key.less(s.lastKey[j]) {
					s.unsat.Set(j)
				}
			}
			s.unsatFor, s.unsatValid = head.key, true
		}
		if !s.unsat.Empty() {
			return
		}
		s.unsatValid = false // the head is about to change
		heap.Pop(&s.pending)
		p := head.p
		e.releasePDU(p)
		e.dataResident--
		e.stats.Delivered++
		e.observeDeliverLatency(p, now)
		out.Deliveries = append(out.Deliveries, Delivery{
			Src: p.Src, SEQ: p.SEQ, Data: p.Data, LTime: head.key.lt,
		})
		e.fl(flight.EvDeliver, p.Src, p.SEQ, p.Kind, pdu.NoEntity, now)
		e.trace(trace.Deliver, p.Src, p.SEQ, p.Kind, now)
	}
}

// pruneLTimes drops logical-time entries no future commit can reference.
// A future commit is either a resident PDU (its ACK vector is known) or a
// not-yet-accepted PDU from source j, whose ACK[k] is at least the ACK[k]
// of the newest accepted PDU from j (ACK vectors are monotone per
// source); our own future submissions reference at least REQ. The floor
// is the minimum over all of these, minus one (references are ACK[k]-1).
func (e *Entity) pruneLTimes() {
	s := e.to
	floor := make([]pdu.Seq, e.n)
	for k := 0; k < e.n; k++ {
		floor[k] = e.req[k] // own next submission's reference bound
	}
	consider := func(ack []pdu.Seq) {
		for k := 0; k < e.n; k++ {
			if ack[k] < floor[k] {
				floor[k] = ack[k]
			}
		}
	}
	for j := 0; j < e.n; j++ {
		if s.lastAcc[j] != nil {
			consider(s.lastAcc[j])
		} else {
			// Nothing accepted from j yet: its future PDUs may reference
			// anything; keep everything.
			for k := range floor {
				floor[k] = 1
			}
		}
	}
	for k := 0; k < e.n; k++ {
		for i := 0; i < e.rrl[k].Len(); i++ {
			consider(e.rrl[k].At(i).ACK)
		}
		for _, p := range e.parked[k] {
			consider(p.ACK)
		}
	}
	for _, p := range e.prl.Slice() {
		consider(p.ACK)
	}
	for k := 0; k < e.n; k++ {
		for i := 0; i < e.ackedQ[k].Len(); i++ {
			consider(e.ackedQ[k].At(i).ACK)
		}
	}
	for k := 0; k < e.n; k++ {
		// Keep entries with seq >= floor[k]-1 (references are ACK-1),
		// and never prune beyond what has been recorded.
		keepFrom := floor[k]
		if keepFrom >= 1 {
			keepFrom--
		}
		if keepFrom <= s.base[k] {
			continue
		}
		drop := int(keepFrom - s.base[k])
		if drop > len(s.ltimes[k]) {
			drop = len(s.ltimes[k])
		}
		s.ltimes[k] = append([]uint64(nil), s.ltimes[k][drop:]...)
		s.base[k] += pdu.Seq(drop)
	}
}

// toItem is one pending total-order release.
type toItem struct {
	key toKey
	p   *pdu.PDU
}

type toHeap []toItem

func (h toHeap) Len() int           { return len(h) }
func (h toHeap) Less(i, j int) bool { return h[i].key.less(h[j].key) }
func (h toHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *toHeap) Push(x any)        { *h = append(*h, x.(toItem)) }
func (h *toHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = toItem{}
	*h = old[:n-1]
	return it
}
