package core_test

import (
	"testing"
	"time"

	"cobcast/internal/core"
	"cobcast/internal/flight"
	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
)

func findStall(stalls []obsv.Stall, stage string) *obsv.Stall {
	for i := range stalls {
		if stalls[i].Stage == stage {
			return &stalls[i]
		}
	}
	return nil
}

func waitingOn(st *obsv.Stall, peer int) bool {
	for _, w := range st.WaitingOn {
		if w == peer {
			return true
		}
	}
	return false
}

// exchangeRounds ticks the live entities and cross-delivers every
// emitted PDU among them — including the cascading responses Receive
// itself produces — while the rest of the cluster stays unreachable.
// Virtual time advances per round; returns the last timestamp used.
func exchangeRounds(t *testing.T, live []*core.Entity, from time.Duration, rounds int) time.Duration {
	t.Helper()
	type envelope struct {
		from pdu.EntityID
		p    *pdu.PDU
	}
	now := from
	for r := 0; r < rounds; r++ {
		now += 10 * time.Millisecond
		var queue []envelope
		for _, e := range live {
			out := e.Tick(now)
			for _, q := range out.PDUs {
				queue = append(queue, envelope{e.ID(), q})
			}
		}
		for len(queue) > 0 {
			env := queue[0]
			queue = queue[1:]
			for _, o := range live {
				if o.ID() == env.from {
					continue
				}
				out, err := o.Receive(env.p.Clone(), now)
				if err != nil {
					t.Fatalf("Receive at %d: %v", o.ID(), err)
				}
				for _, q := range out.PDUs {
					queue = append(queue, envelope{o.ID(), q})
				}
			}
		}
	}
	return now
}

// TestStallAnalyzerNamesMissingAckPeer is the acceptance scenario: in a
// 3-entity cluster where entity 2 is silent (isolated), a broadcast
// from 0 confirmed only by 1 must be reported as pack-waiting on
// exactly peer 2 — the missing-ACK peer, named by ID.
func TestStallAnalyzerNamesMissingAckPeer(t *testing.T) {
	ents := make([]*core.Entity, 3)
	for i := range ents {
		e, err := core.New(core.Config{ID: pdu.EntityID(i), N: 3})
		if err != nil {
			t.Fatal(err)
		}
		ents[i] = e
	}
	e0, e1 := ents[0], ents[1] // entity 2 is isolated: never hears, never speaks
	live := []*core.Entity{e0, e1}

	out := e0.Submit([]byte("m1"), 0)
	if len(out.PDUs) != 1 {
		t.Fatalf("submit produced %d PDUs, want 1", len(out.PDUs))
	}
	if _, err := e1.Receive(out.PDUs[0].Clone(), 0); err != nil {
		t.Fatal(err)
	}
	// Deferred confirmation gets e1's receipt evidence back to e0.
	now := exchangeRounds(t, live, 0, 4)

	stalls := e0.Stalls(now, 0)
	if len(stalls) == 0 {
		t.Fatalf("Stalls() empty; want the undelivered broadcast reported")
	}
	st := findStall(stalls, "pack-wait")
	if st == nil {
		t.Fatalf("no pack-wait stall in %+v", stalls)
	}
	if st.Msg != "s0#1" {
		t.Errorf("stall.Msg = %q, want s0#1", st.Msg)
	}
	if len(st.WaitingOn) != 1 || !waitingOn(st, 2) {
		t.Errorf("stall.WaitingOn = %v, want exactly [2]; reason: %s", st.WaitingOn, st.Reason)
	}

	// Evicting the silent peer everywhere unblocks the pipeline; the
	// stall report must drain to empty once the message delivers.
	for _, e := range live {
		if _, err := e.Evict(2, now); err != nil {
			t.Fatalf("Evict: %v", err)
		}
	}
	now = exchangeRounds(t, live, now, 6)
	if got := e0.Stats().Delivered; got != 1 {
		t.Fatalf("Delivered = %d after eviction, want 1", got)
	}
	if rest := e0.Stalls(now, 0); len(rest) != 0 {
		t.Errorf("Stalls() after evict+confirm = %+v, want empty", rest)
	}
}

// TestStallAnalyzerParkedGap: a PDU parked over a sequence gap is
// attributed to the source whose retransmission is awaited.
func TestStallAnalyzerParkedGap(t *testing.T) {
	ents := newScriptCluster(t, 3)
	e0, e1 := ents[0], ents[1]

	p1 := submit(t, e0, "m1")
	p2 := submit(t, e0, "m2")
	_ = p1 // lost on the wire to e1
	receive(t, e1, p2)

	st := findStall(e1.Stalls(0, 0), "parked")
	if st == nil {
		t.Fatalf("no parked stall: %+v", e1.Stalls(0, 0))
	}
	if st.Msg != "s0#2" {
		t.Errorf("parked head = %q, want s0#2", st.Msg)
	}
	if len(st.WaitingOn) != 1 || !waitingOn(st, 0) {
		t.Errorf("WaitingOn = %v, want [0] (the source repairs its own gap)", st.WaitingOn)
	}

	// Repair closes the gap; parked stall disappears.
	receive(t, e1, p1)
	if st := findStall(e1.Stalls(0, 0), "parked"); st != nil {
		t.Errorf("parked stall survived repair: %+v", st)
	}
}

// TestStallAnalyzerFlowBlocked: with a window of 1 and no
// acknowledgments coming back, queued submits report flow-blocked and
// name the peers holding minAL down.
func TestStallAnalyzerFlowBlocked(t *testing.T) {
	e0, err := core.New(core.Config{ID: 0, N: 2, Window: 1, DisableDeferredConfirm: true})
	if err != nil {
		t.Fatal(err)
	}
	submit(t, e0, "m1")
	if out := e0.Submit([]byte("m2"), 0); len(out.PDUs) != 0 {
		t.Fatalf("second submit escaped a closed window: %d PDUs", len(out.PDUs))
	}
	st := findStall(e0.Stalls(0, 0), "flow-blocked")
	if st == nil {
		t.Fatalf("no flow-blocked stall: %+v", e0.Stalls(0, 0))
	}
	if !waitingOn(st, 1) {
		t.Errorf("WaitingOn = %v, want peer 1 (sole acknowledger)", st.WaitingOn)
	}
}

// TestFlightHooksRecordLifecycle: an entity with a ring attached
// records the full local lifecycle for its own broadcast.
func TestFlightHooksRecordLifecycle(t *testing.T) {
	n := 2
	rings := []*flight.Ring{flight.NewRing(64), flight.NewRing(64)}
	ents := make([]*core.Entity, n)
	for i := range ents {
		cfg := core.Config{ID: pdu.EntityID(i), N: n, Flight: rings[i]}
		e, err := core.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ents[i] = e
	}
	p := submit(t, ents[0], "m1")
	receive(t, ents[1], p)
	exchangeRounds(t, ents, 0, 6)

	want := []flight.EventType{flight.EvSubmit, flight.EvSequence, flight.EvAccept, flight.EvCommit, flight.EvDeliver}
	for who, r := range rings {
		got := map[flight.EventType]bool{}
		for _, ev := range r.Snapshot(nil) {
			if ev.Src == 0 && (ev.Seq == 1 || ev.Type == flight.EvSubmit) {
				got[ev.Type] = true
			}
		}
		for _, ty := range want {
			if ty == flight.EvSubmit || ty == flight.EvSequence {
				if who != 0 {
					continue // only the broadcaster submits/sequences
				}
			}
			if !got[ty] {
				t.Errorf("entity %d: missing %v for s0#1; ring = %+v", who, ty, rings[who].Snapshot(nil))
			}
		}
	}
}
