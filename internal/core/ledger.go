package core

// Bounded-memory extension. The paper's flow condition bounds in-flight
// *unacknowledged* PDUs (window W), but the receipt logs that make causal
// ordering work — parked repairs, RRL/PRL, the commit stage, the
// total-order release heap, the retransmission send log, and queued
// submissions — all grow with whatever the slowest peer has not yet
// confirmed. A Ledger puts a hard byte budget on that retained state:
// the entity (single-writer) charges and releases PDUs as they enter and
// leave its logs, and producers on other goroutines consult the ledger
// before submitting — blocking on the gate or shedding with a typed
// error once the budget is exhausted.
//
// The budget is deliberately enforced *pre-sequencing only*: a PDU that
// has been assigned a sequence number is never dropped, because every
// peer's REQ/AL bookkeeping already counts on it (Theorem 4.1 liveness).
// Backpressure instead stops new work from being sequenced, and the
// pressure signal (UnderPressure) shortens the suspicion timer so a
// stalled peer — the one thing that can pin the logs indefinitely — is
// evicted before the budget pins producers forever. See DESIGN.md §2j.

import (
	"sync"
	"sync/atomic"

	"cobcast/internal/pdu"
)

// ledgerPDUOverhead approximates the fixed per-PDU cost of a retained
// *pdu.PDU beyond its payload and ACK vector: the struct itself plus the
// log slot(s) holding the pointer. Exactness does not matter — the same
// constant is charged and released — only that the budget tracks real
// retention roughly linearly.
const ledgerPDUOverhead = 64

// Ledger tracks the bytes and PDUs retained by one entity's logs against
// a hard budget. The owner goroutine (the entity's) is the only writer;
// any goroutine may read the gauges or wait on the gate. One ledger per
// engine: every group entity under WithGroupShards gets its own, so
// budgets are per-group and writers never cross shard goroutines.
type Ledger struct {
	maxBytes int64
	bytes    atomic.Int64
	pdus     atomic.Int64
	blocked  atomic.Uint64
	shed     atomic.Uint64

	mu   sync.Mutex
	gate chan struct{} // closed while under budget; swapped fresh when over
}

// NewLedger creates a ledger with the given byte budget (must be > 0).
func NewLedger(maxBytes int64) *Ledger {
	l := &Ledger{maxBytes: maxBytes}
	l.gate = make(chan struct{})
	close(l.gate)
	return l
}

// pduCost is the ledger charge for one retained sequenced PDU.
func pduCost(dataLen, ackLen int) int64 {
	return ledgerPDUOverhead + int64(dataLen) + 8*int64(ackLen)
}

// add applies a delta from the owner goroutine. Crossing detection is
// exact because there is a single writer: transitions strictly alternate
// over↔under, so the gate swap/close below cannot double-close.
func (l *Ledger) add(dBytes, dPDUs int64) {
	if dPDUs != 0 {
		l.pdus.Add(dPDUs)
	}
	nb := l.bytes.Add(dBytes)
	over, wasOver := nb >= l.maxBytes, nb-dBytes >= l.maxBytes
	if over == wasOver {
		return
	}
	l.mu.Lock()
	if over {
		l.gate = make(chan struct{})
	} else {
		close(l.gate)
	}
	l.mu.Unlock()
}

// OverBudget reports whether retained bytes have reached the budget.
// Safe from any goroutine.
func (l *Ledger) OverBudget() bool { return l.bytes.Load() >= l.maxBytes }

// UnderPressure reports whether retained bytes have reached half the
// budget — the threshold at which the entity starts suspecting stalled
// peers on the shortened PressureSuspectAfter timer.
func (l *Ledger) UnderPressure() bool { return l.bytes.Load()*2 >= l.maxBytes }

// Gate returns a channel that is closed while the ledger is under
// budget. Blocked producers select on it; after it fires they must
// re-check OverBudget and grab a fresh gate (the budget may have been
// re-exhausted in between).
func (l *Ledger) Gate() <-chan struct{} {
	l.mu.Lock()
	g := l.gate
	l.mu.Unlock()
	return g
}

// NoteBlock and NoteShed count producer-side backpressure outcomes; the
// producers (Broadcast callers) invoke them, not the entity.
func (l *Ledger) NoteBlock() { l.blocked.Add(1) }
func (l *Ledger) NoteShed()  { l.shed.Add(1) }

// Gauge accessors, safe from any goroutine.
func (l *Ledger) Bytes() int64    { return l.bytes.Load() }
func (l *Ledger) PDUs() int64     { return l.pdus.Load() }
func (l *Ledger) Budget() int64   { return l.maxBytes }
func (l *Ledger) Blocked() uint64 { return l.blocked.Load() }
func (l *Ledger) Shed() uint64    { return l.shed.Load() }

// --- Entity-side accounting (owner goroutine only) ---
//
// Every retention site charges on entry and releases on exit, so the
// ledger is the sum over sites and returns to zero when the logs drain:
//
//	pendingSubmits  chargeSubmit (Submit) / releaseSubmit (drainSubmits)
//	parked          chargePDU (park) / releasePDU (unpark)
//	rrl→prl→ackedQ  chargePDU (accept) / releasePDU (commit dequeue)
//	to.pending      chargePDU (onCommitTotal) / releasePDU (releaseTotal)
//	sendlog         chargePDU (broadcastSequenced) / releasePDU (trim)
//
// Own PDUs sit in both the send log and the receive pipeline; they are
// charged twice and released twice — symmetric, so still exact. All
// helpers are no-ops (one untaken branch) without a configured ledger.

func (e *Entity) chargePDU(p *pdu.PDU) {
	if l := e.cfg.Ledger; l != nil {
		l.add(pduCost(len(p.Data), len(p.ACK)), 1)
	}
}

func (e *Entity) releasePDU(p *pdu.PDU) {
	if l := e.cfg.Ledger; l != nil {
		l.add(-pduCost(len(p.Data), len(p.ACK)), -1)
	}
}

// chargeSubmit / releaseSubmit account one queued application payload.
func (e *Entity) chargeSubmit(n int) {
	if l := e.cfg.Ledger; l != nil {
		l.add(ledgerPDUOverhead+int64(n), 1)
	}
}

func (e *Entity) releaseSubmit(n int) {
	if l := e.cfg.Ledger; l != nil {
		l.add(-(ledgerPDUOverhead + int64(n)), -1)
	}
}
