package core

// White-box tests for the total-order release stage internals.

import (
	"container/heap"
	"testing"
	"time"

	"cobcast/internal/pdu"
)

func TestToKeyOrdering(t *testing.T) {
	tests := []struct {
		name string
		a, b toKey
		less bool
	}{
		{"by ltime", toKey{lt: 1, src: 9, seq: 9}, toKey{lt: 2, src: 0, seq: 0}, true},
		{"ltime tie by src", toKey{lt: 5, src: 0, seq: 9}, toKey{lt: 5, src: 1, seq: 0}, true},
		{"full tie by seq", toKey{lt: 5, src: 1, seq: 1}, toKey{lt: 5, src: 1, seq: 2}, true},
		{"equal", toKey{lt: 5, src: 1, seq: 1}, toKey{lt: 5, src: 1, seq: 1}, false},
		{"greater", toKey{lt: 6, src: 0, seq: 0}, toKey{lt: 5, src: 9, seq: 9}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.a.less(tt.b); got != tt.less {
				t.Errorf("less(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.less)
			}
		})
	}
}

func TestToHeapPopsInKeyOrder(t *testing.T) {
	var h toHeap
	keys := []toKey{
		{lt: 3, src: 1, seq: 1},
		{lt: 1, src: 2, seq: 1},
		{lt: 2, src: 0, seq: 1},
		{lt: 1, src: 0, seq: 1},
	}
	for _, k := range keys {
		heap.Push(&h, toItem{key: k})
	}
	var prev *toKey
	for h.Len() > 0 {
		it := heap.Pop(&h).(toItem)
		if prev != nil && it.key.less(*prev) {
			t.Fatalf("heap popped %v after %v", it.key, *prev)
		}
		k := it.key
		prev = &k
	}
}

// TestLTimePruning forces the pruning pass with a tiny threshold and
// verifies referenced entries survive while history shrinks.
func TestLTimePruning(t *testing.T) {
	old := ltimePruneThreshold
	ltimePruneThreshold = 8
	defer func() { ltimePruneThreshold = old }()

	// Two entities exchanging continuously in TO mode.
	mk := func(id pdu.EntityID) *Entity {
		e, err := New(Config{ID: id, N: 2, TotalOrder: true,
			DeferredAckInterval: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e0, e1 := mk(0), mk(1)
	now := time.Duration(0)
	pending := e0.Submit([]byte("kick"), now).PDUs
	deliveries := 0
	for round := 0; round < 400; round++ {
		now += time.Millisecond
		var next []*pdu.PDU
		for _, p := range pending {
			dst := e1
			if p.Src == 1 {
				dst = e0
			}
			out, err := dst.Receive(p.Clone(), now)
			if err != nil {
				t.Fatal(err)
			}
			deliveries += len(out.Deliveries)
			next = append(next, out.PDUs...)
		}
		o0, o1 := e0.Tick(now), e1.Tick(now)
		deliveries += len(o0.Deliveries) + len(o1.Deliveries)
		next = append(next, o0.PDUs...)
		next = append(next, o1.PDUs...)
		pending = next
		// Feed more data every few rounds to keep commits flowing.
		if round%4 == 0 && round < 300 {
			out := e0.Submit([]byte{byte(round)}, now)
			pending = append(pending, out.PDUs...)
			deliveries += len(out.Deliveries)
		}
	}
	if deliveries == 0 {
		t.Fatal("nothing delivered")
	}
	// Pruning must have moved the base forward on the busy source.
	if e1.to.base[0] <= 1 {
		t.Errorf("ltime history never pruned: base=%v len=%d",
			e1.to.base[0], len(e1.to.ltimes[0]))
	}
	for k := 0; k < 2; k++ {
		if len(e1.to.ltimes[k]) > 8*ltimePruneThreshold {
			t.Errorf("source %d history %d entries despite pruning", k, len(e1.to.ltimes[k]))
		}
	}
}
