// Package core implements the causally ordering broadcast (CO) protocol of
// Nakamura & Takizawa as a deterministic, sans-IO state machine. An Entity
// consumes three kinds of input — application submissions, PDUs from the
// network, and clock ticks — and produces PDUs to broadcast plus
// causally ordered deliveries. All goroutine, channel, timer and socket
// concerns live in the callers (the root cobcast runtime, the discrete-
// event simulator, and the benchmarks), so the identical protocol code
// runs in every environment.
//
// Protocol summary (paper sections in parentheses):
//
//   - Every sequenced PDU carries SEQ and the vector ACK of next-expected
//     sequence numbers (§4.1). Acceptance is strictly in-order per source
//     (§4.2). Gaps are detected by the failure conditions F1/F2 and
//     repaired by selective retransmission via RET PDUs (§4.3).
//   - A PDU p from source k is pre-acknowledged once min_j AL[k][j] — the
//     minimum of everyone's reported next-expected-from-k — passes p.SEQ;
//     it then moves into the causality-ordered PRL via the CPI operation,
//     ordered by the sequence-number causality test of Theorem 4.1 (§4.4).
//   - p is acknowledged (and delivered) once min_j PAL[k][j] passes p.SEQ,
//     where PAL folds the ACK vectors of pre-acknowledged PDUs (§4.5).
//   - Flow control: minAL_i ≤ SEQ < minAL_i + min(W, minBUF/(H·2n)) (§4.2).
//   - Deferred confirmation: an idle entity emits an empty SYNC PDU after
//     hearing from every peer or after a timeout, keeping confirmation
//     traffic at O(n) PDUs (§5).
package core

import (
	"errors"
	"fmt"
	"time"

	"cobcast/internal/flight"
	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
	"cobcast/internal/trace"
)

// Default protocol parameters; see Config.
const (
	DefaultWindow              = 16
	DefaultBufferUnits         = 4096
	DefaultUnitsPerPDU         = 1
	DefaultDeferredAckInterval = 5 * time.Millisecond
	DefaultRetransmitTimeout   = 20 * time.Millisecond
)

// Config parameterizes an Entity. The zero value is not valid; use
// Validate (called by New) to check a hand-built Config.
type Config struct {
	// ClusterID is the CID stamped on every PDU; PDUs with a different
	// CID are rejected.
	ClusterID uint32
	// ID is this entity's index, 0 ≤ ID < N.
	ID pdu.EntityID
	// N is the cluster size (≥ 2).
	N int
	// Window is the paper's W: the maximum number of own PDUs between
	// one's SEQ and the cluster-wide minimum acknowledgment minAL.
	Window pdu.Seq
	// BufferUnits is the receive-buffer capacity advertised in BUF. The
	// flow condition divides the cluster minimum by UnitsPerPDU·2n, so
	// BufferUnits must be at least UnitsPerPDU·2·N for any credit at all.
	BufferUnits uint32
	// UnitsPerPDU is the paper's H: buffer units one PDU occupies.
	UnitsPerPDU uint32
	// DeferredAckInterval is the "predefined time" of the deferred
	// confirmation rule: an entity with confirmations owed sends a SYNC
	// at least this often.
	DeferredAckInterval time.Duration
	// RetransmitTimeout is how long to wait before re-issuing an RET for
	// a gap that has not closed, and the minimum spacing between
	// rebroadcasts of the same PDU.
	RetransmitTimeout time.Duration
	// SuspectAfter, when positive, auto-evicts a peer that has stayed
	// silent for this long while this entity owed the cluster
	// confirmations (see evict.go). Zero disables automatic suspicion;
	// Evict remains available for manual membership decisions.
	SuspectAfter time.Duration
	// Ledger, if non-nil, meters the bytes retained by this entity's
	// logs against a hard budget (see ledger.go). The entity is the
	// ledger's single writer, so a ledger must never be shared between
	// entities; producers read it for backpressure decisions. Nil keeps
	// accounting entirely off the hot path (one untaken branch per
	// transition).
	Ledger *Ledger
	// PressureSuspectAfter, when positive alongside SuspectAfter and a
	// Ledger, shortens the suspicion timer while the ledger is under
	// pressure (≥ half budget): a stalled peer is the one thing that can
	// pin the logs indefinitely, so it is evicted before the budget pins
	// producers forever. Ignored without a Ledger or with SuspectAfter
	// zero — memory pressure alone never evicts anyone.
	PressureSuspectAfter time.Duration
	// Tracer, if non-nil, records send/accept/deliver/retransmit events
	// for the trace checkers.
	Tracer *trace.Recorder
	// Flight, if non-nil, receives a bounded flight-recorder event at
	// every lifecycle transition (sequence, accept, park/unpark,
	// commit, deliver, retransmit request/serve, eviction…), stamped
	// with the pipeline clock. The entity never reads it back; scrapers
	// snapshot it concurrently via /tracez. Nil costs one untaken
	// branch per transition, the same contract as Ledger and Metrics.
	Flight *flight.Ring
	// Metrics, if non-nil, receives live instrumentation: the entity
	// mirrors its Stats counters into the atomic EntityMetrics after
	// every input (so scrapers on other goroutines read them without
	// touching entity state) and feeds the delivery-latency and
	// ack-wait histograms. Nil keeps the engine free of any
	// instrumentation cost beyond one untaken branch per input.
	Metrics *obsv.EntityMetrics
	// DisableDeferredConfirm turns off automatic SYNC/ACKONLY emission.
	// Scripted tests (such as the Table 1 golden test) use it to control
	// every PDU on the wire; production configurations leave it false.
	DisableDeferredConfirm bool
	// TotalOrder upgrades the service level from CO to TO (§2.3): all
	// entities deliver the identical sequence, still consistent with
	// causality. Implemented as a deterministic logical-time release
	// stage on top of the CO pipeline (see totalorder.go); it adds
	// delivery latency because a message is held until every source has
	// confirmed past it.
	TotalOrder bool
	// DenseFold disables the sparse ACK-fold fast paths: the entity
	// ignores Delta annotations on received PDUs and does not annotate
	// its own broadcasts, so every fold scans all n ACK entries. The
	// sparse paths claim to be exact, and the differential chaos test
	// replays identical seeds with and without DenseFold demanding
	// byte-identical trace digests. Production configurations leave it
	// false; benchmarks use it to measure the dense baseline (E17).
	DenseFold bool
}

// Configuration errors.
var (
	ErrBadCluster = errors.New("core: cluster must have at least 2 entities")
	ErrBadID      = errors.New("core: entity id out of range")
	ErrBadWindow  = errors.New("core: window must be at least 1")
	ErrNoCredit   = errors.New("core: BufferUnits below UnitsPerPDU*2*N leaves no flow-control credit")
)

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = DefaultWindow
	}
	if c.BufferUnits == 0 {
		c.BufferUnits = DefaultBufferUnits
	}
	if c.UnitsPerPDU == 0 {
		c.UnitsPerPDU = DefaultUnitsPerPDU
	}
	if c.DeferredAckInterval == 0 {
		c.DeferredAckInterval = DefaultDeferredAckInterval
	}
	if c.RetransmitTimeout == 0 {
		c.RetransmitTimeout = DefaultRetransmitTimeout
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.N < 2 {
		return fmt.Errorf("%w: n=%d", ErrBadCluster, c.N)
	}
	if c.ID < 0 || int(c.ID) >= c.N {
		return fmt.Errorf("%w: id=%d n=%d", ErrBadID, c.ID, c.N)
	}
	if c.Window < 1 {
		return ErrBadWindow
	}
	if c.BufferUnits < c.UnitsPerPDU*2*uint32(c.N) {
		return fmt.Errorf("%w: units=%d need >= %d", ErrNoCredit,
			c.BufferUnits, c.UnitsPerPDU*2*uint32(c.N))
	}
	return nil
}

// Delivery is one causally ordered message handed to the application.
type Delivery struct {
	// Src is the original broadcaster.
	Src pdu.EntityID
	// SEQ is the source-assigned sequence number.
	SEQ pdu.Seq
	// Data is the application payload.
	Data []byte
	// LTime is the message's logical time in TotalOrder mode (0 in CO
	// mode). Deliveries are totally ordered by (LTime, Src, SEQ) and the
	// order is identical at every entity.
	LTime uint64
}

// Output collects the externally visible effects of one input: PDUs to
// broadcast (in order) and deliveries to the application (in causal
// order).
type Output struct {
	PDUs       []*pdu.PDU
	Deliveries []Delivery
}

// Empty reports whether the input produced no effects.
func (o *Output) Empty() bool { return len(o.PDUs) == 0 && len(o.Deliveries) == 0 }

// Stats counts protocol events at one entity since creation.
type Stats struct {
	// DataSent, SyncSent, AckOnlySent and RetSent count broadcast PDUs by
	// kind.
	DataSent    uint64
	SyncSent    uint64
	AckOnlySent uint64
	RetSent     uint64
	// DataRecv, SyncRecv, AckOnlyRecv and RetRecv count valid received
	// PDUs by kind (counted after validation, before duplicate checks).
	DataRecv    uint64
	SyncRecv    uint64
	AckOnlyRecv uint64
	RetRecv     uint64
	// Accepted counts in-order acceptances (including self-acceptances
	// and retransmitted PDUs accepted after repair).
	Accepted uint64
	// Duplicates counts sequenced PDUs discarded as already accepted.
	Duplicates uint64
	// Parked counts out-of-order sequenced PDUs buffered pending repair.
	Parked uint64
	// F1Detections counts loss detections by failure condition F1 (a
	// sequenced PDU beyond REQ, or a sender's own ACK column beyond our
	// evidence); F2Detections counts detections by F2 (an ACK entry for
	// a third source beyond our evidence). See §4.3.
	F1Detections uint64
	F2Detections uint64
	// Retransmitted counts own PDUs rebroadcast in response to RET.
	Retransmitted uint64
	// Preacked and Acked count pipeline progress; Committed counts PDUs
	// through the causal-closure commit stage; Delivered counts DATA
	// PDUs handed to the application.
	Preacked  uint64
	Acked     uint64
	Committed uint64
	Delivered uint64
	// CPIDisplaced counts CPI insertions into the PRL that were not
	// tail appends; CPIDisplacement sums the entries bypassed across
	// them (total reorder distance).
	CPIDisplaced    uint64
	CPIDisplacement uint64
	// DeferredConfirms counts confirmations emitted by the deferred
	// confirmation rule (§5): SYNC or ACKONLY PDUs sent because the
	// all-heard condition or the deferred-ack timer fired.
	DeferredConfirms uint64
	// FlowBlocked counts submissions that had to wait for the window.
	FlowBlocked uint64
	// MaxResident is the peak number of PDUs simultaneously held in the
	// receive-side logs (pending + RRL + PRL) — the O(n) buffer claim of
	// Section 5 (experiment E4).
	MaxResident int
	// InvalidPDUs counts received PDUs rejected by validation.
	InvalidPDUs uint64
	// Evicted counts entities removed from the confirmation quorum here;
	// AutoSuspected counts those removed by the suspicion timer, and
	// PressureEvicted the subset that only fired because memory pressure
	// shortened the timer (see Config.PressureSuspectAfter).
	Evicted         uint64
	AutoSuspected   uint64
	PressureEvicted uint64
}
