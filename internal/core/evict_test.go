package core_test

import (
	"errors"
	"testing"
	"time"

	"cobcast/internal/core"
	"cobcast/internal/pdu"
)

func TestEvictValidation(t *testing.T) {
	e, err := core.New(core.Config{ID: 0, N: 3, DisableDeferredConfirm: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Evict(0, 0); !errors.Is(err, core.ErrSelfEvict) {
		t.Errorf("self-evict: %v", err)
	}
	if _, err := e.Evict(5, 0); err == nil {
		t.Error("out-of-range evict accepted")
	}
	if e.Evicted(1) {
		t.Error("entity 1 evicted without cause")
	}
	if _, err := e.Evict(1, 0); err != nil {
		t.Fatal(err)
	}
	if !e.Evicted(1) {
		t.Error("eviction not recorded")
	}
	// Idempotent.
	if _, err := e.Evict(1, 0); err != nil {
		t.Fatal(err)
	}
	if e.Stats().Evicted != 1 {
		t.Errorf("Evicted = %d, want 1", e.Stats().Evicted)
	}
}

// TestEvictUnblocksAcknowledgment reproduces the failure the extension
// exists for: a silent third entity freezes the 2-entity exchange's
// acknowledgments; evicting it releases the deliveries immediately.
func TestEvictUnblocksAcknowledgment(t *testing.T) {
	ents := newScriptCluster(t, 3)
	e0, e1 := ents[0], ents[1]

	// A full exchange between e0 and e1, with entity 2 dead silent.
	p := submit(t, e0, "payload")
	receive(t, e1, p)
	carriers := []*pdu.PDU{
		submit(t, e1, "c1"), // e1 confirms p
	}
	receive(t, e0, carriers[0])
	carriers = append(carriers, submit(t, e0, "c2"))
	receive(t, e1, carriers[1])
	carriers = append(carriers, submit(t, e1, "c3"))
	out := receive(t, e0, carriers[2])

	// Entity 2 never confirmed anything: nothing can be delivered.
	if len(out.Deliveries) != 0 {
		t.Fatalf("deliveries with a dead quorum member: %v", out.Deliveries)
	}
	if got := e0.MinAL(0); got != 1 {
		t.Fatalf("minAL_0 = %d with silent member, want 1", got)
	}

	// Evict the dead entity at both survivors: the quorum shrinks and
	// the pipeline drains.
	evOut, err := e0.Evict(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range evOut.Deliveries {
		if d.Src == 0 && string(d.Data) == "payload" {
			found = true
		}
	}
	if !found {
		t.Fatalf("eviction did not unblock delivery: %v", evOut.Deliveries)
	}
	if _, err := e1.Evict(2, 0); err != nil {
		t.Fatal(err)
	}
}

// TestAutoSuspicion lets the suspicion timer evict a peer that stays
// silent while confirmations are owed.
func TestAutoSuspicion(t *testing.T) {
	cfg := core.Config{
		ID: 0, N: 3,
		DeferredAckInterval: time.Millisecond,
		SuspectAfter:        50 * time.Millisecond,
	}
	e0, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ID = 1
	e1, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// e0 broadcasts; e1 responds; entity 2 stays dead. Exchange their
	// PDUs and tick past the suspicion timeout.
	now := time.Duration(0)
	outs := e0.Submit([]byte("m"), now)
	pending := outs.PDUs
	var delivered int
	for i := 0; i < 200; i++ {
		now += 2 * time.Millisecond
		var next []*pdu.PDU
		for _, p := range pending {
			if p.Src == 0 {
				o, err := e1.Receive(p.Clone(), now)
				if err != nil {
					t.Fatal(err)
				}
				next = append(next, o.PDUs...)
			} else {
				o, err := e0.Receive(p.Clone(), now)
				if err != nil {
					t.Fatal(err)
				}
				delivered += len(o.Deliveries)
				next = append(next, o.PDUs...)
			}
		}
		o0 := e0.Tick(now)
		delivered += len(o0.Deliveries)
		o1 := e1.Tick(now)
		pending = append(next, append(o0.PDUs, o1.PDUs...)...)
	}
	if !e0.Evicted(2) || !e1.Evicted(2) {
		t.Fatalf("silent entity not suspected: e0=%v e1=%v (stats %+v)",
			e0.Evicted(2), e1.Evicted(2), e0.Stats())
	}
	if e0.Stats().AutoSuspected == 0 {
		t.Error("AutoSuspected not counted")
	}
	if delivered == 0 {
		t.Error("message never delivered after suspicion")
	}
}

// TestNoSuspicionWhenQuiescent ensures idle silence is never suspicious.
func TestNoSuspicionWhenQuiescent(t *testing.T) {
	e, err := core.New(core.Config{
		ID: 0, N: 3,
		DeferredAckInterval: time.Millisecond,
		SuspectAfter:        10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 100; i++ {
		e.Tick(time.Duration(i) * 10 * time.Millisecond)
	}
	if e.Evicted(1) || e.Evicted(2) {
		t.Error("quiescent entity suspected its peers")
	}
}
