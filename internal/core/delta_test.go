package core

// Differential check of the ACK-delta fold fast paths (wire codec v2):
// two mirrored clusters run the same randomized lossy/duplicating
// schedule, but one of them receives every PDU with the Delta hint a v2
// decoder would attach (the changed indices relative to the same
// source's previous contiguously delivered sequenced PDU). The fast
// paths claim to be exact, so after every step the two clusters' entire
// fold state — AL, PAL, known, cached minima, stats and emitted PDUs —
// must be identical.

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"cobcast/internal/pdu"
)

// deltaRef mirrors the v2 decoder's per-(receiver, source) stamp cache.
type deltaRef struct {
	seq   pdu.Seq
	ack   []pdu.Seq
	valid bool
}

// hint attaches the Delta a v2 decoder would have produced for p, and
// advances the cache the way the decoder does (forward only, deltas only
// along contiguous chains). Non-contiguous PDUs are delivered with a nil
// Delta — the full-stamp sync-point case.
func (r *deltaRef) hint(p *pdu.PDU) {
	p.Delta = nil
	if !p.Kind.Sequenced() {
		return
	}
	if r.valid && len(r.ack) == len(p.ACK) && p.SEQ == r.seq+1 {
		d := make([]pdu.Seq, 0, len(p.ACK))
		for i := range p.ACK {
			if p.ACK[i] != r.ack[i] {
				d = append(d, pdu.Seq(i))
			}
		}
		p.Delta = d
	}
	if !r.valid || p.SEQ > r.seq {
		r.seq = p.SEQ
		r.ack = append(r.ack[:0], p.ACK...)
		r.valid = true
	}
}

func TestDeltaFoldEquivalence(t *testing.T) {
	deltas := 0 // PDUs delivered with a Delta hint, across all seeds
	for seed := int64(1); seed <= 30; seed++ {
		rng := rand.New(rand.NewSource(seed * 104729))
		n := 2 + rng.Intn(5)
		mk := func(dense bool) []*Entity {
			ents := make([]*Entity, n)
			for i := range ents {
				e, err := New(Config{
					ID: pdu.EntityID(i), N: n,
					Window:              pdu.Seq(1 + int(seed)%4),
					DeferredAckInterval: time.Millisecond,
					RetransmitTimeout:   2 * time.Millisecond,
					DenseFold:           dense,
				})
				if err != nil {
					t.Fatal(err)
				}
				ents[i] = e
			}
			return ents
		}
		// The reference cluster runs with DenseFold so every fold scans
		// all n entries regardless of annotations; the fast cluster
		// additionally receives the decoder-style Delta hints.
		full, fast := mk(true), mk(false)
		refs := make([]deltaRef, n*n) // fast cluster's decode caches

		// Mirrored per-channel queues; indexes [from*n+to].
		fullQ := make([][]*pdu.PDU, n*n)
		fastQ := make([][]*pdu.PDU, n*n)
		route := func(from int, a, b Output) {
			if len(a.PDUs) != len(b.PDUs) {
				t.Fatalf("seed %d: clusters diverged: %d vs %d PDUs out", seed, len(a.PDUs), len(b.PDUs))
			}
			for i, p := range a.PDUs {
				if p.String() != b.PDUs[i].String() {
					t.Fatalf("seed %d: clusters emit different PDUs:\n %v\n %v", seed, p, b.PDUs[i])
				}
				for to := 0; to < n; to++ {
					if to != from {
						fullQ[from*n+to] = append(fullQ[from*n+to], p.Clone())
						fastQ[from*n+to] = append(fastQ[from*n+to], b.PDUs[i].Clone())
					}
				}
			}
		}
		check := func(i, step int) {
			a, b := full[i], fast[i]
			if !reflect.DeepEqual(a.al, b.al) || !reflect.DeepEqual(a.pal, b.pal) ||
				!reflect.DeepEqual(a.known, b.known) ||
				!reflect.DeepEqual(a.minAL, b.minAL) || !reflect.DeepEqual(a.minPAL, b.minPAL) ||
				!reflect.DeepEqual(a.req, b.req) {
				t.Fatalf("seed %d step %d entity %d: fold state diverged\nal   %v vs %v\npal  %v vs %v\nknown %v vs %v",
					seed, step, i, a.al, b.al, a.pal, b.pal, a.known, b.known)
			}
			if a.Stats() != b.Stats() {
				t.Fatalf("seed %d step %d entity %d: stats diverged\n %+v\n %+v", seed, step, i, a.Stats(), b.Stats())
			}
		}
		now := time.Duration(0)
		for step := 0; step < 500; step++ {
			now += time.Duration(rng.Intn(1500)) * time.Microsecond
			i := rng.Intn(n)
			switch rng.Intn(8) {
			case 0, 1:
				route(i, full[i].Submit([]byte{byte(step)}, now), fast[i].Submit([]byte{byte(step)}, now))
			case 2:
				route(i, full[i].Tick(now), fast[i].Tick(now))
			default:
				from := rng.Intn(n)
				qa, qb := &fullQ[from*n+i], &fastQ[from*n+i]
				if len(*qa) == 0 {
					continue
				}
				pa, pb := (*qa)[0], (*qb)[0]
				action := rng.Intn(4)
				if action == 0 { // loss
					*qa, *qb = (*qa)[1:], (*qb)[1:]
					continue
				}
				if action != 1 { // 1 = duplicate: keep head queued
					*qa, *qb = (*qa)[1:], (*qb)[1:]
				}
				pa, pb = pa.Clone(), pb.Clone()
				refs[i*n+from].hint(pb)
				if pb.Delta != nil {
					deltas++
				}
				outA, errA := full[i].Receive(pa, now)
				outB, errB := fast[i].Receive(pb, now)
				if (errA == nil) != (errB == nil) {
					t.Fatalf("seed %d step %d: receive errors diverged: %v vs %v", seed, step, errA, errB)
				}
				if errA != nil {
					continue
				}
				route(i, outA, outB)
			}
			check(i, step)
		}
	}
	if deltas < 100 {
		t.Fatalf("schedules exercised the delta fast path only %d times", deltas)
	}
}
