package core

// White-box invariant checks. A cluster of entities is driven through a
// random but causally consistent schedule (submissions, per-sender-order
// deliveries with loss and duplication, ticks), and after every single
// step each entity's internal state is checked against the protocol's
// structural invariants.

import (
	"math/rand"
	"testing"
	"time"

	"cobcast/internal/msglog"
	"cobcast/internal/pdu"
)

// checkInvariants asserts the structural invariants of one entity.
func checkInvariants(t *testing.T, e *Entity, step int) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("step %d entity %d: "+format, append([]any{step, e.me}, args...)...)
	}

	// SEQ is always one past the last self-accepted PDU.
	if e.req[e.me] != e.seq {
		fail("req[self]=%d != seq=%d", e.req[e.me], e.seq)
	}
	for k := 0; k < e.n; k++ {
		// Own AL column is exactly REQ (direct knowledge).
		if e.al[k][e.me] != e.req[k] {
			fail("al[%d][self]=%d != req=%d", k, e.al[k][e.me], e.req[k])
		}
		// known is at least REQ (we know what we accepted).
		if e.known[k] < e.req[k] {
			fail("known[%d]=%d < req=%d", k, e.known[k], e.req[k])
		}
		for j := 0; j < e.n; j++ {
			// PAL folds a subset of AL's folds: PAL ≤ AL pointwise.
			if e.pal[k][j] > e.al[k][j] {
				fail("pal[%d][%d]=%d > al=%d", k, j, e.pal[k][j], e.al[k][j])
			}
			// Nobody can expect more from k than k has sent — and we can
			// only know as much as we have seen.
			if e.al[k][j] < 1 {
				fail("al[%d][%d]=%d < 1", k, j, e.al[k][j])
			}
		}
		// Committed never outruns the pre-acknowledgment pipeline:
		// commit requires ack requires preack requires acceptance.
		if e.committed[k] >= e.req[k] {
			fail("committed[%d]=%d >= req=%d", k, e.committed[k], e.req[k])
		}
		// RRL holds a contiguous run ending at req-1.
		if l := e.rrl[k].Len(); l > 0 {
			last := e.rrl[k].At(l - 1)
			if last.SEQ != e.req[k]-1 {
				fail("rrl[%d] tail seq %d, want %d", k, last.SEQ, e.req[k]-1)
			}
			for i := 1; i < l; i++ {
				if e.rrl[k].At(i).SEQ != e.rrl[k].At(i-1).SEQ+1 {
					fail("rrl[%d] not contiguous at %d", k, i)
				}
			}
			// Everything still in RRL is at or above the PACK threshold.
			if top := e.rrl[k].Top(); top.SEQ < e.MinAL(pdu.EntityID(k)) {
				fail("rrl[%d] top %d below minAL %d (pack not drained)",
					k, top.SEQ, e.MinAL(pdu.EntityID(k)))
			}
		}
		// Parked PDUs are strictly beyond REQ.
		for s := range e.parked[k] {
			if s < e.req[k] {
				fail("parked[%d] holds stale seq %d < req %d", k, s, e.req[k])
			}
		}
	}
	// Cached quorum minima always equal a from-scratch recomputation
	// (the equivalence invariant pinning the incremental-minima scheme),
	// and the cached holder counts match the matrices.
	for k := 0; k < e.n; k++ {
		if want := e.quorumMin(e.al[k]); e.minAL[k] != want {
			fail("cached minAL[%d]=%d != quorumMin=%d", k, e.minAL[k], want)
		}
		if want := e.quorumMin(e.pal[k]); e.minPAL[k] != want {
			fail("cached minPAL[%d]=%d != quorumMin=%d", k, e.minPAL[k], want)
		}
		alCnt, palCnt := 0, 0
		for j := 0; j < e.n; j++ {
			if e.evicted[j] {
				continue
			}
			if e.al[k][j] == e.minAL[k] {
				alCnt++
			}
			if e.pal[k][j] == e.minPAL[k] {
				palCnt++
			}
		}
		if alCnt != e.minALCnt[k] {
			fail("minALCnt[%d]=%d, %d cells at minimum", k, e.minALCnt[k], alCnt)
		}
		if palCnt != e.minPALCnt[k] {
			fail("minPALCnt[%d]=%d, %d cells at minimum", k, e.minPALCnt[k], palCnt)
		}
	}
	// The commit stage holds, per source, acknowledged PDUs sorted by
	// SEQ, all above the committed frontier. Gaps are legal: the
	// Theorem 4.1 test is not transitive under loss, so a successor can
	// pass the ACK condition before a still-missing predecessor.
	for k := 0; k < e.n; k++ {
		prev := e.committed[k]
		for i := 0; i < e.ackedQ[k].Len(); i++ {
			p := e.ackedQ[k].At(i)
			if p.Src != pdu.EntityID(k) {
				fail("ackedQ[%d] holds foreign PDU %v", k, p)
			}
			if p.SEQ <= prev {
				fail("ackedQ[%d][%d] seq %d not above %d", k, i, p.SEQ, prev)
			}
			prev = p.SEQ
		}
	}
	// PRL is causality-preserved under the Theorem 4.1 relation.
	if prl := e.prl.Slice(); !msglog.IsCausalityPreserved(prl) {
		fail("PRL not causality-preserved: %v", prl)
	}
	// Send log only holds PDUs we actually sent, above the trim mark.
	for s, p := range e.sendlog {
		if s < e.sendLo || s >= e.seq {
			fail("sendlog seq %d outside [%d,%d)", s, e.sendLo, e.seq)
		}
		if p.Src != e.me {
			fail("sendlog holds foreign PDU %v", p)
		}
	}
	// Cached counters agree with the structures they cache.
	parkedTotal := 0
	for k := 0; k < e.n; k++ {
		parkedTotal += len(e.parked[k])
	}
	if parkedTotal != e.parkedTotal {
		fail("parkedTotal cache %d != %d", e.parkedTotal, parkedTotal)
	}
	rrlTotal := 0
	for k := 0; k < e.n; k++ {
		rrlTotal += e.rrl[k].Len()
	}
	if rrlTotal != e.rrlTotal {
		fail("rrlTotal cache %d != %d", e.rrlTotal, rrlTotal)
	}
	toPending := 0
	if e.to != nil {
		toPending = e.to.pending.Len()
		// Logical times per source are contiguous with commits.
		for k := 0; k < e.n; k++ {
			if got := e.to.base[k] + pdu.Seq(len(e.to.ltimes[k])); got != e.committed[k]+1 {
				fail("ltime history for %d covers to %d, committed %d", k, got-1, e.committed[k])
			}
		}
	}
	ackedTotal := 0
	for k := 0; k < e.n; k++ {
		ackedTotal += e.ackedQ[k].Len()
	}
	if ackedTotal != e.ackedTotal {
		fail("ackedTotal cache %d != %d", e.ackedTotal, ackedTotal)
	}
	if e.Resident() != parkedTotal+rrlTotal+e.prl.Len()+ackedTotal+toPending {
		fail("Resident() inconsistent")
	}
	// The sparse-engine bitmaps always mirror the dense state they cache.
	for k := 0; k < e.n; k++ {
		if got := e.reqStamp.Get(k); got != uint64(e.req[k]) {
			fail("reqStamp[%d]=%d != req=%d", k, got, e.req[k])
		}
		if got, want := e.alive.Test(k), !e.evicted[k]; got != want {
			fail("alive[%d]=%v, evicted=%v", k, got, e.evicted[k])
		}
		gap := k != int(e.me) && !e.evicted[k] && e.known[k] > e.req[k]
		if got := e.gapBits.Test(k); got != gap {
			fail("gapBits[%d]=%v, known=%d req=%d evicted=%v",
				k, got, e.known[k], e.req[k], e.evicted[k])
		}
		if got, want := e.ackedBits.Test(k), e.ackedQ[k].Len() > 0; got != want {
			fail("ackedBits[%d]=%v, ackedQ len %d", k, got, e.ackedQ[k].Len())
		}
		// unheard only ever marks live peers (never self, never evicted).
		if e.unheard.Test(k) && (k == int(e.me) || e.evicted[k]) {
			fail("unheard[%d] set for self/evicted", k)
		}
	}
	// When the total-order head cache is armed it matches a fresh
	// recomputation of the unsatisfied-source set for its key.
	if e.to != nil && e.to.unsatValid {
		s := e.to
		for k := 0; k < e.n; k++ {
			want := pdu.EntityID(k) != s.unsatFor.src && !e.evicted[k] &&
				(!s.hasKey[k] || !s.unsatFor.less(s.lastKey[k]))
			if got := s.unsat.Test(k); got != want {
				fail("to.unsat[%d]=%v, want %v (head key %v)", k, got, want, s.unsatFor)
			}
		}
	}
}

// TestInvariantsRandomWalk drives random schedules and checks invariants
// after every step, in both CO and TO modes, with occasional evictions.
func TestInvariantsRandomWalk(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		seed := seed
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		totalOrder := seed%3 == 0
		allowEvict := n > 2 && seed%4 == 0
		ents := make([]*Entity, n)
		for i := range ents {
			e, err := New(Config{
				ID: pdu.EntityID(i), N: n,
				Window:              pdu.Seq(1 + rng.Intn(6)),
				DeferredAckInterval: time.Millisecond,
				RetransmitTimeout:   2 * time.Millisecond,
				TotalOrder:          totalOrder,
			})
			if err != nil {
				t.Fatal(err)
			}
			ents[i] = e
		}
		// Per-channel FIFO queues (the MC service), with loss and
		// duplication applied at dequeue.
		queues := make([][]*pdu.PDU, n*n) // queues[from*n+to]
		now := time.Duration(0)
		route := func(from int, out Output) {
			for _, p := range out.PDUs {
				for to := 0; to < n; to++ {
					if to != from {
						queues[from*n+to] = append(queues[from*n+to], p.Clone())
					}
				}
			}
		}
		const steps = 400
		for step := 0; step < steps; step++ {
			now += time.Duration(rng.Intn(500)) * time.Microsecond
			i := rng.Intn(n)
			switch rng.Intn(10) {
			case 0, 1: // submit
				route(i, ents[i].Submit([]byte{byte(step)}, now))
			case 2: // tick
				route(i, ents[i].Tick(now))
				// Occasionally evict the last entity at everyone.
				if allowEvict && step > 300 && !ents[i].Evicted(pdu.EntityID(n-1)) &&
					pdu.EntityID(i) != pdu.EntityID(n-1) {
					out, err := ents[i].Evict(pdu.EntityID(n-1), now)
					if err != nil {
						t.Fatal(err)
					}
					route(i, out)
				}
			default: // deliver the head of a random incoming channel
				from := rng.Intn(n)
				q := &queues[from*n+i]
				if len(*q) == 0 {
					continue
				}
				p := (*q)[0]
				switch rng.Intn(10) {
				case 0: // lose it
					*q = (*q)[1:]
				case 1: // duplicate: deliver without popping
					out, err := ents[i].Receive(p, now)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					route(i, out)
				default:
					*q = (*q)[1:]
					out, err := ents[i].Receive(p, now)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					route(i, out)
				}
			}
			checkInvariants(t, ents[i], step)
		}
		// Final pass over every entity.
		for _, e := range ents {
			checkInvariants(t, e, steps)
		}
	}
}

// TestInvariantsUnderTargetedReplay aims duplication at retransmissions:
// a lost PDU is repaired twice and the repair itself is duplicated.
func TestInvariantsUnderTargetedReplay(t *testing.T) {
	ents := make([]*Entity, 2)
	for i := range ents {
		e, err := New(Config{ID: pdu.EntityID(i), N: 2, DisableDeferredConfirm: true})
		if err != nil {
			t.Fatal(err)
		}
		ents[i] = e
	}
	out := ents[0].Submit([]byte("m1"), 0)
	p1 := out.PDUs[0]
	out = ents[0].Submit([]byte("m2"), 0)
	p2 := out.PDUs[0]

	// p1 lost; p2 reveals the gap.
	rout, err := ents[1].Receive(p2.Clone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ret := rout.PDUs[0]
	// The RET arrives twice (delayed duplicate) after the timeout.
	r1, err := ents[0].Receive(ret.Clone(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ents[0].Receive(ret.Clone(), 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	// Both repair copies arrive, plus the original p1 very late, plus p2
	// again.
	for _, p := range []*pdu.PDU{r1.PDUs[0], r1.PDUs[0], p1, p2} {
		if _, err := ents[1].Receive(p.Clone(), 0); err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, ents[1], 0)
	}
	if got := ents[1].REQ()[0]; got != 3 {
		t.Fatalf("REQ after replay storm = %d, want 3", got)
	}
	if ents[1].Stats().Accepted != 2 {
		t.Fatalf("Accepted = %d, want 2", ents[1].Stats().Accepted)
	}
}

// TestCachedMinimaEquivalence hammers the incremental minAL/minPAL caches
// specifically: a heavily lossy, duplicating, jittery random run — with
// evictions, the full-recompute site — checking after every single
// Submit/Receive/Tick that every cached minimum equals the naive
// quorumMin recomputation.
func TestCachedMinimaEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed * 7919))
		n := 2 + rng.Intn(5)
		ents := make([]*Entity, n)
		for i := range ents {
			e, err := New(Config{
				ID: pdu.EntityID(i), N: n,
				Window:              pdu.Seq(1 + rng.Intn(4)),
				DeferredAckInterval: time.Millisecond,
				RetransmitTimeout:   2 * time.Millisecond,
				SuspectAfter:        time.Duration(50+rng.Intn(100)) * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			ents[i] = e
		}
		check := func(i int, step int) {
			e := ents[i]
			for k := 0; k < e.n; k++ {
				if want := e.quorumMin(e.al[k]); e.minAL[k] != want {
					t.Fatalf("seed %d step %d entity %d: cached minAL[%d]=%d != quorumMin=%d",
						seed, step, i, k, e.minAL[k], want)
				}
				if want := e.quorumMin(e.pal[k]); e.minPAL[k] != want {
					t.Fatalf("seed %d step %d entity %d: cached minPAL[%d]=%d != quorumMin=%d",
						seed, step, i, k, e.minPAL[k], want)
				}
			}
		}
		queues := make([][]*pdu.PDU, n*n)
		now := time.Duration(0)
		route := func(from int, out Output) {
			for _, p := range out.PDUs {
				for to := 0; to < n; to++ {
					if to != from {
						queues[from*n+to] = append(queues[from*n+to], p.Clone())
					}
				}
			}
		}
		for step := 0; step < 600; step++ {
			now += time.Duration(rng.Intn(2000)) * time.Microsecond // jitter
			i := rng.Intn(n)
			switch rng.Intn(8) {
			case 0, 1:
				route(i, ents[i].Submit([]byte{byte(step)}, now))
			case 2:
				route(i, ents[i].Tick(now)) // may auto-evict: recompute site
			default:
				from := rng.Intn(n)
				q := &queues[from*n+i]
				if len(*q) == 0 {
					continue
				}
				p := (*q)[0]
				switch rng.Intn(4) {
				case 0: // lose it (heavy loss)
					*q = (*q)[1:]
				case 1: // duplicate: deliver without popping
					out, err := ents[i].Receive(p, now)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					route(i, out)
				default:
					*q = (*q)[1:]
					out, err := ents[i].Receive(p, now)
					if err != nil {
						t.Fatalf("seed %d: %v", seed, err)
					}
					route(i, out)
				}
			}
			check(i, step)
		}
	}
}
