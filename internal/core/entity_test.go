package core_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cobcast/internal/core"
	"cobcast/internal/msglog"
	"cobcast/internal/pdu"
)

// scriptConfig returns a configuration for hand-routed protocol scripts:
// deferred confirmation off so every PDU on the wire is explicit.
func scriptConfig(id pdu.EntityID, n int) core.Config {
	return core.Config{
		ID: id, N: n,
		Window:                 64,
		DisableDeferredConfirm: true,
	}
}

func newScriptCluster(t *testing.T, n int) []*core.Entity {
	t.Helper()
	ents := make([]*core.Entity, n)
	for i := range ents {
		e, err := core.New(scriptConfig(pdu.EntityID(i), n))
		if err != nil {
			t.Fatalf("New(%d): %v", i, err)
		}
		ents[i] = e
	}
	return ents
}

// submit broadcasts data from e and asserts exactly one PDU results.
func submit(t *testing.T, e *core.Entity, data string) *pdu.PDU {
	t.Helper()
	out := e.Submit([]byte(data), 0)
	if len(out.PDUs) != 1 {
		t.Fatalf("Submit at %d produced %d PDUs, want 1", e.ID(), len(out.PDUs))
	}
	return out.PDUs[0]
}

// receive hands p to e and fails the test on error.
func receive(t *testing.T, e *core.Entity, p *pdu.PDU) core.Output {
	t.Helper()
	out, err := e.Receive(p.Clone(), 0)
	if err != nil {
		t.Fatalf("Receive at %d: %v", e.ID(), err)
	}
	return out
}

func wantACK(t *testing.T, name string, p *pdu.PDU, seq pdu.Seq, ack ...pdu.Seq) {
	t.Helper()
	if p.SEQ != seq {
		t.Errorf("%s.SEQ = %d, want %d", name, p.SEQ, seq)
	}
	for i, a := range ack {
		if p.ACK[i] != a {
			t.Errorf("%s.ACK = %v, want %v", name, p.ACK, ack)
			return
		}
	}
}

// TestExample41Table1 replays the Figure 7 exchange and checks every SEQ
// and ACK field against Table 1 of the paper, then checks E3's resulting
// protocol state against Example 4.1: REQ = <5,3,3> and
// PRL = <a c b d e] with f, g, h still awaiting pre-acknowledgment.
func TestExample41Table1(t *testing.T) {
	ents := newScriptCluster(t, 3)
	e1, e2, e3 := ents[0], ents[1], ents[2]

	a := submit(t, e1, "a")
	wantACK(t, "a", a, 1, 1, 1, 1)

	receive(t, e3, a)
	b := submit(t, e3, "b")
	wantACK(t, "b", b, 1, 2, 1, 1)

	c := submit(t, e1, "c")
	wantACK(t, "c", c, 2, 2, 1, 1)

	receive(t, e2, a)
	receive(t, e2, c)
	receive(t, e2, b)
	d := submit(t, e2, "d")
	wantACK(t, "d", d, 1, 3, 1, 2)

	receive(t, e1, d)
	receive(t, e1, b)
	e := submit(t, e1, "e")
	wantACK(t, "e", e, 3, 3, 2, 2)

	f := submit(t, e1, "f")
	wantACK(t, "f", f, 4, 4, 2, 2)

	receive(t, e2, e)
	g := submit(t, e2, "g")
	wantACK(t, "g", g, 2, 4, 2, 2)

	// E3 receives the rest of the exchange and broadcasts h. Collect its
	// deliveries: the ACK action runs eagerly, so acknowledgments land
	// during these receipts.
	var delivered []core.Delivery
	collect := func(out core.Output) { delivered = append(delivered, out.Deliveries...) }

	collect(receive(t, e3, c))
	collect(receive(t, e3, d))

	// Example 4.1 checkpoint: after accepting a, c, d (plus own b),
	// REQ = <3,2,2> and a is pre-acknowledged (minAL_1 = 2 > a.SEQ).
	if got := e3.REQ(); got[0] != 3 || got[1] != 2 || got[2] != 2 {
		t.Errorf("E3 REQ = %v, want [3 2 2]", got)
	}
	if got := e3.MinAL(0); got != 2 {
		t.Errorf("E3 minAL_1 = %d, want 2", got)
	}
	if prl := e3.PRLSnapshot(); len(prl) != 1 || prl[0].SEQ != 1 || prl[0].Src != 0 {
		t.Errorf("E3 PRL = %v, want just a", prl)
	}

	collect(receive(t, e3, e))
	collect(receive(t, e3, f))
	collect(receive(t, e3, g))
	h := submit(t, e3, "h")
	wantACK(t, "h", h, 2, 5, 3, 2)

	// Example 4.1 end state at E3: REQ = <5,3,3>. The five PDUs
	// {a, c, b, d, e} were pre-acknowledged into PRL in the paper's CPI
	// order <a c b d e]; the ACK action has delivered a (minPAL_1 = 2
	// passed its SEQ), leaving PRL = <c b d e].
	if got := e3.REQ(); got[0] != 5 || got[1] != 3 || got[2] != 3 {
		t.Errorf("E3 REQ = %v, want [5 3 3]", got)
	}
	if len(delivered) != 1 || delivered[0].Src != 0 || delivered[0].SEQ != 1 ||
		string(delivered[0].Data) != "a" {
		t.Fatalf("E3 delivered %v, want just a", delivered)
	}
	prl := e3.PRLSnapshot()
	wantPRL := []struct {
		src pdu.EntityID
		seq pdu.Seq
	}{{0, 2}, {2, 1}, {1, 1}, {0, 3}} // c b d e
	if len(prl) != len(wantPRL) {
		t.Fatalf("E3 PRL has %d PDUs (%v), want 4 (c b d e)", len(prl), prl)
	}
	for i, w := range wantPRL {
		if prl[i].Src != w.src || prl[i].SEQ != w.seq {
			t.Errorf("PRL[%d] = s%d#%d, want s%d#%d", i, prl[i].Src, prl[i].SEQ, w.src, w.seq)
		}
	}
	if !msglog.IsCausalityPreserved(prl) {
		t.Error("E3 PRL is not causality-preserved")
	}
	// f, g and h are accepted but not yet pre-acknowledged.
	if e3.RRLLen(0) != 1 || e3.RRLLen(1) != 1 || e3.RRLLen(2) != 1 {
		t.Errorf("E3 RRL lengths = %d,%d,%d, want 1,1,1",
			e3.RRLLen(0), e3.RRLLen(1), e3.RRLLen(2))
	}
	// Acknowledgment thresholds after the exchange: only E1's PDUs below
	// 2 (just a) are known pre-acknowledged everywhere.
	wantMinPAL := []pdu.Seq{2, 1, 1}
	for k := pdu.EntityID(0); k < 3; k++ {
		if got := e3.MinPAL(k); got != wantMinPAL[k] {
			t.Errorf("E3 minPAL_%d = %d, want %d", k+1, got, wantMinPAL[k])
		}
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name    string
		cfg     core.Config
		wantErr error
	}{
		{"valid", core.Config{ID: 0, N: 2}, nil},
		{"one entity", core.Config{ID: 0, N: 1}, core.ErrBadCluster},
		{"zero entities", core.Config{}, core.ErrBadCluster},
		{"id negative", core.Config{ID: -1, N: 3}, core.ErrBadID},
		{"id too large", core.Config{ID: 3, N: 3}, core.ErrBadID},
		{"no credit", core.Config{ID: 0, N: 4, BufferUnits: 7}, core.ErrNoCredit},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := core.New(tt.cfg)
			if tt.wantErr == nil {
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				return
			}
			if !errors.Is(err, tt.wantErr) {
				t.Fatalf("New = %v, want %v", err, tt.wantErr)
			}
		})
	}
}

func TestReceiveRejectsBadPDUs(t *testing.T) {
	e, err := core.New(core.Config{ID: 0, N: 2, ClusterID: 7, DisableDeferredConfirm: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Run("nil", func(t *testing.T) {
		if _, err := e.Receive(nil, 0); !errors.Is(err, core.ErrNilPDU) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("wrong cluster", func(t *testing.T) {
		p := &pdu.PDU{Kind: pdu.KindSync, CID: 8, Src: 1, SEQ: 1, ACK: []pdu.Seq{1, 1}}
		if _, err := e.Receive(p, 0); !errors.Is(err, core.ErrWrongCluster) {
			t.Errorf("got %v", err)
		}
	})
	t.Run("structurally invalid", func(t *testing.T) {
		p := &pdu.PDU{Kind: pdu.KindData, CID: 7, Src: 1, SEQ: 0, ACK: []pdu.Seq{1, 1}}
		if _, err := e.Receive(p, 0); err == nil {
			t.Error("invalid PDU accepted")
		}
	})
	if got := e.Stats().InvalidPDUs; got != 3 {
		t.Errorf("InvalidPDUs = %d, want 3", got)
	}
}

func TestFlowConditionBlocksAndDrains(t *testing.T) {
	n := 2
	cfgs := []core.Config{
		{ID: 0, N: n, Window: 2, DisableDeferredConfirm: true},
		{ID: 1, N: n, Window: 2, DisableDeferredConfirm: true},
	}
	e0, err := core.New(cfgs[0])
	if err != nil {
		t.Fatal(err)
	}
	e1, err := core.New(cfgs[1])
	if err != nil {
		t.Fatal(err)
	}

	out1 := e0.Submit([]byte("m1"), 0)
	out2 := e0.Submit([]byte("m2"), 0)
	out3 := e0.Submit([]byte("m3"), 0)
	if len(out1.PDUs) != 1 || len(out2.PDUs) != 1 {
		t.Fatal("first two submissions should broadcast immediately")
	}
	if len(out3.PDUs) != 0 || e0.PendingSubmits() != 1 {
		t.Fatalf("third submission should block: pdus=%d pending=%d",
			len(out3.PDUs), e0.PendingSubmits())
	}
	if e0.Stats().FlowBlocked != 1 {
		t.Errorf("FlowBlocked = %d, want 1", e0.Stats().FlowBlocked)
	}

	// E1 accepts both and reports via its own broadcast; the window opens
	// and the blocked submission drains.
	receive(t, e1, out1.PDUs[0])
	receive(t, e1, out2.PDUs[0])
	ack := submit(t, e1, "ack-carrier")
	out := receive(t, e0, ack)
	if len(out.PDUs) != 1 || out.PDUs[0].Kind != pdu.KindData || out.PDUs[0].SEQ != 3 {
		t.Fatalf("blocked submission did not drain: %v", out.PDUs)
	}
	if e0.PendingSubmits() != 0 {
		t.Error("pending submission remains")
	}
}

func TestF1GapDetectionAndSelectiveRetransmission(t *testing.T) {
	ents := newScriptCluster(t, 2)
	e0, e1 := ents[0], ents[1]

	p1 := submit(t, e0, "m1")
	p2 := submit(t, e0, "m2")
	p3 := submit(t, e0, "m3")

	// p1 and p2 are lost; p3 arrives and reveals the gap (F condition 1).
	out := receive(t, e1, p3)
	if len(out.PDUs) != 1 || out.PDUs[0].Kind != pdu.KindRet {
		t.Fatalf("expected one RET, got %v", out.PDUs)
	}
	ret := out.PDUs[0]
	if ret.LSrc != 0 || ret.LSeq != 3 || ret.ACK[0] != 1 {
		t.Errorf("RET = %v, want lost=s0 range [1,3)", ret)
	}
	if e1.Stats().Parked != 1 {
		t.Errorf("Parked = %d, want 1", e1.Stats().Parked)
	}

	// The source rebroadcasts exactly the missing PDUs, bit-identical.
	out = receive(t, e0, ret)
	if len(out.PDUs) != 2 {
		t.Fatalf("retransmitted %d PDUs, want 2 (selective)", len(out.PDUs))
	}
	if out.PDUs[0].SEQ != 1 || out.PDUs[1].SEQ != 2 {
		t.Errorf("retransmitted seqs %d,%d want 1,2", out.PDUs[0].SEQ, out.PDUs[1].SEQ)
	}
	if string(out.PDUs[0].Data) != "m1" || out.PDUs[0].ACK[0] != p1.ACK[0] {
		t.Error("retransmission is not bit-identical to the original")
	}
	if e0.Stats().Retransmitted != 2 {
		t.Errorf("Retransmitted = %d, want 2", e0.Stats().Retransmitted)
	}

	// Repair arrives: all three accepted in order.
	receive(t, e1, out.PDUs[0])
	receive(t, e1, out.PDUs[1])
	if got := e1.REQ()[0]; got != 4 {
		t.Errorf("after repair REQ_0 = %d, want 4", got)
	}
	if e1.Stats().Accepted != 3 {
		t.Errorf("Accepted = %d, want 3", e1.Stats().Accepted)
	}
	_ = p2
}

func TestF2GapDetectionViaThirdParty(t *testing.T) {
	ents := newScriptCluster(t, 3)
	e0, e1, e2 := ents[0], ents[1], ents[2]

	p := submit(t, e0, "p")
	receive(t, e1, p)
	q := submit(t, e1, "q") // q.ACK[0] = 2: q pre-acknowledges p

	// e2 never saw p; q's ACK vector reveals the loss (F condition 2).
	out := receive(t, e2, q)
	var ret *pdu.PDU
	for _, m := range out.PDUs {
		if m.Kind == pdu.KindRet {
			ret = m
		}
	}
	if ret == nil {
		t.Fatalf("no RET emitted: %v", out.PDUs)
	}
	if ret.LSrc != 0 || ret.LSeq != 2 {
		t.Errorf("RET = %v, want lost=s0<2", ret)
	}
	// q itself was accepted (it is in-order from e1).
	if got := e2.REQ()[1]; got != 2 {
		t.Errorf("REQ_1 = %d, want 2", got)
	}
}

func TestDuplicatesIgnored(t *testing.T) {
	ents := newScriptCluster(t, 2)
	e0, e1 := ents[0], ents[1]
	p := submit(t, e0, "m")
	receive(t, e1, p)
	receive(t, e1, p)
	receive(t, e1, p)
	st := e1.Stats()
	if st.Accepted != 1 || st.Duplicates != 2 {
		t.Errorf("Accepted=%d Duplicates=%d, want 1,2", st.Accepted, st.Duplicates)
	}
}

func TestParkedDuplicateIgnored(t *testing.T) {
	ents := newScriptCluster(t, 2)
	e0, e1 := ents[0], ents[1]
	submit(t, e0, "m1") // lost
	p2 := submit(t, e0, "m2")
	receive(t, e1, p2)
	receive(t, e1, p2) // duplicate of a parked PDU
	if st := e1.Stats(); st.Parked != 1 {
		t.Errorf("Parked = %d, want 1", st.Parked)
	}
}

func TestRetRequestRateLimited(t *testing.T) {
	e0, err := core.New(core.Config{ID: 0, N: 2, DisableDeferredConfirm: true,
		RetransmitTimeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	e1, err := core.New(core.Config{ID: 1, N: 2, DisableDeferredConfirm: true,
		RetransmitTimeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	submit(t, e1, "m1") // lost
	p2 := submit(t, e1, "m2")

	out, err := e0.Receive(p2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PDUs) != 1 || out.PDUs[0].Kind != pdu.KindRet {
		t.Fatalf("first receive: %v", out.PDUs)
	}
	// Within the timeout: ticks must not re-request.
	out = e0.Tick(5 * time.Millisecond)
	if len(out.PDUs) != 0 {
		t.Fatalf("re-requested within timeout: %v", out.PDUs)
	}
	// After the timeout the RET is retried.
	out = e0.Tick(15 * time.Millisecond)
	if len(out.PDUs) != 1 || out.PDUs[0].Kind != pdu.KindRet {
		t.Fatalf("no retry after timeout: %v", out.PDUs)
	}
	if e0.Stats().RetSent != 2 {
		t.Errorf("RetSent = %d, want 2", e0.Stats().RetSent)
	}
}

func TestRetransmissionRateLimited(t *testing.T) {
	ents := newScriptCluster(t, 2)
	e0, e1 := ents[0], ents[1]
	submit(t, e0, "m1") // lost
	p2 := submit(t, e0, "m2")
	out := receive(t, e1, p2)
	ret := out.PDUs[0]

	out = receive(t, e0, ret)
	if len(out.PDUs) != 1 {
		t.Fatalf("first RET: %d PDUs", len(out.PDUs))
	}
	out = receive(t, e0, ret) // duplicate RET at the same instant
	if len(out.PDUs) != 0 {
		t.Errorf("duplicate RET amplified traffic: %v", out.PDUs)
	}
}

func TestSendLogTrimsAfterPreack(t *testing.T) {
	ents := newScriptCluster(t, 2)
	e0, e1 := ents[0], ents[1]
	p := submit(t, e0, "m")
	if e0.SendLogLen() != 1 {
		t.Fatalf("SendLogLen = %d, want 1", e0.SendLogLen())
	}
	receive(t, e1, p)
	ack := submit(t, e1, "carrier")
	receive(t, e0, ack)
	// e0 now knows both entities accepted p: it is pre-acknowledged and
	// leaves the retransmission log.
	if e0.SendLogLen() != 0 {
		t.Errorf("SendLogLen = %d after preack, want 0", e0.SendLogLen())
	}
}

func TestTwoEntityFullAcknowledgmentAndDelivery(t *testing.T) {
	// Drive a 2-entity cluster to full delivery by exchanging carrier
	// PDUs manually: acceptance, then pre-acknowledgment (one round),
	// then acknowledgment (a second round) — the 2R structure of §5.
	ents := newScriptCluster(t, 2)
	e0, e1 := ents[0], ents[1]

	p := submit(t, e0, "payload")
	var deliveries []core.Delivery

	r1 := receive(t, e1, p)
	deliveries = append(deliveries, r1.Deliveries...)
	c1 := submit(t, e1, "c1") // carries acceptance of p

	r2 := receive(t, e0, c1)
	deliveries = append(deliveries, r2.Deliveries...)
	c2 := submit(t, e0, "c2") // carries acceptance of c1; preacks p at e0

	r3 := receive(t, e1, c2)
	deliveries = append(deliveries, r3.Deliveries...)
	c3 := submit(t, e1, "c3")

	r4 := receive(t, e0, c3)
	deliveries = append(deliveries, r4.Deliveries...)
	c4 := submit(t, e0, "c4")

	r5 := receive(t, e1, c4)
	deliveries = append(deliveries, r5.Deliveries...)

	var got []string
	for _, d := range deliveries {
		got = append(got, fmt.Sprintf("s%d#%d", d.Src, d.SEQ))
	}
	// p must be delivered at both entities, before any later message.
	if len(deliveries) < 2 {
		t.Fatalf("deliveries = %v, want p delivered at both entities", got)
	}
	seen := map[pdu.EntityID]bool{}
	for _, d := range deliveries {
		if d.Src == 0 && d.SEQ == 1 {
			seen[0] = true
		}
	}
	if !seen[0] {
		t.Errorf("p never delivered: %v", got)
	}
	if string(deliveries[0].Data) != "payload" {
		t.Errorf("first delivery data = %q", deliveries[0].Data)
	}
}

func TestAckOnlyWhenWindowClosed(t *testing.T) {
	// With window 1, a second submission is blocked; the deferred-ack
	// timer must fall back to an unsequenced ACKONLY so confirmations
	// still flow.
	e0, err := core.New(core.Config{ID: 0, N: 2, Window: 1,
		DeferredAckInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	out := e0.Submit([]byte("m1"), 0)
	if len(out.PDUs) != 1 {
		t.Fatalf("first submit: %v", out.PDUs)
	}
	out = e0.Submit([]byte("m2"), time.Millisecond)
	if len(out.PDUs) != 0 {
		t.Fatalf("window 1 allowed a second PDU: %v", out.PDUs)
	}
	out = e0.Tick(10 * time.Millisecond)
	if len(out.PDUs) != 1 || out.PDUs[0].Kind != pdu.KindAckOnly {
		t.Fatalf("expected ACKONLY fallback, got %v", out.PDUs)
	}
	if e0.Stats().AckOnlySent != 1 {
		t.Errorf("AckOnlySent = %d, want 1", e0.Stats().AckOnlySent)
	}
}

func TestDeferredSyncAfterHearingAllPeers(t *testing.T) {
	// An idle entity that accepted a DATA PDU from every peer owes the
	// cluster confirmations and emits a SYNC immediately (deferred
	// confirmation trigger 1: heard from everyone since last send).
	e2, err := core.New(core.Config{ID: 2, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	p0 := &pdu.PDU{Kind: pdu.KindData, Src: 0, SEQ: 1, ACK: []pdu.Seq{1, 1, 1},
		NeedAck: true, LSrc: pdu.NoEntity, Data: []byte("x"), BUF: 4096}
	out, err := e2.Receive(p0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PDUs) != 0 {
		t.Fatalf("after one peer: %v (should still wait)", out.PDUs)
	}
	p1 := &pdu.PDU{Kind: pdu.KindData, Src: 1, SEQ: 1, ACK: []pdu.Seq{2, 1, 1},
		NeedAck: true, LSrc: pdu.NoEntity, Data: []byte("y"), BUF: 4096}
	out, err = e2.Receive(p1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PDUs) != 1 || out.PDUs[0].Kind != pdu.KindSync {
		t.Fatalf("after all peers: %v, want one SYNC", out.PDUs)
	}
	if got := out.PDUs[0].ACK; got[0] != 2 || got[1] != 2 || got[2] != 1 {
		t.Errorf("SYNC ACK = %v, want [2 2 1]", got)
	}
}

func TestDeferredSyncOnTimer(t *testing.T) {
	// Hearing from only one of two peers: the SYNC comes from the timer.
	e2, err := core.New(core.Config{ID: 2, N: 3, DeferredAckInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	p0 := &pdu.PDU{Kind: pdu.KindData, Src: 0, SEQ: 1, ACK: []pdu.Seq{1, 1, 1},
		NeedAck: true, LSrc: pdu.NoEntity, Data: []byte("x"), BUF: 4096}
	out, err := e2.Receive(p0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PDUs) != 0 {
		t.Fatalf("immediate: %v", out.PDUs)
	}
	if out := e2.Tick(2 * time.Millisecond); len(out.PDUs) != 0 {
		t.Fatalf("before timer: %v", out.PDUs)
	}
	out2 := e2.Tick(6 * time.Millisecond)
	if len(out2.PDUs) != 1 || out2.PDUs[0].Kind != pdu.KindSync {
		t.Fatalf("after timer: %v, want one SYNC", out2.PDUs)
	}
}

func TestQuiescentEntityStaysSilent(t *testing.T) {
	e, err := core.New(core.Config{ID: 0, N: 2, DeferredAckInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Quiescent() {
		t.Error("fresh entity not quiescent")
	}
	for i := 1; i <= 10; i++ {
		if out := e.Tick(time.Duration(i) * 10 * time.Millisecond); len(out.PDUs) != 0 {
			t.Fatalf("idle entity spoke: %v", out.PDUs)
		}
	}
	// A SYNC that needs no answer does not wake it either.
	s := &pdu.PDU{Kind: pdu.KindSync, Src: 1, SEQ: 1, ACK: []pdu.Seq{1, 1},
		LSrc: pdu.NoEntity, BUF: 4096}
	out, err := e.Receive(s, 200*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PDUs) != 0 {
		t.Errorf("NeedAck=false SYNC provoked a response: %v", out.PDUs)
	}
	if out := e.Tick(300 * time.Millisecond); len(out.PDUs) != 0 {
		t.Errorf("still talking: %v", out.PDUs)
	}
}

func TestNeedAckSyncGetsResponse(t *testing.T) {
	e, err := core.New(core.Config{ID: 0, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := &pdu.PDU{Kind: pdu.KindSync, Src: 1, SEQ: 1, ACK: []pdu.Seq{1, 1},
		NeedAck: true, LSrc: pdu.NoEntity, BUF: 4096}
	out, err := e.Receive(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PDUs) != 1 || out.PDUs[0].Kind != pdu.KindSync {
		t.Fatalf("NeedAck SYNC got %v, want one SYNC response", out.PDUs)
	}
	if out.PDUs[0].NeedAck {
		t.Error("response should not itself demand responses (no data resident)")
	}
}

func TestMaxResidentTracked(t *testing.T) {
	// With a third, silent entity, nothing can be pre-acknowledged, so
	// all accepted PDUs stay resident in e1's RRL.
	ents := newScriptCluster(t, 3)
	e0, e1 := ents[0], ents[1]
	for i := 0; i < 5; i++ {
		receive(t, e1, submit(t, e0, "m"))
	}
	if got := e1.Stats().MaxResident; got < 5 {
		t.Errorf("MaxResident = %d, want >= 5", got)
	}
	if got := e1.Resident(); got < 5 {
		t.Errorf("Resident = %d, want >= 5", got)
	}
	if e1.RRLLen(0) != 5 {
		t.Errorf("RRL(0) = %d, want 5 (third entity silent)", e1.RRLLen(0))
	}
}

// TestLyingACKDoesNotWedge feeds an adversarial PDU whose ACK vector
// claims receipt of PDUs that were never sent. The protocol is not
// Byzantine-tolerant — the lie inflates knowledge — but it must neither
// panic nor block legitimate traffic between honest entities.
func TestLyingACKDoesNotWedge(t *testing.T) {
	ents := newScriptCluster(t, 3)
	e0, e1 := ents[0], ents[1]

	liar := &pdu.PDU{
		Kind: pdu.KindAckOnly, Src: 2,
		ACK: []pdu.Seq{1 << 40, 1 << 40, 1 << 40},
		BUF: 1 << 20, LSrc: pdu.NoEntity,
	}
	receive(t, e0, liar)
	receive(t, e1, liar)

	// Honest exchange still works end to end.
	p := submit(t, e0, "honest")
	receive(t, e1, p)
	c1 := submit(t, e1, "c1")
	out := receive(t, e0, c1)
	_ = out
	if got := e0.REQ()[1]; got != 2 {
		t.Fatalf("REQ after honest exchange = %d, want 2", got)
	}
	if e0.Stats().InvalidPDUs != 0 {
		t.Fatalf("honest traffic rejected: %+v", e0.Stats())
	}
}

// TestRetForUnknownRangeIgnored sends an RET for PDUs never sent: the
// source must not emit anything (nothing in the send log).
func TestRetForUnknownRangeIgnored(t *testing.T) {
	ents := newScriptCluster(t, 2)
	e0 := ents[0]
	ret := &pdu.PDU{
		Kind: pdu.KindRet, Src: 1,
		ACK: []pdu.Seq{5, 1}, LSrc: 0, LSeq: 9,
	}
	out, err := e0.Receive(ret, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PDUs) != 0 {
		t.Fatalf("retransmitted nonexistent PDUs: %v", out.PDUs)
	}
}
