package core_test

import (
	"fmt"
	"testing"
	"time"

	"cobcast/internal/core"
	"cobcast/internal/pdu"
)

// benchPair wires two entities back-to-back, exchanging outputs inline.
func benchExchange(b *testing.B, n int, totalOrder bool) {
	ents := make([]*core.Entity, n)
	for i := range ents {
		e, err := core.New(core.Config{
			ID: pdu.EntityID(i), N: n,
			Window:     1 << 20,
			TotalOrder: totalOrder,
		})
		if err != nil {
			b.Fatal(err)
		}
		ents[i] = e
	}
	payload := make([]byte, 64)
	now := time.Duration(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += time.Microsecond
		src := i % n
		out := ents[src].Submit(payload, now)
		for _, p := range out.PDUs {
			for j := range ents {
				if j == src {
					continue
				}
				o, err := ents[j].Receive(p.Clone(), now)
				if err != nil {
					b.Fatal(err)
				}
				// Second-order traffic is dropped to keep the benchmark
				// focused on the Submit/Receive path cost.
				_ = o
			}
		}
	}
}

// BenchmarkSubmitReceive measures one data broadcast fanned to every
// peer, the protocol's hot path, by cluster size and service level.
func BenchmarkSubmitReceive(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		n := n
		b.Run(fmt.Sprintf("CO/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			benchExchange(b, n, false)
		})
	}
	b.Run("TO/n=4", func(b *testing.B) {
		b.ReportAllocs()
		benchExchange(b, 4, true)
	})
}

// BenchmarkTickIdle measures the cost of a timer tick on a quiescent
// entity (the steady-state background load).
func BenchmarkTickIdle(b *testing.B) {
	e, err := core.New(core.Config{ID: 0, N: 8})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Tick(time.Duration(i) * time.Millisecond)
	}
}

// BenchmarkDuplicateRejection measures the duplicate fast path.
func BenchmarkDuplicateRejection(b *testing.B) {
	e, err := core.New(core.Config{ID: 0, N: 3, DisableDeferredConfirm: true})
	if err != nil {
		b.Fatal(err)
	}
	p := &pdu.PDU{Kind: pdu.KindData, Src: 1, SEQ: 1,
		ACK: []pdu.Seq{1, 1, 1}, LSrc: pdu.NoEntity, Data: []byte("x")}
	if _, err := e.Receive(p.Clone(), 0); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Receive(p, 0); err != nil {
			b.Fatal(err)
		}
	}
}
