package core

import (
	"fmt"
	"time"

	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
)

// Stall analyzer: for anything the entity is holding undelivered,
// report which protocol condition is unmet and which peer it is
// waiting on. Every stage of the pipeline has exactly one condition
// that can hold a PDU, so the analysis is a read-only walk of the
// stage heads:
//
//	parked        acceptance needs seq REQ[src] first (§4.2); the gap
//	              is being chased with RETs addressed to the source.
//	pack-wait     RRL head needs minAL[src] > SEQ (§4.4): some peer's
//	              AL column — its reported next-expected-from-src —
//	              has not passed the PDU yet.
//	ack-wait      PRL head needs minPAL[src] > SEQ (§4.5): some peer's
//	              confirmation of the pre-acknowledged prefix is
//	              missing.
//	commit-wait   acked head has an uncommitted causal dependency
//	              (a local ordering obligation, not a missing peer).
//	total-order-  TO release head is not yet stable: some source has
//	hold          not confirmed past its logical time (§2.3 extension).
//	flow-blocked  pending submits wait for the §4.2 flow condition.
//
// Like Snapshot, Stalls must run on the entity's owner goroutine; the
// returned slice is plain data.

// stallLimit bounds one report so a deeply wedged entity cannot turn a
// /statez scrape into a megabyte dump; each stage reports at most its
// head per source anyway, so n entities × n sources is the true cap.
const stallLimit = 32

func msgID(src pdu.EntityID, seq pdu.Seq) string {
	return fmt.Sprintf("s%d#%d", src, seq)
}

// Stalls reports every blocked pipeline head, at most max entries
// (max <= 0 selects the default cap). An empty result means nothing is
// waiting: every accepted PDU has been delivered and no submit is
// queued.
func (e *Entity) Stalls(now time.Duration, max int) []obsv.Stall {
	if max <= 0 {
		max = stallLimit
	}
	// A quiesced cluster legitimately retains its trailing SYNCs
	// unconfirmed forever (the deferred-confirmation rule stops the
	// chatter once nothing needs acknowledging), so stage occupancy
	// alone is not a stall. Only report when data is actually stuck:
	// an undelivered DATA PDU, a parked DATA, or a queued submit. The
	// SYNC heads reported below are then exactly the causal blockers
	// in front of that data.
	if e.dataResident == 0 && e.parkedData == 0 && len(e.pendingSubmits) == 0 {
		return nil
	}
	var out []obsv.Stall
	full := func() bool { return len(out) >= max }

	// Stage 1: parked — a per-source sequence gap awaiting repair.
	for j := 0; j < e.n && !full(); j++ {
		if len(e.parked[j]) == 0 {
			continue
		}
		src := pdu.EntityID(j)
		lo := pdu.Seq(0)
		first := true
		for s := range e.parked[j] {
			if first || s < lo {
				lo, first = s, false
			}
		}
		missing := e.req[j]
		st := obsv.Stall{
			Msg:       msgID(src, lo),
			Kind:      e.parked[j][lo].Kind.String(),
			Stage:     "parked",
			WaitingOn: []int{j},
		}
		verb := "no RET issued yet"
		if e.lastRetReq[j] != never {
			verb = fmt.Sprintf("RET outstanding for %v", now-e.lastRetReq[j])
		}
		st.Reason = fmt.Sprintf(
			"acceptance needs %s first (gap of %d, %d parked behind it); %s",
			msgID(src, missing), lo-missing, len(e.parked[j]), verb)
		out = append(out, st)
	}

	// Stage 2: pack-wait — RRL heads below nobody's confirmation.
	for j := 0; j < e.n && !full(); j++ {
		p := e.rrl[j].Top()
		if p == nil {
			continue
		}
		// runPack drains heads with SEQ < minAL, so a resident head has
		// minAL[src] ≤ SEQ: find who is holding the minimum down.
		var waiting []int
		for k := 0; k < e.n; k++ {
			if k != j && !e.evicted[k] && e.al[j][k] <= p.SEQ {
				waiting = append(waiting, k)
			}
		}
		out = append(out, obsv.Stall{
			Msg:   msgID(p.Src, p.SEQ),
			Kind:  p.Kind.String(),
			Stage: "pack-wait",
			Reason: fmt.Sprintf(
				"PACK needs minAL[%d] > %d, have %d: receipt confirmation (AL) missing from %d peer(s)",
				j, p.SEQ, e.minAL[j], len(waiting)),
			WaitingOn: waiting,
		})
	}

	// Stage 3: ack-wait — the PRL head's source prefix lacks PAL quorum.
	if p := e.prl.Top(); p != nil && !full() {
		j := int(p.Src)
		var waiting []int
		for k := 0; k < e.n; k++ {
			if k != j && !e.evicted[k] && e.pal[j][k] <= p.SEQ {
				waiting = append(waiting, k)
			}
		}
		out = append(out, obsv.Stall{
			Msg:   msgID(p.Src, p.SEQ),
			Kind:  p.Kind.String(),
			Stage: "ack-wait",
			Reason: fmt.Sprintf(
				"ACK needs minPAL[%d] > %d, have %d: pre-acknowledgment (PAL) missing from %d peer(s)",
				j, p.SEQ, e.minPAL[j], len(waiting)),
			WaitingOn: waiting,
		})
	}

	// Stage 4: commit-wait — acked heads with an uncommitted dependency.
	for j := 0; j < e.n && !full(); j++ {
		p := e.ackedQ[j].Top()
		if p == nil || e.depsCommitted(p) {
			continue
		}
		dep := ""
		if e.committed[j] != p.SEQ-1 {
			dep = msgID(p.Src, e.committed[j]+1)
		} else {
			for k := 0; k < e.n; k++ {
				if pdu.EntityID(k) != p.Src && e.committed[k]+1 < p.ACK[k] {
					dep = msgID(pdu.EntityID(k), e.committed[k]+1)
					break
				}
			}
		}
		out = append(out, obsv.Stall{
			Msg:   msgID(p.Src, p.SEQ),
			Kind:  p.Kind.String(),
			Stage: "commit-wait",
			Reason: fmt.Sprintf(
				"causal dependency %s is not committed locally yet", dep),
		})
	}

	// Stage 5: total-order hold — the TO release head is unstable.
	if e.to != nil && e.to.pending.Len() > 0 && !full() {
		head := e.to.pending[0]
		var waiting []int
		for k := 0; k < e.n; k++ {
			if pdu.EntityID(k) == head.key.src || e.evicted[k] {
				continue
			}
			if !e.to.hasKey[k] || !head.key.less(e.to.lastKey[k]) {
				waiting = append(waiting, k)
			}
		}
		out = append(out, obsv.Stall{
			Msg:   msgID(head.p.Src, head.p.SEQ),
			Kind:  head.p.Kind.String(),
			Stage: "total-order-hold",
			Reason: fmt.Sprintf(
				"logical time %d not yet stable: %d source(s) have not committed past it",
				head.key.lt, len(waiting)),
			WaitingOn: waiting,
		})
	}

	// Stage 6: flow-blocked submits — the §4.2 window is shut.
	if len(e.pendingSubmits) > 0 && !e.windowOpen() && !full() {
		st := obsv.Stall{
			Msg:   msgID(e.me, e.seq),
			Stage: "flow-blocked",
		}
		if credit := e.flowCredit(); e.seq >= e.minAL[e.me]+credit {
			var waiting []int
			for k := 0; k < e.n; k++ {
				if pdu.EntityID(k) != e.me && !e.evicted[k] &&
					e.al[e.me][k] == e.minAL[e.me] {
					waiting = append(waiting, k)
				}
			}
			st.WaitingOn = waiting
			st.Reason = fmt.Sprintf(
				"flow condition shut: SEQ %d ≥ minAL %d + credit %d; %d submit(s) queued; slowest acknowledger(s) hold minAL",
				e.seq, e.minAL[e.me], credit, len(e.pendingSubmits))
		} else {
			st.Reason = fmt.Sprintf(
				"flow condition shut by buffer credit %d (min advertised BUF / H·2n); %d submit(s) queued",
				e.flowCredit(), len(e.pendingSubmits))
		}
		out = append(out, st)
	}

	return out
}
