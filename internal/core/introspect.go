package core

import (
	"strconv"
	"time"

	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
)

// timeQueue is a FIFO of timestamps with an amortized-O(1) head, used
// for the per-source accept→commit histogram. Both acceptance and
// commit are strictly per-source sequence-ordered (the PRL can reorder
// same-source PDUs under loss, but InsertBySeq in the commit stage
// restores the order), so a plain FIFO pairs each commit with its
// acceptance time without carrying sequence numbers.
type timeQueue struct {
	ts   []time.Duration
	head int
}

func (q *timeQueue) push(t time.Duration) { q.ts = append(q.ts, t) }

func (q *timeQueue) pop() (time.Duration, bool) {
	if q.head >= len(q.ts) {
		return 0, false
	}
	t := q.ts[q.head]
	q.head++
	switch {
	case q.head == len(q.ts):
		q.ts = q.ts[:0]
		q.head = 0
	case q.head >= 64 && q.head*2 >= len(q.ts):
		// Compact once the consumed prefix dominates. Resetting only on
		// empty is not enough: under sustained load the queue never
		// fully drains, so without this the slice grows append-only for
		// the life of the entity (cosoak's heap trend check catches it).
		n := copy(q.ts, q.ts[q.head:])
		q.ts = q.ts[:n]
		q.head = 0
	}
	return t, true
}

// micros converts a duration to whole microseconds for the histograms,
// clamping negatives (defensive: callers pass non-decreasing nows).
func micros(d time.Duration) uint64 {
	if d < 0 {
		return 0
	}
	return uint64(d / time.Microsecond)
}

// observeDeliverLatency feeds the broadcast→deliver histogram for this
// entity's own DATA PDUs. No-op unless metrics are attached and the
// PDU is a locally submitted DATA with a recorded send time.
func (e *Entity) observeDeliverLatency(p *pdu.PDU, now time.Duration) {
	if e.m == nil || p.Src != e.me || p.Kind != pdu.KindData {
		return
	}
	if t, ok := e.sentAt[p.SEQ]; ok {
		e.m.DeliverLatencyUS.Observe(micros(now - t))
		delete(e.sentAt, p.SEQ)
	}
}

// publishStats mirrors the Stats counters that moved since the last
// call into the attached atomic EntityMetrics. Running it once per
// input (end of finish, plus the Receive error returns) keeps the
// scraper-visible counters at most one input behind the owner
// goroutine while the hot path pays a single nil check when metrics
// are off and only touched-counter atomic adds when they are on.
// Deriving the atomics from Stats deltas also makes the two counting
// schemes equal by construction.
func (e *Entity) publishStats() {
	m := e.m
	if m == nil {
		return
	}
	s, p := &e.stats, &e.published
	pub := func(c *obsv.Counter, cur uint64, prev *uint64) {
		if d := cur - *prev; d != 0 {
			c.Add(d)
			*prev = cur
		}
	}
	pub(&m.DataSent, s.DataSent, &p.DataSent)
	pub(&m.SyncSent, s.SyncSent, &p.SyncSent)
	pub(&m.AckOnlySent, s.AckOnlySent, &p.AckOnlySent)
	pub(&m.RetSent, s.RetSent, &p.RetSent)
	pub(&m.DataRecv, s.DataRecv, &p.DataRecv)
	pub(&m.SyncRecv, s.SyncRecv, &p.SyncRecv)
	pub(&m.AckOnlyRecv, s.AckOnlyRecv, &p.AckOnlyRecv)
	pub(&m.RetRecv, s.RetRecv, &p.RetRecv)
	pub(&m.Accepted, s.Accepted, &p.Accepted)
	pub(&m.Duplicates, s.Duplicates, &p.Duplicates)
	pub(&m.Parked, s.Parked, &p.Parked)
	pub(&m.F1Detections, s.F1Detections, &p.F1Detections)
	pub(&m.F2Detections, s.F2Detections, &p.F2Detections)
	pub(&m.RetServed, s.Retransmitted, &p.Retransmitted)
	pub(&m.Preacked, s.Preacked, &p.Preacked)
	pub(&m.Acked, s.Acked, &p.Acked)
	pub(&m.Committed, s.Committed, &p.Committed)
	pub(&m.Delivered, s.Delivered, &p.Delivered)
	pub(&m.CPIDisplaced, s.CPIDisplaced, &p.CPIDisplaced)
	pub(&m.CPIDisplacement, s.CPIDisplacement, &p.CPIDisplacement)
	pub(&m.DeferredConfirms, s.DeferredConfirms, &p.DeferredConfirms)
	pub(&m.FlowBlocked, s.FlowBlocked, &p.FlowBlocked)
	pub(&m.InvalidPDUs, s.InvalidPDUs, &p.InvalidPDUs)
}

// Snapshot copies the entity's live protocol state for /statez and the
// depth gauges. Like every other method it must run on the entity's
// owner goroutine (the node loop services snapshot requests between
// inputs; the sim takes them between virtual-time steps); the returned
// value is plain data, safe to hand to any goroutine.
func (e *Entity) Snapshot() obsv.StateSnapshot {
	var s obsv.StateSnapshot
	e.SnapshotInto(&s)
	return s
}

// growU64 resizes sl to n entries, reusing its capacity.
func growU64(sl []uint64, n int) []uint64 {
	if cap(sl) < n {
		return make([]uint64, n)
	}
	return sl[:n]
}

// SnapshotInto is Snapshot writing into a caller-owned value, reusing
// the capacity of its five O(n) slices: a scraper that keeps one
// scratch snapshot per node pays zero allocations per scrape instead
// of five. dst is completely overwritten; the caller must not hand the
// filled value to another goroutine and keep scraping into it.
func (e *Entity) SnapshotInto(s *obsv.StateSnapshot) {
	if e.label == "" {
		e.label = strconv.Itoa(int(e.me))
	}
	rrl := s.RRL
	if cap(rrl) < e.n {
		rrl = make([]int, e.n)
	} else {
		rrl = rrl[:e.n]
	}
	*s = obsv.StateSnapshot{
		Node:           e.label,
		Seq:            uint64(e.seq),
		REQ:            growU64(s.REQ, e.n),
		MinAL:          growU64(s.MinAL, e.n),
		MinPAL:         growU64(s.MinPAL, e.n),
		Committed:      growU64(s.Committed, e.n),
		RRL:            rrl,
		PRL:            e.prl.Len(),
		ARL:            e.ackedTotal,
		Parked:         e.parkedTotal,
		SendLog:        len(e.sendlog),
		PendingSubmits: len(e.pendingSubmits),
		BufFree:        e.availBuf(),
		BufUnits:       e.cfg.BufferUnits,
		ParkedData:     e.parkedData,
		DataResident:   e.dataResident,
		Quiescent:      e.Quiescent(),
	}
	for _, p := range e.sendlog {
		if p.Kind == pdu.KindData {
			s.SendLogData++
		}
	}
	if e.to != nil {
		s.ReleasePending = e.to.pending.Len()
	}
	if l := e.cfg.Ledger; l != nil {
		s.LedgerBytes = l.Bytes()
		s.LedgerPDUs = l.PDUs()
		s.LedgerBudget = l.Budget()
		s.BackpressureBlocked = l.Blocked()
		s.BackpressureShed = l.Shed()
		s.PressureEvicted = e.stats.PressureEvicted
	}
	for k := 0; k < e.n; k++ {
		s.REQ[k] = uint64(e.req[k])
		s.MinAL[k] = uint64(e.minAL[k])
		s.MinPAL[k] = uint64(e.minPAL[k])
		s.Committed[k] = uint64(e.committed[k])
		s.RRL[k] = e.rrl[k].Len()
	}
}
