package core_test

import (
	"reflect"
	"testing"
	"time"

	"cobcast/internal/core"
	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
)

// loadedEntity builds an entity carrying live state in every snapshot
// dimension: a resident PRL/RRL, a non-empty send log, and traffic from
// a second source, so snapshot benches copy realistic depths.
func loadedEntity(tb testing.TB, n int) *core.Entity {
	tb.Helper()
	ents := make([]*core.Entity, 2)
	for i := range ents {
		e, err := core.New(core.Config{ID: pdu.EntityID(i), N: n,
			Window: 64, DisableDeferredConfirm: true})
		if err != nil {
			tb.Fatalf("New(%d): %v", i, err)
		}
		ents[i] = e
	}
	now := time.Millisecond
	for i := 0; i < 8; i++ {
		out := ents[0].Submit([]byte("snapshot-load"), now)
		for _, p := range out.PDUs {
			if _, err := ents[1].Receive(p, now); err != nil {
				tb.Fatal(err)
			}
		}
		out1 := ents[1].Submit([]byte("reply"), now)
		for _, p := range out1.PDUs {
			if _, err := ents[0].Receive(p, now); err != nil {
				tb.Fatal(err)
			}
		}
		now += time.Millisecond
	}
	return ents[0]
}

// TestSnapshotIntoMatchesSnapshot pins that the scratch-reusing path
// and the allocating path produce identical state, including when the
// scratch arrives dirty from a previous fill of a *larger* cluster.
func TestSnapshotIntoMatchesSnapshot(t *testing.T) {
	e := loadedEntity(t, 2)
	want := e.Snapshot()
	var got obsv.StateSnapshot
	e.SnapshotInto(&got)
	assertSnapshotEqual(t, want, got)

	// Dirty, over-sized scratch: capacity reused, length corrected.
	dirty := obsv.StateSnapshot{
		Node:      "stale",
		REQ:       make([]uint64, 9),
		MinAL:     []uint64{7, 7, 7},
		MinPAL:    []uint64{7},
		Committed: make([]uint64, 5),
		RRL:       []int{9, 9, 9, 9},
		SendLog:   42,
	}
	e.SnapshotInto(&dirty)
	assertSnapshotEqual(t, want, dirty)
}

func assertSnapshotEqual(t *testing.T, want, got obsv.StateSnapshot) {
	t.Helper()
	eqU := func(name string, a, b []uint64) {
		if len(a) != len(b) {
			t.Fatalf("%s length: %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s[%d]: %d vs %d", name, i, a[i], b[i])
			}
		}
	}
	eqU("REQ", want.REQ, got.REQ)
	eqU("MinAL", want.MinAL, got.MinAL)
	eqU("MinPAL", want.MinPAL, got.MinPAL)
	eqU("Committed", want.Committed, got.Committed)
	if len(want.RRL) != len(got.RRL) {
		t.Fatalf("RRL length: %d vs %d", len(want.RRL), len(got.RRL))
	}
	for i := range want.RRL {
		if want.RRL[i] != got.RRL[i] {
			t.Errorf("RRL[%d]: %d vs %d", i, want.RRL[i], got.RRL[i])
		}
	}
	// Scalars: compare via copies with the slices nilled out.
	w, g := want, got
	w.REQ, w.MinAL, w.MinPAL, w.Committed, w.RRL = nil, nil, nil, nil, nil
	g.REQ, g.MinAL, g.MinPAL, g.Committed, g.RRL = nil, nil, nil, nil, nil
	if !reflect.DeepEqual(w, g) {
		t.Errorf("scalar fields differ:\n  want %+v\n  got  %+v", w, g)
	}
}

// TestSnapshotIntoAllocFree guards the satellite fix: once the scratch
// is warm, a scrape allocates nothing.
func TestSnapshotIntoAllocFree(t *testing.T) {
	e := loadedEntity(t, 2)
	var s obsv.StateSnapshot
	e.SnapshotInto(&s) // warm the scratch (and the node label)
	if n := testing.AllocsPerRun(100, func() { e.SnapshotInto(&s) }); n != 0 {
		t.Errorf("SnapshotInto with warm scratch: %v allocs/op, want 0", n)
	}
	prl := e.PRLSnapshotInto(nil)
	if n := testing.AllocsPerRun(100, func() { prl = e.PRLSnapshotInto(prl[:0]) }); n != 0 {
		t.Errorf("PRLSnapshotInto with warm scratch: %v allocs/op, want 0", n)
	}
}

// BenchmarkSnapshotInto measures the per-scrape cost of the
// scratch-reusing snapshot path; allocs/op must stay 0.
func BenchmarkSnapshotInto(b *testing.B) {
	e := loadedEntity(b, 2)
	var s obsv.StateSnapshot
	e.SnapshotInto(&s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.SnapshotInto(&s)
	}
}

// BenchmarkSnapshot is the allocating baseline BenchmarkSnapshotInto is
// compared against (five O(n) slices per call).
func BenchmarkSnapshot(b *testing.B) {
	e := loadedEntity(b, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.Snapshot()
	}
}
