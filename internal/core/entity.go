package core

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"time"

	"cobcast/internal/flight"
	"cobcast/internal/msglog"
	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
	"cobcast/internal/trace"
	"cobcast/internal/vclock"
)

// never is the "has not happened" timestamp for rate-limit bookkeeping.
const never = time.Duration(math.MinInt64 / 2)

// Receive errors.
var (
	ErrNilPDU       = errors.New("core: nil PDU")
	ErrWrongCluster = errors.New("core: PDU for a different cluster")
)

// Entity is one system entity E_i of the cluster. It is a pure state
// machine: not safe for concurrent use, with no internal goroutines or
// timers. Callers must serialize Submit/Receive/Tick and pass a
// monotonically non-decreasing now.
type Entity struct {
	cfg Config
	n   int
	me  pdu.EntityID

	// §4.1 variables.
	seq pdu.Seq     // next sequence number to broadcast
	req []pdu.Seq   // req[j]: next sequence number expected from j
	al  [][]pdu.Seq // al[k][j]: what j expects next from k, as known here
	pal [][]pdu.Seq // like al, but folded from pre-acknowledged PDUs only
	buf []uint32    // buf[j]: advertised free buffer units at j

	// reqStamp mirrors req with dirty-column tracking (DESIGN.md §2l).
	// accept is the only site that advances req, and it raises reqStamp
	// in lockstep; ClearDirty runs in broadcastSequenced between the ACK
	// snapshot and the self-accept, so the dirty set at the next
	// sequenced send is exactly the set of ACK entries that changed
	// since the previous one — the Delta annotation. sendAckOnly does
	// not clear it: the annotation's reference is the previous
	// *sequenced* PDU.
	reqStamp vclock.Stamp

	// Receipt logs (§4.2, §4.4, §4.5).
	rrl    []msglog.Log           // accepted, awaiting pre-acknowledgment
	prl    msglog.Log             // pre-acknowledged, causality-ordered
	parked []map[pdu.Seq]*pdu.PDU // out-of-order arrivals awaiting repair
	// Send log: own sequenced PDUs retained for selective retransmission
	// until pre-acknowledged here (i.e. accepted everywhere).
	sendlog map[pdu.Seq]*pdu.PDU
	sendLo  pdu.Seq // no retained PDU has SEQ below this

	// Loss bookkeeping (§4.3).
	known      []pdu.Seq                 // strongest next-expected evidence per source
	lastRetReq []time.Duration           // last RET issued per source
	lastRetx   map[pdu.Seq]time.Duration // last rebroadcast per own SEQ
	// gapBits marks the sources j (j != me, non-evicted) with
	// known[j] > req[j] — exactly the RET candidates — so
	// maybeRequestRetx iterates set words instead of scanning 0..n-1
	// per input. Bits are raised where known is raised (detectGaps) and
	// cleared when req catches known (accept) or the source is evicted.
	gapBits vclock.Bits

	// Deferred confirmation state (§5 and DESIGN.md liveness amendment).
	// unheard holds the non-evicted peers from which no sequenced PDU
	// has been accepted since our last confirmation send; the §5
	// "heard from every peer" test is unheard.Empty(). Refilled from
	// alive at every sequenced/ACKONLY send, cleared per source in
	// accept and on eviction.
	unheard     vclock.Bits
	needRespond bool // accepted a NeedAck PDU since our last send
	// owed/speakDeadline implement the "or some predefined time units"
	// half of the deferred confirmation rule: the deadline arms when an
	// obligation appears and is pushed back by every send.
	owed          bool
	owedSince     time.Duration
	speakDeadline time.Duration

	// Commit stage (delivery-closure guard, DESIGN.md §2): PDUs that have
	// passed the ACK condition wait here until every dependency named by
	// their ACK vector has committed locally. ackedQ[k] is a per-source
	// queue kept sorted by SEQ: commits happen in per-source sequence
	// order, so the only commit candidate of each source is its queue
	// head and commits pop from the head — no mid-slice deletion. PDUs
	// usually pass the ACK condition in sequence order too (append at
	// tail), but not always: the Theorem 4.1 test is not transitive under
	// loss — an entity can accept a PDU whose ACK vector covers a
	// same-source predecessor it never received — so the PRL is only
	// best-effort ordered and a successor can overtake; InsertBySeq
	// restores the per-source order. committed[k] is the highest
	// contiguously committed sequence number from source k.
	ackedQ     []msglog.Log
	ackedTotal int
	committed  []pdu.Seq
	// ackedBits marks the sources with a non-empty ackedQ so the
	// commit loop visits only them (set in runAck, cleared when a
	// queue drains).
	ackedBits vclock.Bits

	// Incremental quorum minima (performance engineering, DESIGN.md §2c).
	// minAL[k] caches quorumMin(al[k]) and minALCnt[k] counts the
	// non-evicted columns sitting at that minimum, so the common write
	// path (a single cell raised) maintains the minimum in O(1): raising
	// a cell above the minimum changes nothing; raising a cell at the
	// minimum decrements the count, and only a count of zero forces an
	// O(n) row recompute — at which point the minimum strictly advanced.
	// Eviction is the one remaining full-recompute site. minPAL/minPALCnt
	// cache quorumMin(pal[k]) identically.
	minAL     []pdu.Seq
	minALCnt  []int
	minPAL    []pdu.Seq
	minPALCnt []int

	// packDirty/packQueue drive runPack from the set of sources whose
	// PACK condition may newly hold (RRL grew, or minAL advanced) instead
	// of a full 0..n-1 scan per input.
	packDirty []bool
	packQueue []pdu.EntityID

	// to is the total-order release stage; nil unless Config.TotalOrder.
	to *toState

	// Failure handling (evict.go). alive is the bitmap complement of
	// evicted: quorum scans (rowMin) iterate its set words
	// popcount-style instead of testing evicted[j] per column.
	evicted   []bool
	alive     vclock.Bits
	lastHeard []time.Duration
	heardOnce []bool

	pendingSubmits [][]byte
	parkedTotal    int
	parkedData     int
	rrlTotal       int
	dataResident   int

	stats Stats

	// Live instrumentation (Config.Metrics); all nil unless attached.
	// published is the prefix of stats already mirrored into m, so
	// publishStats only touches atomics for counters that moved.
	// sentAt timestamps own DATA broadcasts for the deliver-latency
	// histogram; acceptAt[k] is a FIFO of acceptance times from source
	// k for the ack-wait histogram — valid because acceptance and
	// commit are both strictly per-source sequence-ordered.
	m         *obsv.EntityMetrics
	published Stats
	sentAt    map[pdu.Seq]time.Duration
	acceptAt  []timeQueue

	// label memoizes strconv.Itoa(me) so SnapshotInto allocates nothing.
	label string
}

// New creates an entity in its initial state (SEQ = 1, every REQ/AL/PAL
// entry 1, empty logs).
func New(cfg Config) (*Entity, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.N
	e := &Entity{
		cfg:        cfg,
		n:          n,
		me:         cfg.ID,
		seq:        1,
		req:        make([]pdu.Seq, n),
		al:         make([][]pdu.Seq, n),
		pal:        make([][]pdu.Seq, n),
		buf:        make([]uint32, n),
		rrl:        make([]msglog.Log, n),
		parked:     make([]map[pdu.Seq]*pdu.PDU, n),
		sendlog:    make(map[pdu.Seq]*pdu.PDU),
		sendLo:     1,
		known:      make([]pdu.Seq, n),
		lastRetReq: make([]time.Duration, n),
		lastRetx:   make(map[pdu.Seq]time.Duration),
		reqStamp:   vclock.NewStamp(n),
		gapBits:    vclock.NewBits(n),
		unheard:    vclock.NewBits(n),
		ackedBits:  vclock.NewBits(n),
		alive:      vclock.NewBits(n),
		ackedQ:     make([]msglog.Log, n),
		committed:  make([]pdu.Seq, n),
		minAL:      make([]pdu.Seq, n),
		minALCnt:   make([]int, n),
		minPAL:     make([]pdu.Seq, n),
		minPALCnt:  make([]int, n),
		packDirty:  make([]bool, n),
		evicted:    make([]bool, n),
		lastHeard:  make([]time.Duration, n),
		heardOnce:  make([]bool, n),
	}
	for j := 0; j < n; j++ {
		e.req[j] = 1
		e.known[j] = 1
		e.buf[j] = cfg.BufferUnits
		e.lastRetReq[j] = never
		e.parked[j] = make(map[pdu.Seq]*pdu.PDU)
		e.al[j] = make([]pdu.Seq, n)
		e.pal[j] = make([]pdu.Seq, n)
		for k := 0; k < n; k++ {
			e.al[j][k] = 1
			e.pal[j][k] = 1
		}
		e.minAL[j], e.minALCnt[j] = 1, n
		e.minPAL[j], e.minPALCnt[j] = 1, n
		// Pre-size the per-source logs so steady-state inserts neither
		// grow the successor-witness bounds nor reallocate.
		e.rrl[j].Reserve(n, 8)
		e.ackedQ[j].Reserve(n, 8)
	}
	for j := 0; j < n; j++ {
		e.reqStamp.Raise(j, 1)
	}
	e.reqStamp.ClearDirty() // the initial all-ones vector is the epoch
	e.alive.Fill(n)
	e.unheard.CopyFrom(e.alive)
	e.unheard.Clear(int(e.me))
	e.prl.Reserve(n, 4*n)
	if cfg.TotalOrder {
		e.to = newTOState(n)
	}
	if cfg.Metrics != nil {
		e.m = cfg.Metrics
		e.sentAt = make(map[pdu.Seq]time.Duration)
		e.acceptAt = make([]timeQueue, n)
	}
	return e, nil
}

// ID returns this entity's identifier.
func (e *Entity) ID() pdu.EntityID { return e.me }

// Stats returns a snapshot of the entity's counters.
func (e *Entity) Stats() Stats { return e.stats }

// Submit queues application data for broadcast. The data is copied. If the
// flow condition (§4.2) holds the PDU is broadcast immediately; otherwise
// it drains as acknowledgments open the window.
func (e *Entity) Submit(data []byte, now time.Duration) Output {
	buf := make([]byte, len(data))
	copy(buf, data)
	e.pendingSubmits = append(e.pendingSubmits, buf)
	e.chargeSubmit(len(buf))
	e.fl(flight.EvSubmit, e.me, 0, pdu.KindData, pdu.NoEntity, now)
	if !e.windowOpen() {
		e.stats.FlowBlocked++
		e.fl(flight.EvFlowBlock, e.me, e.seq, pdu.KindData, pdu.NoEntity, now)
	}
	var out Output
	e.finish(now, &out)
	return out
}

// Receive processes one PDU from the network. The entity takes ownership
// of sequenced PDUs (KindData/KindSync): they may be retained in the
// receipt logs, so callers must not reuse p or its ACK/Data afterwards.
// Control PDUs (KindAckOnly/KindRet) are only read during the call and
// may live in caller-owned scratch storage.
func (e *Entity) Receive(p *pdu.PDU, now time.Duration) (Output, error) {
	var out Output
	if p == nil {
		e.stats.InvalidPDUs++
		e.publishStats()
		return out, ErrNilPDU
	}
	if err := p.Validate(e.n); err != nil {
		e.stats.InvalidPDUs++
		e.publishStats()
		return out, fmt.Errorf("receive at %d: %w", e.me, err)
	}
	if p.CID != e.cfg.ClusterID {
		e.stats.InvalidPDUs++
		e.publishStats()
		return out, fmt.Errorf("%w: got %d want %d", ErrWrongCluster, p.CID, e.cfg.ClusterID)
	}
	switch p.Kind {
	case pdu.KindData:
		e.stats.DataRecv++
	case pdu.KindSync:
		e.stats.SyncRecv++
	case pdu.KindAckOnly:
		e.stats.AckOnlyRecv++
	case pdu.KindRet:
		e.stats.RetRecv++
	}

	e.noteHeard(p.Src, now)
	// A Delta annotation is usable for sparse folding only when the
	// reference PDU (same source, SEQ-1) was itself folded here — either
	// accepted (SEQ-1 < req) or parked. Sender-side annotations arrive on
	// any path, including ones where the predecessor was lost, so the
	// chain argument the fast paths rest on must be established per
	// arrival rather than assumed from the wire codec.
	sparseOK := p.Delta != nil && !e.cfg.DenseFold && p.SEQ >= 2 &&
		(p.SEQ-1 < e.req[p.Src] || e.parked[p.Src][p.SEQ-1] != nil)
	e.foldInfo(p, sparseOK)
	e.detectGaps(p, sparseOK)
	// Any PDU flagged NeedAck solicits a confirmation round — including
	// control PDUs from window-blocked entities, which cannot emit
	// sequenced PDUs to ask for help.
	if p.NeedAck && p.Src != e.me {
		e.needRespond = true
	}

	switch p.Kind {
	case pdu.KindRet:
		if p.LSrc == e.me {
			e.handleRetForMe(p, now, &out)
		}
	case pdu.KindAckOnly:
		// Knowledge already folded; nothing sequenced to do.
	case pdu.KindData, pdu.KindSync:
		e.receiveSequenced(p, now)
	}

	e.maybeRequestRetx(now, &out)
	e.finish(now, &out)
	return out, nil
}

// Tick drives the entity's timers: RET retries and deferred confirmation.
// Call it roughly every DeferredAckInterval.
func (e *Entity) Tick(now time.Duration) Output {
	var out Output
	e.maybeSuspect(now, &out)
	e.maybeRequestRetx(now, &out)
	e.finish(now, &out)
	return out
}

// finish runs the pipeline stages common to every input: drain blocked
// submissions, pre-acknowledge, acknowledge/deliver, and emit deferred
// confirmations.
func (e *Entity) finish(now time.Duration, out *Output) {
	e.drainSubmits(now, out)
	e.runPack()
	e.runAck(now, out)
	e.maybeConfirm(now, out)
	e.publishStats()
}

// foldInfo merges the PDU's receipt confirmations into AL and BUF. ACK
// vectors are truthful snapshots of the sender's REQ, so folding them from
// every PDU kind (including control PDUs and parked out-of-order PDUs)
// only strengthens knowledge; delivery safety rests on PAL, which folds
// strictly from pre-acknowledged sequenced PDUs as in the paper.
func (e *Entity) foldInfo(p *pdu.PDU, sparseOK bool) {
	if p.Src == e.me {
		return
	}
	if sparseOK {
		// Delta fast path: entries outside p.Delta are bit-identical to
		// the same source's previous sequenced PDU, which sparseOK
		// proves was folded here when it arrived (foldInfo runs on
		// arrival for every kind, parked or not), so al[k][p.Src]
		// already holds those values. Folding only the changed entries
		// is exact, O(|Delta|) amortized per PDU.
		for _, k := range p.Delta {
			if p.ACK[k] > e.al[k][p.Src] {
				e.raiseAL(int(k), p.Src, p.ACK[k])
			}
		}
	} else {
		for k := 0; k < e.n; k++ {
			if p.ACK[k] > e.al[k][p.Src] {
				e.raiseAL(k, p.Src, p.ACK[k])
			}
		}
	}
	e.buf[p.Src] = p.BUF
}

// raiseAL writes al[k][j] = v (callers guarantee v > al[k][j]) and
// maintains the cached row minimum. A non-evicted cell is never below the
// cached minimum, so raising one either leaves the minimum alone (the
// cell was above it, or other cells still sit at it) or — when the last
// cell at the minimum rises — strictly advances it, the only case that
// pays for an O(n) recompute and can newly satisfy k's PACK condition.
func (e *Entity) raiseAL(k int, j pdu.EntityID, v pdu.Seq) {
	old := e.al[k][j]
	e.al[k][j] = v
	if e.evicted[j] || old > e.minAL[k] {
		return
	}
	if e.minALCnt[k]--; e.minALCnt[k] == 0 {
		e.minAL[k], e.minALCnt[k] = e.rowMin(e.al[k])
		e.markPackDirty(pdu.EntityID(k))
	}
}

// raisePAL is raiseAL for the PAL matrix. An advanced minPAL needs no
// dirty mark: runAck always runs after runPack and probes the cached
// minimum at the head of the single PRL queue.
func (e *Entity) raisePAL(k int, j pdu.EntityID, v pdu.Seq) {
	old := e.pal[k][j]
	e.pal[k][j] = v
	if e.evicted[j] || old > e.minPAL[k] {
		return
	}
	if e.minPALCnt[k]--; e.minPALCnt[k] == 0 {
		e.minPAL[k], e.minPALCnt[k] = e.rowMin(e.pal[k])
	}
}

// rowMin recomputes a quorum minimum and the number of non-evicted cells
// holding it, iterating the set words of the alive bitmap so a shrunken
// quorum (the eviction re-scan path) only touches surviving columns.
// The local entity is never evicted, so cnt >= 1.
func (e *Entity) rowMin(row []pdu.Seq) (m pdu.Seq, cnt int) {
	for wi, w := range e.alive {
		for w != 0 {
			j := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			switch v := row[j]; {
			case cnt == 0 || v < m:
				m, cnt = v, 1
			case v == m:
				cnt++
			}
		}
	}
	return m, cnt
}

// refreshMinima recomputes every cached minimum from scratch — the
// full-recompute site, reached only when the quorum shrinks (eviction).
func (e *Entity) refreshMinima() {
	for k := 0; k < e.n; k++ {
		e.minAL[k], e.minALCnt[k] = e.rowMin(e.al[k])
		e.minPAL[k], e.minPALCnt[k] = e.rowMin(e.pal[k])
		e.markPackDirty(pdu.EntityID(k))
	}
}

// markPackDirty queues source k for the next runPack pass.
func (e *Entity) markPackDirty(k pdu.EntityID) {
	if !e.packDirty[k] {
		e.packDirty[k] = true
		e.packQueue = append(e.packQueue, k)
	}
}

// detectGaps applies the failure conditions of §4.3: F1 (a sequenced PDU
// beyond REQ reveals a gap at its own source) and F2 (an ACK entry beyond
// REQ reveals a gap at another source). Evidence is recorded in known;
// maybeRequestRetx turns it into RET PDUs.
func (e *Entity) detectGaps(p *pdu.PDU, sparseOK bool) {
	if sparseOK {
		// Delta fast path: an unchanged ACK entry already served as F2
		// evidence when the reference PDU arrived (same chain argument
		// as foldInfo), so only the changed entries can strengthen
		// known. The F1 rules below stay unconditional — they read SEQ
		// and the sender's own entry, not the vector.
		for _, j := range p.Delta {
			if pdu.EntityID(j) == p.Src || pdu.EntityID(j) == e.me {
				continue
			}
			if p.ACK[j] > e.known[j] {
				e.known[j] = p.ACK[j] // F2
				e.stats.F2Detections++
				e.noteGap(int(j))
			}
		}
	} else {
		for j := 0; j < e.n; j++ {
			if pdu.EntityID(j) == p.Src || pdu.EntityID(j) == e.me {
				continue
			}
			if p.ACK[j] > e.known[j] {
				// known[j] never trails req[j], so strengthened evidence
				// always names PDUs this entity has not accepted: a
				// detection, not a confirmation.
				e.known[j] = p.ACK[j] // F2
				e.stats.F2Detections++
				e.noteGap(j)
			}
		}
	}
	if p.Kind.Sequenced() && p.Src != e.me && p.SEQ+1 > e.known[p.Src] {
		e.known[p.Src] = p.SEQ + 1 // F1
		e.noteGap(int(p.Src))
		if p.SEQ > e.req[p.Src] {
			// In-order arrivals raise evidence too but reveal no gap;
			// only a PDU ahead of REQ is a detection.
			e.stats.F1Detections++
		}
	}
	// The sender's own ACK entry equals its next sequence number (it has
	// self-accepted everything it sent), so it is F1-grade evidence for
	// the sender's own stream. Without this, a window-blocked sender
	// whose last sequenced PDU was lost everywhere could gossip ACKONLYs
	// forever without anyone learning the PDU exists.
	if p.Src != e.me && p.ACK[p.Src] > e.known[p.Src] {
		e.known[p.Src] = p.ACK[p.Src]
		e.stats.F1Detections++
		e.noteGap(int(p.Src))
	}
}

// noteGap records that known[j] was strengthened. known never trails
// req, so a strict raise leaves known[j] > req[j] — a gap — except for
// the in-order F1 case (SEQ == req), whose bit accept clears within the
// same Receive. Evicted sources are not RET candidates.
func (e *Entity) noteGap(j int) {
	if !e.evicted[j] && e.known[j] > e.req[j] {
		e.gapBits.Set(j)
	}
}

// receiveSequenced applies the acceptance condition p.SEQ == REQ (§4.2),
// parking out-of-order PDUs and draining repairs in order.
func (e *Entity) receiveSequenced(p *pdu.PDU, now time.Duration) {
	if e.cfg.DenseFold {
		// The entity owns sequenced PDUs: dropping the annotation here
		// keeps every later stage (PAL fold, commit closure, TO stamp,
		// log bounds) on the dense scans. Clone shares Delta by field,
		// so siblings of a fanned-out PDU are unaffected.
		p.Delta = nil
	}
	src := p.Src
	switch {
	case p.SEQ < e.req[src]:
		e.stats.Duplicates++
	case p.SEQ > e.req[src]:
		if _, dup := e.parked[src][p.SEQ]; !dup {
			e.parked[src][p.SEQ] = p
			e.parkedTotal++
			if p.Kind == pdu.KindData {
				e.parkedData++
			}
			e.chargePDU(p)
			e.stats.Parked++
			e.fl(flight.EvPark, src, p.SEQ, p.Kind, pdu.NoEntity, now)
			e.noteResident()
		}
	default:
		e.accept(p, now)
		for {
			q, ok := e.parked[src][e.req[src]]
			if !ok {
				break
			}
			delete(e.parked[src], q.SEQ)
			e.parkedTotal--
			if q.Kind == pdu.KindData {
				e.parkedData--
			}
			e.releasePDU(q)
			e.fl(flight.EvUnpark, src, q.SEQ, q.Kind, pdu.NoEntity, now)
			e.accept(q, now)
		}
	}
}

// accept performs the acceptance action (§4.2): advance REQ, enqueue into
// RRL, and update deferred-confirmation state. Callers guarantee
// p.SEQ == req[p.Src].
func (e *Entity) accept(p *pdu.PDU, now time.Duration) {
	src := p.Src
	e.req[src] = p.SEQ + 1
	e.reqStamp.Raise(int(src), uint64(p.SEQ+1))
	// Own column of AL is direct knowledge: we just accepted through SEQ.
	e.raiseAL(int(src), e.me, e.req[src])
	if e.req[src] > e.known[src] {
		e.known[src] = e.req[src]
	}
	if e.known[src] == e.req[src] {
		// REQ caught the strongest evidence: the gap (if any) closed.
		e.gapBits.Clear(int(src))
	}
	e.rrl[src].Enqueue(p)
	e.rrlTotal++
	e.chargePDU(p)
	// The freshly enqueued PDU may already satisfy the PACK condition
	// (minAL can sit past SEQ when the repair of an old gap arrives late).
	e.markPackDirty(src)
	if e.to != nil {
		e.to.lastAcc[src] = p.ACK
	}
	if p.Kind == pdu.KindData {
		e.dataResident++
	}
	if src != e.me {
		e.unheard.Clear(int(src))
	}
	e.stats.Accepted++
	if e.m != nil {
		e.acceptAt[src].push(now)
	}
	e.noteResident()
	e.fl(flight.EvAccept, src, p.SEQ, p.Kind, pdu.NoEntity, now)
	e.trace(trace.Accept, src, p.SEQ, p.Kind, now)
}

// runPack applies the PACK condition and action (§4.4): the head of each
// RRL whose SEQ is below minAL of its source moves, in order, into the
// causality-ordered PRL, folding its ACK vector into PAL. Only sources
// whose condition may newly hold — RRL grew, or minAL advanced — are
// visited; everything else was drained by an earlier pass.
func (e *Entity) runPack() {
	for i := 0; i < len(e.packQueue); i++ {
		k := int(e.packQueue[i])
		e.packDirty[k] = false
		for {
			top := e.rrl[k].Top()
			if top == nil || top.SEQ >= e.minAL[k] {
				break
			}
			p := e.rrl[k].Dequeue()
			e.rrlTotal--
			// Fold the ACK vector into PAL exactly as the paper's PACK
			// action does — and only here. Updating PAL from anything
			// other than a pre-acknowledged (hence in-order accepted)
			// PDU breaks delivery safety: the proof that a causal
			// predecessor p from source j is delivered before q leans on
			// column j of PAL advancing past q.SEQ only via a PDU from j
			// that sits behind p in RRL_j's FIFO.
			if d := p.Delta; d != nil {
				// Delta fast path: RRL_k dequeues in SEQ order, so the
				// reference PDU (SEQ-1 from k) folded its full vector
				// into column k on an earlier pass; only the changed
				// entries can advance PAL. Exact for the same reason
				// as foldInfo.
				for _, m := range d {
					if p.ACK[m] > e.pal[m][k] {
						e.raisePAL(int(m), pdu.EntityID(k), p.ACK[m])
					}
				}
			} else {
				for m := 0; m < e.n; m++ {
					if p.ACK[m] > e.pal[m][k] {
						e.raisePAL(m, pdu.EntityID(k), p.ACK[m])
					}
				}
			}
			if d := e.prl.InsertCPI(p); d > 0 {
				e.stats.CPIDisplaced++
				e.stats.CPIDisplacement += uint64(d)
			}
			e.stats.Preacked++
			if pdu.EntityID(k) == e.me {
				// Everyone has accepted our PDU: it can never be asked
				// for again, so release it from the retransmission log.
				e.trimSendLog(p.SEQ)
			}
		}
	}
	e.packQueue = e.packQueue[:0]
}

// runAck applies the ACK condition and action (§4.5): while the top of PRL
// has been pre-acknowledged everywhere (SEQ below minPAL of its source),
// dequeue it into the commit stage, which enforces full causal closure
// before delivery.
func (e *Entity) runAck(now time.Duration, out *Output) {
	for {
		top := e.prl.Top()
		if top == nil || top.SEQ >= e.minPAL[top.Src] {
			break
		}
		p := e.prl.Dequeue()
		e.ackedQ[p.Src].InsertBySeq(p)
		e.ackedBits.Set(int(p.Src))
		e.ackedTotal++
		e.stats.Acked++
	}
	e.commitReady(now, out)
}

// commitReady delivers acknowledged PDUs in true causal order. The paper
// orders PRL with pairwise Theorem 4.1 tests, but that relation captures
// only direct causality (q's sender accepted p) — a transitive chain
// through a third PDU the local entity saw in a different order can be
// invisible to it. Reading each PDU's ACK vector as a dependency vector
// closes the hole: commit p only once its own stream's prefix and every
// prefix named by p.ACK have committed. Dependencies always point to
// PDUs sent strictly earlier in real time, so the graph is acyclic and
// the stage cannot deadlock.
//
// The stage is a ready-queue keyed by the committed frontier: ackedQ[k]
// is kept sorted by SEQ and commits happen in per-source sequence order,
// so only each source's queue head can be ready, commits pop from the
// head (ordered drain, no mid-slice deletion), and a pass over the n
// heads repeats only while some commit advanced the frontier.
func (e *Entity) commitReady(now time.Duration, out *Output) {
	// Only sources with a non-empty ackedQ can commit, so each pass
	// iterates the set words of ackedBits (ascending, matching the old
	// 0..n-1 scan order) instead of probing all n queues. The word is
	// copied before iterating: clearing a drained source's bit must not
	// disturb the in-flight word, and commits never refill ackedQ.
	for progress := e.ackedTotal > 0; progress; {
		progress = false
		for wi, w := range e.ackedBits {
			for w != 0 {
				k := wi<<6 + bits.TrailingZeros64(w)
				w &= w - 1
				for {
					p := e.ackedQ[k].Top()
					if p == nil || !e.depsCommitted(p) {
						break
					}
					e.ackedQ[k].Dequeue()
					e.ackedTotal--
					e.releasePDU(p)
					e.committed[k] = p.SEQ
					e.stats.Committed++
					e.fl(flight.EvCommit, p.Src, p.SEQ, p.Kind, pdu.NoEntity, now)
					if e.m != nil {
						if t, ok := e.acceptAt[k].pop(); ok {
							e.m.AckWaitUS.Observe(micros(now - t))
						}
					}
					progress = true
					if e.to != nil {
						// TO mode: stamp the logical time and hand DATA to the
						// stable-release stage instead of delivering directly.
						e.onCommitTotal(p)
						continue
					}
					if p.Kind == pdu.KindData {
						e.dataResident--
						e.stats.Delivered++
						e.observeDeliverLatency(p, now)
						out.Deliveries = append(out.Deliveries, Delivery{Src: p.Src, SEQ: p.SEQ, Data: p.Data})
						e.fl(flight.EvDeliver, p.Src, p.SEQ, p.Kind, pdu.NoEntity, now)
						e.trace(trace.Deliver, p.Src, p.SEQ, p.Kind, now)
					}
				}
				if e.ackedQ[k].Len() == 0 {
					e.ackedBits.Clear(k)
				}
			}
		}
	}
	if e.to != nil {
		e.releaseTotal(now, out)
	}
}

// depsCommitted reports whether every causal dependency of p has been
// committed locally.
func (e *Entity) depsCommitted(p *pdu.PDU) bool {
	if e.committed[p.Src] != p.SEQ-1 {
		return false
	}
	if d := p.Delta; d != nil && p.SEQ >= 2 {
		// Delta fast path: the first test just proved p's same-source
		// predecessor committed here, so the predecessor's dependencies
		// were checked against the committed frontier at that commit —
		// and committed[] only advances. Entries outside d equal the
		// predecessor's, hence are already satisfied; only the changed
		// entries need checking, O(|d|).
		for _, k := range d {
			if pdu.EntityID(k) == p.Src {
				continue
			}
			if e.committed[k]+1 < p.ACK[k] {
				return false
			}
		}
		return true
	}
	for k := 0; k < e.n; k++ {
		if pdu.EntityID(k) == p.Src {
			continue
		}
		if e.committed[k]+1 < p.ACK[k] {
			return false
		}
	}
	return true
}

// drainSubmits broadcasts queued application data while the flow condition
// holds.
func (e *Entity) drainSubmits(now time.Duration, out *Output) {
	for len(e.pendingSubmits) > 0 && e.windowOpen() {
		data := e.pendingSubmits[0]
		e.pendingSubmits[0] = nil
		e.pendingSubmits = e.pendingSubmits[1:]
		e.releaseSubmit(len(data))
		e.broadcastSequenced(pdu.KindData, data, now, out)
	}
}

// maybeConfirm implements deferred confirmation (§5): once we have heard
// from every peer since our last sequenced send — or the deferred-ack
// timer expires — and we have a reason to speak (undelivered data
// anywhere we can see, or a NeedAck PDU to answer), emit a SYNC. If the
// flow window is closed, fall back to an unsequenced ACKONLY so
// confirmations still flow (liveness amendment, DESIGN.md §2).
func (e *Entity) maybeConfirm(now time.Duration, out *Output) {
	if e.cfg.DisableDeferredConfirm {
		return
	}
	if !e.needsToSpeak() {
		e.owed = false
		return
	}
	if !e.owed {
		e.owed = true
		e.owedSince = now
		e.speakDeadline = now + e.cfg.DeferredAckInterval
	}
	if !e.unheard.Empty() && now < e.speakDeadline {
		return
	}
	e.stats.DeferredConfirms++
	if e.windowOpen() {
		e.broadcastSequenced(pdu.KindSync, nil, now, out)
		return
	}
	e.sendAckOnly(now, out)
}

// needsToSpeak reports whether this entity owes the cluster confirmations:
// it holds undelivered data, has data waiting to send, or was asked for
// help by a NeedAck PDU.
func (e *Entity) needsToSpeak() bool {
	return e.dataResident > 0 || e.parkedData > 0 ||
		len(e.pendingSubmits) > 0 || e.needRespond
}

// broadcastSequenced performs the transmission action of §4.2: stamp SEQ
// and the ACK vector, retain for retransmission, self-accept, broadcast.
// The ACK vector is captured before self-acceptance, so the own entry
// equals SEQ — matching Table 1 of the paper.
//
// The PDU is annotated with the sparse Delta when the dirty-column set
// is below the density threshold: reqStamp's dirty set is exactly the
// ACK entries that changed since the previous sequenced send (SEQ-1),
// which is the annotation's contract. ACK and Delta are carved from a
// single slab so the annotation adds no allocation; the epoch resets
// (ClearDirty) before the self-accept so the own column — which changes
// on every send — lands in the next PDU's dirty set.
func (e *Entity) broadcastSequenced(kind pdu.Kind, data []byte, now time.Duration, out *Output) {
	c := 0
	annotate := e.seq > 1 && !e.cfg.DenseFold && !e.reqStamp.Dense()
	if annotate {
		c = e.reqStamp.NDirty()
	}
	slab := make([]pdu.Seq, e.n+c)
	ack := slab[:e.n:e.n]
	copy(ack, e.req)
	var delta []pdu.Seq
	if annotate {
		delta = slab[e.n:e.n]
		for wi, w := range e.reqStamp.Dirty() {
			for w != 0 {
				delta = append(delta, pdu.Seq(wi<<6+bits.TrailingZeros64(w)))
				w &= w - 1
			}
		}
	}
	e.reqStamp.ClearDirty()
	p := &pdu.PDU{
		Kind:    kind,
		CID:     e.cfg.ClusterID,
		Src:     e.me,
		SEQ:     e.seq,
		ACK:     ack,
		BUF:     e.availBuf(),
		NeedAck: kind == pdu.KindData || e.dataResident > 0 || e.parkedData > 0 || len(e.pendingSubmits) > 0,
		LSrc:    pdu.NoEntity,
		Data:    data,
		Delta:   delta,
	}
	e.seq++
	e.sendlog[p.SEQ] = p
	e.chargePDU(p)
	if kind == pdu.KindData {
		e.stats.DataSent++
		if e.m != nil {
			e.sentAt[p.SEQ] = now
		}
	} else {
		e.stats.SyncSent++
	}
	e.fl(flight.EvSequence, e.me, p.SEQ, kind, pdu.NoEntity, now)
	e.trace(trace.Send, e.me, p.SEQ, kind, now)
	e.accept(p, now)
	e.unheard.CopyFrom(e.alive)
	e.unheard.Clear(int(e.me))
	e.needRespond = false
	e.speakDeadline = now + e.cfg.DeferredAckInterval
	out.PDUs = append(out.PDUs, p)
}

// sendAckOnly emits the unsequenced control PDU that keeps receipt
// confirmations moving when the flow window is closed.
func (e *Entity) sendAckOnly(now time.Duration, out *Output) {
	ack := make([]pdu.Seq, e.n)
	copy(ack, e.req)
	p := &pdu.PDU{
		Kind:    pdu.KindAckOnly,
		CID:     e.cfg.ClusterID,
		Src:     e.me,
		ACK:     ack,
		BUF:     e.availBuf(),
		NeedAck: e.dataResident > 0 || e.parkedData > 0 || len(e.pendingSubmits) > 0,
		LSrc:    pdu.NoEntity,
	}
	e.stats.AckOnlySent++
	// The ACKONLY's ACK vector discharges the confirmation obligation of
	// everything received so far, exactly like a sequenced send — without
	// refilling unheard here, a window-blocked entity that had heard from
	// everyone would emit one ACKONLY per incoming PDU. reqStamp's dirty
	// epoch is NOT reset: the Delta annotation's reference is the
	// previous *sequenced* PDU, and this send is unsequenced.
	e.unheard.CopyFrom(e.alive)
	e.unheard.Clear(int(e.me))
	e.needRespond = false
	e.speakDeadline = now + e.cfg.DeferredAckInterval
	out.PDUs = append(out.PDUs, p)
}

// maybeRequestRetx issues RET PDUs (retransmission action (1), §4.3) for
// every source with outstanding gap evidence, rate-limited per source by
// RetransmitTimeout. gapBits is maintained to hold exactly the sources
// with known[j] > req[j] (j != me, non-evicted), so the common no-gap
// case costs one word test per input instead of an O(n) scan; ascending
// word iteration preserves the RET emission order of the old loop.
func (e *Entity) maybeRequestRetx(now time.Duration, out *Output) {
	for wi, w := range e.gapBits {
		for w != 0 {
			j := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			src := pdu.EntityID(j)
			if now-e.lastRetReq[j] < e.cfg.RetransmitTimeout {
				continue
			}
			// Request only up to the first PDU we already hold parked: the
			// paper's F1 sets LSEQ to the SEQ of the revealing PDU, never
			// asking for PDUs the requester has.
			lseq := e.known[j]
			for s := range e.parked[j] {
				if s >= e.req[j] && s < lseq {
					lseq = s
				}
			}
			if lseq <= e.req[j] {
				continue
			}
			e.lastRetReq[j] = now
			ack := make([]pdu.Seq, e.n)
			copy(ack, e.req)
			out.PDUs = append(out.PDUs, &pdu.PDU{
				Kind: pdu.KindRet,
				CID:  e.cfg.ClusterID,
				Src:  e.me,
				ACK:  ack,
				BUF:  e.availBuf(),
				LSrc: src,
				LSeq: lseq,
			})
			e.stats.RetSent++
			// Src/Seq name the first missing PDU in the gap being chased.
			e.fl(flight.EvRetRequest, src, e.req[j], pdu.KindRet, src, now)
		}
	}
}

// handleRetForMe performs retransmission action (2) of §4.3: rebroadcast
// the PDUs the requester is missing, bit-identical to the originals, with
// per-PDU rate limiting so a burst of RETs does not amplify traffic.
func (e *Entity) handleRetForMe(r *pdu.PDU, now time.Duration, out *Output) {
	from := r.ACK[e.me]
	if from < e.sendLo {
		from = e.sendLo
	}
	for s := from; s < r.LSeq && s < e.seq; s++ {
		p, ok := e.sendlog[s]
		if !ok {
			continue
		}
		if last, sent := e.lastRetx[s]; sent && now-last < e.cfg.RetransmitTimeout {
			continue
		}
		e.lastRetx[s] = now
		e.stats.Retransmitted++
		e.fl(flight.EvRetServe, e.me, s, p.Kind, r.Src, now)
		e.trace(trace.Retransmit, e.me, s, p.Kind, now)
		out.PDUs = append(out.PDUs, p)
	}
}

// trimSendLog drops own PDUs with SEQ ≤ upTo from the retransmission log.
func (e *Entity) trimSendLog(upTo pdu.Seq) {
	for s := e.sendLo; s <= upTo; s++ {
		if e.cfg.Ledger != nil {
			if p, ok := e.sendlog[s]; ok {
				e.releasePDU(p)
			}
		}
		delete(e.sendlog, s)
		delete(e.lastRetx, s)
	}
	if upTo+1 > e.sendLo {
		e.sendLo = upTo + 1
	}
}

// windowOpen evaluates the flow condition of §4.2:
//
//	minAL_i ≤ SEQ < minAL_i + min(W, minBUF/(H·2n))
func (e *Entity) windowOpen() bool {
	credit := e.flowCredit()
	return e.seq < e.minAL[e.me]+credit
}

// flowCredit returns min(W, minBUF/(H·2n)).
func (e *Entity) flowCredit() pdu.Seq {
	minBuf := e.availBuf()
	for j := 0; j < e.n; j++ {
		if pdu.EntityID(j) != e.me && !e.evicted[j] && e.buf[j] < minBuf {
			minBuf = e.buf[j]
		}
	}
	credit := pdu.Seq(minBuf / (e.cfg.UnitsPerPDU * 2 * uint32(e.n)))
	if credit > e.cfg.Window {
		credit = e.cfg.Window
	}
	return credit
}

// availBuf returns this entity's free receive-buffer units: capacity minus
// resident PDUs (parked + RRL + PRL) times H.
func (e *Entity) availBuf() uint32 {
	used := uint64(e.Resident()) * uint64(e.cfg.UnitsPerPDU)
	if used >= uint64(e.cfg.BufferUnits) {
		return 0
	}
	return e.cfg.BufferUnits - uint32(used)
}

// noteResident updates the peak-occupancy statistic.
func (e *Entity) noteResident() {
	if r := e.Resident(); r > e.stats.MaxResident {
		e.stats.MaxResident = r
	}
}

// fl records one flight-recorder event. With no ring attached the call
// compiles to a single untaken branch (Record is nil-receiver-safe and
// inlined), matching the Tracer/Metrics/Ledger contract.
func (e *Entity) fl(t flight.EventType, src pdu.EntityID, seq pdu.Seq, kind pdu.Kind, peer pdu.EntityID, now time.Duration) {
	e.cfg.Flight.Record(t, uint8(kind), int32(src), uint64(seq), int32(peer), int64(now))
}

func (e *Entity) trace(t trace.EventType, src pdu.EntityID, seq pdu.Seq, kind pdu.Kind, now time.Duration) {
	if e.cfg.Tracer == nil {
		return
	}
	e.cfg.Tracer.Record(trace.Event{
		Type:   t,
		Entity: e.me,
		Msg:    trace.MsgID{Src: src, Seq: seq},
		Kind:   kind,
		At:     now,
	})
}

// --- Introspection (tests, benchmarks, tools) ---

// Seq returns the next sequence number this entity will assign.
func (e *Entity) Seq() pdu.Seq { return e.seq }

// REQ returns a copy of the next-expected vector.
func (e *Entity) REQ() []pdu.Seq {
	out := make([]pdu.Seq, e.n)
	copy(out, e.req)
	return out
}

// MinAL returns min over non-evicted j of AL[k][j]: every PDU from k
// below this is known accepted by the whole quorum (the PACK threshold).
// The value is cached and maintained incrementally; the invariant suite
// checks it against a from-scratch quorumMin after every step.
func (e *Entity) MinAL(k pdu.EntityID) pdu.Seq { return e.minAL[k] }

// MinPAL returns min over non-evicted j of PAL[k][j]: every PDU from k
// below this is known pre-acknowledged by the whole quorum (the ACK
// threshold). Cached like MinAL.
func (e *Entity) MinPAL(k pdu.EntityID) pdu.Seq { return e.minPAL[k] }

// Resident returns the number of PDUs currently held in the receive-side
// logs (parked + RRL + PRL + commit stage + total-order release stage).
func (e *Entity) Resident() int {
	r := e.parkedTotal + e.rrlTotal + e.prl.Len() + e.ackedTotal
	if e.to != nil {
		r += e.to.pending.Len()
	}
	return r
}

// Committed returns the highest contiguously delivered (committed)
// sequence number from source k.
func (e *Entity) Committed(k pdu.EntityID) pdu.Seq { return e.committed[k] }

// PRLSnapshot returns the current pre-acknowledged log in causal order.
func (e *Entity) PRLSnapshot() []*pdu.PDU { return e.prl.Slice() }

// PRLSnapshotInto appends the pre-acknowledged log onto dst and returns
// the extended slice — the scratch-reusing form of PRLSnapshot for
// callers that poll it (introspection, experiment sampling loops).
func (e *Entity) PRLSnapshotInto(dst []*pdu.PDU) []*pdu.PDU { return e.prl.AppendTo(dst) }

// RRLLen returns the number of accepted-but-not-preacknowledged PDUs from
// source k.
func (e *Entity) RRLLen(k pdu.EntityID) int { return e.rrl[k].Len() }

// SendLogLen returns the number of own PDUs retained for retransmission.
func (e *Entity) SendLogLen() int { return len(e.sendlog) }

// PendingSubmits returns the number of flow-blocked submissions.
func (e *Entity) PendingSubmits() int { return len(e.pendingSubmits) }

// Quiescent reports whether this entity owes the cluster nothing: no
// undelivered data, no queued submissions, no unanswered NeedAck.
func (e *Entity) Quiescent() bool { return !e.needsToSpeak() }

// DrainState is a snapshot of everything an entity still holds in its
// receive and send pipelines. The chaos harness's liveness predicates
// read it at quiesce: every DATA PDU must have left the pipeline (the
// *Data fields and DataResident must be zero), while trailing SYNC PDUs
// may legitimately remain in the logs — once nothing is left to deliver,
// no entity owes the cluster the confirmations that would flush them.
type DrainState struct {
	// Parked counts out-of-order arrivals awaiting gap repair;
	// ParkedData counts the DATA PDUs among them.
	Parked     int
	ParkedData int
	// RRL, PRL and Acked count PDUs in the accepted, pre-acknowledged
	// and commit stages respectively.
	RRL   int
	PRL   int
	Acked int
	// ReleasePending counts DATA PDUs held by the total-order stable-
	// release stage (always 0 in CO mode).
	ReleasePending int
	// PendingSubmits counts flow-blocked application submissions.
	PendingSubmits int
	// SendLog counts own PDUs retained for retransmission; SendLogData
	// counts the DATA PDUs among them.
	SendLog     int
	SendLogData int
	// DataResident counts accepted-but-undelivered DATA PDUs.
	DataResident int
}

// Drain returns the entity's pipeline snapshot.
func (e *Entity) Drain() DrainState {
	d := DrainState{
		Parked:         e.parkedTotal,
		ParkedData:     e.parkedData,
		RRL:            e.rrlTotal,
		PRL:            e.prl.Len(),
		Acked:          e.ackedTotal,
		PendingSubmits: len(e.pendingSubmits),
		SendLog:        len(e.sendlog),
		DataResident:   e.dataResident,
	}
	for _, p := range e.sendlog {
		if p.Kind == pdu.KindData {
			d.SendLogData++
		}
	}
	if e.to != nil {
		d.ReleasePending = e.to.pending.Len()
	}
	return d
}
