package core

// Entity-failure extension. The paper assumes all n entities stay up: a
// crashed or partitioned entity stops confirming, minAL/minPAL freeze,
// and no PDU in the whole cluster can ever be acknowledged again. This
// extension lets an entity be evicted from the confirmation quorum:
//
//   - evicted entities no longer participate in the minAL/minPAL
//     minimums, the flow-control buffer minimum, the deferred-
//     confirmation "heard from everyone" rule, or total-order stability;
//   - no retransmission requests are addressed to them;
//   - PDUs already accepted from them continue through the pipeline.
//
// Limitations (documented, inherent to the paper's source-only
// retransmission): eviction is NOT virtual synchrony. PDUs the evicted
// entity broadcast that some survivors lost can only be repaired by the
// evicted source itself, so a dependent delivery can stall at those
// survivors; and there is no rejoin — recovery of a crashed entity is a
// membership problem outside the paper's scope.
//
// Suspicion can be driven manually (Evict) or automatically: with
// Config.SuspectAfter > 0, an entity that has owed the cluster
// confirmations for that long without hearing anything from a peer
// evicts it. Quiescent peers are never suspected — silence is only
// suspicious while help is being asked for.

import (
	"errors"
	"fmt"
	"time"

	"cobcast/internal/flight"
	"cobcast/internal/pdu"
)

// ErrSelfEvict is returned when an entity is asked to evict itself.
var ErrSelfEvict = errors.New("core: cannot evict self")

// Evict removes entity k from the confirmation quorum. It is idempotent.
// The returned output may contain deliveries unblocked by the shrunken
// quorum and fresh confirmation PDUs.
func (e *Entity) Evict(k pdu.EntityID, now time.Duration) (Output, error) {
	var out Output
	if k == e.me {
		return out, ErrSelfEvict
	}
	if k < 0 || int(k) >= e.n {
		return out, fmt.Errorf("%w: evict %d", ErrBadID, k)
	}
	if !e.evicted[k] {
		e.evicted[k] = true
		e.stats.Evicted++
		e.fl(flight.EvEvict, e.me, 0, 0, k, now)
		e.dropFromQuorum(int(k))
		// The quorum shrank: the one write that can move every cached
		// minimum at once, and the only full-recompute site.
		e.refreshMinima()
		// Re-evaluate everything that was waiting on k's confirmations.
		e.finish(now, &out)
	}
	return out, nil
}

// Evicted reports whether entity k has been evicted here.
func (e *Entity) Evicted(k pdu.EntityID) bool { return e.evicted[k] }

// dropFromQuorum maintains the bitmap caches across an eviction: k
// leaves the alive set (quorum scans), stops counting toward the
// deferred-confirmation rule, is no longer a RET candidate, and the
// total-order stability cache — whose membership just changed — is
// recomputed at the next release probe.
func (e *Entity) dropFromQuorum(k int) {
	e.alive.Clear(k)
	e.unheard.Clear(k)
	e.gapBits.Clear(k)
	if e.to != nil {
		e.to.unsatValid = false
	}
}

// aliveColumns iterates the entities that still count toward quorums.
func (e *Entity) quorumMin(row []pdu.Seq) pdu.Seq {
	m := pdu.Seq(0)
	first := true
	for j := 0; j < e.n; j++ {
		if e.evicted[j] {
			continue
		}
		if first || row[j] < m {
			m = row[j]
			first = false
		}
	}
	if first {
		// Everyone else evicted: only our own view remains.
		return row[e.me]
	}
	return m
}

// noteHeard records liveness evidence for the suspicion timer.
func (e *Entity) noteHeard(j pdu.EntityID, now time.Duration) {
	e.lastHeard[j] = now
	e.heardOnce[j] = true
}

// suspectTimeout returns the effective silence threshold: SuspectAfter
// normally, shortened to PressureSuspectAfter while the memory ledger is
// under pressure (≥ half budget). A stalled peer is the one failure that
// grows the logs without bound, so pressure justifies suspecting sooner;
// pressure alone (SuspectAfter zero) never evicts anyone.
func (e *Entity) suspectTimeout() time.Duration {
	d := e.cfg.SuspectAfter
	if p := e.cfg.PressureSuspectAfter; p > 0 && p < d &&
		e.cfg.Ledger != nil && e.cfg.Ledger.UnderPressure() {
		return p
	}
	return d
}

// maybeSuspect auto-evicts peers that stayed silent while we owed the
// cluster confirmations. Runs from Tick.
func (e *Entity) maybeSuspect(now time.Duration, out *Output) {
	if e.cfg.SuspectAfter <= 0 || !e.owed {
		return
	}
	timeout := e.suspectTimeout()
	for j := 0; j < e.n; j++ {
		id := pdu.EntityID(j)
		if id == e.me || e.evicted[j] {
			continue
		}
		last := e.lastHeard[j]
		if !e.heardOnce[j] || last < e.owedSince {
			// Silence only counts while help is being asked for: measure
			// from when the obligation arose if the peer was last heard
			// before it.
			last = e.owedSince
		}
		if now-last >= timeout {
			e.evicted[j] = true
			e.stats.Evicted++
			e.stats.AutoSuspected++
			e.fl(flight.EvEvict, e.me, 0, 0, id, now)
			if now-last < e.cfg.SuspectAfter {
				// Only the shortened timer could have fired: a
				// pressure-driven eviction, not an ordinary suspicion.
				e.stats.PressureEvicted++
			}
			e.dropFromQuorum(j)
			e.refreshMinima()
			_ = out // finish runs after maybeSuspect in Tick
		}
	}
}
