package core_test

import (
	"testing"
	"time"

	"cobcast/internal/core"
	"cobcast/internal/pdu"
)

// FuzzReceiveWire feeds arbitrary datagrams (decoded through the real
// wire codec, as the UDP runtime does) into an entity: whatever arrives,
// Receive must never panic and must preserve the entity's ability to
// make progress with a legitimate peer afterwards.
func FuzzReceiveWire(f *testing.F) {
	good := &pdu.PDU{Kind: pdu.KindData, CID: 7, Src: 1, SEQ: 1,
		ACK: []pdu.Seq{1, 1, 1}, BUF: 100, LSrc: pdu.NoEntity, Data: []byte("hi")}
	b, err := good.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b)
	ret := &pdu.PDU{Kind: pdu.KindRet, CID: 7, Src: 2,
		ACK: []pdu.Seq{1, 1, 1}, LSrc: 0, LSeq: 5}
	b2, err := ret.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b2)
	f.Add([]byte("garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := core.New(core.Config{ID: 0, N: 3, ClusterID: 7})
		if err != nil {
			t.Fatal(err)
		}
		p, err := pdu.Unmarshal(data)
		if err != nil {
			return // the runtime drops undecodable datagrams
		}
		_, _ = e.Receive(p, 0) // may error; must not panic
		// The entity must still function.
		out := e.Submit([]byte("after"), time.Millisecond)
		if len(out.PDUs) == 0 && e.PendingSubmits() == 0 {
			t.Fatal("entity wedged after fuzzed PDU")
		}
	})
}

// FuzzReceiveCrafted builds structurally valid but adversarial PDUs
// (wild sequence numbers, huge ACK entries, inconsistent RET ranges) and
// checks the entity neither panics nor violates basic invariants.
func FuzzReceiveCrafted(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint64(1), uint64(1), uint64(1), uint64(1), uint8(0), uint64(0), false)
	f.Add(uint8(2), uint8(4), uint64(1<<60), uint64(9), uint64(0), uint64(1<<62), uint8(1), uint64(1<<61), true)
	f.Fuzz(func(t *testing.T, srcRaw, kindRaw uint8, seq, a0, a1, a2 uint64,
		lsrcRaw uint8, lseq uint64, need bool) {
		e, err := core.New(core.Config{ID: 0, N: 3})
		if err != nil {
			t.Fatal(err)
		}
		kinds := []pdu.Kind{pdu.KindData, pdu.KindSync, pdu.KindAckOnly, pdu.KindRet}
		p := &pdu.PDU{
			Kind:    kinds[int(kindRaw)%len(kinds)],
			Src:     pdu.EntityID(srcRaw % 3),
			ACK:     []pdu.Seq{pdu.Seq(a0), pdu.Seq(a1), pdu.Seq(a2)},
			NeedAck: need,
			LSrc:    pdu.NoEntity,
		}
		if p.Kind.Sequenced() {
			p.SEQ = pdu.Seq(seq | 1)
		}
		if p.Kind == pdu.KindRet {
			p.LSrc = pdu.EntityID(lsrcRaw % 3)
			p.LSeq = pdu.Seq(lseq | 1)
		}
		for i := 0; i < 3; i++ {
			_, _ = e.Receive(p.Clone(), time.Duration(i)*time.Millisecond)
		}
		// Ticks after adversarial input must not panic either.
		for i := 0; i < 3; i++ {
			e.Tick(time.Duration(10+i) * 10 * time.Millisecond)
		}
		if e.Resident() < 0 {
			t.Fatal("negative residency")
		}
	})
}
