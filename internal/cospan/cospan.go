// Package cospan assembles flight-recorder dumps (/tracez documents)
// into Chrome trace-event JSON: per-message lifecycle spans on each
// node, linked by cross-node flow arrows from the sequencing node to
// every acceptor. Load the output in Perfetto (ui.perfetto.dev) or
// chrome://tracing to see a broadcast fan out: submit → sequence →
// wire-out at the origin, wire-in → accept → commit → deliver at every
// peer, with retransmission requests and serves marked on the way.
//
// Each node becomes one "process" (pid = its index in the dump, name =
// its label); within a process, messages are grouped onto one "thread"
// track per source entity. Timestamps are each node's flight timestamps
// shifted by its epoch, so wall-clock dumps from different machines
// align as well as their clocks do; virtual-time dumps (epoch 0, the
// simulator) share a common zero by construction.
package cospan

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"cobcast/internal/flight"
	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
)

// TraceEvent is one entry of the Chrome trace-event format (the JSON
// array flavour). Only the fields this assembler emits are declared.
type TraceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   int            `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// Trace is the top-level Chrome trace document.
type Trace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// msgKey identifies one sequenced message cluster-wide.
type msgKey struct {
	src int32
	seq uint64
}

func (k msgKey) String() string { return fmt.Sprintf("s%d#%d", k.src, k.seq) }

// nodeMsg is one message's event set on one node.
type nodeMsg struct {
	first, last int64 // ns, node-relative + epoch
	events      []flight.Event
	has         map[flight.EventType]int64 // type -> earliest ts
}

// Assemble converts flight dumps into trace events. Nodes are indexed
// in input order (pid = index); pass the Nodes slice of a /tracez
// document, or a concatenation of several.
func Assemble(nodes []obsv.NodeFlight) []TraceEvent {
	var out []TraceEvent
	// perNode[i] maps message -> its events on node i.
	perNode := make([]map[msgKey]*nodeMsg, len(nodes))

	for i, nf := range nodes {
		out = append(out, TraceEvent{
			Name: "process_name", Ph: "M", Pid: i,
			Args: map[string]any{"name": "node " + nf.Node},
		})
		msgs := make(map[msgKey]*nodeMsg)
		perNode[i] = msgs
		for j := range nf.Events {
			// JSON-decoded dumps carry only TypeName; rehydrate Type.
			if ev := &nf.Events[j]; ev.Type == 0 && ev.TypeName != "" {
				ev.Type = flight.TypeFromName(ev.TypeName)
			}
		}
		pairSubmits(nf.Events)
		for _, ev := range nf.Events {
			if ev.Seq == 0 {
				// Unsequenced events (backpressure, eviction, unpaired
				// submits) stand alone as instants.
				out = append(out, TraceEvent{
					Name: ev.TypeName, Ph: "i", S: "p",
					Ts: tsUS(nf.EpochUnixNano, ev.At), Pid: i, Tid: int(ev.Src),
					Args: instArgs(ev),
				})
				continue
			}
			k := msgKey{src: ev.Src, seq: ev.Seq}
			m := msgs[k]
			if m == nil {
				m = &nodeMsg{first: ev.At, last: ev.At, has: make(map[flight.EventType]int64)}
				msgs[k] = m
			}
			if ev.At < m.first {
				m.first = ev.At
			}
			if ev.At > m.last {
				m.last = ev.At
			}
			if t, ok := m.has[ev.Type]; !ok || ev.At < t {
				m.has[ev.Type] = ev.At
			}
			m.events = append(m.events, ev)
		}
	}

	// One slice per (node, message), with the lifecycle steps in args and
	// retransmission events additionally marked as instants.
	threads := make(map[[2]int]bool)
	for i, msgs := range perNode {
		for k, m := range msgs {
			tid := int(k.src)
			if !threads[[2]int{i, tid}] {
				threads[[2]int{i, tid}] = true
				out = append(out, TraceEvent{
					Name: "thread_name", Ph: "M", Pid: i, Tid: tid,
					Args: map[string]any{"name": fmt.Sprintf("src %d", tid)},
				})
			}
			ts := tsUS(nodes[i].EpochUnixNano, m.first)
			dur := float64(m.last-m.first) / 1e3
			if dur <= 0 {
				dur = 1
			}
			steps := make(map[string]any, len(m.events))
			for _, ev := range m.events {
				steps[ev.TypeName] = appendStep(steps[ev.TypeName], tsUS(nodes[i].EpochUnixNano, ev.At))
			}
			out = append(out, TraceEvent{
				Name: k.String(), Ph: "X", Ts: ts, Dur: dur, Pid: i, Tid: tid,
				Args: map[string]any{"kind": kindName(m.events), "steps": steps},
			})
			for _, ev := range m.events {
				if ev.Type == flight.EvRetRequest || ev.Type == flight.EvRetServe {
					out = append(out, TraceEvent{
						Name: k.String() + " " + ev.TypeName, Ph: "i", S: "t",
						Ts: tsUS(nodes[i].EpochUnixNano, ev.At), Pid: i, Tid: tid,
						Args: instArgs(ev),
					})
				}
			}
		}
	}

	// Causal flow arrows: from the sequencing node's wire-out (fallback:
	// sequence) to every other node's wire-in (fallback: accept).
	flowID := 0
	for i, msgs := range perNode {
		for k, m := range msgs {
			src, isOrigin := m.has[flight.EvSequence]
			if !isOrigin {
				continue // not the node that sequenced k
			}
			if s, ok := m.has[flight.EvWireOut]; ok {
				src = s
			}
			for j, peerMsgs := range perNode {
				if j == i {
					continue
				}
				pm := peerMsgs[k]
				if pm == nil {
					continue
				}
				dst, ok := pm.has[flight.EvWireIn]
				if !ok {
					if dst, ok = pm.has[flight.EvAccept]; !ok {
						continue
					}
				}
				flowID++
				out = append(out,
					TraceEvent{Name: k.String(), Ph: "s", ID: flowID, Pid: i, Tid: int(k.src),
						Ts: tsUS(nodes[i].EpochUnixNano, src)},
					TraceEvent{Name: k.String(), Ph: "f", BP: "e", ID: flowID, Pid: j, Tid: int(k.src),
						Ts: tsUS(nodes[j].EpochUnixNano, dst)},
				)
			}
		}
	}

	sort.SliceStable(out, func(a, b int) bool { return out[a].Ts < out[b].Ts })
	return out
}

// pairSubmits back-fills sequence numbers onto submit events: a submit
// is recorded before its sequence number exists, so it arrives with
// Seq 0. Submissions sequence in FIFO order, so the k-th submit from
// the ring's retained window corresponds to the k-th retained DATA
// sequence event — pairing from the tail keeps the alignment correct
// when the ring has wrapped mid-stream.
func pairSubmits(events []flight.Event) {
	var submits, seqs []int
	for i, ev := range events {
		switch {
		case ev.Type == flight.EvSubmit:
			submits = append(submits, i)
		case ev.Type == flight.EvSequence && ev.Kind == uint8(pdu.KindData):
			seqs = append(seqs, i)
		}
	}
	for k := 1; k <= len(submits) && k <= len(seqs); k++ {
		sub := &events[submits[len(submits)-k]]
		sub.Seq = events[seqs[len(seqs)-k]].Seq
	}
}

func tsUS(epochNS, atNS int64) float64 { return float64(epochNS+atNS) / 1e3 }

func instArgs(ev flight.Event) map[string]any {
	a := map[string]any{"src": ev.Src, "seq": ev.Seq}
	if ev.Peer >= 0 {
		a["peer"] = ev.Peer
	}
	return a
}

func appendStep(prev any, ts float64) any {
	switch v := prev.(type) {
	case nil:
		return ts
	case float64:
		return []float64{v, ts}
	case []float64:
		return append(v, ts)
	}
	return ts
}

// kindName reports the message's PDU kind as seen in its events.
// Retransmission events carry kind RET describing the chase, not the
// message, so they only count when nothing better was recorded (a node
// that requested a PDU it never received).
func kindName(events []flight.Event) string {
	fallback := "?"
	for _, ev := range events {
		if ev.Kind == 0 {
			continue
		}
		if ev.Type == flight.EvRetRequest || ev.Type == flight.EvRetServe {
			fallback = pdu.Kind(ev.Kind).String()
			continue
		}
		return pdu.Kind(ev.Kind).String()
	}
	return fallback
}

// WriteJSON assembles the dumps and writes the Chrome trace document.
func WriteJSON(w io.Writer, nodes []obsv.NodeFlight) error {
	tr := Trace{TraceEvents: Assemble(nodes), DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}
