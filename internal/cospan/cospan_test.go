package cospan

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"cobcast/internal/flight"
	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
	"cobcast/internal/sim"
	"cobcast/internal/simrun"
)

func mkEvent(t flight.EventType, kind pdu.Kind, src int32, seq uint64, peer int32, at int64) flight.Event {
	return flight.Event{At: at, Type: t, TypeName: t.String(), Src: src, Seq: seq, Kind: uint8(kind), Peer: peer}
}

func TestAssembleSlicesAndFlows(t *testing.T) {
	nodes := []obsv.NodeFlight{
		{Node: "0", Events: []flight.Event{
			mkEvent(flight.EvSubmit, pdu.KindData, 0, 0, -1, 1000),
			mkEvent(flight.EvSequence, pdu.KindData, 0, 1, -1, 2000),
			mkEvent(flight.EvWireOut, pdu.KindData, 0, 1, -1, 3000),
			mkEvent(flight.EvDeliver, pdu.KindData, 0, 1, -1, 9000),
		}},
		{Node: "1", Events: []flight.Event{
			mkEvent(flight.EvWireIn, pdu.KindData, 0, 1, -1, 5000),
			mkEvent(flight.EvAccept, pdu.KindData, 0, 1, -1, 5500),
			mkEvent(flight.EvCommit, pdu.KindData, 0, 1, -1, 7000),
			mkEvent(flight.EvDeliver, pdu.KindData, 0, 1, -1, 8000),
		}},
	}
	events := Assemble(nodes)

	var slices, flowStarts, flowEnds int
	for _, ev := range events {
		switch {
		case ev.Ph == "X" && ev.Name == "s0#1":
			slices++
			if ev.Pid == 1 {
				if ev.Ts != 5.0 {
					t.Errorf("peer slice ts = %v, want 5.0 us", ev.Ts)
				}
				if ev.Dur != 3.0 {
					t.Errorf("peer slice dur = %v, want 3.0 us", ev.Dur)
				}
			}
		case ev.Ph == "s":
			flowStarts++
			if ev.Pid != 0 || ev.Ts != 3.0 {
				t.Errorf("flow start pid=%d ts=%v, want pid 0 at wire-out 3.0", ev.Pid, ev.Ts)
			}
		case ev.Ph == "f":
			flowEnds++
			if ev.Pid != 1 || ev.Ts != 5.0 {
				t.Errorf("flow end pid=%d ts=%v, want pid 1 at wire-in 5.0", ev.Pid, ev.Ts)
			}
		}
	}
	if slices != 2 {
		t.Errorf("got %d s0#1 slices, want one per node (2)", slices)
	}
	if flowStarts != 1 || flowEnds != 1 {
		t.Errorf("got %d/%d flow starts/ends, want 1/1", flowStarts, flowEnds)
	}
}

func TestPairSubmitsBackfillsSeq(t *testing.T) {
	events := []flight.Event{
		mkEvent(flight.EvSubmit, pdu.KindData, 3, 0, -1, 100),
		mkEvent(flight.EvSequence, pdu.KindData, 3, 7, -1, 150),
		mkEvent(flight.EvSubmit, pdu.KindData, 3, 0, -1, 200),
		mkEvent(flight.EvSequence, pdu.KindData, 3, 9, -1, 250),
	}
	pairSubmits(events)
	if events[0].Seq != 7 || events[2].Seq != 9 {
		t.Fatalf("submit seqs = %d, %d; want 7, 9", events[0].Seq, events[2].Seq)
	}
}

// TestAssembleFromSimulatedRun drives a real lossy simulated cluster
// with flight recording, assembles the rings, and asserts every
// sequenced data message yields a slice on every node plus a flow from
// its origin to each peer — the end-to-end shape `cotrace live` emits.
func TestAssembleFromSimulatedRun(t *testing.T) {
	const n = 3
	c, err := simrun.New(simrun.Options{
		N:            n,
		FlightEvents: 1024,
		Net: []sim.NetOption{
			sim.NetUniformDelay(time.Millisecond),
			sim.NetLossRate(0.2),
			sim.NetSeed(7),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		c.SubmitAt(pdu.EntityID(i%n), []byte("m"), time.Duration(i)*2*time.Millisecond)
	}
	if _, err := c.RunToQuiescence(time.Minute); err != nil {
		t.Fatal(err)
	}
	if c.TotalStats().Retransmitted == 0 {
		t.Fatal("run exercised no retransmissions; raise loss or messages")
	}

	dumps := c.FlightDumps()
	if len(dumps) != n {
		t.Fatalf("got %d flight dumps, want %d", len(dumps), n)
	}
	events := Assemble(dumps)

	// Every data message must have one slice per node and n-1 flow ends.
	sliceCount := make(map[string]int)
	flowEnd := make(map[string]int)
	retMarks := 0
	for _, ev := range events {
		switch ev.Ph {
		case "X":
			if args, ok := ev.Args["kind"]; ok && args == "DATA" {
				sliceCount[ev.Name]++
			}
		case "f":
			flowEnd[ev.Name]++
		case "i":
			retMarks++
		}
	}
	if len(sliceCount) == 0 {
		t.Fatal("no DATA slices assembled")
	}
	for name, got := range sliceCount {
		if got != n {
			t.Errorf("message %s has %d slices, want one per node (%d)", name, got, n)
		}
		if flowEnd[name] < n-1 {
			t.Errorf("message %s has %d flow ends, want >= %d", name, flowEnd[name], n-1)
		}
	}
	if retMarks == 0 {
		t.Error("lossy run produced no instant markers (retransmit/unsequenced events)")
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, dumps); err != nil {
		t.Fatal(err)
	}
	var doc Trace
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("emitted trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(events) {
		t.Fatalf("round-trip lost events: %d != %d", len(doc.TraceEvents), len(events))
	}
}
