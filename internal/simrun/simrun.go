// Package simrun wires core CO-protocol entities to the discrete-event
// simulator: it routes broadcast output PDUs through a simulated MC
// network, drives the entities' deferred-confirmation and retransmission
// timers with virtual ticks, and collects deliveries, latencies and
// traces. Tests, benchmarks and cmd/cobench all reproduce the paper's
// experiments through this harness, so results are deterministic and
// machine-independent.
package simrun

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"cobcast/internal/core"
	"cobcast/internal/flight"
	"cobcast/internal/obsv"
	"cobcast/internal/pdu"
	"cobcast/internal/sim"
	"cobcast/internal/trace"
	"cobcast/internal/workload"
)

// Options configures a simulated cluster.
type Options struct {
	// N is the cluster size.
	N int
	// Core is the template entity configuration; ID/N/ClusterID/Tracer
	// are filled per entity. Zero fields take protocol defaults.
	Core core.Config
	// Net configures the simulated network (delay, loss, seed).
	Net []sim.NetOption
	// TickEvery is the virtual tick period driving entity timers; it
	// defaults to the deferred-ack interval.
	TickEvery time.Duration
	// Trace enables event recording (needed for latency analysis and the
	// ordering checkers).
	Trace bool
	// PDUTap, if set, observes every PDU arriving at an entity before the
	// entity processes it (used to capture realistic PDU streams for
	// replay microbenchmarks).
	PDUTap func(to, from pdu.EntityID, p *pdu.PDU)
	// Registry, if set, receives each entity's live metrics and a state
	// snapshot provider, so an obsv HTTP endpoint can watch a simulated
	// run. Snapshot providers serialize against the simulation steps of
	// RunToQuiescence via the cluster's step mutex; callers stepping
	// c.Sim directly while a scraper is live should hold c.StepLock.
	Registry *obsv.Registry
	// WireVersion, when nonzero, routes every broadcast datagram through
	// the real wire codec (1 = fixed-width v1, 2 = delta-stamp v2): each
	// datagram is encoded once at the sender and decoded per delivered
	// copy, so simulated loss and duplication exercise the v2 per-source
	// stamp caches exactly as on a lossy wire. Zero keeps the historical
	// PDU-pointer path (and its pinned trace digests). Delta stamps
	// rejected for a lost reference are dropped like lost PDUs and show
	// up in the network's CodecDropped counter; the protocol recovers
	// them by retransmission or the next full-stamp sync point.
	WireVersion int
	// StampInterval is the v2 full-stamp sync interval K (0 selects the
	// codec default; 1 full-stamps every PDU). Ignored unless
	// WireVersion is 2.
	StampInterval int
	// MemBudgetBytes, when > 0, gives every entity its own memory ledger
	// with that byte budget (core.Config.Ledger), so log retention is
	// accounted and pressure-shortened suspicion can fire. Shed
	// additionally drops application submissions at an over-budget
	// sender, mirroring the node runtime's BackpressureShed admission
	// (the simulator cannot block a producer in virtual time).
	MemBudgetBytes int64
	Shed           bool
	// FlightEvents, when > 0, gives every entity its own flight-recorder
	// ring of that many events (rounded up to a power of two), exposed on
	// Cluster.Flights. Timestamps are virtual time (epoch 0). The chaos
	// harness dumps these rings — with each entity's stall verdicts —
	// when a failing seed is persisted.
	FlightEvents int
}

// Cluster is a simulated CO-protocol cluster.
type Cluster struct {
	Sim      *sim.Sim
	Net      *sim.Net
	Entities []*core.Entity
	Recorder *trace.Recorder

	// Ledgers[i] is entity i's memory ledger; nil entries without
	// Options.MemBudgetBytes.
	Ledgers []*core.Ledger

	// Flights[i] is entity i's flight recorder; nil entries without
	// Options.FlightEvents.
	Flights []*flight.Ring

	// Delivered[i] is entity i's delivery sequence.
	Delivered [][]core.Delivery

	// StepLock serializes virtual-time stepping against concurrent
	// state-snapshot scrapes; RunToQuiescence holds it across each step.
	StepLock sync.Mutex

	n         int
	tickEvery time.Duration
	submitted int
	// frozen[i] marks entity i stalled: it stops reading, ticking and
	// submitting, permanently, while its links stay up. submittedBy[i]
	// counts submissions entity i actually executed (scheduled ones
	// skipped by a freeze or shed by the ledger are counted in skipped
	// and shedCount instead).
	frozen      []bool
	submittedBy []int
	skipped     int
	shedCount   int
	shed        bool
	sendTimes   map[trace.MsgID]time.Duration
	// Tap[i] per-message application-to-application delay samples for
	// deliveries at entity i (Figure 8's Tap).
	tapSamples []time.Duration
}

// New builds a simulated cluster of n entities.
func New(opts Options) (*Cluster, error) {
	if opts.N < 2 {
		return nil, fmt.Errorf("simrun: need at least 2 entities, got %d", opts.N)
	}
	s := sim.New()
	netOpts := opts.Net
	if opts.WireVersion != 0 {
		codec, err := wireCodec(opts.N, opts.WireVersion, opts.StampInterval)
		if err != nil {
			return nil, err
		}
		netOpts = append(append([]sim.NetOption{}, opts.Net...), codec)
	}
	net := sim.NewNet(s, opts.N, netOpts...)
	c := &Cluster{
		Sim:         s,
		Net:         net,
		Entities:    make([]*core.Entity, opts.N),
		Ledgers:     make([]*core.Ledger, opts.N),
		Flights:     make([]*flight.Ring, opts.N),
		Delivered:   make([][]core.Delivery, opts.N),
		n:           opts.N,
		frozen:      make([]bool, opts.N),
		submittedBy: make([]int, opts.N),
		shed:        opts.Shed,
		sendTimes:   make(map[trace.MsgID]time.Duration),
	}
	if opts.Trace {
		c.Recorder = &trace.Recorder{}
	}
	cfg := opts.Core
	cfg.N = opts.N
	cfg.Tracer = c.Recorder
	for i := 0; i < opts.N; i++ {
		cfg.ID = pdu.EntityID(i)
		cfg.Metrics = nil
		cfg.Ledger = nil
		cfg.Flight = nil
		if opts.FlightEvents > 0 {
			c.Flights[i] = flight.NewRing(opts.FlightEvents)
			cfg.Flight = c.Flights[i]
		}
		if opts.MemBudgetBytes > 0 {
			// One ledger per entity: the single-writer accounting
			// invariant holds trivially on the simulator's one goroutine,
			// and per-entity budgets mirror the node runtime.
			c.Ledgers[i] = core.NewLedger(opts.MemBudgetBytes)
			cfg.Ledger = c.Ledgers[i]
		}
		if opts.Registry != nil {
			cfg.Metrics = obsv.NewEntityMetrics()
		}
		ent, err := core.New(cfg)
		if err != nil {
			return nil, fmt.Errorf("simrun: entity %d: %w", i, err)
		}
		c.Entities[i] = ent
		if opts.Registry != nil {
			opts.Registry.RegisterNode(strconv.Itoa(i), cfg.Metrics, nil, func() (obsv.StateSnapshot, bool) {
				c.StepLock.Lock()
				defer c.StepLock.Unlock()
				return ent.Snapshot(), true
			})
		}
	}
	c.tickEvery = opts.TickEvery
	if c.tickEvery == 0 {
		withDefaults := cfg
		if withDefaults.DeferredAckInterval == 0 {
			withDefaults.DeferredAckInterval = core.DefaultDeferredAckInterval
		}
		c.tickEvery = withDefaults.DeferredAckInterval
	}
	for i := 0; i < opts.N; i++ {
		id := pdu.EntityID(i)
		net.Attach(id, func(from pdu.EntityID, p *pdu.PDU) {
			if c.frozen[id] {
				// The stalled process never reads: the datagram reached
				// its socket but is dropped unprocessed.
				return
			}
			if opts.PDUTap != nil {
				opts.PDUTap(id, from, p)
			}
			out, err := c.Entities[id].Receive(p, s.Now())
			if err != nil {
				// Simulated networks deliver only valid PDUs; an error
				// here is a harness bug worth surfacing loudly.
				panic(fmt.Sprintf("simrun: entity %d receive: %v", id, err))
			}
			c.dispatch(id, out)
		})
		c.scheduleTick(id)
	}
	return c, nil
}

// wireCodec builds the sim.NetCodec for a cluster of n entities: one
// frame/stamp encoder per sender (its reference advances once per
// datagram, like a real link's) and one frame/stamp decoder per directed
// channel (mirroring the per-sender FIFO cache a receiving link keeps).
func wireCodec(n, version, stampK int) (sim.NetOption, error) {
	if version != 1 && version != 2 {
		return nil, fmt.Errorf("simrun: unsupported wire version %d", version)
	}
	encs := make([]pdu.FrameEncoder, n)
	var stamps []*pdu.StampEncoder
	if version == 2 {
		stamps = make([]*pdu.StampEncoder, n)
		for i := range stamps {
			stamps[i] = pdu.NewStampEncoder(stampK)
		}
	}
	decs := make([][]pdu.FrameDecoder, n) // decs[to][from]
	sdecs := make([][]pdu.StampDecoder, n)
	for to := range decs {
		decs[to] = make([]pdu.FrameDecoder, n)
		sdecs[to] = make([]pdu.StampDecoder, n)
		for from := range decs[to] {
			decs[to][from].SetStampDecoder(&sdecs[to][from])
		}
	}
	encode := func(from pdu.EntityID, batch []*pdu.PDU) []byte {
		e := &encs[from]
		if version == 2 {
			e.BeginV2(nil, stamps[from])
		} else {
			e.Begin(nil)
		}
		for _, p := range batch {
			if err := e.Append(p); err != nil {
				// Entities only emit encodable PDUs; failing to encode
				// one is a harness bug worth surfacing loudly.
				panic(fmt.Sprintf("simrun: encode from %d: %v", from, err))
			}
		}
		return e.Bytes()
	}
	decode := func(from, to pdu.EntityID, frame []byte) []*pdu.PDU {
		d := &decs[to][from]
		if err := d.Reset(frame); err != nil {
			panic(fmt.Sprintf("simrun: frame %d->%d: %v", from, to, err))
		}
		var out []*pdu.PDU
		var p pdu.PDU
		for {
			ok, err := d.Next(&p)
			if err != nil {
				if errors.Is(err, pdu.ErrDeltaDesync) {
					// A delta whose reference this channel lost (or a
					// duplicated delivery replaying one): the datagram's
					// remainder is dropped like loss, exactly as the
					// link layer treats it.
					return out
				}
				panic(fmt.Sprintf("simrun: decode %d->%d: %v", from, to, err))
			}
			if !ok {
				return out
			}
			// Clone: p.ACK/p.Data are scratch, overwritten by the next
			// decode, while the network replays these PDUs later; Delta
			// aliases the stamp decoder's scratch and Clone shares it,
			// so OwnDelta detaches an owned copy.
			out = append(out, p.Clone().OwnDelta())
		}
	}
	return sim.NetCodec(encode, decode), nil
}

// scheduleTick arms a self-rescheduling virtual timer for one entity.
// The chain ends when the entity is frozen (freezes never heal).
func (c *Cluster) scheduleTick(id pdu.EntityID) {
	c.Sim.After(c.tickEvery, func() {
		if c.frozen[id] {
			return
		}
		out := c.Entities[id].Tick(c.Sim.Now())
		c.dispatch(id, out)
		c.scheduleTick(id)
	})
}

// Freeze stalls entity id from the current virtual time on: it stops
// reading, ticking and submitting, permanently, while its links stay up
// (datagrams addressed to it are still transported and then dropped
// unread). Distinct from Net.Isolate, which models the link going down.
func (c *Cluster) Freeze(id pdu.EntityID) { c.frozen[id] = true }

// Frozen reports whether entity id has been frozen.
func (c *Cluster) Frozen(id pdu.EntityID) bool { return c.frozen[id] }

// dispatch routes an entity's output: PDUs onto the network as one
// batched datagram, deliveries into the per-entity record and the Tap
// histogram.
func (c *Cluster) dispatch(id pdu.EntityID, out core.Output) {
	for _, p := range out.PDUs {
		if p.Kind.Sequenced() && p.Src == id {
			m := trace.MsgID{Src: p.Src, Seq: p.SEQ}
			if _, seen := c.sendTimes[m]; !seen {
				c.sendTimes[m] = c.Sim.Now()
			}
		}
	}
	c.Net.Broadcast(id, out.PDUs...)
	for _, d := range out.Deliveries {
		c.Delivered[id] = append(c.Delivered[id], d)
		if sent, ok := c.sendTimes[trace.MsgID{Src: d.Src, Seq: d.SEQ}]; ok {
			c.tapSamples = append(c.tapSamples, c.Sim.Now()-sent)
		}
	}
}

// SubmitAt schedules an application broadcast from sender at virtual time
// at.
func (c *Cluster) SubmitAt(sender pdu.EntityID, data []byte, at time.Duration) {
	c.submitted++
	c.Sim.At(at, func() {
		if c.frozen[sender] {
			c.skipped++
			return
		}
		if c.shed && c.Ledgers[sender] != nil && c.Ledgers[sender].OverBudget() {
			// Producer-side admission, as in Node.admit's shed mode: the
			// submission never reaches the entity, so no protocol state
			// records it.
			c.Ledgers[sender].NoteShed()
			c.skipped++
			c.shedCount++
			return
		}
		c.submittedBy[sender]++
		out := c.Entities[sender].Submit(data, c.Sim.Now())
		c.dispatch(sender, out)
	})
}

// LoadWorkload schedules every message of a workload generator, spacing
// messages by their generator-provided gaps starting at virtual time 0.
func (c *Cluster) LoadWorkload(gen workload.Generator) {
	var at time.Duration
	for {
		m, ok := gen.Next()
		if !ok {
			return
		}
		at += m.Gap
		c.SubmitAt(m.Sender, m.Payload, at)
	}
}

// Submitted returns the number of scheduled application broadcasts.
func (c *Cluster) Submitted() int { return c.submitted }

// SubmittedBy returns per-sender counts of submissions actually executed
// (scheduled minus frozen-skipped minus shed).
func (c *Cluster) SubmittedBy() []int {
	out := make([]int, c.n)
	copy(out, c.submittedBy)
	return out
}

// ShedCount returns the number of submissions shed by producer-side
// ledger admission; Skipped additionally includes submissions skipped
// because their sender was frozen.
func (c *Cluster) ShedCount() int { return c.shedCount }

// Skipped returns the number of scheduled submissions that never reached
// an entity (frozen sender or shed).
func (c *Cluster) Skipped() int { return c.skipped }

// AllDelivered reports whether every entity has delivered every submitted
// message.
func (c *Cluster) AllDelivered() bool {
	for i := 0; i < c.n; i++ {
		if len(c.Delivered[i]) < c.submitted {
			return false
		}
	}
	return true
}

// Quiescent reports whether every entity owes the cluster nothing.
func (c *Cluster) Quiescent() bool {
	for _, e := range c.Entities {
		if !e.Quiescent() {
			return false
		}
	}
	return true
}

// RunToQuiescence advances virtual time in tick-sized steps until all
// submitted messages are delivered everywhere and every entity is
// quiescent, or until deadline virtual time passes. It returns the virtual
// time at completion.
func (c *Cluster) RunToQuiescence(deadline time.Duration) (time.Duration, error) {
	step := c.tickEvery
	for c.Sim.Now() < deadline {
		c.StepLock.Lock()
		c.Sim.RunFor(step)
		done := c.AllDelivered() && c.Quiescent()
		c.StepLock.Unlock()
		if done {
			return c.Sim.Now(), nil
		}
	}
	for i := 0; i < c.n; i++ {
		if len(c.Delivered[i]) < c.submitted {
			return c.Sim.Now(), fmt.Errorf(
				"simrun: deadline %v: entity %d delivered %d/%d (stats %+v)",
				deadline, i, len(c.Delivered[i]), c.submitted, c.Entities[i].Stats())
		}
	}
	return c.Sim.Now(), fmt.Errorf("simrun: deadline %v: delivered but not quiescent", deadline)
}

// RunUntil advances virtual time in tick-sized steps until done reports
// true or deadline virtual time passes. It is RunToQuiescence with a
// caller-supplied completion predicate, for runs where whole-cluster
// quiescence is unreachable (a frozen entity never drains).
func (c *Cluster) RunUntil(done func() bool, deadline time.Duration) (time.Duration, error) {
	for c.Sim.Now() < deadline {
		c.StepLock.Lock()
		c.Sim.RunFor(c.tickEvery)
		ok := done()
		c.StepLock.Unlock()
		if ok {
			return c.Sim.Now(), nil
		}
	}
	return c.Sim.Now(), fmt.Errorf("simrun: deadline %v: completion condition not met", deadline)
}

// TapSamples returns the application-to-application delivery delays
// (Figure 8's Tap) observed so far.
func (c *Cluster) TapSamples() []time.Duration {
	out := make([]time.Duration, len(c.tapSamples))
	copy(out, c.tapSamples)
	return out
}

// Drains returns each entity's pipeline snapshot. The chaos harness's
// liveness predicates read it after RunToQuiescence to assert no DATA PDU
// is stuck anywhere in the cluster.
func (c *Cluster) Drains() []core.DrainState {
	out := make([]core.DrainState, c.n)
	for i, e := range c.Entities {
		out[i] = e.Drain()
	}
	return out
}

// FlightDumps returns each recorded entity's flight events as /tracez-
// style dumps. EpochUnixNano stays 0: timestamps are virtual time.
// Entities without rings (Options.FlightEvents unset) are omitted.
func (c *Cluster) FlightDumps() []obsv.NodeFlight {
	var out []obsv.NodeFlight
	for i, fr := range c.Flights {
		if fr == nil {
			continue
		}
		out = append(out, obsv.NodeFlight{
			Node:     strconv.Itoa(i),
			Recorded: fr.Recorded(),
			Capacity: fr.Cap(),
			Events:   fr.Snapshot(nil),
		})
	}
	return out
}

// StallReport returns every entity's stall-analyzer verdicts at the
// current virtual time, attributed by entity index. Empty when no data
// is stuck anywhere.
func (c *Cluster) StallReport() []obsv.Stall {
	var out []obsv.Stall
	for i, e := range c.Entities {
		for _, st := range e.Stalls(c.Sim.Now(), 0) {
			st.Node = strconv.Itoa(i)
			out = append(out, st)
		}
	}
	return out
}

// Analyze runs the trace checkers over the recorded run. It requires the
// cluster to have been created with Trace: true.
func (c *Cluster) Analyze() (*trace.Analysis, error) {
	if c.Recorder == nil {
		return nil, fmt.Errorf("simrun: cluster was built without tracing")
	}
	return trace.Analyze(c.Recorder.Events(), c.n)
}

// TotalStats sums entity counters across the cluster.
func (c *Cluster) TotalStats() core.Stats {
	var t core.Stats
	for _, e := range c.Entities {
		s := e.Stats()
		t.DataSent += s.DataSent
		t.SyncSent += s.SyncSent
		t.AckOnlySent += s.AckOnlySent
		t.RetSent += s.RetSent
		t.DataRecv += s.DataRecv
		t.SyncRecv += s.SyncRecv
		t.AckOnlyRecv += s.AckOnlyRecv
		t.RetRecv += s.RetRecv
		t.Accepted += s.Accepted
		t.Duplicates += s.Duplicates
		t.Parked += s.Parked
		t.F1Detections += s.F1Detections
		t.F2Detections += s.F2Detections
		t.Retransmitted += s.Retransmitted
		t.Preacked += s.Preacked
		t.Acked += s.Acked
		t.Committed += s.Committed
		t.Delivered += s.Delivered
		t.CPIDisplaced += s.CPIDisplaced
		t.CPIDisplacement += s.CPIDisplacement
		t.DeferredConfirms += s.DeferredConfirms
		t.FlowBlocked += s.FlowBlocked
		t.InvalidPDUs += s.InvalidPDUs
		t.Evicted += s.Evicted
		t.AutoSuspected += s.AutoSuspected
		t.PressureEvicted += s.PressureEvicted
		if s.MaxResident > t.MaxResident {
			t.MaxResident = s.MaxResident
		}
	}
	return t
}
