package simrun

import (
	"testing"
	"time"

	"cobcast/internal/core"
	"cobcast/internal/sim"
	"cobcast/internal/workload"
)

// TestSoakLargeClusterCO pushes a larger cluster through a long lossy run
// in virtual time and checks the full CO service. Skipped in -short.
func TestSoakLargeClusterCO(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	c, err := New(Options{
		N:     10,
		Trace: true,
		Net: []sim.NetOption{
			sim.NetUniformDelay(time.Millisecond),
			sim.NetLossRate(0.05),
			sim.NetDuplicateRate(0.05),
			sim.NetSeed(1234),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.LoadWorkload(workload.NewContinuous(10, 40, 64))
	if _, err := c.RunToQuiescence(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	a, err := c.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckCOService(); err != nil {
		t.Fatal(err)
	}
	st := c.TotalStats()
	if st.Delivered != uint64(10*10*40) {
		t.Errorf("Delivered = %d, want %d", st.Delivered, 10*10*40)
	}
	t.Logf("soak: %d PDUs (%d data, %d sync, %d ackonly), %d retransmitted, max resident %d",
		st.DataSent+st.SyncSent+st.AckOnlySent+st.RetSent,
		st.DataSent, st.SyncSent, st.AckOnlySent, st.Retransmitted, st.MaxResident)
}

// TestSoakTotalOrder soaks the TO extension with a mixed workload.
func TestSoakTotalOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	c, err := New(Options{
		N:     6,
		Trace: true,
		Core:  core.Config{TotalOrder: true},
		Net: []sim.NetOption{
			sim.NetUniformDelay(time.Millisecond),
			sim.NetLossRate(0.08),
			sim.NetSeed(77),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.LoadWorkload(workload.NewInteractive(6, 150, 48, 2*time.Millisecond, 77))
	if _, err := c.RunToQuiescence(10 * time.Minute); err != nil {
		t.Fatal(err)
	}
	a, err := c.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckCOService(); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckTotalOrderPreserved(); err != nil {
		t.Fatal(err)
	}
}
