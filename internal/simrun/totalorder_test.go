package simrun

import (
	"math/rand"
	"testing"
	"time"

	"cobcast/internal/core"
	"cobcast/internal/pdu"
	"cobcast/internal/sim"
	"cobcast/internal/workload"
)

// runTO builds a TotalOrder-mode cluster, runs the workload to
// quiescence, and checks both the CO service and total order.
func runTO(t *testing.T, n int, gen workload.Generator, netOpts ...sim.NetOption) *Cluster {
	t.Helper()
	c, err := New(Options{
		N:     n,
		Trace: true,
		Core:  core.Config{TotalOrder: true},
		Net:   netOpts,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.LoadWorkload(gen)
	if _, err := c.RunToQuiescence(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	a, err := c.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckCOService(); err != nil {
		t.Fatalf("CO service: %v", err)
	}
	if err := a.CheckTotalOrderPreserved(); err != nil {
		t.Fatalf("total order: %v", err)
	}
	return c
}

func TestTotalOrderLossless(t *testing.T) {
	for _, n := range []int{2, 3, 5} {
		n := n
		t.Run(string(rune('0'+n))+"entities", func(t *testing.T) {
			t.Parallel()
			runTO(t, n, workload.NewContinuous(n, 8, 32),
				sim.NetUniformDelay(time.Millisecond))
		})
	}
}

func TestTotalOrderUnderLoss(t *testing.T) {
	runTO(t, 4, workload.NewContinuous(4, 6, 32),
		sim.NetUniformDelay(time.Millisecond),
		sim.NetLossRate(0.15),
		sim.NetSeed(3))
}

func TestTotalOrderUnderJitter(t *testing.T) {
	// Heterogeneous delays reorder arrivals across senders; every entity
	// must still deliver the identical sequence.
	runTO(t, 5, workload.NewContinuous(5, 5, 16),
		sim.NetSeed(17),
		sim.NetDelay(func(_, _ pdu.EntityID, rng *rand.Rand) time.Duration {
			return time.Duration(200+rng.Intn(3000)) * time.Microsecond
		}))
}

func TestTotalOrderLTimesConsistent(t *testing.T) {
	c := runTO(t, 3, workload.NewContinuous(3, 5, 16),
		sim.NetUniformDelay(time.Millisecond))
	// Every entity must assign the identical LTime to each message.
	type key struct {
		src int
		seq uint64
	}
	ref := make(map[key]uint64)
	for _, d := range c.Delivered[0] {
		ref[key{int(d.Src), uint64(d.SEQ)}] = d.LTime
		if d.LTime == 0 {
			t.Fatalf("LTime missing on %v", d)
		}
	}
	for e := 1; e < 3; e++ {
		for _, d := range c.Delivered[e] {
			if ref[key{int(d.Src), uint64(d.SEQ)}] != d.LTime {
				t.Fatalf("entity %d ltime mismatch on s%d#%d: %d vs %d",
					e, d.Src, d.SEQ, d.LTime, ref[key{int(d.Src), uint64(d.SEQ)}])
			}
		}
	}
	// LTimes must be consistent with per-source order.
	for e := 0; e < 3; e++ {
		last := make(map[int]uint64)
		for _, d := range c.Delivered[e] {
			if prev, ok := last[int(d.Src)]; ok && d.LTime <= prev {
				t.Fatalf("entity %d: ltime not increasing for source %d", e, d.Src)
			}
			last[int(d.Src)] = d.LTime
		}
	}
}

func TestTotalOrderSingleMessage(t *testing.T) {
	// One message into an idle cluster must still release (the stability
	// rule needs a committed key from every source; the gossip provides
	// them).
	c, err := New(Options{
		N:     4,
		Trace: true,
		Core:  core.Config{TotalOrder: true},
		Net:   []sim.NetOption{sim.NetUniformDelay(2 * time.Millisecond)},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.SubmitAt(0, []byte("solo"), 0)
	if _, err := c.RunToQuiescence(time.Minute); err != nil {
		t.Fatal(err)
	}
	for i, ds := range c.Delivered {
		if len(ds) != 1 || string(ds[0].Data) != "solo" {
			t.Errorf("entity %d: %v", i, ds)
		}
	}
}

func TestTotalOrderFuzz(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(1); seed <= 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		loss := []float64{0, 0.1, 0.25}[rng.Intn(3)]
		c, err := New(Options{
			N:     n,
			Trace: true,
			Core:  core.Config{TotalOrder: true},
			Net: []sim.NetOption{
				sim.NetUniformDelay(time.Duration(1+rng.Intn(3)) * time.Millisecond),
				sim.NetLossRate(loss),
				sim.NetSeed(seed),
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		c.LoadWorkload(workload.NewContinuous(n, 1+rng.Intn(6), 16))
		if _, err := c.RunToQuiescence(2 * time.Minute); err != nil {
			t.Fatalf("seed %d (n=%d loss=%v): %v", seed, n, loss, err)
		}
		a, err := c.Analyze()
		if err != nil {
			t.Fatal(err)
		}
		if err := a.CheckCOService(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := a.CheckTotalOrderPreserved(); err != nil {
			t.Fatalf("seed %d (n=%d loss=%v): %v", seed, n, loss, err)
		}
	}
}
