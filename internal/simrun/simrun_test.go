package simrun

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"cobcast/internal/core"
	"cobcast/internal/pdu"
	"cobcast/internal/sim"
	"cobcast/internal/workload"
)

const virtualDeadline = 30 * time.Second

// run builds a cluster, loads the workload, runs to quiescence and runs
// the full CO-service trace check.
func run(t *testing.T, opts Options, gen workload.Generator) *Cluster {
	t.Helper()
	opts.Trace = true
	c, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	c.LoadWorkload(gen)
	if _, err := c.RunToQuiescence(virtualDeadline); err != nil {
		t.Fatal(err)
	}
	a, err := c.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckCOService(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLosslessClusters(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		n := n
		t.Run(string(rune('0'+n))+"entities", func(t *testing.T) {
			t.Parallel()
			c := run(t, Options{
				N:   n,
				Net: []sim.NetOption{sim.NetUniformDelay(time.Millisecond)},
			}, workload.NewContinuous(n, 10, 32))
			st := c.TotalStats()
			if st.RetSent != 0 || st.Retransmitted != 0 {
				t.Errorf("lossless run retransmitted: %+v", st)
			}
		})
	}
}

func TestSingleMessageIdleCluster(t *testing.T) {
	// One message into an otherwise idle cluster must still be fully
	// acknowledged and delivered everywhere (the deferred-confirmation
	// gossip does the work), and the cluster must then go quiet.
	c := run(t, Options{
		N:   4,
		Net: []sim.NetOption{sim.NetUniformDelay(2 * time.Millisecond)},
	}, workload.NewSingleSource(0, 1, 64))
	for i, ds := range c.Delivered {
		if len(ds) != 1 || ds[0].Src != 0 || ds[0].SEQ != 1 {
			t.Errorf("entity %d deliveries: %v", i, ds)
		}
	}
	// After quiescence, a long further run must produce no new traffic.
	sent := c.Net.Stats().Sent
	c.Sim.RunFor(time.Second)
	if got := c.Net.Stats().Sent; got != sent {
		t.Errorf("cluster kept talking after quiescence: %d -> %d PDUs", sent, got)
	}
}

func TestLossyClusters(t *testing.T) {
	tests := []struct {
		name string
		n    int
		loss float64
		seed int64
	}{
		{"n3 loss5%", 3, 0.05, 1},
		{"n4 loss10%", 4, 0.10, 2},
		{"n3 loss30%", 3, 0.30, 3},
		{"n5 loss10%", 5, 0.10, 4},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			c := run(t, Options{
				N: tt.n,
				Net: []sim.NetOption{
					sim.NetUniformDelay(time.Millisecond),
					sim.NetLossRate(tt.loss),
					sim.NetSeed(tt.seed),
				},
			}, workload.NewContinuous(tt.n, 8, 32))
			st := c.TotalStats()
			if st.RetSent == 0 {
				t.Error("lossy run issued no retransmission requests")
			}
			if st.Retransmitted == 0 {
				t.Error("lossy run rebroadcast nothing")
			}
		})
	}
}

func TestTargetedLossBurst(t *testing.T) {
	// Drop every copy of one specific PDU on first transmission; the
	// selective repair path must recover exactly it.
	dropped := 0
	c, err := New(Options{
		N:     3,
		Trace: true,
		Net: []sim.NetOption{
			sim.NetUniformDelay(time.Millisecond),
			sim.NetDropFilter(func(_, _ pdu.EntityID, p *pdu.PDU) bool {
				if p.Kind == pdu.KindData && p.Src == 0 && p.SEQ == 2 && dropped < 2 {
					dropped++
					return true
				}
				return false
			}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.LoadWorkload(workload.NewSingleSource(0, 4, 32))
	if _, err := c.RunToQuiescence(virtualDeadline); err != nil {
		t.Fatal(err)
	}
	a, err := c.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckCOService(); err != nil {
		t.Fatal(err)
	}
	if dropped != 2 {
		t.Errorf("filter dropped %d copies, want 2", dropped)
	}
	if st := c.TotalStats(); st.Retransmitted == 0 {
		t.Error("no retransmission despite targeted drop")
	}
}

func TestWindowOneMutualPressure(t *testing.T) {
	// Both entities flood with window 1: the ACKONLY fallback must
	// prevent the mutual piggyback deadlock (DESIGN.md liveness note).
	c := run(t, Options{
		N:    2,
		Core: core.Config{Window: 1},
		Net:  []sim.NetOption{sim.NetUniformDelay(time.Millisecond)},
	}, workload.NewContinuous(2, 10, 16))
	if got := c.TotalStats().Delivered; got != 2*2*10 {
		t.Errorf("Delivered = %d, want 40", got)
	}
}

func TestBurstyWorkload(t *testing.T) {
	run(t, Options{
		N:   4,
		Net: []sim.NetOption{sim.NetUniformDelay(time.Millisecond), sim.NetLossRate(0.05), sim.NetSeed(5)},
	}, workload.NewBursty(4, 6, 4, 32, 20*time.Millisecond, 5))
}

func TestInteractiveWorkload(t *testing.T) {
	run(t, Options{
		N:   3,
		Net: []sim.NetOption{sim.NetUniformDelay(3 * time.Millisecond)},
	}, workload.NewInteractive(3, 30, 24, 5*time.Millisecond, 11))
}

func TestAsymmetricDelays(t *testing.T) {
	// Heterogeneous propagation delays reorder PDUs across senders — the
	// MC network's defining hazard for causal delivery.
	delay := func(from, to pdu.EntityID, _ *rand.Rand) time.Duration {
		return time.Duration(1+3*int(from)+int(to)) * time.Millisecond
	}
	run(t, Options{
		N:   4,
		Net: []sim.NetOption{sim.NetDelay(delay)},
	}, workload.NewContinuous(4, 8, 16))
}

func TestJitteredDelaysWithLoss(t *testing.T) {
	delay := func(_, _ pdu.EntityID, rng *rand.Rand) time.Duration {
		return time.Duration(500+rng.Intn(4000)) * time.Microsecond
	}
	run(t, Options{
		N:   5,
		Net: []sim.NetOption{sim.NetDelay(delay), sim.NetLossRate(0.08), sim.NetSeed(13)},
	}, workload.NewContinuous(5, 6, 16))
}

// TestQuickRandomClusters fuzzes cluster size, loss rate, window and
// workload shape; every combination must provide the CO service.
func TestQuickRandomClusters(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		loss := []float64{0, 0.05, 0.15, 0.3}[rng.Intn(4)]
		window := pdu.Seq(1 + rng.Intn(8))
		perSender := 1 + rng.Intn(6)
		c, err := New(Options{
			N:     n,
			Trace: true,
			Core:  core.Config{Window: window},
			Net: []sim.NetOption{
				sim.NetUniformDelay(time.Duration(1+rng.Intn(3)) * time.Millisecond),
				sim.NetLossRate(loss),
				sim.NetSeed(seed),
			},
		})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		c.LoadWorkload(workload.NewContinuous(n, perSender, 16))
		if _, err := c.RunToQuiescence(virtualDeadline); err != nil {
			t.Logf("seed %d (n=%d loss=%v w=%d): %v", seed, n, loss, window, err)
			return false
		}
		a, err := c.Analyze()
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if err := a.CheckCOService(); err != nil {
			t.Logf("seed %d (n=%d loss=%v w=%d): %v", seed, n, loss, window, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(99))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTapSamplesRecorded(t *testing.T) {
	c := run(t, Options{
		N:   3,
		Net: []sim.NetOption{sim.NetUniformDelay(2 * time.Millisecond)},
	}, workload.NewContinuous(3, 4, 16))
	taps := c.TapSamples()
	if len(taps) == 0 {
		t.Fatal("no Tap samples recorded")
	}
	for _, d := range taps {
		if d < 0 {
			t.Fatalf("negative delay %v", d)
		}
	}
	// Delivery at a remote entity requires at least one propagation
	// delay; full acknowledgment requires more (the 2R claim).
	var maxTap time.Duration
	for _, d := range taps {
		if d > maxTap {
			maxTap = d
		}
	}
	if maxTap < 2*time.Millisecond {
		t.Errorf("max Tap %v below one propagation delay", maxTap)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{N: 1}); err == nil {
		t.Error("N=1 accepted")
	}
	if _, err := New(Options{N: 4, Core: core.Config{BufferUnits: 3}}); err == nil {
		t.Error("invalid core config accepted")
	}
}

func TestAnalyzeRequiresTrace(t *testing.T) {
	c, err := New(Options{N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Analyze(); err == nil {
		t.Error("Analyze without tracing succeeded")
	}
}

func TestDuplicationAndLossTogether(t *testing.T) {
	// UDP-realistic conditions: loss and duplication at once. Delivery
	// must stay exactly-once and causally ordered.
	run(t, Options{
		N: 4,
		Net: []sim.NetOption{
			sim.NetUniformDelay(time.Millisecond),
			sim.NetLossRate(0.1),
			sim.NetDuplicateRate(0.2),
			sim.NetSeed(21),
		},
	}, workload.NewContinuous(4, 8, 24))
}

func TestTotalOrderWithDuplication(t *testing.T) {
	c, err := New(Options{
		N:     3,
		Trace: true,
		Core:  core.Config{TotalOrder: true},
		Net: []sim.NetOption{
			sim.NetUniformDelay(time.Millisecond),
			sim.NetDuplicateRate(0.3),
			sim.NetSeed(8),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.LoadWorkload(workload.NewContinuous(3, 6, 16))
	if _, err := c.RunToQuiescence(virtualDeadline); err != nil {
		t.Fatal(err)
	}
	a, err := c.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckCOService(); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckTotalOrderPreserved(); err != nil {
		t.Fatal(err)
	}
}
