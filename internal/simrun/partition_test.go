package simrun

import (
	"testing"
	"time"

	"cobcast/internal/core"
	"cobcast/internal/pdu"
	"cobcast/internal/sim"
)

// TestPartitionHealRecovers partitions one entity mid-run and heals it:
// delivery stalls during the partition (the quorum waits) and completes
// after the heal — deterministic in virtual time.
func TestPartitionHealRecovers(t *testing.T) {
	c, err := New(Options{
		N:     3,
		Trace: true,
		Net:   []sim.NetOption{sim.NetUniformDelay(time.Millisecond)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Spread 12 submissions across the first 120ms so several fall
	// inside the partition window.
	for i := 0; i < 12; i++ {
		c.SubmitAt(pdu.EntityID(i%3), []byte{byte(i)}, time.Duration(i)*10*time.Millisecond)
	}

	// Partition entity 2 at t=5ms, heal at t=200ms.
	c.Sim.At(5*time.Millisecond, func() { c.Net.Isolate(2) })
	c.Sim.At(200*time.Millisecond, func() { c.Net.Rejoin(2) })

	// During the partition nothing new can be fully acknowledged (at
	// most what squeaked through before the cut).
	c.Sim.RunUntil(150 * time.Millisecond)
	stalled := len(c.Delivered[0])
	if stalled >= 12 {
		t.Fatalf("delivery did not stall during partition: %d", stalled)
	}

	if _, err := c.RunToQuiescence(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := len(c.Delivered[0]); got != 12 {
		t.Errorf("after heal delivered %d/12", got)
	}
	a, err := c.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckCOService(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashEvictionAmongSurvivors crashes one entity permanently; the
// survivors auto-suspect, evict, and finish delivering everything the
// survivors broadcast. (Messages from the dead entity's future obviously
// never exist; it had sent nothing.)
func TestCrashEvictionAmongSurvivors(t *testing.T) {
	c, err := New(Options{
		N:     4,
		Trace: true,
		Core:  core.Config{SuspectAfter: 100 * time.Millisecond},
		Net:   []sim.NetOption{sim.NetUniformDelay(time.Millisecond)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Crash entity 3 before anything happens.
	c.Net.Isolate(3)
	// Survivors broadcast.
	for i := 0; i < 9; i++ {
		c.SubmitAt(pdu.EntityID(i%3), []byte{byte(i)}, time.Duration(i)*time.Millisecond)
	}
	// Run generously; survivors must deliver all 9 each.
	for pass := 0; pass < 600; pass++ {
		c.Sim.RunFor(5 * time.Millisecond)
		done := true
		for i := 0; i < 3; i++ {
			if len(c.Delivered[i]) < 9 {
				done = false
			}
		}
		if done {
			break
		}
	}
	for i := 0; i < 3; i++ {
		if len(c.Delivered[i]) != 9 {
			t.Fatalf("survivor %d delivered %d/9 (stats %+v)",
				i, len(c.Delivered[i]), c.Entities[i].Stats())
		}
		if !c.Entities[i].Evicted(3) {
			t.Errorf("survivor %d did not evict the dead entity", i)
		}
	}
	// Causal order must hold among the survivors' deliveries.
	a, err := c.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckLocalOrderPreserved(); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckCausalOrderPreserved(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashEvictionTotalOrder does the same in TO mode: survivors must
// still converge on one identical sequence.
func TestCrashEvictionTotalOrder(t *testing.T) {
	c, err := New(Options{
		N:     3,
		Trace: true,
		Core: core.Config{
			TotalOrder:   true,
			SuspectAfter: 100 * time.Millisecond,
		},
		Net: []sim.NetOption{sim.NetUniformDelay(time.Millisecond)},
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Net.Isolate(2)
	for i := 0; i < 6; i++ {
		c.SubmitAt(pdu.EntityID(i%2), []byte{byte(i)}, time.Duration(i)*time.Millisecond)
	}
	for pass := 0; pass < 600; pass++ {
		c.Sim.RunFor(5 * time.Millisecond)
		if len(c.Delivered[0]) >= 6 && len(c.Delivered[1]) >= 6 {
			break
		}
	}
	for i := 0; i < 2; i++ {
		if len(c.Delivered[i]) != 6 {
			t.Fatalf("survivor %d delivered %d/6 (stats %+v)",
				i, len(c.Delivered[i]), c.Entities[i].Stats())
		}
	}
	for pos := range c.Delivered[0] {
		a, b := c.Delivered[0][pos], c.Delivered[1][pos]
		if a.Src != b.Src || a.SEQ != b.SEQ {
			t.Fatalf("total order diverged at %d: s%d#%d vs s%d#%d",
				pos, a.Src, a.SEQ, b.Src, b.SEQ)
		}
	}
}
