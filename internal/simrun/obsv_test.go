package simrun

import (
	"bytes"
	"strconv"
	"testing"
	"time"

	"cobcast/internal/obsv"
	"cobcast/internal/obsv/promtext"
	"cobcast/internal/sim"
	"cobcast/internal/workload"
)

func runLossy(t *testing.T, reg *obsv.Registry) *Cluster {
	t.Helper()
	c, err := New(Options{
		N:        4,
		Net:      []sim.NetOption{sim.NetSeed(7), sim.NetLossRate(0.15)},
		Trace:    true,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.LoadWorkload(workload.NewContinuous(4, 30, 32))
	if _, err := c.RunToQuiescence(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRegistryDoesNotPerturbRun asserts that attaching instrumentation
// changes nothing about the protocol run: identical total counters with
// and without a registry.
func TestRegistryDoesNotPerturbRun(t *testing.T) {
	plain := runLossy(t, nil)
	instr := runLossy(t, obsv.NewRegistry())
	if p, i := plain.TotalStats(), instr.TotalStats(); p != i {
		t.Fatalf("stats diverge:\nplain %+v\ninstr %+v", p, i)
	}
}

// TestRegistryCountersMatchEntityStats asserts the delta-publish scheme:
// the atomic counters a scraper sees equal the entity's own Stats.
func TestRegistryCountersMatchEntityStats(t *testing.T) {
	reg := obsv.NewRegistry()
	c := runLossy(t, reg)

	var buf bytes.Buffer
	if err := reg.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := promtext.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	for i, e := range c.Entities {
		s := e.Stats()
		node := map[string]string{"node": strconv.Itoa(i)}
		withKind := func(kind string) map[string]string {
			return map[string]string{"node": strconv.Itoa(i), "kind": kind}
		}
		checks := []struct {
			family string
			labels map[string]string
			want   uint64
		}{
			{"cobcast_pdus_sent_total", withKind("data"), s.DataSent},
			{"cobcast_pdus_sent_total", withKind("sync"), s.SyncSent},
			{"cobcast_pdus_sent_total", withKind("ackonly"), s.AckOnlySent},
			{"cobcast_pdus_sent_total", withKind("ret"), s.RetSent},
			{"cobcast_pdus_received_total", withKind("data"), s.DataRecv},
			{"cobcast_pdus_received_total", withKind("sync"), s.SyncRecv},
			{"cobcast_pdus_received_total", withKind("ackonly"), s.AckOnlyRecv},
			{"cobcast_pdus_received_total", withKind("ret"), s.RetRecv},
			{"cobcast_accepted_total", node, s.Accepted},
			{"cobcast_duplicates_total", node, s.Duplicates},
			{"cobcast_parked_total", node, s.Parked},
			{"cobcast_loss_detections_total", map[string]string{"node": strconv.Itoa(i), "cond": "f1"}, s.F1Detections},
			{"cobcast_loss_detections_total", map[string]string{"node": strconv.Itoa(i), "cond": "f2"}, s.F2Detections},
			{"cobcast_retransmissions_served_total", node, s.Retransmitted},
			{"cobcast_preacked_total", node, s.Preacked},
			{"cobcast_acked_total", node, s.Acked},
			{"cobcast_committed_total", node, s.Committed},
			{"cobcast_delivered_total", node, s.Delivered},
			{"cobcast_cpi_displaced_total", node, s.CPIDisplaced},
			{"cobcast_cpi_displacement_positions_total", node, s.CPIDisplacement},
			{"cobcast_deferred_confirms_total", node, s.DeferredConfirms},
			{"cobcast_flow_blocked_total", node, s.FlowBlocked},
			{"cobcast_invalid_pdus_total", node, s.InvalidPDUs},
		}
		for _, ch := range checks {
			got, ok := fams.Value(ch.family, ch.labels)
			if !ok {
				t.Fatalf("entity %d: %s%v has no samples", i, ch.family, ch.labels)
			}
			if uint64(got) != ch.want {
				t.Errorf("entity %d: %s%v = %v, want %d", i, ch.family, ch.labels, got, ch.want)
			}
		}
	}
}

// TestSnapshotDrainsAtQuiescence asserts that after a clean run the
// snapshots report a drained DATA pipeline: no resident, parked or
// unconfirmed DATA, no queued submissions, every entity quiescent.
// (Aggregate depths like Parked/SendLog may keep trailing SYNCs — the
// same distinction DrainState draws.)
func TestSnapshotDrainsAtQuiescence(t *testing.T) {
	reg := obsv.NewRegistry()
	runLossy(t, reg)
	statez := reg.Statez()
	if len(statez.Nodes) != 4 {
		t.Fatalf("got %d snapshots, want 4", len(statez.Nodes))
	}
	for _, s := range statez.Nodes {
		if s.DataResident != 0 || s.ParkedData != 0 || s.SendLogData != 0 ||
			s.ReleasePending != 0 || s.PendingSubmits != 0 {
			t.Errorf("node %s DATA pipeline not drained: %+v", s.Node, s)
		}
		if !s.Quiescent {
			t.Errorf("node %s not quiescent", s.Node)
		}
		if s.BufFree > s.BufUnits {
			t.Errorf("node %s buffer accounting: free %d > total %d", s.Node, s.BufFree, s.BufUnits)
		}
		if len(s.REQ) != 4 || len(s.Committed) != 4 || len(s.RRL) != 4 {
			t.Errorf("node %s vector lengths: %+v", s.Node, s)
		}
	}
}
