package experiments

import (
	"bufio"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Saturation-soak support (EXPERIMENTS.md E15): cmd/cosoak drives a
// cluster at saturation with a memory budget and a stalled peer, scrapes
// its own /metrics endpoint periodically, and fails when a post-warm-up
// retention series trends upward. The scraping and trend arithmetic live
// here so the harness stays a thin flag-and-wiring layer.

// SumMetrics fetches a Prometheus text endpoint and sums every series of
// each requested family across its label sets (e.g. all nodes' ledger
// bytes). Families absent from the exposition sum to zero — gauges for
// unconfigured features (a nil ledger) are simply not exported.
func SumMetrics(url string, families ...string) (map[string]float64, error) {
	want := make(map[string]bool, len(families))
	for _, f := range families {
		want[f] = true
	}
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("soak scrape: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("soak scrape: %s returned %s", url, resp.Status)
	}
	out := make(map[string]float64, len(families))
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if !want[name] {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("soak scrape: bad sample %q: %w", line, err)
		}
		out[name] += v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("soak scrape: %w", err)
	}
	return out, nil
}

// SoakSample is one periodic observation of a saturated cluster: the
// cluster-wide ledger and log retention, the process heap, and the
// cumulative backpressure counters.
type SoakSample struct {
	At               time.Duration `json:"at_ns"`
	LedgerBytes      float64       `json:"ledger_bytes"`
	LogDepth         float64       `json:"log_depth"`
	HeapInuse        float64       `json:"heap_inuse"`
	Blocked          float64       `json:"blocked_total"`
	Shed             float64       `json:"shed_total"`
	PressureEvicted  float64       `json:"pressure_evictions_total"`
	DeliveredPerNode float64       `json:"delivered_per_node,omitempty"`
}

// TrendRow is the verdict for one retention series: the post-warm-up
// samples are split in half and the run fails when the later half's mean
// exceeds the earlier half's by more than the tolerance factor — a flat
// or draining series passes, monotone growth does not.
type TrendRow struct {
	Name       string  `json:"name"`
	FirstMean  float64 `json:"first_half_mean"`
	SecondMean float64 `json:"second_half_mean"`
	Ratio      float64 `json:"ratio"`
	Upward     bool    `json:"upward"`
}

// FlatTrend evaluates one series against a tolerance factor (e.g. 1.25
// allows 25% drift between half-means). Short series (< 4 samples) and
// all-zero series pass trivially; an absolute floor keeps noise around
// tiny means from flagging (a few KiB of jitter is not a leak).
func FlatTrend(name string, vals []float64, tolerance, floor float64) TrendRow {
	r := TrendRow{Name: name, Ratio: 1}
	if len(vals) < 4 {
		return r
	}
	half := len(vals) / 2
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	r.FirstMean = mean(vals[:half])
	r.SecondMean = mean(vals[half:])
	if r.FirstMean > 0 {
		r.Ratio = r.SecondMean / r.FirstMean
	} else if r.SecondMean > 0 {
		r.Ratio = tolerance + 1 // growth from zero
	}
	r.Upward = r.Ratio > tolerance && r.SecondMean-r.FirstMean > floor
	return r
}
