// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5, plus the worked example of Section 4). Each
// experiment is a plain function returning structured rows so that both
// the cmd/cobench harness (which renders them as tables) and the root
// benchmark suite (which asserts their shapes) share one implementation.
// The experiment identifiers (E1..E8, A1..A3) are indexed in DESIGN.md
// and the results are recorded against the paper in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math"
	"time"

	"cobcast/internal/baseline/cbcast"
	"cobcast/internal/baseline/totalorder"
	"cobcast/internal/core"
	"cobcast/internal/pdu"
	"cobcast/internal/sim"
	"cobcast/internal/simrun"
	"cobcast/internal/trace"
	"cobcast/internal/vclock"
	"cobcast/internal/workload"
)

// deadline bounds every simulated run's virtual time.
const deadline = 120 * time.Second

// stream is a captured sequence of PDUs arriving at one entity during a
// realistic protocol run, used to replay-measure pure processing cost.
type stream struct {
	n    int
	pdus []*pdu.PDU
}

// captureStream runs an n-entity continuous workload and records every
// PDU arriving at entity 0.
func captureStream(n, perSender int) (*stream, error) {
	st := &stream{n: n}
	c, err := simrun.New(simrun.Options{
		N:   n,
		Net: []sim.NetOption{sim.NetUniformDelay(time.Millisecond)},
		PDUTap: func(to, _ pdu.EntityID, p *pdu.PDU) {
			if to == 0 {
				st.pdus = append(st.pdus, p.Clone())
			}
		},
	})
	if err != nil {
		return nil, err
	}
	c.LoadWorkload(workload.NewContinuous(n, perSender, 64))
	if _, err := c.RunToQuiescence(deadline); err != nil {
		return nil, err
	}
	return st, nil
}

// replayTco times Receive over the captured stream against fresh
// entities, returning nanoseconds of protocol processing per PDU (the
// paper's Tco, Figure 8). The minimum over repetitions is reported — the
// standard noise-robust estimator for short wall-clock measurements.
func (st *stream) replayTco(reps int) (float64, error) {
	if len(st.pdus) == 0 {
		return 0, fmt.Errorf("experiments: empty stream")
	}
	best := time.Duration(math.MaxInt64)
	for r := 0; r < reps; r++ {
		ent, err := core.New(core.Config{ID: 0, N: st.n})
		if err != nil {
			return 0, err
		}
		now := time.Duration(0)
		start := time.Now()
		for _, p := range st.pdus {
			now += 10 * time.Microsecond
			_, _ = ent.Receive(p, now)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(len(st.pdus)), nil
}

// Fig8Row is one point of Figure 8: protocol processing time per PDU
// (Tco) and application-to-application delivery delay (Tap) at cluster
// size N.
type Fig8Row struct {
	N int
	// TcoNsPerPDU is the measured per-PDU protocol processing cost.
	TcoNsPerPDU float64
	// TapMean is the mean wall-clock delay from Broadcast at the source
	// to delivery at a destination, measured on the real-time in-process
	// cluster — the same methodology as the paper's workstation
	// measurement (their Ethernet latency was negligible against
	// processing; our in-memory network likewise).
	TapMean time.Duration
}

// Fig8 regenerates Figure 8 for the given cluster sizes. The paper plots
// wall-clock milliseconds on 1992 SPARC2 hardware; the reproduction
// claims the shape — Tco grows O(n) (the ACK/AL/PAL vectors are length
// n) and Tap, dominated by the two confirmation rounds each of which
// costs O(n) PDUs of O(n) processing, grows with n and sits well above
// Tco.
func Fig8(ns []int, perSender int) ([]Fig8Row, error) {
	rows := make([]Fig8Row, 0, len(ns))
	for _, n := range ns {
		st, err := captureStream(n, perSender)
		if err != nil {
			return nil, fmt.Errorf("fig8 n=%d: %w", n, err)
		}
		tco, err := st.replayTco(5)
		if err != nil {
			return nil, fmt.Errorf("fig8 n=%d: %w", n, err)
		}
		tap, err := MeasureTapRealtime(n, perSender)
		if err != nil {
			return nil, fmt.Errorf("fig8 n=%d: %w", n, err)
		}
		rows = append(rows, Fig8Row{N: n, TcoNsPerPDU: tco, TapMean: tap})
	}
	return rows, nil
}

// MeasureTap runs a continuous workload at cluster size n with uniform
// propagation delay r and returns the mean broadcast-to-delivery delay.
func MeasureTap(n, perSender int, r time.Duration) (time.Duration, error) {
	c, err := simrun.New(simrun.Options{
		N:   n,
		Net: []sim.NetOption{sim.NetUniformDelay(r)},
	})
	if err != nil {
		return 0, err
	}
	c.LoadWorkload(workload.NewContinuous(n, perSender, 64))
	if _, err := c.RunToQuiescence(deadline); err != nil {
		return 0, err
	}
	samples := c.TapSamples()
	if len(samples) == 0 {
		return 0, fmt.Errorf("experiments: no Tap samples")
	}
	var sum time.Duration
	for _, d := range samples {
		sum += d
	}
	return sum / time.Duration(len(samples)), nil
}

// AckLatencyRow is one point of experiment E3 (the 2R claim of Section
// 5): with propagation delay R, a PDU is pre-acknowledged R after
// acceptance and acknowledged 2R after acceptance.
type AckLatencyRow struct {
	N int
	R time.Duration
	// MeanAcceptToDeliver is the mean delay between a remote entity
	// accepting the probe message and delivering it.
	MeanAcceptToDeliver time.Duration
	// RatioToR is MeanAcceptToDeliver / R; the paper predicts ≈ 2.
	RatioToR float64
}

// AckLatency measures accept-to-delivery latency for a single probe
// message in otherwise idle clusters — the cleanest view of the
// two-round acknowledgment structure.
func AckLatency(ns []int, r time.Duration) ([]AckLatencyRow, error) {
	rows := make([]AckLatencyRow, 0, len(ns))
	for _, n := range ns {
		// The paper's 2R analysis assumes confirmation PDUs are broadcast
		// "in parallel" as soon as the PDU is accepted; a deferred-ack
		// interval well below R approximates that.
		c, err := simrun.New(simrun.Options{
			N:     n,
			Trace: true,
			Core:  core.Config{DeferredAckInterval: r / 4},
			Net:   []sim.NetOption{sim.NetUniformDelay(r)},
		})
		if err != nil {
			return nil, err
		}
		c.SubmitAt(0, []byte("probe"), 0)
		if _, err := c.RunToQuiescence(deadline); err != nil {
			return nil, fmt.Errorf("acklat n=%d: %w", n, err)
		}
		probe := trace.MsgID{Src: 0, Seq: 1}
		accepts := make(map[pdu.EntityID]time.Duration)
		var total time.Duration
		var count int
		for _, ev := range c.Recorder.Events() {
			if ev.Msg != probe || ev.Entity == 0 {
				continue
			}
			switch ev.Type {
			case trace.Accept:
				accepts[ev.Entity] = ev.At
			case trace.Deliver:
				if at, ok := accepts[ev.Entity]; ok {
					total += ev.At - at
					count++
				}
			}
		}
		if count == 0 {
			return nil, fmt.Errorf("acklat n=%d: no samples", n)
		}
		mean := total / time.Duration(count)
		rows = append(rows, AckLatencyRow{
			N: n, R: r,
			MeanAcceptToDeliver: mean,
			RatioToR:            float64(mean) / float64(r),
		})
	}
	return rows, nil
}

// BufferRow is one point of experiment E4 (Section 5's O(n) buffer
// claim): peak resident PDUs against the paper's 2nW guideline.
type BufferRow struct {
	N, W int
	// MaxResident is the peak number of PDUs simultaneously buffered by
	// any entity.
	MaxResident int
	// Bound2nW is the paper's rule-of-thumb capacity 2·n·W.
	Bound2nW int
}

// BufferOccupancy measures peak log occupancy across cluster sizes and
// windows under a saturating continuous workload.
func BufferOccupancy(ns, ws []int, perSender int) ([]BufferRow, error) {
	var rows []BufferRow
	for _, n := range ns {
		for _, w := range ws {
			c, err := simrun.New(simrun.Options{
				N:    n,
				Core: core.Config{Window: pdu.Seq(w)},
				Net:  []sim.NetOption{sim.NetUniformDelay(time.Millisecond)},
			})
			if err != nil {
				return nil, err
			}
			c.LoadWorkload(workload.NewContinuous(n, perSender, 32))
			if _, err := c.RunToQuiescence(deadline); err != nil {
				return nil, fmt.Errorf("buffer n=%d w=%d: %w", n, w, err)
			}
			rows = append(rows, BufferRow{
				N: n, W: w,
				MaxResident: c.TotalStats().MaxResident,
				Bound2nW:    2 * n * w,
			})
		}
	}
	return rows, nil
}

// PDULenRow is one point of experiment E5 (Section 5 / Figure 4): encoded
// PDU length is O(n) because the ACK field carries n confirmations.
type PDULenRow struct {
	N int
	// HeaderBytes is the encoded size of an empty-payload PDU.
	HeaderBytes int
	// Bytes64 is the encoded size with a 64-byte payload.
	Bytes64 int
}

// PDULength computes encoded sizes across cluster sizes.
func PDULength(ns []int) []PDULenRow {
	rows := make([]PDULenRow, 0, len(ns))
	for _, n := range ns {
		mk := func(payload int) int {
			p := &pdu.PDU{
				Kind: pdu.KindData, Src: 0, SEQ: 1,
				ACK: make([]pdu.Seq, n), LSrc: pdu.NoEntity,
				Data: make([]byte, payload),
			}
			return p.EncodedSize()
		}
		rows = append(rows, PDULenRow{N: n, HeaderBytes: mk(0), Bytes64: mk(64)})
	}
	return rows
}

// WireBytesRow is one point of experiment E12 (the E5 redo at the byte
// level): mean encoded bytes per DT PDU under the Fig. 8 continuous
// workload, fixed-width v1 codec against v2 delta stamps.
type WireBytesRow struct {
	N int
	// DTPDUs counts sequenced DATA PDUs encoded: one copy per broadcast,
	// as a sender's link encodes them, not one per receiver.
	DTPDUs int
	// V1BytesPerDT and V2BytesPerDT are mean encoded bytes per DT PDU
	// under each codec.
	V1BytesPerDT float64
	V2BytesPerDT float64
	// V2FullStamps counts the DT PDUs the v2 encoder full-stamped (sync
	// points: stream head and every interval-th SEQ); the remainder
	// carried delta stamps.
	V2FullStamps int
	// Reduction is 1 - V2BytesPerDT/V1BytesPerDT.
	Reduction float64
}

// WireBytes measures both wire codecs over identical Fig. 8 PDU
// streams: every PDU each sender transmits is encoded once with the v1
// codec and once against a per-sender v2 stamp chain, in transmit
// order, exactly as a live link would. stampK is the v2 sync-point
// interval (0 selects pdu.DefaultStampInterval). Byte totals are
// accumulated for DATA PDUs only, but every PDU passes through the
// stamp chain so sync points land where a real link's would.
func WireBytes(ns []int, perSender, stampK int) ([]WireBytesRow, error) {
	rows := make([]WireBytesRow, 0, len(ns))
	for _, n := range ns {
		encs := make([]*pdu.StampEncoder, n)
		for i := range encs {
			encs[i] = pdu.NewStampEncoder(stampK)
		}
		var v1, v2 uint64
		var dts, fulls int
		var buf []byte
		var tapErr error
		c, err := simrun.New(simrun.Options{
			N:   n,
			Net: []sim.NetOption{sim.NetUniformDelay(time.Millisecond)},
			PDUTap: func(to, from pdu.EntityID, p *pdu.PDU) {
				// One copy per transmitted PDU: watch a single outgoing
				// link per sender. Uniform delay keeps each link FIFO,
				// so the tap sees every sender's transmit order.
				if tapErr != nil || to != (from+1)%pdu.EntityID(n) {
					return
				}
				buf, tapErr = p.MarshalAppendV2(buf[:0], encs[from])
				if tapErr != nil {
					return
				}
				if p.Kind != pdu.KindData {
					return
				}
				dts++
				v1 += uint64(p.EncodedSize())
				v2 += uint64(len(buf))
				// Flags byte: bit1 set means the stamp was emitted in
				// full rather than as a delta.
				if buf[4]&(1<<1) != 0 {
					fulls++
				}
			},
		})
		if err != nil {
			return nil, err
		}
		c.LoadWorkload(workload.NewContinuous(n, perSender, 64))
		if _, err := c.RunToQuiescence(deadline); err != nil {
			return nil, fmt.Errorf("wirebytes n=%d: %w", n, err)
		}
		if tapErr != nil {
			return nil, fmt.Errorf("wirebytes n=%d: %w", n, tapErr)
		}
		if dts == 0 {
			return nil, fmt.Errorf("wirebytes n=%d: no DT PDUs captured", n)
		}
		r := WireBytesRow{
			N: n, DTPDUs: dts,
			V1BytesPerDT: float64(v1) / float64(dts),
			V2BytesPerDT: float64(v2) / float64(dts),
			V2FullStamps: fulls,
		}
		r.Reduction = 1 - r.V2BytesPerDT/r.V1BytesPerDT
		rows = append(rows, r)
	}
	return rows, nil
}

// RetxRow is one point of experiment E6 (Section 5): selective
// retransmission (CO) against go-back-n (TO protocol) at one loss rate.
type RetxRow struct {
	Loss     float64
	Messages int
	// CORetransmitted counts PDUs the CO protocol rebroadcast;
	// COPDUsTotal counts every sequenced and control PDU it sent.
	CORetransmitted uint64
	COPDUsTotal     uint64
	// GBNRetransmissions counts bus slots re-sent by go-back-n;
	// GBNTransmissions counts all bus slots used.
	GBNRetransmissions uint64
	GBNTransmissions   uint64
}

// RetxComparison runs both protocols over the same message count and loss
// rates. The paper's claim: only lost PDUs are retransmitted by CO, while
// go-back-n resends everything past a gap, so the gap widens with loss.
func RetxComparison(n, msgs int, losses []float64, seed int64) ([]RetxRow, error) {
	rows := make([]RetxRow, 0, len(losses))
	for _, loss := range losses {
		c, err := simrun.New(simrun.Options{
			N: n,
			Net: []sim.NetOption{
				sim.NetUniformDelay(time.Millisecond),
				sim.NetLossRate(loss),
				sim.NetSeed(seed),
			},
		})
		if err != nil {
			return nil, err
		}
		c.LoadWorkload(workload.NewContinuous(n, (msgs+n-1)/n, 32))
		if _, err := c.RunToQuiescence(deadline); err != nil {
			return nil, fmt.Errorf("retx loss=%v: %w", loss, err)
		}
		st := c.TotalStats()

		bus, err := totalorder.New(totalorder.Config{N: n, LossRate: loss, Seed: seed})
		if err != nil {
			return nil, err
		}
		for i := 0; i < c.Submitted(); i++ {
			bus.Broadcast(pdu.EntityID(i%n), nil)
		}
		bst, err := bus.Run()
		if err != nil {
			return nil, fmt.Errorf("retx gbn loss=%v: %w", loss, err)
		}
		rows = append(rows, RetxRow{
			Loss:               loss,
			Messages:           c.Submitted(),
			CORetransmitted:    st.Retransmitted,
			COPDUsTotal:        st.DataSent + st.SyncSent + st.AckOnlySent + st.RetSent + st.Retransmitted,
			GBNRetransmissions: bst.Retransmissions,
			GBNTransmissions:   bst.Transmissions,
		})
	}
	return rows, nil
}

// ISISCostRow is one point of experiment E7's cost half: per-PDU ordering
// cost of the CO protocol (sequence numbers) against CBCAST (vector
// clocks) at cluster size N.
type ISISCostRow struct {
	N int
	// CONsPerPDU is the CO protocol's full per-PDU processing cost.
	CONsPerPDU float64
	// CBCASTNsPerMsg is CBCAST's per-message delivery-condition cost.
	CBCASTNsPerMsg float64
}

// ISISCost replays identical continuous workloads through both protocols.
func ISISCost(ns []int, perSender int) ([]ISISCostRow, error) {
	rows := make([]ISISCostRow, 0, len(ns))
	for _, n := range ns {
		st, err := captureStream(n, perSender)
		if err != nil {
			return nil, err
		}
		coNs, err := st.replayTco(5)
		if err != nil {
			return nil, err
		}
		cbNs, err := cbcastCost(n, perSender, 5)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ISISCostRow{N: n, CONsPerPDU: coNs, CBCASTNsPerMsg: cbNs})
	}
	return rows, nil
}

// cbcastCost times CBCAST receipt over a reliable round-robin workload.
func cbcastCost(n, perSender, reps int) (float64, error) {
	// Pre-generate the message stream once from a sender-side group.
	senders := make([]*cbcast.Entity, n)
	for i := range senders {
		e, err := cbcast.New(pdu.EntityID(i), n)
		if err != nil {
			return 0, err
		}
		senders[i] = e
	}
	var msgs []cbcast.Message
	payload := make([]byte, 64)
	for round := 0; round < perSender; round++ {
		for s := 1; s < n; s++ { // everyone except the measured entity 0
			m := senders[s].Broadcast(payload)
			msgs = append(msgs, m)
			for o := 0; o < n; o++ {
				if o != s {
					if _, err := senders[o].Receive(m); err != nil {
						return 0, err
					}
				}
			}
		}
	}
	best := time.Duration(math.MaxInt64)
	for r := 0; r < reps; r++ {
		recv, err := cbcast.New(0, n)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		for i := range msgs {
			if _, err := recv.Receive(msgs[i]); err != nil {
				return 0, err
			}
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds()) / float64(len(msgs)), nil
}

// PrimitiveRow is experiment E7's ordering-primitive half: the cost of
// one causality decision. The CO protocol decides p ≺ q from two
// sequence-number comparisons regardless of n (Theorem 4.1); a vector
// clock comparison scans n components. This is the paper's "more
// computation to synchronize the virtual clock" claim in its purest form.
type PrimitiveRow struct {
	N int
	// SeqTestNs is the cost of one Theorem 4.1 comparison.
	SeqTestNs float64
	// VClockNs is the cost of one vector-clock comparison.
	VClockNs float64
}

// OrderingPrimitiveCost microbenchmarks the two causality tests.
func OrderingPrimitiveCost(ns []int, iters int) []PrimitiveRow {
	rows := make([]PrimitiveRow, 0, len(ns))
	for _, n := range ns {
		p := &pdu.PDU{Kind: pdu.KindData, Src: 0, SEQ: 5, ACK: make([]pdu.Seq, n)}
		q := &pdu.PDU{Kind: pdu.KindData, Src: 1, SEQ: 3, ACK: make([]pdu.Seq, n)}
		for i := range q.ACK {
			q.ACK[i] = 6 // q's sender saw p
		}
		start := time.Now()
		var sink pdu.Relation
		for i := 0; i < iters; i++ {
			sink = pdu.Compare(p, q)
		}
		seqNs := float64(time.Since(start).Nanoseconds()) / float64(iters)
		_ = sink

		a, b := make(vclock.VC, n), make(vclock.VC, n)
		for i := range b {
			b[i] = uint64(i + 1)
		}
		start = time.Now()
		var vsink vclock.Ordering
		for i := 0; i < iters; i++ {
			vsink = a.Compare(b)
		}
		vcNs := float64(time.Since(start).Nanoseconds()) / float64(iters)
		_ = vsink

		rows = append(rows, PrimitiveRow{N: n, SeqTestNs: seqNs, VClockNs: vcNs})
	}
	return rows
}

// ISISLossResult is experiment E7's loss-detection half: the same lost
// PDU scenario run through both protocols. The CO protocol detects the
// loss (sequence gap → RET → repair → delivery); CBCAST, built for a
// reliable transport, holds the successor forever without any signal.
type ISISLossResult struct {
	// CORetRequests is how many retransmission requests the CO cluster
	// issued; CODelivered is how many of the 2 messages the lossy
	// entity ultimately delivered.
	CORetRequests uint64
	CODelivered   int
	// CBCASTHeld is the number of messages stuck in the CBCAST hold-back
	// queue at the end; CBCASTDelivered counts deliveries at the lossy
	// member.
	CBCASTHeld      int
	CBCASTDelivered int
}

// ISISLossDemo drops the first copy of message 1 toward entity 2 in a
// 3-member group, then sends message 2.
func ISISLossDemo() (ISISLossResult, error) {
	var res ISISLossResult

	// CO protocol: full machinery recovers.
	dropped := false
	c, err := simrun.New(simrun.Options{
		N: 3,
		Net: []sim.NetOption{
			sim.NetUniformDelay(time.Millisecond),
			sim.NetDropFilter(func(_, to pdu.EntityID, p *pdu.PDU) bool {
				if !dropped && to == 2 && p.Kind == pdu.KindData && p.Src == 0 && p.SEQ == 1 {
					dropped = true
					return true
				}
				return false
			}),
		},
	})
	if err != nil {
		return res, err
	}
	c.SubmitAt(0, []byte("m1"), 0)
	c.SubmitAt(0, []byte("m2"), time.Millisecond)
	if _, err := c.RunToQuiescence(deadline); err != nil {
		return res, err
	}
	res.CORetRequests = c.TotalStats().RetSent
	res.CODelivered = len(c.Delivered[2])

	// CBCAST on the same scenario: m1 lost to member 2, m2 arrives.
	members := make([]*cbcast.Entity, 3)
	for i := range members {
		e, err := cbcast.New(pdu.EntityID(i), 3)
		if err != nil {
			return res, err
		}
		members[i] = e
	}
	m1 := members[0].Broadcast([]byte("m1"))
	m2 := members[0].Broadcast([]byte("m2"))
	if _, err := members[1].Receive(m1); err != nil {
		return res, err
	}
	if _, err := members[1].Receive(m2); err != nil {
		return res, err
	}
	// Member 2 never gets m1.
	ds, err := members[2].Receive(m2)
	if err != nil {
		return res, err
	}
	res.CBCASTDelivered = len(ds)
	res.CBCASTHeld = members[2].Held()
	return res, nil
}

// MsgComplexityRow is one point of experiment E8 (Section 4.2/5): with
// deferred confirmation the cluster sends O(n) PDUs per application
// message, not the O(n²) of acknowledge-every-receipt schemes.
type MsgComplexityRow struct {
	N int
	// Messages is the number of application broadcasts.
	Messages int
	// TotalPDUs counts every broadcast PDU (data + sync + ackonly + ret).
	TotalPDUs uint64
	// PerMessage is TotalPDUs / Messages under the saturating all-senders
	// workload, where piggybacking amortizes confirmations (measured
	// even better than the paper's O(n): near-constant).
	PerMessage float64
	// SoloPDUs counts the cluster-wide PDUs needed to fully acknowledge
	// one message in an otherwise idle cluster — the O(n) case the
	// deferred-confirmation argument describes.
	SoloPDUs uint64
	// NSquared is the O(n²) reference point.
	NSquared int
}

// MessageComplexity counts cluster-wide PDU traffic per delivered
// message.
func MessageComplexity(ns []int, perSender int) ([]MsgComplexityRow, error) {
	rows := make([]MsgComplexityRow, 0, len(ns))
	for _, n := range ns {
		c, err := simrun.New(simrun.Options{
			N:   n,
			Net: []sim.NetOption{sim.NetUniformDelay(time.Millisecond)},
		})
		if err != nil {
			return nil, err
		}
		c.LoadWorkload(workload.NewContinuous(n, perSender, 32))
		if _, err := c.RunToQuiescence(deadline); err != nil {
			return nil, fmt.Errorf("msgs n=%d: %w", n, err)
		}
		st := c.TotalStats()
		total := st.DataSent + st.SyncSent + st.AckOnlySent + st.RetSent

		solo, err := simrun.New(simrun.Options{
			N:   n,
			Net: []sim.NetOption{sim.NetUniformDelay(time.Millisecond)},
		})
		if err != nil {
			return nil, err
		}
		solo.SubmitAt(0, make([]byte, 32), 0)
		if _, err := solo.RunToQuiescence(deadline); err != nil {
			return nil, fmt.Errorf("msgs solo n=%d: %w", n, err)
		}
		sst := solo.TotalStats()

		rows = append(rows, MsgComplexityRow{
			N:          n,
			Messages:   c.Submitted(),
			TotalPDUs:  total,
			PerMessage: float64(total) / float64(c.Submitted()),
			SoloPDUs:   sst.DataSent + sst.SyncSent + sst.AckOnlySent + sst.RetSent,
			NSquared:   n * n,
		})
	}
	return rows, nil
}
