package experiments

import (
	"fmt"
	"strings"

	"cobcast/internal/core"
	"cobcast/internal/metrics"
	"cobcast/internal/pdu"
)

// Table1Result is experiment E2: the Figure 7 exchange replayed through
// the real engine, with every SEQ/ACK field (Table 1 of the paper) and
// E3's resulting log state (Example 4.1).
type Table1Result struct {
	// PDUs maps the paper's PDU names (a..h) to the engine-produced PDUs.
	PDUs map[string]*pdu.PDU
	// Order is the paper's presentation order a..h.
	Order []string
	// PRL is E3's pre-acknowledged log (by paper name) after the
	// exchange; Delivered is what E3 has acknowledged and delivered.
	PRL       []string
	Delivered []string
	// REQ3 is E3's next-expected vector after the exchange.
	REQ3 []pdu.Seq
}

// Table1 replays Example 4.1 / Figure 7 and returns the regenerated
// Table 1.
func Table1() (*Table1Result, error) {
	newEnt := func(id pdu.EntityID) (*core.Entity, error) {
		return core.New(core.Config{ID: id, N: 3, Window: 64, DisableDeferredConfirm: true})
	}
	e1, err := newEnt(0)
	if err != nil {
		return nil, err
	}
	e2, err := newEnt(1)
	if err != nil {
		return nil, err
	}
	e3, err := newEnt(2)
	if err != nil {
		return nil, err
	}

	res := &Table1Result{
		PDUs:  make(map[string]*pdu.PDU, 8),
		Order: []string{"a", "b", "c", "d", "e", "f", "g", "h"},
	}
	var e3Delivered []core.Delivery

	submit := func(e *core.Entity, name string) error {
		out := e.Submit([]byte(name), 0)
		if len(out.PDUs) != 1 {
			return fmt.Errorf("table1: submit %q produced %d PDUs", name, len(out.PDUs))
		}
		res.PDUs[name] = out.PDUs[0]
		return nil
	}
	recv := func(e *core.Entity, name string) error {
		out, err := e.Receive(res.PDUs[name].Clone(), 0)
		if err != nil {
			return fmt.Errorf("table1: receive %q: %w", name, err)
		}
		if e == e3 {
			e3Delivered = append(e3Delivered, out.Deliveries...)
		}
		return nil
	}

	// The Figure 7 exchange.
	if err := submit(e1, "a"); err != nil {
		return nil, err
	}
	if err := recv(e3, "a"); err != nil {
		return nil, err
	}
	if err := submit(e3, "b"); err != nil {
		return nil, err
	}
	if err := submit(e1, "c"); err != nil {
		return nil, err
	}
	for _, name := range []string{"a", "c", "b"} {
		if err := recv(e2, name); err != nil {
			return nil, err
		}
	}
	if err := submit(e2, "d"); err != nil {
		return nil, err
	}
	for _, name := range []string{"d", "b"} {
		if err := recv(e1, name); err != nil {
			return nil, err
		}
	}
	if err := submit(e1, "e"); err != nil {
		return nil, err
	}
	if err := submit(e1, "f"); err != nil {
		return nil, err
	}
	if err := recv(e2, "e"); err != nil {
		return nil, err
	}
	if err := submit(e2, "g"); err != nil {
		return nil, err
	}
	for _, name := range []string{"c", "d", "e", "f", "g"} {
		if err := recv(e3, name); err != nil {
			return nil, err
		}
	}
	if err := submit(e3, "h"); err != nil {
		return nil, err
	}

	name := func(p *pdu.PDU) string {
		for _, n := range res.Order {
			q := res.PDUs[n]
			if q.Src == p.Src && q.SEQ == p.SEQ {
				return n
			}
		}
		return p.String()
	}
	for _, p := range e3.PRLSnapshot() {
		res.PRL = append(res.PRL, name(p))
	}
	for _, d := range e3Delivered {
		res.Delivered = append(res.Delivered, string(d.Data))
	}
	res.REQ3 = e3.REQ()
	return res, nil
}

// Render formats the result in the shape of Table 1.
func (r *Table1Result) Render() string {
	tbl := metrics.NewTable("Table 1: SEQ and ACK fields (regenerated)", "PDU", "SRC", "SEQ", "ACK")
	for _, n := range r.Order {
		p := r.PDUs[n]
		ack := make([]string, len(p.ACK))
		for i, a := range p.ACK {
			ack[i] = fmt.Sprintf("%d", a)
		}
		tbl.AddRow(n, fmt.Sprintf("E%d", p.Src+1), p.SEQ, "<"+strings.Join(ack, ",")+">")
	}
	var b strings.Builder
	b.WriteString(tbl.String())
	fmt.Fprintf(&b, "\nE3 after the exchange (Example 4.1):\n")
	fmt.Fprintf(&b, "  REQ        = %v\n", r.REQ3)
	fmt.Fprintf(&b, "  delivered  = %v\n", r.Delivered)
	fmt.Fprintf(&b, "  PRL        = <%s]\n", strings.Join(r.PRL, " "))
	return b.String()
}
